// Table 1: RedFat and Memcheck on the (synthetic) SPEC CPU2006 suite.
//
// For every benchmark:
//   * baseline: original binary, glibc-like allocator, ref input;
//   * profile phase on the train input -> allow-list (Fig. 5);
//   * six RedFat configurations (unoptimized, +elim, +batch, +merge, -size,
//     -reads), each hardened with the allow-list and run on the ref input;
//   * Memcheck (DBI redzone-only baseline) on the ref input.
//
// Slowdown factors are ratios of deterministic cycle counts. Coverage is
// the dynamic fraction of instrumented memory operations carrying the full
// (Redzone)+(LowFat) check, measured on the +merge configuration.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/dbi/memcheck.h"
#include "src/workloads/spec.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

struct Row {
  std::string name;
  double coverage = 0;
  uint64_t baseline_cycles = 0;
  double slow[6] = {};  // unopt, +elim, +batch, +merge, -size, -reads
  double memcheck = 0;
};

int Main() {
  const RedFatOptions configs[6] = {RedFatOptions::Unoptimized(), RedFatOptions::Elim(),
                                    RedFatOptions::Batch(),       RedFatOptions::Merge(),
                                    RedFatOptions::NoSize(),      RedFatOptions::NoReads()};

  std::vector<Row> rows;
  PassTimeAggregator pass_times;
  for (const SpecBenchmark& bench : SpecSuite()) {
    const BinaryImage img = BuildSpecBenchmark(bench);
    Row row;
    row.name = bench.name;

    RunConfig ref;
    ref.inputs = RefInputs(bench.ref_iters);
    ref.policy = Policy::kLog;  // latent real bugs log and continue, as under Memcheck
    const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, ref);
    REDFAT_CHECK(base.result.reason == HaltReason::kExit);
    row.baseline_cycles = base.result.cycles;

    const AllowList allow = ProfileAndAllow(img, TrainInputs(bench.train_iters));

    for (int c = 0; c < 6; ++c) {
      const InstrumentResult ir = MustInstrument(img, configs[c], &allow);
      pass_times.Add(ir.pipeline_stats);
      const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, ref);
      REDFAT_CHECK(out.result.reason == HaltReason::kExit);
      REDFAT_CHECK(out.outputs == base.outputs);
      row.slow[c] =
          static_cast<double>(out.result.cycles) / static_cast<double>(base.result.cycles);
      if (c == 3) {  // +merge: the fully-checked configuration
        const CoverageStats cov = ComputeCoverage(out.counters, ir.sites);
        row.coverage = cov.FullFraction();
      }
    }

    const RunOutcome mc = RunMemcheck(img, ref);
    REDFAT_CHECK(mc.result.reason == HaltReason::kExit);
    row.memcheck =
        static_cast<double>(mc.result.cycles) / static_cast<double>(base.result.cycles);
    rows.push_back(row);
    std::fprintf(stderr, "  [table1] %-12s done\n", bench.name.c_str());
  }

  std::printf("\nTable 1: Performance of RedFat and Memcheck on the SPEC CPU2006 suite\n");
  std::printf("(synthetic reproduction; slowdown factors vs. uninstrumented baseline)\n\n");
  std::printf("%-12s %9s %10s %8s %8s %8s %8s %8s %8s %9s\n", "Binary", "coverage",
              "base(cyc)", "unopt", "+elim", "+batch", "+merge", "-size", "-reads",
              "Memcheck");
  std::vector<double> g[7];
  std::vector<double> gcov;
  for (const Row& r : rows) {
    std::printf("%-12s %8.1f%% %10llu %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx %8.2fx\n",
                r.name.c_str(), 100.0 * r.coverage,
                static_cast<unsigned long long>(r.baseline_cycles), r.slow[0], r.slow[1],
                r.slow[2], r.slow[3], r.slow[4], r.slow[5], r.memcheck);
    for (int c = 0; c < 6; ++c) {
      g[c].push_back(r.slow[c]);
    }
    g[6].push_back(r.memcheck);
    gcov.push_back(r.coverage);
  }
  double cov_mean = 0;
  for (double c : gcov) {
    cov_mean += c;
  }
  cov_mean /= static_cast<double>(gcov.size());
  std::printf("%-12s %8.1f%% %10s %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx %8.2fx\n",
              "Geomean", 100.0 * cov_mean, "-", Geomean(g[0]), Geomean(g[1]), Geomean(g[2]),
              Geomean(g[3]), Geomean(g[4]), Geomean(g[5]), Geomean(g[6]));
  pass_times.Print(
      "Instrumentation time by pipeline pass (all configs, --stats JSON)");
  std::printf("\nPaper (real SPEC): geomean 6.78x / 5.50x / 5.06x / 4.18x / 3.81x / 1.55x;"
              " Memcheck 11.76x; mean coverage 72.6%%\n");
  return 0;
}

}  // namespace
}  // namespace redfat

int main() { return redfat::Main(); }
