// Rewrite-throughput benchmark: how fast does the instrumentation pipeline
// chew through a large binary, and how does it scale with --jobs?
//
// Synthesizes a deterministic large image (ProgramBuilder via the synth
// workload generator; filler functions scale the text section the way the
// paper's Chrome experiment scales real binaries), instruments it at
// jobs ∈ {1, 2, 4, 8, auto}, and writes BENCH_rewrite_throughput.json:
// image size, hardware threads, and per-run total wall time, instructions
// per second, speedup vs jobs=1, and the per-pass wall-ms breakdown.
//
// Every parallel run's output is also compared byte-for-byte against the
// jobs=1 image — the determinism contract the test suite asserts, re-checked
// here on the bench workload.
//
//   bench_rewrite_throughput [--quick] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/support/parallel.h"
#include "src/support/str.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

struct RunRecord {
  unsigned jobs_requested = 0;  // 0 = auto
  unsigned jobs = 0;            // resolved worker count
  double total_ms = 0.0;        // best-of-reps end-to-end Instrument() wall
  double insns_per_sec = 0.0;
  double speedup_vs_jobs1 = 0.0;
  bool identical_to_jobs1 = false;
  PipelineStats stats;  // of the best rep
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscapePassName(const std::string& name) {
  // Pass names are short lowercase identifiers; no escaping needed beyond
  // trusting the pipeline's own naming.
  return name;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_rewrite_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_rewrite_throughput [--quick] [--out FILE]\n");
      return 2;
    }
  }

  // A big, branchy, check-heavy image. Filler functions are never executed
  // but are fully instrumented: they scale rewrite work without making the
  // generator run longer.
  SynthParams p;
  p.seed = 0x7f0a7;
  p.mem_pct = 35;
  p.stream_pct = 6;
  p.global_pct = 8;
  p.call_pct = 6;
  p.max_accesses_per_ptr = 4;
  p.block_len = 60;
  p.filler_funcs = quick ? 250 : 5000;
  p.filler_units_per_func = 8;
  const BinaryImage img = GenerateSynthProgram(p);

  const unsigned sweep[] = {1, 2, 4, 8, 0};  // 0 = auto (hardware threads)
  const int reps = quick ? 1 : 3;
  const unsigned hw = HardwareJobs();

  std::printf("rewrite-throughput bench: image %llu bytes, %u hardware thread%s, "
              "best of %d rep%s\n\n",
              static_cast<unsigned long long>(img.TotalBytes()), hw, hw == 1 ? "" : "s",
              reps, reps == 1 ? "" : "s");
  std::printf("%8s %6s %12s %14s %10s %10s\n", "jobs", "(res)", "wall(ms)", "insns/sec",
              "speedup", "identical");

  std::vector<RunRecord> runs;
  std::vector<uint8_t> jobs1_bytes;
  uint64_t image_insns = 0;
  for (const unsigned jobs : sweep) {
    RedFatOptions opts;
    opts.jobs = jobs;
    RunRecord rec;
    rec.jobs_requested = jobs;
    InstrumentResult best;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = NowMs();
      InstrumentResult ir = MustInstrument(img, opts);
      const double wall = NowMs() - t0;
      if (rep == 0 || wall < rec.total_ms) {
        rec.total_ms = wall;
        best = std::move(ir);
      }
    }
    rec.stats = best.pipeline_stats;
    rec.jobs = best.pipeline_stats.jobs;
    const PassStats* disasm = best.pipeline_stats.Find("disasm");
    REDFAT_CHECK(disasm != nullptr);
    image_insns = disasm->items;
    rec.insns_per_sec =
        rec.total_ms > 0.0 ? static_cast<double>(image_insns) / (rec.total_ms / 1000.0)
                           : 0.0;
    const std::vector<uint8_t> bytes = best.image.Serialize();
    if (jobs == 1) {
      jobs1_bytes = bytes;
      rec.identical_to_jobs1 = true;
    } else {
      rec.identical_to_jobs1 = bytes == jobs1_bytes;
      REDFAT_CHECK(rec.identical_to_jobs1);  // the determinism contract
    }
    rec.speedup_vs_jobs1 =
        runs.empty() ? 1.0 : (rec.total_ms > 0.0 ? runs[0].total_ms / rec.total_ms : 0.0);
    std::printf("%8s %6u %12.2f %14.0f %9.2fx %10s\n",
                jobs == 0 ? "auto" : StrFormat("%u", jobs).c_str(), rec.jobs, rec.total_ms,
                rec.insns_per_sec, rec.speedup_vs_jobs1,
                rec.identical_to_jobs1 ? "yes" : "NO");
    runs.push_back(std::move(rec));
  }

  // Machine-readable output. Honest numbers only: speedup on a 1-thread
  // container is ~1.0x by construction; consumers must read hw_threads.
  std::string json = "{\"bench\":\"rewrite_throughput\",";
  json += StrFormat("\"hw_threads\":%u,", hw);
  json += StrFormat("\"image_bytes\":%llu,",
                    static_cast<unsigned long long>(img.TotalBytes()));
  json += StrFormat("\"image_insns\":%llu,", static_cast<unsigned long long>(image_insns));
  json += StrFormat("\"reps\":%d,\"quick\":%s,\"runs\":[", reps, quick ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    if (i != 0) {
      json += ",";
    }
    json += StrFormat(
        "{\"jobs_requested\":%u,\"jobs\":%u,\"total_ms\":%.3f,"
        "\"insns_per_sec\":%.0f,\"speedup_vs_jobs1\":%.3f,"
        "\"identical_to_jobs1\":%s,\"passes\":{",
        r.jobs_requested, r.jobs, r.total_ms, r.insns_per_sec, r.speedup_vs_jobs1,
        r.identical_to_jobs1 ? "true" : "false");
    for (size_t pi = 0; pi < r.stats.passes.size(); ++pi) {
      const PassStats& pass = r.stats.passes[pi];
      if (pi != 0) {
        json += ",";
      }
      json += StrFormat("\"%s\":%.3f", JsonEscapePassName(pass.name).c_str(),
                        pass.wall_ms);
    }
    json += "}}";
  }
  json += "]}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_rewrite_throughput: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s (%llu instructions, %u hw threads)\n", out_path.c_str(),
              static_cast<unsigned long long>(image_insns), hw);
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
