// Shared helpers for the experiment harnesses.
#ifndef REDFAT_BENCH_COMMON_H_
#define REDFAT_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/support/check.h"

namespace redfat {

// Fig. 5 step 1: instrument in profiling mode, run the test suite (train
// inputs), and distill the allow-list.
inline AllowList ProfileAndAllow(const BinaryImage& img, std::vector<uint64_t> train_inputs) {
  RedFatTool prof(RedFatOptions::Profile());
  Result<InstrumentResult> ir = prof.Instrument(img);
  REDFAT_CHECK(ir.ok());
  RunConfig cfg;
  cfg.inputs = std::move(train_inputs);
  cfg.policy = Policy::kLog;
  const RunOutcome out = RunImage(ir.value().image, RuntimeKind::kRedFat, cfg);
  REDFAT_CHECK(out.result.reason == HaltReason::kExit);
  return BuildAllowList(out.prof_counts, ir.value().sites);
}

inline InstrumentResult MustInstrument(const BinaryImage& img, const RedFatOptions& opts,
                                       const AllowList* allow = nullptr) {
  RedFatTool tool(opts);
  Result<InstrumentResult> r = tool.Instrument(img, allow);
  REDFAT_CHECK(r.ok());
  return std::move(r).value();
}

// Aggregates per-pass wall time across instrumentation runs. Each sample is
// consumed through the machine-readable `--stats` JSON (ToJson →
// PipelineStatsFromJson), so the benches exercise the exact format external
// harnesses parse.
class PassTimeAggregator {
 public:
  void Add(const PipelineStats& stats) {
    Result<PipelineStats> parsed = PipelineStatsFromJson(stats.ToJson());
    REDFAT_CHECK(parsed.ok());
    for (const PassStats& p : parsed.value().passes) {
      Row& row = FindOrAdd(p.name);
      row.wall_ms += p.wall_ms;
      row.items += p.items;
      row.changed += p.changed;
    }
    total_ms_ += parsed.value().total_ms;
  }

  void Print(const char* title) const {
    std::printf("\n%s\n", title);
    std::printf("  %-10s %12s %12s %10s\n", "pass", "items", "changed", "wall(ms)");
    for (const Row& row : rows_) {
      std::printf("  %-10s %12zu %12zu %10.2f\n", row.name.c_str(), row.items, row.changed,
                  row.wall_ms);
    }
    std::printf("  %-10s %12s %12s %10.2f\n", "total", "", "", total_ms_);
  }

 private:
  struct Row {
    std::string name;
    size_t items = 0;
    size_t changed = 0;
    double wall_ms = 0.0;
  };
  Row& FindOrAdd(const std::string& name) {
    for (Row& row : rows_) {
      if (row.name == name) {
        return row;
      }
    }
    rows_.push_back(Row{name, 0, 0, 0.0});
    return rows_.back();
  }
  std::vector<Row> rows_;  // in first-seen (pipeline) order
  double total_ms_ = 0.0;
};

inline double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace redfat

#endif  // REDFAT_BENCH_COMMON_H_
