// Shared helpers for the experiment harnesses.
#ifndef REDFAT_BENCH_COMMON_H_
#define REDFAT_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/support/check.h"

namespace redfat {

// Fig. 5 step 1: instrument in profiling mode, run the test suite (train
// inputs), and distill the allow-list.
inline AllowList ProfileAndAllow(const BinaryImage& img, std::vector<uint64_t> train_inputs) {
  RedFatTool prof(RedFatOptions::Profile());
  Result<InstrumentResult> ir = prof.Instrument(img);
  REDFAT_CHECK(ir.ok());
  RunConfig cfg;
  cfg.inputs = std::move(train_inputs);
  cfg.policy = Policy::kLog;
  const RunOutcome out = RunImage(ir.value().image, RuntimeKind::kRedFat, cfg);
  REDFAT_CHECK(out.result.reason == HaltReason::kExit);
  return BuildAllowList(out.prof_counts, ir.value().sites);
}

inline InstrumentResult MustInstrument(const BinaryImage& img, const RedFatOptions& opts,
                                       const AllowList* allow = nullptr) {
  RedFatTool tool(opts);
  Result<InstrumentResult> r = tool.Instrument(img, allow);
  REDFAT_CHECK(r.ok());
  return std::move(r).value();
}

inline double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace redfat

#endif  // REDFAT_BENCH_COMMON_H_
