// §7.1 "False positives": SPEC reruns with full (Redzone)+(LowFat) on every
// memory access (no profile-based allow-list).
//
// A false positive is a site reported under full-on checking that is NOT
// reported under redzone-only checking (the latter's reports are real
// errors: calculix's array[-1] underflows, wrf's overflow read). The bench
// prints, per benchmark: measured FP sites vs. the paper's count, and
// verifies the allow-list workflow eliminates every FP.
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "src/workloads/spec.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

std::set<uint64_t> ReportedSiteAddrs(const RunOutcome& out,
                                     const std::vector<SiteRecord>& sites) {
  std::set<uint64_t> addrs;
  for (const MemErrorReport& e : out.errors) {
    addrs.insert(sites[e.site].addr);
  }
  return addrs;
}

int Main() {
  std::printf("\nFalse positives under full-on (Redzone)+(LowFat) checking, per benchmark\n\n");
  std::printf("%-12s %10s %10s %12s %16s\n", "Binary", "FP sites", "(paper)", "real errors",
              "FPs w/ allowlist");
  unsigned total_fp = 0;
  unsigned total_fp_allow = 0;
  PassTimeAggregator pass_times;
  for (const SpecBenchmark& bench : SpecSuite()) {
    const BinaryImage img = BuildSpecBenchmark(bench);
    RunConfig ref;
    ref.inputs = RefInputs(bench.ref_iters);
    ref.policy = Policy::kLog;

    // Full-on: no allow-list.
    const InstrumentResult full = MustInstrument(img, RedFatOptions{});
    pass_times.Add(full.pipeline_stats);
    const RunOutcome full_run = RunImage(full.image, RuntimeKind::kRedFat, ref);
    const std::set<uint64_t> full_sites = ReportedSiteAddrs(full_run, full.sites);

    // Redzone-only: its reports are the real memory errors.
    RedFatOptions rz;
    rz.lowfat = false;
    const InstrumentResult rz_ir = MustInstrument(img, rz);
    const RunOutcome rz_run = RunImage(rz_ir.image, RuntimeKind::kRedFat, ref);
    const std::set<uint64_t> real_sites = ReportedSiteAddrs(rz_run, rz_ir.sites);

    unsigned fp = 0;
    for (uint64_t addr : full_sites) {
      if (real_sites.count(addr) == 0) {
        ++fp;
      }
    }

    // With the Fig. 5 workflow, FPs must vanish.
    const AllowList allow = ProfileAndAllow(img, TrainInputs(bench.train_iters));
    const InstrumentResult hard = MustInstrument(img, RedFatOptions{}, &allow);
    const RunOutcome hard_run = RunImage(hard.image, RuntimeKind::kRedFat, ref);
    const std::set<uint64_t> hard_sites = ReportedSiteAddrs(hard_run, hard.sites);
    unsigned fp_allow = 0;
    for (uint64_t addr : hard_sites) {
      if (real_sites.count(addr) == 0) {
        ++fp_allow;
      }
    }

    total_fp += fp;
    total_fp_allow += fp_allow;
    if (fp != 0 || bench.paper_fp_sites != 0 || !real_sites.empty()) {
      std::printf("%-12s %10u %10u %12zu %16u\n", bench.name.c_str(), fp,
                  bench.paper_fp_sites, real_sites.size(), fp_allow);
    }
  }
  pass_times.Print(
      "Instrumentation time by pipeline pass (full-on config, --stats JSON)");
  std::printf("\nTotal FP sites: %u (paper: 85 across 9 benchmarks); with allow-list: %u "
              "(paper: 0)\n",
              total_fp, total_fp_allow);
  return total_fp_allow == 0 ? 0 : 1;
}

}  // namespace
}  // namespace redfat

int main() { return redfat::Main(); }
