// Allocator ablation (google-benchmark).
//
// The paper relies on the low-fat allocator being essentially free compared
// to glibc malloc (~1% performance, §2.1). Two measurements:
//   * host-side throughput of the allocator implementations themselves
//     (LowFatHeap vs LegacyHeap vs the redzone wrapper);
//   * the modeled guest-visible cycle cost per call.
//
// This bench never runs the rewriting pipeline, so it is the one experiment
// harness without a PassTimeAggregator table; allocator runtime gauges are
// instead available via `rfrun --metrics` (lowfat.* / redzone.live_bytes).
#include <benchmark/benchmark.h>

#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/support/rng.h"

namespace redfat {
namespace {

void BM_LowFatAllocFree(benchmark::State& state) {
  LowFatHeap heap(/*quarantine_slots=*/0);
  Rng rng(1);
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t slot = heap.Alloc(size);
    benchmark::DoNotOptimize(slot);
    heap.Free(slot);
  }
}
BENCHMARK(BM_LowFatAllocFree)->Arg(16)->Arg(48)->Arg(512)->Arg(4096);

void BM_LegacyAllocFree(benchmark::State& state) {
  Memory mem;
  LegacyHeap heap;
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t p = heap.Alloc(mem, size);
    benchmark::DoNotOptimize(p);
    heap.Free(p);
  }
}
BENCHMARK(BM_LegacyAllocFree)->Arg(16)->Arg(48)->Arg(512)->Arg(4096);

void BM_RedFatWrapperAllocFree(benchmark::State& state) {
  Memory mem;
  RedFatAllocator alloc(/*quarantine_slots=*/0);
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t p = alloc.Malloc(mem, size).ptr;
    benchmark::DoNotOptimize(p);
    alloc.Free(mem, p);
  }
}
BENCHMARK(BM_RedFatWrapperAllocFree)->Arg(16)->Arg(48)->Arg(512)->Arg(4096);

void BM_LowFatBaseOperation(benchmark::State& state) {
  // The base(ptr) primitive the checks lean on: must be a few ns.
  Rng rng(7);
  uint64_t ptr = (uint64_t{3} << kRegionShift) + 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LowFatBase(ptr));
    ptr += 48;
  }
}
BENCHMARK(BM_LowFatBaseOperation);

void BM_GuestCycleCosts(benchmark::State& state) {
  // Reported once: modeled guest cycles per malloc under each binding.
  Memory mem;
  GlibcLikeAllocator glibc;
  RedFatAllocator redfat;
  uint64_t g = 0;
  uint64_t r = 0;
  for (auto _ : state) {
    g = glibc.Malloc(mem, 64).cycles;
    r = redfat.Malloc(mem, 64).cycles;
    benchmark::DoNotOptimize(g + r);
  }
  state.counters["glibc_cycles"] = static_cast<double>(g);
  state.counters["libredfat_cycles"] = static_cast<double>(r);
  state.counters["overhead_pct"] = 100.0 * (static_cast<double>(r) / g - 1.0);
}
BENCHMARK(BM_GuestCycleCosts);

}  // namespace
}  // namespace redfat

BENCHMARK_MAIN();
