// Allocator ablation (google-benchmark).
//
// The paper relies on the low-fat allocator being essentially free compared
// to glibc malloc (~1% performance, §2.1). Two measurements:
//   * host-side throughput of the allocator implementations themselves
//     (LowFatHeap vs LegacyHeap vs the redzone wrapper);
//   * the modeled guest-visible cycle cost per call.
//
// This bench never runs the rewriting pipeline, so it is the one experiment
// harness without a PassTimeAggregator table; allocator runtime gauges are
// instead available via `rfrun --metrics` (lowfat.* / redzone.live_bytes).
#include <benchmark/benchmark.h>

#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/support/rng.h"

namespace redfat {
namespace {

void BM_LowFatAllocFree(benchmark::State& state) {
  Memory mem;
  LowFatHeap heap(/*quarantine_slots=*/0);
  Rng rng(1);
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t slot = heap.Alloc(mem, size).slot;
    benchmark::DoNotOptimize(slot);
    heap.Free(mem, slot);
  }
}
BENCHMARK(BM_LowFatAllocFree)->Arg(16)->Arg(48)->Arg(512)->Arg(4096);

// One cell per rheap hardening feature: host-side throughput of the full
// alloc/free cycle with that feature enabled in isolation (arg 0 selects the
// feature, arg 1 the size). Read next to BM_LowFatAllocFree to see what each
// check adds on top of the bare freelist fast path.
void BM_RheapFeatureAllocFree(benchmark::State& state) {
  RheapOptions opts;
  opts.quarantine_slots = 0;
  const char* feature = "base";
  switch (state.range(0)) {
    case 1:
      opts.prot_freelist = true;
      feature = "prot-freelist";
      break;
    case 2:
      opts.random = true;
      feature = "random";
      break;
    case 3:
      opts.quarantine_slots = 64;
      feature = "quarantine";
      break;
    default:
      break;
  }
  Memory mem;
  LowFatHeap heap(opts);
  if (opts.random) {
    heap.EnableRandomization(0x5eed);
  }
  const uint64_t size = static_cast<uint64_t>(state.range(1));
  uint64_t cycles = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    const LowFatAllocResult a = heap.Alloc(mem, size);
    benchmark::DoNotOptimize(a.slot);
    cycles += a.cycles + heap.Free(mem, a.slot).cycles;
    ++ops;
  }
  state.SetLabel(feature);
  if (ops != 0) {
    state.counters["guest_cycles_per_op"] =
        static_cast<double>(cycles) / static_cast<double>(ops);
  }
}
BENCHMARK(BM_RheapFeatureAllocFree)
    ->ArgsProduct({{0, 1, 2, 3}, {48, 512}});

void BM_LegacyAllocFree(benchmark::State& state) {
  Memory mem;
  LegacyHeap heap;
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t p = heap.Alloc(mem, size);
    benchmark::DoNotOptimize(p);
    heap.Free(p);
  }
}
BENCHMARK(BM_LegacyAllocFree)->Arg(16)->Arg(48)->Arg(512)->Arg(4096);

void BM_RedFatWrapperAllocFree(benchmark::State& state) {
  Memory mem;
  RedFatAllocator alloc(/*quarantine_slots=*/0);
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t p = alloc.Malloc(mem, size).ptr;
    benchmark::DoNotOptimize(p);
    alloc.Free(mem, p);
  }
}
BENCHMARK(BM_RedFatWrapperAllocFree)->Arg(16)->Arg(48)->Arg(512)->Arg(4096);

void BM_LowFatBaseOperation(benchmark::State& state) {
  // The base(ptr) primitive the checks lean on: must be a few ns.
  Rng rng(7);
  uint64_t ptr = (uint64_t{3} << kRegionShift) + 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LowFatBase(ptr));
    ptr += 48;
  }
}
BENCHMARK(BM_LowFatBaseOperation);

void BM_GuestCycleCosts(benchmark::State& state) {
  // Reported once: modeled guest cycles per malloc under each binding,
  // amortized over the run (the first allocation in a class pays a one-time
  // segment carve the bump fast path then amortizes away).
  Memory mem;
  GlibcLikeAllocator glibc;
  RedFatAllocator redfat;
  uint64_t g = 0;
  uint64_t r = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    g += glibc.Malloc(mem, 64).cycles;
    r += redfat.Malloc(mem, 64).cycles;
    ++ops;
    benchmark::DoNotOptimize(g + r);
  }
  if (ops != 0) {
    const double gd = static_cast<double>(g) / static_cast<double>(ops);
    const double rd = static_cast<double>(r) / static_cast<double>(ops);
    state.counters["glibc_cycles"] = gd;
    state.counters["libredfat_cycles"] = rd;
    state.counters["overhead_pct"] = 100.0 * (rd / gd - 1.0);
  }
}
BENCHMARK(BM_GuestCycleCosts);

}  // namespace
}  // namespace redfat

BENCHMARK_MAIN();
