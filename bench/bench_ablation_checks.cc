// Check-design ablation (§4.2, §6 "additional low-level optimizations").
//
// Quantifies design choices DESIGN.md calls out, on a fixed mid-weight
// workload:
//   * merged-UB underflow trick vs. separate UAF/LB/UB compare chains;
//   * clobber analysis (dead registers/flags) vs. always save/restore;
//   * size-metadata hardening cost;
//   * trampoline anatomy: bytes of check code per instrumented site.
#include <cstdio>

#include "bench/common.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

struct Variant {
  const char* name;
  RedFatOptions opts;
};

int Main() {
  SynthParams p;
  p.seed = 0xab1a7e;
  p.mem_pct = 35;
  p.stream_pct = 6;
  p.max_accesses_per_ptr = 4;
  const BinaryImage img = GenerateSynthProgram(p);
  RunConfig cfg;
  cfg.inputs = RefInputs(800);
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  REDFAT_CHECK(base.result.reason == HaltReason::kExit);

  RedFatOptions no_merged_ub;
  no_merged_ub.merged_ub = false;
  RedFatOptions no_clobber;
  no_clobber.clobber_analysis = false;
  RedFatOptions no_size = RedFatOptions::NoSize();
  RedFatOptions everything_off;
  everything_off.merged_ub = false;
  everything_off.clobber_analysis = false;

  const Variant variants[] = {
      {"full (merged-UB + clobber + size)", RedFatOptions{}},
      {"separate UAF/LB/UB branches", no_merged_ub},
      {"no clobber analysis (always save)", no_clobber},
      {"no size-metadata hardening", no_size},
      {"no merged-UB, no clobber", everything_off},
  };

  std::printf("\nCheck-design ablation (fixed workload, lower is better)\n\n");
  std::printf("%-36s %9s %12s %14s\n", "Variant", "slowdown", "tramp bytes", "bytes/site");
  PassTimeAggregator pass_times;
  for (const Variant& v : variants) {
    const InstrumentResult ir = MustInstrument(img, v.opts);
    pass_times.Add(ir.pipeline_stats);
    const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
    REDFAT_CHECK(out.result.reason == HaltReason::kExit);
    REDFAT_CHECK(out.outputs == base.outputs);
    const double slow =
        static_cast<double>(out.result.cycles) / static_cast<double>(base.result.cycles);
    std::printf("%-36s %8.2fx %12llu %14.1f\n", v.name, slow,
                static_cast<unsigned long long>(ir.rewrite_stats.trampoline_bytes),
                static_cast<double>(ir.rewrite_stats.trampoline_bytes) /
                    static_cast<double>(ir.plan_stats.checks_emitted));
  }
  pass_times.Print(
      "Instrumentation time by pipeline pass (all variants, --stats JSON)");
  std::printf("\nExpected: the merged-UB trick and clobber analysis each shave cycles\n"
              "(the paper judges the branch removal \"worthwhile\", §4.2); disabling\n"
              "size hardening trades a little security for a little speed.\n");

  // --- redzone implementation ablation (§4.1) ----------------------------
  // The paper's metadata-in-redzone scheme vs. an ASAN-style shadow map
  // (naive concatenation of the two methodologies).
  std::printf("\nRedzone implementation ablation (§4.1)\n\n");
  std::printf("%-36s %9s %14s %14s\n", "Implementation", "slowdown", "guest pages",
              "padding OOB?");
  {
    const InstrumentResult meta = MustInstrument(img, RedFatOptions{});
    const RunOutcome m = RunImage(meta.image, RuntimeKind::kRedFat, cfg);
    REDFAT_CHECK(m.outputs == base.outputs);
    std::printf("%-36s %8.2fx %14llu %14s\n", "metadata-in-redzone (RedFat)",
                static_cast<double>(m.result.cycles) / base.result.cycles,
                static_cast<unsigned long long>(m.touched_pages), "detected");

    RedFatOptions sh;
    sh.redzone_impl = RedzoneImpl::kShadow;
    const InstrumentResult shadow = MustInstrument(img, sh);
    const RunOutcome s = RunImage(shadow.image, RuntimeKind::kRedFatShadow, cfg);
    REDFAT_CHECK(s.outputs == base.outputs);
    std::printf("%-36s %8.2fx %14llu %14s\n", "ASAN-style shadow (concatenated)",
                static_cast<double>(s.result.cycles) / base.result.cycles,
                static_cast<unsigned long long>(s.touched_pages), "missed");
  }
  std::printf("\nThe shadow scheme needs separate bookkeeping (extra guest pages for the\n"
              "shadow map, O(size) marking per malloc/free) and loses exact malloc-size\n"
              "bounds, so overflows into allocation padding go undetected\n"
              "(tests/extensions_test.cc MissesPaddingOverflowUnlikeMetadataImpl).\n");
  return 0;
}

}  // namespace
}  // namespace redfat

int main() { return redfat::Main(); }
