// Hardening-tier overhead budgets (core/policy.h).
//
// Runs one mid-weight synthetic workload through the full Fig. 5 workflow
// (profile -> allow-list -> production rewrite), once per hardening tier,
// each under the tier's resolved runtime binding:
//
//   none      - uninstrumented rewrite, baseline runtime
//   fast      - lowfat-only sites ((Redzone)-demoted sites left bare)
//   extensive - the paper's default configuration
//   debug     - + redfat-debug runtime and the DBI shadow-check observer
//
// Asserts, per tier, that the measured slowdown over the baseline run stays
// within TierOverheadBudgetPct (the ceilings CI enforces), and that the
// tiers order by checking strength. Writes BENCH_harden_tiers.json.
//
// Usage:
//   bench_harden_tiers [--quick] [--out FILE]
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "src/core/policy.h"
#include "src/dbi/shadow_check.h"
#include "src/support/str.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

struct TierMeasure {
  HardenTier tier = HardenTier::kNone;
  size_t sites = 0;
  size_t redzone_dropped = 0;
  uint64_t cycles = 0;
  double overhead_pct = 0.0;
  uint64_t observer_checks = 0;
};

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_harden_tiers.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_harden_tiers [--quick] [--out FILE]\n");
      return 2;
    }
  }
  const uint64_t iterations = quick ? 200 : 1500;

  // A workload where the tiers genuinely differ: anti-idiom sites fail
  // profiling, fall off the allow-list, and demote to (Redzone)-only checks
  // -- which extensive keeps and fast drops.
  SynthParams p;
  p.seed = 0x7125;
  p.mem_pct = 35;
  p.stream_pct = 5;
  p.max_accesses_per_ptr = 3;
  p.anti_idiom_sites = 4;
  p.anti_idiom_pct = 12;
  const BinaryImage img = GenerateSynthProgram(p);
  const AllowList allow = ProfileAndAllow(img, {iterations / 4});

  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.inputs = {iterations};
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  REDFAT_CHECK(base.result.reason == HaltReason::kExit);

  const HardenTier tiers[] = {HardenTier::kNone, HardenTier::kFast,
                              HardenTier::kExtensive, HardenTier::kDebug};
  std::vector<TierMeasure> rows;
  std::printf("hardening-tier overhead (synthetic workload, %llu iterations)\n\n",
              static_cast<unsigned long long>(iterations));
  std::printf("%-10s %7s %9s %14s %10s %10s\n", "tier", "sites", "dropped",
              "guest-cyc", "overhead", "budget");
  for (HardenTier tier : tiers) {
    HardeningPolicy policy;
    policy.tier = tier;
    const ResolvedPolicy resolved = policy.Resolve().value();
    RedFatTool tool(resolved);
    Result<InstrumentResult> ir = tool.Instrument(img, &allow);
    REDFAT_CHECK(ir.ok());

    ShadowCheckObserver observer;
    RunConfig tier_cfg = cfg;
    if (resolved.dbi_shadow_check) {
      tier_cfg.observer = &observer;
    }
    const RunOutcome out = RunImage(ir.value().image, resolved.runtime, tier_cfg);
    REDFAT_CHECK(out.result.reason == HaltReason::kExit);
    // The workload is FP-free by construction once the allow-list is
    // applied; every tier must run it clean and compute the same checksum.
    REDFAT_CHECK(out.outputs == base.outputs);
    REDFAT_CHECK(out.errors.empty());

    TierMeasure m;
    m.tier = tier;
    m.sites = ir.value().sites.size();
    m.redzone_dropped = ir.value().plan_stats.redzone_dropped;
    m.cycles = out.result.cycles;
    m.overhead_pct = 100.0 * (static_cast<double>(out.result.cycles) /
                                  static_cast<double>(base.result.cycles) -
                              1.0);
    m.observer_checks = observer.checks();
    rows.push_back(m);
    std::printf("%-10s %7zu %9zu %14llu %9.1f%% %9.0f%%\n", HardenTierName(tier),
                m.sites, m.redzone_dropped, static_cast<unsigned long long>(m.cycles),
                m.overhead_pct, TierOverheadBudgetPct(tier));
  }

  // The budget asserts CI relies on, plus strength ordering.
  for (const TierMeasure& m : rows) {
    REDFAT_CHECK(m.overhead_pct <= TierOverheadBudgetPct(m.tier));
  }
  REDFAT_CHECK(rows[0].sites == 0);                  // none: nothing instrumented
  REDFAT_CHECK(rows[1].redzone_dropped > 0);         // fast: dropped demoted sites
  REDFAT_CHECK(rows[1].sites < rows[2].sites);       // fast < extensive coverage
  REDFAT_CHECK(rows[2].redzone_dropped == 0);        // extensive keeps them
  REDFAT_CHECK(rows[1].cycles <= rows[2].cycles);    // ...and pays for them
  REDFAT_CHECK(rows[2].cycles < rows[3].cycles);     // debug pays for the DBI pass
  REDFAT_CHECK(rows[3].observer_checks > 0);         // the observer actually ran

  std::string json = "{\"bench\":\"harden_tiers\",";
  json += StrFormat("\"iterations\":%llu,\"quick\":%s,",
                    static_cast<unsigned long long>(iterations),
                    quick ? "true" : "false");
  json += StrFormat("\"baseline_cycles\":%llu,\"tiers\":[",
                    static_cast<unsigned long long>(base.result.cycles));
  for (size_t i = 0; i < rows.size(); ++i) {
    const TierMeasure& m = rows[i];
    json += StrFormat(
        "%s{\"tier\":\"%s\",\"sites\":%zu,\"redzone_dropped\":%zu,"
        "\"guest_cycles\":%llu,\"overhead_pct\":%.2f,\"budget_pct\":%.1f,"
        "\"observer_checks\":%llu}",
        i == 0 ? "" : ",", HardenTierName(m.tier), m.sites, m.redzone_dropped,
        static_cast<unsigned long long>(m.cycles), m.overhead_pct,
        TierOverheadBudgetPct(m.tier),
        static_cast<unsigned long long>(m.observer_checks));
  }
  json += "]}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_harden_tiers: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
