// Table 2: non-incremental bounds errors — CVE models + the 480-case
// Juliet-like CWE-122 suite.
//
// For every case, the attack input performs a redzone-skipping access:
//   * RedFat (full (Redzone)+(LowFat), hardening policy) must abort;
//   * Memcheck (redzone-only shadow checking) must see nothing;
// and the benign input must pass cleanly under the hardened binary (no
// false positives).
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/dbi/memcheck.h"
#include "src/workloads/cve.h"

namespace redfat {
namespace {

struct Tally {
  unsigned redfat_detected = 0;
  unsigned memcheck_detected = 0;
  unsigned benign_clean = 0;
  unsigned total = 0;
};

Tally RunCases(const std::vector<VulnCase>& cases, PassTimeAggregator& pass_times) {
  Tally t;
  for (const VulnCase& c : cases) {
    ++t.total;
    const InstrumentResult ir = MustInstrument(c.image, RedFatOptions{});
    pass_times.Add(ir.pipeline_stats);

    RunConfig attack;
    attack.inputs = c.attack_inputs;
    attack.policy = Policy::kHarden;
    if (RunImage(ir.image, RuntimeKind::kRedFat, attack).result.reason ==
        HaltReason::kMemErrorAbort) {
      ++t.redfat_detected;
    }

    RunConfig mc_cfg;
    mc_cfg.inputs = c.attack_inputs;
    mc_cfg.policy = Policy::kLog;
    const RunOutcome mc = RunMemcheck(c.image, mc_cfg);
    if (!mc.errors.empty()) {
      ++t.memcheck_detected;
    }

    RunConfig benign;
    benign.inputs = c.benign_inputs;
    benign.policy = Policy::kHarden;
    if (RunImage(ir.image, RuntimeKind::kRedFat, benign).result.reason == HaltReason::kExit) {
      ++t.benign_clean;
    }
  }
  return t;
}

int Main() {
  std::printf("\nTable 2: CVEs/CWEs for non-incremental bounds errors\n\n");
  std::printf("%-34s %14s %14s %14s\n", "Entry", "Memcheck", "RedFat", "benign-clean");
  PassTimeAggregator pass_times;
  for (const VulnCase& c : CveCases()) {
    const Tally t = RunCases({c}, pass_times);
    std::printf("%-34s %8u/%u (%3.0f%%) %8u/%u (%3.0f%%) %11u/%u\n", c.name.c_str(),
                t.memcheck_detected, t.total, 100.0 * t.memcheck_detected / t.total,
                t.redfat_detected, t.total, 100.0 * t.redfat_detected / t.total,
                t.benign_clean, t.total);
  }
  const Tally j = RunCases(JulietCwe122Cases(), pass_times);
  std::printf("%-34s %7u/%u (%3.0f%%) %7u/%u (%3.0f%%) %9u/%u\n", "CWE-122-Heap-Buffer (Juliet)",
              j.memcheck_detected, j.total, 100.0 * j.memcheck_detected / j.total,
              j.redfat_detected, j.total, 100.0 * j.redfat_detected / j.total, j.benign_clean,
              j.total);
  pass_times.Print(
      "Instrumentation time by pipeline pass (all cases, --stats JSON)");
  std::printf("\nPaper: Memcheck 0%% everywhere; RedFat 100%% everywhere (4 CVEs + 480 Juliet).\n");
  return 0;
}

}  // namespace
}  // namespace redfat

int main() { return redfat::Main(); }
