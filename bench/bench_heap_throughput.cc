// Heap-throughput pricing of the rheap allocator features (DESIGN.md §4.14).
//
// Runs two allocation-heavy workloads — the server request/response program
// and the churn fragmentation program — through the extensive rewrite, once
// per rheap feature cell:
//
//   base           every feature off, quarantine=0 (the bare O(1) fast path)
//   prot-freelist  obfuscated+validated in-guest freelist links
//   guard-memcpy   memcpy/memset range pre-checks
//   random         randomized placement and reuse order
//   quarantine     delayed reuse, depth 64
//   all            everything on at once
//
// Asserts, per cell, that (a) outputs are identical to the uninstrumented
// baseline (the features must never change guest-visible behaviour), and
// (b) each individual feature costs < 5% guest cycles over the base cell
// (the paper's "essentially free" allocator claim, feature by feature).
// Also asserts the overhaul's headline win: the churn base cell's modeled
// malloc/free cycles undercut the pre-overhaul flat cost model by >= 20%.
// Writes BENCH_heap_throughput.json.
//
// Usage:
//   bench_heap_throughput [--quick] [--out FILE]
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "src/heap/cost_model.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

// Per-feature budget over the base cell, and the minimum fast-path win of
// the freelist overhaul against the old flat per-call model.
constexpr double kFeatureBudgetPct = 5.0;
constexpr double kMinReductionPct = 20.0;

struct FeatureCell {
  const char* name;
  RheapOptions opts;
};

std::vector<FeatureCell> Cells() {
  std::vector<FeatureCell> cells;
  RheapOptions base;
  base.quarantine_slots = 0;
  cells.push_back({"base", base});
  RheapOptions prot = base;
  prot.prot_freelist = true;
  cells.push_back({"prot-freelist", prot});
  RheapOptions guard = base;
  guard.guard_memcpy = true;
  cells.push_back({"guard-memcpy", guard});
  RheapOptions random = base;
  random.random = true;
  cells.push_back({"random", random});
  RheapOptions quarantine = base;
  quarantine.quarantine_slots = 64;
  cells.push_back({"quarantine", quarantine});
  RheapOptions all;
  all.prot_freelist = all.guard_memcpy = all.random = true;
  all.quarantine_slots = 64;
  cells.push_back({"all", all});
  return cells;
}

struct CellMeasure {
  std::string name;
  uint64_t guest_cycles = 0;
  uint64_t alloc_cycles = 0;  // modeled lowfat malloc+free cycles
  uint64_t allocs = 0;
  uint64_t frees = 0;
  double overhead_pct = 0.0;  // guest cycles over the base cell
};

struct WorkloadMeasure {
  std::string name;
  uint64_t old_model_cycles = 0;  // pre-overhaul flat-cost model
  double reduction_pct = 0.0;     // base cell's win against it
  std::vector<CellMeasure> cells;
};

double Gauge(const TelemetrySnapshot& snap, const std::string& name) {
  const auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0.0 : it->second;
}

WorkloadMeasure MeasureWorkload(const char* name, const BinaryImage& img,
                                const std::vector<uint64_t>& inputs) {
  RunConfig cfg;
  cfg.inputs = inputs;
  const RunOutcome base_run = RunImage(img, RuntimeKind::kBaseline, cfg);
  REDFAT_CHECK(base_run.result.reason == HaltReason::kExit);
  REDFAT_CHECK(!base_run.outputs.empty());

  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});

  WorkloadMeasure wm;
  wm.name = name;
  for (const FeatureCell& cell : Cells()) {
    TelemetryRegistry telemetry;
    RunConfig cell_cfg = cfg;
    cell_cfg.rheap = cell.opts;
    cell_cfg.telemetry = &telemetry;
    const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cell_cfg);
    REDFAT_CHECK(out.result.reason == HaltReason::kExit);
    // The identity contract: no feature may change guest-visible behaviour
    // on a well-behaved program.
    REDFAT_CHECK(out.outputs == base_run.outputs);
    REDFAT_CHECK(out.errors.empty());

    const TelemetrySnapshot snap = telemetry.Snapshot();
    CellMeasure m;
    m.name = cell.name;
    m.guest_cycles = out.result.cycles;
    m.allocs = static_cast<uint64_t>(Gauge(snap, "lowfat.allocs"));
    m.frees = static_cast<uint64_t>(Gauge(snap, "lowfat.frees"));
    m.alloc_cycles = static_cast<uint64_t>(Gauge(snap, "lowfat.malloc_cycles") +
                                           Gauge(snap, "lowfat.free_cycles"));
    REDFAT_CHECK(m.allocs > 0 && m.frees > 0);
    wm.cells.push_back(m);
  }

  const CellMeasure& base_cell = wm.cells[0];
  for (CellMeasure& m : wm.cells) {
    m.overhead_pct = 100.0 * (static_cast<double>(m.guest_cycles) /
                                  static_cast<double>(base_cell.guest_cycles) -
                              1.0);
  }
  // Pre-overhaul cost model: every malloc/free paid a flat charge
  // (kMallocCycles=25 / kFreeCycles=15 plus kRedzoneWrapperCycles=5 each,
  // the constants the segmented-arena + intrusive-freelist fast path
  // replaced). The wrapper's per-op kRedzoneMeta is charged on both sides,
  // so the comparison below is lowfat-core cycles vs lowfat-core model.
  wm.old_model_cycles = base_cell.allocs * 30 + base_cell.frees * 20 -
                        (base_cell.allocs + base_cell.frees) * heapcost::kRedzoneMeta;
  wm.reduction_pct = 100.0 * (1.0 - static_cast<double>(base_cell.alloc_cycles) /
                                        static_cast<double>(wm.old_model_cycles));
  return wm;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_heap_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_heap_throughput [--quick] [--out FILE]\n");
      return 2;
    }
  }

  ServerParams sp;
  sp.seed = 0x5e7;
  ChurnParams cp;
  cp.seed = 0xc472;
  std::vector<WorkloadMeasure> workloads;
  workloads.push_back(MeasureWorkload("server", GenerateServerProgram(sp),
                                      {quick ? 800u : 6000u}));
  workloads.push_back(MeasureWorkload("churn", GenerateChurnProgram(cp),
                                      {quick ? 2000u : 20000u, 0}));

  for (const WorkloadMeasure& wm : workloads) {
    std::printf("\n%s workload\n", wm.name.c_str());
    std::printf("  %-14s %14s %12s %9s %9s %10s\n", "cell", "guest-cyc",
                "alloc-cyc", "allocs", "frees", "overhead");
    for (const CellMeasure& m : wm.cells) {
      std::printf("  %-14s %14llu %12llu %9llu %9llu %9.2f%%\n", m.name.c_str(),
                  static_cast<unsigned long long>(m.guest_cycles),
                  static_cast<unsigned long long>(m.alloc_cycles),
                  static_cast<unsigned long long>(m.allocs),
                  static_cast<unsigned long long>(m.frees), m.overhead_pct);
    }
    std::printf("  fast-path cycles vs pre-overhaul model: %llu vs %llu (-%.1f%%)\n",
                static_cast<unsigned long long>(wm.cells[0].alloc_cycles),
                static_cast<unsigned long long>(wm.old_model_cycles),
                wm.reduction_pct);
  }

  // The CI gates: per-feature budget and the overhaul's fast-path win.
  for (const WorkloadMeasure& wm : workloads) {
    for (const CellMeasure& m : wm.cells) {
      if (m.name == "all") {
        continue;  // the combined cell is informational, not budgeted
      }
      REDFAT_CHECK(m.overhead_pct < kFeatureBudgetPct);
    }
    REDFAT_CHECK(wm.reduction_pct >= kMinReductionPct);
  }

  std::string json = StrFormat("{\"bench\":\"heap_throughput\",\"quick\":%s,"
                               "\"feature_budget_pct\":%.1f,\"workloads\":[",
                               quick ? "true" : "false", kFeatureBudgetPct);
  for (size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadMeasure& wm = workloads[w];
    json += StrFormat("%s{\"name\":\"%s\",\"old_model_cycles\":%llu,"
                      "\"reduction_pct\":%.2f,\"cells\":[",
                      w == 0 ? "" : ",", wm.name.c_str(),
                      static_cast<unsigned long long>(wm.old_model_cycles),
                      wm.reduction_pct);
    for (size_t i = 0; i < wm.cells.size(); ++i) {
      const CellMeasure& m = wm.cells[i];
      json += StrFormat(
          "%s{\"cell\":\"%s\",\"guest_cycles\":%llu,\"alloc_cycles\":%llu,"
          "\"allocs\":%llu,\"frees\":%llu,\"overhead_pct\":%.3f}",
          i == 0 ? "" : ",", m.name.c_str(),
          static_cast<unsigned long long>(m.guest_cycles),
          static_cast<unsigned long long>(m.alloc_cycles),
          static_cast<unsigned long long>(m.allocs),
          static_cast<unsigned long long>(m.frees), m.overhead_pct);
    }
    json += "]}";
  }
  json += "]}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_heap_throughput: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
