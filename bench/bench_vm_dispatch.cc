// VM dispatch-engine benchmark: host wall-clock throughput (guest MIPS) of
// the superblock engine's dispatch modes vs the reference stepper.
//
// Runs one Kraken kernel — baseline and RedFat-instrumented — under four
// dispatch modes, with and without telemetry attached, best-of-reps, and
// writes BENCH_vm_dispatch.json:
//
//   step    — reference per-instruction interpreter
//   block   — superblock engine, chaining and specialization off
//   spec    — superblock engine + specialized opcode handlers, no chaining
//   chained — direct superblock chaining + specialization + traces (the
//             production default)
//
// Guest-visible results are asserted identical across every mode on every
// cell (the bit-identity contract the differential test proves exhaustively,
// re-checked on the bench workload); only the host time may differ. CI gates
// on speedup_instrumented ≥ 3x (chained vs step, telemetry off).
//
//   bench_vm_dispatch [--quick] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/support/parallel.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/workloads/kraken.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Mode {
  const char* name;
  VmEngine engine;
  bool chain;
  bool specialize;
};

constexpr Mode kModes[] = {
    {"step", VmEngine::kStep, false, false},
    {"block", VmEngine::kBlock, false, false},
    {"spec", VmEngine::kBlock, false, true},
    {"chained", VmEngine::kBlock, true, true},
};

struct Cell {
  const char* image;      // "baseline" | "instrumented"
  const char* mode;       // see kModes
  bool telemetry = false;
  uint64_t instructions = 0;
  double wall_ms = 0.0;  // best of reps
  double mips = 0.0;     // guest instructions / host second, in millions
};

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_vm_dispatch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_vm_dispatch [--quick] [--out FILE]\n");
      return 2;
    }
  }

  const KrakenBenchmark& bench = KrakenSuite().front();
  const BinaryImage baseline = BuildKrakenBenchmark(bench);
  const InstrumentResult instrumented = MustInstrument(baseline, RedFatOptions{});
  const uint64_t iters = quick ? 300 : 2000;
  const int reps = quick ? 2 : 3;

  std::printf("vm-dispatch bench: kraken/%s, %llu iters, best of %d rep%s\n\n",
              bench.name.c_str(), static_cast<unsigned long long>(iters), reps,
              reps == 1 ? "" : "s");
  std::printf("%14s %8s %10s %14s %12s %10s\n", "image", "mode", "telemetry",
              "instructions", "wall(ms)", "MIPS");

  struct ImageCase {
    const char* name;
    const BinaryImage* img;
    RuntimeKind runtime;
  };
  const ImageCase images[] = {
      {"baseline", &baseline, RuntimeKind::kBaseline},
      {"instrumented", &instrumented.image, RuntimeKind::kRedFat},
  };

  std::vector<Cell> cells;
  for (const ImageCase& ic : images) {
    for (const bool with_telemetry : {false, true}) {
      // The step run doubles as the reference fingerprint for every other
      // mode's cell.
      std::string ref_fingerprint;
      for (const Mode& mode : kModes) {
        Cell cell;
        cell.image = ic.name;
        cell.mode = mode.name;
        cell.telemetry = with_telemetry;
        std::string fingerprint;
        for (int rep = 0; rep < reps; ++rep) {
          TelemetryRegistry telemetry;
          RunConfig cfg;
          cfg.inputs = RefInputs(iters);
          cfg.engine = mode.engine;
          cfg.chain = mode.chain;
          cfg.specialize = mode.specialize;
          if (with_telemetry) {
            cfg.telemetry = &telemetry;
          }
          const double t0 = NowMs();
          const RunOutcome out = RunImage(*ic.img, ic.runtime, cfg);
          const double wall = NowMs() - t0;
          REDFAT_CHECK(out.result.reason == HaltReason::kExit);
          cell.instructions = out.result.instructions;
          fingerprint = StrFormat(
              "%llu/%llu/%llu", static_cast<unsigned long long>(out.result.cycles),
              static_cast<unsigned long long>(out.result.instructions),
              static_cast<unsigned long long>(out.outputs.empty() ? 0 : out.outputs[0]));
          if (with_telemetry) {
            fingerprint += "|" + telemetry.Snapshot().ToJson();
          }
          if (rep == 0 || wall < cell.wall_ms) {
            cell.wall_ms = wall;
          }
        }
        if (ref_fingerprint.empty()) {
          ref_fingerprint = fingerprint;
        } else {
          REDFAT_CHECK(fingerprint == ref_fingerprint);  // bit-identity contract
        }
        cell.mips = cell.wall_ms > 0.0
                        ? static_cast<double>(cell.instructions) / (cell.wall_ms * 1000.0)
                        : 0.0;
        std::printf("%14s %8s %10s %14llu %12.2f %10.1f\n", cell.image, cell.mode,
                    cell.telemetry ? "on" : "off",
                    static_cast<unsigned long long>(cell.instructions), cell.wall_ms,
                    cell.mips);
        cells.push_back(cell);
      }
    }
  }

  auto find_mips = [&](const char* image, const char* mode, bool telemetry) {
    for (const Cell& c : cells) {
      if (std::strcmp(c.image, image) == 0 && std::strcmp(c.mode, mode) == 0 &&
          c.telemetry == telemetry) {
        return c.mips;
      }
    }
    return 0.0;
  };
  auto speedup = [&](const char* image, const char* mode, bool telemetry) {
    const double ref = find_mips(image, "step", telemetry);
    return ref > 0.0 ? find_mips(image, mode, telemetry) / ref : 0.0;
  };
  // The CI-gated headline: production dispatch (chained) vs the stepper on
  // the instrumented image, telemetry off.
  const double speedup_baseline = speedup("baseline", "chained", false);
  const double speedup_instrumented = speedup("instrumented", "chained", false);
  const double speedup_instrumented_block = speedup("instrumented", "block", false);
  const double speedup_instrumented_spec = speedup("instrumented", "spec", false);
  const double speedup_instrumented_telemetry = speedup("instrumented", "chained", true);
  std::printf("\ninstrumented speedup vs step: block %.2fx, spec %.2fx, chained %.2fx "
              "(telemetry on: %.2fx); baseline chained %.2fx\n",
              speedup_instrumented_block, speedup_instrumented_spec,
              speedup_instrumented, speedup_instrumented_telemetry, speedup_baseline);

  std::string json = "{\"bench\":\"vm_dispatch\",";
  json += StrFormat("\"hw_threads\":%u,", HardwareJobs());
  json += StrFormat("\"kernel\":\"%s\",", bench.name.c_str());
  json += StrFormat("\"iters\":%llu,", static_cast<unsigned long long>(iters));
  json += StrFormat("\"reps\":%d,\"quick\":%s,", reps, quick ? "true" : "false");
  json += StrFormat("\"speedup_baseline\":%.3f,", speedup_baseline);
  json += StrFormat("\"speedup_instrumented\":%.3f,", speedup_instrumented);
  json += StrFormat("\"speedup_instrumented_block\":%.3f,", speedup_instrumented_block);
  json += StrFormat("\"speedup_instrumented_spec\":%.3f,", speedup_instrumented_spec);
  json += StrFormat("\"speedup_instrumented_telemetry\":%.3f,\"runs\":[",
                    speedup_instrumented_telemetry);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i != 0) {
      json += ",";
    }
    json += StrFormat(
        "{\"image\":\"%s\",\"mode\":\"%s\",\"telemetry\":%s,"
        "\"instructions\":%llu,\"wall_ms\":%.3f,\"mips\":%.3f}",
        c.image, c.mode, c.telemetry ? "true" : "false",
        static_cast<unsigned long long>(c.instructions), c.wall_ms, c.mips);
  }
  json += "]}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_vm_dispatch: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
