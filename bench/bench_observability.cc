// Observability pricing benchmark: what the forensics/telemetry/sampling
// sinks cost the HOST, and proof they cost the GUEST nothing.
//
// Runs one Kraken kernel — baseline, extensive-tier and fast-tier images —
// with each observability sink attached in turn (none, histogram telemetry,
// sampling profiler, forensic ring, everything). Guest cycles, instruction
// counts and outputs are asserted bit-identical across all sinks on every
// image (the zero-guest-cost contract); the host wall-clock overhead of each
// sink is measured against a generous per-sink budget ceiling and written to
// BENCH_observability.json, alongside a microbenchmark pricing a single
// HistogramCell::Record. Budget misses are reported in the JSON
// (within_budget=false), not asserted: CI runners are noisy, and the byte
// identity of guest results is the contract worth failing a build over.
//
//   bench_observability [--quick] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/policy.h"
#include "src/heap/forensics.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/vm/profiler.h"
#include "src/workloads/kraken.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Generous host-overhead ceilings (ratio vs the sink-off run of the same
// image). Telemetry histograms and the forensic ring touch only host-call
// paths; the sampler adds loop-boundary work proportional to 1/period.
constexpr double kBudgetTelemetry = 2.0;
constexpr double kBudgetSampler = 2.0;
constexpr double kBudgetForensics = 2.0;
constexpr double kBudgetAll = 2.5;

constexpr uint64_t kSamplePeriod = 64;

struct Cell {
  const char* image;
  const char* sink;
  uint64_t instructions = 0;
  uint64_t samples = 0;
  double wall_ms = 0.0;  // best of reps
  double overhead = 1.0;  // wall / sink-off wall of the same image
  double budget = 0.0;    // 0 = this IS the reference cell
  bool within_budget = true;
};

ResolvedPolicy Tier(HardenTier tier) {
  HardeningPolicy p;
  p.tier = tier;
  return p.Resolve().value();
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_observability [--quick] [--out FILE]\n");
      return 2;
    }
  }

  const KrakenBenchmark& bench = KrakenSuite().front();
  const BinaryImage baseline = BuildKrakenBenchmark(bench);
  const InstrumentResult extensive =
      MustInstrument(baseline, Tier(HardenTier::kExtensive).rewrite);
  const InstrumentResult fast = MustInstrument(baseline, Tier(HardenTier::kFast).rewrite);
  const uint64_t iters = quick ? 300 : 2000;
  const int reps = quick ? 2 : 3;

  std::printf("observability bench: kraken/%s, %llu iters, best of %d rep%s, "
              "sample period %llu\n\n",
              bench.name.c_str(), static_cast<unsigned long long>(iters), reps,
              reps == 1 ? "" : "s", static_cast<unsigned long long>(kSamplePeriod));
  std::printf("%12s %10s %14s %10s %12s %10s %8s\n", "image", "sink", "instructions",
              "samples", "wall(ms)", "overhead", "budget");

  struct ImageCase {
    const char* name;
    const BinaryImage* img;
    RuntimeKind runtime;
  };
  const ImageCase images[] = {
      {"baseline", &baseline, RuntimeKind::kBaseline},
      {"extensive", &extensive.image, RuntimeKind::kRedFat},
      {"fast", &fast.image, RuntimeKind::kRedFat},
  };
  struct SinkCase {
    const char* name;
    bool telemetry;
    bool sampler;
    bool forensics;
    double budget;  // 0 = reference
  };
  const SinkCase sinks[] = {
      {"off", false, false, false, 0.0},
      {"telemetry", true, false, false, kBudgetTelemetry},
      {"sampler", false, true, false, kBudgetSampler},
      {"forensics", false, false, true, kBudgetForensics},
      {"all", true, true, true, kBudgetAll},
  };

  std::vector<Cell> cells;
  bool all_within_budget = true;
  for (const ImageCase& ic : images) {
    std::string ref_fingerprint;
    double off_wall = 0.0;
    for (const SinkCase& sc : sinks) {
      Cell cell;
      cell.image = ic.name;
      cell.sink = sc.name;
      cell.budget = sc.budget;
      std::string fingerprint;
      for (int rep = 0; rep < reps; ++rep) {
        TelemetryRegistry telemetry;
        SampleProfiler sampler(kSamplePeriod);
        ForensicRing forensics;
        RunConfig cfg;
        cfg.inputs = RefInputs(iters);
        if (sc.telemetry) {
          cfg.telemetry = &telemetry;
        }
        if (sc.sampler) {
          cfg.sampler = &sampler;
        }
        if (sc.forensics) {
          cfg.forensics = &forensics;
        }
        const double t0 = NowMs();
        const RunOutcome out = RunImage(*ic.img, ic.runtime, cfg);
        const double wall = NowMs() - t0;
        REDFAT_CHECK(out.result.reason == HaltReason::kExit);
        REDFAT_CHECK(out.errors.empty());
        cell.instructions = out.result.instructions;
        cell.samples = sampler.samples();
        // Guest-visible fingerprint: must not depend on the attached sinks.
        fingerprint = StrFormat(
            "%llu/%llu/%llu", static_cast<unsigned long long>(out.result.cycles),
            static_cast<unsigned long long>(out.result.instructions),
            static_cast<unsigned long long>(out.outputs.empty() ? 0 : out.outputs[0]));
        if (rep == 0 || wall < cell.wall_ms) {
          cell.wall_ms = wall;
        }
      }
      if (ref_fingerprint.empty()) {
        ref_fingerprint = fingerprint;
      } else {
        REDFAT_CHECK(fingerprint == ref_fingerprint);  // zero-guest-cost contract
      }
      if (sc.budget == 0.0) {
        off_wall = cell.wall_ms;
      }
      cell.overhead = off_wall > 0.0 ? cell.wall_ms / off_wall : 1.0;
      cell.within_budget = sc.budget == 0.0 || cell.overhead <= sc.budget;
      all_within_budget = all_within_budget && cell.within_budget;
      std::printf("%12s %10s %14llu %10llu %12.2f %9.2fx %8s\n", cell.image,
                  cell.sink, static_cast<unsigned long long>(cell.instructions),
                  static_cast<unsigned long long>(cell.samples), cell.wall_ms,
                  cell.overhead,
                  sc.budget == 0.0
                      ? "-"
                      : (cell.within_budget ? "ok" : "OVER"));
      cells.push_back(cell);
    }
  }

  // Price one histogram record: the unit cost every instrumented visit pays.
  TelemetryRegistry price_reg;
  HistogramCell* price_cell = price_reg.histogram("bench.price");
  const uint64_t kRecords = quick ? 2'000'000 : 20'000'000;
  const double r0 = NowMs();
  for (uint64_t i = 0; i < kRecords; ++i) {
    price_cell->Record(i & 0xffff);
  }
  const double record_ns = (NowMs() - r0) * 1e6 / static_cast<double>(kRecords);
  std::printf("\nHistogramCell::Record: %.1f ns/record (%llu records)\n", record_ns,
              static_cast<unsigned long long>(kRecords));
  if (!all_within_budget) {
    std::printf("WARNING: some sinks exceeded their host-overhead budget\n");
  }

  std::string json = "{\"bench\":\"observability\",";
  json += StrFormat("\"kernel\":\"%s\",", bench.name.c_str());
  json += StrFormat("\"iters\":%llu,", static_cast<unsigned long long>(iters));
  json += StrFormat("\"reps\":%d,\"quick\":%s,", reps, quick ? "true" : "false");
  json += StrFormat("\"sample_period\":%llu,",
                    static_cast<unsigned long long>(kSamplePeriod));
  json += StrFormat("\"histogram_record_ns\":%.2f,", record_ns);
  json += StrFormat("\"all_within_budget\":%s,\"runs\":[",
                    all_within_budget ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i != 0) {
      json += ",";
    }
    json += StrFormat(
        "{\"image\":\"%s\",\"sink\":\"%s\",\"instructions\":%llu,\"samples\":%llu,"
        "\"wall_ms\":%.3f,\"overhead\":%.3f,\"budget\":%.2f,\"within_budget\":%s}",
        c.image, c.sink, static_cast<unsigned long long>(c.instructions),
        static_cast<unsigned long long>(c.samples), c.wall_ms, c.overhead, c.budget,
        c.within_budget ? "true" : "false");
  }
  json += "]}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_observability: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
