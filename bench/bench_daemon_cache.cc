// Daemon-cache benchmark: what does rewrite-as-a-service actually buy?
//
// Drives a RewriteService (the redfatd engine, in-process — no socket noise)
// through the three request cells and times each:
//   * cold miss      — unseen image, full pipeline run on the warm pool;
//   * warm hit       — same request again, served from the content-addressed
//                      cache without touching the pipeline;
//   * incremental    — a tiered request against warm analysis: checkpoint
//     re-tier          restore + tier..patch only;
//   * full re-tier   — the same tiered request with no usable warm analysis
//                      (hot_threshold perturbed, so the base key misses):
//                      the cost the incremental path avoids.
//
// Asserts (REDFAT_CHECK — the CI gate rides on these):
//   * every cell's bytes are identical to a fresh offline rewrite;
//   * warm hits are >= 10x faster than cold misses;
//   * incremental re-tier is measurably faster than the full tiered rerun
//     (>= 20% wall-time cut).
//
// Writes BENCH_daemon_cache.json.
//
//   bench_daemon_cache [--quick] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/serve/fingerprint.h"
#include "src/serve/service.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Median(std::vector<double> xs) {
  REDFAT_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

BinaryImage BenchImage(uint64_t seed, bool quick) {
  // Check-heavy and big enough that a cold rewrite takes real wall time;
  // filler functions scale instrumentation work without slowing the guest.
  SynthParams p;
  p.seed = seed;
  p.mem_pct = 35;
  p.stream_pct = 6;
  p.global_pct = 8;
  p.call_pct = 6;
  p.max_accesses_per_ptr = 4;
  p.block_len = 60;
  p.filler_funcs = quick ? 200 : 1000;
  p.filler_units_per_func = 8;
  return GenerateSynthProgram(p);
}

std::string ProfileJsonFor(const BinaryImage& hardened) {
  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  cfg.inputs = {50, 0x3f};
  const RunOutcome out = RunImage(hardened, RuntimeKind::kRedFat, cfg);
  REDFAT_CHECK(out.result.reason == HaltReason::kExit);
  return reg.Snapshot().ToJson();
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_daemon_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_daemon_cache [--quick] [--out FILE]\n");
      return 2;
    }
  }
  const int cold_reps = quick ? 3 : 6;
  const int hit_reps = quick ? 20 : 50;
  const int tier_reps = quick ? 3 : 6;

  const RedFatOptions opts;
  RewriteService::Config cfg;
  cfg.jobs = 1;
  cfg.cache_bytes = 0;  // unbounded: this bench measures latency, not eviction
  RewriteService svc(cfg);

  // --- cold misses: distinct images, full pipeline every time ---------------
  std::vector<std::vector<uint8_t>> wires;
  std::vector<double> cold_ms;
  for (int i = 0; i < cold_reps; ++i) {
    wires.push_back(BenchImage(0xdc0 + static_cast<uint64_t>(i), quick).Serialize());
    const double t0 = NowMs();
    Result<RewriteService::Outcome> r = svc.Rewrite(wires.back(), opts, "");
    const double t1 = NowMs();
    REDFAT_CHECK(r.ok());
    REDFAT_CHECK(!r.value().cache_hit);
    cold_ms.push_back(t1 - t0);
  }

  // Identity: the daemon's cold output is a fresh offline rewrite's output.
  Result<BinaryImage> img0 = BinaryImage::Deserialize(wires[0]);
  REDFAT_CHECK(img0.ok());
  const InstrumentResult offline_untiered = MustInstrument(img0.value(), opts);
  Result<RewriteService::Outcome> probe = svc.Rewrite(wires[0], opts, "");
  REDFAT_CHECK(probe.ok());
  REDFAT_CHECK(probe.value().cache_hit);
  REDFAT_CHECK(probe.value().image_bytes == offline_untiered.image.Serialize());

  // --- warm hits -------------------------------------------------------------
  std::vector<double> hit_ms;
  for (int i = 0; i < hit_reps; ++i) {
    const double t0 = NowMs();
    Result<RewriteService::Outcome> r = svc.Rewrite(wires[0], opts, "");
    const double t1 = NowMs();
    REDFAT_CHECK(r.ok());
    REDFAT_CHECK(r.value().cache_hit);
    hit_ms.push_back(t1 - t0);
  }

  // --- tiered requests -------------------------------------------------------
  const std::string profile_json = ProfileJsonFor(offline_untiered.image);
  Result<TelemetrySnapshot> snap = TelemetrySnapshotFromJson(profile_json);
  REDFAT_CHECK(snap.ok());
  REDFAT_CHECK(!snap.value().sites.empty());

  // Offline tiered reference for the identity check.
  Result<TierProfile> profile = TierProfileFromSnapshotJson(profile_json);
  REDFAT_CHECK(profile.ok());
  RedFatOptions tiered_opts = opts;
  tiered_opts.tier_profile = &profile.value();
  const InstrumentResult offline_tiered = MustInstrument(img0.value(), tiered_opts);

  Result<RewriteService::Outcome> retier0 = svc.Rewrite(wires[0], opts, profile_json);
  REDFAT_CHECK(retier0.ok());
  REDFAT_CHECK(retier0.value().incremental_retier);
  REDFAT_CHECK(retier0.value().image_bytes == offline_tiered.image.Serialize());

  // Incremental re-tiers: perturb the profile content each round (a fresh
  // profile_fp, as a periodic profile refresh would produce) so every
  // request misses the artifact cache but finds warm analysis.
  std::vector<double> retier_ms;
  for (int i = 0; i < tier_reps; ++i) {
    TelemetrySnapshot perturbed = snap.value();
    perturbed.sites[0].counts[4] += static_cast<uint64_t>(i + 1);
    const std::string json = perturbed.ToJson();
    const double t0 = NowMs();
    Result<RewriteService::Outcome> r = svc.Rewrite(wires[0], opts, json);
    const double t1 = NowMs();
    REDFAT_CHECK(r.ok());
    REDFAT_CHECK(r.value().incremental_retier);
    retier_ms.push_back(t1 - t0);
  }

  // Full tiered reruns: a perturbed hot_threshold changes the option
  // fingerprint, so the base-key lookup finds no warm analysis and the
  // whole pipeline runs again — the cost the incremental path skips.
  std::vector<double> full_ms;
  for (int i = 0; i < tier_reps; ++i) {
    RedFatOptions full_opts = opts;
    full_opts.hot_threshold = 0.80 + 0.002 * i;
    const double t0 = NowMs();
    Result<RewriteService::Outcome> r = svc.Rewrite(wires[0], full_opts, profile_json);
    const double t1 = NowMs();
    REDFAT_CHECK(r.ok());
    REDFAT_CHECK(!r.value().cache_hit);
    REDFAT_CHECK(!r.value().incremental_retier);
    full_ms.push_back(t1 - t0);
  }

  const double cold = Median(cold_ms);
  const double hit = Median(hit_ms);
  const double retier = Median(retier_ms);
  const double full = Median(full_ms);

  std::printf("daemon-cache bench: image %zu bytes, %d cold / %d hit / %d tier reps\n\n",
              wires[0].size(), cold_reps, hit_reps, tier_reps);
  std::printf("%20s %12s\n", "cell", "median(ms)");
  std::printf("%20s %12.3f\n", "cold miss", cold);
  std::printf("%20s %12.3f\n", "warm hit", hit);
  std::printf("%20s %12.3f\n", "incremental re-tier", retier);
  std::printf("%20s %12.3f\n", "full tiered rerun", full);
  std::printf("\nhit speedup %.1fx, re-tier cut %.1f%%\n", cold / hit,
              100.0 * (1.0 - retier / full));

  // The acceptance bars.
  REDFAT_CHECK(hit * 10.0 <= cold);
  REDFAT_CHECK(retier * 1.25 <= full);  // >= 20% wall-time cut

  std::string json = "{\"bench\":\"daemon_cache\",";
  json += StrFormat("\"quick\":%s,\"image_bytes\":%zu,", quick ? "true" : "false",
                    wires[0].size());
  json += StrFormat("\"cold_miss_ms\":%.3f,\"warm_hit_ms\":%.3f,", cold, hit);
  json += StrFormat("\"incremental_retier_ms\":%.3f,\"full_tier_ms\":%.3f,", retier, full);
  json += StrFormat("\"hit_speedup\":%.1f,\"retier_cut_pct\":%.1f,", cold / hit,
                    100.0 * (1.0 - retier / full));
  json += "\"identical\":true}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_daemon_cache: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
