// §7.1 "Detected errors": both RedFat and Memcheck detect latent
// out-of-bounds read errors in the calculix and wrf Fortran benchmarks
// (4 array[-1] underflows in calculix's main, 1 overflow read in wrf).
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "src/dbi/memcheck.h"
#include "src/workloads/spec.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

int Main() {
  std::printf("\nDetected (real) errors in the SPEC suite, RedFat vs Memcheck\n\n");
  std::printf("%-12s %22s %22s %10s\n", "Binary", "RedFat error sites", "Memcheck reports",
              "paper");
  int rc = 0;
  PassTimeAggregator pass_times;
  for (const SpecBenchmark& bench : SpecSuite()) {
    const unsigned expected =
        bench.params.underflow_bug_sites + bench.params.overflow_bug_sites;
    if (expected == 0) {
      continue;
    }
    const BinaryImage img = BuildSpecBenchmark(bench);
    RunConfig ref;
    ref.inputs = RefInputs(bench.ref_iters);
    ref.policy = Policy::kLog;

    // RedFat: redzone-only configuration isolates real errors from any
    // low-fat false positives; the full config reports them too.
    RedFatOptions rz;
    rz.lowfat = false;
    const InstrumentResult ir = MustInstrument(img, rz);
    pass_times.Add(ir.pipeline_stats);
    const RunOutcome run = RunImage(ir.image, RuntimeKind::kRedFat, ref);
    std::set<uint32_t> sites;
    for (const MemErrorReport& e : run.errors) {
      sites.insert(e.site);
    }

    const RunOutcome mc = RunMemcheck(img, ref);

    std::printf("%-12s %22zu %22zu %10u\n", bench.name.c_str(), sites.size(),
                mc.errors.size(), expected);
    if (sites.size() < expected || mc.errors.size() < expected) {
      rc = 1;
    }
  }
  pass_times.Print(
      "Instrumentation time by pipeline pass (redzone-only config, --stats JSON)");
  std::printf("\nPaper: calculix has 4 read underflows (array[-1] in main), wrf 1 read\n"
              "overflow (interp_fcn); both tools detect them.\n");
  return rc;
}

}  // namespace
}  // namespace redfat

int main() { return redfat::Main(); }
