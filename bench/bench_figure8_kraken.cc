// Figure 8: Chrome overhead using the Kraken benchmarks.
//
// Each kernel is embedded in a deliberately large binary (hundreds of
// instrumented-but-unreachable functions stand in for the 149 MB Chrome
// image) and hardened with (Redzone)+(LowFat) checking for all *write*
// operations (-reads, as in the paper's Chrome experiment). Also reports
// rewriting scalability: binary size, instrumented sites, trampoline bytes.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "src/workloads/kraken.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

int Main() {
  std::printf("\nFigure 8: Chrome/Kraken write-only hardening overhead\n\n");
  std::printf("%-26s %9s %10s %9s %11s %10s\n", "Benchmark", "overhead", "text(KB)",
              "sites", "tramp(KB)", "rewrite");
  std::vector<double> overheads;
  uint64_t total_text = 0;
  uint64_t total_tramp = 0;
  PassTimeAggregator pass_times;
  for (const KrakenBenchmark& bench : KrakenSuite()) {
    const BinaryImage img = BuildKrakenBenchmark(bench);
    RunConfig cfg;
    cfg.inputs = RefInputs(bench.iters);
    const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
    REDFAT_CHECK(base.result.reason == HaltReason::kExit);

    const auto t0 = std::chrono::steady_clock::now();
    const InstrumentResult ir = MustInstrument(img, RedFatOptions::NoReads());
    const auto t1 = std::chrono::steady_clock::now();
    const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
    REDFAT_CHECK(hard.result.reason == HaltReason::kExit);
    REDFAT_CHECK(hard.outputs == base.outputs);

    const double overhead =
        static_cast<double>(hard.result.cycles) / static_cast<double>(base.result.cycles);
    overheads.push_back(overhead);
    total_text += img.TotalBytes();
    total_tramp += ir.rewrite_stats.trampoline_bytes;
    pass_times.Add(ir.pipeline_stats);
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    std::printf("%-26s %8.2fx %10.1f %9zu %11.1f %8.1fms\n", bench.name.c_str(), overhead,
                img.TotalBytes() / 1024.0, ir.plan_stats.trampolines,
                ir.rewrite_stats.trampoline_bytes / 1024.0, ms);
  }
  std::printf("%-26s %8.2fx %10.1f %9s %11.1f\n", "Geomean / totals", Geomean(overheads),
              total_text / 1024.0, "-", total_tramp / 1024.0);
  pass_times.Print("Instrumentation time by pipeline pass (all benchmarks, --stats JSON)");
  std::printf("\nPaper: 1.28x geomean overhead on Kraken; Chrome (~149MB) rewrites "
              "successfully and runs stable.\n");
  return 0;
}

}  // namespace
}  // namespace redfat

int main() { return redfat::Main(); }
