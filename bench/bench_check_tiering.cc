// Profile-guided check-tiering benchmark: does `--profile=metrics.json`
// actually cut guest check cycles on a hot-loop workload?
//
// Builds a workload whose hot loop strides a heap buffer through an
// induction pointer (load; add ptr, 8; load; ...) — the shape plain
// batching cannot batch, because every pointer bump modifies the operand
// register and closes the batch. The workload also executes a handful of
// one-shot (cold) accesses plus one deliberate out-of-bounds read under
// Policy::kLog.
//
// Protocol (the README's profile → re-rewrite → compare recipe, in-process):
//   1. instrument untiered, run with telemetry, snapshot the metrics;
//   2. feed the snapshot back as a TierProfile and re-instrument;
//   3. run the tiered binary on the same input and compare.
//
// Asserts (REDFAT_CHECK — the CI gate rides on these):
//   * both runs produce identical guest outputs and identical detected
//     memory errors (tiering must never change what is caught);
//   * tiered tramp+inline check cycles are at most 75% of untiered.
//
// Writes BENCH_check_tiering.json.
//
//   bench_check_tiering [--quick] [--out FILE]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/harness.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

constexpr uint64_t kBufBytes = 256;

// The hot loop re-walks the first 4 qwords of the buffer each iteration,
// bumping the pointer between loads so consecutive checks see a modified
// base register. A few one-shot stores before the loop and one out-of-bounds
// read after it populate the cold tier and the detection check.
BinaryImage BuildHotLoopProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();

  as.MovRI(Reg::kRdi, kBufBytes);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);  // buffer base
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.MovRI(Reg::kRsi, 3);
  as.MovRI(Reg::kRdx, kBufBytes);
  as.HostCall(HostFn::kMemset);

  // Cold, one-shot sites: executed exactly once.
  as.MovRI(Reg::kR14, 11);
  as.Store(Reg::kR14, MemAt(Reg::kR12, 0));
  as.MovRI(Reg::kR14, 13);
  as.Store(Reg::kR14, MemAt(Reg::kR12, 128));

  as.HostCall(HostFn::kInputU64);   // iteration count
  as.MovRR(Reg::kR13, Reg::kRax);
  as.MovRI(Reg::kRsi, 0);           // accumulator
  as.MovRI(Reg::kRcx, 0);           // iteration counter

  const Assembler::Label loop = as.NewLabel();
  as.Bind(loop);
  as.MovRR(Reg::kRbx, Reg::kR12);   // restart the walk pointer
  for (int i = 0; i < 4; ++i) {
    as.Load(Reg::kR14, MemAt(Reg::kRbx, 0));
    as.Add(Reg::kRsi, Reg::kR14);
    as.AddI(Reg::kRbx, 8);          // closes an untiered batch; folds tiered
  }
  as.AddI(Reg::kRcx, 1);
  as.Cmp(Reg::kRcx, Reg::kR13);
  as.Jcc(Cond::kUlt, loop);

  // Cold, deliberate OOB: 8-byte read one element past the allocation,
  // caught by the redzone check. Policy::kLog records it and continues.
  as.Load(Reg::kR14, MemAt(Reg::kR12, static_cast<int32_t>(kBufBytes)));
  as.Add(Reg::kRsi, Reg::kR14);

  as.MovRR(Reg::kRdi, Reg::kRsi);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

struct RunMeasure {
  RunOutcome out;
  uint64_t tramp_cycles = 0;
  uint64_t inline_cycles = 0;
  TelemetrySnapshot snapshot;

  uint64_t check_cycles() const { return tramp_cycles + inline_cycles; }
};

RunMeasure MeasureRun(const BinaryImage& image, uint64_t iterations) {
  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.inputs = {iterations};
  cfg.telemetry = &reg;
  RunMeasure m;
  m.out = RunImage(image, RuntimeKind::kRedFat, cfg);
  REDFAT_CHECK(m.out.result.reason == HaltReason::kExit);
  m.snapshot = reg.Snapshot();
  m.tramp_cycles = m.snapshot.TotalSiteEvents(SiteEvent::kTrampCycles);
  m.inline_cycles = m.snapshot.TotalSiteEvents(SiteEvent::kInlineCycles);
  return m;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_check_tiering.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_check_tiering [--quick] [--out FILE]\n");
      return 2;
    }
  }
  const uint64_t iterations = quick ? 300 : 2000;

  const BinaryImage img = BuildHotLoopProgram();

  // Step 1: untiered rewrite, profiled run.
  const InstrumentResult untiered = MustInstrument(img, RedFatOptions{});
  const RunMeasure a = MeasureRun(untiered.image, iterations);

  // Step 2: the captured snapshot becomes the tier profile (exactly what
  // `redfat --profile=metrics.json` does with the file form).
  TierProfile profile;
  for (const SiteTelemetry& st : a.snapshot.sites) {
    if (ImageOfSiteKey(st.site) == 0) {
      profile.cycles_by_site[st.site] = st.tramp_cycles() + st.inline_cycles();
    }
  }
  RedFatOptions tiered_opts;
  tiered_opts.tier_profile = &profile;
  const InstrumentResult tiered = MustInstrument(img, tiered_opts);

  size_t hot_sites = 0;
  size_t cold_sites = 0;
  for (const SiteRecord& s : tiered.sites) {
    hot_sites += s.tier == Tier::kHot ? 1 : 0;
    cold_sites += s.tier == Tier::kCold ? 1 : 0;
  }

  // Step 3: same input, tiered binary.
  const RunMeasure b = MeasureRun(tiered.image, iterations);

  // Tiering must be invisible to the guest: same outputs, same detections.
  REDFAT_CHECK(b.out.outputs == a.out.outputs);
  REDFAT_CHECK(b.out.errors.size() == a.out.errors.size());
  for (size_t i = 0; i < a.out.errors.size(); ++i) {
    REDFAT_CHECK(b.out.errors[i].site == a.out.errors[i].site);
    REDFAT_CHECK(b.out.errors[i].kind == a.out.errors[i].kind);
  }
  REDFAT_CHECK(!a.out.errors.empty());  // the OOB read must be caught at all

  // The acceptance bar: >= 25% fewer guest check cycles.
  const double reduction_pct =
      a.check_cycles() == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(b.check_cycles()) /
                               static_cast<double>(a.check_cycles()));
  std::printf("check-tiering bench: %llu hot-loop iterations\n\n",
              static_cast<unsigned long long>(iterations));
  std::printf("%10s %14s %14s %14s %10s\n", "", "tramp-cyc", "inline-cyc", "total",
              "errors");
  std::printf("%10s %14llu %14llu %14llu %10zu\n", "untiered",
              static_cast<unsigned long long>(a.tramp_cycles),
              static_cast<unsigned long long>(a.inline_cycles),
              static_cast<unsigned long long>(a.check_cycles()), a.out.errors.size());
  std::printf("%10s %14llu %14llu %14llu %10zu\n", "tiered",
              static_cast<unsigned long long>(b.tramp_cycles),
              static_cast<unsigned long long>(b.inline_cycles),
              static_cast<unsigned long long>(b.check_cycles()), b.out.errors.size());
  std::printf("\n%zu hot + %zu cold of %zu sites; check-cycle reduction %.1f%%\n",
              hot_sites, cold_sites, tiered.sites.size(), reduction_pct);
  REDFAT_CHECK(b.check_cycles() * 4 <= a.check_cycles() * 3);  // >= 25% drop

  std::string json = "{\"bench\":\"check_tiering\",";
  json += StrFormat("\"iterations\":%llu,\"quick\":%s,",
                    static_cast<unsigned long long>(iterations),
                    quick ? "true" : "false");
  json += StrFormat("\"sites\":%zu,\"hot_sites\":%zu,\"cold_sites\":%zu,",
                    tiered.sites.size(), hot_sites, cold_sites);
  json += StrFormat(
      "\"untiered\":{\"tramp_cycles\":%llu,\"inline_cycles\":%llu,"
      "\"check_cycles\":%llu,\"guest_cycles\":%llu,\"detected_errors\":%zu},",
      static_cast<unsigned long long>(a.tramp_cycles),
      static_cast<unsigned long long>(a.inline_cycles),
      static_cast<unsigned long long>(a.check_cycles()),
      static_cast<unsigned long long>(a.out.result.cycles), a.out.errors.size());
  json += StrFormat(
      "\"tiered\":{\"tramp_cycles\":%llu,\"inline_cycles\":%llu,"
      "\"check_cycles\":%llu,\"guest_cycles\":%llu,\"detected_errors\":%zu},",
      static_cast<unsigned long long>(b.tramp_cycles),
      static_cast<unsigned long long>(b.inline_cycles),
      static_cast<unsigned long long>(b.check_cycles()),
      static_cast<unsigned long long>(b.out.result.cycles), b.out.errors.size());
  json += StrFormat("\"reduction_pct\":%.2f}\n", reduction_pct);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_check_tiering: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
