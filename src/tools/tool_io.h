// Shared file I/O helpers for the command-line tools.
#ifndef REDFAT_SRC_TOOLS_TOOL_IO_H_
#define REDFAT_SRC_TOOLS_TOOL_IO_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/bin/image.h"
#include "src/support/result.h"

namespace redfat {

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);
Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes);

Result<BinaryImage> LoadImageFile(const std::string& path);
Status SaveImageFile(const std::string& path, const BinaryImage& image);

// Text-file helpers for allow-lists ("0x<addr>" per line) and profile dumps
// ("<site> <passes> <fails>" per line).
Result<std::vector<std::string>> ReadLines(const std::string& path);

// Writes `text` to `path`; the conventional "-" writes to stdout instead.
Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace redfat

#endif  // REDFAT_SRC_TOOLS_TOOL_IO_H_
