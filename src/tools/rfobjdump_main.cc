// rfobjdump — disassemble an RFBIN binary (objdump -d analogue).
//
//   rfobjdump [--cfg] [--sections] prog.rfbin
//
//   --cfg        annotate recovered basic-block leaders and jump targets
//   --sections   list sections only
#include <cstdio>
#include <cstring>
#include <string>

#include "src/rw/disasm.h"
#include "src/support/str.h"
#include "src/tools/tool_io.h"

namespace redfat {
namespace {

int Usage() {
  std::fprintf(stderr, "usage: rfobjdump [--cfg] [--sections] prog.rfbin\n");
  return 2;
}

const char* SectionKindName(Section::Kind k) {
  switch (k) {
    case Section::Kind::kText: return ".text";
    case Section::Kind::kData: return ".data";
    case Section::Kind::kTrampoline: return ".redfat.tramp";
    case Section::Kind::kInlineCheck: return ".redfat.inline";
  }
  return "?";
}

void DumpCode(const std::vector<uint8_t>& bytes, uint64_t vaddr, const CfgInfo* cfg) {
  size_t off = 0;
  while (off < bytes.size()) {
    const uint64_t addr = vaddr + off;
    Result<Decoded> d = Decode(bytes.data() + off, bytes.size() - off);
    if (!d.ok()) {
      std::printf("  %10llx:\t.byte 0x%02x\t; undecodable\n",
                  static_cast<unsigned long long>(addr), bytes[off]);
      ++off;
      continue;
    }
    const char* marker = "";
    if (cfg != nullptr && cfg->jump_targets.count(addr) != 0) {
      marker = "  <- jump target";
    }
    std::string text = ToString(d.value().insn);
    // Resolve rel32 branch targets to absolute addresses for readability.
    if (HasRel32(d.value().insn.op)) {
      const uint64_t target = addr + d.value().length +
                              static_cast<uint64_t>(d.value().insn.imm);
      text += StrFormat("   # 0x%llx", static_cast<unsigned long long>(target));
    }
    std::printf("  %10llx:\t%s%s\n", static_cast<unsigned long long>(addr), text.c_str(),
                marker);
    off += d.value().length;
  }
}

int Main(int argc, char** argv) {
  bool with_cfg = false;
  bool sections_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cfg") {
      with_cfg = true;
    } else if (arg == "--sections") {
      sections_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    return Usage();
  }
  Result<BinaryImage> image = LoadImageFile(path);
  if (!image.ok()) {
    std::fprintf(stderr, "rfobjdump: %s\n", image.error().c_str());
    return 1;
  }
  std::printf("%s: entry 0x%llx, %zu sections, %llu bytes\n\n", path.c_str(),
              static_cast<unsigned long long>(image.value().entry),
              image.value().sections.size(),
              static_cast<unsigned long long>(image.value().TotalBytes()));
  for (const Section& s : image.value().sections) {
    std::printf("%s @ 0x%llx (%zu bytes)\n", SectionKindName(s.kind),
                static_cast<unsigned long long>(s.vaddr), s.bytes.size());
  }
  if (sections_only) {
    return 0;
  }

  CfgInfo cfg;
  const CfgInfo* cfg_ptr = nullptr;
  Result<Disassembly> dis = DisassembleText(image.value());
  if (with_cfg && dis.ok()) {
    cfg = RecoverCfg(dis.value(), image.value());
    cfg_ptr = &cfg;
  }
  for (const Section& s : image.value().sections) {
    if (s.kind == Section::Kind::kData) {
      continue;
    }
    std::printf("\nDisassembly of %s:\n", SectionKindName(s.kind));
    DumpCode(s.bytes, s.vaddr, s.kind == Section::Kind::kText ? cfg_ptr : nullptr);
  }
  if (cfg_ptr != nullptr) {
    std::printf("\n%zu recovered jump targets, %u basic blocks\n", cfg.jump_targets.size(),
                cfg.num_blocks);
  }
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
