#include "src/tools/tool_io.h"

#include <cstdio>

#include "src/support/str.h"

namespace redfat {

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error(StrFormat("cannot open %s for reading", path.c_str()));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return Error(StrFormat("read error on %s", path.c_str()));
  }
  return bytes;
}

Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error(StrFormat("cannot open %s for writing", path.c_str()));
  }
  const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool bad = n != bytes.size();
  std::fclose(f);
  if (bad) {
    return Error(StrFormat("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

Result<BinaryImage> LoadImageFile(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    return Error(bytes.error());
  }
  return BinaryImage::Deserialize(bytes.value());
}

Status SaveImageFile(const std::string& path, const BinaryImage& image) {
  return WriteFileBytes(path, image.Serialize());
}

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    return Error(bytes.error());
  }
  std::vector<std::string> lines;
  std::string cur;
  for (uint8_t b : bytes.value()) {
    if (b == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(b));
    }
  }
  if (!cur.empty()) {
    lines.push_back(cur);
  }
  return lines;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return Status::Ok();
  }
  return WriteFileBytes(path, std::vector<uint8_t>(text.begin(), text.end()));
}

}  // namespace redfat
