// rfrun — run an RFBIN guest binary under a chosen runtime binding.
//
//   rfrun [options] prog.rfbin [input-word ...]
//
// Options:
//   --runtime=baseline|redfat|redfat-shadow|redfat-debug|memcheck
//                          runtime binding (default: baseline).
//                          redfat-debug = libredfat semantics plus guest
//                          shadow-map maintenance (the debug tier's
//                          allocator)
//   --harden=TIER          select the runtime binding from a hardening
//                          policy tier (core/policy.h): none -> baseline,
//                          fast/extensive -> redfat, debug -> redfat-debug
//                          plus the DBI shadow-check observer classifying
//                          every uninstrumented access. Mutually exclusive
//                          with --runtime
//   --rheap=LIST           allocator hardening features for the redfat/
//                          redfat-debug runtimes: a comma list of
//                          prot-freelist, guard-memcpy, random,
//                          quarantine=N, or `none`. An explicit list is
//                          absolute (starts from everything off).
//                          Default precedence: --rheap flag, else the
//                          --harden tier's defaults, else the sitemap's
//                          "# rheap:" header, else every feature off
//                          (byte-identical to the historical allocator)
//   --policy=harden|log                                (default: harden)
//   --profile-dump FILE    write "<site> <passes> <fails>" lines (feed into
//                          `redfat --profile-data`)
//   --seed N               guest RNG seed
//   --limit N              instruction budget
//   --stats                print instruction/cycle/memory statistics
//   --metrics FILE         unified telemetry snapshot JSON: per-site check/
//                          hit/cycle counters, run counters, heap gauges
//                          ('-' = stdout)
//   --metrics-epoch=N      with --metrics FILE: additionally stream delta
//                          snapshots every N guest instructions, written to
//                          FILE with ".json" replaced by ".<epoch>.json"
//                          (0-based). Each epoch file holds only that
//                          epoch's new events, so merging every epoch with
//                          `redfat --merge-metrics` reproduces the one-shot
//                          FILE exactly
//   --engine=step|block    interpreter dispatch engine (default: block, the
//                          superblock code cache; step is the reference
//                          per-instruction loop — results are bit-identical)
//   --no-chain             block engine only: disable direct superblock
//                          chaining (and trace formation), forcing every
//                          block exit back through the dispatcher. Bisects
//                          chained against plain block mode without
//                          rebuilding; results are bit-identical
//   --code-cache-size=N    block engine code-cache capacity in superblock
//                          entries (default 4096; must be a power of two)
//   --trace FILE           Chrome trace-event JSON of the run (trampoline
//                          slices, allocator events; guest cycles as µs)
//   --report               human-readable per-site report on stdout, joining
//                          runtime telemetry with --sitemap records and
//                          --pipeline-stats rewrite stats when given
//   --pipeline-stats FILE  `redfat --stats` JSON to join into --report
//   --lib FILE[:SITEMAP]   map FILE before the main program (repeatable;
//                          §7.4 shared-object runs). Libraries load in
//                          option order, the program loads last and keeps
//                          the entry point. Site counters are keyed per
//                          image, so --report stays unambiguous when both
//                          a library and the program are instrumented; the
//                          optional :SITEMAP joins that image's sites.
//   --sample-period=N      guest sampling profiler: take one sample every N
//                          executed instructions (deterministic, identical
//                          under either engine). Attribution uses the t_*
//                          trampoline state, so samples resolve to check
//                          sites without full counter telemetry
//   --profile-folded FILE  with --sample-period: collapsed-stack text
//                          ("image;region;frame count" lines; flamegraph
//                          compatible)
//   --profile-metrics FILE with --sample-period: telemetry-snapshot JSON
//                          synthesized from the samples alone — a cheap
//                          `redfat --profile=` input
//   --error-report FILE    memory-error forensics: track allocation/free
//                          provenance in a bounded ring, print a triage
//                          report (birth/death provenance, neighborhood hex
//                          dump, tier) for every detected error, and write
//                          the structured reports as JSON to FILE
//
// Guest outputs are printed one per line. Exit status: the guest's exit
// code; 134 if the run aborted on a detected memory error (like SIGABRT).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/forensics_report.h"
#include "src/core/harness.h"
#include "src/core/pipeline.h"
#include "src/core/policy.h"
#include "src/core/sitemap.h"
#include "src/dbi/memcheck.h"
#include "src/dbi/shadow_check.h"
#include "src/heap/forensics.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/tools/tool_io.h"
#include "src/vm/profiler.h"

namespace redfat {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rfrun [--runtime=baseline|redfat|redfat-shadow|redfat-debug|"
               "memcheck]\n"
               "             [--harden=none|fast|extensive|debug]\n"
               "             [--rheap=prot-freelist,guard-memcpy,random,quarantine=N|none]\n"
               "             [--policy=harden|log] [--profile-dump FILE] [--sitemap FILE]\n"
               "             [--seed N] [--limit N] [--stats] [--metrics FILE]\n"
               "             [--metrics-epoch=N] [--engine=step|block] [--no-chain]\n"
               "             [--code-cache-size=N]\n"
               "             [--trace FILE] [--report] [--pipeline-stats FILE]\n"
               "             [--lib FILE[:SITEMAP]]...\n"
               "             [--sample-period=N] [--profile-folded FILE]\n"
               "             [--profile-metrics FILE] [--error-report FILE]\n"
               "             prog.rfbin [input...]\n");
  return 2;
}

// A --lib argument: an image to map before the program, optionally with its
// own site map for --report joining.
struct LibSpec {
  std::string path;
  std::string sitemap;
};

LibSpec ParseLibSpec(const std::string& spec) {
  LibSpec lib;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos && colon != 0) {
    lib.path = spec.substr(0, colon);
    lib.sitemap = spec.substr(colon + 1);
  } else {
    lib.path = spec;
  }
  return lib;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Result<std::vector<SiteRecord>> LoadSiteMapFile(
    const std::string& path, std::optional<HardenTier>* harden = nullptr,
    std::optional<RheapOptions>* rheap = nullptr) {
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) {
    return Error(lines.error());
  }
  return ParseSiteMap(lines.value(), harden, rheap);
}

int Main(int argc, char** argv) {
  std::string runtime = "baseline";
  bool runtime_given = false;
  bool harden_given = false;
  HardenTier harden = HardenTier::kExtensive;
  std::optional<RheapOptions> rheap_flag;
  std::string policy = "harden";
  std::string profile_dump;
  std::string sitemap_path;
  std::string metrics_path;
  std::string trace_path;
  std::string pipeline_stats_path;
  std::string profile_folded_path;
  std::string profile_metrics_path;
  std::string error_report_path;
  uint64_t sample_period = 0;
  RunConfig cfg;
  bool stats = false;
  bool report = false;
  std::vector<LibSpec> libs;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runtime=", 0) == 0) {
      runtime = arg.substr(10);
      runtime_given = true;
    } else if (arg.rfind("--harden=", 0) == 0) {
      Result<HardenTier> tier = ParseHardenTier(arg.substr(9));
      if (!tier.ok()) {
        std::fprintf(stderr, "rfrun: %s\n", tier.error().c_str());
        return 2;
      }
      harden = tier.value();
      harden_given = true;
    } else if (arg.rfind("--rheap=", 0) == 0) {
      Result<RheapOptions> opts = ParseRheapList(arg.substr(8));
      if (!opts.ok()) {
        std::fprintf(stderr, "rfrun: %s\n", opts.error().c_str());
        return 2;
      }
      rheap_flag = opts.value();
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy = arg.substr(9);
    } else if (arg == "--profile-dump" && i + 1 < argc) {
      profile_dump = argv[++i];
    } else if (arg == "--sitemap" && i + 1 < argc) {
      sitemap_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      cfg.rng_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--limit" && i + 1 < argc) {
      cfg.instruction_limit = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--metrics-epoch=", 0) == 0) {
      cfg.metrics_epoch = std::strtoull(arg.substr(16).c_str(), nullptr, 0);
    } else if (arg == "--metrics-epoch" && i + 1 < argc) {
      cfg.metrics_epoch = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string engine = arg.substr(9);
      if (engine == "step") {
        cfg.engine = VmEngine::kStep;
      } else if (engine == "block") {
        cfg.engine = VmEngine::kBlock;
      } else {
        return Usage();
      }
    } else if (arg == "--no-chain") {
      cfg.chain = false;
    } else if (arg.rfind("--code-cache-size=", 0) == 0) {
      const std::string value = arg.substr(18);
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 0);
      if (value.empty() || end == nullptr || *end != '\0' || n == 0 ||
          (n & (n - 1)) != 0) {
        std::fprintf(stderr,
                     "rfrun: --code-cache-size must be a power-of-two entry "
                     "count, got '%s'\n",
                     value.c_str());
        return 2;
      }
      cfg.code_cache_size = static_cast<size_t>(n);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--pipeline-stats" && i + 1 < argc) {
      pipeline_stats_path = argv[++i];
    } else if (arg == "--lib" && i + 1 < argc) {
      libs.push_back(ParseLibSpec(argv[++i]));
    } else if (arg.rfind("--lib=", 0) == 0) {
      libs.push_back(ParseLibSpec(arg.substr(6)));
    } else if (arg.rfind("--sample-period=", 0) == 0) {
      sample_period = std::strtoull(arg.substr(16).c_str(), nullptr, 0);
    } else if (arg == "--sample-period" && i + 1 < argc) {
      sample_period = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--profile-folded" && i + 1 < argc) {
      profile_folded_path = argv[++i];
    } else if (arg.rfind("--profile-folded=", 0) == 0) {
      profile_folded_path = arg.substr(17);
    } else if (arg == "--profile-metrics" && i + 1 < argc) {
      profile_metrics_path = argv[++i];
    } else if (arg.rfind("--profile-metrics=", 0) == 0) {
      profile_metrics_path = arg.substr(18);
    } else if (arg == "--error-report" && i + 1 < argc) {
      error_report_path = argv[++i];
    } else if (arg.rfind("--error-report=", 0) == 0) {
      error_report_path = arg.substr(15);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    return Usage();
  }
  if (harden_given && runtime_given) {
    std::fprintf(stderr,
                 "rfrun: --harden and --runtime both select the runtime binding; "
                 "pass one or the other\n");
    return 2;
  }
  if (rheap_flag.has_value()) {
    // The flag configures the hardened allocator family; reject bindings that
    // never construct one (defaulted baseline included) instead of silently
    // dropping the request.
    const bool hardened_runtime =
        harden_given ? harden != HardenTier::kNone
                     : runtime == "redfat" || runtime == "redfat-shadow" ||
                           runtime == "redfat-debug";
    if (!hardened_runtime) {
      std::fprintf(stderr,
                   "rfrun: --rheap configures the hardened allocator; select one "
                   "with --runtime=redfat|redfat-shadow|redfat-debug or "
                   "--harden=fast|extensive|debug (got %s%s)\n",
                   harden_given ? "--harden=" : "--runtime=",
                   harden_given ? HardenTierName(harden) : runtime.c_str());
      return 2;
    }
  }
  cfg.policy = policy == "log" ? Policy::kLog : Policy::kHarden;
  for (size_t i = 1; i < positional.size(); ++i) {
    cfg.inputs.push_back(std::strtoull(positional[i].c_str(), nullptr, 0));
  }

  Result<BinaryImage> image = LoadImageFile(positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "rfrun: %s\n", image.error().c_str());
    return 1;
  }
  std::vector<BinaryImage> lib_images;
  lib_images.reserve(libs.size());
  for (const LibSpec& lib : libs) {
    Result<BinaryImage> li = LoadImageFile(lib.path);
    if (!li.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", li.error().c_str());
      return 1;
    }
    lib_images.push_back(std::move(li).value());
  }

  // Site maps are needed before the run: trace-event `site_addr` args are
  // built from them. Index i holds library i's sites; index libs.size() the
  // program's (mirroring image load order, which fixes telemetry ordinals).
  std::vector<std::vector<SiteRecord>> image_sites(libs.size() + 1);
  std::vector<bool> have_image_sites(libs.size() + 1, false);
  // Resolved hardening tier per image, from the sitemap policy header
  // ("# harden: <tier>"); feeds --report's harden column.
  std::vector<std::optional<HardenTier>> image_harden(libs.size() + 1);
  for (size_t i = 0; i < libs.size(); ++i) {
    if (libs[i].sitemap.empty()) {
      continue;
    }
    Result<std::vector<SiteRecord>> parsed =
        LoadSiteMapFile(libs[i].sitemap, &image_harden[i]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", parsed.error().c_str());
      return 1;
    }
    image_sites[i] = std::move(parsed).value();
    have_image_sites[i] = true;
  }
  std::optional<RheapOptions> sitemap_rheap;
  if (!sitemap_path.empty()) {
    Result<std::vector<SiteRecord>> parsed =
        LoadSiteMapFile(sitemap_path, &image_harden[libs.size()], &sitemap_rheap);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", parsed.error().c_str());
      return 1;
    }
    image_sites[libs.size()] = std::move(parsed).value();
    have_image_sites[libs.size()] = true;
  }
  // The main image's tier may also come from an explicit --harden flag.
  if (!image_harden[libs.size()].has_value() && harden_given) {
    image_harden[libs.size()] = harden;
  }
  // Allocator feature precedence: explicit --rheap, else the --harden tier's
  // defaults, else the rewrite-time "# rheap:" sitemap header, else every
  // feature off (byte-identical to the historical allocator).
  if (rheap_flag.has_value()) {
    cfg.rheap = *rheap_flag;
  } else if (harden_given) {
    cfg.rheap = RheapForTier(harden);
  } else if (sitemap_rheap.has_value()) {
    cfg.rheap = *sitemap_rheap;
  }
  const std::vector<SiteRecord>& sites = image_sites[libs.size()];
  const bool have_sites = have_image_sites[libs.size()];

  if ((!profile_folded_path.empty() || !profile_metrics_path.empty()) &&
      sample_period == 0) {
    std::fprintf(stderr,
                 "rfrun: --profile-folded/--profile-metrics need --sample-period=N\n");
    return 2;
  }

  // Attach the observability sinks only when requested: a plain run keeps
  // the VM's telemetry hooks on their null fast path.
  TelemetryRegistry telemetry;
  TraceWriter trace;
  SampleProfiler sampler(sample_period == 0 ? 1 : sample_period);
  ForensicRing forensics;
  if (!metrics_path.empty() || report) {
    cfg.telemetry = &telemetry;
  }
  if (sample_period != 0) {
    cfg.sampler = &sampler;
    for (size_t i = 0; i < libs.size(); ++i) {
      sampler.SetImageName(static_cast<uint32_t>(i), BaseName(libs[i].path));
    }
    sampler.SetImageName(static_cast<uint32_t>(libs.size()), BaseName(positional[0]));
  }
  if (!error_report_path.empty()) {
    cfg.forensics = &forensics;
    cfg.forensic_tier = image_harden[libs.size()].has_value()
                            ? HardenTierName(*image_harden[libs.size()])
                            : "";
  }
  if (!trace_path.empty() || cfg.forensics != nullptr) {
    if (!trace_path.empty()) {
      cfg.trace = &trace;
    }
    for (size_t i = 0; i < image_sites.size(); ++i) {
      cfg.image_sites.push_back(have_image_sites[i] ? &image_sites[i] : nullptr);
    }
  }

  // Streaming epochs: every N guest instructions, write the *delta* since
  // the previous epoch to "<metrics stem>.<epoch>.json". The final epoch —
  // the tail of the run plus the run-level counters/gauges the harness adds
  // after Vm::Run returns — is written once the run completes, so merging
  // every epoch file reproduces the one-shot --metrics snapshot.
  uint32_t epoch_index = 0;
  TelemetrySnapshot epoch_prev;
  bool epoch_write_failed = false;
  std::string epoch_stem;
  if (cfg.metrics_epoch != 0) {
    if (metrics_path.empty() || metrics_path == "-") {
      std::fprintf(stderr, "rfrun: --metrics-epoch requires --metrics FILE\n");
      return 2;
    }
    epoch_stem = metrics_path;
    const std::string suffix = ".json";
    if (epoch_stem.size() > suffix.size() &&
        epoch_stem.compare(epoch_stem.size() - suffix.size(), suffix.size(), suffix) == 0) {
      epoch_stem.resize(epoch_stem.size() - suffix.size());
    }
    cfg.telemetry = &telemetry;
    cfg.on_epoch = [&]() {
      const TelemetrySnapshot cur = telemetry.Snapshot();
      const std::string path = StrFormat("%s.%u.json", epoch_stem.c_str(), epoch_index);
      const Status s =
          WriteTextFile(path, DeltaTelemetrySnapshot(cur, epoch_prev).ToJson() + "\n");
      if (!s.ok()) {
        std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
        epoch_write_failed = true;
      }
      epoch_prev = cur;
      ++epoch_index;
    };
  }

  // The debug tier layers the DBI shadow-check observer over the hardened
  // run: every explicit access outside trampoline code is classified
  // against the guest shadow map the debug allocator maintains.
  ShadowCheckObserver debug_observer;
  if (harden_given && harden == HardenTier::kDebug) {
    cfg.observer = &debug_observer;
  }

  RunOutcome out;
  if (runtime == "memcheck" && !harden_given) {
    if (!libs.empty()) {
      std::fprintf(stderr, "rfrun: --lib is not supported under memcheck\n");
      return 2;
    }
    out = RunMemcheck(image.value(), cfg);
  } else {
    RuntimeKind kind;
    if (harden_given) {
      kind = RuntimeForTier(harden);
    } else if (runtime == "redfat") {
      kind = RuntimeKind::kRedFat;
    } else if (runtime == "redfat-shadow") {
      kind = RuntimeKind::kRedFatShadow;
    } else if (runtime == "redfat-debug") {
      kind = RuntimeKind::kRedFatDebug;
    } else if (runtime == "baseline") {
      kind = RuntimeKind::kBaseline;
    } else {
      return Usage();
    }
    std::vector<const BinaryImage*> images;
    for (const BinaryImage& li : lib_images) {
      images.push_back(&li);
    }
    images.push_back(&image.value());  // last: the program keeps the entry
    out = RunImages(images, kind, cfg);
  }

  for (uint64_t w : out.outputs) {
    std::printf("%llu\n", static_cast<unsigned long long>(w));
  }
  if (!out.forensic_reports.empty()) {
    // Forensics attached: the provenance-rich multi-line report replaces the
    // one-line description (its first line carries the same text).
    for (const ForensicReport& fr : out.forensic_reports) {
      std::fprintf(stderr, "rfrun: MEMORY ERROR:\n%s", FormatForensicReport(fr).c_str());
    }
  } else {
    for (const MemErrorReport& e : out.errors) {
      std::fprintf(stderr, "rfrun: MEMORY ERROR: %s\n",
                   DescribeError(e, have_sites ? &sites : nullptr).c_str());
    }
  }
  if (!error_report_path.empty()) {
    const Status s = WriteTextFile(
        error_report_path, ForensicReportsToJson(out.forensic_reports, forensics) + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!profile_folded_path.empty()) {
    const Status s = WriteTextFile(profile_folded_path, sampler.ToFolded());
    if (!s.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!profile_metrics_path.empty()) {
    const Status s =
        WriteTextFile(profile_metrics_path, sampler.SynthesizeMetrics().ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!profile_dump.empty()) {
    std::string text;
    for (const auto& [site, counts] : out.prof_counts) {
      text += StrFormat("%u %llu %llu\n", site,
                        static_cast<unsigned long long>(counts.passes),
                        static_cast<unsigned long long>(counts.fails));
    }
    std::vector<uint8_t> bytes(text.begin(), text.end());
    const Status s = WriteFileBytes(profile_dump, bytes);
    if (!s.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (stats) {
    std::fprintf(stderr, "rfrun: %llu instructions, %llu cycles, %llu reads, %llu writes, "
                 "%llu pages\n",
                 static_cast<unsigned long long>(out.result.instructions),
                 static_cast<unsigned long long>(out.result.cycles),
                 static_cast<unsigned long long>(out.result.explicit_reads),
                 static_cast<unsigned long long>(out.result.explicit_writes),
                 static_cast<unsigned long long>(out.touched_pages));
  }
  if (cfg.metrics_epoch != 0) {
    // The closing epoch: events since the last boundary plus the harness's
    // post-run vm.* counters and heap gauges.
    const TelemetrySnapshot cur = telemetry.Snapshot();
    const std::string path = StrFormat("%s.%u.json", epoch_stem.c_str(), epoch_index);
    const Status s =
        WriteTextFile(path, DeltaTelemetrySnapshot(cur, epoch_prev).ToJson() + "\n");
    if (!s.ok() || epoch_write_failed) {
      if (!s.ok()) {
        std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      }
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    const Status s = WriteTextFile(metrics_path, telemetry.Snapshot().ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    if (cfg.sampler != nullptr) {
      sampler.AppendTrace(trace);  // sample instants over the run's slices
    }
    const Status s = WriteTextFile(trace_path, trace.ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "rfrun: %s\n", s.error().c_str());
      return 1;
    }
    if (trace.dropped() != 0) {
      std::fprintf(stderr, "rfrun: trace truncated: %zu events dropped\n",
                   trace.dropped());
    }
  }
  if (report) {
    PipelineStats pipeline;
    bool have_pipeline = false;
    if (!pipeline_stats_path.empty()) {
      Result<std::vector<uint8_t>> bytes = ReadFileBytes(pipeline_stats_path);
      if (!bytes.ok()) {
        std::fprintf(stderr, "rfrun: %s\n", bytes.error().c_str());
        return 1;
      }
      Result<PipelineStats> parsed = PipelineStatsFromJson(
          std::string(bytes.value().begin(), bytes.value().end()));
      if (!parsed.ok()) {
        std::fprintf(stderr, "rfrun: %s\n", parsed.error().c_str());
        return 1;
      }
      pipeline = std::move(parsed).value();
      have_pipeline = true;
    }
    // Per-image tables: telemetry keys decode to (image ordinal, site id);
    // ordinals follow load order — libraries first, the program last. Each
    // table carries its image's resolved hardening tier (sitemap policy
    // header or the --harden flag) for the report's harden column; a
    // single-image report without policy data is byte-identical to before.
    std::vector<ImageSiteTable> tables;
    for (size_t i = 0; i < libs.size(); ++i) {
      tables.push_back(ImageSiteTable{
          BaseName(libs[i].path), have_image_sites[i] ? &image_sites[i] : nullptr,
          image_harden[i].has_value() ? HardenTierName(*image_harden[i]) : ""});
    }
    tables.push_back(ImageSiteTable{
        BaseName(positional[0]), have_sites ? &sites : nullptr,
        image_harden[libs.size()].has_value()
            ? HardenTierName(*image_harden[libs.size()])
            : ""});
    // Overlay the host-side dispatch-layer stats on the report view only.
    // They never enter the registry itself (and are injected after the
    // --metrics files above were written): guest telemetry must stay
    // bit-identical across engines, and the stepper has no chains to count.
    TelemetrySnapshot snap = telemetry.Snapshot();
    const Vm::DispatchStats& d = out.dispatch;
    auto put = [&snap](const char* name, uint64_t v) {
      if (v != 0) {
        snap.counters[name] = v;
      }
    };
    put("vm.blocks_built", d.blocks_built);
    put("vm.block_chains", d.block_chains);
    put("vm.chain_exits", d.chain_exits);
    put("vm.code_cache_evictions", d.code_cache_evictions);
    put("vm.links_patched", d.links_patched);
    put("vm.traces_formed", d.traces_formed);
    put("vm.trace_runs", d.trace_runs);
    if (d.tlb_hits + d.tlb_misses != 0) {
      snap.gauges["vm.tlb_hit_rate"] =
          static_cast<double>(d.tlb_hits) /
          static_cast<double>(d.tlb_hits + d.tlb_misses);
    }
    if (d.trace_len.Count() != 0) {
      snap.histograms["vm.trace_len"] = d.trace_len;
    }
    const std::string text =
        FormatTelemetryReport(snap, tables,
                              have_pipeline ? &pipeline : nullptr, out.result.cycles);
    std::fputs(text.c_str(), stdout);
  }

  switch (out.result.reason) {
    case HaltReason::kExit:
      return static_cast<int>(out.result.exit_status);
    case HaltReason::kMemErrorAbort:
      return 134;
    case HaltReason::kHlt:
      return 0;
    case HaltReason::kInstrLimit:
      std::fprintf(stderr, "rfrun: instruction limit exceeded\n");
      return 124;
    default:
      std::fprintf(stderr, "rfrun: FAULT: %s\n", out.result.fault_message.c_str());
      return 139;
  }
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
