// redfatd — rewrite-as-a-service daemon.
//
//   redfatd --socket=PATH [--jobs=N] [--cache-bytes=N]
//
// Listens on a Unix-domain socket and serves framed rewrite requests (see
// src/serve/protocol.h) with a warm pipeline: one persistent worker pool,
// per-image analysis retained across requests, and a content-addressed
// artifact cache in front of the pipeline. Clients use
// `redfat --connect=PATH ...`, which transparently falls back to in-process
// rewriting when no daemon answers.
//
// Options:
//   --socket=PATH       socket to listen on (required). An existing live
//                       daemon on PATH is an error; a stale socket file is
//                       replaced.
//   --jobs=N            warm pool width shared by every request's pipeline
//                       (default 1; 0 = one per hardware thread)
//   --cache-bytes=N     LRU byte budget of the artifact cache (default
//                       256 MiB; 0 = unbounded). Suffixes K/M/G accepted.
//   --stats-on-exit     print the final stats JSON to stdout after the
//                       shutdown request drains
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/daemon.h"

namespace redfat {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: redfatd --socket=PATH [--jobs=N] [--cache-bytes=N[K|M|G]]\n"
               "               [--stats-on-exit]\n");
  return 2;
}

// Parses "N", "Nk", "NM", "NG" (case-insensitive) into bytes.
bool ParseByteSize(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) {
    return false;
  }
  uint64_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') {
      return false;
    }
  }
  *out = n * mult;
  return true;
}

int Main(int argc, char** argv) {
  Daemon::Config config;
  bool stats_on_exit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      config.socket_path = arg.substr(9);
    } else if (arg == "--socket" && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg.c_str() + 7, &end, 10);
      if (end == arg.c_str() + 7 || *end != '\0') {
        return Usage();
      }
      config.service.jobs = static_cast<unsigned>(n);
    } else if (arg.rfind("--cache-bytes=", 0) == 0) {
      if (!ParseByteSize(arg.substr(14), &config.service.cache_bytes)) {
        return Usage();
      }
    } else if (arg == "--stats-on-exit") {
      stats_on_exit = true;
    } else {
      return Usage();
    }
  }
  if (config.socket_path.empty()) {
    return Usage();
  }

  Daemon daemon(config);
  Status listening = daemon.Listen();
  if (!listening.ok()) {
    std::fprintf(stderr, "redfatd: %s\n", listening.error().c_str());
    return 1;
  }
  std::fprintf(stderr, "redfatd: listening on %s (jobs=%u, cache-bytes=%llu)\n",
               config.socket_path.c_str(), config.service.jobs,
               static_cast<unsigned long long>(config.service.cache_bytes));
  Status served = daemon.Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "redfatd: %s\n", served.error().c_str());
    return 1;
  }
  if (stats_on_exit) {
    std::printf("%s\n", daemon.service().StatsJson().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
