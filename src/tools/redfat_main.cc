// redfat — the hardening tool CLI (models the paper's `redfat` command).
//
//   redfat [options] input.rfbin output.rfbin
//
// Options:
//   --profile              emit profiling instrumentation (Fig. 5, step 1)
//   --allowlist FILE       allow-list file: one hex site address per line
//   --profile-data FILE    build the allow-list from an `rfrun
//                          --profile-dump` file (re-plans the input binary
//                          deterministically to map site ids to addresses)
//   --no-reads --no-size --no-lowfat            check content toggles
//   --no-elim --no-batch --no-merge             optimization toggles
//   --shadow               ASAN-style shadow redzones (ablation; run the
//                          output under `rfrun --runtime=redfat-shadow`)
//   --jobs=N               run the per-item pipeline passes on N worker
//                          threads (0 = one per hardware thread); the
//                          output is byte-identical for any N
//   --time-passes          per-pass wall-time report on stderr
//   --stats FILE           machine-readable pipeline stats JSON ('-' =
//                          stdout)
//   --metrics FILE         unified telemetry snapshot JSON of the rewrite
//                          (pipeline counters/gauges; '-' = stdout)
//   --trace FILE           Chrome trace-event JSON of the pass timeline
//                          (load in Perfetto / chrome://tracing)
//   -v                     verbose plan/rewrite statistics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/tools/tool_io.h"

namespace redfat {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: redfat [--profile] [--allowlist FILE | --profile-data FILE]\n"
               "              [--no-reads] [--no-size] [--no-lowfat] [--sitemap FILE]\n"
               "              [--no-elim] [--no-batch] [--no-merge] [--shadow]\n"
               "              [--jobs=N] [--time-passes] [--stats FILE] [-v]\n"
               "              [--metrics FILE] [--trace FILE]\n"
               "              input.rfbin output.rfbin\n");
  return 2;
}

Result<AllowList> AllowListFromFile(const std::string& path) {
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) {
    return Error(lines.error());
  }
  AllowList allow;
  for (const std::string& line : lines.value()) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    allow.addrs.insert(std::strtoull(line.c_str(), nullptr, 0));
  }
  return allow;
}

// Rebuilds the profiling plan for `input` (deterministic) and converts an
// rfrun profile dump ("<site> <passes> <fails>" lines) into an allow-list.
Result<AllowList> AllowListFromProfileData(const BinaryImage& input, const std::string& path) {
  RedFatTool prof(RedFatOptions::Profile());
  Result<InstrumentResult> ir = prof.Instrument(input);
  if (!ir.ok()) {
    return Error(ir.error());
  }
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) {
    return Error(lines.error());
  }
  std::unordered_map<uint32_t, Vm::ProfCounts> counts;
  for (const std::string& line : lines.value()) {
    unsigned site = 0;
    unsigned long long passes = 0;
    unsigned long long fails = 0;
    if (std::sscanf(line.c_str(), "%u %llu %llu", &site, &passes, &fails) == 3) {
      counts[site] = Vm::ProfCounts{passes, fails};
    }
  }
  return BuildAllowList(counts, ir.value().sites);
}

int Main(int argc, char** argv) {
  RedFatOptions opts;
  std::string allow_path;
  std::string profile_data_path;
  std::string sitemap_path;
  std::string stats_path;
  std::string metrics_path;
  std::string trace_path;
  bool time_passes = false;
  bool verbose = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      opts.mode = RedFatOptions::Mode::kProfile;
    } else if (arg == "--no-reads") {
      opts.check_reads = false;
    } else if (arg == "--no-size") {
      opts.size_hardening = false;
    } else if (arg == "--no-lowfat") {
      opts.lowfat = false;
    } else if (arg == "--no-elim") {
      opts.elim = false;
    } else if (arg == "--no-batch") {
      opts.batch = false;
    } else if (arg == "--no-merge") {
      opts.merge = false;
    } else if (arg == "--shadow") {
      opts.redzone_impl = RedzoneImpl::kShadow;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg.c_str() + 7, &end, 10);
      if (end == arg.c_str() + 7 || *end != '\0') {
        return Usage();  // empty or non-numeric value
      }
      opts.jobs = static_cast<unsigned>(n);
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--time-passes") {
      time_passes = true;
    } else if (arg == "--stats" && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg == "-v") {
      verbose = true;
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (arg == "--profile-data" && i + 1 < argc) {
      profile_data_path = argv[++i];
    } else if (arg == "--sitemap" && i + 1 < argc) {
      sitemap_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    return Usage();
  }

  Result<BinaryImage> input = LoadImageFile(positional[0]);
  if (!input.ok()) {
    std::fprintf(stderr, "redfat: %s\n", input.error().c_str());
    return 1;
  }

  AllowList allow;
  const AllowList* allow_ptr = nullptr;
  if (!allow_path.empty()) {
    Result<AllowList> a = AllowListFromFile(allow_path);
    if (!a.ok()) {
      std::fprintf(stderr, "redfat: %s\n", a.error().c_str());
      return 1;
    }
    allow = std::move(a).value();
    allow_ptr = &allow;
  } else if (!profile_data_path.empty()) {
    Result<AllowList> a = AllowListFromProfileData(input.value(), profile_data_path);
    if (!a.ok()) {
      std::fprintf(stderr, "redfat: %s\n", a.error().c_str());
      return 1;
    }
    allow = std::move(a).value();
    allow_ptr = &allow;
  }

  RedFatTool tool(opts);
  Result<InstrumentResult> out = tool.Instrument(input.value(), allow_ptr);
  if (!out.ok()) {
    std::fprintf(stderr, "redfat: %s\n", out.error().c_str());
    return 1;
  }
  const Status saved = SaveImageFile(positional[1], out.value().image);
  if (!saved.ok()) {
    std::fprintf(stderr, "redfat: %s\n", saved.error().c_str());
    return 1;
  }
  if (!sitemap_path.empty()) {
    const std::string text = SerializeSiteMap(out.value().sites);
    const Status s = WriteFileBytes(sitemap_path,
                                    std::vector<uint8_t>(text.begin(), text.end()));
    if (!s.ok()) {
      std::fprintf(stderr, "redfat: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!stats_path.empty()) {
    const Status s = WriteTextFile(stats_path, out.value().pipeline_stats.ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "redfat: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    TelemetryRegistry reg;
    AddPipelineTelemetry(out.value().pipeline_stats, &reg);
    const Status s = WriteTextFile(metrics_path, reg.Snapshot().ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "redfat: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    TraceWriter trace;
    AppendPipelineTrace(out.value().pipeline_stats, &trace);
    const Status s = WriteTextFile(trace_path, trace.ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "redfat: %s\n", s.error().c_str());
      return 1;
    }
  }
  if (time_passes) {
    const PipelineStats& ps = out.value().pipeline_stats;
    std::fprintf(stderr, "redfat: pass timings (%u job%s)\n", ps.jobs,
                 ps.jobs == 1 ? "" : "s");
    std::fprintf(stderr, "  %-10s %10s %10s %10s %14s\n", "pass", "items", "changed",
                 "wall(ms)", "cycles-saved");
    for (const PassStats& p : ps.passes) {
      std::fprintf(stderr, "  %-10s %10zu %10zu %10.3f %14llu\n", p.name.c_str(), p.items,
                   p.changed, p.wall_ms, static_cast<unsigned long long>(p.cycles_saved));
    }
    std::fprintf(stderr, "  %-10s %10s %10s %10.3f\n", "total", "", "", ps.total_ms);
  }
  if (verbose) {
    const PlanStats& p = out.value().plan_stats;
    const RewriteStats& r = out.value().rewrite_stats;
    std::fprintf(stderr,
                 "redfat: %zu memory operands, %zu eliminated, %zu full + %zu "
                 "redzone-only sites\n"
                 "redfat: %zu trampolines, %zu checks after merging, %llu trampoline "
                 "bytes\n"
                 "redfat: skipped %zu (jump-target) + %zu (call-span) + %zu "
                 "(section-end)\n",
                 p.mem_operands, p.eliminated, p.full_sites, p.redzone_sites, p.trampolines,
                 p.checks_emitted, static_cast<unsigned long long>(r.trampoline_bytes),
                 r.skipped_target_conflict, r.skipped_call_span, r.skipped_section_end);
    if (allow_ptr != nullptr) {
      std::fprintf(stderr, "redfat: allow-list with %zu entries applied\n",
                   allow.addrs.size());
    }
  }
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
