// redfat — the hardening tool CLI (models the paper's `redfat` command).
//
//   redfat [options] input.rfbin output.rfbin
//   redfat [options] --output-dir DIR input.rfbin [input2.rfbin ...]
//
// The second form is batch mode: every input is instrumented concurrently
// on one shared worker pool (--jobs bounds the total parallelism across
// images and passes) and written to DIR under its own basename. An input
// may carry a per-image trampoline base as `path:0xADDR` so separately
// instrumented shared objects (§7.4) land at non-overlapping addresses.
// --stats/--metrics/--trace/--sitemap emit one file per image with the
// image's stem inserted before the extension (stats.json -> stats.foo.json).
//
// A third form aggregates telemetry snapshots from several runs into one
// profile for `--profile=FILE` (counters summed per site):
//
//   redfat --merge-metrics out.json a.json b.json ...
//
// Options:
//   --harden=TIER          hardening policy tier: none|fast|extensive|debug
//                          (core/policy.h). fast = lowfat-only inline
//                          checks; extensive = redzone+lowfat, the default,
//                          byte-identical to no --harden flag; debug =
//                          extensive checks over the debug runtime (run the
//                          output under `rfrun --harden=debug`). Legacy
//                          flags below map onto policy overrides;
//                          contradictory combinations (--harden=fast
//                          --shadow, --harden=debug --no-lowfat, ...) are
//                          rejected with a diagnostic.
//   --rheap=LIST           allocator hardening features the output expects
//                          at runtime: a comma list of prot-freelist,
//                          guard-memcpy, random, quarantine=N, or `none`
//                          (heap/rheap.h). Validated here and recorded in
//                          the --sitemap header ("# rheap: <list>") so
//                          `rfrun` picks the list up without re-passing the
//                          flag; without --rheap the --harden tier's
//                          defaults apply and no header is emitted.
//   --profile              emit profiling instrumentation (Fig. 5, step 1)
//   --profile=FILE         tier checks using a prior run's --metrics
//                          snapshot: hot sites get inline checks, cold
//                          sites get demoted batches (see --hot-threshold)
//   --profile-sitemap FILE site map saved with the profiled build; joins
//                          profile site ids by address so a profile from a
//                          differently-planned build is ignored rather
//                          than mis-applied
//   --hot-threshold=F      fraction of profiled trampoline cycles the hot
//                          tier must cover (default 0.9)
//   --allowlist FILE       allow-list file: one hex site address per line
//   --profile-data FILE    build the allow-list from an `rfrun
//                          --profile-dump` file (re-plans the input binary
//                          deterministically to map site ids to addresses)
//   --no-reads --no-size --no-lowfat            check content toggles
//   --no-elim --no-batch --no-merge             optimization toggles
//   --shadow               ASAN-style shadow redzones (ablation; run the
//                          output under `rfrun --runtime=redfat-shadow`)
//   --jobs=N               run the per-item pipeline passes on N worker
//                          threads (0 = one per hardware thread); the
//                          output is byte-identical for any N
//   --time-passes          per-pass wall-time report on stderr
//   --stats FILE           machine-readable pipeline stats JSON ('-' =
//                          stdout)
//   --metrics FILE         unified telemetry snapshot JSON of the rewrite
//                          (pipeline counters/gauges; '-' = stdout)
//   --trace FILE           Chrome trace-event JSON of the pass timeline
//                          (load in Perfetto / chrome://tracing)
//   --connect=SOCK         submit the rewrite to a running `redfatd` on the
//                          Unix socket SOCK instead of rewriting in-process.
//                          Transparently falls back to the in-process path
//                          when no daemon answers, or when the invocation
//                          needs local-only artifacts (--stats/--metrics/
//                          --trace/--time-passes, allow-lists, batch mode,
//                          --profile-sitemap, --sitemap with --harden).
//                          Daemon outputs are byte-identical to offline ones.
//   --print-cache-key      print the daemon cache key
//                          (image-hash, options-fp, profile-fp hex triple)
//                          this invocation would be served under, and exit
//   -v                     verbose plan/rewrite statistics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/core/policy.h"
#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/serve/client.h"
#include "src/serve/fingerprint.h"
#include "src/serve/service.h"
#include "src/support/parallel.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/tools/tool_io.h"

namespace redfat {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: redfat [--harden=none|fast|extensive|debug]\n"
               "              [--rheap=prot-freelist,guard-memcpy,random,"
               "quarantine=N|none]\n"
               "              [--profile] [--allowlist FILE | --profile-data FILE]\n"
               "              [--profile=METRICS.json] [--profile-sitemap FILE]\n"
               "              [--hot-threshold=F]\n"
               "              [--no-reads] [--no-size] [--no-lowfat] [--sitemap FILE]\n"
               "              [--no-elim] [--no-batch] [--no-merge] [--shadow]\n"
               "              [--jobs=N] [--time-passes] [--stats FILE] [-v]\n"
               "              [--metrics FILE] [--trace FILE]\n"
               "              [--connect=SOCK]\n"
               "              input.rfbin output.rfbin\n"
               "       redfat [options] --output-dir DIR input.rfbin[:0xBASE] ...\n"
               "       redfat --merge-metrics out.json a.json b.json ...\n"
               "       redfat [options] --print-cache-key input.rfbin\n");
  return 2;
}

// Batch-mode input: a path, optionally suffixed `:0xADDR` to override the
// image's trampoline base (needed when several instrumented images share one
// address space).
struct InputSpec {
  std::string path;
  uint64_t trampoline_base = 0;  // 0 = keep the configured default
};

InputSpec ParseInputSpec(const std::string& arg) {
  InputSpec spec;
  spec.path = arg;
  const size_t colon = arg.rfind(':');
  if (colon != std::string::npos) {
    const std::string suffix = arg.substr(colon + 1);
    if (suffix.rfind("0x", 0) == 0 || suffix.rfind("0X", 0) == 0) {
      char* end = nullptr;
      const unsigned long long base = std::strtoull(suffix.c_str(), &end, 16);
      if (end != suffix.c_str() + 2 && *end == '\0' && base != 0) {
        spec.path = arg.substr(0, colon);
        spec.trampoline_base = base;
      }
    }
  }
  return spec;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Stem(const std::string& name) {
  const size_t dot = name.find_last_of('.');
  return dot == std::string::npos || dot == 0 ? name : name.substr(0, dot);
}

// Per-image artifact path: inserts the image stem before the artifact's
// extension ("stats.json" + "foo" -> "stats.foo.json"). "-" (stdout) is kept
// as-is; batch emission is serial, so stdout output is merely concatenated.
std::string PerImagePath(const std::string& base, const std::string& stem) {
  if (base == "-") {
    return base;
  }
  const size_t slash = base.find_last_of('/');
  const size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return base + "." + stem;
  }
  return base.substr(0, dot) + "." + stem + base.substr(dot);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    return Error(bytes.error());
  }
  return std::string(bytes.value().begin(), bytes.value().end());
}

// `redfat --merge-metrics out.json a.json b.json ...`: sums per-site
// counters across several runs' --metrics snapshots into one profile.
int MergeMetricsMain(const std::vector<std::string>& paths) {
  if (paths.size() < 2) {
    return Usage();
  }
  std::vector<TelemetrySnapshot> snaps;
  for (size_t i = 1; i < paths.size(); ++i) {
    Result<std::string> text = ReadWholeFile(paths[i]);
    if (!text.ok()) {
      std::fprintf(stderr, "redfat: %s\n", text.error().c_str());
      return 1;
    }
    Result<TelemetrySnapshot> snap = TelemetrySnapshotFromJson(text.value());
    if (!snap.ok()) {
      std::fprintf(stderr, "redfat: %s: %s\n", paths[i].c_str(), snap.error().c_str());
      return 1;
    }
    snaps.push_back(std::move(snap).value());
  }
  const TelemetrySnapshot merged = MergeTelemetrySnapshots(snaps);
  const Status s = WriteTextFile(paths[0], merged.ToJson() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "redfat: %s\n", s.error().c_str());
    return 1;
  }
  return 0;
}

// Loads a --metrics snapshot into the tier pass's input: plain (image-0)
// site ids mapped to the cycles the site's checks cost at runtime.
Result<TierProfile> TierProfileFromMetrics(const std::string& path) {
  Result<std::string> text = ReadWholeFile(path);
  if (!text.ok()) {
    return Error(text.error());
  }
  Result<TelemetrySnapshot> snap = TelemetrySnapshotFromJson(text.value());
  if (!snap.ok()) {
    return Error(StrFormat("%s: %s", path.c_str(), snap.error().c_str()));
  }
  TierProfile profile;
  for (const SiteTelemetry& st : snap.value().sites) {
    if (ImageOfSiteKey(st.site) != 0) {
      continue;  // multi-image keys: only the main image's sites apply
    }
    profile.cycles_by_site[st.site] = st.tramp_cycles() + st.inline_cycles();
  }
  return profile;
}

Result<AllowList> AllowListFromFile(const std::string& path) {
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) {
    return Error(lines.error());
  }
  AllowList allow;
  for (const std::string& line : lines.value()) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    allow.addrs.insert(std::strtoull(line.c_str(), nullptr, 0));
  }
  return allow;
}

// Rebuilds the profiling plan for `input` (deterministic) and converts an
// rfrun profile dump ("<site> <passes> <fails>" lines) into an allow-list.
Result<AllowList> AllowListFromProfileData(const BinaryImage& input, const std::string& path) {
  RedFatTool prof(RedFatOptions::Profile());
  Result<InstrumentResult> ir = prof.Instrument(input);
  if (!ir.ok()) {
    return Error(ir.error());
  }
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) {
    return Error(lines.error());
  }
  std::unordered_map<uint32_t, Vm::ProfCounts> counts;
  for (const std::string& line : lines.value()) {
    unsigned site = 0;
    unsigned long long passes = 0;
    unsigned long long fails = 0;
    if (std::sscanf(line.c_str(), "%u %llu %llu", &site, &passes, &fails) == 3) {
      counts[site] = Vm::ProfCounts{passes, fails};
    }
  }
  return BuildAllowList(counts, ir.value().sites);
}

// Emits one image's artifact set (paths are already per-image).
Status EmitArtifacts(const InstrumentResult& out, const std::string& sitemap_path,
                     const std::string& stats_path, const std::string& metrics_path,
                     const std::string& trace_path) {
  if (!sitemap_path.empty()) {
    // The policy headers appear only for explicit --harden/--rheap builds.
    const std::string text =
        SerializeSiteMap(out.sites, out.harden_explicit ? &out.harden : nullptr,
                         out.rheap_explicit ? &out.rheap : nullptr);
    const Status s = WriteFileBytes(sitemap_path,
                                    std::vector<uint8_t>(text.begin(), text.end()));
    if (!s.ok()) {
      return s;
    }
  }
  if (!stats_path.empty()) {
    const Status s = WriteTextFile(stats_path, out.pipeline_stats.ToJson() + "\n");
    if (!s.ok()) {
      return s;
    }
  }
  if (!metrics_path.empty()) {
    TelemetryRegistry reg;
    AddPipelineTelemetry(out.pipeline_stats, &reg);
    const Status s = WriteTextFile(metrics_path, reg.Snapshot().ToJson() + "\n");
    if (!s.ok()) {
      return s;
    }
  }
  if (!trace_path.empty()) {
    TraceWriter trace;
    AppendPipelineTrace(out.pipeline_stats, &trace);
    const Status s = WriteTextFile(trace_path, trace.ToJson() + "\n");
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

void PrintPassTimings(const std::string& label, const PipelineStats& ps) {
  std::fprintf(stderr, "redfat:%s pass timings (%u job%s)\n", label.c_str(), ps.jobs,
               ps.jobs == 1 ? "" : "s");
  std::fprintf(stderr, "  %-10s %10s %10s %10s %14s\n", "pass", "items", "changed",
               "wall(ms)", "cycles-saved");
  for (const PassStats& p : ps.passes) {
    std::fprintf(stderr, "  %-10s %10zu %10zu %10.3f %14llu\n", p.name.c_str(), p.items,
                 p.changed, p.wall_ms, static_cast<unsigned long long>(p.cycles_saved));
  }
  std::fprintf(stderr, "  %-10s %10s %10s %10.3f\n", "total", "", "", ps.total_ms);
}

void PrintVerboseStats(const std::string& label, const InstrumentResult& out) {
  const PlanStats& p = out.plan_stats;
  const RewriteStats& r = out.rewrite_stats;
  std::fprintf(stderr,
               "redfat:%s %zu memory operands, %zu eliminated, %zu full + %zu "
               "redzone-only sites\n"
               "redfat:%s %zu trampolines, %zu checks after merging, %llu trampoline "
               "bytes\n"
               "redfat:%s skipped %zu (jump-target) + %zu (call-span) + %zu "
               "(section-end)\n",
               label.c_str(), p.mem_operands, p.eliminated, p.full_sites, p.redzone_sites,
               label.c_str(), p.trampolines, p.checks_emitted,
               static_cast<unsigned long long>(r.trampoline_bytes), label.c_str(),
               r.skipped_target_conflict, r.skipped_call_span, r.skipped_section_end);
}

int Main(int argc, char** argv) {
  // Everything check-selection-related goes through the policy layer: the
  // legacy flags set overrides, --harden sets the tier, and one Resolve()
  // call produces the concrete knobs (or a conflict diagnostic). Mechanical
  // knobs (mode, jobs, profiles, paths) stay plain locals.
  HardeningPolicy policy;
  RedFatOptions::Mode mode = RedFatOptions::Mode::kProduction;
  unsigned jobs = 1;
  std::string allow_path;
  std::string profile_data_path;
  std::string tier_profile_path;
  std::string profile_sitemap_path;
  std::string sitemap_path;
  std::string stats_path;
  std::string metrics_path;
  std::string trace_path;
  std::string output_dir;
  std::string connect_path;
  bool print_cache_key = false;
  bool harden_given = false;
  bool merge_metrics = false;
  bool time_passes = false;
  bool verbose = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // --profile=FILE (tiering input) first: bare --profile is Fig. 5's
    // profiling-instrumentation mode, a different feature entirely.
    if (arg.rfind("--profile=", 0) == 0) {
      tier_profile_path = arg.substr(10);
    } else if (arg == "--profile") {
      mode = RedFatOptions::Mode::kProfile;
    } else if (arg.rfind("--harden=", 0) == 0) {
      Result<HardenTier> tier = ParseHardenTier(arg.substr(9));
      if (!tier.ok()) {
        std::fprintf(stderr, "redfat: %s\n", tier.error().c_str());
        return 2;
      }
      policy.tier = tier.value();
      harden_given = true;
    } else if (arg.rfind("--rheap=", 0) == 0) {
      Result<RheapOptions> opts_r = ParseRheapList(arg.substr(8));
      if (!opts_r.ok()) {
        std::fprintf(stderr, "redfat: %s\n", opts_r.error().c_str());
        return 2;
      }
      policy.rheap = opts_r.value();
    } else if (arg == "--profile-sitemap" && i + 1 < argc) {
      profile_sitemap_path = argv[++i];
    } else if (arg.rfind("--profile-sitemap=", 0) == 0) {
      profile_sitemap_path = arg.substr(18);
    } else if (arg.rfind("--hot-threshold=", 0) == 0) {
      char* end = nullptr;
      const double f = std::strtod(arg.c_str() + 16, &end);
      if (end == arg.c_str() + 16 || *end != '\0' || f < 0.0 || f > 1.0) {
        return Usage();
      }
      policy.hot_threshold = f;
    } else if (arg == "--hot-threshold" && i + 1 < argc) {
      policy.hot_threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--merge-metrics") {
      merge_metrics = true;
    } else if (arg == "--no-reads") {
      policy.check_reads = false;
    } else if (arg == "--no-size") {
      policy.size_hardening = false;
    } else if (arg == "--no-lowfat") {
      policy.lowfat = false;
    } else if (arg == "--no-elim") {
      policy.elim = false;
    } else if (arg == "--no-batch") {
      policy.batch = false;
    } else if (arg == "--no-merge") {
      policy.merge = false;
    } else if (arg == "--shadow") {
      policy.shadow_impl = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg.c_str() + 7, &end, 10);
      if (end == arg.c_str() + 7 || *end != '\0') {
        return Usage();  // empty or non-numeric value
      }
      jobs = static_cast<unsigned>(n);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--time-passes") {
      time_passes = true;
    } else if (arg == "--stats" && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_path = arg.substr(10);
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--print-cache-key") {
      print_cache_key = true;
    } else if (arg == "--output-dir" && i + 1 < argc) {
      output_dir = argv[++i];
    } else if (arg.rfind("--output-dir=", 0) == 0) {
      output_dir = arg.substr(13);
    } else if (arg == "-v") {
      verbose = true;
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (arg == "--profile-data" && i + 1 < argc) {
      profile_data_path = argv[++i];
    } else if (arg == "--sitemap" && i + 1 < argc) {
      sitemap_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (merge_metrics) {
    return MergeMetricsMain(positional);
  }

  // One Resolve() call settles every check-selection knob; a contradictory
  // flag combination dies here with a diagnostic naming both sides.
  Result<ResolvedPolicy> resolved_r = policy.Resolve();
  if (!resolved_r.ok()) {
    std::fprintf(stderr, "redfat: %s\n", resolved_r.error().c_str());
    return 2;
  }
  ResolvedPolicy resolved = std::move(resolved_r).value();
  // Artifacts record the tier only when the user picked one: legacy
  // invocations keep byte-identical outputs.
  resolved.explicit_tier = harden_given;
  // Mechanical knobs ride on the resolved rewrite options.
  resolved.rewrite.mode = mode;
  resolved.rewrite.jobs = jobs;
  RedFatOptions& opts = resolved.rewrite;

  if (print_cache_key) {
    // The key the daemon would serve this invocation under: raw file bytes
    // hashed as they would cross the wire, options under the service's
    // normalized fingerprint, profile content hashed separately.
    if (positional.size() != 1) {
      return Usage();
    }
    Result<std::vector<uint8_t>> raw = ReadFileBytes(positional[0]);
    if (!raw.ok()) {
      std::fprintf(stderr, "redfat: %s\n", raw.error().c_str());
      return 1;
    }
    CacheKey key;
    key.image_hash = Fnv1a64(raw.value());
    key.options_fp = CacheOptionsFingerprint(opts);
    if (!tier_profile_path.empty()) {
      Result<TierProfile> p = TierProfileFromMetrics(tier_profile_path);
      if (!p.ok()) {
        std::fprintf(stderr, "redfat: %s\n", p.error().c_str());
        return 1;
      }
      key.profile_fp = TierProfileFingerprint(p.value());
    }
    std::printf("%s\n", key.ToString().c_str());
    return 0;
  }

  if (!connect_path.empty() && output_dir.empty() && positional.size() == 2) {
    // Requests that need local-only artifacts (pipeline stats, traces,
    // allow-lists, profile-sitemap joins, policy-stamped sitemaps) never go
    // to the daemon; everything else does, falling back to the in-process
    // path when no daemon answers.
    const bool local_only = !allow_path.empty() || !profile_data_path.empty() ||
                            !profile_sitemap_path.empty() || !stats_path.empty() ||
                            !metrics_path.empty() || !trace_path.empty() ||
                            time_passes ||
                            (!sitemap_path.empty() &&
                             (harden_given || policy.rheap.has_value()));
    if (!local_only) {
      Result<std::vector<uint8_t>> raw = ReadFileBytes(positional[0]);
      if (!raw.ok()) {
        std::fprintf(stderr, "redfat: %s\n", raw.error().c_str());
        return 1;
      }
      std::string profile_json;
      if (!tier_profile_path.empty()) {
        Result<std::string> text = ReadWholeFile(tier_profile_path);
        if (!text.ok()) {
          std::fprintf(stderr, "redfat: %s\n", text.error().c_str());
          return 1;
        }
        profile_json = std::move(text).value();
      }
      DaemonClient client;
      if (client.Connect(connect_path).ok()) {
        // A daemon that answered owns the request: its errors are surfaced,
        // not silently retried locally (the bytes would be identical anyway).
        Result<DaemonClient::RewriteReply> reply =
            client.Rewrite(raw.value(), opts, profile_json);
        if (!reply.ok()) {
          std::fprintf(stderr, "redfat: %s\n", reply.error().c_str());
          return 1;
        }
        const Status saved = WriteFileBytes(positional[1], reply.value().image_bytes);
        if (!saved.ok()) {
          std::fprintf(stderr, "redfat: %s\n", saved.error().c_str());
          return 1;
        }
        if (!sitemap_path.empty()) {
          const std::string& text = reply.value().sitemap;
          const Status s = WriteFileBytes(
              sitemap_path, std::vector<uint8_t>(text.begin(), text.end()));
          if (!s.ok()) {
            std::fprintf(stderr, "redfat: %s\n", s.error().c_str());
            return 1;
          }
        }
        if (verbose) {
          std::fprintf(stderr, "redfat: served by daemon %s key=%s%s%s\n",
                       connect_path.c_str(), reply.value().key.ToString().c_str(),
                       reply.value().cache_hit ? " (cache hit)" : "",
                       reply.value().incremental_retier ? " (incremental re-tier)" : "");
        }
        return 0;
      }
      if (verbose) {
        std::fprintf(stderr, "redfat: no daemon on %s, rewriting in-process\n",
                     connect_path.c_str());
      }
    }
  }

  if (!output_dir.empty()) {
    // Batch mode: every positional is an input; outputs land in output_dir.
    if (positional.empty()) {
      return Usage();
    }
    if (opts.mode == RedFatOptions::Mode::kProfile || !allow_path.empty() ||
        !profile_data_path.empty() || !tier_profile_path.empty()) {
      std::fprintf(stderr,
                   "redfat: --profile/--allowlist/--profile-data/--profile=FILE are "
                   "single-image only (batch inputs have distinct site-id spaces)\n");
      return 2;
    }

    const size_t n = positional.size();
    std::vector<InputSpec> specs;
    specs.reserve(n);
    std::vector<BinaryImage> inputs(n);
    for (size_t i = 0; i < n; ++i) {
      specs.push_back(ParseInputSpec(positional[i]));
      Result<BinaryImage> img = LoadImageFile(specs[i].path);
      if (!img.ok()) {
        std::fprintf(stderr, "redfat: %s\n", img.error().c_str());
        return 1;
      }
      inputs[i] = std::move(img).value();
    }

    // One pool shared by the image loop and every image's pipeline: a worker
    // that enters an image runs that image's passes inline (nested regions
    // serialize), so total threads never exceed --jobs.
    ThreadPool pool(opts.jobs);
    std::vector<std::optional<InstrumentResult>> results(n);
    std::vector<std::string> errors(n);
    pool.ParallelFor(n, [&](size_t i) {
      ResolvedPolicy image_policy = resolved;
      if (specs[i].trampoline_base != 0) {
        image_policy.rewrite.trampoline_base = specs[i].trampoline_base;
      }
      RedFatTool tool(image_policy);
      Result<InstrumentResult> r = tool.Instrument(inputs[i], nullptr, &pool);
      if (r.ok()) {
        results[i] = std::move(r).value();
      } else {
        errors[i] = r.error();
      }
    });

    // Serial emission, input order: deterministic artifact set and readable
    // interleaving on stdout/stderr.
    int rc = 0;
    for (size_t i = 0; i < n; ++i) {
      const std::string name = BaseName(specs[i].path);
      if (!errors[i].empty()) {
        std::fprintf(stderr, "redfat: %s: %s\n", specs[i].path.c_str(),
                     errors[i].c_str());
        rc = 1;
        continue;
      }
      const InstrumentResult& out = *results[i];
      const Status saved = SaveImageFile(output_dir + "/" + name, out.image);
      if (!saved.ok()) {
        std::fprintf(stderr, "redfat: %s: %s\n", specs[i].path.c_str(),
                     saved.error().c_str());
        rc = 1;
        continue;
      }
      const std::string stem = Stem(name);
      const Status emitted = EmitArtifacts(
          out, sitemap_path.empty() ? "" : PerImagePath(sitemap_path, stem),
          stats_path.empty() ? "" : PerImagePath(stats_path, stem),
          metrics_path.empty() ? "" : PerImagePath(metrics_path, stem),
          trace_path.empty() ? "" : PerImagePath(trace_path, stem));
      if (!emitted.ok()) {
        std::fprintf(stderr, "redfat: %s: %s\n", specs[i].path.c_str(),
                     emitted.error().c_str());
        rc = 1;
        continue;
      }
      const std::string label = " " + name + ":";
      if (time_passes) {
        PrintPassTimings(label, out.pipeline_stats);
      }
      if (verbose) {
        PrintVerboseStats(label, out);
      }
    }
    return rc;
  }

  if (positional.size() != 2) {
    return Usage();
  }

  Result<BinaryImage> input = LoadImageFile(positional[0]);
  if (!input.ok()) {
    std::fprintf(stderr, "redfat: %s\n", input.error().c_str());
    return 1;
  }

  AllowList allow;
  const AllowList* allow_ptr = nullptr;
  if (!allow_path.empty()) {
    Result<AllowList> a = AllowListFromFile(allow_path);
    if (!a.ok()) {
      std::fprintf(stderr, "redfat: %s\n", a.error().c_str());
      return 1;
    }
    allow = std::move(a).value();
    allow_ptr = &allow;
  } else if (!profile_data_path.empty()) {
    Result<AllowList> a = AllowListFromProfileData(input.value(), profile_data_path);
    if (!a.ok()) {
      std::fprintf(stderr, "redfat: %s\n", a.error().c_str());
      return 1;
    }
    allow = std::move(a).value();
    allow_ptr = &allow;
  }

  TierProfile tier_profile;
  std::vector<SiteRecord> profile_sites;
  if (!tier_profile_path.empty()) {
    Result<TierProfile> p = TierProfileFromMetrics(tier_profile_path);
    if (!p.ok()) {
      std::fprintf(stderr, "redfat: %s\n", p.error().c_str());
      return 1;
    }
    tier_profile = std::move(p).value();
    if (!profile_sitemap_path.empty()) {
      Result<std::vector<std::string>> lines = ReadLines(profile_sitemap_path);
      if (!lines.ok()) {
        std::fprintf(stderr, "redfat: %s\n", lines.error().c_str());
        return 1;
      }
      Result<std::vector<SiteRecord>> parsed = ParseSiteMap(lines.value());
      if (!parsed.ok()) {
        std::fprintf(stderr, "redfat: %s\n", parsed.error().c_str());
        return 1;
      }
      profile_sites = std::move(parsed).value();
      tier_profile.sitemap = &profile_sites;
    }
    opts.tier_profile = &tier_profile;
  } else if (!profile_sitemap_path.empty()) {
    std::fprintf(stderr, "redfat: --profile-sitemap requires --profile=FILE\n");
    return 2;
  }

  RedFatTool tool(resolved);
  Result<InstrumentResult> out = tool.Instrument(input.value(), allow_ptr);
  if (!out.ok()) {
    std::fprintf(stderr, "redfat: %s\n", out.error().c_str());
    return 1;
  }
  const Status saved = SaveImageFile(positional[1], out.value().image);
  if (!saved.ok()) {
    std::fprintf(stderr, "redfat: %s\n", saved.error().c_str());
    return 1;
  }
  const Status emitted =
      EmitArtifacts(out.value(), sitemap_path, stats_path, metrics_path, trace_path);
  if (!emitted.ok()) {
    std::fprintf(stderr, "redfat: %s\n", emitted.error().c_str());
    return 1;
  }
  if (time_passes) {
    PrintPassTimings("", out.value().pipeline_stats);
  }
  if (verbose) {
    PrintVerboseStats("", out.value());
    if (allow_ptr != nullptr) {
      std::fprintf(stderr, "redfat: allow-list with %zu entries applied\n",
                   allow.addrs.size());
    }
  }
  return 0;
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
