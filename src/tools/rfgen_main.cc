// rfgen — generate workload RFBIN binaries to disk.
//
//   rfgen list
//   rfgen spec NAME out.rfbin         # one of the 29 SPEC-like programs
//   rfgen kraken NAME out.rfbin
//   rfgen cve NAME out.rfbin          # prints attack/benign inputs
//   rfgen synth SEED out.rfbin        # generic synthetic program
//   rfgen server SEED out.rfbin       # request/response heap-churn server
//   rfgen uaf SEED out.rfbin          # forensics workload (mode-gated bug)
//   rfgen churn SEED out.rfbin        # fragmentation workload (mode-gated
//                                     # freelist-corruption bugs)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/tools/tool_io.h"
#include "src/workloads/cve.h"
#include "src/workloads/kraken.h"
#include "src/workloads/spec.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rfgen list\n"
               "       rfgen spec NAME out.rfbin\n"
               "       rfgen kraken NAME out.rfbin\n"
               "       rfgen cve NAME out.rfbin\n"
               "       rfgen synth SEED out.rfbin\n"
               "       rfgen server SEED out.rfbin\n"
               "       rfgen uaf SEED out.rfbin\n"
               "       rfgen churn SEED out.rfbin\n"
               "Programs read inputs[0]=iterations, inputs[1]=mode (SPEC/Kraken/synth);\n"
               "the server program reads inputs[0]=requests; the uaf program reads\n"
               "inputs[0]=mode (0 benign, 1 use-after-free, 2 double free); the churn\n"
               "program reads inputs[0]=operations, inputs[1]=mode (0 benign, 1 forged\n"
               "freelist link, 2 overlapping free).\n");
  return 2;
}

int Save(const BinaryImage& img, const std::string& path) {
  const Status s = SaveImageFile(path, img);
  if (!s.ok()) {
    std::fprintf(stderr, "rfgen: %s\n", s.error().c_str());
    return 1;
  }
  std::fprintf(stderr, "rfgen: wrote %s (%llu bytes)\n", path.c_str(),
               static_cast<unsigned long long>(img.TotalBytes()));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "list") {
    std::printf("spec:");
    for (const SpecBenchmark& b : SpecSuite()) {
      std::printf(" %s", b.name.c_str());
    }
    std::printf("\nkraken:");
    for (const KrakenBenchmark& b : KrakenSuite()) {
      std::printf(" %s", b.name.c_str());
    }
    std::printf("\ncve:");
    for (const VulnCase& c : CveCases()) {
      std::printf(" \"%s\"", c.name.c_str());
    }
    std::printf("\n(plus 480 Juliet CWE-122 cases via the bench harness)\n");
    return 0;
  }
  if (argc != 4) {
    return Usage();
  }
  const std::string name = argv[2];
  const std::string out = argv[3];
  if (cmd == "spec") {
    for (const SpecBenchmark& b : SpecSuite()) {
      if (b.name == name) {
        std::fprintf(stderr, "rfgen: train iters=%llu ref iters=%llu (mode: train=0x3e, "
                     "ref=0x3f)\n",
                     static_cast<unsigned long long>(b.train_iters),
                     static_cast<unsigned long long>(b.ref_iters));
        return Save(BuildSpecBenchmark(b), out);
      }
    }
    std::fprintf(stderr, "rfgen: unknown spec benchmark %s\n", name.c_str());
    return 1;
  }
  if (cmd == "kraken") {
    for (const KrakenBenchmark& b : KrakenSuite()) {
      if (b.name == name) {
        return Save(BuildKrakenBenchmark(b), out);
      }
    }
    std::fprintf(stderr, "rfgen: unknown kraken benchmark %s\n", name.c_str());
    return 1;
  }
  if (cmd == "cve") {
    for (const VulnCase& c : CveCases()) {
      if (c.name.find(name) != std::string::npos) {
        std::fprintf(stderr, "rfgen: %s\n", c.name.c_str());
        std::fprintf(stderr, "rfgen: attack input: %llu   benign input: %llu\n",
                     static_cast<unsigned long long>(c.attack_inputs.at(0)),
                     static_cast<unsigned long long>(c.benign_inputs.at(0)));
        return Save(c.image, out);
      }
    }
    std::fprintf(stderr, "rfgen: unknown cve %s\n", name.c_str());
    return 1;
  }
  if (cmd == "synth") {
    SynthParams p;
    p.seed = std::strtoull(name.c_str(), nullptr, 0);
    return Save(GenerateSynthProgram(p), out);
  }
  if (cmd == "server") {
    ServerParams p;
    p.seed = std::strtoull(name.c_str(), nullptr, 0);
    return Save(GenerateServerProgram(p), out);
  }
  if (cmd == "uaf") {
    UafParams p;
    p.seed = std::strtoull(name.c_str(), nullptr, 0);
    std::fprintf(stderr,
                 "rfgen: inputs[0]=0 benign, =1 use-after-free, =2 double free\n");
    return Save(GenerateUafProgram(p), out);
  }
  if (cmd == "churn") {
    ChurnParams p;
    p.seed = std::strtoull(name.c_str(), nullptr, 0);
    std::fprintf(stderr,
                 "rfgen: inputs[0]=operations, inputs[1]=0 benign, =1 forged "
                 "freelist link, =2 overlapping free\n");
    return Save(GenerateChurnProgram(p), out);
  }
  return Usage();
}

}  // namespace
}  // namespace redfat

int main(int argc, char** argv) { return redfat::Main(argc, argv); }
