// Register & flags clobber analysis (paper §6, "Additional low-level
// optimizations").
//
// Trampoline check code needs 3-4 scratch registers and clobbers the flags.
// A register that is overwritten (before being read) between the
// instrumentation point and the end of its basic block is *dead* there and
// can be used without a save/restore pair; likewise for the flags register.
// Everything is conservative at block boundaries: live unless proven dead.
#ifndef REDFAT_SRC_RW_LIVENESS_H_
#define REDFAT_SRC_RW_LIVENESS_H_

#include <vector>

#include "src/rw/disasm.h"

namespace redfat {

class ThreadPool;

struct ClobberInfo {
  // Registers proven dead immediately *before* the instrumented instruction
  // executes (the check runs first, then the displaced instruction).
  std::vector<Reg> dead_regs;
  bool flags_dead = false;
};

// Computes clobber information for an instrumentation point at instruction
// `index`. The scan starts *at* insns[index] itself: registers it merely
// reads are not dead, registers it writes first are.
ClobberInfo ComputeClobbers(const Disassembly& dis, const CfgInfo& cfg, size_t index);

// Batch form: clobber info for many instrumentation points, computed across
// up to `jobs` threads (each index is independent). Returns one entry per
// input index, in input order.
std::vector<ClobberInfo> ComputeClobbersMany(const Disassembly& dis, const CfgInfo& cfg,
                                             const std::vector<size_t>& indices,
                                             unsigned jobs);

// Pool form: same result, but reuses the pipeline's persistent workers.
std::vector<ClobberInfo> ComputeClobbersMany(const Disassembly& dis, const CfgInfo& cfg,
                                             const std::vector<size_t>& indices,
                                             ThreadPool* pool);

}  // namespace redfat

#endif  // REDFAT_SRC_RW_LIVENESS_H_
