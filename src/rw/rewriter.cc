#include "src/rw/rewriter.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/str.h"

namespace redfat {

namespace {

constexpr unsigned kJmpLen = 5;  // EncodedLength(Op::kJmp)

// Re-emits a displaced instruction at the assembler's current position,
// fixing up position-dependent fields. `old_next` is the address of the
// instruction following the original copy.
void RelocateInsn(Assembler& as, const DisasmInsn& di) {
  const uint64_t old_next = di.end();
  Instruction insn = di.insn;
  switch (insn.op) {
    case Op::kJmp:
      as.JmpAbs(old_next + static_cast<uint64_t>(insn.imm));
      return;
    case Op::kJcc:
      as.JccAbs(insn.cond, old_next + static_cast<uint64_t>(insn.imm));
      return;
    case Op::kCall: {
      // Emulate: push the *original* return address, then jump. lea is used
      // for the stack adjust because it leaves the flags untouched.
      const uint64_t target = old_next + static_cast<uint64_t>(insn.imm);
      REDFAT_CHECK(old_next <= INT32_MAX);  // code lives in the low 2 GiB
      as.Lea(Reg::kRsp, MemAt(Reg::kRsp, -8));
      as.StoreI(MemAt(Reg::kRsp, 0), static_cast<int32_t>(old_next));
      as.JmpAbs(target);
      return;
    }
    case Op::kCallR: {
      REDFAT_CHECK(old_next <= INT32_MAX);
      as.Lea(Reg::kRsp, MemAt(Reg::kRsp, -8));
      as.StoreI(MemAt(Reg::kRsp, 0), static_cast<int32_t>(old_next));
      as.JmpR(insn.r0);
      return;
    }
    default:
      break;
  }
  if (IsMemAccess(insn.op) || insn.op == Op::kLea) {
    if (insn.mem.rip_relative()) {
      const uint64_t new_next = as.Here() + EncodedLength(insn.op);
      const int64_t new_disp = static_cast<int64_t>(insn.mem.disp) +
                               static_cast<int64_t>(old_next) -
                               static_cast<int64_t>(new_next);
      REDFAT_CHECK(new_disp >= INT32_MIN && new_disp <= INT32_MAX);
      insn.mem.disp = static_cast<int32_t>(new_disp);
    }
  }
  as.Emit(insn);
}

}  // namespace

Rewriter::Rewriter(const BinaryImage& image) : image_(image) {
  if (image_.FindSection(Section::Kind::kTrampoline) != nullptr) {
    error_ = "rewriter: image already contains a trampoline section";
    return;
  }
  Result<Disassembly> dis = DisassembleText(image_);
  if (!dis.ok()) {
    error_ = dis.error();
    return;
  }
  disasm_ = std::move(dis).value();
  cfg_ = RecoverCfg(disasm_, image_);
  ok_ = true;
}

Result<BinaryImage> Rewriter::Apply(const std::vector<PatchRequest>& requests,
                                    RewriteStats* stats, uint64_t trampoline_base) {
  REDFAT_CHECK(ok_);
  RewriteStats local;
  RewriteStats& st = stats != nullptr ? *stats : local;
  st = RewriteStats{};
  st.requested = requests.size();

  std::unordered_map<uint64_t, const PatchRequest*> by_addr;
  std::vector<uint64_t> addrs;
  for (const PatchRequest& r : requests) {
    if (disasm_.IndexAt(r.addr) == SIZE_MAX) {
      return Error(StrFormat("rewriter: request at 0x%llx is not an instruction boundary",
                             static_cast<unsigned long long>(r.addr)));
    }
    const bool inserted = by_addr.emplace(r.addr, &r).second;
    if (!inserted) {
      return Error(StrFormat("rewriter: duplicate request at 0x%llx",
                             static_cast<unsigned long long>(r.addr)));
    }
    addrs.push_back(r.addr);
  }
  std::sort(addrs.begin(), addrs.end());

  BinaryImage out = image_;
  Section* text = out.FindSection(Section::Kind::kText);
  REDFAT_CHECK(text != nullptr);
  Assembler tramp(trampoline_base);

  uint64_t consumed_until = 0;  // sites below this were merged into a prior span
  for (const uint64_t addr : addrs) {
    if (addr < consumed_until) {
      continue;  // payload already emitted inside the covering span
    }
    const size_t start_index = disasm_.IndexAt(addr);

    // Build the overwrite span: enough whole instructions to cover the jmp.
    std::vector<size_t> span;
    unsigned span_len = 0;
    bool conflict_target = false;
    bool conflict_call = false;
    for (size_t i = start_index; span_len < kJmpLen; ++i) {
      if (i >= disasm_.insns.size()) {
        break;
      }
      const DisasmInsn& di = disasm_.insns[i];
      if (i != start_index) {
        if (cfg_.jump_targets.count(di.addr) != 0) {
          conflict_target = true;
          break;
        }
        if (di.insn.op == Op::kCall || di.insn.op == Op::kCallR) {
          // Punning over a call is legal (we emulate it), but a call ends
          // with control leaving the trampoline: any span instructions after
          // it would be skipped. Only allow a call as the final span slot.
          conflict_call = true;
        }
      }
      span.push_back(i);
      span_len += di.length;
      if (conflict_call && span_len < kJmpLen) {
        break;  // call mid-span: remaining slots unreachable
      }
    }
    if (conflict_target) {
      ++st.skipped_target_conflict;
      continue;
    }
    if (conflict_call && span_len < kJmpLen) {
      ++st.skipped_call_span;
      continue;
    }
    if (span_len < kJmpLen) {
      ++st.skipped_section_end;
      continue;
    }

    // Emit the trampoline: payload(s) + relocated instructions + jump back.
    const uint64_t tramp_start = tramp.Here();
    for (const size_t i : span) {
      const DisasmInsn& di = disasm_.insns[i];
      auto it = by_addr.find(di.addr);
      if (it != by_addr.end()) {
        it->second->emit_payload(tramp);
        ++st.applied;
      }
      RelocateInsn(tramp, di);
    }
    const DisasmInsn& last = disasm_.insns[span.back()];
    const bool falls_through =
        !(last.insn.op == Op::kJmp || last.insn.op == Op::kJmpR || last.insn.op == Op::kRet ||
          last.insn.op == Op::kCall || last.insn.op == Op::kCallR ||
          last.insn.op == Op::kHlt);
    if (falls_through) {
      tramp.JmpAbs(last.end());
    }
    ++st.trampolines;

    // Patch the original bytes: jmp rel32 + ud2 filler.
    const uint64_t patch_off = addr - text->vaddr;
    const int64_t rel = static_cast<int64_t>(tramp_start) -
                        static_cast<int64_t>(addr + kJmpLen);
    REDFAT_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
    std::vector<uint8_t> jmp_bytes;
    Encode({.op = Op::kJmp, .imm = rel}, &jmp_bytes);
    REDFAT_CHECK(jmp_bytes.size() == kJmpLen);
    std::copy(jmp_bytes.begin(), jmp_bytes.end(), text->bytes.begin() + patch_off);
    for (unsigned f = kJmpLen; f < span_len; ++f) {
      text->bytes[patch_off + f] = static_cast<uint8_t>(Op::kUd2);
    }
    consumed_until = last.end();
  }

  std::vector<uint8_t> tramp_bytes = tramp.Finish();
  st.trampoline_bytes = tramp_bytes.size();
  if (!tramp_bytes.empty()) {
    Section ts;
    ts.kind = Section::Kind::kTrampoline;
    ts.vaddr = trampoline_base;
    ts.bytes = std::move(tramp_bytes);
    out.sections.push_back(std::move(ts));
  }
  return out;
}

}  // namespace redfat
