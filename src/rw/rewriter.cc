#include "src/rw/rewriter.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/parallel.h"
#include "src/support/str.h"

namespace redfat {

namespace {

constexpr unsigned kJmpLen = 5;  // EncodedLength(Op::kJmp)

// Re-emits a displaced instruction at the assembler's current position,
// fixing up position-dependent fields. `old_next` is the address of the
// instruction following the original copy.
void RelocateInsn(Assembler& as, const DisasmInsn& di) {
  const uint64_t old_next = di.end();
  Instruction insn = di.insn;
  switch (insn.op) {
    case Op::kJmp:
      as.JmpAbs(old_next + static_cast<uint64_t>(insn.imm));
      return;
    case Op::kJcc:
      as.JccAbs(insn.cond, old_next + static_cast<uint64_t>(insn.imm));
      return;
    case Op::kCall: {
      // Emulate: push the *original* return address, then jump. lea is used
      // for the stack adjust because it leaves the flags untouched.
      const uint64_t target = old_next + static_cast<uint64_t>(insn.imm);
      REDFAT_CHECK(old_next <= INT32_MAX);  // code lives in the low 2 GiB
      as.Lea(Reg::kRsp, MemAt(Reg::kRsp, -8));
      as.StoreI(MemAt(Reg::kRsp, 0), static_cast<int32_t>(old_next));
      as.JmpAbs(target);
      return;
    }
    case Op::kCallR: {
      REDFAT_CHECK(old_next <= INT32_MAX);
      as.Lea(Reg::kRsp, MemAt(Reg::kRsp, -8));
      as.StoreI(MemAt(Reg::kRsp, 0), static_cast<int32_t>(old_next));
      as.JmpR(insn.r0);
      return;
    }
    default:
      break;
  }
  if (IsMemAccess(insn.op) || insn.op == Op::kLea) {
    if (insn.mem.rip_relative()) {
      const uint64_t new_next = as.Here() + EncodedLength(insn.op);
      const int64_t new_disp = static_cast<int64_t>(insn.mem.disp) +
                               static_cast<int64_t>(old_next) -
                               static_cast<int64_t>(new_next);
      REDFAT_CHECK(new_disp >= INT32_MIN && new_disp <= INT32_MAX);
      insn.mem.disp = static_cast<int32_t>(new_disp);
    }
  }
  as.Emit(insn);
}

}  // namespace

Result<std::vector<SpanPlan>> PlanSpans(const Disassembly& dis, const CfgInfo& cfg,
                                        const std::vector<PatchRequest>& requests,
                                        RewriteStats* stats) {
  REDFAT_CHECK(stats != nullptr);
  stats->requested = requests.size();

  std::unordered_map<uint64_t, size_t> by_addr;
  std::vector<uint64_t> addrs;
  for (size_t r = 0; r < requests.size(); ++r) {
    const uint64_t addr = requests[r].addr;
    if (dis.IndexAt(addr) == SIZE_MAX) {
      return Error(StrFormat("rewriter: request at 0x%llx is not an instruction boundary",
                             static_cast<unsigned long long>(addr)));
    }
    const bool inserted = by_addr.emplace(addr, r).second;
    if (!inserted) {
      return Error(StrFormat("rewriter: duplicate request at 0x%llx",
                             static_cast<unsigned long long>(addr)));
    }
    addrs.push_back(addr);
  }
  std::sort(addrs.begin(), addrs.end());

  std::vector<SpanPlan> spans;
  uint64_t consumed_until = 0;  // sites below this were merged into a prior span
  for (const uint64_t addr : addrs) {
    if (addr < consumed_until) {
      continue;  // payload already emitted inside the covering span
    }
    const size_t start_index = dis.IndexAt(addr);

    // Build the overwrite span: enough whole instructions to cover the jmp.
    SpanPlan span;
    span.addr = addr;
    bool conflict_target = false;
    bool conflict_call = false;
    for (size_t i = start_index; span.span_len < kJmpLen; ++i) {
      if (i >= dis.insns.size()) {
        break;
      }
      const DisasmInsn& di = dis.insns[i];
      if (i != start_index) {
        if (cfg.jump_targets.count(di.addr) != 0) {
          conflict_target = true;
          break;
        }
        if (di.insn.op == Op::kCall || di.insn.op == Op::kCallR) {
          // Punning over a call is legal (we emulate it), but a call ends
          // with control leaving the trampoline: any span instructions after
          // it would be skipped. Only allow a call as the final span slot.
          conflict_call = true;
        }
      }
      span.insn_indices.push_back(i);
      auto it = by_addr.find(di.addr);
      span.payloads.push_back(it == by_addr.end() ? SIZE_MAX : it->second);
      span.span_len += di.length;
      if (conflict_call && span.span_len < kJmpLen) {
        break;  // call mid-span: remaining slots unreachable
      }
    }
    if (conflict_target) {
      ++stats->skipped_target_conflict;
      continue;
    }
    if (conflict_call && span.span_len < kJmpLen) {
      ++stats->skipped_call_span;
      continue;
    }
    if (span.span_len < kJmpLen) {
      ++stats->skipped_section_end;
      continue;
    }
    consumed_until = dis.insns[span.insn_indices.back()].end();
    spans.push_back(std::move(span));
  }
  return spans;
}

size_t EmitSpanTrampoline(const Disassembly& dis, Assembler& as, const SpanPlan& span,
                          const std::vector<PatchRequest>& requests) {
  size_t applied = 0;
  for (size_t slot = 0; slot < span.insn_indices.size(); ++slot) {
    const DisasmInsn& di = dis.insns[span.insn_indices[slot]];
    if (span.payloads[slot] != SIZE_MAX) {
      requests[span.payloads[slot]].emit_payload(as);
      ++applied;
    }
    RelocateInsn(as, di);
  }
  const DisasmInsn& last = dis.insns[span.insn_indices.back()];
  const bool falls_through =
      !(last.insn.op == Op::kJmp || last.insn.op == Op::kJmpR || last.insn.op == Op::kRet ||
        last.insn.op == Op::kCall || last.insn.op == Op::kCallR ||
        last.insn.op == Op::kHlt);
  if (falls_through) {
    as.JmpAbs(last.end());
  }
  return applied;
}

TrampolineCode EmitTrampolines(const Disassembly& dis, const std::vector<SpanPlan>& spans,
                               const std::vector<PatchRequest>& requests,
                               uint64_t trampoline_base, ThreadPool* pool,
                               RewriteStats* stats) {
  RewriteStats local;
  RewriteStats& st = stats != nullptr ? *stats : local;
  TrampolineCode code;
  code.starts.assign(spans.size(), 0);
  if (pool == nullptr || pool->jobs() <= 1 || spans.size() <= 1) {
    Assembler tramp(trampoline_base);
    for (size_t i = 0; i < spans.size(); ++i) {
      code.starts[i] = tramp.Here();
      st.applied += EmitSpanTrampoline(dis, tramp, spans[i], requests);
    }
    code.bytes = tramp.Finish();
  } else {
    // Phase 1: measure every span's trampoline in parallel. Instruction
    // encodings have fixed lengths, so the size does not depend on the
    // final placement.
    std::vector<size_t> sizes(spans.size(), 0);
    pool->ParallelFor(spans.size(), [&](size_t i) {
      Assembler probe(trampoline_base);
      EmitSpanTrampoline(dis, probe, spans[i], requests);
      sizes[i] = probe.SizeBytes();
      probe.Finish();
    });
    // Layout: prefix sums give each span its final address.
    uint64_t offset = 0;
    for (size_t i = 0; i < spans.size(); ++i) {
      code.starts[i] = trampoline_base + offset;
      offset += sizes[i];
    }
    // Phase 2: emit every span at its final address in parallel.
    std::vector<std::vector<uint8_t>> blobs(spans.size());
    std::vector<size_t> applied(spans.size(), 0);
    pool->ParallelFor(spans.size(), [&](size_t i) {
      Assembler as(code.starts[i]);
      applied[i] = EmitSpanTrampoline(dis, as, spans[i], requests);
      blobs[i] = as.Finish();
      REDFAT_CHECK(blobs[i].size() == sizes[i]);
    });
    code.bytes.reserve(offset);
    for (size_t i = 0; i < spans.size(); ++i) {
      st.applied += applied[i];
      code.bytes.insert(code.bytes.end(), blobs[i].begin(), blobs[i].end());
    }
  }
  st.trampolines = spans.size();
  st.trampoline_bytes = code.bytes.size();
  return code;
}

TrampolineCode EmitTrampolines(const Disassembly& dis, const std::vector<SpanPlan>& spans,
                               const std::vector<PatchRequest>& requests,
                               uint64_t trampoline_base, unsigned jobs, RewriteStats* stats) {
  jobs = ResolveJobs(jobs);
  if (jobs <= 1 || spans.size() <= 1) {
    return EmitTrampolines(dis, spans, requests, trampoline_base,
                           static_cast<ThreadPool*>(nullptr), stats);
  }
  ThreadPool pool(jobs);
  return EmitTrampolines(dis, spans, requests, trampoline_base, &pool, stats);
}

void PatchSpans(Section* text, const std::vector<SpanPlan>& spans,
                const std::vector<uint64_t>& tramp_starts, ThreadPool* pool) {
  REDFAT_CHECK(text != nullptr);
  REDFAT_CHECK(spans.size() == tramp_starts.size());
  // Each span overwrites its own disjoint byte range, so the per-span body
  // is schedule-independent.
  const auto patch_one = [&](size_t i) {
    const SpanPlan& span = spans[i];
    const uint64_t patch_off = span.addr - text->vaddr;
    const int64_t rel = static_cast<int64_t>(tramp_starts[i]) -
                        static_cast<int64_t>(span.addr + kJmpLen);
    REDFAT_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
    std::vector<uint8_t> jmp_bytes;
    Encode({.op = Op::kJmp, .imm = rel}, &jmp_bytes);
    REDFAT_CHECK(jmp_bytes.size() == kJmpLen);
    std::copy(jmp_bytes.begin(), jmp_bytes.end(), text->bytes.begin() + patch_off);
    for (unsigned f = kJmpLen; f < span.span_len; ++f) {
      text->bytes[patch_off + f] = static_cast<uint8_t>(Op::kUd2);
    }
  };
  if (pool != nullptr && pool->jobs() > 1 && spans.size() > 1) {
    pool->ParallelFor(spans.size(), patch_one);
  } else {
    for (size_t i = 0; i < spans.size(); ++i) {
      patch_one(i);
    }
  }
}

Rewriter::Rewriter(const BinaryImage& image) : image_(image) {
  if (image_.FindSection(Section::Kind::kTrampoline) != nullptr) {
    error_ = "rewriter: image already contains a trampoline section";
    return;
  }
  Result<Disassembly> dis = DisassembleText(image_);
  if (!dis.ok()) {
    error_ = dis.error();
    return;
  }
  disasm_ = std::move(dis).value();
  cfg_ = RecoverCfg(disasm_, image_);
  ok_ = true;
}

Result<BinaryImage> Rewriter::Apply(const std::vector<PatchRequest>& requests,
                                    RewriteStats* stats, uint64_t trampoline_base,
                                    unsigned jobs) {
  REDFAT_CHECK(ok_);
  RewriteStats local;
  RewriteStats& st = stats != nullptr ? *stats : local;
  st = RewriteStats{};

  Result<std::vector<SpanPlan>> planned = PlanSpans(disasm_, cfg_, requests, &st);
  if (!planned.ok()) {
    return Error(planned.error());
  }
  const std::vector<SpanPlan>& spans = planned.value();
  const TrampolineCode code =
      EmitTrampolines(disasm_, spans, requests, trampoline_base, jobs, &st);

  BinaryImage out = image_;
  Section* text = out.FindSection(Section::Kind::kText);
  REDFAT_CHECK(text != nullptr);
  PatchSpans(text, spans, code.starts);
  if (!code.bytes.empty()) {
    Section ts;
    ts.kind = Section::Kind::kTrampoline;
    ts.vaddr = trampoline_base;
    ts.bytes = code.bytes;
    out.sections.push_back(std::move(ts));
  }
  return out;
}

}  // namespace redfat
