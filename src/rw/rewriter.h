// E9Patch-style trampoline-based static binary rewriting (paper §2.2).
//
// For each requested instrumentation point, the instruction at that address
// is overwritten with a 5-byte `jmp rel32` into a trampoline containing:
//
//     (1) the instrumentation payload (emitted by the caller),
//     (2) the displaced instruction(s), relocated, and
//     (3) a jump back to the instruction after the overwritten span.
//
// If the target instruction is shorter than 5 bytes, the jump "puns" over
// the following instruction(s); all overwritten instructions are relocated
// into the trampoline and the leftover bytes are filled with 1-byte ud2
// (like E9Patch's int3 filler). Punning is refused — and the site skipped,
// opportunistically — when a recovered jump target lands inside the span,
// or when a call would be displaced (its pushed return address must be
// emulated only for the first span slot).
//
// Relocation fixups: rel32 branches are re-anchored, rip-relative memory
// operands get their displacement adjusted, and displaced calls are
// emulated as push-return-address + jmp.
//
// Rewriting is exposed as three free-function stages over a shared
// disassembly (so the pass pipeline can reuse cached analyses, and time and
// parallelize each stage independently):
//   PlanSpans        — serial: overwrite-span construction + conflicts;
//   EmitTrampolines  — per-span code emission (payloads + relocations +
//                      jump back). Every instruction encoding has a fixed
//                      length, so a span's trampoline size is independent
//                      of where it is placed; with `jobs > 1` all spans are
//                      measured in parallel, the final layout is a prefix
//                      sum, and each span is re-emitted at its final
//                      address — byte-identical to the serial layout;
//   PatchSpans       — serial: overwrite the original text bytes.
// The Rewriter class composes the three over its own disassembly.
#ifndef REDFAT_SRC_RW_REWRITER_H_
#define REDFAT_SRC_RW_REWRITER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/asm/assembler.h"
#include "src/bin/image.h"
#include "src/rw/disasm.h"
#include "src/support/result.h"

namespace redfat {

// Emits payload code into the trampoline assembler. The payload must
// preserve all guest-visible state it does not own (the caller decides
// which registers/flags are dead via its own clobber analysis). Payload
// emitters must be safe to invoke concurrently from the parallel emission
// stage (they may run once per layout phase per span).
using PayloadEmitter = std::function<void(Assembler&)>;

struct PatchRequest {
  uint64_t addr = 0;
  PayloadEmitter emit_payload;
};

struct RewriteStats {
  size_t requested = 0;
  size_t applied = 0;                 // payload emitted (own jump or merged into a span)
  size_t skipped_target_conflict = 0; // recovered jump target inside the span
  size_t skipped_call_span = 0;       // span would displace a call mid-span
  size_t skipped_section_end = 0;     // not enough bytes before section end
  uint64_t trampoline_bytes = 0;
  size_t trampolines = 0;
  // Hot-tier spans emitted into the separate inline-check region (zero
  // without a tiering profile).
  uint64_t inline_bytes = 0;
  size_t inline_trampolines = 0;
};

// One accepted overwrite span: whole instructions covering the 5-byte jmp,
// plus which request (by index into the request vector) supplies the
// payload at each slot (SIZE_MAX = no payload at that slot).
struct SpanPlan {
  uint64_t addr = 0;                  // patch address (first instruction)
  unsigned span_len = 0;              // bytes overwritten in text
  std::vector<size_t> insn_indices;   // instructions displaced, in order
  std::vector<size_t> payloads;       // parallel to insn_indices
};

// Stage 1: builds overwrite spans for all requests (validating addresses,
// counting skips into `stats`). Requests must be at unique
// instruction-boundary addresses inside the text section.
Result<std::vector<SpanPlan>> PlanSpans(const Disassembly& dis, const CfgInfo& cfg,
                                        const std::vector<PatchRequest>& requests,
                                        RewriteStats* stats);

// Emits one span's trampoline (payloads, relocated instructions, jump back)
// at the assembler's current position; returns the payloads applied.
size_t EmitSpanTrampoline(const Disassembly& dis, Assembler& as, const SpanPlan& span,
                          const std::vector<PatchRequest>& requests);

// Stage 2: emits all span trampolines as one code blob based at
// `trampoline_base`, recording each span's start address. With `jobs > 1`
// the spans are emitted across a thread pool; the blob is byte-identical
// to `jobs == 1`. Fills stats->applied/trampolines/trampoline_bytes.
struct TrampolineCode {
  std::vector<uint8_t> bytes;
  std::vector<uint64_t> starts;  // parallel to the span vector
};
TrampolineCode EmitTrampolines(const Disassembly& dis, const std::vector<SpanPlan>& spans,
                               const std::vector<PatchRequest>& requests,
                               uint64_t trampoline_base, unsigned jobs, RewriteStats* stats);

// Pool form: same two-phase measure/layout/emit, but on the pipeline's
// persistent workers instead of a per-call pool (nullptr = serial).
TrampolineCode EmitTrampolines(const Disassembly& dis, const std::vector<SpanPlan>& spans,
                               const std::vector<PatchRequest>& requests,
                               uint64_t trampoline_base, ThreadPool* pool,
                               RewriteStats* stats);

// Stage 3: overwrites each span's original bytes with `jmp rel32` into its
// trampoline plus 1-byte ud2 filler. Spans never overlap (PlanSpans merges
// or skips colliding sites), so with a pool each span patches its own
// disjoint text range in parallel.
void PatchSpans(Section* text, const std::vector<SpanPlan>& spans,
                const std::vector<uint64_t>& tramp_starts, ThreadPool* pool = nullptr);

class Rewriter {
 public:
  // The image must not already contain a trampoline section.
  explicit Rewriter(const BinaryImage& image);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  const Disassembly& disasm() const { return disasm_; }
  const CfgInfo& cfg() const { return cfg_; }

  // Applies all requests and returns the rewritten image. `trampoline_base`
  // places the new section (shared objects instrumented separately need
  // distinct, non-overlapping bases — §7.4). With `jobs > 1` the span
  // trampolines are emitted across a thread pool; the output is
  // byte-identical to `jobs == 1`.
  Result<BinaryImage> Apply(const std::vector<PatchRequest>& requests, RewriteStats* stats,
                            uint64_t trampoline_base = kTrampolineBase, unsigned jobs = 1);

 private:
  BinaryImage image_;
  Disassembly disasm_;
  CfgInfo cfg_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_RW_REWRITER_H_
