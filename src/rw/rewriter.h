// E9Patch-style trampoline-based static binary rewriting (paper §2.2).
//
// For each requested instrumentation point, the instruction at that address
// is overwritten with a 5-byte `jmp rel32` into a trampoline containing:
//
//     (1) the instrumentation payload (emitted by the caller),
//     (2) the displaced instruction(s), relocated, and
//     (3) a jump back to the instruction after the overwritten span.
//
// If the target instruction is shorter than 5 bytes, the jump "puns" over
// the following instruction(s); all overwritten instructions are relocated
// into the trampoline and the leftover bytes are filled with 1-byte ud2
// (like E9Patch's int3 filler). Punning is refused — and the site skipped,
// opportunistically — when a recovered jump target lands inside the span,
// or when a call would be displaced (its pushed return address must be
// emulated only for the first span slot).
//
// Relocation fixups: rel32 branches are re-anchored, rip-relative memory
// operands get their displacement adjusted, and displaced calls are
// emulated as push-return-address + jmp.
#ifndef REDFAT_SRC_RW_REWRITER_H_
#define REDFAT_SRC_RW_REWRITER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/asm/assembler.h"
#include "src/bin/image.h"
#include "src/rw/disasm.h"
#include "src/support/result.h"

namespace redfat {

// Emits payload code into the trampoline assembler. The payload must
// preserve all guest-visible state it does not own (the caller decides
// which registers/flags are dead via its own clobber analysis).
using PayloadEmitter = std::function<void(Assembler&)>;

struct PatchRequest {
  uint64_t addr = 0;
  PayloadEmitter emit_payload;
};

struct RewriteStats {
  size_t requested = 0;
  size_t applied = 0;                 // payload emitted (own jump or merged into a span)
  size_t skipped_target_conflict = 0; // recovered jump target inside the span
  size_t skipped_call_span = 0;       // span would displace a call mid-span
  size_t skipped_section_end = 0;     // not enough bytes before section end
  uint64_t trampoline_bytes = 0;
  size_t trampolines = 0;
};

class Rewriter {
 public:
  // The image must not already contain a trampoline section.
  explicit Rewriter(const BinaryImage& image);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  const Disassembly& disasm() const { return disasm_; }
  const CfgInfo& cfg() const { return cfg_; }

  // Applies all requests and returns the rewritten image. Requests must be
  // at unique instruction-boundary addresses inside the text section.
  // `trampoline_base` places the new section (shared objects instrumented
  // separately need distinct, non-overlapping bases — §7.4).
  Result<BinaryImage> Apply(const std::vector<PatchRequest>& requests, RewriteStats* stats,
                            uint64_t trampoline_base = kTrampolineBase);

 private:
  BinaryImage image_;
  Disassembly disasm_;
  CfgInfo cfg_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_RW_REWRITER_H_
