// Disassembly and conservative control-flow recovery for stripped binaries.
//
// The rewriter has no symbols or relocations to lean on, so basic-block
// recovery is heuristic and deliberately *over-approximates* jump targets
// (paper §6: an over-approximation only shrinks batches, never breaks
// correctness). Recovered targets come from:
//   * direct rel32 branch/call targets;
//   * any imm64 constant (mov $imm64) that lands inside the text section
//     (jump tables / function-pointer material);
//   * any aligned u64 word in data sections that lands inside text.
#ifndef REDFAT_SRC_RW_DISASM_H_
#define REDFAT_SRC_RW_DISASM_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/bin/image.h"
#include "src/isa/isa.h"
#include "src/support/result.h"

namespace redfat {

class ThreadPool;

struct DisasmInsn {
  uint64_t addr = 0;
  unsigned length = 0;
  Instruction insn;

  uint64_t end() const { return addr + length; }
};

struct Disassembly {
  uint64_t text_vaddr = 0;
  uint64_t text_end = 0;
  std::vector<DisasmInsn> insns;
  std::unordered_map<uint64_t, size_t> index_by_addr;

  bool InText(uint64_t addr) const { return addr >= text_vaddr && addr < text_end; }
  // Index of the instruction at `addr`, or SIZE_MAX.
  size_t IndexAt(uint64_t addr) const {
    auto it = index_by_addr.find(addr);
    return it == index_by_addr.end() ? SIZE_MAX : it->second;
  }
};

// Linear-sweep disassembly of the text section. With a pool, fixed-size
// address chunks are decoded speculatively in parallel and stitched back
// together with a deterministic serial cursor walk; the result (and any
// decode error) is byte-identical to the serial sweep.
Result<Disassembly> DisassembleText(const BinaryImage& image,
                                    ThreadPool* pool = nullptr);

struct CfgInfo {
  // Addresses that some (recovered, over-approximated) control transfer may
  // target. Instrumentation must not pun over these.
  std::unordered_set<uint64_t> jump_targets;
  // Basic-block id per instruction (parallel to Disassembly::insns).
  std::vector<uint32_t> block_id;
  uint32_t num_blocks = 0;
};

// With a pool, target collection runs over instruction ranges (set-union is
// order-insensitive) and block ids are assigned by a leader-count prefix sum;
// both are independent of the job count.
CfgInfo RecoverCfg(const Disassembly& dis, const BinaryImage& image,
                   ThreadPool* pool = nullptr);

}  // namespace redfat

#endif  // REDFAT_SRC_RW_DISASM_H_
