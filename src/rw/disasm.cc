#include "src/rw/disasm.h"

#include <algorithm>
#include <cstring>

#include "src/support/check.h"
#include "src/support/str.h"

namespace redfat {

Result<Disassembly> DisassembleText(const BinaryImage& image) {
  const Section* text = image.FindSection(Section::Kind::kText);
  if (text == nullptr) {
    return Error("disasm: image has no text section");
  }
  Disassembly dis;
  dis.text_vaddr = text->vaddr;
  dis.text_end = text->end_vaddr();
  size_t off = 0;
  while (off < text->bytes.size()) {
    Result<Decoded> d = Decode(text->bytes.data() + off, text->bytes.size() - off);
    if (!d.ok()) {
      return Error(StrFormat("disasm at 0x%llx: %s",
                             static_cast<unsigned long long>(text->vaddr + off),
                             d.error().c_str()));
    }
    DisasmInsn di;
    di.addr = text->vaddr + off;
    di.length = d.value().length;
    di.insn = d.value().insn;
    dis.index_by_addr.emplace(di.addr, dis.insns.size());
    dis.insns.push_back(di);
    off += di.length;
  }
  return dis;
}

CfgInfo RecoverCfg(const Disassembly& dis, const BinaryImage& image) {
  CfgInfo cfg;
  // (1) Direct branch/call targets and entry.
  cfg.jump_targets.insert(image.entry);
  for (const DisasmInsn& di : dis.insns) {
    if (HasRel32(di.insn.op)) {
      const uint64_t target = di.end() + static_cast<uint64_t>(di.insn.imm);
      if (dis.InText(target)) {
        cfg.jump_targets.insert(target);
      }
      if (di.insn.op == Op::kCall) {
        cfg.jump_targets.insert(di.end());  // return site
      }
    }
    if (di.insn.op == Op::kCallR) {
      cfg.jump_targets.insert(di.end());
    }
    // (2) Code-pointer constants: potential indirect targets.
    if (di.insn.op == Op::kMovRI && dis.InText(static_cast<uint64_t>(di.insn.imm))) {
      cfg.jump_targets.insert(static_cast<uint64_t>(di.insn.imm));
    }
  }
  // (3) Scan data sections for aligned words that look like code pointers.
  for (const Section& s : image.sections) {
    if (s.kind != Section::Kind::kData) {
      continue;
    }
    for (size_t off = 0; off + 8 <= s.bytes.size(); off += 8) {
      uint64_t w = 0;
      std::memcpy(&w, s.bytes.data() + off, 8);
      if (dis.InText(w)) {
        cfg.jump_targets.insert(w);
      }
    }
  }
  // Keep only targets that land on instruction boundaries; a "target" in the
  // middle of an instruction cannot be a real control-flow destination of
  // well-formed code, and treating it as one would forbid every patch.
  for (auto it = cfg.jump_targets.begin(); it != cfg.jump_targets.end();) {
    if (dis.InText(*it) && dis.IndexAt(*it) == SIZE_MAX) {
      it = cfg.jump_targets.erase(it);
    } else {
      ++it;
    }
  }

  // Basic blocks: leaders are jump targets and fallthroughs of terminators.
  cfg.block_id.assign(dis.insns.size(), 0);
  uint32_t block = 0;
  bool start_new = true;
  for (size_t i = 0; i < dis.insns.size(); ++i) {
    const DisasmInsn& di = dis.insns[i];
    if (start_new || cfg.jump_targets.count(di.addr) != 0) {
      ++block;
    }
    cfg.block_id[i] = block;
    start_new = IsControlFlow(di.insn.op);
  }
  cfg.num_blocks = block + 1;
  return cfg;
}

}  // namespace redfat
