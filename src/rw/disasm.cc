#include "src/rw/disasm.h"

#include <algorithm>
#include <cstring>

#include "src/support/check.h"
#include "src/support/parallel.h"
#include "src/support/str.h"

namespace redfat {
namespace {

// Fixed speculative-decode chunk size. The partition depends only on the
// text size — never on the job count — so the stitch (and therefore the
// final instruction list) is identical for every --jobs=N.
constexpr size_t kDisasmChunkBytes = 16 * 1024;

struct ChunkDecode {
  // Instructions decoded speculatively starting at the chunk boundary.
  // The chunk start may fall mid-instruction, in which case this list is
  // garbage until the decode re-synchronizes; the stitch only splices from
  // offsets it has independently reached.
  std::vector<DisasmInsn> insns;
  // First text offset not covered by `insns` (decode stops at the first
  // instruction *starting* at or past the chunk limit, or at a decode
  // failure).
  size_t end_off = 0;
};

Result<Disassembly> DecodeSerial(const Section& text, Disassembly dis) {
  size_t off = 0;
  while (off < text.bytes.size()) {
    Result<Decoded> d = Decode(text.bytes.data() + off, text.bytes.size() - off);
    if (!d.ok()) {
      return Error(StrFormat("disasm at 0x%llx: %s",
                             static_cast<unsigned long long>(text.vaddr + off),
                             d.error().c_str()));
    }
    DisasmInsn di;
    di.addr = text.vaddr + off;
    di.length = d.value().length;
    di.insn = d.value().insn;
    dis.index_by_addr.emplace(di.addr, dis.insns.size());
    dis.insns.push_back(di);
    off += di.length;
  }
  return dis;
}

}  // namespace

Result<Disassembly> DisassembleText(const BinaryImage& image, ThreadPool* pool) {
  const Section* text = image.FindSection(Section::Kind::kText);
  if (text == nullptr) {
    return Error("disasm: image has no text section");
  }
  Disassembly dis;
  dis.text_vaddr = text->vaddr;
  dis.text_end = text->end_vaddr();
  const std::vector<uint8_t>& bytes = text->bytes;
  const size_t size = bytes.size();
  const size_t num_chunks = (size + kDisasmChunkBytes - 1) / kDisasmChunkBytes;
  if (pool == nullptr || pool->jobs() <= 1 || num_chunks < 2) {
    return DecodeSerial(*text, std::move(dis));
  }

  // Phase 1 (parallel): decode every fixed-size chunk speculatively from its
  // boundary. Instructions may straddle chunk limits, so each decode sees
  // the full remaining byte count. A decode failure is not reported here:
  // the failing offset may be mid-instruction garbage the real instruction
  // stream never reaches.
  std::vector<ChunkDecode> chunks(num_chunks);
  pool->ParallelFor(num_chunks, [&](size_t c) {
    size_t off = c * kDisasmChunkBytes;
    const size_t limit = std::min(size, (c + 1) * kDisasmChunkBytes);
    ChunkDecode& cd = chunks[c];
    while (off < limit) {
      Result<Decoded> d = Decode(bytes.data() + off, size - off);
      if (!d.ok()) {
        break;
      }
      DisasmInsn di;
      di.addr = text->vaddr + off;
      di.length = d.value().length;
      di.insn = d.value().insn;
      cd.insns.push_back(di);
      off += di.length;
    }
    cd.end_off = off;
  });

  // Phase 2 (serial stitch): walk a cursor exactly as the serial sweep
  // would. Wherever the cursor lands on an offset the speculative decode
  // also reached, splice the rest of that chunk wholesale; otherwise decode
  // one instruction and retry. Decode failures reproduce the serial error
  // verbatim because the cursor follows the identical instruction chain.
  size_t total = 0;
  for (const ChunkDecode& cd : chunks) {
    total += cd.insns.size();
  }
  dis.insns.reserve(total);
  dis.index_by_addr.reserve(total);
  size_t off = 0;
  while (off < size) {
    ChunkDecode& cd = chunks[off / kDisasmChunkBytes];
    const uint64_t addr = text->vaddr + off;
    auto it = std::lower_bound(
        cd.insns.begin(), cd.insns.end(), addr,
        [](const DisasmInsn& di, uint64_t a) { return di.addr < a; });
    if (it != cd.insns.end() && it->addr == addr) {
      for (; it != cd.insns.end(); ++it) {
        dis.index_by_addr.emplace(it->addr, dis.insns.size());
        dis.insns.push_back(*it);
      }
      off = cd.end_off;
      continue;
    }
    // The speculative decode was out of sync here (or failed): take one
    // serial step and try to re-join at the next boundary.
    Result<Decoded> d = Decode(bytes.data() + off, size - off);
    if (!d.ok()) {
      return Error(StrFormat("disasm at 0x%llx: %s",
                             static_cast<unsigned long long>(addr),
                             d.error().c_str()));
    }
    DisasmInsn di;
    di.addr = addr;
    di.length = d.value().length;
    di.insn = d.value().insn;
    dis.index_by_addr.emplace(di.addr, dis.insns.size());
    dis.insns.push_back(di);
    off += di.length;
  }
  return dis;
}

namespace {

void CollectInsnTargets(const Disassembly& dis, size_t begin, size_t end,
                        std::vector<uint64_t>* out) {
  for (size_t i = begin; i < end; ++i) {
    const DisasmInsn& di = dis.insns[i];
    if (HasRel32(di.insn.op)) {
      const uint64_t target = di.end() + static_cast<uint64_t>(di.insn.imm);
      if (dis.InText(target)) {
        out->push_back(target);
      }
      if (di.insn.op == Op::kCall) {
        out->push_back(di.end());  // return site
      }
    }
    if (di.insn.op == Op::kCallR) {
      out->push_back(di.end());
    }
    // (2) Code-pointer constants: potential indirect targets.
    if (di.insn.op == Op::kMovRI &&
        dis.InText(static_cast<uint64_t>(di.insn.imm))) {
      out->push_back(static_cast<uint64_t>(di.insn.imm));
    }
  }
}

}  // namespace

CfgInfo RecoverCfg(const Disassembly& dis, const BinaryImage& image,
                   ThreadPool* pool) {
  CfgInfo cfg;
  const size_t n = dis.insns.size();
  const bool parallel = pool != nullptr && pool->jobs() > 1 && n >= 1024;
  // (1) Direct branch/call targets and entry. Set union is insensitive to
  // the order per-range target lists arrive in, so sharding is free.
  cfg.jump_targets.insert(image.entry);
  if (parallel) {
    const size_t ranges = std::min<size_t>(pool->jobs() * 4, n);
    std::vector<std::vector<uint64_t>> found(ranges);
    pool->ParallelFor(ranges, [&](size_t r) {
      CollectInsnTargets(dis, r * n / ranges, (r + 1) * n / ranges, &found[r]);
    });
    for (const std::vector<uint64_t>& targets : found) {
      cfg.jump_targets.insert(targets.begin(), targets.end());
    }
  } else {
    std::vector<uint64_t> targets;
    CollectInsnTargets(dis, 0, n, &targets);
    cfg.jump_targets.insert(targets.begin(), targets.end());
  }
  // (3) Scan data sections for aligned words that look like code pointers.
  for (const Section& s : image.sections) {
    if (s.kind != Section::Kind::kData) {
      continue;
    }
    for (size_t off = 0; off + 8 <= s.bytes.size(); off += 8) {
      uint64_t w = 0;
      std::memcpy(&w, s.bytes.data() + off, 8);
      if (dis.InText(w)) {
        cfg.jump_targets.insert(w);
      }
    }
  }
  // Keep only targets that land on instruction boundaries; a "target" in the
  // middle of an instruction cannot be a real control-flow destination of
  // well-formed code, and treating it as one would forbid every patch.
  for (auto it = cfg.jump_targets.begin(); it != cfg.jump_targets.end();) {
    if (dis.InText(*it) && dis.IndexAt(*it) == SIZE_MAX) {
      it = cfg.jump_targets.erase(it);
    } else {
      ++it;
    }
  }

  // Basic blocks: leaders are jump targets and fallthroughs of terminators.
  // block_id[i] is the number of leaders in [0, i] — a prefix sum — so the
  // parallel form (per-range leader flags + counts, serial offset pass,
  // per-range fill) is exactly the serial assignment for any job count.
  cfg.block_id.assign(n, 0);
  if (parallel) {
    const size_t ranges = std::min<size_t>(pool->jobs() * 4, n);
    std::vector<uint8_t> leader(n);
    std::vector<uint32_t> leaders_in_range(ranges, 0);
    pool->ParallelFor(ranges, [&](size_t r) {
      const size_t begin = r * n / ranges;
      const size_t end = (r + 1) * n / ranges;
      uint32_t count = 0;
      for (size_t i = begin; i < end; ++i) {
        const DisasmInsn& di = dis.insns[i];
        const bool is_leader = i == 0 ||
                               IsControlFlow(dis.insns[i - 1].insn.op) ||
                               cfg.jump_targets.count(di.addr) != 0;
        leader[i] = is_leader ? 1 : 0;
        count += is_leader ? 1u : 0u;
      }
      leaders_in_range[r] = count;
    });
    std::vector<uint32_t> base(ranges, 0);
    uint32_t running = 0;
    for (size_t r = 0; r < ranges; ++r) {
      base[r] = running;
      running += leaders_in_range[r];
    }
    pool->ParallelFor(ranges, [&](size_t r) {
      const size_t begin = r * n / ranges;
      const size_t end = (r + 1) * n / ranges;
      uint32_t block = base[r];
      for (size_t i = begin; i < end; ++i) {
        block += leader[i];
        cfg.block_id[i] = block;
      }
    });
    cfg.num_blocks = running + 1;
  } else {
    uint32_t block = 0;
    bool start_new = true;
    for (size_t i = 0; i < n; ++i) {
      const DisasmInsn& di = dis.insns[i];
      if (start_new || cfg.jump_targets.count(di.addr) != 0) {
        ++block;
      }
      cfg.block_id[i] = block;
      start_new = IsControlFlow(di.insn.op);
    }
    cfg.num_blocks = block + 1;
  }
  return cfg;
}

}  // namespace redfat
