#include "src/rw/liveness.h"

#include "src/support/check.h"
#include "src/support/parallel.h"

namespace redfat {

ClobberInfo ComputeClobbers(const Disassembly& dis, const CfgInfo& cfg, size_t index) {
  REDFAT_CHECK(index < dis.insns.size());
  ClobberInfo out;
  // First event wins: a register read before any write is live; a register
  // written first is dead at the instrumentation point (its old value is
  // never observed again). Unresolved registers are conservatively live.
  enum class State : uint8_t { kUnknown, kLive, kDead };
  State reg_state[kNumGprs] = {};
  State flags = State::kUnknown;
  const uint32_t block = cfg.block_id[index];
  std::vector<Reg> regs;
  for (size_t i = index; i < dis.insns.size() && cfg.block_id[i] == block; ++i) {
    const Instruction& in = dis.insns[i].insn;
    RegsRead(in, &regs);
    for (Reg r : regs) {
      State& s = reg_state[RegIndex(r)];
      if (s == State::kUnknown) {
        s = State::kLive;
      }
    }
    if (ReadsFlags(in.op) && flags == State::kUnknown) {
      flags = State::kLive;
    }
    RegsWritten(in, &regs);
    for (Reg r : regs) {
      State& s = reg_state[RegIndex(r)];
      if (s == State::kUnknown) {
        s = State::kDead;
      }
    }
    if (WritesFlags(in.op) && flags == State::kUnknown) {
      flags = State::kDead;
    }
    if (IsControlFlow(in.op)) {
      break;
    }
  }
  for (int r = 0; r < kNumGprs; ++r) {
    if (reg_state[r] == State::kDead) {
      out.dead_regs.push_back(static_cast<Reg>(r));
    }
  }
  out.flags_dead = flags == State::kDead;
  return out;
}

std::vector<ClobberInfo> ComputeClobbersMany(const Disassembly& dis, const CfgInfo& cfg,
                                             const std::vector<size_t>& indices,
                                             unsigned jobs) {
  std::vector<ClobberInfo> out(indices.size());
  ParallelFor(jobs, indices.size(),
              [&](size_t i) { out[i] = ComputeClobbers(dis, cfg, indices[i]); });
  return out;
}

std::vector<ClobberInfo> ComputeClobbersMany(const Disassembly& dis, const CfgInfo& cfg,
                                             const std::vector<size_t>& indices,
                                             ThreadPool* pool) {
  if (pool == nullptr) {
    return ComputeClobbersMany(dis, cfg, indices, 1u);
  }
  std::vector<ClobberInfo> out(indices.size());
  pool->ParallelFor(indices.size(),
                    [&](size_t i) { out[i] = ComputeClobbers(dis, cfg, indices[i]); });
  return out;
}

}  // namespace redfat
