#include "src/dbi/shadow_check.h"

#include "src/isa/abi.h"

namespace redfat {

uint64_t ShadowCheckObserver::OnInstruction(Vm& vm, uint64_t addr,
                                            const Instruction& insn) {
  // Instrumentation code: check bodies load redzone-state metadata by
  // design. Classifying those accesses would be pure false positives.
  if (vm.InTrampoline(addr)) {
    return 0;
  }
  uint64_t cycles = costs_.dispatch;
  if (IsControlFlow(insn.op)) {
    cycles += costs_.branch_extra;
  }
  if (IsMemAccess(insn.op)) {
    const uint64_t ea =
        ComputeEffectiveAddress(vm.cpu(), insn.mem, addr + EncodedLength(insn.op));
    const unsigned len = insn.mem.access_size();
    // One shadow byte per 8-byte granule; untouched shadow reads kOk.
    const uint64_t first = ea >> 3;
    const uint64_t last = (ea + (len == 0 ? 0 : len - 1)) >> 3;
    GuestShadow state = GuestShadow::kOk;
    for (uint64_t g = first; g <= last; ++g) {
      const auto s = static_cast<GuestShadow>(vm.memory().Read(kGuestShadowBase + g, 1));
      if (s != GuestShadow::kOk) {
        state = s;
        break;
      }
    }
    if (state == GuestShadow::kRedzone) {
      ++errors_;
      vm.ReportMemError(0, ErrorKind::kBounds, ea);
    } else if (state == GuestShadow::kFreed) {
      ++errors_;
      vm.ReportMemError(0, ErrorKind::kUaf, ea);
    }
    ++checks_;
    cycles += costs_.shadow_check;
  }
  return cycles;
}

}  // namespace redfat
