#include "src/dbi/memcheck.h"

#include "src/support/check.h"

namespace redfat {

AllocOutcome Memcheck::Malloc(Memory& mem, uint64_t size) {
  const uint64_t ptr = heap_.Alloc(mem, size);
  if (ptr == 0) {
    return AllocOutcome{0, heapcost::kLegacyMalloc};
  }
  shadow_.Mark(ptr - kRedzoneSize, kRedzoneSize, ShadowState::kRedzone);
  shadow_.Mark(ptr, size, ShadowState::kAllocated);
  shadow_.Mark(ptr + size, kRedzoneSize, ShadowState::kRedzone);
  sizes_[ptr] = size;
  return AllocOutcome{ptr, heapcost::kLegacyMalloc + costs_.alloc_extra};
}

FreeOutcome Memcheck::Free(Memory& mem, uint64_t ptr) {
  (void)mem;
  if (ptr == 0) {
    return FreeOutcome{heapcost::kLegacyFree};
  }
  auto it = sizes_.find(ptr);
  REDFAT_CHECK(it != sizes_.end());
  shadow_.Mark(ptr, it->second, ShadowState::kFree);
  sizes_.erase(it);
  quarantine_.push_back(ptr);
  if (quarantine_.size() > quarantine_blocks_) {
    heap_.Free(quarantine_.front());
    quarantine_.pop_front();
  }
  return FreeOutcome{heapcost::kLegacyFree + costs_.alloc_extra};
}

uint64_t Memcheck::OnInstruction(Vm& vm, uint64_t addr, const Instruction& insn) {
  uint64_t cycles = costs_.dispatch;
  if (IsControlFlow(insn.op)) {
    cycles += costs_.branch_extra;
  }
  if (IsMemAccess(insn.op)) {
    const uint64_t ea =
        ComputeEffectiveAddress(vm.cpu(), insn.mem, addr + EncodedLength(insn.op));
    const ShadowState state = shadow_.QueryRange(ea, insn.mem.access_size());
    if (state == ShadowState::kRedzone) {
      vm.ReportMemError(0, ErrorKind::kBounds, ea);
    } else if (state == ShadowState::kFree) {
      vm.ReportMemError(0, ErrorKind::kUaf, ea);
    }
    cycles += costs_.shadow_check;
  }
  return cycles;
}

RunOutcome RunMemcheck(const BinaryImage& image, const RunConfig& config,
                       MemcheckCostModel costs) {
  Vm vm(config.model);
  Memcheck memcheck(costs);
  vm.set_allocator(&memcheck);
  vm.set_observer(&memcheck);
  vm.set_policy(config.policy);
  vm.set_inputs(config.inputs);
  vm.set_rng_seed(config.rng_seed);
  vm.set_instruction_limit(config.instruction_limit);
  vm.set_engine(config.engine);
  if (config.metrics_epoch != 0 && config.on_epoch) {
    vm.set_epoch_hook(config.metrics_epoch, config.on_epoch);
  }
  vm.set_telemetry(config.telemetry);
  vm.set_trace(config.trace);
  vm.set_sampler(config.sampler);
  vm.set_heap_observer(config.forensics);
  vm.LoadImage(image);

  RunOutcome out;
  out.result = vm.Run();
  out.outputs = vm.outputs();
  out.errors = vm.mem_errors();
  out.counters = vm.counters();
  out.prof_counts = vm.prof_counts();
  out.touched_pages = vm.memory().TouchedPages();
  if (config.forensics != nullptr) {
    for (const MemErrorReport& e : out.errors) {
      out.forensic_reports.push_back(BuildForensicReport(
          e, *config.forensics, vm.memory(), nullptr, config.forensic_tier));
    }
  }
  return out;
}

}  // namespace redfat
