// The debug hardening tier's DBI layer (core/policy.h, --harden=debug):
// memcheck-grade shadow-state classification of every explicit memory
// access the static rewriter did NOT harden.
//
// The inline checks of a hardened binary only cover instrumentable sites;
// eliminated operands, rewrite-skipped sites, and (under the fast tier's
// planning) bare ambiguous sites execute unchecked. Under the debug tier
// the binary runs with RuntimeKind::kRedFatDebug — whose allocator mirrors
// every object's redzone/payload/freed state into the guest shadow map —
// and this observer classifies each access against that map, exactly like
// the Memcheck baseline but layered OVER the statically hardened binary:
// accesses inside trampoline/inline-check sections are skipped (their
// metadata loads legitimately touch redzone-state memory).
//
// Costs reuse the Memcheck model (dispatch + shadow-check per access,
// superblock chaining on control transfers): the debug tier is explicitly
// a DBI-priced configuration, not a production one.
#ifndef REDFAT_SRC_DBI_SHADOW_CHECK_H_
#define REDFAT_SRC_DBI_SHADOW_CHECK_H_

#include <cstdint>

#include "src/dbi/memcheck.h"
#include "src/vm/vm.h"

namespace redfat {

class ShadowCheckObserver : public ExecObserver {
 public:
  explicit ShadowCheckObserver(MemcheckCostModel costs = MemcheckCostModel{})
      : costs_(costs) {}

  uint64_t OnInstruction(Vm& vm, uint64_t addr, const Instruction& insn) override;

  uint64_t checks() const { return checks_; }
  uint64_t errors() const { return errors_; }

 private:
  MemcheckCostModel costs_;
  uint64_t checks_ = 0;
  uint64_t errors_ = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_DBI_SHADOW_CHECK_H_
