// A Valgrind-Memcheck-like baseline (paper §7.1, last column of Table 1).
//
// Heavyweight dynamic binary instrumentation over the *original* binary:
// every guest instruction pays a JIT/dispatch cost, and every explicit
// memory access is checked against redzone-only shadow memory. The
// allocator wraps each heap object with 16-byte redzones on both sides and
// tracks Allocated/Redzone/Free states in the shadow map, with freed blocks
// quarantined to catch use-after-free.
//
// Detection power matches Memcheck's: incremental overflows (into redzones)
// and use-after-free are caught; non-incremental overflows that skip over
// redzones into a neighboring allocation are NOT (Table 2, 0/480).
//
// The dispatch/shadow constants below are the only modeled (non-emergent)
// costs in the project; they are documented in EXPERIMENTS.md and exercised
// by the ablation benches.
#ifndef REDFAT_SRC_DBI_MEMCHECK_H_
#define REDFAT_SRC_DBI_MEMCHECK_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/core/harness.h"
#include "src/heap/legacy_heap.h"
#include "src/shadow/shadow_map.h"
#include "src/vm/allocator.h"
#include "src/vm/vm.h"

namespace redfat {

struct MemcheckCostModel {
  uint64_t dispatch = 10;      // per-instruction JIT dispatch/translation cost
  uint64_t shadow_check = 14;  // per-memory-access shadow lookup + compare
  // Valgrind translates and dispatches superblocks: every control transfer
  // pays a block-lookup/chaining cost, which is why branchy/call-heavy code
  // (perlbench, gobmk, povray) suffers far more than streaming code.
  uint64_t branch_extra = 55;
  uint64_t alloc_extra = 150;  // malloc/free interception + shadow marking
};

class Memcheck : public GuestAllocator, public ExecObserver {
 public:
  explicit Memcheck(MemcheckCostModel costs = MemcheckCostModel{},
                    unsigned quarantine_blocks = 256)
      : costs_(costs), quarantine_blocks_(quarantine_blocks), heap_(kRedzoneSize) {}

  // GuestAllocator
  AllocOutcome Malloc(Memory& mem, uint64_t size) override;
  FreeOutcome Free(Memory& mem, uint64_t ptr) override;
  const char* name() const override { return "memcheck"; }

  // ExecObserver
  uint64_t OnInstruction(Vm& vm, uint64_t addr, const Instruction& insn) override;

  const ShadowMap& shadow() const { return shadow_; }

 private:
  MemcheckCostModel costs_;
  unsigned quarantine_blocks_;
  LegacyHeap heap_;
  ShadowMap shadow_;
  std::unordered_map<uint64_t, uint64_t> sizes_;  // payload ptr -> user size
  std::deque<uint64_t> quarantine_;
};

// Runs the (uninstrumented) image under the Memcheck baseline.
RunOutcome RunMemcheck(const BinaryImage& image, const RunConfig& config,
                       MemcheckCostModel costs = MemcheckCostModel{});

}  // namespace redfat

#endif  // REDFAT_SRC_DBI_MEMCHECK_H_
