#include "src/vm/profiler.h"

#include <tuple>

#include "src/support/str.h"
#include "src/support/trace.h"

namespace redfat {

const char* ProfileRegionName(SampleProfiler::Region r) {
  switch (r) {
    case SampleProfiler::Region::kUser: return "user";
    case SampleProfiler::Region::kTramp: return "tramp";
    case SampleProfiler::Region::kInline: return "inline";
  }
  return "?";
}

bool SampleProfiler::Key::operator<(const Key& o) const {
  return std::tie(image, region, have_site, site, pc_bucket) <
         std::tie(o.image, o.region, o.have_site, o.site, o.pc_bucket);
}

void SampleProfiler::TakeSample(uint64_t pc, uint64_t instructions, uint64_t cycles,
                                uint32_t image, Region region, bool have_site,
                                uint32_t site) {
  Key key;
  key.image = image;
  key.region = region;
  key.have_site = have_site;
  if (have_site) {
    key.site = site;
  } else {
    key.pc_bucket = pc & ~(kUserPcBucket - 1);
  }
  ++counts_[key];
  ++samples_;
  if (trace_samples_.size() < kMaxTraceSamples) {
    trace_samples_.push_back(Sample{pc, instructions, cycles, key});
  }
}

void SampleProfiler::SetImageName(uint32_t image, const std::string& name) {
  if (!name.empty()) {
    image_names_[image] = name;
  }
}

std::string SampleProfiler::ImageLabel(uint32_t image) const {
  const auto it = image_names_.find(image);
  return it != image_names_.end() ? it->second
                                  : StrFormat("img#%u", image);
}

std::string SampleProfiler::ToFolded() const {
  std::string out;
  for (const auto& [key, count] : counts_) {
    const std::string frame =
        key.have_site
            ? StrFormat("site#%u", key.site)
            : StrFormat("0x%llx", static_cast<unsigned long long>(key.pc_bucket));
    out += StrFormat("%s;%s;%s %llu\n", ImageLabel(key.image).c_str(),
                     ProfileRegionName(key.region), frame.c_str(),
                     static_cast<unsigned long long>(count));
  }
  return out;
}

void SampleProfiler::AppendTrace(TraceWriter& trace) const {
  for (const Sample& s : trace_samples_) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg{"pc", s.pc});
    args.push_back(TraceArg{"instructions", s.instructions});
    if (s.key.have_site) {
      args.push_back(TraceArg{"site", s.key.site});
    }
    if (s.key.image != 0) {
      args.push_back(TraceArg{"image", s.key.image});
    }
    trace.Instant(StrFormat("sample.%s", ProfileRegionName(s.key.region)), "sample",
                  1, 1, static_cast<double>(s.cycles), args);
  }
}

TelemetrySnapshot SampleProfiler::SynthesizeMetrics() const {
  TelemetrySnapshot snap;
  std::map<uint32_t, SiteTelemetry> sites;
  uint64_t unattributed = 0;
  for (const auto& [key, count] : counts_) {
    if (!key.have_site) {
      unattributed += count;
      continue;
    }
    // Mirror Vm::SiteKeyFor so the synthesized profile joins the same way a
    // counted one would in multi-image runs.
    const bool keyed = key.image != 0 && key.image < kMaxKeyedImages &&
                       key.site <= kMaxKeyedSite;
    const uint32_t id = keyed ? ImageSiteKey(key.image, key.site) : key.site;
    SiteTelemetry& st = sites[id];
    st.site = id;
    st.counts[static_cast<size_t>(SiteEvent::kChecks)] += count;
    const SiteEvent cyc = key.region == Region::kInline ? SiteEvent::kInlineCycles
                                                        : SiteEvent::kTrampCycles;
    st.counts[static_cast<size_t>(cyc)] += count * period_;
  }
  snap.sites.reserve(sites.size());
  for (auto& [id, st] : sites) {
    snap.sites.push_back(st);
  }
  snap.counters["profile.period"] = period_;
  snap.counters["profile.samples"] = samples_;
  if (unattributed != 0) {
    snap.counters["profile.samples_unattributed"] = unattributed;
  }
  return snap;
}

}  // namespace redfat
