#include "src/vm/memory.h"

#include "src/support/check.h"

namespace redfat {

uint64_t Memory::Read(uint64_t addr, unsigned size) const {
  REDFAT_CHECK(size == 1 || size == 2 || size == 4 || size == 8);
  uint64_t v = 0;
  if ((addr & (kPageSize - 1)) + size <= kPageSize) {
    const Page* p = FindPage(addr >> kPageShift);
    if (p != nullptr) {
      std::memcpy(&v, p->data() + (addr & (kPageSize - 1)), size);
    }
    return v;
  }
  // Straddles a page boundary: byte-wise.
  for (unsigned i = 0; i < size; ++i) {
    const uint64_t a = addr + i;
    const Page* p = FindPage(a >> kPageShift);
    const uint8_t b = p == nullptr ? 0 : (*p)[a & (kPageSize - 1)];
    v |= static_cast<uint64_t>(b) << (8 * i);
  }
  return v;
}

void Memory::Write(uint64_t addr, uint64_t value, unsigned size) {
  REDFAT_CHECK(size == 1 || size == 2 || size == 4 || size == 8);
  if ((addr & (kPageSize - 1)) + size <= kPageSize) {
    Page* p = TouchPage(addr >> kPageShift);
    std::memcpy(p->data() + (addr & (kPageSize - 1)), &value, size);
    return;
  }
  for (unsigned i = 0; i < size; ++i) {
    const uint64_t a = addr + i;
    Page* p = TouchPage(a >> kPageShift);
    (*p)[a & (kPageSize - 1)] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void Memory::ReadBytes(uint64_t addr, uint8_t* out, size_t n) const {
  size_t done = 0;
  while (done < n) {
    const uint64_t a = addr + done;
    const uint64_t in_page = a & (kPageSize - 1);
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(kPageSize - in_page, n - done));
    const Page* p = FindPage(a >> kPageShift);
    if (p == nullptr) {
      std::memset(out + done, 0, chunk);
    } else {
      std::memcpy(out + done, p->data() + in_page, chunk);
    }
    done += chunk;
  }
}

void Memory::WriteBytes(uint64_t addr, const uint8_t* in, size_t n) {
  size_t done = 0;
  while (done < n) {
    const uint64_t a = addr + done;
    const uint64_t in_page = a & (kPageSize - 1);
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(kPageSize - in_page, n - done));
    Page* p = TouchPage(a >> kPageShift);
    std::memcpy(p->data() + in_page, in + done, chunk);
    done += chunk;
  }
}

void Memory::Fill(uint64_t addr, uint8_t value, uint64_t n) {
  uint64_t done = 0;
  while (done < n) {
    const uint64_t a = addr + done;
    const uint64_t in_page = a & (kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(kPageSize - in_page, n - done);
    // Zero-filling an absent page is a no-op: untouched memory already reads
    // as 0, so a guest memset(p, 0, n) over a lazily-mapped region must not
    // materialize every page it sweeps.
    if (value == 0 && FindPage(a >> kPageShift) == nullptr) {
      done += chunk;
      continue;
    }
    Page* p = TouchPage(a >> kPageShift);
    std::memset(p->data() + in_page, value, chunk);
    done += chunk;
  }
}

}  // namespace redfat
