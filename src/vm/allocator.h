// Guest allocator binding.
//
// Guest programs call malloc/free through HostFn::kMalloc / HostFn::kFree.
// Which implementation services the call is a property of the VM runtime,
// exactly like swapping the allocator via LD_PRELOAD in the paper: the
// uninstrumented baseline binds a glibc-like allocator, RedFat-hardened runs
// bind the redzone/low-fat wrapper (libredfat), and the Memcheck-like
// baseline binds its own redzone+shadow allocator.
#ifndef REDFAT_SRC_VM_ALLOCATOR_H_
#define REDFAT_SRC_VM_ALLOCATOR_H_

#include <cstdint>

#include "src/vm/memory.h"

namespace redfat {

struct AllocOutcome {
  uint64_t ptr = 0;     // 0 on failure (like malloc returning NULL)
  uint64_t cycles = 0;  // cost charged to the guest for the call
};

class GuestAllocator {
 public:
  virtual ~GuestAllocator() = default;

  virtual AllocOutcome Malloc(Memory& mem, uint64_t size) = 0;
  // Returns cycles charged. ptr == 0 is a no-op (free(NULL)).
  virtual uint64_t Free(Memory& mem, uint64_t ptr) = 0;

  virtual const char* name() const = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_VM_ALLOCATOR_H_
