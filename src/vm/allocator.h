// Guest allocator binding.
//
// Guest programs call malloc/free through HostFn::kMalloc / HostFn::kFree.
// Which implementation services the call is a property of the VM runtime,
// exactly like swapping the allocator via LD_PRELOAD in the paper: the
// uninstrumented baseline binds a glibc-like allocator, RedFat-hardened runs
// bind the redzone/low-fat wrapper (libredfat), and the Memcheck-like
// baseline binds its own redzone+shadow allocator.
#ifndef REDFAT_SRC_VM_ALLOCATOR_H_
#define REDFAT_SRC_VM_ALLOCATOR_H_

#include <cstdint>

#include "src/isa/abi.h"
#include "src/vm/memory.h"

namespace redfat {

struct AllocOutcome {
  uint64_t ptr = 0;     // 0 on failure (like malloc returning NULL)
  uint64_t cycles = 0;  // cost charged to the guest for the call
  // The allocator detected tampering with its own metadata while servicing
  // the call (e.g. a forged freelist link). The allocation itself still
  // succeeded where possible; the VM reports the error.
  bool corrupted = false;
  ErrorKind corrupt_kind = ErrorKind::kFreelistCorruption;
  uint64_t corrupt_addr = 0;  // guest address of the tampered word
};

struct FreeOutcome {
  uint64_t cycles = 0;
  bool corrupted = false;  // invalid/overlapping free or tampered chain
  ErrorKind corrupt_kind = ErrorKind::kFreelistCorruption;
  uint64_t corrupt_addr = 0;
};

// Result of pre-checking a guest memcpy/memset range against allocator
// metadata (the guard-memcpy rheap feature). Allocators that do not
// implement guarding return the default: zero cost, no violation.
struct GuardOutcome {
  uint64_t cycles = 0;
  bool violation = false;
  ErrorKind kind = ErrorKind::kBounds;
  uint64_t addr = 0;  // first faulting guest address
};

class GuestAllocator {
 public:
  virtual ~GuestAllocator() = default;

  virtual AllocOutcome Malloc(Memory& mem, uint64_t size) = 0;
  // ptr == 0 is a no-op (free(NULL)).
  virtual FreeOutcome Free(Memory& mem, uint64_t ptr) = 0;

  // Pre-checks [addr, addr+len) before a bulk guest memory operation.
  // Default: no guarding.
  virtual GuardOutcome GuardRange(Memory& mem, uint64_t addr, uint64_t len) {
    (void)mem;
    (void)addr;
    (void)len;
    return GuardOutcome{};
  }

  virtual const char* name() const = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_VM_ALLOCATOR_H_
