// The rvm virtual machine: executes rfi code with deterministic cycle
// accounting.
//
// Cycles are the project's performance currency: every slowdown factor in
// the reproduced tables is a ratio of cycle counts. The cycle model is a
// single fixed cost table (CycleModel) applied uniformly to baseline and
// instrumented runs, so overheads are *emergent* from the extra instructions
// the instrumentation executes, not assumed.
#ifndef REDFAT_SRC_VM_VM_H_
#define REDFAT_SRC_VM_VM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bin/image.h"
#include "src/isa/abi.h"
#include "src/isa/isa.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"
#include "src/vm/allocator.h"
#include "src/vm/memory.h"

namespace redfat {

class HistogramCell;
class SampleProfiler;
class TelemetryRegistry;
class TelemetryShard;
class TraceWriter;

struct Flags {
  bool zf = false;
  bool sf = false;
  bool cf = false;
  bool of = false;

  uint64_t Pack() const {
    return (zf ? 1u : 0u) | (sf ? 2u : 0u) | (cf ? 4u : 0u) | (of ? 8u : 0u);
  }
  void Unpack(uint64_t v) {
    zf = v & 1;
    sf = v & 2;
    cf = v & 4;
    of = v & 8;
  }
};

struct CpuState {
  uint64_t regs[kNumGprs] = {};
  uint64_t rip = 0;
  Flags flags;

  uint64_t Get(Reg r) const { return regs[RegIndex(r)]; }
  void Set(Reg r, uint64_t v) { regs[RegIndex(r)] = v; }
};

// The address a memory operand resolves to. `next_rip` anchors rip-relative
// operands (address of the following instruction, as on x86_64).
inline uint64_t ComputeEffectiveAddress(const CpuState& cpu, const MemOperand& mem,
                                        uint64_t next_rip) {
  uint64_t addr = static_cast<uint64_t>(static_cast<int64_t>(mem.disp));
  if (mem.base == Reg::kRip) {
    addr += next_rip;
  } else if (mem.has_base()) {
    addr += cpu.Get(mem.base);
  }
  if (mem.has_index()) {
    addr += cpu.Get(mem.index) << mem.scale_log2;
  }
  return addr;
}

// Deterministic per-operation cycle costs. One table for every run.
struct CycleModel {
  uint64_t basic = 1;         // ALU / mov / lea / nop
  uint64_t mem = 3;           // explicit load/store
  uint64_t mul = 3;           // imul / mulh
  uint64_t branch = 1;        // jmp / jcc (taken or not)
  uint64_t call_ret = 2;      // call / ret / indirect jumps
  uint64_t push_pop = 2;      // push/pop/pushf/popf
  uint64_t hostcall_base = 30;  // fixed cost of crossing the libc boundary
  uint64_t membyte_per8 = 1;  // memset/memcpy marginal cost per 8 bytes
};

// How Vm::Run dispatches guest instructions.
//
//   * kStep  — the reference interpreter: per-instruction fetch through an
//              address-keyed decode cache (an unordered_map lookup each
//              instruction).
//   * kBlock — the superblock engine: straight-line decoded runs (terminated
//              at any control transfer, hostcall or trap) stored contiguously
//              in a direct-mapped, entry-address-keyed code cache, so the
//              steady state executes Exec[] arrays with zero map lookups and
//              per-block (not per-instruction) trampoline-range
//              classification.
//
// The two engines are bit-identical by contract: instructions, cycles,
// explicit reads/writes, telemetry counters, trace slices, mem-error reports
// and prof counts all match exactly for any program (asserted by
// tests/vm_engine_test.cc). kStep stays selectable for differential testing.
enum class VmEngine { kStep, kBlock };

enum class HaltReason {
  kExit,          // guest called exit()
  kHlt,           // executed hlt
  kFault,         // decode fault / ud2 / rip into unmapped memory
  kInstrLimit,    // exceeded the configured instruction budget
  kMemErrorAbort, // instrumentation reported an error under Policy::kHarden
  kAssertFail,    // guest self-check failed (workload bug, not a detection)
};

// What to do when instrumentation reports a memory error (paper §4.2: the
// error() function aborts for hardening or logs for bug finding).
enum class Policy { kHarden, kLog };

struct MemErrorReport {
  uint32_t site = 0;
  ErrorKind kind = ErrorKind::kBounds;
  uint64_t rip = 0;
  uint64_t instruction_index = 0;
  // Faulting effective address, when the reporter could compute one. Trap
  // payloads carry only (site, kind), so trap-raised reports have no address;
  // DBI observers and the VM's own double-free interception do.
  uint64_t addr = 0;
  bool has_addr = false;
};

struct RunResult {
  HaltReason reason = HaltReason::kFault;
  uint64_t exit_status = 0;
  std::string fault_message;
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  // Explicit memory-operand accesses (load/store/storei) — the population
  // RedFat instruments. Stack push/pop/call traffic is excluded, as in the
  // paper's notion of "memory operands".
  uint64_t explicit_reads = 0;
  uint64_t explicit_writes = 0;
};

class Vm;

// Hook for dynamic-binary-instrumentation style baselines (Memcheck): runs
// before each instruction and returns extra cycles to charge.
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  virtual uint64_t OnInstruction(Vm& vm, uint64_t addr, const Instruction& insn) = 0;
};

// Hook for allocation-provenance tracking (implemented by ForensicRing in
// src/heap/forensics.h): the VM reports every guest malloc/free when an
// observer is attached, and consults it to classify double frees and to
// measure how far a faulting address landed from tracked heap objects.
// Attaching one never changes guest-visible behaviour or modeled cycles on
// error-free runs.
class HeapObserver {
 public:
  virtual ~HeapObserver() = default;
  virtual void OnAlloc(uint64_t ptr, uint64_t size, uint64_t pc,
                       uint64_t instruction, uint64_t cycles, uint64_t epoch) = 0;
  virtual void OnFree(uint64_t ptr, uint64_t pc, uint64_t instruction,
                      uint64_t cycles, uint64_t epoch) = 0;
  // True when `ptr` is the exact base of an object that was freed and not
  // since reallocated — the double-free witness.
  virtual bool WasFreed(uint64_t ptr) const = 0;
  // Distance in bytes from `addr` to the nearest tracked payload (0 = inside
  // one). Returns false when nothing is tracked yet.
  virtual bool DistanceTo(uint64_t addr, uint64_t* distance) const = 0;
};

class Vm {
 public:
  explicit Vm(CycleModel model = CycleModel{}) : model_(model) {}

  // Maps all image sections and the stack; sets rip/rsp. Does not clear
  // profiling/error state (call ResetRunState for that).
  void LoadImage(const BinaryImage& image);

  void set_allocator(GuestAllocator* a) { allocator_ = a; }
  void set_observer(ExecObserver* o) { observer_ = o; }
  void set_policy(Policy p) { policy_ = p; }
  void set_inputs(std::vector<uint64_t> inputs) {
    inputs_ = std::move(inputs);
    input_pos_ = 0;
  }
  void set_rng_seed(uint64_t seed) { rng_ = Rng(seed); }
  void set_instruction_limit(uint64_t limit) { instruction_limit_ = limit; }
  void set_engine(VmEngine e) { engine_ = e; }
  VmEngine engine() const { return engine_; }

  // --- block-engine dispatch knobs -----------------------------------------
  // Direct superblock chaining (default on): a block's exit patches a cached
  // successor pointer, so steady-state control transfers block -> block
  // without a dispatcher round-trip. Guest-visible results are bit-identical
  // with chaining on or off; observer-attached runs transparently fall back
  // to unchained dispatch so the observer keeps firing per instruction.
  void set_chaining(bool on) { chain_ = on; }
  bool chaining() const { return chain_; }
  // Specialized opcode handlers (default on): decode-time classification of
  // the hot opcode+operand shapes into a flat Spec form executed by a tight
  // dedicated loop instead of the generic decode-result interpreter.
  void set_specialize(bool on) { spec_ = on; }
  bool specialize() const { return spec_; }
  // Code-cache capacity in superblock entries; must be a power of two.
  // Resets the cache (decoded blocks and chain links are rebuilt on demand).
  void set_code_cache_size(size_t entries);
  size_t code_cache_size() const { return block_cache_size_; }

  // Host-side dispatch-layer statistics. These describe the engine, not the
  // guest: they are deliberately NOT part of the bit-identity contract (the
  // stepper has no chains to count) and are never written into an attached
  // TelemetryRegistry. rfrun --report surfaces them as vm.* counters.
  struct DispatchStats {
    uint64_t blocks_built = 0;        // superblock decodes (cold path)
    uint64_t code_cache_evictions = 0;  // direct-mapped collision rebuilds
    uint64_t block_chains = 0;        // block->block transfers via chain link
    uint64_t chain_exits = 0;         // chained execution re-entered dispatcher
    uint64_t links_patched = 0;       // successor links installed
    uint64_t traces_formed = 0;       // hot chains promoted to traces
    uint64_t trace_runs = 0;          // whole-trace executions
    uint64_t tlb_hits = 0;            // memory-TLB probes, all access paths
    uint64_t tlb_misses = 0;
    HistogramData trace_len;          // blocks per formed trace
  };
  DispatchStats dispatch_stats() const {
    DispatchStats d = dispatch_;
    d.tlb_hits = memory_.tlb_hits();
    d.tlb_misses = memory_.tlb_misses();
    return d;
  }

  // Fires `hook` every `every` executed guest instructions (at the exact
  // instruction boundary, identically under both engines), e.g. to cut
  // periodic telemetry snapshots. The hook runs on the VM thread between
  // instructions; it must not mutate guest state and charges no cycles.
  // every == 0 disables.
  void set_epoch_hook(uint64_t every, std::function<void()> hook) {
    epoch_every_ = every;
    epoch_hook_ = std::move(hook);
    epoch_next_ = instructions_ + every;
  }

  // Optional observability sinks; null (the default) disables the
  // corresponding tracking entirely. Neither affects modeled cycles — an
  // instrumented run executes the exact same guest work with or without
  // telemetry attached.
  void set_telemetry(TelemetryRegistry* t);
  void set_trace(TraceWriter* t) { trace_ = t; }
  // Interval sampling: one TakeSample call every sampler->period() executed
  // guest instructions, at the exact boundary under either engine. Charges
  // no cycles; null detaches.
  void set_sampler(SampleProfiler* s);
  // Allocation provenance sink + double-free detector; null detaches.
  void set_heap_observer(HeapObserver* o) { heap_obs_ = o; }
  // Optional keyed-site-id -> original-instruction-address map (see
  // telemetry.h ImageSiteKey). When set, trampoline/mem_error trace events
  // carry a `site_addr` arg linking the slice back to the disassembly.
  void set_site_addrs(const std::unordered_map<uint32_t, uint64_t>* m) {
    site_addrs_ = m;
  }

  RunResult Run();

  // --- state inspection ----------------------------------------------------
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  const std::vector<uint64_t>& outputs() const { return outputs_; }
  const std::vector<MemErrorReport>& mem_errors() const { return mem_errors_; }
  const std::unordered_map<uint32_t, uint64_t>& counters() const { return counters_; }
  // Profiling events per site: {passes, fails}.
  struct ProfCounts {
    uint64_t passes = 0;
    uint64_t fails = 0;
  };
  const std::unordered_map<uint32_t, ProfCounts>& prof_counts() const { return prof_counts_; }
  const CycleModel& cycle_model() const { return model_; }
  // High-water mark of tracked live heap bytes (0 unless a heap histogram
  // sink or HeapObserver was attached for the whole run).
  uint64_t live_bytes_peak() const { return live_bytes_peak_; }

  // Reports a memory error on behalf of instrumentation (used both by kTrap
  // handling and by DBI observers). Returns true if the run must abort.
  // The three-argument form attaches the faulting effective address when the
  // caller could compute it (DBI observers can; trap payloads cannot).
  bool ReportMemError(uint32_t site, ErrorKind kind);
  bool ReportMemError(uint32_t site, ErrorKind kind, uint64_t addr);

  // Charged by observers/allocators for modeled work.
  void AddCycles(uint64_t c) { cycles_ += c; }

  // Is `addr` inside any loaded image's trampoline/inline-check section?
  // Public so DBI observers can skip instrumentation code (whose metadata
  // loads legitimately touch redzone-state memory).
  bool InTrampoline(uint64_t addr) const;

 private:
  struct TrampRange;

  // Decode-time specialization: the hottest opcode+operand shapes are
  // classified once per superblock build into a flat form that a dedicated
  // executor runs without re-inspecting the Instruction — register numbers
  // pre-indexed, rip-relative displacements folded to absolute (the anchor
  // next_rip is static per decoded instruction), direct branch targets
  // precomputed. kSGeneric routes everything else (hostcalls, traps, flag
  // stack ops, faulting opcodes) through the reference ExecuteOne, which is
  // also the bit-identity oracle for every specialized handler.
  enum SpecOp : uint8_t {
    kSGeneric = 0,
    kSNop,
    kSMovRI, kSMovRR, kSLea,
    kSLoad, kSStoreR, kSStoreI,
    kSAddRR, kSAddRI, kSSubRR, kSSubRI,
    kSAndRR, kSAndRI, kSOrRR, kSOrRI, kSXorRR, kSXorRI,
    kSShlRI, kSShrRI, kSSarRI,
    kSImulRR, kSImulRI, kSMulhRR,
    kSCmpRR, kSCmpRI, kSTestRR,
    kSCount,
    // cmp/test+jcc macro-op fusion: the compare executes its own semantics
    // AND the following Jcc in one step (two guest instructions). Only ever
    // the last two entries of a block (Jcc terminates it); when the
    // instruction budget can't cover both, the compare executes unfused.
    kSCmpRRJcc, kSCmpRIJcc, kSTestRRJcc,
    // Block terminators with precomputed (kSJmp/kSJcc/kSCall) targets.
    kSJmp, kSJcc, kSJmpR, kSCall, kSCallR, kSRet,
    kSPush, kSPop,
  };
  struct Spec {
    uint8_t op = kSGeneric;  // SpecOp
    uint8_t r0 = 0;          // pre-indexed GPR operands
    uint8_t r1 = 0;
    uint8_t base = 0xff;     // memory base GPR, 0xff = none/folded
    uint8_t idx = 0xff;      // memory index GPR, 0xff = none
    uint8_t scale = 0;       // index scale_log2
    uint8_t size = 8;        // memory access size in bytes
    uint8_t cond = 0;        // Cond for kSJcc and the fused forms
    int64_t imm = 0;         // sign-extended immediate / imm64 / shift count
    int64_t disp = 0;        // displacement; absolute when rip-rel was folded
    uint64_t target = 0;     // precomputed taken target (direct transfers)
    uint64_t next = 0;       // static fall-through address (insn end)
  };

  struct Exec {
    Instruction insn;
    unsigned length = 0;
    Spec spec;
  };

  // A superblock: decoded straight-line instruction run starting at `entry`.
  // Blocks end at the first control transfer / hostcall / trap / hlt (that
  // terminator is the block's last instruction), at a decode failure (the
  // undecodable instruction is NOT part of the block — re-dispatching at its
  // address reproduces the step engine's fault), at kMaxBlockInsns, and at
  // any trampoline/inline-region boundary, so one range classification holds
  // for the whole block.
  //
  // succ[] are the chain links (direct-linking a la DynamoRIO): [0] = the
  // fall-through/untaken successor, [1] = the taken/indirect-target successor
  // (a monomorphic inline cache for indirect transfers). Links are hints, not
  // truth: a link is followed only after validating `succ->entry` against the
  // actual next rip and `succ->range` against this block's range, so stale
  // links left behind by collision eviction or a rebuilt slot self-invalidate
  // without predecessor bookkeeping.
  struct Block {
    uint64_t entry = ~uint64_t{0};  // tag; ~0 = empty slot
    std::vector<Exec> execs;
    const TrampRange* range = nullptr;  // classification at entry (null = user code)
    uint64_t fall_rip = 0;          // address one past the last instruction
    Block* succ[2] = {nullptr, nullptr};
    uint32_t hits = 0;              // dispatcher entries; drives trace formation
    int32_t trace = -1;             // index into traces_ once promoted
  };
  static constexpr size_t kBlockCacheSize = 4096;  // direct-mapped entries
  static constexpr size_t kMaxBlockInsns = 128;

  // A trace: the concatenation of a hot chain's blocks into one straight-line
  // Exec run with interior guards. Owns copies of the member blocks' execs,
  // so collision eviction of a member block can't tear a live trace; segment
  // i must be entered at seg_entry[i] (the guard) or execution falls back to
  // the dispatcher with rip intact.
  struct Trace {
    uint64_t entry = 0;
    const TrampRange* range = nullptr;  // every segment shares it
    std::vector<Exec> execs;
    std::vector<uint32_t> seg_end;     // one past each segment's last exec
    std::vector<uint64_t> seg_entry;   // expected entry rip per segment
    std::vector<bool> seg_last_cf;     // segment ends with a control transfer
  };
  static constexpr uint32_t kTraceThreshold = 64;  // dispatches before recording
  static constexpr size_t kMaxTraceSegments = 16;
  static constexpr size_t kMaxTraceInsns = 512;
  static constexpr size_t kMaxTraces = 256;

  const Exec* FetchDecode(uint64_t addr, std::string* fault);
  // Returns the (possibly rebuilt) superblock entered at `addr`, or null on
  // an immediate decode fault (same message as FetchDecode's).
  Block* FetchBlock(uint64_t addr, std::string* fault);
  // Fills ex->spec from ex->insn as decoded at address `addr`.
  void BuildSpec(Exec* ex, uint64_t addr);
  void RunStepLoop(RunResult* res);
  void RunBlockLoop(RunResult* res);
  // Executes up to `budget` guest instructions from execs[0..count) through
  // the specialized handlers. Returns instructions executed (== execs
  // consumed, counting a fused pair as two of each). On return cpu_.rip is
  // materialized to the next instruction to execute.
  size_t ExecSpecs(Exec* execs, size_t count, size_t budget,
                   std::string* fault, bool* faulted);
  // Runs the trace (cpu_.rip == t.entry), looping while it closes on itself.
  // Returns false on a fault (message in *fault). Respects instruction/
  // sampler/epoch boundaries exactly, exiting mid-trace when one lands
  // inside a segment.
  bool ExecTrace(Trace& t, bool track_sb, std::string* fault);
  void BeginTraceRecording(Block* head);
  // Appends a fully-executed block to the in-progress recording; finishes
  // (bake or discard) when a stop condition hits. `next_rip` is where
  // execution goes after the block.
  void RecordTraceBlock(const Block& b, uint64_t next_rip);
  void FinishTraceRecording(bool bake);
  // Ordinal of the image whose trampoline section contains `addr`, or -1.
  int TrampImageAt(uint64_t addr) const;
  // The trampoline/inline-check range containing `addr`, or null.
  const TrampRange* TrampRangeAt(uint64_t addr) const;
  // Telemetry key for `site` in the current trampoline's image: plain in
  // single-image runs (back-compat), (image, site)-packed in multi-image
  // runs so per-library counters stay unambiguous (§7.4).
  uint32_t SiteKeyFor(uint32_t site) const;
  void OnCountSite(uint32_t site);       // telemetry bookkeeping for Op::kCount
  void FlushTrampolineVisit();           // close the current trampoline slice
  void TakeSampleNow();                  // sampler_ fires at this boundary
  // --metrics-epoch ordinal of the current instant (0 when epochs are off).
  uint64_t CurrentEpoch() const {
    return epoch_every_ != 0 ? instructions_ / epoch_every_ : 0;
  }
  bool ReportMemErrorImpl(uint32_t site, ErrorKind kind, uint64_t addr,
                          bool has_addr);
  uint64_t EffectiveAddress(const MemOperand& mem, uint64_t next_rip) const;
  void SetFlagsLogic(uint64_t result);
  bool EvalCond(Cond c) const;
  // Returns false if the run should halt; fills halt info.
  bool ExecuteOne(const Exec& ex, std::string* fault);
  bool DoHostCall(HostFn fn, std::string* fault);

  CycleModel model_;
  Memory memory_;
  CpuState cpu_;
  GuestAllocator* allocator_ = nullptr;
  ExecObserver* observer_ = nullptr;
  TelemetryRegistry* telemetry_ = nullptr;
  TelemetryShard* tshard_ = nullptr;  // this VM's shard of telemetry_
  TraceWriter* trace_ = nullptr;
  Policy policy_ = Policy::kHarden;
  Rng rng_{0x5eedULL};

  std::vector<uint64_t> inputs_;
  size_t input_pos_ = 0;
  std::vector<uint64_t> outputs_;
  std::vector<MemErrorReport> mem_errors_;
  // Latched by a TrapCode::kErrAddr prologue trap; consumed (and cleared)
  // by the kMemError trap that immediately follows it.
  uint64_t pending_err_addr_ = 0;
  bool pending_err_has_addr_ = false;
  std::unordered_map<uint32_t, uint64_t> counters_;
  std::unordered_map<uint32_t, ProfCounts> prof_counts_;
  std::unordered_map<uint64_t, Exec> icache_;     // step engine decode cache
  std::vector<Block> block_cache_;                // block engine, lazily sized
  size_t block_cache_size_ = kBlockCacheSize;     // entries; power of two

  bool chain_ = true;
  bool spec_ = true;
  DispatchStats dispatch_;
  std::vector<std::unique_ptr<Trace>> traces_;  // stable across growth
  // In-progress trace recording (at most one at a time).
  bool trace_recording_ = false;
  Block* trace_head_ = nullptr;
  Trace trace_rec_;

  VmEngine engine_ = VmEngine::kBlock;
  uint64_t epoch_every_ = 0;
  uint64_t epoch_next_ = 0;
  std::function<void()> epoch_hook_;
  SampleProfiler* sampler_ = nullptr;
  uint64_t sampler_next_ = 0;  // instruction index of the next sample

  uint64_t instruction_limit_ = 200'000'000'000ULL;
  uint64_t instructions_ = 0;
  uint64_t cycles_ = 0;
  uint64_t explicit_reads_ = 0;
  uint64_t explicit_writes_ = 0;

  // Set while executing: halt requested by the current instruction.
  bool halt_ = false;
  HaltReason halt_reason_ = HaltReason::kHlt;
  uint64_t exit_status_ = 0;

  // --- telemetry-only state (untouched when no sink is attached) -----------
  // Trampoline sections of every loaded image; accumulated across LoadImage
  // calls (shared-object runs map several images into one address space).
  // Each range remembers which image (by load ordinal) owns it so per-site
  // counters can be keyed per image.
  struct TrampRange {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint32_t image = 0;
    // True for the image's inline-check (hot-tier) region: its visits are
    // attributed to SiteEvent::kInlineCycles instead of kTrampCycles.
    bool inline_region = false;
  };
  std::vector<TrampRange> tramp_ranges_;
  const std::unordered_map<uint32_t, uint64_t>* site_addrs_ = nullptr;
  uint32_t images_loaded_ = 0;   // LoadImage calls; the next image's ordinal
  bool t_in_tramp_ = false;      // rip currently inside a trampoline section
  bool t_inline_ = false;        // ... and that section is an inline-check region
  bool t_have_site_ = false;     // current visit has executed a Count yet
  uint32_t t_site_ = 0;          // last site counted in the current visit (plain id)
  uint32_t t_image_ = 0;         // image ordinal of the current trampoline
  uint64_t t_entry_cycles_ = 0;  // cycles_ when the current visit began
  uint64_t t_tramp_cycles_ = 0;  // total trampoline cycles, all visits
  uint64_t t_tramp_reported_ = 0;  // portion already pushed to the registry
  uint64_t t_inline_cycles_ = 0;   // total inline-check cycles, all visits
  uint64_t t_inline_reported_ = 0;  // portion already pushed to the registry
  uint64_t t_live_allocs_ = 0;   // malloc minus free (trace counter track)

  // Histogram cells (owned by telemetry_; fetched once in set_telemetry so
  // the hot paths cost one null check each when telemetry is detached).
  HistogramCell* h_tramp_visit_ = nullptr;     // vm.tramp_visit_cycles
  HistogramCell* h_superblock_len_ = nullptr;  // vm.superblock_len
  HistogramCell* h_malloc_bytes_ = nullptr;    // heap.malloc_bytes
  HistogramCell* h_live_bytes_ = nullptr;      // heap.live_bytes
  HistogramCell* h_live_objects_ = nullptr;    // heap.live_objects
  HistogramCell* h_alloc_lifetime_ = nullptr;  // heap.alloc_lifetime_cycles
  HistogramCell* h_error_distance_ = nullptr;  // vm.error_distance
  // Length of the current dynamic straight-line run (instructions executed
  // since the last control transfer) — the engine-invariant definition of
  // "superblock length", identical whether runs dispatch per-insn or
  // per-block.
  uint64_t sb_run_len_ = 0;

  // Heap bookkeeping for histograms + forensics: base -> {requested size,
  // cycles at allocation}. Maintained only while a heap histogram sink or a
  // HeapObserver is attached.
  struct LiveAlloc {
    uint64_t size = 0;
    uint64_t cycles = 0;
  };
  HeapObserver* heap_obs_ = nullptr;
  std::unordered_map<uint64_t, LiveAlloc> live_allocs_;
  uint64_t live_bytes_ = 0;
  uint64_t live_bytes_peak_ = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_VM_VM_H_
