// Interval-sampled guest-PC profiler: the cheap alternative to full counter
// telemetry for finding where guest time goes (and the profile source for
// `redfat --profile=` re-tiering when counting every check is too costly).
//
// The VM takes one sample every `period` executed guest instructions, at the
// exact instruction boundary — under either engine, via the same budget-cap
// mechanism the epoch hook uses — so a run's sample sequence is fully
// deterministic: same program + inputs + period => bit-identical samples,
// step or block engine. Sampling charges no guest cycles and never touches
// guest state; a VM with no sampler attached (the default) pays nothing.
//
// Each sample attributes the resumption PC to (image, region, frame):
// region is user code, a trampoline section or an inline-check region, and
// the frame is the active check site for instrumentation regions (the site
// last Counted in the current trampoline visit) or a 64-byte PC bucket for
// user code. Outputs:
//   * collapsed-stack "folded" text (flamegraph.pl-compatible),
//   * trace instants for the first kMaxTraceSamples samples,
//   * a synthesized TelemetrySnapshot whose per-site check/cycle estimates
//     feed the existing `redfat --profile=` tiering join.
#ifndef REDFAT_SRC_VM_PROFILER_H_
#define REDFAT_SRC_VM_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/telemetry.h"

namespace redfat {

class TraceWriter;

class SampleProfiler {
 public:
  enum class Region : uint8_t { kUser = 0, kTramp = 1, kInline = 2 };
  static constexpr size_t kMaxTraceSamples = 4096;
  // User-code PCs fold into buckets of this many bytes: fine enough to
  // separate loops, coarse enough to keep the key space bounded.
  static constexpr uint64_t kUserPcBucket = 64;

  explicit SampleProfiler(uint64_t period) : period_(period == 0 ? 1 : period) {}

  uint64_t period() const { return period_; }

  // Called by the VM at each sample boundary (never by anyone else).
  void TakeSample(uint64_t pc, uint64_t instructions, uint64_t cycles,
                  uint32_t image, Region region, bool have_site, uint32_t site);

  // Optional display name for an image ordinal (folded-output labels).
  void SetImageName(uint32_t image, const std::string& name);

  uint64_t samples() const { return samples_; }
  uint64_t dropped_trace_samples() const {
    return samples_ > kMaxTraceSamples ? samples_ - kMaxTraceSamples : 0;
  }

  // "image;region;frame count" lines, deterministically ordered.
  std::string ToFolded() const;

  // Instant events ("sample" category) for the retained sample prefix.
  void AppendTrace(TraceWriter& trace) const;

  // A TelemetrySnapshot estimated from the samples alone: per-site checks =
  // sample count, tramp/inline cycles = samples * period. Absolute values
  // are estimates (samples are spaced in instructions, not cycles) but the
  // per-site ranking — all the `redfat --profile=` hot-prefix join consumes
  // — matches the sampled distribution. Includes profile.* counters
  // describing the sampling configuration.
  TelemetrySnapshot SynthesizeMetrics() const;

 private:
  struct Key {
    uint32_t image = 0;
    Region region = Region::kUser;
    bool have_site = false;
    uint32_t site = 0;      // valid when have_site
    uint64_t pc_bucket = 0; // valid when !have_site
    bool operator<(const Key& o) const;
  };
  struct Sample {
    uint64_t pc = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    Key key;
  };

  std::string ImageLabel(uint32_t image) const;

  uint64_t period_;
  uint64_t samples_ = 0;
  std::map<Key, uint64_t> counts_;
  std::vector<Sample> trace_samples_;  // first kMaxTraceSamples only
  std::map<uint32_t, std::string> image_names_;
};

const char* ProfileRegionName(SampleProfiler::Region r);

}  // namespace redfat

#endif  // REDFAT_SRC_VM_PROFILER_H_
