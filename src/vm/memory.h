// Sparse paged guest memory.
//
// The guest address space follows the paper's layout literally (32 GiB
// low-fat regions, stacks and code far below them), which only works because
// pages are materialized lazily: an untouched 32 GiB region costs nothing.
//
// A direct-mapped software TLB sits in front of the page map: the aligned
// Read/Write fast path is an index, a tag compare and a memcpy, falling back
// to the unordered_map only on a TLB miss. Page objects are individually
// heap-allocated and never freed for the lifetime of the Memory, so cached
// pointers stay valid across map rehashes; absent pages are deliberately not
// cached (a later Write could materialize them behind the TLB's back).
#ifndef REDFAT_SRC_VM_MEMORY_H_
#define REDFAT_SRC_VM_MEMORY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace redfat {

class Memory {
 public:
  static constexpr unsigned kPageShift = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  // Reads `size` (1/2/4/8) bytes, zero-extended. Untouched memory reads as 0.
  uint64_t Read(uint64_t addr, unsigned size) const;
  // Writes the low `size` bytes of value.
  void Write(uint64_t addr, uint64_t value, unsigned size);

  uint64_t ReadU64(uint64_t addr) const { return Read(addr, 8); }
  void WriteU64(uint64_t addr, uint64_t value) { Write(addr, value, 8); }

  void ReadBytes(uint64_t addr, uint8_t* out, size_t n) const;
  void WriteBytes(uint64_t addr, const uint8_t* in, size_t n);
  void Fill(uint64_t addr, uint8_t value, uint64_t n);

  // Number of pages ever materialized (a proxy for resident memory).
  size_t TouchedPages() const { return pages_.size(); }

  // TLB effectiveness counters (every FindPage/TouchPage probe, from any
  // access path). Plain uint64s: Memory is single-threaded like the Vm that
  // owns it, and the two increments are cheap enough to keep unconditionally.
  uint64_t tlb_hits() const { return tlb_hits_; }
  uint64_t tlb_misses() const { return tlb_misses_; }

  // Single-page fast paths for the specialized block engine: identical
  // semantics to Read/Write (zero-extension, lazy materialization, untouched
  // memory reads 0) with the size CHECK elided — the caller's decoder already
  // validated the access size — and the page probe inlined. Accesses that
  // straddle a page boundary take the generic byte-wise path.
  uint64_t ReadFast(uint64_t addr, unsigned size) const {
    const uint64_t off = addr & (kPageSize - 1);
    if (off + size <= kPageSize) {
      const Page* p = FindPage(addr >> kPageShift);
      if (p == nullptr) {
        return 0;
      }
      const uint8_t* src = p->data() + off;
      uint64_t v = 0;
      switch (size) {
        case 1: std::memcpy(&v, src, 1); break;
        case 2: std::memcpy(&v, src, 2); break;
        case 4: std::memcpy(&v, src, 4); break;
        default: std::memcpy(&v, src, 8); break;
      }
      return v;
    }
    return Read(addr, size);
  }
  void WriteFast(uint64_t addr, uint64_t value, unsigned size) {
    const uint64_t off = addr & (kPageSize - 1);
    if (off + size <= kPageSize) {
      uint8_t* dst = TouchPage(addr >> kPageShift)->data() + off;
      switch (size) {
        case 1: std::memcpy(dst, &value, 1); break;
        case 2: std::memcpy(dst, &value, 2); break;
        case 4: std::memcpy(dst, &value, 4); break;
        default: std::memcpy(dst, &value, 8); break;
      }
      return;
    }
    Write(addr, value, size);
  }

  // Drops every cached translation. Pages themselves are untouched; this
  // only forces the next access per page through the map again (image
  // reload hygiene — correctness never depends on it, because pages are
  // never deallocated and writes refresh their own entries).
  void InvalidateTlb() const {
    for (TlbEntry& e : tlb_) {
      e = TlbEntry{};
    }
  }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  static constexpr size_t kTlbSize = 256;  // direct-mapped, tagged by page no
  static constexpr uint64_t kEmptyTag = ~uint64_t{0};  // page no 2^52 max

  struct TlbEntry {
    uint64_t tag = kEmptyTag;
    Page* page = nullptr;
  };

  const Page* FindPage(uint64_t page_no) const {
    TlbEntry& e = tlb_[page_no & (kTlbSize - 1)];
    if (e.tag == page_no) {
      ++tlb_hits_;
      return e.page;
    }
    ++tlb_misses_;
    auto it = pages_.find(page_no);
    if (it == pages_.end()) {
      return nullptr;
    }
    e.tag = page_no;
    e.page = it->second.get();
    return e.page;
  }

  Page* TouchPage(uint64_t page_no) {
    TlbEntry& e = tlb_[page_no & (kTlbSize - 1)];
    if (e.tag == page_no) {
      ++tlb_hits_;
      return e.page;
    }
    ++tlb_misses_;
    std::unique_ptr<Page>& p = pages_[page_no];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    e.tag = page_no;
    e.page = p.get();
    return p.get();
  }

  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
  // The TLB is a cache, not state: filling it from const reads is fine
  // (single-threaded like the Vm that owns this Memory).
  mutable std::array<TlbEntry, kTlbSize> tlb_;
  mutable uint64_t tlb_hits_ = 0;
  mutable uint64_t tlb_misses_ = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_VM_MEMORY_H_
