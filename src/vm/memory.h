// Sparse paged guest memory.
//
// The guest address space follows the paper's layout literally (32 GiB
// low-fat regions, stacks and code far below them), which only works because
// pages are materialized lazily: an untouched 32 GiB region costs nothing.
//
// A direct-mapped software TLB sits in front of the page map: the aligned
// Read/Write fast path is an index, a tag compare and a memcpy, falling back
// to the unordered_map only on a TLB miss. Page objects are individually
// heap-allocated and never freed for the lifetime of the Memory, so cached
// pointers stay valid across map rehashes; absent pages are deliberately not
// cached (a later Write could materialize them behind the TLB's back).
#ifndef REDFAT_SRC_VM_MEMORY_H_
#define REDFAT_SRC_VM_MEMORY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace redfat {

class Memory {
 public:
  static constexpr unsigned kPageShift = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  // Reads `size` (1/2/4/8) bytes, zero-extended. Untouched memory reads as 0.
  uint64_t Read(uint64_t addr, unsigned size) const;
  // Writes the low `size` bytes of value.
  void Write(uint64_t addr, uint64_t value, unsigned size);

  uint64_t ReadU64(uint64_t addr) const { return Read(addr, 8); }
  void WriteU64(uint64_t addr, uint64_t value) { Write(addr, value, 8); }

  void ReadBytes(uint64_t addr, uint8_t* out, size_t n) const;
  void WriteBytes(uint64_t addr, const uint8_t* in, size_t n);
  void Fill(uint64_t addr, uint8_t value, uint64_t n);

  // Number of pages ever materialized (a proxy for resident memory).
  size_t TouchedPages() const { return pages_.size(); }

  // Drops every cached translation. Pages themselves are untouched; this
  // only forces the next access per page through the map again (image
  // reload hygiene — correctness never depends on it, because pages are
  // never deallocated and writes refresh their own entries).
  void InvalidateTlb() const {
    for (TlbEntry& e : tlb_) {
      e = TlbEntry{};
    }
  }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  static constexpr size_t kTlbSize = 256;  // direct-mapped, tagged by page no
  static constexpr uint64_t kEmptyTag = ~uint64_t{0};  // page no 2^52 max

  struct TlbEntry {
    uint64_t tag = kEmptyTag;
    Page* page = nullptr;
  };

  const Page* FindPage(uint64_t page_no) const {
    TlbEntry& e = tlb_[page_no & (kTlbSize - 1)];
    if (e.tag == page_no) {
      return e.page;
    }
    auto it = pages_.find(page_no);
    if (it == pages_.end()) {
      return nullptr;
    }
    e.tag = page_no;
    e.page = it->second.get();
    return e.page;
  }

  Page* TouchPage(uint64_t page_no) {
    TlbEntry& e = tlb_[page_no & (kTlbSize - 1)];
    if (e.tag == page_no) {
      return e.page;
    }
    std::unique_ptr<Page>& p = pages_[page_no];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    e.tag = page_no;
    e.page = p.get();
    return p.get();
  }

  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
  // The TLB is a cache, not state: filling it from const reads is fine
  // (single-threaded like the Vm that owns this Memory).
  mutable std::array<TlbEntry, kTlbSize> tlb_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_VM_MEMORY_H_
