// Sparse paged guest memory.
//
// The guest address space follows the paper's layout literally (32 GiB
// low-fat regions, stacks and code far below them), which only works because
// pages are materialized lazily: an untouched 32 GiB region costs nothing.
#ifndef REDFAT_SRC_VM_MEMORY_H_
#define REDFAT_SRC_VM_MEMORY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace redfat {

class Memory {
 public:
  static constexpr unsigned kPageShift = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  // Reads `size` (1/2/4/8) bytes, zero-extended. Untouched memory reads as 0.
  uint64_t Read(uint64_t addr, unsigned size) const;
  // Writes the low `size` bytes of value.
  void Write(uint64_t addr, uint64_t value, unsigned size);

  uint64_t ReadU64(uint64_t addr) const { return Read(addr, 8); }
  void WriteU64(uint64_t addr, uint64_t value) { Write(addr, value, 8); }

  void ReadBytes(uint64_t addr, uint8_t* out, size_t n) const;
  void WriteBytes(uint64_t addr, const uint8_t* in, size_t n);
  void Fill(uint64_t addr, uint8_t value, uint64_t n);

  // Number of pages ever materialized (a proxy for resident memory).
  size_t TouchedPages() const { return pages_.size(); }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  const Page* FindPage(uint64_t page_no) const {
    auto it = pages_.find(page_no);
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page* TouchPage(uint64_t page_no) {
    std::unique_ptr<Page>& p = pages_[page_no];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    return p.get();
  }

  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_VM_MEMORY_H_
