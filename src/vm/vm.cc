#include "src/vm/vm.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/vm/profiler.h"

namespace redfat {

// The guest's fixed trace identity: one modeled process, one hardware thread.
namespace {
constexpr int kGuestPid = 1;
constexpr int kGuestTid = 1;

// x86-semantics flag computation, shared verbatim between the reference
// interpreter (ExecuteOne) and the specialized handlers so the two can't
// drift.
inline uint64_t AddWithFlags(Flags& f, uint64_t a, uint64_t b) {
  const uint64_t r = a + b;
  f.zf = r == 0;
  f.sf = (r >> 63) != 0;
  f.cf = r < a;
  f.of = ((~(a ^ b) & (a ^ r)) >> 63) != 0;
  return r;
}

inline uint64_t SubWithFlags(Flags& f, uint64_t a, uint64_t b) {
  const uint64_t r = a - b;
  f.zf = r == 0;
  f.sf = (r >> 63) != 0;
  f.cf = a < b;
  f.of = (((a ^ b) & (a ^ r)) >> 63) != 0;
  return r;
}

inline void LogicFlags(Flags& f, uint64_t r) {
  f.zf = r == 0;
  f.sf = (r >> 63) != 0;
  f.cf = false;
  f.of = false;
}
}  // namespace

void Vm::LoadImage(const BinaryImage& image) {
  const uint32_t ordinal = images_loaded_++;
  for (const Section& s : image.sections) {
    memory_.WriteBytes(s.vaddr, s.bytes.data(), s.bytes.size());
    if ((s.kind == Section::Kind::kTrampoline || s.kind == Section::Kind::kInlineCheck) &&
        !s.bytes.empty()) {
      tramp_ranges_.push_back(TrampRange{s.vaddr, s.end_vaddr(), ordinal,
                                         s.kind == Section::Kind::kInlineCheck});
    }
  }
  cpu_ = CpuState{};
  cpu_.rip = image.entry;
  cpu_.Set(Reg::kRsp, kStackTop - 64);
  // New code bytes invalidate every decoded view of memory: the step
  // engine's per-address cache, the superblock cache (clearing it also kills
  // every chain link — links are Block* into the cleared cache), all baked
  // traces, and the memory TLB.
  icache_.clear();
  block_cache_.clear();
  traces_.clear();
  trace_recording_ = false;
  trace_head_ = nullptr;
  trace_rec_ = Trace{};
  memory_.InvalidateTlb();
}

void Vm::set_code_cache_size(size_t entries) {
  REDFAT_CHECK(entries != 0 && (entries & (entries - 1)) == 0);
  block_cache_size_ = entries;
  // Resize invalidates every Block* (chain links, trace heads): drop the lot
  // and rebuild on demand.
  block_cache_.clear();
  traces_.clear();
  trace_recording_ = false;
  trace_head_ = nullptr;
  trace_rec_ = Trace{};
}

void Vm::set_telemetry(TelemetryRegistry* t) {
  telemetry_ = t;
  tshard_ = t != nullptr ? t->shard() : nullptr;
  h_tramp_visit_ = t != nullptr ? t->histogram("vm.tramp_visit_cycles") : nullptr;
  h_superblock_len_ = t != nullptr ? t->histogram("vm.superblock_len") : nullptr;
  h_malloc_bytes_ = t != nullptr ? t->histogram("heap.malloc_bytes") : nullptr;
  h_live_bytes_ = t != nullptr ? t->histogram("heap.live_bytes") : nullptr;
  h_live_objects_ = t != nullptr ? t->histogram("heap.live_objects") : nullptr;
  h_alloc_lifetime_ = t != nullptr ? t->histogram("heap.alloc_lifetime_cycles") : nullptr;
  h_error_distance_ = t != nullptr ? t->histogram("vm.error_distance") : nullptr;
}

void Vm::set_sampler(SampleProfiler* s) {
  sampler_ = s;
  sampler_next_ = s != nullptr ? instructions_ + s->period() : 0;
}

void Vm::TakeSampleNow() {
  SampleProfiler::Region region = SampleProfiler::Region::kUser;
  if (t_in_tramp_) {
    region = t_inline_ ? SampleProfiler::Region::kInline
                       : SampleProfiler::Region::kTramp;
  }
  sampler_->TakeSample(cpu_.rip, instructions_, cycles_,
                       t_in_tramp_ ? t_image_ : 0, region,
                       t_in_tramp_ && t_have_site_, t_site_);
  sampler_next_ += sampler_->period();
}

bool Vm::InTrampoline(uint64_t addr) const { return TrampImageAt(addr) >= 0; }

int Vm::TrampImageAt(uint64_t addr) const {
  const TrampRange* r = TrampRangeAt(addr);
  return r != nullptr ? static_cast<int>(r->image) : -1;
}

const Vm::TrampRange* Vm::TrampRangeAt(uint64_t addr) const {
  for (const TrampRange& r : tramp_ranges_) {
    if (addr >= r.lo && addr < r.hi) {
      return &r;
    }
  }
  return nullptr;
}

uint32_t Vm::SiteKeyFor(uint32_t site) const {
  // Image 0 (and single-image runs) keeps plain ids. Packing needs the site
  // id to fit below the image bits; oversized ids stay plain rather than
  // alias another image's counters.
  if (t_image_ == 0 || t_image_ >= kMaxKeyedImages || site > kMaxKeyedSite) {
    return site;
  }
  return ImageSiteKey(t_image_, site);
}

void Vm::OnCountSite(uint32_t site) {
  if (t_in_tramp_) {
    // Batched trampolines Count every member site up front, so the last
    // counted site owns the visit's cycles when it flushes.
    t_site_ = site;
    t_have_site_ = true;
  }
  if (tshard_ != nullptr) {
    tshard_->AddSite(SiteKeyFor(site), SiteEvent::kChecks);
  }
}

void Vm::FlushTrampolineVisit() {
  const uint64_t dur = cycles_ - t_entry_cycles_;
  t_in_tramp_ = false;
  (t_inline_ ? t_inline_cycles_ : t_tramp_cycles_) += dur;
  if (h_tramp_visit_ != nullptr && !t_inline_) {
    h_tramp_visit_->Record(dur);
  }
  if (tshard_ != nullptr && t_have_site_) {
    tshard_->AddSite(SiteKeyFor(t_site_),
                     t_inline_ ? SiteEvent::kInlineCycles : SiteEvent::kTrampCycles, dur);
  }
  if (trace_ != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg{"site", t_have_site_ ? t_site_ : ~0ULL});
    if (t_image_ != 0) {
      args.push_back(TraceArg{"image", t_image_});
    }
    if (site_addrs_ != nullptr && t_have_site_) {
      auto it = site_addrs_->find(SiteKeyFor(t_site_));
      if (it != site_addrs_->end()) {
        args.push_back(TraceArg{"site_addr", it->second});
      }
    }
    trace_->Complete(t_inline_ ? "inline" : "tramp", "check", kGuestPid, kGuestTid,
                     static_cast<double>(t_entry_cycles_), static_cast<double>(dur),
                     args);
  }
  t_image_ = 0;
  t_inline_ = false;
}

const Vm::Exec* Vm::FetchDecode(uint64_t addr, std::string* fault) {
  auto it = icache_.find(addr);
  if (it != icache_.end()) {
    return &it->second;
  }
  uint8_t buf[16];
  memory_.ReadBytes(addr, buf, sizeof(buf));
  Result<Decoded> d = Decode(buf, sizeof(buf));
  if (!d.ok()) {
    *fault = StrFormat("fetch at 0x%llx: %s", static_cast<unsigned long long>(addr),
                       d.error().c_str());
    return nullptr;
  }
  Exec ex;
  ex.insn = d.value().insn;
  ex.length = d.value().length;
  auto [pos, inserted] = icache_.emplace(addr, ex);
  (void)inserted;
  return &pos->second;
}

void Vm::BuildSpec(Exec* ex, uint64_t addr) {
  const Instruction& in = ex->insn;
  Spec& s = ex->spec;
  s = Spec{};
  s.next = addr + ex->length;
  s.imm = in.imm;
  s.r0 = IsGpr(in.r0) ? static_cast<uint8_t>(RegIndex(in.r0)) : 0;
  s.r1 = IsGpr(in.r1) ? static_cast<uint8_t>(RegIndex(in.r1)) : 0;
  s.cond = static_cast<uint8_t>(in.cond);
  auto set_mem = [&s](const MemOperand& m) {
    s.size = static_cast<uint8_t>(m.access_size());
    s.disp = static_cast<int64_t>(m.disp);
    if (m.rip_relative()) {
      // next_rip is static per decoded instruction: fold it now so the hot
      // path computes an absolute address with no rip dependence.
      s.disp += static_cast<int64_t>(s.next);
    } else if (m.has_base()) {
      s.base = static_cast<uint8_t>(RegIndex(m.base));
    }
    if (m.has_index()) {
      s.idx = static_cast<uint8_t>(RegIndex(m.index));
      s.scale = m.scale_log2;
    }
  };
  switch (in.op) {
    case Op::kNop: s.op = kSNop; break;
    case Op::kMovRI: s.op = kSMovRI; break;
    case Op::kMovRR: s.op = kSMovRR; break;
    case Op::kLea: s.op = kSLea; set_mem(in.mem); break;
    case Op::kLoad: s.op = kSLoad; set_mem(in.mem); break;
    case Op::kStoreR: s.op = kSStoreR; set_mem(in.mem); break;
    case Op::kStoreI: s.op = kSStoreI; set_mem(in.mem); break;
    case Op::kAddRR: s.op = kSAddRR; break;
    case Op::kAddRI: s.op = kSAddRI; break;
    case Op::kSubRR: s.op = kSSubRR; break;
    case Op::kSubRI: s.op = kSSubRI; break;
    case Op::kAndRR: s.op = kSAndRR; break;
    case Op::kAndRI: s.op = kSAndRI; break;
    case Op::kOrRR: s.op = kSOrRR; break;
    case Op::kOrRI: s.op = kSOrRI; break;
    case Op::kXorRR: s.op = kSXorRR; break;
    case Op::kXorRI: s.op = kSXorRI; break;
    case Op::kShlRI: s.op = kSShlRI; break;
    case Op::kShrRI: s.op = kSShrRI; break;
    case Op::kSarRI: s.op = kSSarRI; break;
    case Op::kImulRR: s.op = kSImulRR; break;
    case Op::kImulRI: s.op = kSImulRI; break;
    case Op::kMulhRR: s.op = kSMulhRR; break;
    case Op::kCmpRR: s.op = kSCmpRR; break;
    case Op::kCmpRI: s.op = kSCmpRI; break;
    case Op::kTestRR: s.op = kSTestRR; break;
    case Op::kCount: s.op = kSCount; s.target = 0; break;
    case Op::kJmp: s.op = kSJmp; s.target = s.next + static_cast<uint64_t>(in.imm); break;
    case Op::kJcc: s.op = kSJcc; s.target = s.next + static_cast<uint64_t>(in.imm); break;
    case Op::kCall: s.op = kSCall; s.target = s.next + static_cast<uint64_t>(in.imm); break;
    case Op::kJmpR: s.op = kSJmpR; break;
    case Op::kCallR: s.op = kSCallR; break;
    case Op::kRet: s.op = kSRet; break;
    case Op::kPush: s.op = kSPush; break;
    case Op::kPop: s.op = kSPop; break;
    default: s.op = kSGeneric; break;  // hostcall/trap/pushf/popf/hlt/ud2/shl_rr/...
  }
}

Vm::Block* Vm::FetchBlock(uint64_t addr, std::string* fault) {
  if (block_cache_.empty()) {
    block_cache_.resize(block_cache_size_);
  }
  Block& b = block_cache_[addr & (block_cache_size_ - 1)];
  if (b.entry == addr) {
    return &b;
  }
  // Direct-mapped: a colliding resident block is simply rebuilt over. Links
  // pointing AT the evicted block are left alone — followers validate the
  // target's entry tag, so a stale link misses and re-dispatches.
  if (b.entry != ~uint64_t{0}) {
    ++dispatch_.code_cache_evictions;
  }
  b.entry = ~uint64_t{0};
  b.execs.clear();
  b.succ[0] = nullptr;
  b.succ[1] = nullptr;
  b.hits = 0;
  b.trace = -1;
  const TrampRange* entry_range = TrampRangeAt(addr);
  b.range = entry_range;
  uint64_t cur = addr;
  uint8_t buf[16];
  while (b.execs.size() < kMaxBlockInsns) {
    // Never span a trampoline/inline-region boundary: one range
    // classification at block entry must hold for every instruction in it.
    if (cur != addr && TrampRangeAt(cur) != entry_range) {
      break;
    }
    memory_.ReadBytes(cur, buf, sizeof(buf));
    Result<Decoded> d = Decode(buf, sizeof(buf));
    if (!d.ok()) {
      if (b.execs.empty()) {
        *fault = StrFormat("fetch at 0x%llx: %s", static_cast<unsigned long long>(cur),
                           d.error().c_str());
        return nullptr;
      }
      // End the block cleanly before the undecodable instruction; the next
      // dispatch at its address reproduces the step engine's fetch fault.
      break;
    }
    Exec ex;
    ex.insn = d.value().insn;
    ex.length = d.value().length;
    BuildSpec(&ex, cur);
    b.execs.push_back(ex);
    cur += ex.length;
    const Op op = ex.insn.op;
    if (IsControlFlow(op) || op == Op::kHostCall || op == Op::kTrap || op == Op::kHlt) {
      break;  // superblock terminator (kUd2 faults in ExecuteOne instead)
    }
  }
  b.fall_rip = cur;
  // cmp/test+jcc macro-op fusion: a Jcc terminates its block, so the fusable
  // pair is always the last two entries. The fused handler reads the Jcc's
  // own spec for cond/target, so the marker carries no extra state and the
  // pair still executes unfused when the instruction budget splits it.
  const size_t m = b.execs.size();
  if (m >= 2 && b.execs[m - 1].spec.op == kSJcc) {
    Spec& c = b.execs[m - 2].spec;
    if (c.op == kSCmpRR) {
      c.op = kSCmpRRJcc;
    } else if (c.op == kSCmpRI) {
      c.op = kSCmpRIJcc;
    } else if (c.op == kSTestRR) {
      c.op = kSTestRRJcc;
    }
  }
  b.entry = addr;
  ++dispatch_.blocks_built;
  return &b;
}

uint64_t Vm::EffectiveAddress(const MemOperand& mem, uint64_t next_rip) const {
  return ComputeEffectiveAddress(cpu_, mem, next_rip);
}

void Vm::SetFlagsLogic(uint64_t result) {
  cpu_.flags.zf = result == 0;
  cpu_.flags.sf = (result >> 63) != 0;
  cpu_.flags.cf = false;
  cpu_.flags.of = false;
}

bool Vm::EvalCond(Cond c) const {
  const Flags& f = cpu_.flags;
  switch (c) {
    case Cond::kEq: return f.zf;
    case Cond::kNe: return !f.zf;
    case Cond::kUlt: return f.cf;
    case Cond::kUle: return f.cf || f.zf;
    case Cond::kUgt: return !f.cf && !f.zf;
    case Cond::kUge: return !f.cf;
    case Cond::kSlt: return f.sf != f.of;
    case Cond::kSle: return f.zf || (f.sf != f.of);
    case Cond::kSgt: return !f.zf && (f.sf == f.of);
    case Cond::kSge: return f.sf == f.of;
  }
  REDFAT_FATAL("bad cond");
}

bool Vm::ReportMemError(uint32_t site, ErrorKind kind) {
  return ReportMemErrorImpl(site, kind, 0, false);
}

bool Vm::ReportMemError(uint32_t site, ErrorKind kind, uint64_t addr) {
  return ReportMemErrorImpl(site, kind, addr, true);
}

bool Vm::ReportMemErrorImpl(uint32_t site, ErrorKind kind, uint64_t addr,
                            bool has_addr) {
  MemErrorReport report{site, kind, cpu_.rip, instructions_};
  report.addr = addr;
  report.has_addr = has_addr;
  mem_errors_.push_back(report);
  if (has_addr && h_error_distance_ != nullptr && heap_obs_ != nullptr) {
    uint64_t distance = 0;
    if (heap_obs_->DistanceTo(addr, &distance)) {
      h_error_distance_->Record(distance);
    }
  }
  if (tshard_ != nullptr) {
    tshard_->AddSite(SiteKeyFor(site), SiteEvent::kRedzoneHits);
  }
  if (trace_ != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg{"site", site});
    args.push_back(TraceArg{"kind", static_cast<uint64_t>(kind)});
    if (has_addr) {
      args.push_back(TraceArg{"addr", addr});
    }
    if (t_image_ != 0) {
      args.push_back(TraceArg{"image", t_image_});
    }
    if (site_addrs_ != nullptr) {
      auto it = site_addrs_->find(SiteKeyFor(site));
      if (it != site_addrs_->end()) {
        args.push_back(TraceArg{"site_addr", it->second});
      }
    }
    trace_->Instant("mem_error", "error", kGuestPid, kGuestTid,
                    static_cast<double>(cycles_), args);
  }
  if (policy_ == Policy::kHarden) {
    halt_ = true;
    halt_reason_ = HaltReason::kMemErrorAbort;
    return true;
  }
  return false;
}

bool Vm::DoHostCall(HostFn fn, std::string* fault) {
  const uint64_t a0 = cpu_.Get(Reg::kRdi);
  const uint64_t a1 = cpu_.Get(Reg::kRsi);
  const uint64_t a2 = cpu_.Get(Reg::kRdx);
  const uint64_t hostcall_start = cycles_;
  cycles_ += model_.hostcall_base;
  switch (fn) {
    case HostFn::kExit:
      halt_ = true;
      halt_reason_ = HaltReason::kExit;
      exit_status_ = a0;
      return true;
    case HostFn::kMalloc: {
      if (allocator_ == nullptr) {
        *fault = "hostcall malloc with no allocator bound";
        return false;
      }
      const AllocOutcome out = allocator_->Malloc(memory_, a0);
      cpu_.Set(Reg::kRax, out.ptr);
      cycles_ += out.cycles;
      if (out.corrupted) {
        // The allocator's own metadata validation tripped (forged freelist
        // link). The allocation itself was recovered from the bump arena;
        // under Policy::kHarden the report halts the run.
        ReportMemError(0, out.corrupt_kind, out.corrupt_addr);
      }
      if ((heap_obs_ != nullptr || h_malloc_bytes_ != nullptr) && out.ptr != 0) {
        live_allocs_[out.ptr] = LiveAlloc{a0, cycles_};
        live_bytes_ += a0;
        if (live_bytes_ > live_bytes_peak_) {
          live_bytes_peak_ = live_bytes_;
        }
        if (h_malloc_bytes_ != nullptr) {
          h_malloc_bytes_->Record(a0);
          h_live_bytes_->Record(live_bytes_);
          h_live_objects_->Record(live_allocs_.size());
        }
        if (heap_obs_ != nullptr) {
          heap_obs_->OnAlloc(out.ptr, a0, cpu_.rip, instructions_, cycles_,
                             CurrentEpoch());
        }
      }
      if (trace_ != nullptr) {
        if (out.ptr != 0) {
          ++t_live_allocs_;
        }
        trace_->Complete("malloc", "alloc", kGuestPid, kGuestTid,
                         static_cast<double>(hostcall_start),
                         static_cast<double>(cycles_ - hostcall_start),
                         {TraceArg{"size", a0}, TraceArg{"ptr", out.ptr}});
        trace_->Counter("heap.live_objects", kGuestPid, static_cast<double>(cycles_),
                        t_live_allocs_);
      }
      return true;
    }
    case HostFn::kFree: {
      if (allocator_ == nullptr) {
        *fault = "hostcall free with no allocator bound";
        return false;
      }
      if (heap_obs_ != nullptr && a0 != 0 &&
          live_allocs_.find(a0) == live_allocs_.end() && heap_obs_->WasFreed(a0)) {
        // Double free: the ring still remembers this exact base as freed and
        // it was never reallocated. Report before touching the allocator —
        // whose own double-free handling is a hard host abort, not a
        // diagnosable guest error — and skip it, so under Policy::kLog the
        // second free becomes a diagnosed no-op.
        ReportMemError(0, ErrorKind::kDoubleFree, a0);
        return true;
      }
      const FreeOutcome fout = allocator_->Free(memory_, a0);
      cycles_ += fout.cycles;
      if (fout.corrupted) {
        ReportMemError(0, fout.corrupt_kind, fout.corrupt_addr);
      }
      if ((heap_obs_ != nullptr || h_malloc_bytes_ != nullptr) && a0 != 0) {
        const auto it = live_allocs_.find(a0);
        if (it != live_allocs_.end()) {
          if (h_alloc_lifetime_ != nullptr) {
            h_alloc_lifetime_->Record(cycles_ - it->second.cycles);
          }
          live_bytes_ -= it->second.size < live_bytes_ ? it->second.size : live_bytes_;
          live_allocs_.erase(it);
          if (h_live_bytes_ != nullptr) {
            h_live_bytes_->Record(live_bytes_);
            h_live_objects_->Record(live_allocs_.size());
          }
        }
        if (heap_obs_ != nullptr) {
          heap_obs_->OnFree(a0, cpu_.rip, instructions_, cycles_, CurrentEpoch());
        }
      }
      if (trace_ != nullptr) {
        if (a0 != 0 && t_live_allocs_ > 0) {
          --t_live_allocs_;
        }
        trace_->Complete("free", "alloc", kGuestPid, kGuestTid,
                         static_cast<double>(hostcall_start),
                         static_cast<double>(cycles_ - hostcall_start),
                         {TraceArg{"ptr", a0}});
        trace_->Counter("heap.live_objects", kGuestPid, static_cast<double>(cycles_),
                        t_live_allocs_);
      }
      return true;
    }
    case HostFn::kMemset: {
      if (allocator_ != nullptr) {
        // guard-memcpy: pre-check the destination range against allocator
        // metadata. A violation is reported *before* any byte is written;
        // under Policy::kHarden the operation is suppressed entirely.
        const GuardOutcome g = allocator_->GuardRange(memory_, a0, a2);
        cycles_ += g.cycles;
        if (g.violation && ReportMemError(0, g.kind, g.addr)) {
          return true;
        }
      }
      memory_.Fill(a0, static_cast<uint8_t>(a1), a2);
      cycles_ += (a2 / 8) * model_.membyte_per8;
      return true;
    }
    case HostFn::kMemcpy: {
      if (allocator_ != nullptr) {
        const GuardOutcome gsrc = allocator_->GuardRange(memory_, a1, a2);
        const GuardOutcome gdst = allocator_->GuardRange(memory_, a0, a2);
        cycles_ += gsrc.cycles + gdst.cycles;
        const GuardOutcome& g = gsrc.violation ? gsrc : gdst;
        if (g.violation && ReportMemError(0, g.kind, g.addr)) {
          return true;
        }
      }
      std::vector<uint8_t> buf(a2);
      memory_.ReadBytes(a1, buf.data(), buf.size());
      memory_.WriteBytes(a0, buf.data(), buf.size());
      cycles_ += (a2 / 8) * model_.membyte_per8;
      return true;
    }
    case HostFn::kInputU64:
      cpu_.Set(Reg::kRax, input_pos_ < inputs_.size() ? inputs_[input_pos_++] : 0);
      return true;
    case HostFn::kOutputU64:
      outputs_.push_back(a0);
      return true;
    case HostFn::kRandU64:
      cpu_.Set(Reg::kRax, rng_.Next());
      return true;
    case HostFn::kNumHostFns:
      break;
  }
  *fault = StrFormat("bad hostcall %u", static_cast<unsigned>(fn));
  return false;
}

bool Vm::ExecuteOne(const Exec& ex, std::string* fault) {
  const Instruction& in = ex.insn;
  const uint64_t next_rip = cpu_.rip + ex.length;
  uint64_t new_rip = next_rip;
  Flags& f = cpu_.flags;

  auto do_add = [&](uint64_t a, uint64_t b) { return AddWithFlags(f, a, b); };
  auto do_sub = [&](uint64_t a, uint64_t b) { return SubWithFlags(f, a, b); };
  const uint64_t imm_se = static_cast<uint64_t>(in.imm);  // already sign-extended

  switch (in.op) {
    case Op::kNop:
      cycles_ += model_.basic;
      break;
    case Op::kHlt:
      halt_ = true;
      halt_reason_ = HaltReason::kHlt;
      return true;
    case Op::kUd2:
      *fault = StrFormat("ud2 at 0x%llx", static_cast<unsigned long long>(cpu_.rip));
      return false;
    case Op::kMovRI:
      cpu_.Set(in.r0, imm_se);
      cycles_ += model_.basic;
      break;
    case Op::kMovRR:
      cpu_.Set(in.r0, cpu_.Get(in.r1));
      cycles_ += model_.basic;
      break;
    case Op::kLoad: {
      const uint64_t addr = EffectiveAddress(in.mem, next_rip);
      cpu_.Set(in.r0, memory_.Read(addr, in.mem.access_size()));
      ++explicit_reads_;
      cycles_ += model_.mem;
      break;
    }
    case Op::kStoreR: {
      const uint64_t addr = EffectiveAddress(in.mem, next_rip);
      memory_.Write(addr, cpu_.Get(in.r0), in.mem.access_size());
      ++explicit_writes_;
      cycles_ += model_.mem;
      break;
    }
    case Op::kStoreI: {
      const uint64_t addr = EffectiveAddress(in.mem, next_rip);
      memory_.Write(addr, imm_se, in.mem.access_size());
      ++explicit_writes_;
      cycles_ += model_.mem;
      break;
    }
    case Op::kLea:
      cpu_.Set(in.r0, EffectiveAddress(in.mem, next_rip));
      cycles_ += model_.basic;
      break;
    case Op::kAddRR:
      cpu_.Set(in.r0, do_add(cpu_.Get(in.r0), cpu_.Get(in.r1)));
      cycles_ += model_.basic;
      break;
    case Op::kAddRI:
      cpu_.Set(in.r0, do_add(cpu_.Get(in.r0), imm_se));
      cycles_ += model_.basic;
      break;
    case Op::kSubRR:
      cpu_.Set(in.r0, do_sub(cpu_.Get(in.r0), cpu_.Get(in.r1)));
      cycles_ += model_.basic;
      break;
    case Op::kSubRI:
      cpu_.Set(in.r0, do_sub(cpu_.Get(in.r0), imm_se));
      cycles_ += model_.basic;
      break;
    case Op::kImulRR: {
      const uint64_t r = cpu_.Get(in.r0) * cpu_.Get(in.r1);
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.mul;
      break;
    }
    case Op::kImulRI: {
      const uint64_t r = cpu_.Get(in.r0) * imm_se;
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.mul;
      break;
    }
    case Op::kMulhRR: {
      const uint64_t r = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(cpu_.Get(in.r0)) *
           static_cast<unsigned __int128>(cpu_.Get(in.r1))) >> 64);
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.mul;
      break;
    }
    case Op::kAndRR: case Op::kAndRI:
    case Op::kOrRR: case Op::kOrRI:
    case Op::kXorRR: case Op::kXorRI: {
      const uint64_t b = (in.op == Op::kAndRR || in.op == Op::kOrRR || in.op == Op::kXorRR)
                             ? cpu_.Get(in.r1)
                             : imm_se;
      uint64_t r = cpu_.Get(in.r0);
      if (in.op == Op::kAndRR || in.op == Op::kAndRI) {
        r &= b;
      } else if (in.op == Op::kOrRR || in.op == Op::kOrRI) {
        r |= b;
      } else {
        r ^= b;
      }
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.basic;
      break;
    }
    case Op::kShlRI: case Op::kShrRI: case Op::kSarRI:
    case Op::kShlRR: case Op::kShrRR: {
      const unsigned c = static_cast<unsigned>(
          (in.op == Op::kShlRR || in.op == Op::kShrRR) ? (cpu_.Get(in.r1) & 63)
                                                        : (in.imm & 63));
      cycles_ += model_.basic;
      if (c == 0) {
        break;  // x86: zero shift leaves flags unchanged
      }
      uint64_t a = cpu_.Get(in.r0);
      uint64_t r;
      bool carry;
      if (in.op == Op::kShlRI || in.op == Op::kShlRR) {
        carry = ((a >> (64 - c)) & 1) != 0;
        r = a << c;
      } else if (in.op == Op::kSarRI) {
        carry = ((a >> (c - 1)) & 1) != 0;
        r = static_cast<uint64_t>(static_cast<int64_t>(a) >> c);
      } else {
        carry = ((a >> (c - 1)) & 1) != 0;
        r = a >> c;
      }
      cpu_.Set(in.r0, r);
      f.zf = r == 0;
      f.sf = (r >> 63) != 0;
      f.cf = carry;
      f.of = false;
      break;
    }
    case Op::kCmpRR:
      (void)do_sub(cpu_.Get(in.r0), cpu_.Get(in.r1));
      cycles_ += model_.basic;
      break;
    case Op::kCmpRI:
      (void)do_sub(cpu_.Get(in.r0), imm_se);
      cycles_ += model_.basic;
      break;
    case Op::kTestRR:
      SetFlagsLogic(cpu_.Get(in.r0) & cpu_.Get(in.r1));
      cycles_ += model_.basic;
      break;
    case Op::kJmp:
      new_rip = next_rip + imm_se;
      cycles_ += model_.branch;
      break;
    case Op::kJmpR:
      new_rip = cpu_.Get(in.r0);
      cycles_ += model_.call_ret;
      break;
    case Op::kJcc:
      if (EvalCond(in.cond)) {
        new_rip = next_rip + imm_se;
      }
      cycles_ += model_.branch;
      break;
    case Op::kCall: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, next_rip);
      new_rip = next_rip + imm_se;
      cycles_ += model_.call_ret;
      break;
    }
    case Op::kCallR: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, next_rip);
      new_rip = cpu_.Get(in.r0);
      cycles_ += model_.call_ret;
      break;
    }
    case Op::kRet: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp);
      new_rip = memory_.ReadU64(rsp);
      cpu_.Set(Reg::kRsp, rsp + 8);
      cycles_ += model_.call_ret;
      break;
    }
    case Op::kPush: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, cpu_.Get(in.r0));
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kPop: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp);
      cpu_.Set(in.r0, memory_.ReadU64(rsp));
      cpu_.Set(Reg::kRsp, rsp + 8);
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kPushf: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, f.Pack());
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kPopf: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp);
      f.Unpack(memory_.ReadU64(rsp));
      cpu_.Set(Reg::kRsp, rsp + 8);
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kHostCall:
      if (!DoHostCall(static_cast<HostFn>(in.imm), fault)) {
        return false;
      }
      if (halt_) {
        return true;
      }
      break;
    case Op::kTrap: {
      const uint8_t code = static_cast<uint8_t>(in.imm & 0xff);
      const uint32_t arg = static_cast<uint32_t>(static_cast<uint64_t>(in.imm) >> 8);
      switch (static_cast<TrapCode>(code)) {
        case TrapCode::kMemError: {
          const bool has_addr = pending_err_has_addr_;
          const uint64_t addr = pending_err_addr_;
          pending_err_has_addr_ = false;
          const bool abort =
              has_addr ? ReportMemError(ErrorArgSite(arg), ErrorArgKind(arg), addr)
                       : ReportMemError(ErrorArgSite(arg), ErrorArgKind(arg));
          if (abort) {
            return true;
          }
          break;
        }
        case TrapCode::kErrAddr:
          pending_err_addr_ = cpu_.Get(static_cast<Reg>(arg));
          pending_err_has_addr_ = true;
          break;
        case TrapCode::kProfPass:
          ++prof_counts_[arg].passes;
          if (tshard_ != nullptr) {
            tshard_->AddSite(arg, SiteEvent::kLowFatPasses);
          }
          break;
        case TrapCode::kProfFail:
          ++prof_counts_[arg].fails;
          if (tshard_ != nullptr) {
            tshard_->AddSite(arg, SiteEvent::kLowFatFails);
          }
          break;
        case TrapCode::kAssertFail:
          halt_ = true;
          halt_reason_ = HaltReason::kAssertFail;
          exit_status_ = arg;
          return true;
        default:
          *fault = StrFormat("bad trap code %u", code);
          return false;
      }
      break;
    }
    case Op::kCount:
      ++counters_[static_cast<uint32_t>(in.imm)];
      if (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) {
        OnCountSite(static_cast<uint32_t>(in.imm));
      }
      break;  // zero cycles: measurement only
    case Op::kInvalid:
    case Op::kNumOps:
      *fault = "invalid opcode";
      return false;
  }
  cpu_.rip = new_rip;
  return true;
}

size_t Vm::ExecSpecs(Exec* execs, size_t count, size_t budget,
                     std::string* fault, bool* faulted) {
  const size_t n = count < budget ? count : budget;
  uint64_t* const regs = cpu_.regs;
  Flags& f = cpu_.flags;
  auto ea = [regs](const Spec& s) {
    uint64_t a = static_cast<uint64_t>(s.disp);
    if (s.base != 0xff) {
      a += regs[s.base];
    }
    if (s.idx != 0xff) {
      a += regs[s.idx] << s.scale;
    }
    return a;
  };
  size_t i = 0;
  while (i < n) {
    Exec& ex = execs[i];
    const Spec& s = ex.spec;
    ++instructions_;
    switch (static_cast<SpecOp>(s.op)) {
      case kSNop:
        cycles_ += model_.basic;
        break;
      case kSMovRI:
        regs[s.r0] = static_cast<uint64_t>(s.imm);
        cycles_ += model_.basic;
        break;
      case kSMovRR:
        regs[s.r0] = regs[s.r1];
        cycles_ += model_.basic;
        break;
      case kSLea:
        regs[s.r0] = ea(s);
        cycles_ += model_.basic;
        break;
      case kSLoad:
        regs[s.r0] = memory_.ReadFast(ea(s), s.size);
        ++explicit_reads_;
        cycles_ += model_.mem;
        break;
      case kSStoreR:
        memory_.WriteFast(ea(s), regs[s.r0], s.size);
        ++explicit_writes_;
        cycles_ += model_.mem;
        break;
      case kSStoreI:
        memory_.WriteFast(ea(s), static_cast<uint64_t>(s.imm), s.size);
        ++explicit_writes_;
        cycles_ += model_.mem;
        break;
      case kSAddRR:
        regs[s.r0] = AddWithFlags(f, regs[s.r0], regs[s.r1]);
        cycles_ += model_.basic;
        break;
      case kSAddRI:
        regs[s.r0] = AddWithFlags(f, regs[s.r0], static_cast<uint64_t>(s.imm));
        cycles_ += model_.basic;
        break;
      case kSSubRR:
        regs[s.r0] = SubWithFlags(f, regs[s.r0], regs[s.r1]);
        cycles_ += model_.basic;
        break;
      case kSSubRI:
        regs[s.r0] = SubWithFlags(f, regs[s.r0], static_cast<uint64_t>(s.imm));
        cycles_ += model_.basic;
        break;
      case kSAndRR: {
        const uint64_t r = regs[s.r0] & regs[s.r1];
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.basic;
        break;
      }
      case kSAndRI: {
        const uint64_t r = regs[s.r0] & static_cast<uint64_t>(s.imm);
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.basic;
        break;
      }
      case kSOrRR: {
        const uint64_t r = regs[s.r0] | regs[s.r1];
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.basic;
        break;
      }
      case kSOrRI: {
        const uint64_t r = regs[s.r0] | static_cast<uint64_t>(s.imm);
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.basic;
        break;
      }
      case kSXorRR: {
        const uint64_t r = regs[s.r0] ^ regs[s.r1];
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.basic;
        break;
      }
      case kSXorRI: {
        const uint64_t r = regs[s.r0] ^ static_cast<uint64_t>(s.imm);
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.basic;
        break;
      }
      case kSShlRI: {
        cycles_ += model_.basic;
        const unsigned c = static_cast<unsigned>(s.imm & 63);
        if (c != 0) {  // x86: zero shift leaves flags unchanged
          const uint64_t a = regs[s.r0];
          const uint64_t r = a << c;
          regs[s.r0] = r;
          f.zf = r == 0;
          f.sf = (r >> 63) != 0;
          f.cf = ((a >> (64 - c)) & 1) != 0;
          f.of = false;
        }
        break;
      }
      case kSShrRI: {
        cycles_ += model_.basic;
        const unsigned c = static_cast<unsigned>(s.imm & 63);
        if (c != 0) {
          const uint64_t a = regs[s.r0];
          const uint64_t r = a >> c;
          regs[s.r0] = r;
          f.zf = r == 0;
          f.sf = (r >> 63) != 0;
          f.cf = ((a >> (c - 1)) & 1) != 0;
          f.of = false;
        }
        break;
      }
      case kSSarRI: {
        cycles_ += model_.basic;
        const unsigned c = static_cast<unsigned>(s.imm & 63);
        if (c != 0) {
          const uint64_t a = regs[s.r0];
          const uint64_t r = static_cast<uint64_t>(static_cast<int64_t>(a) >> c);
          regs[s.r0] = r;
          f.zf = r == 0;
          f.sf = (r >> 63) != 0;
          f.cf = ((a >> (c - 1)) & 1) != 0;
          f.of = false;
        }
        break;
      }
      case kSImulRR: {
        const uint64_t r = regs[s.r0] * regs[s.r1];
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.mul;
        break;
      }
      case kSImulRI: {
        const uint64_t r = regs[s.r0] * static_cast<uint64_t>(s.imm);
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.mul;
        break;
      }
      case kSMulhRR: {
        const uint64_t r = static_cast<uint64_t>(
            (static_cast<unsigned __int128>(regs[s.r0]) *
             static_cast<unsigned __int128>(regs[s.r1])) >> 64);
        regs[s.r0] = r;
        LogicFlags(f, r);
        cycles_ += model_.mul;
        break;
      }
      case kSCmpRR:
        (void)SubWithFlags(f, regs[s.r0], regs[s.r1]);
        cycles_ += model_.basic;
        break;
      case kSCmpRI:
        (void)SubWithFlags(f, regs[s.r0], static_cast<uint64_t>(s.imm));
        cycles_ += model_.basic;
        break;
      case kSTestRR:
        LogicFlags(f, regs[s.r0] & regs[s.r1]);
        cycles_ += model_.basic;
        break;
      case kSCount: {
        // Zero cycles: measurement only. The counter cell pointer is cached
        // in the spec on first execution (unordered_map values are
        // node-stable); inserting it eagerly at decode time would create
        // zero-count entries the step engine never makes.
        Spec& sm = ex.spec;
        uint64_t* cell = reinterpret_cast<uint64_t*>(sm.target);
        if (cell == nullptr) {
          cell = &counters_[static_cast<uint32_t>(sm.imm)];
          sm.target = reinterpret_cast<uint64_t>(cell);
        }
        ++*cell;
        if (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) {
          OnCountSite(static_cast<uint32_t>(sm.imm));
        }
        break;
      }
      case kSCmpRRJcc:
      case kSCmpRIJcc:
      case kSTestRRJcc: {
        // Fused only when the budget covers both halves; otherwise the
        // compare runs alone and the Jcc re-enters as its own (tail) block.
        const bool fuse = i + 2 <= n;
        if (s.op == kSCmpRRJcc) {
          (void)SubWithFlags(f, regs[s.r0], regs[s.r1]);
        } else if (s.op == kSCmpRIJcc) {
          (void)SubWithFlags(f, regs[s.r0], static_cast<uint64_t>(s.imm));
        } else {
          LogicFlags(f, regs[s.r0] & regs[s.r1]);
        }
        cycles_ += model_.basic;
        if (!fuse) {
          break;
        }
        const Spec& j = execs[i + 1].spec;
        ++instructions_;
        cycles_ += model_.branch;
        cpu_.rip = EvalCond(static_cast<Cond>(j.cond)) ? j.target : j.next;
        return i + 2;
      }
      case kSJmp:
        cycles_ += model_.branch;
        cpu_.rip = s.target;
        return i + 1;
      case kSJcc:
        cycles_ += model_.branch;
        cpu_.rip = EvalCond(static_cast<Cond>(s.cond)) ? s.target : s.next;
        return i + 1;
      case kSJmpR:
        cycles_ += model_.call_ret;
        cpu_.rip = regs[s.r0];
        return i + 1;
      case kSCall: {
        const uint64_t rsp = regs[4] - 8;  // 4 = RegIndex(kRsp)
        regs[4] = rsp;
        memory_.WriteFast(rsp, s.next, 8);
        cycles_ += model_.call_ret;
        cpu_.rip = s.target;
        return i + 1;
      }
      case kSCallR: {
        const uint64_t rsp = regs[4] - 8;
        regs[4] = rsp;
        memory_.WriteFast(rsp, s.next, 8);
        cycles_ += model_.call_ret;
        cpu_.rip = regs[s.r0];  // after the push, like the reference
        return i + 1;
      }
      case kSRet: {
        const uint64_t rsp = regs[4];
        cpu_.rip = memory_.ReadFast(rsp, 8);
        regs[4] = rsp + 8;
        cycles_ += model_.call_ret;
        return i + 1;
      }
      case kSPush: {
        const uint64_t rsp = regs[4] - 8;
        regs[4] = rsp;
        memory_.WriteFast(rsp, regs[s.r0], 8);
        cycles_ += model_.push_pop;
        break;
      }
      case kSPop: {
        const uint64_t rsp = regs[4];
        regs[s.r0] = memory_.ReadFast(rsp, 8);
        regs[4] = rsp + 8;  // after the load, so `pop rsp` matches the reference
        cycles_ += model_.push_pop;
        break;
      }
      case kSGeneric:
        // The reference interpreter needs rip materialized (it computes
        // next_rip itself and reporting paths read it).
        cpu_.rip = s.next - ex.length;
        if (!ExecuteOne(ex, fault)) {
          *faulted = true;
          return i;  // instructions_ already counts the faulting instruction
        }
        if (halt_) {
          return i + 1;  // rip set by ExecuteOne
        }
        break;
    }
    ++i;
  }
  if (i != 0) {
    // Straight-line exit (budget cap, or a block that ends without control
    // flow): fall through to the next address.
    cpu_.rip = execs[i - 1].spec.next;
  }
  return i;
}

void Vm::BeginTraceRecording(Block* head) {
  trace_recording_ = true;
  trace_head_ = head;
  trace_rec_ = Trace{};
  trace_rec_.entry = head->entry;
  trace_rec_.range = head->range;
}

void Vm::RecordTraceBlock(const Block& b, uint64_t next_rip) {
  if (b.range != trace_rec_.range ||
      (!trace_rec_.seg_end.empty() && b.entry == trace_rec_.entry)) {
    // Left the head's range, or arrived back at the head: stop here (a
    // closed loop is the ideal trace; a range change can't be a segment).
    FinishTraceRecording(true);
    return;
  }
  trace_rec_.seg_entry.push_back(b.entry);
  trace_rec_.execs.insert(trace_rec_.execs.end(), b.execs.begin(), b.execs.end());
  trace_rec_.seg_end.push_back(static_cast<uint32_t>(trace_rec_.execs.size()));
  trace_rec_.seg_last_cf.push_back(!b.execs.empty() &&
                                   IsControlFlow(b.execs.back().insn.op));
  if (next_rip == trace_rec_.entry ||
      trace_rec_.seg_end.size() >= kMaxTraceSegments ||
      trace_rec_.execs.size() >= kMaxTraceInsns) {
    FinishTraceRecording(true);
  }
}

void Vm::FinishTraceRecording(bool bake) {
  trace_recording_ = false;
  // The head pointer is only trusted if its slot still holds the head (the
  // block may have been evicted and rebuilt mid-recording).
  Block* head =
      trace_head_ != nullptr && trace_head_->entry == trace_rec_.entry ? trace_head_
                                                                       : nullptr;
  if (bake && head != nullptr && trace_rec_.seg_end.size() >= 2 &&
      traces_.size() < kMaxTraces) {
    head->trace = static_cast<int32_t>(traces_.size());
    const uint64_t segs = trace_rec_.seg_end.size();
    traces_.push_back(std::make_unique<Trace>(std::move(trace_rec_)));
    ++dispatch_.traces_formed;
    dispatch_.trace_len.sum += segs;
    ++dispatch_.trace_len.buckets[HistogramBucketIndex(segs)];
  } else if (head != nullptr) {
    head->trace = -2;  // don't retry a head that can't form a useful trace
  }
  trace_rec_ = Trace{};
  trace_head_ = nullptr;
}

bool Vm::ExecTrace(Trace& t, bool track_sb, std::string* fault) {
  ++dispatch_.trace_runs;
  for (;;) {
    size_t seg_start = 0;
    for (size_t seg = 0; seg < t.seg_end.size(); ++seg) {
      const size_t seg_end = t.seg_end[seg];
      if (seg != 0 && cpu_.rip != t.seg_entry[seg]) {
        return true;  // interior guard failed: rip is intact, re-dispatch
      }
      uint64_t stop_at = instruction_limit_;
      if (epoch_every_ != 0 && epoch_next_ < stop_at) {
        stop_at = epoch_next_;
      }
      if (sampler_ != nullptr && sampler_next_ < stop_at) {
        stop_at = sampler_next_;
      }
      if (instructions_ >= stop_at) {
        return true;  // boundary due: the dispatcher handles it exactly
      }
      const size_t seg_insns = seg_end - seg_start;
      const uint64_t budget = stop_at - instructions_;
      bool faulted = false;
      const size_t done =
          ExecSpecs(&t.execs[seg_start], seg_insns,
                    budget < seg_insns ? static_cast<size_t>(budget) : seg_insns,
                    fault, &faulted);
      if (track_sb && done > 0) {
        sb_run_len_ += done;
        if (done == seg_insns && t.seg_last_cf[seg]) {
          h_superblock_len_->Record(sb_run_len_);
          sb_run_len_ = 0;
        }
      }
      if (faulted) {
        return false;
      }
      if (halt_ || done < seg_insns) {
        return true;  // halted, or an instruction boundary split the segment
      }
      if ((sampler_ != nullptr && instructions_ == sampler_next_) ||
          (epoch_every_ != 0 && instructions_ == epoch_next_)) {
        return true;  // land the boundary in the dispatcher's checks
      }
      seg_start = seg_end;
    }
    if (cpu_.rip != t.entry) {
      return true;
    }
    ++dispatch_.trace_runs;  // loop-closing trace: next lap without dispatch
  }
}

void Vm::RunStepLoop(RunResult* res) {
  std::string fault;
  // Trampoline-visit tracking is only worth per-instruction work when a sink
  // is attached AND the loaded image actually has trampoline code. The
  // sampler counts as a sink: sample attribution reads the t_* visit state.
  const bool track_tramp =
      (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) &&
      !tramp_ranges_.empty();
  const bool track_sb = h_superblock_len_ != nullptr;
  while (!halt_) {
    if (instructions_ >= instruction_limit_) {
      halt_reason_ = HaltReason::kInstrLimit;
      break;
    }
    if (track_tramp) {
      const TrampRange* range = TrampRangeAt(cpu_.rip);
      const bool now = range != nullptr;
      // A visit also closes when rip crosses directly between ranges with a
      // different attribution (trampoline vs inline region, or another
      // image) — each visit's cycles must land on exactly one bucket.
      if (now != t_in_tramp_ ||
          (now && (range->inline_region != t_inline_ || range->image != t_image_))) {
        if (t_in_tramp_) {
          FlushTrampolineVisit();
        }
        if (now) {
          t_in_tramp_ = true;
          t_inline_ = range->inline_region;
          t_image_ = range->image;
          t_entry_cycles_ = cycles_;
          t_have_site_ = false;
        }
      }
    }
    const Exec* ex = FetchDecode(cpu_.rip, &fault);
    if (ex == nullptr) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    if (observer_ != nullptr) {
      cycles_ += observer_->OnInstruction(*this, cpu_.rip, ex->insn);
      if (halt_) {
        break;  // observer reported a fatal memory error (Policy::kHarden)
      }
    }
    ++instructions_;
    if (!ExecuteOne(*ex, &fault)) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    if (track_sb) {
      ++sb_run_len_;
      if (IsControlFlow(ex->insn.op)) {
        h_superblock_len_->Record(sb_run_len_);
        sb_run_len_ = 0;
      }
    }
    if (sampler_ != nullptr && instructions_ == sampler_next_) {
      TakeSampleNow();
    }
    if (epoch_every_ != 0 && instructions_ == epoch_next_) {
      epoch_hook_();
      epoch_next_ += epoch_every_;
    }
  }
}

void Vm::RunBlockLoop(RunResult* res) {
  std::string fault;
  const bool track_tramp =
      (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) &&
      !tramp_ranges_.empty();
  const bool track_sb = h_superblock_len_ != nullptr;
  // The per-instruction observer hook is exactly what chaining and
  // specialization elide, so observer-attached runs transparently fall back
  // to generic unchained dispatch: bit-identical results, the observer fires
  // before every instruction, just slower.
  const bool use_spec = spec_ && observer_ == nullptr;
  const bool use_chain = chain_ && observer_ == nullptr;
  const bool form_traces = use_chain && use_spec;
  Block* patch_from = nullptr;  // fully-executed predecessor awaiting a link
  int patch_slot = 0;
  while (!halt_) {
    if (instructions_ >= instruction_limit_) {
      halt_reason_ = HaltReason::kInstrLimit;
      break;
    }
    if (track_tramp) {
      // Blocks never span a trampoline/inline-region boundary and end at
      // every control transfer, so rip's range can only change at a block
      // entry: one classification here is exactly equivalent to the step
      // engine's per-instruction check. Chain links only connect same-range
      // blocks, so skipping the dispatcher never skips a range transition.
      const TrampRange* range = TrampRangeAt(cpu_.rip);
      const bool now = range != nullptr;
      if (now != t_in_tramp_ ||
          (now && (range->inline_region != t_inline_ || range->image != t_image_))) {
        if (t_in_tramp_) {
          FlushTrampolineVisit();
        }
        if (now) {
          t_in_tramp_ = true;
          t_inline_ = range->inline_region;
          t_image_ = range->image;
          t_entry_cycles_ = cycles_;
          t_have_site_ = false;
        }
      }
    }
    Block* block = FetchBlock(cpu_.rip, &fault);
    if (block == nullptr) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    if (patch_from != nullptr) {
      // Direct linking: the predecessor's exit slot now transfers straight
      // to this block on its next visit. Same-range only, so the dispatcher
      // classification above stays equivalent when it is skipped.
      if (block->range == patch_from->range) {
        patch_from->succ[patch_slot] = block;
        ++dispatch_.links_patched;
      }
      patch_from = nullptr;
    }
    // ---- chained steady state: control stays in this loop across links ----
    for (;;) {
      if (form_traces) {
        if (block->trace >= 0) {
          if (trace_recording_) {
            // A trace executes opaque to recording; close the pending one.
            FinishTraceRecording(true);
          }
          if (!ExecTrace(*traces_[block->trace], track_sb, &fault)) {
            halt_reason_ = HaltReason::kFault;
            res->fault_message = fault;
            return;
          }
          if (sampler_ != nullptr && instructions_ == sampler_next_) {
            TakeSampleNow();
          }
          if (epoch_every_ != 0 && instructions_ == epoch_next_) {
            epoch_hook_();
            epoch_next_ += epoch_every_;
          }
          break;  // re-dispatch at the trace's exit rip
        }
        if (!trace_recording_ && block->trace == -1 &&
            traces_.size() < kMaxTraces && ++block->hits >= kTraceThreshold) {
          BeginTraceRecording(block);
        }
      }
      // Cap the dispatch count so the instruction limit and any epoch or
      // sample boundary halt at the exact same instruction as under the step
      // engine; the block's tail re-enters through FetchBlock (as a fresh
      // tail block) on the next dispatch.
      uint64_t stop_at = instruction_limit_;
      if (epoch_every_ != 0 && epoch_next_ < stop_at) {
        stop_at = epoch_next_;
      }
      if (sampler_ != nullptr && sampler_next_ < stop_at) {
        stop_at = sampler_next_;
      }
      const uint64_t budget =
          instructions_ < stop_at ? stop_at - instructions_ : 0;
      const size_t total = block->execs.size();
      const size_t n =
          budget < total ? static_cast<size_t>(budget) : total;
      bool faulted = false;
      size_t executed = 0;
      if (use_spec) {
        executed = ExecSpecs(block->execs.data(), total, n, &fault, &faulted);
      } else if (observer_ == nullptr) {
        for (size_t i = 0; i < n; ++i) {
          ++instructions_;
          if (!ExecuteOne(block->execs[i], &fault)) {
            faulted = true;
            break;
          }
          ++executed;
          if (halt_) {
            break;
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          cycles_ += observer_->OnInstruction(*this, cpu_.rip, block->execs[i].insn);
          if (halt_) {
            break;  // observer reported a fatal memory error (Policy::kHarden)
          }
          ++instructions_;
          if (!ExecuteOne(block->execs[i], &fault)) {
            faulted = true;
            break;
          }
          ++executed;
          if (halt_) {
            break;
          }
        }
      }
      if (track_sb && executed > 0) {
        // Control flow only ever terminates a block, so the executed prefix
        // is straight-line except possibly its last instruction: one length
        // check here is exactly equivalent to the step engine's per-insn
        // check. (A fused cmp+jcc only completes as a pair, so `executed ==
        // total` still indexes the block's real last instruction.)
        sb_run_len_ += executed;
        if (executed <= total && IsControlFlow(block->execs[executed - 1].insn.op)) {
          h_superblock_len_->Record(sb_run_len_);
          sb_run_len_ = 0;
        }
      }
      if (faulted) {
        if (trace_recording_) {
          FinishTraceRecording(true);
        }
        halt_reason_ = HaltReason::kFault;
        res->fault_message = fault;
        return;
      }
      if (sampler_ != nullptr && instructions_ == sampler_next_) {
        TakeSampleNow();
      }
      if (epoch_every_ != 0 && instructions_ == epoch_next_) {
        epoch_hook_();
        epoch_next_ += epoch_every_;
      }
      const bool full = !halt_ && executed == total;
      if (trace_recording_) {
        if (full) {
          RecordTraceBlock(*block, cpu_.rip);
        } else {
          FinishTraceRecording(true);  // bakes only if >= 2 segments made it
        }
      }
      if (!full || !use_chain) {
        if (use_chain) {
          ++dispatch_.chain_exits;
        }
        break;
      }
      const int slot = cpu_.rip == block->fall_rip ? 0 : 1;
      Block* nxt = block->succ[slot];
      if (nxt != nullptr && nxt->entry == cpu_.rip && nxt->range == block->range) {
        // Validated link: transfer block -> block with no dispatcher work.
        // The entry-tag check makes links left stale by collision eviction
        // self-invalidating.
        ++dispatch_.block_chains;
        block = nxt;
        continue;
      }
      patch_from = block;
      patch_slot = slot;
      ++dispatch_.chain_exits;
      break;
    }
  }
}

RunResult Vm::Run() {
  halt_ = false;
  RunResult res;
  if (engine_ == VmEngine::kBlock) {
    RunBlockLoop(&res);
  } else {
    RunStepLoop(&res);
  }
  if (t_in_tramp_) {
    FlushTrampolineVisit();  // run ended (halt/fault/limit) inside a trampoline
  }
  if (telemetry_ != nullptr && t_tramp_cycles_ > t_tramp_reported_) {
    telemetry_->AddCounter("vm.trampoline_cycles", t_tramp_cycles_ - t_tramp_reported_);
    t_tramp_reported_ = t_tramp_cycles_;
  }
  if (telemetry_ != nullptr && t_inline_cycles_ > t_inline_reported_) {
    telemetry_->AddCounter("vm.inline_check_cycles", t_inline_cycles_ - t_inline_reported_);
    t_inline_reported_ = t_inline_cycles_;
  }
  res.reason = halt_reason_;
  res.exit_status = exit_status_;
  res.instructions = instructions_;
  res.cycles = cycles_;
  res.explicit_reads = explicit_reads_;
  res.explicit_writes = explicit_writes_;
  return res;
}

}  // namespace redfat
