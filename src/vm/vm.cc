#include "src/vm/vm.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/vm/profiler.h"

namespace redfat {

// The guest's fixed trace identity: one modeled process, one hardware thread.
namespace {
constexpr int kGuestPid = 1;
constexpr int kGuestTid = 1;
}  // namespace

void Vm::LoadImage(const BinaryImage& image) {
  const uint32_t ordinal = images_loaded_++;
  for (const Section& s : image.sections) {
    memory_.WriteBytes(s.vaddr, s.bytes.data(), s.bytes.size());
    if ((s.kind == Section::Kind::kTrampoline || s.kind == Section::Kind::kInlineCheck) &&
        !s.bytes.empty()) {
      tramp_ranges_.push_back(TrampRange{s.vaddr, s.end_vaddr(), ordinal,
                                         s.kind == Section::Kind::kInlineCheck});
    }
  }
  cpu_ = CpuState{};
  cpu_.rip = image.entry;
  cpu_.Set(Reg::kRsp, kStackTop - 64);
  // New code bytes invalidate every decoded view of memory: the step
  // engine's per-address cache, the superblock cache, and the memory TLB.
  icache_.clear();
  block_cache_.clear();
  memory_.InvalidateTlb();
}

void Vm::set_telemetry(TelemetryRegistry* t) {
  telemetry_ = t;
  tshard_ = t != nullptr ? t->shard() : nullptr;
  h_tramp_visit_ = t != nullptr ? t->histogram("vm.tramp_visit_cycles") : nullptr;
  h_superblock_len_ = t != nullptr ? t->histogram("vm.superblock_len") : nullptr;
  h_malloc_bytes_ = t != nullptr ? t->histogram("heap.malloc_bytes") : nullptr;
  h_live_bytes_ = t != nullptr ? t->histogram("heap.live_bytes") : nullptr;
  h_live_objects_ = t != nullptr ? t->histogram("heap.live_objects") : nullptr;
  h_alloc_lifetime_ = t != nullptr ? t->histogram("heap.alloc_lifetime_cycles") : nullptr;
  h_error_distance_ = t != nullptr ? t->histogram("vm.error_distance") : nullptr;
}

void Vm::set_sampler(SampleProfiler* s) {
  sampler_ = s;
  sampler_next_ = s != nullptr ? instructions_ + s->period() : 0;
}

void Vm::TakeSampleNow() {
  SampleProfiler::Region region = SampleProfiler::Region::kUser;
  if (t_in_tramp_) {
    region = t_inline_ ? SampleProfiler::Region::kInline
                       : SampleProfiler::Region::kTramp;
  }
  sampler_->TakeSample(cpu_.rip, instructions_, cycles_,
                       t_in_tramp_ ? t_image_ : 0, region,
                       t_in_tramp_ && t_have_site_, t_site_);
  sampler_next_ += sampler_->period();
}

bool Vm::InTrampoline(uint64_t addr) const { return TrampImageAt(addr) >= 0; }

int Vm::TrampImageAt(uint64_t addr) const {
  const TrampRange* r = TrampRangeAt(addr);
  return r != nullptr ? static_cast<int>(r->image) : -1;
}

const Vm::TrampRange* Vm::TrampRangeAt(uint64_t addr) const {
  for (const TrampRange& r : tramp_ranges_) {
    if (addr >= r.lo && addr < r.hi) {
      return &r;
    }
  }
  return nullptr;
}

uint32_t Vm::SiteKeyFor(uint32_t site) const {
  // Image 0 (and single-image runs) keeps plain ids. Packing needs the site
  // id to fit below the image bits; oversized ids stay plain rather than
  // alias another image's counters.
  if (t_image_ == 0 || t_image_ >= kMaxKeyedImages || site > kMaxKeyedSite) {
    return site;
  }
  return ImageSiteKey(t_image_, site);
}

void Vm::OnCountSite(uint32_t site) {
  if (t_in_tramp_) {
    // Batched trampolines Count every member site up front, so the last
    // counted site owns the visit's cycles when it flushes.
    t_site_ = site;
    t_have_site_ = true;
  }
  if (tshard_ != nullptr) {
    tshard_->AddSite(SiteKeyFor(site), SiteEvent::kChecks);
  }
}

void Vm::FlushTrampolineVisit() {
  const uint64_t dur = cycles_ - t_entry_cycles_;
  t_in_tramp_ = false;
  (t_inline_ ? t_inline_cycles_ : t_tramp_cycles_) += dur;
  if (h_tramp_visit_ != nullptr && !t_inline_) {
    h_tramp_visit_->Record(dur);
  }
  if (tshard_ != nullptr && t_have_site_) {
    tshard_->AddSite(SiteKeyFor(t_site_),
                     t_inline_ ? SiteEvent::kInlineCycles : SiteEvent::kTrampCycles, dur);
  }
  if (trace_ != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg{"site", t_have_site_ ? t_site_ : ~0ULL});
    if (t_image_ != 0) {
      args.push_back(TraceArg{"image", t_image_});
    }
    if (site_addrs_ != nullptr && t_have_site_) {
      auto it = site_addrs_->find(SiteKeyFor(t_site_));
      if (it != site_addrs_->end()) {
        args.push_back(TraceArg{"site_addr", it->second});
      }
    }
    trace_->Complete(t_inline_ ? "inline" : "tramp", "check", kGuestPid, kGuestTid,
                     static_cast<double>(t_entry_cycles_), static_cast<double>(dur),
                     args);
  }
  t_image_ = 0;
  t_inline_ = false;
}

const Vm::Exec* Vm::FetchDecode(uint64_t addr, std::string* fault) {
  auto it = icache_.find(addr);
  if (it != icache_.end()) {
    return &it->second;
  }
  uint8_t buf[16];
  memory_.ReadBytes(addr, buf, sizeof(buf));
  Result<Decoded> d = Decode(buf, sizeof(buf));
  if (!d.ok()) {
    *fault = StrFormat("fetch at 0x%llx: %s", static_cast<unsigned long long>(addr),
                       d.error().c_str());
    return nullptr;
  }
  Exec ex;
  ex.insn = d.value().insn;
  ex.length = d.value().length;
  auto [pos, inserted] = icache_.emplace(addr, ex);
  (void)inserted;
  return &pos->second;
}

const Vm::Block* Vm::FetchBlock(uint64_t addr, std::string* fault) {
  if (block_cache_.empty()) {
    block_cache_.resize(kBlockCacheSize);
  }
  Block& b = block_cache_[addr & (kBlockCacheSize - 1)];
  if (b.entry == addr) {
    return &b;
  }
  // Direct-mapped: a colliding resident block is simply rebuilt over.
  b.entry = ~uint64_t{0};
  b.execs.clear();
  const TrampRange* entry_range = TrampRangeAt(addr);
  uint64_t cur = addr;
  uint8_t buf[16];
  while (b.execs.size() < kMaxBlockInsns) {
    // Never span a trampoline/inline-region boundary: one range
    // classification at block entry must hold for every instruction in it.
    if (cur != addr && TrampRangeAt(cur) != entry_range) {
      break;
    }
    memory_.ReadBytes(cur, buf, sizeof(buf));
    Result<Decoded> d = Decode(buf, sizeof(buf));
    if (!d.ok()) {
      if (b.execs.empty()) {
        *fault = StrFormat("fetch at 0x%llx: %s", static_cast<unsigned long long>(cur),
                           d.error().c_str());
        return nullptr;
      }
      // End the block cleanly before the undecodable instruction; the next
      // dispatch at its address reproduces the step engine's fetch fault.
      break;
    }
    Exec ex;
    ex.insn = d.value().insn;
    ex.length = d.value().length;
    b.execs.push_back(ex);
    cur += ex.length;
    const Op op = ex.insn.op;
    if (IsControlFlow(op) || op == Op::kHostCall || op == Op::kTrap || op == Op::kHlt) {
      break;  // superblock terminator (kUd2 faults in ExecuteOne instead)
    }
  }
  b.entry = addr;
  return &b;
}

uint64_t Vm::EffectiveAddress(const MemOperand& mem, uint64_t next_rip) const {
  return ComputeEffectiveAddress(cpu_, mem, next_rip);
}

void Vm::SetFlagsLogic(uint64_t result) {
  cpu_.flags.zf = result == 0;
  cpu_.flags.sf = (result >> 63) != 0;
  cpu_.flags.cf = false;
  cpu_.flags.of = false;
}

bool Vm::EvalCond(Cond c) const {
  const Flags& f = cpu_.flags;
  switch (c) {
    case Cond::kEq: return f.zf;
    case Cond::kNe: return !f.zf;
    case Cond::kUlt: return f.cf;
    case Cond::kUle: return f.cf || f.zf;
    case Cond::kUgt: return !f.cf && !f.zf;
    case Cond::kUge: return !f.cf;
    case Cond::kSlt: return f.sf != f.of;
    case Cond::kSle: return f.zf || (f.sf != f.of);
    case Cond::kSgt: return !f.zf && (f.sf == f.of);
    case Cond::kSge: return f.sf == f.of;
  }
  REDFAT_FATAL("bad cond");
}

bool Vm::ReportMemError(uint32_t site, ErrorKind kind) {
  return ReportMemErrorImpl(site, kind, 0, false);
}

bool Vm::ReportMemError(uint32_t site, ErrorKind kind, uint64_t addr) {
  return ReportMemErrorImpl(site, kind, addr, true);
}

bool Vm::ReportMemErrorImpl(uint32_t site, ErrorKind kind, uint64_t addr,
                            bool has_addr) {
  MemErrorReport report{site, kind, cpu_.rip, instructions_};
  report.addr = addr;
  report.has_addr = has_addr;
  mem_errors_.push_back(report);
  if (has_addr && h_error_distance_ != nullptr && heap_obs_ != nullptr) {
    uint64_t distance = 0;
    if (heap_obs_->DistanceTo(addr, &distance)) {
      h_error_distance_->Record(distance);
    }
  }
  if (tshard_ != nullptr) {
    tshard_->AddSite(SiteKeyFor(site), SiteEvent::kRedzoneHits);
  }
  if (trace_ != nullptr) {
    std::vector<TraceArg> args;
    args.push_back(TraceArg{"site", site});
    args.push_back(TraceArg{"kind", static_cast<uint64_t>(kind)});
    if (has_addr) {
      args.push_back(TraceArg{"addr", addr});
    }
    if (t_image_ != 0) {
      args.push_back(TraceArg{"image", t_image_});
    }
    if (site_addrs_ != nullptr) {
      auto it = site_addrs_->find(SiteKeyFor(site));
      if (it != site_addrs_->end()) {
        args.push_back(TraceArg{"site_addr", it->second});
      }
    }
    trace_->Instant("mem_error", "error", kGuestPid, kGuestTid,
                    static_cast<double>(cycles_), args);
  }
  if (policy_ == Policy::kHarden) {
    halt_ = true;
    halt_reason_ = HaltReason::kMemErrorAbort;
    return true;
  }
  return false;
}

bool Vm::DoHostCall(HostFn fn, std::string* fault) {
  const uint64_t a0 = cpu_.Get(Reg::kRdi);
  const uint64_t a1 = cpu_.Get(Reg::kRsi);
  const uint64_t a2 = cpu_.Get(Reg::kRdx);
  const uint64_t hostcall_start = cycles_;
  cycles_ += model_.hostcall_base;
  switch (fn) {
    case HostFn::kExit:
      halt_ = true;
      halt_reason_ = HaltReason::kExit;
      exit_status_ = a0;
      return true;
    case HostFn::kMalloc: {
      if (allocator_ == nullptr) {
        *fault = "hostcall malloc with no allocator bound";
        return false;
      }
      const AllocOutcome out = allocator_->Malloc(memory_, a0);
      cpu_.Set(Reg::kRax, out.ptr);
      cycles_ += out.cycles;
      if ((heap_obs_ != nullptr || h_malloc_bytes_ != nullptr) && out.ptr != 0) {
        live_allocs_[out.ptr] = LiveAlloc{a0, cycles_};
        live_bytes_ += a0;
        if (live_bytes_ > live_bytes_peak_) {
          live_bytes_peak_ = live_bytes_;
        }
        if (h_malloc_bytes_ != nullptr) {
          h_malloc_bytes_->Record(a0);
          h_live_bytes_->Record(live_bytes_);
          h_live_objects_->Record(live_allocs_.size());
        }
        if (heap_obs_ != nullptr) {
          heap_obs_->OnAlloc(out.ptr, a0, cpu_.rip, instructions_, cycles_,
                             CurrentEpoch());
        }
      }
      if (trace_ != nullptr) {
        if (out.ptr != 0) {
          ++t_live_allocs_;
        }
        trace_->Complete("malloc", "alloc", kGuestPid, kGuestTid,
                         static_cast<double>(hostcall_start),
                         static_cast<double>(cycles_ - hostcall_start),
                         {TraceArg{"size", a0}, TraceArg{"ptr", out.ptr}});
        trace_->Counter("heap.live_objects", kGuestPid, static_cast<double>(cycles_),
                        t_live_allocs_);
      }
      return true;
    }
    case HostFn::kFree: {
      if (allocator_ == nullptr) {
        *fault = "hostcall free with no allocator bound";
        return false;
      }
      if (heap_obs_ != nullptr && a0 != 0 &&
          live_allocs_.find(a0) == live_allocs_.end() && heap_obs_->WasFreed(a0)) {
        // Double free: the ring still remembers this exact base as freed and
        // it was never reallocated. Report before touching the allocator —
        // whose own double-free handling is a hard host abort, not a
        // diagnosable guest error — and skip it, so under Policy::kLog the
        // second free becomes a diagnosed no-op.
        ReportMemError(0, ErrorKind::kDoubleFree, a0);
        return true;
      }
      cycles_ += allocator_->Free(memory_, a0);
      if ((heap_obs_ != nullptr || h_malloc_bytes_ != nullptr) && a0 != 0) {
        const auto it = live_allocs_.find(a0);
        if (it != live_allocs_.end()) {
          if (h_alloc_lifetime_ != nullptr) {
            h_alloc_lifetime_->Record(cycles_ - it->second.cycles);
          }
          live_bytes_ -= it->second.size < live_bytes_ ? it->second.size : live_bytes_;
          live_allocs_.erase(it);
          if (h_live_bytes_ != nullptr) {
            h_live_bytes_->Record(live_bytes_);
            h_live_objects_->Record(live_allocs_.size());
          }
        }
        if (heap_obs_ != nullptr) {
          heap_obs_->OnFree(a0, cpu_.rip, instructions_, cycles_, CurrentEpoch());
        }
      }
      if (trace_ != nullptr) {
        if (a0 != 0 && t_live_allocs_ > 0) {
          --t_live_allocs_;
        }
        trace_->Complete("free", "alloc", kGuestPid, kGuestTid,
                         static_cast<double>(hostcall_start),
                         static_cast<double>(cycles_ - hostcall_start),
                         {TraceArg{"ptr", a0}});
        trace_->Counter("heap.live_objects", kGuestPid, static_cast<double>(cycles_),
                        t_live_allocs_);
      }
      return true;
    }
    case HostFn::kMemset:
      memory_.Fill(a0, static_cast<uint8_t>(a1), a2);
      cycles_ += (a2 / 8) * model_.membyte_per8;
      return true;
    case HostFn::kMemcpy: {
      std::vector<uint8_t> buf(a2);
      memory_.ReadBytes(a1, buf.data(), buf.size());
      memory_.WriteBytes(a0, buf.data(), buf.size());
      cycles_ += (a2 / 8) * model_.membyte_per8;
      return true;
    }
    case HostFn::kInputU64:
      cpu_.Set(Reg::kRax, input_pos_ < inputs_.size() ? inputs_[input_pos_++] : 0);
      return true;
    case HostFn::kOutputU64:
      outputs_.push_back(a0);
      return true;
    case HostFn::kRandU64:
      cpu_.Set(Reg::kRax, rng_.Next());
      return true;
    case HostFn::kNumHostFns:
      break;
  }
  *fault = StrFormat("bad hostcall %u", static_cast<unsigned>(fn));
  return false;
}

bool Vm::ExecuteOne(const Exec& ex, std::string* fault) {
  const Instruction& in = ex.insn;
  const uint64_t next_rip = cpu_.rip + ex.length;
  uint64_t new_rip = next_rip;
  Flags& f = cpu_.flags;

  auto do_add = [&](uint64_t a, uint64_t b) {
    const uint64_t r = a + b;
    f.zf = r == 0;
    f.sf = (r >> 63) != 0;
    f.cf = r < a;
    f.of = ((~(a ^ b) & (a ^ r)) >> 63) != 0;
    return r;
  };
  auto do_sub = [&](uint64_t a, uint64_t b) {
    const uint64_t r = a - b;
    f.zf = r == 0;
    f.sf = (r >> 63) != 0;
    f.cf = a < b;
    f.of = (((a ^ b) & (a ^ r)) >> 63) != 0;
    return r;
  };
  const uint64_t imm_se = static_cast<uint64_t>(in.imm);  // already sign-extended

  switch (in.op) {
    case Op::kNop:
      cycles_ += model_.basic;
      break;
    case Op::kHlt:
      halt_ = true;
      halt_reason_ = HaltReason::kHlt;
      return true;
    case Op::kUd2:
      *fault = StrFormat("ud2 at 0x%llx", static_cast<unsigned long long>(cpu_.rip));
      return false;
    case Op::kMovRI:
      cpu_.Set(in.r0, imm_se);
      cycles_ += model_.basic;
      break;
    case Op::kMovRR:
      cpu_.Set(in.r0, cpu_.Get(in.r1));
      cycles_ += model_.basic;
      break;
    case Op::kLoad: {
      const uint64_t addr = EffectiveAddress(in.mem, next_rip);
      cpu_.Set(in.r0, memory_.Read(addr, in.mem.access_size()));
      ++explicit_reads_;
      cycles_ += model_.mem;
      break;
    }
    case Op::kStoreR: {
      const uint64_t addr = EffectiveAddress(in.mem, next_rip);
      memory_.Write(addr, cpu_.Get(in.r0), in.mem.access_size());
      ++explicit_writes_;
      cycles_ += model_.mem;
      break;
    }
    case Op::kStoreI: {
      const uint64_t addr = EffectiveAddress(in.mem, next_rip);
      memory_.Write(addr, imm_se, in.mem.access_size());
      ++explicit_writes_;
      cycles_ += model_.mem;
      break;
    }
    case Op::kLea:
      cpu_.Set(in.r0, EffectiveAddress(in.mem, next_rip));
      cycles_ += model_.basic;
      break;
    case Op::kAddRR:
      cpu_.Set(in.r0, do_add(cpu_.Get(in.r0), cpu_.Get(in.r1)));
      cycles_ += model_.basic;
      break;
    case Op::kAddRI:
      cpu_.Set(in.r0, do_add(cpu_.Get(in.r0), imm_se));
      cycles_ += model_.basic;
      break;
    case Op::kSubRR:
      cpu_.Set(in.r0, do_sub(cpu_.Get(in.r0), cpu_.Get(in.r1)));
      cycles_ += model_.basic;
      break;
    case Op::kSubRI:
      cpu_.Set(in.r0, do_sub(cpu_.Get(in.r0), imm_se));
      cycles_ += model_.basic;
      break;
    case Op::kImulRR: {
      const uint64_t r = cpu_.Get(in.r0) * cpu_.Get(in.r1);
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.mul;
      break;
    }
    case Op::kImulRI: {
      const uint64_t r = cpu_.Get(in.r0) * imm_se;
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.mul;
      break;
    }
    case Op::kMulhRR: {
      const uint64_t r = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(cpu_.Get(in.r0)) *
           static_cast<unsigned __int128>(cpu_.Get(in.r1))) >> 64);
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.mul;
      break;
    }
    case Op::kAndRR: case Op::kAndRI:
    case Op::kOrRR: case Op::kOrRI:
    case Op::kXorRR: case Op::kXorRI: {
      const uint64_t b = (in.op == Op::kAndRR || in.op == Op::kOrRR || in.op == Op::kXorRR)
                             ? cpu_.Get(in.r1)
                             : imm_se;
      uint64_t r = cpu_.Get(in.r0);
      if (in.op == Op::kAndRR || in.op == Op::kAndRI) {
        r &= b;
      } else if (in.op == Op::kOrRR || in.op == Op::kOrRI) {
        r |= b;
      } else {
        r ^= b;
      }
      cpu_.Set(in.r0, r);
      SetFlagsLogic(r);
      cycles_ += model_.basic;
      break;
    }
    case Op::kShlRI: case Op::kShrRI: case Op::kSarRI:
    case Op::kShlRR: case Op::kShrRR: {
      const unsigned c = static_cast<unsigned>(
          (in.op == Op::kShlRR || in.op == Op::kShrRR) ? (cpu_.Get(in.r1) & 63)
                                                        : (in.imm & 63));
      cycles_ += model_.basic;
      if (c == 0) {
        break;  // x86: zero shift leaves flags unchanged
      }
      uint64_t a = cpu_.Get(in.r0);
      uint64_t r;
      bool carry;
      if (in.op == Op::kShlRI || in.op == Op::kShlRR) {
        carry = ((a >> (64 - c)) & 1) != 0;
        r = a << c;
      } else if (in.op == Op::kSarRI) {
        carry = ((a >> (c - 1)) & 1) != 0;
        r = static_cast<uint64_t>(static_cast<int64_t>(a) >> c);
      } else {
        carry = ((a >> (c - 1)) & 1) != 0;
        r = a >> c;
      }
      cpu_.Set(in.r0, r);
      f.zf = r == 0;
      f.sf = (r >> 63) != 0;
      f.cf = carry;
      f.of = false;
      break;
    }
    case Op::kCmpRR:
      (void)do_sub(cpu_.Get(in.r0), cpu_.Get(in.r1));
      cycles_ += model_.basic;
      break;
    case Op::kCmpRI:
      (void)do_sub(cpu_.Get(in.r0), imm_se);
      cycles_ += model_.basic;
      break;
    case Op::kTestRR:
      SetFlagsLogic(cpu_.Get(in.r0) & cpu_.Get(in.r1));
      cycles_ += model_.basic;
      break;
    case Op::kJmp:
      new_rip = next_rip + imm_se;
      cycles_ += model_.branch;
      break;
    case Op::kJmpR:
      new_rip = cpu_.Get(in.r0);
      cycles_ += model_.call_ret;
      break;
    case Op::kJcc:
      if (EvalCond(in.cond)) {
        new_rip = next_rip + imm_se;
      }
      cycles_ += model_.branch;
      break;
    case Op::kCall: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, next_rip);
      new_rip = next_rip + imm_se;
      cycles_ += model_.call_ret;
      break;
    }
    case Op::kCallR: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, next_rip);
      new_rip = cpu_.Get(in.r0);
      cycles_ += model_.call_ret;
      break;
    }
    case Op::kRet: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp);
      new_rip = memory_.ReadU64(rsp);
      cpu_.Set(Reg::kRsp, rsp + 8);
      cycles_ += model_.call_ret;
      break;
    }
    case Op::kPush: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, cpu_.Get(in.r0));
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kPop: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp);
      cpu_.Set(in.r0, memory_.ReadU64(rsp));
      cpu_.Set(Reg::kRsp, rsp + 8);
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kPushf: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp) - 8;
      cpu_.Set(Reg::kRsp, rsp);
      memory_.WriteU64(rsp, f.Pack());
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kPopf: {
      const uint64_t rsp = cpu_.Get(Reg::kRsp);
      f.Unpack(memory_.ReadU64(rsp));
      cpu_.Set(Reg::kRsp, rsp + 8);
      cycles_ += model_.push_pop;
      break;
    }
    case Op::kHostCall:
      if (!DoHostCall(static_cast<HostFn>(in.imm), fault)) {
        return false;
      }
      if (halt_) {
        return true;
      }
      break;
    case Op::kTrap: {
      const uint8_t code = static_cast<uint8_t>(in.imm & 0xff);
      const uint32_t arg = static_cast<uint32_t>(static_cast<uint64_t>(in.imm) >> 8);
      switch (static_cast<TrapCode>(code)) {
        case TrapCode::kMemError: {
          const bool has_addr = pending_err_has_addr_;
          const uint64_t addr = pending_err_addr_;
          pending_err_has_addr_ = false;
          const bool abort =
              has_addr ? ReportMemError(ErrorArgSite(arg), ErrorArgKind(arg), addr)
                       : ReportMemError(ErrorArgSite(arg), ErrorArgKind(arg));
          if (abort) {
            return true;
          }
          break;
        }
        case TrapCode::kErrAddr:
          pending_err_addr_ = cpu_.Get(static_cast<Reg>(arg));
          pending_err_has_addr_ = true;
          break;
        case TrapCode::kProfPass:
          ++prof_counts_[arg].passes;
          if (tshard_ != nullptr) {
            tshard_->AddSite(arg, SiteEvent::kLowFatPasses);
          }
          break;
        case TrapCode::kProfFail:
          ++prof_counts_[arg].fails;
          if (tshard_ != nullptr) {
            tshard_->AddSite(arg, SiteEvent::kLowFatFails);
          }
          break;
        case TrapCode::kAssertFail:
          halt_ = true;
          halt_reason_ = HaltReason::kAssertFail;
          exit_status_ = arg;
          return true;
        default:
          *fault = StrFormat("bad trap code %u", code);
          return false;
      }
      break;
    }
    case Op::kCount:
      ++counters_[static_cast<uint32_t>(in.imm)];
      if (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) {
        OnCountSite(static_cast<uint32_t>(in.imm));
      }
      break;  // zero cycles: measurement only
    case Op::kInvalid:
    case Op::kNumOps:
      *fault = "invalid opcode";
      return false;
  }
  cpu_.rip = new_rip;
  return true;
}

void Vm::RunStepLoop(RunResult* res) {
  std::string fault;
  // Trampoline-visit tracking is only worth per-instruction work when a sink
  // is attached AND the loaded image actually has trampoline code. The
  // sampler counts as a sink: sample attribution reads the t_* visit state.
  const bool track_tramp =
      (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) &&
      !tramp_ranges_.empty();
  const bool track_sb = h_superblock_len_ != nullptr;
  while (!halt_) {
    if (instructions_ >= instruction_limit_) {
      halt_reason_ = HaltReason::kInstrLimit;
      break;
    }
    if (track_tramp) {
      const TrampRange* range = TrampRangeAt(cpu_.rip);
      const bool now = range != nullptr;
      // A visit also closes when rip crosses directly between ranges with a
      // different attribution (trampoline vs inline region, or another
      // image) — each visit's cycles must land on exactly one bucket.
      if (now != t_in_tramp_ ||
          (now && (range->inline_region != t_inline_ || range->image != t_image_))) {
        if (t_in_tramp_) {
          FlushTrampolineVisit();
        }
        if (now) {
          t_in_tramp_ = true;
          t_inline_ = range->inline_region;
          t_image_ = range->image;
          t_entry_cycles_ = cycles_;
          t_have_site_ = false;
        }
      }
    }
    const Exec* ex = FetchDecode(cpu_.rip, &fault);
    if (ex == nullptr) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    if (observer_ != nullptr) {
      cycles_ += observer_->OnInstruction(*this, cpu_.rip, ex->insn);
      if (halt_) {
        break;  // observer reported a fatal memory error (Policy::kHarden)
      }
    }
    ++instructions_;
    if (!ExecuteOne(*ex, &fault)) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    if (track_sb) {
      ++sb_run_len_;
      if (IsControlFlow(ex->insn.op)) {
        h_superblock_len_->Record(sb_run_len_);
        sb_run_len_ = 0;
      }
    }
    if (sampler_ != nullptr && instructions_ == sampler_next_) {
      TakeSampleNow();
    }
    if (epoch_every_ != 0 && instructions_ == epoch_next_) {
      epoch_hook_();
      epoch_next_ += epoch_every_;
    }
  }
}

void Vm::RunBlockLoop(RunResult* res) {
  std::string fault;
  const bool track_tramp =
      (tshard_ != nullptr || trace_ != nullptr || sampler_ != nullptr) &&
      !tramp_ranges_.empty();
  const bool track_sb = h_superblock_len_ != nullptr;
  while (!halt_) {
    if (instructions_ >= instruction_limit_) {
      halt_reason_ = HaltReason::kInstrLimit;
      break;
    }
    if (track_tramp) {
      // Blocks never span a trampoline/inline-region boundary and end at
      // every control transfer, so rip's range can only change at a block
      // entry: one classification here is exactly equivalent to the step
      // engine's per-instruction check.
      const TrampRange* range = TrampRangeAt(cpu_.rip);
      const bool now = range != nullptr;
      if (now != t_in_tramp_ ||
          (now && (range->inline_region != t_inline_ || range->image != t_image_))) {
        if (t_in_tramp_) {
          FlushTrampolineVisit();
        }
        if (now) {
          t_in_tramp_ = true;
          t_inline_ = range->inline_region;
          t_image_ = range->image;
          t_entry_cycles_ = cycles_;
          t_have_site_ = false;
        }
      }
    }
    const Block* block = FetchBlock(cpu_.rip, &fault);
    if (block == nullptr) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    // Cap the dispatch count so the instruction limit and any epoch or
    // sample boundary halt at the exact same instruction as under the step
    // engine; the block's tail re-enters through FetchBlock (as a fresh tail
    // block) on the next iteration.
    uint64_t stop_at = instruction_limit_;
    if (epoch_every_ != 0 && epoch_next_ < stop_at) {
      stop_at = epoch_next_;
    }
    if (sampler_ != nullptr && sampler_next_ < stop_at) {
      stop_at = sampler_next_;
    }
    const uint64_t budget = stop_at - instructions_;
    const size_t n = budget < block->execs.size() ? static_cast<size_t>(budget)
                                                  : block->execs.size();
    bool faulted = false;
    size_t executed = 0;
    if (observer_ == nullptr) {
      // Hot path: dispatch the decoded run back to back.
      for (size_t i = 0; i < n; ++i) {
        ++instructions_;
        if (!ExecuteOne(block->execs[i], &fault)) {
          faulted = true;
          break;
        }
        ++executed;
        if (halt_) {
          break;
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        cycles_ += observer_->OnInstruction(*this, cpu_.rip, block->execs[i].insn);
        if (halt_) {
          break;  // observer reported a fatal memory error (Policy::kHarden)
        }
        ++instructions_;
        if (!ExecuteOne(block->execs[i], &fault)) {
          faulted = true;
          break;
        }
        ++executed;
        if (halt_) {
          break;
        }
      }
    }
    if (track_sb && executed > 0) {
      // Control flow only ever terminates a block, so the executed prefix is
      // straight-line except possibly its last instruction: one length check
      // here is exactly equivalent to the step engine's per-insn check.
      sb_run_len_ += executed;
      if (IsControlFlow(block->execs[executed - 1].insn.op)) {
        h_superblock_len_->Record(sb_run_len_);
        sb_run_len_ = 0;
      }
    }
    if (faulted) {
      halt_reason_ = HaltReason::kFault;
      res->fault_message = fault;
      break;
    }
    if (sampler_ != nullptr && instructions_ == sampler_next_) {
      TakeSampleNow();
    }
    if (epoch_every_ != 0 && instructions_ == epoch_next_) {
      epoch_hook_();
      epoch_next_ += epoch_every_;
    }
  }
}

RunResult Vm::Run() {
  halt_ = false;
  RunResult res;
  if (engine_ == VmEngine::kBlock) {
    RunBlockLoop(&res);
  } else {
    RunStepLoop(&res);
  }
  if (t_in_tramp_) {
    FlushTrampolineVisit();  // run ended (halt/fault/limit) inside a trampoline
  }
  if (telemetry_ != nullptr && t_tramp_cycles_ > t_tramp_reported_) {
    telemetry_->AddCounter("vm.trampoline_cycles", t_tramp_cycles_ - t_tramp_reported_);
    t_tramp_reported_ = t_tramp_cycles_;
  }
  if (telemetry_ != nullptr && t_inline_cycles_ > t_inline_reported_) {
    telemetry_->AddCounter("vm.inline_check_cycles", t_inline_cycles_ - t_inline_reported_);
    t_inline_reported_ = t_inline_cycles_;
  }
  res.reason = halt_reason_;
  res.exit_status = exit_status_;
  res.instructions = instructions_;
  res.cycles = cycles_;
  res.explicit_reads = explicit_reads_;
  res.explicit_writes = explicit_writes_;
  return res;
}

}  // namespace redfat
