// ASAN/Memcheck-style shadow memory (paper §2.1).
//
// Tracks one state byte per 8-byte granule of guest address space:
//
//     state_shadow(ptr) = *(SHADOW_MAP + ptr/8)
//
// Used by the Memcheck-like DBI baseline. Untracked memory (stack, globals,
// code) is kDefault, which redzone-only checking treats as accessible —
// matching Memcheck's behavior of only poisoning heap redzones and freed
// blocks.
#ifndef REDFAT_SRC_SHADOW_SHADOW_MAP_H_
#define REDFAT_SRC_SHADOW_SHADOW_MAP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace redfat {

enum class ShadowState : uint8_t {
  kDefault = 0,  // untracked (non-heap): access allowed
  kAllocated = 1,
  kRedzone = 2,
  kFree = 3,
};

class ShadowMap {
 public:
  // Marks [addr, addr+size) with `state`, at 8-byte granularity. Partial
  // granules at the edges are marked whole (conservative toward detection,
  // like ASAN's 8-byte shadow without the partial-granule encoding).
  void Mark(uint64_t addr, uint64_t size, ShadowState state);

  ShadowState Query(uint64_t addr) const;

  // Strongest "bad" state over an access of `len` bytes at `addr`:
  // returns the first non-kDefault, non-kAllocated state found, else the
  // last state seen (kAllocated or kDefault).
  ShadowState QueryRange(uint64_t addr, unsigned len) const;

  size_t TouchedChunks() const { return chunks_.size(); }

 private:
  // One chunk covers 4096 granules = 32 KiB of guest address space.
  static constexpr unsigned kChunkShift = 12;
  static constexpr uint64_t kChunkGranules = uint64_t{1} << kChunkShift;
  using Chunk = std::array<uint8_t, kChunkGranules>;

  std::unordered_map<uint64_t, std::unique_ptr<Chunk>> chunks_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SHADOW_SHADOW_MAP_H_
