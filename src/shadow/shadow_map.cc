#include "src/shadow/shadow_map.h"

namespace redfat {

void ShadowMap::Mark(uint64_t addr, uint64_t size, ShadowState state) {
  if (size == 0) {
    return;
  }
  const uint64_t first = addr >> 3;
  const uint64_t last = (addr + size - 1) >> 3;
  for (uint64_t g = first; g <= last; ++g) {
    std::unique_ptr<Chunk>& c = chunks_[g >> kChunkShift];
    if (!c) {
      c = std::make_unique<Chunk>();
      c->fill(0);
    }
    (*c)[g & (kChunkGranules - 1)] = static_cast<uint8_t>(state);
  }
}

ShadowState ShadowMap::Query(uint64_t addr) const {
  const uint64_t g = addr >> 3;
  auto it = chunks_.find(g >> kChunkShift);
  if (it == chunks_.end()) {
    return ShadowState::kDefault;
  }
  return static_cast<ShadowState>((*it->second)[g & (kChunkGranules - 1)]);
}

ShadowState ShadowMap::QueryRange(uint64_t addr, unsigned len) const {
  if (len == 0) {
    len = 1;
  }
  ShadowState last = ShadowState::kDefault;
  const uint64_t first = addr >> 3;
  const uint64_t last_g = (addr + len - 1) >> 3;
  for (uint64_t g = first; g <= last_g; ++g) {
    const ShadowState s = Query(g << 3);
    if (s == ShadowState::kRedzone || s == ShadowState::kFree) {
      return s;
    }
    last = s;
  }
  return last;
}

}  // namespace redfat
