// Stripped binary image format ("RFBIN").
//
// The moral equivalent of a stripped ELF executable: named-less sections of
// raw bytes at fixed virtual addresses plus an entry point. No symbols, no
// types, no relocations — the rewriter gets exactly what a stripped COTS
// binary would give it.
#ifndef REDFAT_SRC_BIN_IMAGE_H_
#define REDFAT_SRC_BIN_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/support/result.h"

namespace redfat {

struct Section {
  enum class Kind : uint8_t {
    kText = 0,        // executable code, subject to instrumentation
    kData = 1,        // initialized data
    kTrampoline = 2,  // executable code added by a rewriter (never re-instrumented)
    kInlineCheck = 3, // rewriter code for hot-tier (inlined) checks
  };

  Kind kind = Kind::kText;
  uint64_t vaddr = 0;
  std::vector<uint8_t> bytes;

  uint64_t end_vaddr() const { return vaddr + bytes.size(); }
  bool Contains(uint64_t addr) const { return addr >= vaddr && addr < end_vaddr(); }
};

struct BinaryImage {
  uint64_t entry = 0;
  std::vector<Section> sections;

  // First section of the given kind, or nullptr.
  const Section* FindSection(Section::Kind kind) const;
  Section* FindSection(Section::Kind kind);

  // Total bytes across all sections (the "binary size").
  uint64_t TotalBytes() const;

  std::vector<uint8_t> Serialize() const;
  static Result<BinaryImage> Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace redfat

#endif  // REDFAT_SRC_BIN_IMAGE_H_
