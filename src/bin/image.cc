#include "src/bin/image.h"

#include <cstring>

#include "src/support/str.h"

namespace redfat {

namespace {

constexpr char kMagic[8] = {'R', 'F', 'B', 'I', 'N', '0', '1', '\0'};

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU64(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (in.size() - *pos < 8) {
    return false;
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

}  // namespace

const Section* BinaryImage::FindSection(Section::Kind kind) const {
  for (const Section& s : sections) {
    if (s.kind == kind) {
      return &s;
    }
  }
  return nullptr;
}

Section* BinaryImage::FindSection(Section::Kind kind) {
  for (Section& s : sections) {
    if (s.kind == kind) {
      return &s;
    }
  }
  return nullptr;
}

uint64_t BinaryImage::TotalBytes() const {
  uint64_t total = 0;
  for (const Section& s : sections) {
    total += s.bytes.size();
  }
  return total;
}

std::vector<uint8_t> BinaryImage::Serialize() const {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  PutU64(&out, entry);
  PutU64(&out, sections.size());
  for (const Section& s : sections) {
    out.push_back(static_cast<uint8_t>(s.kind));
    PutU64(&out, s.vaddr);
    PutU64(&out, s.bytes.size());
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  return out;
}

Result<BinaryImage> BinaryImage::Deserialize(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < sizeof(kMagic) || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error("image: bad magic");
  }
  size_t pos = sizeof(kMagic);
  BinaryImage img;
  uint64_t num_sections = 0;
  if (!GetU64(bytes, &pos, &img.entry) || !GetU64(bytes, &pos, &num_sections)) {
    return Error("image: truncated header");
  }
  if (num_sections > 1024) {
    return Error("image: implausible section count");
  }
  for (uint64_t i = 0; i < num_sections; ++i) {
    if (pos >= bytes.size()) {
      return Error("image: truncated section header");
    }
    Section s;
    const uint8_t kind = bytes[pos++];
    if (kind > static_cast<uint8_t>(Section::Kind::kInlineCheck)) {
      return Error(StrFormat("image: bad section kind %u", kind));
    }
    s.kind = static_cast<Section::Kind>(kind);
    uint64_t size = 0;
    if (!GetU64(bytes, &pos, &s.vaddr) || !GetU64(bytes, &pos, &size)) {
      return Error("image: truncated section header");
    }
    if (bytes.size() - pos < size) {
      return Error("image: truncated section body");
    }
    s.bytes.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
                   bytes.begin() + static_cast<ptrdiff_t>(pos + size));
    pos += size;
    img.sections.push_back(std::move(s));
  }
  return img;
}

}  // namespace redfat
