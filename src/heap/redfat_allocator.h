// libredfat: the hardened allocator (paper §4.1, Fig. 3).
//
// A wrapper over the low-fat allocator that transparently prepends a
// 16-byte redzone to every object:
//
//     malloc(SIZE) = lowfat_malloc(SIZE + 16) + 16
//
// The redzone doubles as shadow storage for the object's state/size
// metadata: [slot] holds the malloc SIZE as a u64, with SIZE == 0 encoding
// the Free state (the state/size merge described in §4.2 "Mergeable code").
// The second redzone word is the low-fat heap's in-guest freelist link.
// Because the redzone at the start of the *next* slot ends the current
// object, no trailing redzone is needed.
//
// Allocations larger than the biggest low-fat class fall back to the legacy
// heap; such objects are non-fat and are passed over by the checks, exactly
// like the LowFat runtime's legacy-malloc fallback. Region exhaustion also
// falls back, but is counted separately (exhausted_fallbacks) so the
// harness can tell resource pressure from by-design huge objects.
//
// The optional hardening features (RheapOptions, DESIGN.md §4.14):
// prot-freelist surfaces tampered links and invalid frees as
// ErrorKind::kFreelistCorruption / kDoubleFree outcomes; guard-memcpy
// implements GuardRange over the redzone metadata; random / quarantine=N
// configure the low-fat heap.
#ifndef REDFAT_SRC_HEAP_REDFAT_ALLOCATOR_H_
#define REDFAT_SRC_HEAP_REDFAT_ALLOCATOR_H_

#include <cstdint>

#include "src/heap/cost_model.h"
#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/rheap.h"
#include "src/vm/allocator.h"

namespace redfat {

struct RedFatAllocatorStats {
  uint64_t fallback_allocs = 0;    // total legacy-heap fallbacks
  uint64_t exhausted_fallbacks = 0;  // ... of which due to region exhaustion
  uint64_t guard_checks = 0;
  uint64_t guard_violations = 0;
  uint64_t guard_cycles = 0;
};

class RedFatAllocator : public GuestAllocator {
 public:
  explicit RedFatAllocator(const RheapOptions& opts) : opts_(opts), lowfat_(opts) {}
  explicit RedFatAllocator(unsigned quarantine_slots = 64)
      : RedFatAllocator([quarantine_slots] {
          RheapOptions o;
          o.quarantine_slots = quarantine_slots;
          return o;
        }()) {}

  AllocOutcome Malloc(Memory& mem, uint64_t size) override;
  FreeOutcome Free(Memory& mem, uint64_t ptr) override;
  GuardOutcome GuardRange(Memory& mem, uint64_t addr, uint64_t len) override;
  const char* name() const override { return "libredfat"; }

  // Optional probabilistic defense layered on top of the deterministic
  // checks (paper §8): randomized slot placement and reuse order.
  void EnableHeapRandomization(uint64_t seed) { lowfat_.EnableRandomization(seed); }

  const RheapOptions& options() const { return opts_; }
  const LowFatHeapStats& lowfat_stats() const { return lowfat_.stats(); }
  const RedFatAllocatorStats& redfat_stats() const { return stats_; }
  uint64_t fallback_allocs() const { return stats_.fallback_allocs; }

 private:
  RheapOptions opts_;
  LowFatHeap lowfat_;
  LegacyHeap legacy_;
  RedFatAllocatorStats stats_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_REDFAT_ALLOCATOR_H_
