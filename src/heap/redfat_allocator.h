// libredfat: the hardened allocator (paper §4.1, Fig. 3).
//
// A wrapper over the low-fat allocator that transparently prepends a
// 16-byte redzone to every object:
//
//     malloc(SIZE) = lowfat_malloc(SIZE + 16) + 16
//
// The redzone doubles as shadow storage for the object's state/size
// metadata: [slot] holds the malloc SIZE as a u64, with SIZE == 0 encoding
// the Free state (the state/size merge described in §4.2 "Mergeable code").
// Because the redzone at the start of the *next* slot ends the current
// object, no trailing redzone is needed.
//
// Allocations larger than the biggest low-fat class fall back to the legacy
// heap; such objects are non-fat and are passed over by the checks, exactly
// like the LowFat runtime's legacy-malloc fallback.
#ifndef REDFAT_SRC_HEAP_REDFAT_ALLOCATOR_H_
#define REDFAT_SRC_HEAP_REDFAT_ALLOCATOR_H_

#include <cstdint>

#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/vm/allocator.h"

namespace redfat {

// Extra modeled cost of the redzone wrapper (metadata write) per call.
inline constexpr uint64_t kRedzoneWrapperCycles = 5;

class RedFatAllocator : public GuestAllocator {
 public:
  explicit RedFatAllocator(unsigned quarantine_slots = 64)
      : lowfat_(quarantine_slots) {}

  AllocOutcome Malloc(Memory& mem, uint64_t size) override;
  uint64_t Free(Memory& mem, uint64_t ptr) override;
  const char* name() const override { return "libredfat"; }

  // Optional probabilistic defense layered on top of the deterministic
  // checks (paper §8): randomized slot placement and reuse order.
  void EnableHeapRandomization(uint64_t seed) { lowfat_.EnableRandomization(seed); }

  const LowFatHeapStats& lowfat_stats() const { return lowfat_.stats(); }
  uint64_t fallback_allocs() const { return fallback_allocs_; }

 private:
  LowFatHeap lowfat_;
  LegacyHeap legacy_;
  uint64_t fallback_allocs_ = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_REDFAT_ALLOCATOR_H_
