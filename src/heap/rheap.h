// rheap hardening-feature options (ROADMAP: snmalloc-grade allocator
// hardening; snmalloc docs/security/).
//
// Each feature is orthogonal to the redzone+lowfat checks and is priced
// separately by bench_heap_throughput / bench_ablation_allocator:
//
//   prot-freelist  obfuscate in-guest freelist links and validate them on
//                  every pop; forged/corrupted links raise
//                  ErrorKind::kFreelistCorruption instead of being followed.
//   guard-memcpy   pre-check guest memcpy/memset ranges against allocator
//                  metadata (redzone overlap, freed object, length overflow).
//   random         randomized slot placement and reuse order (probabilistic
//                  defense; detection guarantees unchanged).
//   quarantine=N   delay slot reuse by N frees per size class (0 disables).
//
// The canonical spelling is the CLI list `--rheap=prot-freelist,guard-
// memcpy,random,quarantine=N` (or `none`). Policy tiers map to defaults in
// src/core/policy.h: fast = perf-only, extensive = +prot-freelist,
// debug = everything.
#ifndef REDFAT_SRC_HEAP_RHEAP_H_
#define REDFAT_SRC_HEAP_RHEAP_H_

#include <cstdint>
#include <string>

#include "src/support/result.h"

namespace redfat {

struct RheapOptions {
  bool prot_freelist = false;
  bool guard_memcpy = false;
  bool random = false;
  // Per-size-class quarantine depth. The default matches the historical
  // allocator constructor default; an explicit --rheap list overrides it.
  unsigned quarantine_slots = 64;
  // Seed for `random` (placement + reuse order). Harness runs derive it
  // from the run's rng_seed so randomized layouts are reproducible.
  uint64_t random_seed = 0x5eed;

  bool any_hardening() const { return prot_freelist || guard_memcpy || random; }

  bool operator==(const RheapOptions& o) const {
    return prot_freelist == o.prot_freelist && guard_memcpy == o.guard_memcpy &&
           random == o.random && quarantine_slots == o.quarantine_slots;
  }
  bool operator!=(const RheapOptions& o) const { return !(*this == o); }
};

// Parses a --rheap feature list ("prot-freelist,quarantine=8", "none", ...).
// An explicit list is absolute: parsing starts from all-features-off with
// quarantine=0, so `--rheap=prot-freelist` means *only* prot-freelist.
// `none` must appear alone. random_seed is left at its default; callers
// reseed from their run configuration.
Result<RheapOptions> ParseRheapList(const std::string& list);

// Canonical list form ("none" when everything incl. quarantine is off).
// Round-trips through ParseRheapList; used for the sitemap `# rheap:` header
// and reports.
std::string RheapListName(const RheapOptions& opts);

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_RHEAP_H_
