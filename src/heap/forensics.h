// Allocation/free provenance for memory-error forensics (the triage layer
// over the paper's detection machinery): a table of live objects plus a
// bounded FIFO ring of recently-freed ones, each stamped with the guest PC,
// instruction index, cycle and metrics epoch of its birth and death.
//
// The VM feeds events from the malloc/free host calls when a ring is
// attached (rfrun --error-report); a detected OOB/UAF/double-free report is
// then joined against the ring so the error message can say which object
// was hit, where it was allocated, and — for UAFs — where it died.
//
// Sizing/eviction: the live table is bounded by the guest's live heap (one
// entry per live allocation, exact — frees need it). The freed ring keeps
// the most recent `capacity` frees and evicts FIFO; evictions are counted,
// never silent, so "no provenance found" can be distinguished from
// "provenance aged out".
#ifndef REDFAT_SRC_HEAP_FORENSICS_H_
#define REDFAT_SRC_HEAP_FORENSICS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>

#include "src/vm/vm.h"

namespace redfat {

// One object's birth (and, once freed, death) provenance.
struct AllocProvenance {
  uint64_t ptr = 0;
  uint64_t size = 0;
  uint64_t alloc_pc = 0;           // guest rip of the malloc host call
  uint64_t alloc_instruction = 0;  // instruction index at allocation
  uint64_t alloc_cycles = 0;
  uint64_t alloc_epoch = 0;        // --metrics-epoch ordinal (0 when unused)
  bool freed = false;
  uint64_t free_pc = 0;
  uint64_t free_instruction = 0;
  uint64_t free_cycles = 0;
  uint64_t free_epoch = 0;
};

class ForensicRing : public HeapObserver {
 public:
  static constexpr size_t kDefaultCapacity = 1024;  // freed-ring bound

  explicit ForensicRing(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // HeapObserver: fed by the VM's malloc/free host calls.
  void OnAlloc(uint64_t ptr, uint64_t size, uint64_t pc, uint64_t instruction,
               uint64_t cycles, uint64_t epoch) override;
  void OnFree(uint64_t ptr, uint64_t pc, uint64_t instruction, uint64_t cycles,
              uint64_t epoch) override;
  bool WasFreed(uint64_t ptr) const override { return FreedAt(ptr) != nullptr; }
  bool DistanceTo(uint64_t addr, uint64_t* distance) const override {
    const Proximity p = Nearest(addr);
    if (p.object == nullptr) {
      return false;
    }
    *distance = p.distance;
    return true;
  }

  // The live object whose [ptr, ptr+size) contains `addr`, or null.
  const AllocProvenance* FindLive(uint64_t addr) const;
  // The most recently freed object containing `addr` still in the ring, or
  // null (evicted or never tracked).
  const AllocProvenance* FindFreed(uint64_t addr) const;
  // Exact-base-pointer variant of FindFreed: non-null means `ptr` was freed
  // and not reallocated since — the double-free witness.
  const AllocProvenance* FreedAt(uint64_t ptr) const;

  // Distance diagnostics for OOB reports: how far `addr` is from the nearest
  // tracked object's payload. `distance` is 0 when addr is inside a tracked
  // object, otherwise the gap in bytes to the closest payload edge;
  // `past_end` says the miss was above the object (the classic off-by-N).
  struct Proximity {
    const AllocProvenance* object = nullptr;
    uint64_t distance = 0;
    bool past_end = false;
  };
  Proximity Nearest(uint64_t addr) const;

  size_t live_count() const { return live_.size(); }
  size_t freed_count() const { return freed_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evicted() const { return evicted_; }
  const std::map<uint64_t, AllocProvenance>& live() const { return live_; }
  const std::deque<AllocProvenance>& freed() const { return freed_; }

 private:
  size_t capacity_;
  std::map<uint64_t, AllocProvenance> live_;  // keyed by base pointer
  std::deque<AllocProvenance> freed_;         // oldest first; bounded
  uint64_t evicted_ = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_FORENSICS_H_
