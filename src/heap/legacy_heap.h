// A glibc-like guest allocator.
//
// Serves three roles:
//   * the allocator bound for *uninstrumented baseline* runs (plain malloc);
//   * the fallback for allocations larger than the biggest low-fat size
//     class (such objects become non-fat and lose low-fat protection, as in
//     the paper's LowFat runtime);
//   * the foundation of the Memcheck-style baseline allocator (dbi module).
//
// Layout per chunk (all in the non-fat legacy region):
//     [size u64][pad u64][payload ...]     returned ptr = chunk + 16
#ifndef REDFAT_SRC_HEAP_LEGACY_HEAP_H_
#define REDFAT_SRC_HEAP_LEGACY_HEAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/heap/cost_model.h"
#include "src/isa/abi.h"
#include "src/vm/allocator.h"
#include "src/vm/memory.h"

namespace redfat {

class LegacyHeap {
 public:
  // `padding` adds extra bytes before and after each payload (used by the
  // Memcheck-style allocator to make room for redzones).
  explicit LegacyHeap(uint64_t padding = 0) : padding_(padding) {}

  // Returns the payload pointer, or 0 on exhaustion.
  uint64_t Alloc(Memory& mem, uint64_t size);
  // `ptr` must be a payload pointer returned by Alloc.
  void Free(uint64_t ptr);
  // Payload size recorded at allocation; CHECK-fails for unknown pointers.
  uint64_t SizeOf(Memory& mem, uint64_t ptr) const;
  // Was this pointer handed out (and not yet freed)?
  bool IsLive(uint64_t ptr) const { return live_.count(ptr) != 0; }

 private:
  uint64_t padding_;
  uint64_t bump_ = kLegacyHeapBase + 64;
  std::unordered_map<uint64_t, std::vector<uint64_t>> free_lists_;  // by chunk size
  std::unordered_map<uint64_t, uint64_t> live_;  // payload ptr -> chunk size
};

// GuestAllocator binding for baseline (uninstrumented) runs.
class GlibcLikeAllocator : public GuestAllocator {
 public:
  AllocOutcome Malloc(Memory& mem, uint64_t size) override {
    AllocOutcome out;
    out.ptr = heap_.Alloc(mem, size);
    out.cycles = heapcost::kLegacyMalloc;
    return out;
  }
  FreeOutcome Free(Memory& mem, uint64_t ptr) override {
    (void)mem;
    if (ptr != 0) {
      heap_.Free(ptr);
    }
    return FreeOutcome{heapcost::kLegacyFree};
  }
  const char* name() const override { return "glibc-like"; }

  LegacyHeap& heap() { return heap_; }

 private:
  LegacyHeap heap_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_LEGACY_HEAP_H_
