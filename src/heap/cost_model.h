// The unified allocator cycle-cost model.
//
// Every modeled allocator charge in the tree comes from this one table so
// that benches, allocators and the DBI runtimes price the same operation the
// same way. Costs are cycles *beyond* the hostcall base (CostModel::
// hostcall_base in src/vm/vm.h), per operation.
//
// Two families:
//
//   * Legacy/glibc-like path — the historical 25/15 constants. These are the
//     uninstrumented-baseline costs and must never change: baseline runs are
//     the byte-identity anchor every ablation compares against.
//
//   * rheap O(1) fast path — the segmented-arena + in-guest-freelist
//     allocator (DESIGN.md §4.14). A malloc is either a bump-pointer carve
//     (kBumpAlloc, with kArenaCarve amortized once per fresh arena segment)
//     or a freelist pop (kFreelistPop); both then pay the redzone metadata
//     store (kRedzoneMeta). A free is a freelist push (kFreePush) plus the
//     metadata clear. The per-feature adders price each --rheap hardening
//     feature separately; each one must stay under 5% of the hot
//     malloc+free pair (CI-gated by bench_heap_throughput).
#ifndef REDFAT_SRC_HEAP_COST_MODEL_H_
#define REDFAT_SRC_HEAP_COST_MODEL_H_

#include <cstdint>

namespace redfat {
namespace heapcost {

// --- legacy/glibc-like path (baseline; frozen) -----------------------------
inline constexpr uint64_t kLegacyMalloc = 25;
inline constexpr uint64_t kLegacyFree = 15;

// --- rheap O(1) fast path --------------------------------------------------
// Bump carve out of the current arena segment: one compare + one add.
inline constexpr uint64_t kBumpAlloc = 13;
// Carving a fresh arena segment (watermark setup, lazy-poison bookkeeping);
// charged once per kArenaSlots allocations, not per malloc.
inline constexpr uint64_t kArenaCarve = 24;
// Popping the in-guest freelist head: one guest load + head update.
inline constexpr uint64_t kFreelistPop = 15;
// Pushing onto the in-guest freelist: one guest store + head update.
inline constexpr uint64_t kFreePush = 11;
// Redzone state/size metadata store (malloc) or clear (free).
inline constexpr uint64_t kRedzoneMeta = 4;

// --- per-feature adders (each < 5% of the malloc+free pair) ----------------
// prot-freelist: decode + validate the obfuscated link on every pop. The
// free-side encode folds into the link store and is not charged separately.
inline constexpr uint64_t kProtDecode = 1;
// random: the reuse-order coin flip / randomized placement decision.
inline constexpr uint64_t kRandomPick = 1;
// quarantine=N: FIFO insert + conditional drain bookkeeping per free.
inline constexpr uint64_t kQuarantinePush = 1;
// guard-memcpy: one range check per guarded memcpy/memset *range* (charged
// per hostcall, never on the malloc/free fast path).
inline constexpr uint64_t kGuardRange = 3;

// --- O(size) shadow marking (shadow/debug allocators, memcheck DBI) --------
inline constexpr uint64_t kShadowMarkBase = 5;
inline constexpr uint64_t kShadowBytesPerCycle = 64;

inline constexpr uint64_t ShadowMarkCycles(uint64_t bytes) {
  return kShadowMarkBase + bytes / kShadowBytesPerCycle;
}

}  // namespace heapcost
}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_COST_MODEL_H_
