#include "src/heap/redfat_allocator.h"

#include "src/support/check.h"

namespace redfat {

AllocOutcome RedFatAllocator::Malloc(Memory& mem, uint64_t size) {
  const uint64_t total = size + kRedzoneSize;
  uint64_t slot = 0;
  if (total <= kMaxLowFatSize && total >= size /* overflow guard */) {
    slot = lowfat_.Alloc(total);
  }
  if (slot == 0) {
    // Huge (or exhausted-class) allocation: legacy fallback. The object is
    // non-fat; checks over-approximate its bounds (i.e., skip it).
    slot = legacy_.Alloc(mem, total);
    if (slot == 0) {
      return AllocOutcome{0, kMallocCycles};
    }
    ++fallback_allocs_;
  }
  // Metadata lives inside the redzone: state/size merged as one u64.
  mem.WriteU64(slot, size);
  return AllocOutcome{slot + kRedzoneSize, kMallocCycles + kRedzoneWrapperCycles};
}

uint64_t RedFatAllocator::Free(Memory& mem, uint64_t ptr) {
  if (ptr == 0) {
    return kFreeCycles;
  }
  const uint64_t slot = ptr - kRedzoneSize;
  // Mark Free: SIZE == 0 makes every subsequent bounds check fail (§4.2).
  mem.WriteU64(slot, 0);
  if (LowFatSize(slot) != 0) {
    lowfat_.Free(slot);
  } else {
    legacy_.Free(slot);
  }
  return kFreeCycles + kRedzoneWrapperCycles;
}

}  // namespace redfat
