#include "src/heap/redfat_allocator.h"

#include "src/support/check.h"

namespace redfat {

AllocOutcome RedFatAllocator::Malloc(Memory& mem, uint64_t size) {
  const uint64_t total = size + kRedzoneSize;
  AllocOutcome out;
  uint64_t slot = 0;
  if (total <= kMaxLowFatSize && total >= size /* overflow guard */) {
    const LowFatAllocResult lf = lowfat_.Alloc(mem, total);
    out.cycles += lf.cycles;
    if (lf.corrupted) {
      out.corrupted = true;
      out.corrupt_kind = ErrorKind::kFreelistCorruption;
      out.corrupt_addr = lf.corrupt_addr;
    }
    slot = lf.slot;
    if (lf.status == LowFatAllocStatus::kExhausted) {
      ++stats_.exhausted_fallbacks;
    }
  } else {
    out.cycles += heapcost::kBumpAlloc;  // the refused class lookup
  }
  if (slot == 0) {
    // Huge (or exhausted-class) allocation: legacy fallback. The object is
    // non-fat; checks over-approximate its bounds (i.e., skip it).
    slot = legacy_.Alloc(mem, total);
    if (slot == 0) {
      return out;
    }
    ++stats_.fallback_allocs;
  }
  // Metadata lives inside the redzone: state/size merged as one u64.
  mem.WriteU64(slot, size);
  out.ptr = slot + kRedzoneSize;
  out.cycles += heapcost::kRedzoneMeta;
  return out;
}

FreeOutcome RedFatAllocator::Free(Memory& mem, uint64_t ptr) {
  FreeOutcome out;
  if (ptr == 0) {
    out.cycles = heapcost::kFreePush;
    return out;
  }
  const uint64_t slot = ptr - kRedzoneSize;
  const uint64_t class_bytes = LowFatSize(slot);
  if (class_bytes != 0) {
    if (slot % class_bytes != 0) {
      // Overlapping/interior free: `ptr` is not the base of any slot. Never
      // push it — that is exactly how freelist cycles are forged. Diagnosed
      // under prot-freelist, silently dropped otherwise.
      out.cycles = heapcost::kFreePush;
      if (opts_.prot_freelist) {
        out.corrupted = true;
        out.corrupt_kind = ErrorKind::kFreelistCorruption;
        out.corrupt_addr = ptr;
      }
      return out;
    }
    if (opts_.prot_freelist && mem.ReadU64(slot) == 0) {
      // Proper slot base whose metadata already says Freed: a double free
      // (or a free of a never-allocated slot) that the VM's forensics
      // interception did not catch.
      out.corrupted = true;
      out.corrupt_kind = ErrorKind::kDoubleFree;
      out.corrupt_addr = ptr;
      out.cycles = heapcost::kFreePush;
      return out;
    }
    // Mark Free: SIZE == 0 makes every subsequent bounds check fail (§4.2).
    mem.WriteU64(slot, 0);
    const LowFatFreeResult lf = lowfat_.Free(mem, slot);
    out.cycles = lf.cycles + heapcost::kRedzoneMeta;
    if (lf.corrupted) {
      out.corrupted = true;
      out.corrupt_kind = ErrorKind::kFreelistCorruption;
      out.corrupt_addr = lf.corrupt_addr;
    }
    return out;
  }
  mem.WriteU64(slot, 0);
  legacy_.Free(slot);
  out.cycles = heapcost::kFreePush + heapcost::kRedzoneMeta;
  return out;
}

GuardOutcome RedFatAllocator::GuardRange(Memory& mem, uint64_t addr, uint64_t len) {
  GuardOutcome out;
  if (!opts_.guard_memcpy || len == 0) {
    return out;
  }
  out.cycles = heapcost::kGuardRange;
  ++stats_.guard_checks;
  stats_.guard_cycles += out.cycles;
  const uint64_t size = LowFatSize(addr);
  if (size == 0) {
    return out;  // non-fat: nothing known about the object
  }
  const uint64_t base = LowFatBase(addr);
  const uint64_t payload = base + kRedzoneSize;
  if (addr < payload) {
    // The range starts inside the redzone/metadata words.
    out.violation = true;
    out.kind = ErrorKind::kBounds;
    out.addr = addr;
  } else {
    const uint64_t object_size = mem.ReadU64(base);
    if (object_size == 0) {
      out.violation = true;
      out.kind = ErrorKind::kUaf;  // Freed state: the object is dead
      out.addr = addr;
    } else if (addr + len > payload + object_size || addr + len < addr) {
      out.violation = true;
      out.kind = ErrorKind::kBounds;
      out.addr = payload + object_size;  // first out-of-bounds byte
    }
  }
  if (out.violation) {
    ++stats_.guard_violations;
  }
  return out;
}

}  // namespace redfat
