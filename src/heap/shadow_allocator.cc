#include "src/heap/shadow_allocator.h"

#include "src/support/check.h"

namespace redfat {

void ShadowRedFatAllocator::MarkShadow(Memory& mem, uint64_t addr, uint64_t size,
                                       GuestShadow state) {
  if (size == 0) {
    return;
  }
  const uint64_t first = addr >> 3;
  const uint64_t last = (addr + size - 1) >> 3;
  mem.Fill(kGuestShadowBase + first, static_cast<uint8_t>(state), last - first + 1);
}

AllocOutcome ShadowRedFatAllocator::Malloc(Memory& mem, uint64_t size) {
  const uint64_t total = size + kRedzoneSize;
  AllocOutcome out;
  uint64_t slot = 0;
  uint64_t cycles = 0;
  if (total <= kMaxLowFatSize && total >= size) {
    const LowFatAllocResult lf = lowfat_.Alloc(mem, total);
    slot = lf.slot;
    cycles = lf.cycles;
  }
  if (slot == 0) {
    slot = legacy_.Alloc(mem, total);
    if (slot == 0) {
      out.cycles = heapcost::kLegacyMalloc;
      return out;
    }
  }
  const uint64_t ptr = slot + kRedzoneSize;
  MarkShadow(mem, slot, kRedzoneSize, GuestShadow::kRedzone);        // leading redzone
  MarkShadow(mem, ptr, size, GuestShadow::kOk);                      // payload (clear stale)
  MarkShadow(mem, ptr + size, kRedzoneSize, GuestShadow::kRedzone);  // trailing redzone
  sizes_[ptr] = size;
  // O(size) shadow marking is the scheme's intrinsic cost.
  out.ptr = ptr;
  out.cycles = cycles + heapcost::ShadowMarkCycles(size + 2 * kRedzoneSize);
  return out;
}

FreeOutcome ShadowRedFatAllocator::Free(Memory& mem, uint64_t ptr) {
  if (ptr == 0) {
    return FreeOutcome{heapcost::kFreePush};
  }
  auto it = sizes_.find(ptr);
  REDFAT_CHECK(it != sizes_.end());
  const uint64_t size = it->second;
  sizes_.erase(it);
  MarkShadow(mem, ptr, size, GuestShadow::kFreed);
  const uint64_t slot = ptr - kRedzoneSize;
  uint64_t cycles = 0;
  if (LowFatSize(slot) != 0) {
    cycles = lowfat_.Free(mem, slot).cycles;
  } else {
    legacy_.Free(slot);
    cycles = heapcost::kFreePush;
  }
  return FreeOutcome{cycles + heapcost::ShadowMarkCycles(size)};
}

}  // namespace redfat
