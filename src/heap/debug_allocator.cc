#include "src/heap/debug_allocator.h"

#include "src/support/check.h"

namespace redfat {

void DebugRedFatAllocator::MarkShadow(Memory& mem, uint64_t addr, uint64_t size,
                                      GuestShadow state) {
  if (size == 0) {
    return;
  }
  const uint64_t first = addr >> 3;
  const uint64_t last = (addr + size - 1) >> 3;
  mem.Fill(kGuestShadowBase + first, static_cast<uint8_t>(state), last - first + 1);
}

AllocOutcome DebugRedFatAllocator::Malloc(Memory& mem, uint64_t size) {
  AllocOutcome out = RedFatAllocator::Malloc(mem, size);
  if (out.ptr == 0) {
    return out;
  }
  const uint64_t slot = out.ptr - kRedzoneSize;
  MarkShadow(mem, slot, kRedzoneSize, GuestShadow::kRedzone);            // leading redzone
  MarkShadow(mem, out.ptr, size, GuestShadow::kOk);                      // payload (clear stale)
  MarkShadow(mem, out.ptr + size, kRedzoneSize, GuestShadow::kRedzone);  // trailing guard
  sizes_[out.ptr] = size;
  // O(size) shadow marking
  out.cycles += heapcost::ShadowMarkCycles(size + 2 * kRedzoneSize);
  return out;
}

FreeOutcome DebugRedFatAllocator::Free(Memory& mem, uint64_t ptr) {
  if (ptr == 0) {
    return RedFatAllocator::Free(mem, ptr);
  }
  auto it = sizes_.find(ptr);
  if (it == sizes_.end()) {
    // Invalid free (never handed out, or already freed): let the base
    // class diagnose it; there is no shadow range to clear.
    return RedFatAllocator::Free(mem, ptr);
  }
  const uint64_t size = it->second;
  sizes_.erase(it);
  MarkShadow(mem, ptr, size, GuestShadow::kFreed);
  FreeOutcome out = RedFatAllocator::Free(mem, ptr);
  out.cycles += heapcost::ShadowMarkCycles(size);
  return out;
}

}  // namespace redfat
