#include "src/heap/legacy_heap.h"

#include "src/support/bits.h"
#include "src/support/check.h"

namespace redfat {

uint64_t LegacyHeap::Alloc(Memory& mem, uint64_t size) {
  const uint64_t chunk_size = AlignUp(16 + padding_ + (size == 0 ? 1 : size) + padding_, 16);
  uint64_t chunk = 0;
  auto it = free_lists_.find(chunk_size);
  if (it != free_lists_.end() && !it->second.empty()) {
    chunk = it->second.back();
    it->second.pop_back();
  } else {
    const uint64_t region_end = (static_cast<uint64_t>(kLegacyHeapRegion) + 1) << kRegionShift;
    if (bump_ + chunk_size > region_end) {
      return 0;
    }
    chunk = bump_;
    bump_ += chunk_size;
  }
  mem.WriteU64(chunk, chunk_size);
  const uint64_t payload = chunk + 16 + padding_;
  live_[payload] = chunk_size;
  return payload;
}

void LegacyHeap::Free(uint64_t ptr) {
  auto it = live_.find(ptr);
  REDFAT_CHECK(it != live_.end());
  const uint64_t chunk_size = it->second;
  const uint64_t chunk = ptr - 16 - padding_;
  live_.erase(it);
  free_lists_[chunk_size].push_back(chunk);
}

uint64_t LegacyHeap::SizeOf(Memory& mem, uint64_t ptr) const {
  auto it = live_.find(ptr);
  REDFAT_CHECK(it != live_.end());
  (void)mem;
  return it->second - 16 - 2 * padding_;
}

}  // namespace redfat
