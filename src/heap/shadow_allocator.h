// The ASAN-style alternative runtime (paper §4.1's state_shadow scheme),
// for the redzone-implementation ablation.
//
// Objects still come from the low-fat heap (so the LowFat component can
// recover class bounds from pointers), and still carry a 16-byte leading
// redzone — but the Allocated/Redzone/Free state lives in a *separate
// guest shadow map* (one byte per 8-byte granule at kGuestShadowBase)
// instead of inside the redzone. Consequences the ablation measures:
//
//   * no malloc-SIZE metadata => overflows into allocation padding are
//     undetectable (the paper's Fig. 3/§4.2 argument for metadata-in-redzone);
//   * every malloc/free pays O(size) shadow marking;
//   * the shadow map occupies extra guest pages.
#ifndef REDFAT_SRC_HEAP_SHADOW_ALLOCATOR_H_
#define REDFAT_SRC_HEAP_SHADOW_ALLOCATOR_H_

#include <cstdint>
#include <unordered_map>

#include "src/heap/cost_model.h"
#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/vm/allocator.h"

namespace redfat {

class ShadowRedFatAllocator : public GuestAllocator {
 public:
  explicit ShadowRedFatAllocator(unsigned quarantine_slots = 64)
      : lowfat_(quarantine_slots) {}

  AllocOutcome Malloc(Memory& mem, uint64_t size) override;
  FreeOutcome Free(Memory& mem, uint64_t ptr) override;
  const char* name() const override { return "libredfat-shadow"; }

 private:
  static void MarkShadow(Memory& mem, uint64_t addr, uint64_t size, GuestShadow state);

  LowFatHeap lowfat_;
  LegacyHeap legacy_;
  std::unordered_map<uint64_t, uint64_t> sizes_;  // user ptr -> user size
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_SHADOW_ALLOCATOR_H_
