// The low-fat heap (Duck & Yap, CC'16) over the guest address space.
//
// The guest virtual address space is partitioned into 32 GiB regions
// (Fig. 2). Region #c (1 <= c <= kNumSizeClasses) is a subheap servicing
// allocations of exactly SizeClassBytes(c) bytes, and every object in it is
// placed at a multiple of that size. This yields O(1), pointer-only bounds
// recovery:
//
//     size(p) = SIZES[p >> 35]
//     base(p) = (p / size(p)) * size(p)     (magic-multiply division)
//
// Non-fat regions have SIZES[r] == 0 (the paper uses SIZE_MAX; the sentinel
// choice only changes one comparison in the generated check).
//
// The allocator state (bump pointers, free lists, quarantine) is host-side:
// it models the LD_PRELOADed libredfat runtime, which is host code from the
// guest's perspective.
#ifndef REDFAT_SRC_HEAP_LOWFAT_H_
#define REDFAT_SRC_HEAP_LOWFAT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/isa/abi.h"
#include "src/support/magic_div.h"
#include "src/support/rng.h"
#include "src/vm/memory.h"

namespace redfat {

// Precomputed per-region tables, shared by the host-side allocator and
// (written into guest memory) by the generated check code.
struct LowFatTables {
  uint64_t sizes[kNumRegions] = {};   // 0 = non-fat region
  uint64_t magics[kNumRegions] = {};  // mulh magic for division by sizes[r]
  uint64_t shifts[kNumRegions] = {};  // post-mulh shift
};

// The singleton tables (computed once).
const LowFatTables& GetLowFatTables();

// Writes the three tables to their fixed guest addresses (kSizesTableAddr
// etc.). Must be called by any runtime that binds low-fat-aware checks.
void WriteLowFatTables(Memory* mem);

// --- pointer-only operations (host-side mirrors of the check code) --------

inline unsigned RegionOf(uint64_t ptr) {
  const uint64_t r = ptr >> kRegionShift;
  return r < kNumRegions ? static_cast<unsigned>(r) : 0;
}

// Allocation size of the region containing ptr; 0 if non-fat.
uint64_t LowFatSize(uint64_t ptr);

// Base (slot start) of the object containing ptr; 0 if non-fat.
uint64_t LowFatBase(uint64_t ptr);

// Smallest size class whose slots can hold `size` bytes; 0 if none (huge).
unsigned SizeClassFor(uint64_t size);

// --- the allocator itself --------------------------------------------------

struct LowFatHeapStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t live_slots = 0;
  uint64_t bump_bytes = 0;  // address space consumed by bump allocation
};

class LowFatHeap {
 public:
  // `quarantine_slots` delays slot reuse after free (per size class), making
  // use-after-free detection deterministic in tests; 0 disables quarantine.
  explicit LowFatHeap(unsigned quarantine_slots = 64)
      : quarantine_slots_(quarantine_slots), classes_(kNumSizeClasses + 1) {}

  // Basic heap randomization (paper §8: "our current implementation also
  // incorporates basic heap randomization"): each size class starts its
  // bump allocation at a random slot offset into the region, and freed
  // slots are drawn from a random free-list position instead of LIFO.
  // Probabilistic defense only; detection guarantees are unchanged.
  void EnableRandomization(uint64_t seed) { rng_.emplace(seed); }

  // Allocates a slot of the smallest class >= size. Returns the slot base
  // (size-aligned) or 0 if size exceeds kMaxLowFatSize or the region is full.
  uint64_t Alloc(uint64_t size);

  // Frees a slot previously returned by Alloc. `slot` must be the slot base.
  void Free(uint64_t slot);

  const LowFatHeapStats& stats() const { return stats_; }

 private:
  struct ClassState {
    uint64_t next_bump = 0;  // 0 = not yet initialized
    std::vector<uint64_t> free_list;
    std::deque<uint64_t> quarantine;
  };

  unsigned quarantine_slots_;
  std::vector<ClassState> classes_;
  LowFatHeapStats stats_;
  std::optional<Rng> rng_;  // engaged iff randomization is enabled
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_LOWFAT_H_
