// The low-fat heap (Duck & Yap, CC'16) over the guest address space.
//
// The guest virtual address space is partitioned into 32 GiB regions
// (Fig. 2). Region #c (1 <= c <= kNumSizeClasses) is a subheap servicing
// allocations of exactly SizeClassBytes(c) bytes, and every object in it is
// placed at a multiple of that size. This yields O(1), pointer-only bounds
// recovery:
//
//     size(p) = SIZES[p >> 35]
//     base(p) = (p / size(p)) * size(p)     (magic-multiply division)
//
// Non-fat regions have SIZES[r] == 0 (the paper uses SIZE_MAX; the sentinel
// choice only changes one comparison in the generated check).
//
// Fast path (DESIGN.md §4.14): every operation is O(1).
//
//   * Free lists are intrusive and live *in guest memory*: a freed slot's
//     body doubles as the list node, chaining through a link word at
//     slot + 8 (the redzone pad word — [SIZE u64][link u64][payload...]).
//     Only the per-class head pointer is host state, modeling libredfat's
//     thread-local head register. With the prot-freelist feature the link
//     is obfuscated (snmalloc-style XOR with a per-slot mixed key) and
//     validated on every pop; a forged or corrupted link is detected and
//     surfaced as a corruption outcome instead of being followed.
//   * Bump allocation carves the region in fixed arena segments of
//     kArenaSlots slots; segment setup cost is paid once per carve, not per
//     malloc. Redzone poisoning is lazy: untouched guest memory reads 0,
//     which is exactly the Freed metadata encoding, so fresh slots need no
//     poisoning writes at all.
//   * The quarantine is an in-guest FIFO chain (head + tail host-side)
//     draining into the free list once its depth exceeds quarantine_slots.
//
// With every rheap feature off, allocation addresses are bit-identical to
// the historical vector/deque implementation (LIFO reuse, FIFO quarantine,
// same bump sequence) — the features-off byte-identity contract.
#ifndef REDFAT_SRC_HEAP_LOWFAT_H_
#define REDFAT_SRC_HEAP_LOWFAT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/heap/rheap.h"
#include "src/isa/abi.h"
#include "src/support/magic_div.h"
#include "src/support/rng.h"
#include "src/vm/memory.h"

namespace redfat {

// Precomputed per-region tables, shared by the host-side allocator and
// (written into guest memory) by the generated check code.
struct LowFatTables {
  uint64_t sizes[kNumRegions] = {};   // 0 = non-fat region
  uint64_t magics[kNumRegions] = {};  // mulh magic for division by sizes[r]
  uint64_t shifts[kNumRegions] = {};  // post-mulh shift
};

// The singleton tables (computed once).
const LowFatTables& GetLowFatTables();

// Writes the three tables to their fixed guest addresses (kSizesTableAddr
// etc.). Must be called by any runtime that binds low-fat-aware checks.
void WriteLowFatTables(Memory* mem);

// --- pointer-only operations (host-side mirrors of the check code) --------

inline unsigned RegionOf(uint64_t ptr) {
  const uint64_t r = ptr >> kRegionShift;
  return r < kNumRegions ? static_cast<unsigned>(r) : 0;
}

// Allocation size of the region containing ptr; 0 if non-fat.
uint64_t LowFatSize(uint64_t ptr);

// Base (slot start) of the object containing ptr; 0 if non-fat.
uint64_t LowFatBase(uint64_t ptr);

// Smallest size class whose slots can hold `size` bytes; 0 if none (huge).
unsigned SizeClassFor(uint64_t size);

// --- the allocator itself --------------------------------------------------

// Bump arenas are carved kArenaSlots slots at a time; the carve cost
// (heapcost::kArenaCarve) amortizes across the segment.
inline constexpr uint64_t kArenaSlots = 64;

struct LowFatHeapStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t live_slots = 0;
  uint64_t bump_bytes = 0;  // address space consumed by bump allocation
  uint64_t freelist_pops = 0;
  uint64_t arena_carves = 0;
  uint64_t corruptions = 0;      // forged/corrupt links detected (prot-freelist)
  uint64_t exhausted_allocs = 0; // Alloc failures due to region exhaustion
  uint64_t malloc_cycles = 0;    // modeled fast-path cycles, accumulated
  uint64_t free_cycles = 0;
};

// Why an allocation could not be serviced. The wrapper allocators fall back
// to the legacy heap on kTooLarge (by design: huge objects are non-fat) and
// on kExhausted (resource exhaustion — reported distinctly in telemetry).
enum class LowFatAllocStatus : uint8_t {
  kOk = 0,
  kTooLarge = 1,   // size exceeds kMaxLowFatSize: no class can hold it
  kExhausted = 2,  // the class's 32 GiB region is fully carved
};

struct LowFatAllocResult {
  uint64_t slot = 0;  // slot base (size-aligned); 0 unless status == kOk
  LowFatAllocStatus status = LowFatAllocStatus::kOk;
  uint64_t cycles = 0;       // modeled fast-path cost of this operation
  bool corrupted = false;    // a forged/corrupt freelist link was detected
  uint64_t corrupt_addr = 0; // guest address of the bad link word
};

struct LowFatFreeResult {
  // Set when `slot` is not a valid slot base of any low-fat class (e.g. an
  // overlapping free of an interior pointer). The free is skipped.
  bool invalid = false;
  uint64_t cycles = 0;
  bool corrupted = false;    // quarantine-drain link validation failed
  uint64_t corrupt_addr = 0;
};

class LowFatHeap {
 public:
  explicit LowFatHeap(const RheapOptions& opts);
  // Legacy convenience: quarantine depth only, every hardening feature off.
  explicit LowFatHeap(unsigned quarantine_slots = 64);

  // Basic heap randomization (paper §8: "our current implementation also
  // incorporates basic heap randomization"): each size class starts its
  // bump allocation at a random slot offset into the region, and freed
  // slots spread over two free lists with coin-flip push/pop so reuse
  // order deviates from strict LIFO. Probabilistic defense only; detection
  // guarantees are unchanged.
  void EnableRandomization(uint64_t seed);

  // Allocates a slot of the smallest class >= size. The freelist chain is
  // read from (and maintained in) guest memory.
  LowFatAllocResult Alloc(Memory& mem, uint64_t size);

  // Frees a slot previously returned by Alloc. `slot` must be the slot
  // base; anything else yields .invalid (never a host abort).
  LowFatFreeResult Free(Memory& mem, uint64_t slot);

  const LowFatHeapStats& stats() const { return stats_; }
  const RheapOptions& options() const { return opts_; }

 private:
  // Two heads so `random` can coin-flip push/pop targets; with random off
  // only heads_[0] is used (exact legacy LIFO order).
  struct ClassState {
    uint64_t next_bump = 0;   // 0 = class untouched
    uint64_t arena_end = 0;   // current carved segment watermark
    uint64_t heads[2] = {0, 0};
    uint64_t free_count = 0;
    uint64_t quar_head = 0;   // FIFO chain, in guest memory
    uint64_t quar_tail = 0;
    uint64_t quar_count = 0;
  };

  uint64_t LinkKey(uint64_t slot) const;
  uint64_t EncodeLink(uint64_t next, uint64_t slot) const;
  uint64_t DecodeLink(uint64_t enc, uint64_t slot) const;
  // Is `next` a plausible freelist successor within class c?
  bool LinkValid(uint64_t next, unsigned c, uint64_t slot,
                 const ClassState& cs) const;
  void PushFree(Memory& mem, ClassState& cs, unsigned c, uint64_t slot);

  RheapOptions opts_;
  std::vector<ClassState> classes_;
  LowFatHeapStats stats_;
  std::optional<Rng> rng_;  // engaged iff opts_.random
  uint64_t link_key_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_LOWFAT_H_
