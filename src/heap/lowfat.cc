#include "src/heap/lowfat.h"

#include "src/heap/cost_model.h"
#include "src/support/bits.h"
#include "src/support/check.h"

namespace redfat {

namespace {

LowFatTables BuildTables() {
  LowFatTables t;
  for (unsigned c = 1; c <= kNumSizeClasses; ++c) {
    const uint64_t bytes = SizeClassBytes(c);
    REDFAT_CHECK(bytes >= kMinAllocSize && bytes % 16 == 0);
    const MagicDiv m = ComputeMagicDiv(bytes);
    // The generated check code computes base(ptr) as mulh(ptr, magic)*size
    // with NO post-shift; every size class must therefore admit a shift-free
    // magic (true because non-power-of-two classes are all <= 512 bytes).
    REDFAT_CHECK(m.shift == 0);
    t.sizes[c] = bytes;
    t.magics[c] = m.magic;
    t.shifts[c] = m.shift;
  }
  return t;
}

// SplitMix64 finalizer: the per-slot key mix for link obfuscation.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The in-guest freelist link word lives in the redzone pad word, just after
// the state/size metadata: [SIZE u64][link u64][payload...].
inline uint64_t LinkAddr(uint64_t slot) { return slot + 8; }

}  // namespace

const LowFatTables& GetLowFatTables() {
  static const LowFatTables tables = BuildTables();
  return tables;
}

void WriteLowFatTables(Memory* mem) {
  const LowFatTables& t = GetLowFatTables();
  for (unsigned r = 0; r < kNumRegions; ++r) {
    mem->WriteU64(kSizesTableAddr + 8 * r, t.sizes[r]);
    mem->WriteU64(kMagicsTableAddr + 8 * r, t.magics[r]);
    mem->WriteU64(kShiftsTableAddr + 8 * r, t.shifts[r]);
  }
}

uint64_t LowFatSize(uint64_t ptr) { return GetLowFatTables().sizes[RegionOf(ptr)]; }

uint64_t LowFatBase(uint64_t ptr) {
  const LowFatTables& t = GetLowFatTables();
  const unsigned r = RegionOf(ptr);
  if (t.sizes[r] == 0) {
    return 0;
  }
  const uint64_t q = MulHigh64(ptr, t.magics[r]) >> t.shifts[r];
  return q * t.sizes[r];
}

unsigned SizeClassFor(uint64_t size) {
  if (size == 0) {
    size = 1;
  }
  if (size <= 512) {
    return static_cast<unsigned>((size + 15) / 16);
  }
  if (size > kMaxLowFatSize) {
    return 0;
  }
  // Power-of-two classes: 1 KiB << (c - 33).
  const unsigned k = CeilLog2(size);  // size > 512 => k >= 10
  return 33 + (k - 10);
}

LowFatHeap::LowFatHeap(const RheapOptions& opts)
    : opts_(opts),
      classes_(kNumSizeClasses + 1),
      link_key_(0x9e3779b97f4a7c15ULL ^ opts.random_seed) {
  if (opts_.random) {
    rng_.emplace(opts_.random_seed);
  }
}

LowFatHeap::LowFatHeap(unsigned quarantine_slots)
    : LowFatHeap([quarantine_slots] {
        RheapOptions o;
        o.quarantine_slots = quarantine_slots;
        return o;
      }()) {}

void LowFatHeap::EnableRandomization(uint64_t seed) {
  opts_.random = true;
  opts_.random_seed = seed;
  rng_.emplace(seed);
}

uint64_t LowFatHeap::LinkKey(uint64_t slot) const { return Mix64(slot ^ link_key_); }

uint64_t LowFatHeap::EncodeLink(uint64_t next, uint64_t slot) const {
  return opts_.prot_freelist ? next ^ LinkKey(slot) : next;
}

uint64_t LowFatHeap::DecodeLink(uint64_t enc, uint64_t slot) const {
  return opts_.prot_freelist ? enc ^ LinkKey(slot) : enc;
}

bool LowFatHeap::LinkValid(uint64_t next, unsigned c, uint64_t slot,
                           const ClassState& cs) const {
  if (next == 0) {
    return true;  // end of chain
  }
  // A plausible successor is a distinct slot base of the same class, below
  // the bump high-water mark (everything ever handed out is below it).
  return RegionOf(next) == c && next % SizeClassBytes(c) == 0 && next != slot &&
         next < cs.next_bump;
}

void LowFatHeap::PushFree(Memory& mem, ClassState& cs, unsigned c, uint64_t slot) {
  (void)c;
  const unsigned idx = (rng_.has_value() && rng_->Chance(1, 2)) ? 1 : 0;
  mem.WriteU64(LinkAddr(slot), EncodeLink(cs.heads[idx], slot));
  cs.heads[idx] = slot;
  ++cs.free_count;
}

LowFatAllocResult LowFatHeap::Alloc(Memory& mem, uint64_t size) {
  LowFatAllocResult out;
  const unsigned c = SizeClassFor(size);
  if (c == 0) {
    out.status = LowFatAllocStatus::kTooLarge;
    out.cycles = heapcost::kBumpAlloc;
    stats_.malloc_cycles += out.cycles;
    return out;
  }
  ClassState& cs = classes_[c];
  const uint64_t bytes = SizeClassBytes(c);

  // Freelist pop. With `random`, coin-flip between the two heads (falling
  // back to whichever is nonempty); otherwise strict LIFO off heads_[0].
  unsigned idx = 0;
  if (rng_.has_value()) {
    idx = rng_->Chance(1, 2) ? 1 : 0;
    if (cs.heads[idx] == 0) {
      idx ^= 1;
    }
    out.cycles += heapcost::kRandomPick;
  }
  if (cs.heads[idx] != 0) {
    const uint64_t slot = cs.heads[idx];
    out.cycles += heapcost::kFreelistPop;
    uint64_t next = DecodeLink(mem.ReadU64(LinkAddr(slot)), slot);
    if (opts_.prot_freelist) {
      out.cycles += heapcost::kProtDecode;
      if (!LinkValid(next, c, slot, cs)) {
        // Forged/corrupted link: report it, quarantine the whole chain out
        // of circulation, and satisfy the allocation from the bump arena.
        out.corrupted = true;
        out.corrupt_addr = LinkAddr(slot);
        ++stats_.corruptions;
        cs.heads[0] = cs.heads[1] = 0;
        cs.free_count = 0;
      }
    }
    if (!out.corrupted) {
      cs.heads[idx] = next;
      --cs.free_count;
      ++stats_.freelist_pops;
      ++stats_.allocs;
      ++stats_.live_slots;
      stats_.malloc_cycles += out.cycles;
      out.slot = slot;
      return out;
    }
  }

  // Bump path: carve a fresh arena segment when the current one is spent.
  // Lazy poisoning: untouched guest memory reads 0, which *is* the Freed
  // metadata encoding, so a carve needs no redzone writes.
  if (cs.next_bump == 0) {
    cs.next_bump = AlignUp(static_cast<uint64_t>(c) << kRegionShift, bytes);
    if (rng_.has_value()) {
      // Random starting slot: up to 64 Ki slots of entropy per class.
      cs.next_bump += bytes * rng_->Below(1 << 16);
    }
  }
  const uint64_t region_end = (static_cast<uint64_t>(c) + 1) << kRegionShift;
  if (cs.next_bump + bytes > region_end) {
    out.status = LowFatAllocStatus::kExhausted;
    out.cycles += heapcost::kBumpAlloc;
    ++stats_.exhausted_allocs;
    stats_.malloc_cycles += out.cycles;
    return out;
  }
  if (cs.next_bump >= cs.arena_end) {
    const uint64_t seg = cs.next_bump + kArenaSlots * bytes;
    cs.arena_end = seg < region_end ? seg : region_end;
    out.cycles += heapcost::kArenaCarve;
    ++stats_.arena_carves;
  }
  out.slot = cs.next_bump;
  cs.next_bump += bytes;
  out.cycles += heapcost::kBumpAlloc;
  stats_.bump_bytes += bytes;
  ++stats_.allocs;
  ++stats_.live_slots;
  stats_.malloc_cycles += out.cycles;
  return out;
}

LowFatFreeResult LowFatHeap::Free(Memory& mem, uint64_t slot) {
  LowFatFreeResult out;
  out.cycles = heapcost::kFreePush;
  const unsigned r = RegionOf(slot);
  if (r < 1 || r > kNumSizeClasses || slot % SizeClassBytes(r) != 0) {
    // Not a slot base of any low-fat class: an overlapping/interior free.
    // Never a host abort — the caller decides whether to diagnose it.
    out.invalid = true;
    stats_.free_cycles += out.cycles;
    return out;
  }
  ClassState& cs = classes_[r];
  ++stats_.frees;
  if (stats_.live_slots > 0) {
    --stats_.live_slots;
  }
  if (rng_.has_value()) {
    out.cycles += heapcost::kRandomPick;
  }
  if (opts_.quarantine_slots == 0) {
    PushFree(mem, cs, r, slot);
    stats_.free_cycles += out.cycles;
    return out;
  }

  // Quarantine: append to the in-guest FIFO chain, then drain the oldest
  // entry into the free list once the depth budget is exceeded.
  out.cycles += heapcost::kQuarantinePush;
  mem.WriteU64(LinkAddr(slot), EncodeLink(0, slot));
  if (cs.quar_tail != 0) {
    mem.WriteU64(LinkAddr(cs.quar_tail), EncodeLink(slot, cs.quar_tail));
  } else {
    cs.quar_head = slot;
  }
  cs.quar_tail = slot;
  ++cs.quar_count;
  if (cs.quar_count > opts_.quarantine_slots) {
    const uint64_t oldest = cs.quar_head;
    const uint64_t next = DecodeLink(mem.ReadU64(LinkAddr(oldest)), oldest);
    if (opts_.prot_freelist &&
        (!LinkValid(next, r, oldest, cs) || (next == 0 && cs.quar_count > 1))) {
      // The quarantine chain was tampered with (quarantine-bypass attempt).
      // Discard the whole chain — conservative, but nothing on it can be
      // trusted to re-enter circulation.
      out.corrupted = true;
      out.corrupt_addr = LinkAddr(oldest);
      ++stats_.corruptions;
      cs.quar_head = cs.quar_tail = 0;
      cs.quar_count = 0;
      stats_.free_cycles += out.cycles;
      return out;
    }
    cs.quar_head = next;
    if (next == 0) {
      cs.quar_tail = 0;
    }
    --cs.quar_count;
    PushFree(mem, cs, r, oldest);
  }
  stats_.free_cycles += out.cycles;
  return out;
}

}  // namespace redfat
