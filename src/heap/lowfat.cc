#include "src/heap/lowfat.h"

#include <algorithm>

#include "src/support/bits.h"
#include "src/support/check.h"

namespace redfat {

namespace {

LowFatTables BuildTables() {
  LowFatTables t;
  for (unsigned c = 1; c <= kNumSizeClasses; ++c) {
    const uint64_t bytes = SizeClassBytes(c);
    REDFAT_CHECK(bytes >= kMinAllocSize && bytes % 16 == 0);
    const MagicDiv m = ComputeMagicDiv(bytes);
    // The generated check code computes base(ptr) as mulh(ptr, magic)*size
    // with NO post-shift; every size class must therefore admit a shift-free
    // magic (true because non-power-of-two classes are all <= 512 bytes).
    REDFAT_CHECK(m.shift == 0);
    t.sizes[c] = bytes;
    t.magics[c] = m.magic;
    t.shifts[c] = m.shift;
  }
  return t;
}

}  // namespace

const LowFatTables& GetLowFatTables() {
  static const LowFatTables tables = BuildTables();
  return tables;
}

void WriteLowFatTables(Memory* mem) {
  const LowFatTables& t = GetLowFatTables();
  for (unsigned r = 0; r < kNumRegions; ++r) {
    mem->WriteU64(kSizesTableAddr + 8 * r, t.sizes[r]);
    mem->WriteU64(kMagicsTableAddr + 8 * r, t.magics[r]);
    mem->WriteU64(kShiftsTableAddr + 8 * r, t.shifts[r]);
  }
}

uint64_t LowFatSize(uint64_t ptr) { return GetLowFatTables().sizes[RegionOf(ptr)]; }

uint64_t LowFatBase(uint64_t ptr) {
  const LowFatTables& t = GetLowFatTables();
  const unsigned r = RegionOf(ptr);
  if (t.sizes[r] == 0) {
    return 0;
  }
  const uint64_t q = MulHigh64(ptr, t.magics[r]) >> t.shifts[r];
  return q * t.sizes[r];
}

unsigned SizeClassFor(uint64_t size) {
  if (size == 0) {
    size = 1;
  }
  if (size <= 512) {
    return static_cast<unsigned>((size + 15) / 16);
  }
  if (size > kMaxLowFatSize) {
    return 0;
  }
  // Power-of-two classes: 1 KiB << (c - 33).
  const unsigned k = CeilLog2(size);  // size > 512 => k >= 10
  return 33 + (k - 10);
}

uint64_t LowFatHeap::Alloc(uint64_t size) {
  const unsigned c = SizeClassFor(size);
  if (c == 0) {
    return 0;
  }
  ClassState& cs = classes_[c];
  const uint64_t bytes = SizeClassBytes(c);
  uint64_t slot = 0;
  if (!cs.free_list.empty()) {
    if (rng_.has_value() && cs.free_list.size() > 1) {
      // Randomized reuse: swap a random entry to the back first.
      const size_t pick = rng_->Below(cs.free_list.size());
      std::swap(cs.free_list[pick], cs.free_list.back());
    }
    slot = cs.free_list.back();
    cs.free_list.pop_back();
  } else {
    if (cs.next_bump == 0) {
      cs.next_bump = AlignUp(static_cast<uint64_t>(c) << kRegionShift, bytes);
      if (rng_.has_value()) {
        // Random starting slot: up to 64 Ki slots of entropy per class.
        cs.next_bump += bytes * rng_->Below(1 << 16);
      }
    }
    const uint64_t region_end = (static_cast<uint64_t>(c) + 1) << kRegionShift;
    if (cs.next_bump + bytes > region_end) {
      return 0;  // region exhausted
    }
    slot = cs.next_bump;
    cs.next_bump += bytes;
    stats_.bump_bytes += bytes;
  }
  ++stats_.allocs;
  ++stats_.live_slots;
  return slot;
}

void LowFatHeap::Free(uint64_t slot) {
  const unsigned r = RegionOf(slot);
  REDFAT_CHECK(r >= 1 && r <= kNumSizeClasses);
  const uint64_t bytes = SizeClassBytes(r);
  REDFAT_CHECK(slot % bytes == 0);
  ClassState& cs = classes_[r];
  ++stats_.frees;
  REDFAT_CHECK(stats_.live_slots > 0);
  --stats_.live_slots;
  if (quarantine_slots_ == 0) {
    cs.free_list.push_back(slot);
    return;
  }
  cs.quarantine.push_back(slot);
  if (cs.quarantine.size() > quarantine_slots_) {
    cs.free_list.push_back(cs.quarantine.front());
    cs.quarantine.pop_front();
  }
}

}  // namespace redfat
