// The debug hardening tier's allocator (core/policy.h, RuntimeKind::
// kRedFatDebug): libredfat semantics PLUS guest shadow-map maintenance.
//
// Lowfat-metadata-instrumented binaries need the in-redzone state/size
// metadata that RedFatAllocator writes; memcheck-grade shadow-state
// classification of *uninstrumented* accesses (src/dbi/shadow_check.h)
// needs the kGuestShadowBase map that ShadowRedFatAllocator maintains.
// Neither alone supports both, so the debug tier's allocator does both:
// every object carries the metadata redzone (checks work unchanged) and
// its redzone/payload/freed states are mirrored into the shadow map for
// the observer. The extra O(size) marking cost per malloc/free is charged
// like the shadow ablation's — debug is not a production configuration.
#ifndef REDFAT_SRC_HEAP_DEBUG_ALLOCATOR_H_
#define REDFAT_SRC_HEAP_DEBUG_ALLOCATOR_H_

#include <cstdint>
#include <unordered_map>

#include "src/heap/redfat_allocator.h"

namespace redfat {

class DebugRedFatAllocator : public RedFatAllocator {
 public:
  explicit DebugRedFatAllocator(const RheapOptions& opts) : RedFatAllocator(opts) {}
  explicit DebugRedFatAllocator(unsigned quarantine_slots = 64)
      : RedFatAllocator(quarantine_slots) {}

  AllocOutcome Malloc(Memory& mem, uint64_t size) override;
  FreeOutcome Free(Memory& mem, uint64_t ptr) override;
  const char* name() const override { return "libredfat-debug"; }

 private:
  static void MarkShadow(Memory& mem, uint64_t addr, uint64_t size, GuestShadow state);

  std::unordered_map<uint64_t, uint64_t> sizes_;  // user ptr -> user size
};

}  // namespace redfat

#endif  // REDFAT_SRC_HEAP_DEBUG_ALLOCATOR_H_
