#include "src/heap/rheap.h"

#include <cstdlib>

#include "src/support/str.h"

namespace redfat {

Result<RheapOptions> ParseRheapList(const std::string& list) {
  RheapOptions opts;
  opts.quarantine_slots = 0;  // explicit lists start from everything-off
  if (list.empty()) {
    return Error{"--rheap: empty feature list"};
  }
  bool saw_none = false;
  size_t ntokens = 0;
  size_t pos = 0;
  while (pos <= list.size()) {
    const size_t comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    if (tok.empty()) {
      return Error{"--rheap: empty token in feature list"};
    }
    ++ntokens;
    if (tok == "none") {
      saw_none = true;
    } else if (tok == "prot-freelist") {
      opts.prot_freelist = true;
    } else if (tok == "guard-memcpy") {
      opts.guard_memcpy = true;
    } else if (tok == "random") {
      opts.random = true;
    } else if (tok.rfind("quarantine=", 0) == 0) {
      const std::string num = tok.substr(11);
      if (num.empty() || num.find_first_not_of("0123456789") != std::string::npos) {
        return Error{StrFormat("--rheap: bad quarantine depth '%s'", num.c_str())};
      }
      opts.quarantine_slots = static_cast<unsigned>(std::strtoul(num.c_str(), nullptr, 10));
    } else {
      return Error{StrFormat(
          "--rheap: unknown feature '%s' (want prot-freelist, guard-memcpy, "
          "random, quarantine=N or none)",
          tok.c_str())};
    }
  }
  if (saw_none && (ntokens > 1 || opts.any_hardening() || opts.quarantine_slots != 0)) {
    return Error{"--rheap: 'none' must appear alone"};
  }
  return opts;
}

std::string RheapListName(const RheapOptions& opts) {
  std::string out;
  auto append = [&out](const std::string& tok) {
    if (!out.empty()) {
      out += ',';
    }
    out += tok;
  };
  if (opts.prot_freelist) {
    append("prot-freelist");
  }
  if (opts.guard_memcpy) {
    append("guard-memcpy");
  }
  if (opts.random) {
    append("random");
  }
  if (opts.quarantine_slots != 0) {
    append(StrFormat("quarantine=%u", opts.quarantine_slots));
  }
  return out.empty() ? "none" : out;
}

}  // namespace redfat
