#include "src/heap/forensics.h"

namespace redfat {

void ForensicRing::OnAlloc(uint64_t ptr, uint64_t size, uint64_t pc,
                           uint64_t instruction, uint64_t cycles, uint64_t epoch) {
  if (ptr == 0) {
    return;  // failed allocation: nothing to attribute later
  }
  AllocProvenance p;
  p.ptr = ptr;
  p.size = size;
  p.alloc_pc = pc;
  p.alloc_instruction = instruction;
  p.alloc_cycles = cycles;
  p.alloc_epoch = epoch;
  live_[ptr] = p;
  // The address is live again: any stale freed-ring entry for it would
  // otherwise shadow the new object in UAF/double-free lookups.
  for (AllocProvenance& f : freed_) {
    if (f.ptr == ptr) {
      f.ptr = 0;
      f.size = 0;
    }
  }
}

void ForensicRing::OnFree(uint64_t ptr, uint64_t pc, uint64_t instruction,
                          uint64_t cycles, uint64_t epoch) {
  const auto it = live_.find(ptr);
  if (it == live_.end()) {
    return;  // untracked (attached mid-run) or double free — caller detects
  }
  AllocProvenance p = it->second;
  live_.erase(it);
  p.freed = true;
  p.free_pc = pc;
  p.free_instruction = instruction;
  p.free_cycles = cycles;
  p.free_epoch = epoch;
  freed_.push_back(p);
  if (freed_.size() > capacity_) {
    freed_.pop_front();
    ++evicted_;
  }
}

const AllocProvenance* ForensicRing::FindLive(uint64_t addr) const {
  // The candidate is the greatest base <= addr.
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) {
    return nullptr;
  }
  --it;
  const AllocProvenance& p = it->second;
  return addr < p.ptr + p.size ? &p : nullptr;
}

const AllocProvenance* ForensicRing::FindFreed(uint64_t addr) const {
  for (auto it = freed_.rbegin(); it != freed_.rend(); ++it) {
    if (it->ptr != 0 && addr >= it->ptr && addr < it->ptr + it->size) {
      return &*it;
    }
  }
  return nullptr;
}

const AllocProvenance* ForensicRing::FreedAt(uint64_t ptr) const {
  if (ptr == 0) {
    return nullptr;
  }
  for (auto it = freed_.rbegin(); it != freed_.rend(); ++it) {
    if (it->ptr == ptr) {
      return &*it;
    }
  }
  return nullptr;
}

ForensicRing::Proximity ForensicRing::Nearest(uint64_t addr) const {
  Proximity best;
  const auto consider = [&](const AllocProvenance& p) {
    if (p.ptr == 0 && p.size == 0) {
      return;
    }
    uint64_t distance;
    bool past_end;
    if (addr < p.ptr) {
      distance = p.ptr - addr;
      past_end = false;
    } else if (addr < p.ptr + p.size) {
      distance = 0;
      past_end = false;
    } else {
      distance = addr - (p.ptr + p.size) + 1;
      past_end = true;
    }
    if (best.object == nullptr || distance < best.distance) {
      best.object = &p;
      best.distance = distance;
      best.past_end = past_end;
    }
  };
  // Only the two live neighbours of addr can be nearest among live objects.
  auto hi = live_.upper_bound(addr);
  if (hi != live_.end()) {
    consider(hi->second);
  }
  if (hi != live_.begin()) {
    consider(std::prev(hi)->second);
  }
  // Freed objects are few (bounded ring) and matter for UAF-adjacent OOBs.
  for (const AllocProvenance& p : freed_) {
    consider(p);
  }
  return best;
}

}  // namespace redfat
