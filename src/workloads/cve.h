// Non-incremental overflow cases (Table 2).
//
// Four real-world CVE models and a generated 480-case Juliet-like CWE-122
// (heap buffer overflow) suite. Every case allocates a victim object plus
// adjacent heap objects and performs an access at an attacker-controlled
// index. The attack index is chosen to *skip over* the victim's redzone and
// land inside a neighboring allocation's live payload — undetectable for
// redzone-only checkers (Memcheck), detectable for pointer-arithmetic
// checking (RedFat's LowFat component).
//
// Each case also carries a benign input under which the access is in
// bounds, used to verify the hardened binary does not false-positive.
#ifndef REDFAT_SRC_WORKLOADS_CVE_H_
#define REDFAT_SRC_WORKLOADS_CVE_H_

#include <string>
#include <vector>

#include "src/bin/image.h"

namespace redfat {

struct VulnCase {
  std::string name;
  BinaryImage image;
  std::vector<uint64_t> attack_inputs;
  std::vector<uint64_t> benign_inputs;
  bool is_write = true;
};

// CVE-2007-3476 (php gd), CVE-2016-1903 (php gd2), CVE-2012-4295
// (wireshark, Fig. 1), CVE-2016-2335 (7zip).
std::vector<VulnCase> CveCases();

// 480 generated CWE-122 heap-overflow variants: element size {1,2,4,8} x
// {read,write} x {scaled-index, premultiplied-index} x 5 object sizes x
// 3 skip distances.
std::vector<VulnCase> JulietCwe122Cases();

}  // namespace redfat

#endif  // REDFAT_SRC_WORKLOADS_CVE_H_
