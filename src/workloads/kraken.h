// The Chrome/Kraken scalability workload (Fig. 8).
//
// Fourteen kernels named after the Kraken browser-benchmark tests, embedded
// in deliberately large binaries (hundreds of unreachable-but-instrumented
// filler functions stand in for the ~149 MB Chrome image: they cost rewrite
// work and trampoline space, not runtime). Hardened with write-only
// checking, as in the paper's Chrome experiment.
#ifndef REDFAT_SRC_WORKLOADS_KRAKEN_H_
#define REDFAT_SRC_WORKLOADS_KRAKEN_H_

#include <string>
#include <vector>

#include "src/bin/image.h"
#include "src/workloads/synth.h"

namespace redfat {

struct KrakenBenchmark {
  std::string name;
  SynthParams params;
  uint64_t iters = 1500;
};

const std::vector<KrakenBenchmark>& KrakenSuite();

BinaryImage BuildKrakenBenchmark(const KrakenBenchmark& bench);

}  // namespace redfat

#endif  // REDFAT_SRC_WORKLOADS_KRAKEN_H_
