#include "src/workloads/spec.h"

namespace redfat {

namespace {

// One row per benchmark. The dials encode each program's memory-behaviour
// class, chosen so the *mechanisms* behind its Table-1 row are present:
//   mem      % of single/struct heap-access units (drives base overhead)
//   stream   % of stencil inner-loop units (drives +batch/+merge gains)
//   unroll   same-shape accesses per stencil iteration (merge fodder)
//   maxacc   accesses per loaded pointer in struct units (batch fodder)
//   write    % of heap accesses that are writes (drives the -reads column)
//   indexed  % of struct-unit tails using index registers
//   refonly  % of heap/stream units gated to the ref input (coverage gaps)
//   antipct  % of heap units routed through anti-idiom sites (FP coverage)
//   churn    % of free+malloc units (allocator-heavy C++ codes)
struct RowSpec {
  const char* name;
  Lang lang;
  unsigned mem, stream, unroll, maxacc, write, indexed, refonly, antipct;
  unsigned anti_sites;
  unsigned churn;
  unsigned split;    // split-base % (merge resistance of multi-access units)
  unsigned globals;  // % of global/stack-spill units (elimination fodder)
  uint64_t ref_iters;
  unsigned underflow_bugs = 0;
  unsigned overflow_bugs = 0;
  double paper_cov = 0.0;
};

constexpr RowSpec kRows[] = {
    // name       lang      mem str unr acc wr idx ref anti st ch spl glb ref_it bugs
    {"perlbench", Lang::kC, 68, 2, 4, 4, 22, 70, 8, 3, 1, 2, 95, 8, 900, 0, 0, 0.889},
    {"bzip2", Lang::kC, 36, 4, 3, 3, 26, 50, 3, 0, 0, 0, 75, 8, 1100, 0, 0, 0.970},
        {"gcc", Lang::kC, 44, 2, 4, 2, 28, 50, 26, 8, 14, 1, 70, 10, 800, 0, 0, 0.660},
    {"mcf", Lang::kC, 18, 2, 4, 2, 8, 70, 1, 0, 0, 0, 70, 8, 900, 0, 0, 0.987},
    {"gobmk", Lang::kC, 30, 2, 4, 2, 22, 50, 10, 2, 1, 0, 65, 10, 1100, 0, 0, 0.907},
        {"hmmer", Lang::kC, 75, 3, 3, 3, 14, 95, 54, 0, 0, 0, 95, 4, 900, 0, 0, 0.480},
    {"sjeng", Lang::kC, 42, 2, 4, 2, 20, 50, 1, 0, 0, 0, 65, 10, 1200, 0, 0, 0.986},
        {"libquantum", Lang::kC, 7, 7, 1, 1, 18, 40, 0, 0, 0, 0, 20, 8, 1000, 0, 0, 1.000},
    {"h264ref", Lang::kC, 58, 3, 4, 4, 10, 60, 85, 0, 0, 0, 70, 6, 1100, 0, 0, 0.200},
        {"omnetpp", Lang::kCpp, 26, 2, 4, 3, 25, 50, 40, 0, 0, 8, 60, 8, 1000, 0, 0, 0.628},
    {"astar", Lang::kCpp, 14, 2, 4, 2, 16, 60, 0, 0, 0, 1, 55, 8, 1100, 0, 0, 0.997},
    {"xalancbmk", Lang::kCpp, 58, 2, 4, 3, 8, 50, 24, 0, 0, 4, 90, 6, 700, 0, 0, 0.789},
    {"milc", Lang::kC, 5, 10, 10, 6, 22, 30, 1, 0, 0, 0, 0, 6, 1300, 0, 0, 0.994},
        {"lbm", Lang::kC, 2, 6, 16, 8, 22, 20, 1, 0, 0, 0, 0, 4, 800, 0, 0, 0.988},
    {"sphinx3", Lang::kC, 50, 3, 3, 3, 4, 80, 0, 0, 0, 0, 95, 6, 1300, 0, 0, 0.995},
    {"namd", Lang::kCpp, 6, 7, 7, 6, 19, 30, 0, 0, 0, 0, 5, 10, 1000, 0, 0, 1.000},
    {"dealII", Lang::kCpp, 55, 2, 4, 3, 18, 50, 20, 0, 0, 4, 85, 8, 800, 0, 0, 0.817},
    {"soplex", Lang::kCpp, 20, 4, 4, 4, 22, 40, 4, 0, 0, 2, 55, 8, 700, 0, 0, 0.964},
    {"povray", Lang::kCpp, 50, 2, 4, 3, 14, 50, 0, 1, 1, 1, 70, 6, 500, 0, 0, 0.999},
    {"bwaves", Lang::kFortran, 55, 4, 3, 4, 6, 40, 14, 4, 5, 0, 75, 6, 1000, 0, 0, 0.852},
    {"gamess", Lang::kFortran, 36, 4, 4, 4, 30, 40, 57, 0, 0, 0, 45, 12, 1800, 0, 0, 0.430},
        {"zeusmp", Lang::kFortran, 6, 8, 6, 5, 35, 30, 70, 0, 0, 0, 5, 15, 1000, 0, 0, 0.232},
        {"gromacs", Lang::kFortran, 7, 10, 7, 6, 25, 30, 14, 4, 3, 0, 5, 28, 800, 0, 0, 0.833},
    {"cactusADM", Lang::kFortran, 6, 8, 8, 6, 12, 30, 0, 0, 0, 0, 0, 40, 1300, 0, 0, 0.999},
        {"leslie3d", Lang::kFortran, 75, 2, 3, 3, 28, 90, 0, 0, 0, 0, 95, 4, 800, 0, 0, 1.000},
    {"calculix", Lang::kFortran, 38, 3, 4, 3, 7, 50, 69, 3, 2, 0, 80, 8, 1900, 4, 0, 0.287},
    {"GemsFDTD", Lang::kFortran, 46, 5, 4, 4, 29, 50, 0, 1, 32, 0, 60, 6, 1000, 0, 0, 0.987},
        {"tonto", Lang::kFortran, 22, 5, 4, 4, 32, 40, 5, 0, 0, 0, 20, 12, 1300, 0, 0, 0.950},
    {"wrf", Lang::kFortran, 58, 3, 4, 4, 27, 50, 71, 10, 26, 0, 85, 6, 1200, 0, 1, 0.270},
};

std::vector<SpecBenchmark> BuildSuite() {
  std::vector<SpecBenchmark> suite;
  uint64_t seed = 0x5bec0001;
  for (const RowSpec& r : kRows) {
    SynthParams p;
    p.seed = seed++;
    // Enough units per iteration that each benchmark's access mix is
    // statistically stable (avoids zero-write-site degeneracies).
    p.block_len = 80;
    switch (r.lang) {
      case Lang::kC:
        p.num_objects = 10;
        p.min_object_bytes = 64;
        p.max_object_bytes = 1024;
        p.global_pct = 10;
        p.call_pct = 8;
        break;
      case Lang::kCpp:
        p.num_objects = 12;
        p.min_object_bytes = 32;
        p.max_object_bytes = 512;
        p.global_pct = 8;
        p.call_pct = 12;
        break;
      case Lang::kFortran:
        p.num_objects = 8;
        p.min_object_bytes = 256;
        p.max_object_bytes = 4096;
        p.global_pct = 5;
        p.call_pct = 4;
        break;
    }
    p.mem_pct = r.mem;
    p.stream_pct = r.stream;
    p.stencil_unroll = r.unroll;
    p.max_accesses_per_ptr = r.maxacc;
    p.write_pct = r.write;
    p.indexed_pct = r.indexed;
    p.ref_only_pct = r.refonly;
    p.anti_idiom_pct = r.antipct;
    p.anti_idiom_sites = r.anti_sites;
    p.churn_pct = r.churn;
    p.split_base_pct = r.split;
    p.global_pct = r.globals;
    p.underflow_bug_sites = r.underflow_bugs;
    p.overflow_bug_sites = r.overflow_bugs;

    SpecBenchmark b;
    b.name = r.name;
    b.lang = r.lang;
    b.params = p;
    b.train_iters = 400;
    b.ref_iters = r.ref_iters;
    b.paper_fp_sites = r.anti_sites;
    b.paper_coverage = r.paper_cov;
    suite.push_back(b);
  }
  return suite;
}

}  // namespace

const std::vector<SpecBenchmark>& SpecSuite() {
  static const std::vector<SpecBenchmark> suite = BuildSuite();
  return suite;
}

BinaryImage BuildSpecBenchmark(const SpecBenchmark& bench) {
  return GenerateSynthProgram(bench.params);
}

}  // namespace redfat
