#include "src/workloads/cve.h"

#include "src/heap/lowfat.h"
#include "src/support/bits.h"
#include "src/support/check.h"
#include "src/support/str.h"
#include "src/workloads/builder.h"

namespace redfat {

namespace {

// Slot stride for objects of user size `size` under the redzone wrapper.
uint64_t SlotStride(uint64_t size) {
  const unsigned c = SizeClassFor(size + kRedzoneSize);
  REDFAT_CHECK(c != 0);
  return SizeClassBytes(c);
}

// Element index (element size `elem`) for a redzone-skipping access: the
// byte offset is out of the victim's bounds (so pointer-arithmetic checking
// must flag it) but lands inside a neighboring allocation's live payload
// under BOTH heap layouts an attacker would face — the low-fat wrapper
// (slot stride = size class) and the Memcheck allocator (16-byte header +
// 16-byte redzones around each payload). An attacker aware of the deployed
// defense crafts exactly such an offset (§7.2).
uint64_t SkipIndex(uint64_t victim_size, uint64_t elem, unsigned skip, unsigned neighbors) {
  const uint64_t mc_stride = AlignUp(16 + kRedzoneSize + victim_size + kRedzoneSize, 16);
  uint64_t offset = skip * SlotStride(victim_size) + 8;  // divisible by every elem
  const uint64_t limit = offset + 100 * mc_stride;
  for (; offset < limit; offset += elem) {
    // Memcheck layout: payload starts 32 bytes into each chunk.
    const uint64_t q = 32 + offset;
    const uint64_t chunk = q / mc_stride;
    const uint64_t rem = q % mc_stride;
    if (chunk >= 1 && chunk <= neighbors && rem >= 32 && rem + elem <= 32 + victim_size) {
      return offset / elem;
    }
  }
  REDFAT_FATAL("no evasive offset found");
}

// Shared overflow scaffold:
//   p = malloc(size); neighbors x malloc(size); all memset;
//   i = input(); access p[i] (element size 1<<elem_log2);
//   reads are output; exit 0.
BinaryImage BuildOverflowCase(uint64_t size, uint8_t elem_log2, bool write,
                              bool premultiplied, unsigned neighbors,
                              bool via_loop = false) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, size);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);  // victim
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.MovRI(Reg::kRsi, 0x41);
  as.MovRI(Reg::kRdx, size);
  as.HostCall(HostFn::kMemset);
  for (unsigned k = 0; k < neighbors; ++k) {
    as.MovRI(Reg::kRdi, size);
    as.HostCall(HostFn::kMalloc);
    as.MovRR(Reg::kRdi, Reg::kRax);
    as.MovRI(Reg::kRsi, 0x42 + k);
    as.MovRI(Reg::kRdx, size);
    as.HostCall(HostFn::kMemset);
  }
  as.HostCall(HostFn::kInputU64);
  as.MovRR(Reg::kR13, Reg::kRax);  // attacker index
  MemOperand op;
  if (premultiplied) {
    if (elem_log2 != 0) {
      as.ShlI(Reg::kR13, elem_log2);
    }
    op = MemBIS(Reg::kR12, Reg::kR13, 0, 0, elem_log2);
  } else {
    op = MemBIS(Reg::kR12, Reg::kR13, elem_log2, 0, elem_log2);
  }
  // Juliet ships both direct-access and for-loop flavors of each CWE-122
  // case; the loop variant executes the access from inside a counted loop.
  Assembler::Label loop{};
  if (via_loop) {
    as.MovRI(Reg::kRbx, 0);
    loop = as.NewLabel();
    as.Bind(loop);
  }
  if (write) {
    as.MovRI(Reg::kR14, 0x5c);
    as.Store(Reg::kR14, op);
  } else {
    as.Load(Reg::kR14, op);
    as.MovRR(Reg::kRdi, Reg::kR14);
    as.HostCall(HostFn::kOutputU64);
  }
  if (via_loop) {
    as.AddI(Reg::kRbx, 1);
    as.CmpI(Reg::kRbx, 1);
    as.Jcc(Cond::kUlt, loop);
  }
  pb.EmitExit(0);
  return pb.Finish();
}

}  // namespace

std::vector<VulnCase> CveCases() {
  std::vector<VulnCase> cases;

  // CVE-2007-3476 (php gd): unchecked palette index write, 4-byte elements
  // into a 1024-byte color table.
  {
    VulnCase c;
    c.name = "CVE-2007-3476 (php)";
    c.image = BuildOverflowCase(1024, 2, /*write=*/true, /*premultiplied=*/false, 4);
    c.attack_inputs = {SkipIndex(1024, 4, 1, 4)};
    c.benign_inputs = {7};
    c.is_write = true;
    cases.push_back(std::move(c));
  }
  // CVE-2016-1903 (php gd2): out-of-bounds read via crafted chunk offset.
  {
    VulnCase c;
    c.name = "CVE-2016-1903 (php)";
    c.image = BuildOverflowCase(256, 3, /*write=*/false, /*premultiplied=*/true, 6);
    c.attack_inputs = {SkipIndex(256, 8, 2, 6)};
    c.benign_inputs = {3};
    c.is_write = false;
    cases.push_back(std::move(c));
  }
  // CVE-2012-4295 (wireshark, Fig. 1): in_fmt->m_vc_index_array[speed-1]=0
  // with attacker-controlled speed; byte elements. speed large enough skips
  // the redzone entirely.
  {
    VulnCase c;
    c.name = "CVE-2012-4295 (wireshark)";
    c.image = BuildOverflowCase(32, 0, /*write=*/true, /*premultiplied=*/false, 6);
    c.attack_inputs = {SkipIndex(32, 1, 2, 6)};  // "speed - 1"
    c.benign_inputs = {4};
    c.is_write = true;
    cases.push_back(std::move(c));
  }
  // CVE-2016-2335 (7zip): HFS+ record write at unchecked 2-byte offset.
  {
    VulnCase c;
    c.name = "CVE-2016-2335 (7zip)";
    c.image = BuildOverflowCase(112, 1, /*write=*/true, /*premultiplied=*/true, 4);
    c.attack_inputs = {SkipIndex(112, 2, 1, 4)};
    c.benign_inputs = {20};
    c.is_write = true;
    cases.push_back(std::move(c));
  }
  return cases;
}

std::vector<VulnCase> JulietCwe122Cases() {
  std::vector<VulnCase> cases;
  const uint64_t sizes[] = {24, 64, 112, 256, 1024};
  for (uint8_t elem_log2 = 0; elem_log2 <= 3; ++elem_log2) {
    for (bool write : {false, true}) {
      for (bool premultiplied : {false, true}) {
        for (bool via_loop : {false, true}) {
          for (uint64_t size : sizes) {
            for (unsigned skip : {1u, 2u, 3u}) {
              VulnCase c;
              const uint64_t elem = uint64_t{1} << elem_log2;
              const unsigned neighbors = 2 * skip + 2;
              c.name = StrFormat("CWE122_s%llu_e%llu_%s_%s_%s_k%u",
                                 static_cast<unsigned long long>(size),
                                 static_cast<unsigned long long>(elem),
                                 write ? "write" : "read",
                                 premultiplied ? "pre" : "idx",
                                 via_loop ? "loop" : "direct", skip);
              c.image =
                  BuildOverflowCase(size, elem_log2, write, premultiplied, neighbors, via_loop);
              c.attack_inputs = {SkipIndex(size, elem, skip, neighbors)};
              c.benign_inputs = {1};
              c.is_write = write;
              cases.push_back(std::move(c));
            }
          }
        }
      }
    }
  }
  REDFAT_CHECK(cases.size() == 480);
  return cases;
}

}  // namespace redfat
