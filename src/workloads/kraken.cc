#include "src/workloads/kraken.h"

namespace redfat {

namespace {

// Kernel behaviour classes. Under write-only hardening, overhead tracks the
// density of heap *writes*; crypto kernels are register-arithmetic bound,
// image filters are write-streams, ai-astar chases pointers (reads).
SynthParams Kernel(uint64_t seed, unsigned mem, unsigned stream, unsigned write,
                   unsigned max_acc) {
  SynthParams p;
  p.seed = seed;
  p.num_objects = 8;
  p.min_object_bytes = 128;
  p.max_object_bytes = 2048;
  p.mem_pct = mem;
  p.stream_pct = stream;
  p.global_pct = 6;
  p.call_pct = 6;
  p.write_pct = write;
  p.max_accesses_per_ptr = max_acc;
  // Long blocks keep the unit mix statistically stable per kernel.
  p.block_len = 120;
  // The Chrome stand-in: lots of never-executed but fully instrumented code.
  p.filler_funcs = 500;
  p.filler_units_per_func = 10;
  return p;
}

std::vector<KrakenBenchmark> BuildSuite() {
  std::vector<KrakenBenchmark> s;
  uint64_t seed = 0xc401;
  auto add = [&](const char* name, SynthParams p, uint64_t iters = 1500) {
    s.push_back(KrakenBenchmark{name, p, iters});
  };
  add("ai-astar", Kernel(seed++, 30, 2, 6, 2));                // read-heavy search
  add("audio-beat-detection", Kernel(seed++, 16, 4, 18, 4));
  add("audio-dft", Kernel(seed++, 12, 2, 8, 6));
  add("audio-fft", Kernel(seed++, 12, 3, 15, 6));
  add("audio-oscillator", Kernel(seed++, 14, 4, 22, 4));
  add("imaging-gaussian-blur", Kernel(seed++, 18, 10, 55, 8));  // write streams
  add("imaging-darkroom", Kernel(seed++, 16, 8, 40, 8));
  add("imaging-desaturate", Kernel(seed++, 16, 12, 60, 6));
  add("json-parse-financial", Kernel(seed++, 18, 3, 10, 3));
  add("json-stringify-tinderbox", Kernel(seed++, 16, 3, 12, 3));
  add("crypto-aes", Kernel(seed++, 8, 2, 15, 2));              // ALU bound
  add("crypto-ccm", Kernel(seed++, 8, 2, 15, 2));
  add("crypto-pbkdf2", Kernel(seed++, 5, 1, 12, 2));
  add("crypto-sha256-iterative", Kernel(seed++, 5, 1, 12, 2));
  return s;
}

}  // namespace

const std::vector<KrakenBenchmark>& KrakenSuite() {
  static const std::vector<KrakenBenchmark> suite = BuildSuite();
  return suite;
}

BinaryImage BuildKrakenBenchmark(const KrakenBenchmark& bench) {
  return GenerateSynthProgram(bench.params);
}

}  // namespace redfat
