#include "src/workloads/synth.h"

#include <algorithm>
#include <vector>

#include "src/support/bits.h"
#include "src/support/check.h"
#include "src/support/rng.h"
#include "src/workloads/builder.h"

namespace redfat {

namespace {

// Register roles (hostcalls clobber rax and read rdi/rsi/rdx):
//   r8  outer-loop counter        r12 object pointer scratch
//   rbp mode word                 r13 index scratch
//   r15 checksum                  r14 value scratch
//   rax/rbx/rcx arithmetic        r10/r11 call/table scratch
constexpr Reg kIter = Reg::kR8;
constexpr Reg kMode = Reg::kRbp;
constexpr Reg kSum = Reg::kR15;
constexpr Reg kPtr = Reg::kR12;
constexpr Reg kPtr2 = Reg::kRbx;  // derived interior pointer (split-base units)
constexpr Reg kIdx = Reg::kR13;
constexpr Reg kVal = Reg::kR14;

struct ObjectInfo {
  uint64_t size = 0;      // bytes, multiple of 8
  uint64_t elems = 0;     // size / 8
  uint64_t table_addr = 0;
};

class SynthBuilder {
 public:
  explicit SynthBuilder(const SynthParams& p) : p_(p), rng_(p.seed) {}

  BinaryImage Build();

 private:
  Assembler& as() { return pb_.text(); }

  void LoadObjectPtr(unsigned j) {
    as().Load(kPtr, MemAbs(static_cast<int32_t>(objects_[j].table_addr)));
  }

  // Mode-gated ("ref-only") blocks: a gated unit only executes when
  // inputs[1] bit 0 is set, so the train run never exercises it and it
  // cannot be allow-listed. Gating decisions balance greedily on the number
  // of heap accesses (`weight`) so the uncovered fraction of dynamic
  // accesses lands on ref_only_pct with low variance.
  bool WantUncovered(uint64_t weight) {
    const uint64_t target = p_.ref_only_pct + p_.anti_idiom_pct;
    // Gate iff doing so lands the uncovered share nearer the target than
    // not gating (midpoint rule) — robust against lumpy stream weights.
    const bool yes = (2 * acc_uncovered_ + weight) * 100 <= 2 * target * (acc_total_ + weight);
    acc_total_ += weight;
    if (yes) {
      acc_uncovered_ += weight;
    }
    return yes;
  }

  bool MaybeOpenGate(uint64_t weight) {
    if (!WantUncovered(weight)) {
      return false;
    }
    // Route through an anti-idiom site instead of gating, proportionally.
    if (!anti_helpers_.empty() &&
        rng_.Chance(p_.anti_idiom_pct, p_.ref_only_pct + p_.anti_idiom_pct)) {
      pending_anti_ = true;
      return false;
    }
    Assembler& a = as();
    gate_skip_ = a.NewLabel();
    a.MovRR(Reg::kRax, kMode);
    a.AndI(Reg::kRax, 1);
    a.CmpI(Reg::kRax, 0);
    a.Jcc(Cond::kEq, gate_skip_);
    return true;
  }
  void CloseGate(bool gated) {
    if (gated) {
      as().Bind(gate_skip_);
    }
  }

  void EmitHelper(unsigned h);
  void EmitAntiIdiomHelper(unsigned k);
  void EmitPrologue();
  void EmitEpilogue();
  void EmitUnit();
  void EmitHeapMemUnit();
  void EmitStreamUnit();
  void EmitGlobalUnit();
  void EmitCallUnit();
  void EmitChurnUnit();
  void EmitArithUnit();
  void EmitBranchFork();

  const SynthParams& p_;
  Rng rng_;
  ProgramBuilder pb_;
  std::vector<ObjectInfo> objects_;
  std::vector<Assembler::Label> helpers_;
  std::vector<Assembler::Label> anti_helpers_;
  uint64_t globals_addr_ = 0;
  uint64_t fn_table_addr_ = 0;
  unsigned units_emitted_ = 0;
  Assembler::Label gate_skip_ = 0;
  uint64_t acc_total_ = 0;
  uint64_t acc_uncovered_ = 0;
  bool pending_anti_ = false;
  size_t anti_rr_ = 0;
};

void SynthBuilder::EmitHelper(unsigned h) {
  Assembler& a = as();
  a.Bind(helpers_[h]);
  // A couple of disp-addressed accesses, valid for every object
  // (min_object_bytes is the floor).
  const uint64_t max_disp = p_.min_object_bytes - 8;
  const int32_t d0 = static_cast<int32_t>(8 * rng_.Below(max_disp / 8 + 1));
  const int32_t d1 = static_cast<int32_t>(8 * rng_.Below(max_disp / 8 + 1));
  if (rng_.Chance(p_.write_pct, 100)) {
    a.MovRI(kVal, rng_.Next() & 0xffff);
    a.Store(kVal, MemAt(kPtr, d0));
  } else {
    a.Load(kVal, MemAt(kPtr, d0));
  }
  a.Load(kVal, MemAt(kPtr, d1));
  a.Add(kSum, kVal);
  a.AddI(kSum, static_cast<int32_t>(h + 1));
  a.Ret();
}

void SynthBuilder::EmitAntiIdiomHelper(unsigned k) {
  Assembler& a = as();
  a.Bind(anti_helpers_[k]);
  // fake = ptr - K; fake[(K + 8e)/8] targets ptr[e]: always valid, always a
  // LowFat false positive (§2 snippet (c)). K must exceed the 16-byte
  // redzone, or fake would still point into the same low-fat slot.
  const int32_t K = static_cast<int32_t>(8 * rng_.Range(3, 8));
  const uint64_t e = rng_.Below(p_.min_object_bytes / 8);
  a.SubI(kPtr, K);
  a.MovRI(kIdx, (static_cast<uint64_t>(K) + 8 * e) / 8);
  a.Load(kVal, MemBIS(kPtr, kIdx, 3, 0));  // <- the always-FP site
  a.Add(kSum, kVal);
  a.Ret();
}

void SynthBuilder::EmitPrologue() {
  Assembler& a = as();
  a.HostCall(HostFn::kInputU64);
  a.MovRR(kIter, Reg::kRax);
  a.HostCall(HostFn::kInputU64);
  a.MovRR(kMode, Reg::kRax);
  for (unsigned j = 0; j < objects_.size(); ++j) {
    const ObjectInfo& obj = objects_[j];
    a.MovRI(Reg::kRdi, obj.size);
    a.HostCall(HostFn::kMalloc);
    a.Store(Reg::kRax, MemAbs(static_cast<int32_t>(obj.table_addr)));
    a.MovRR(Reg::kRdi, Reg::kRax);
    a.MovRI(Reg::kRsi, (j * 17 + 3) & 0xff);
    a.MovRI(Reg::kRdx, obj.size);
    a.HostCall(HostFn::kMemset);
  }
  for (unsigned h = 0; h < helpers_.size(); ++h) {
    a.MovLabelAddr(Reg::kR10, helpers_[h]);
    a.Store(Reg::kR10, MemAbs(static_cast<int32_t>(fn_table_addr_ + 8 * h)));
  }
  a.MovRI(kSum, 0);
}

void SynthBuilder::EmitEpilogue() {
  Assembler& a = as();
  a.MovRR(Reg::kRdi, kSum);
  a.HostCall(HostFn::kOutputU64);
  for (const ObjectInfo& obj : objects_) {
    a.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(obj.table_addr)));
    a.HostCall(HostFn::kFree);
  }
  pb_.EmitExit(0);
}

void SynthBuilder::EmitHeapMemUnit() {
  Assembler& a = as();
  const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
  const ObjectInfo& obj = objects_[j];
  const unsigned planned = static_cast<unsigned>(rng_.Range(1, p_.max_accesses_per_ptr));
  const bool gated = MaybeOpenGate(planned);
  LoadObjectPtr(j);
  if (pending_anti_) {
    pending_anti_ = false;
    // The routed unit performs 1 access, not `planned`: fix the accounting.
    acc_total_ -= planned - 1;
    acc_uncovered_ -= planned - 1;
    a.Call(anti_helpers_[anti_rr_++ % anti_helpers_.size()]);
  } else {
    // Struct-field / stencil pattern: several accesses through one pointer
    // (the raw material for check batching and merging, Fig. 6). Indexed
    // accesses come last: writing the index register closes a batch.
    const unsigned n = planned;
    const bool indexed_tail = rng_.Chance(p_.indexed_pct, 100);
    const bool split = n >= 2 && obj.elems >= 4 && rng_.Chance(p_.split_base_pct, 100);
    if (split) {
      // Derived interior pointer: accesses through it batch with the kPtr
      // ones (kPtr2 is assigned before the leader) but never merge (a
      // different operand shape).
      a.MovRR(kPtr2, kPtr);
      a.AddI(kPtr2, 16);
    }
    for (unsigned i = 0; i + 1 < n; ++i) {
      const bool write = rng_.Chance(p_.write_pct, 100);
      const bool via_split = split && i % 2 == 1;
      const Reg base = via_split ? kPtr2 : kPtr;
      const uint64_t max_words = via_split ? obj.elems - 2 : obj.elems;
      const int32_t disp = static_cast<int32_t>(8 * rng_.Below(max_words));
      if (write) {
        if (rng_.Chance(1, 2)) {
          a.StoreI(MemAt(base, disp), static_cast<int32_t>(rng_.Next() & 0x7fff));
        } else {
          a.Store(kVal, MemAt(base, disp));  // kVal carries a stale det. value
        }
      } else {
        a.Load(kVal, MemAt(base, disp));
        // No flag/pointer-reg writes between accesses: keep the batch open.
      }
    }
    const bool write = rng_.Chance(p_.write_pct, 100);
    if (indexed_tail) {
      const uint64_t disp_words = rng_.Below(3);
      const int32_t disp = static_cast<int32_t>(8 * disp_words);
      const uint64_t idx = rng_.Below(obj.elems - disp_words);
      a.MovRI(kIdx, idx);
      if (write) {
        a.MovRI(kVal, rng_.Next() & 0xffff);
        a.Store(kVal, MemBIS(kPtr, kIdx, 3, disp));
      } else {
        a.Load(kVal, MemBIS(kPtr, kIdx, 3, disp));
        a.Add(kSum, kVal);
      }
    } else {
      const int32_t disp = static_cast<int32_t>(8 * rng_.Below(obj.elems));
      if (write) {
        a.MovRI(kVal, rng_.Next() & 0xffff);
        a.Store(kVal, MemAt(kPtr, disp));
      } else {
        a.Load(kVal, MemAt(kPtr, disp));
        a.Add(kSum, kVal);
      }
    }
  }
  CloseGate(gated);
}

void SynthBuilder::EmitStreamUnit() {
  // Stencil kernel: each inner-loop iteration touches `stencil_unroll`
  // same-shape operands (base, idx*8, disp k*8) — exactly the pattern the
  // check merging optimization collapses into a single ranged check (the
  // lbm/milc behaviour in Table 1).
  Assembler& a = as();
  const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
  const ObjectInfo& obj = objects_[j];
  const unsigned unroll =
      static_cast<unsigned>(std::min<uint64_t>(std::max(1u, p_.stencil_unroll),
                                               obj.elems > 1 ? obj.elems - 1 : 1));
  const uint64_t iters = std::min<uint64_t>(obj.elems - unroll, 4);
  const bool gated = MaybeOpenGate(unroll * std::max<uint64_t>(iters, 1));
  if (pending_anti_) {
    pending_anti_ = false;
    const uint64_t w = unroll * std::max<uint64_t>(iters, 1);
    acc_total_ -= w - 1;
    acc_uncovered_ -= w - 1;
    LoadObjectPtr(j);
    a.Call(anti_helpers_[anti_rr_++ % anti_helpers_.size()]);
    CloseGate(gated);
    return;
  }
  LoadObjectPtr(j);
  a.MovRI(kIdx, 0);
  auto loop = a.NewLabel();
  a.Bind(loop);
  const bool write = rng_.Chance(p_.write_pct, 100);
  for (unsigned k = 0; k < unroll; ++k) {
    const int32_t disp = static_cast<int32_t>(8 * k);
    if (write) {
      a.Store(kVal, MemBIS(kPtr, kIdx, 3, disp));
    } else {
      a.Load(kVal, MemBIS(kPtr, kIdx, 3, disp));
    }
  }
  if (!write) {
    a.Add(kSum, kVal);
  }
  a.AddI(kIdx, 1);
  a.CmpI(kIdx, static_cast<int32_t>(iters));
  a.Jcc(Cond::kUlt, loop);
  CloseGate(gated);
}

void SynthBuilder::EmitGlobalUnit() {
  Assembler& a = as();
  const int32_t disp = static_cast<int32_t>(8 * rng_.Below(512));
  switch (rng_.Below(4)) {
    case 0:
      a.StoreI(MemAbs(static_cast<int32_t>(globals_addr_) + disp),
               static_cast<int32_t>(rng_.Next() & 0x7fff));
      break;
    case 1:
      a.Load(kVal, MemAbs(static_cast<int32_t>(globals_addr_) + disp));
      a.Add(kSum, kVal);
      break;
    case 2:
      // Register spill: stack slot below rsp (leaf red-zone usage).
      a.MovRI(kVal, rng_.Next() & 0xffff);
      a.Store(kVal, MemAt(Reg::kRsp, -static_cast<int32_t>(8 + 8 * rng_.Below(16))));
      break;
    default:
      // Spill reload.
      a.Load(kVal, MemAt(Reg::kRsp, -static_cast<int32_t>(8 + 8 * rng_.Below(16))));
      a.Add(kSum, kVal);
      break;
  }
}

void SynthBuilder::EmitCallUnit() {
  // Helper sites are shared across call units, so gating them would not
  // control coverage cleanly; they stay ungated (profiled in train), and
  // their accesses count as covered in the gating balance.
  acc_total_ += 2;
  Assembler& a = as();
  const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
  const unsigned h = static_cast<unsigned>(rng_.Below(helpers_.size()));
  LoadObjectPtr(j);
  if (rng_.Chance(1, 2)) {
    a.Call(helpers_[h]);
  } else {
    a.Load(Reg::kR11, MemAbs(static_cast<int32_t>(fn_table_addr_ + 8 * h)));
    a.CallR(Reg::kR11);
  }
}

void SynthBuilder::EmitChurnUnit() {
  Assembler& a = as();
  const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
  const ObjectInfo& obj = objects_[j];
  a.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(obj.table_addr)));
  a.HostCall(HostFn::kFree);
  a.MovRI(Reg::kRdi, obj.size);
  a.HostCall(HostFn::kMalloc);
  a.Store(Reg::kRax, MemAbs(static_cast<int32_t>(obj.table_addr)));
  a.MovRR(Reg::kRdi, Reg::kRax);
  a.MovRI(Reg::kRsi, (j * 29 + 7) & 0xff);
  a.MovRI(Reg::kRdx, obj.size);
  a.HostCall(HostFn::kMemset);
}

void SynthBuilder::EmitArithUnit() {
  Assembler& a = as();
  a.MovRI(Reg::kRax, rng_.Next() & 0xffffff);
  const unsigned n = static_cast<unsigned>(rng_.Range(1, 3));
  for (unsigned i = 0; i < n; ++i) {
    const int32_t c = static_cast<int32_t>(rng_.Next() & 0xffff) | 1;
    switch (rng_.Below(5)) {
      case 0: a.AddI(Reg::kRax, c); break;
      case 1: a.ImulI(Reg::kRax, c); break;
      case 2: a.XorI(Reg::kRax, c); break;
      case 3: a.ShlI(Reg::kRax, static_cast<uint8_t>(rng_.Below(8))); break;
      default:
        a.MovRI(Reg::kRbx, static_cast<uint64_t>(c));
        a.Add(Reg::kRax, Reg::kRbx);
        break;
    }
  }
  a.Add(kSum, Reg::kRax);
}

void SynthBuilder::EmitBranchFork() {
  Assembler& a = as();
  auto else_l = a.NewLabel();
  auto end_l = a.NewLabel();
  const uint32_t bit = 1u << rng_.Range(1, 5);
  a.MovRR(Reg::kRax, kMode);
  a.AndI(Reg::kRax, static_cast<int32_t>(bit));
  a.CmpI(Reg::kRax, 0);
  a.Jcc(Cond::kEq, else_l);
  EmitArithUnit();
  a.Jmp(end_l);
  a.Bind(else_l);
  EmitArithUnit();
  a.Bind(end_l);
}

void SynthBuilder::EmitUnit() {
  ++units_emitted_;
  if (p_.branch_every != 0 && units_emitted_ % p_.branch_every == 0) {
    EmitBranchFork();
    return;
  }
  const uint64_t r = rng_.Below(100);
  uint64_t acc = p_.mem_pct;
  if (r < acc) {
    EmitHeapMemUnit();
    return;
  }
  if (r < (acc += p_.stream_pct)) {
    EmitStreamUnit();
    return;
  }
  if (r < (acc += p_.global_pct)) {
    EmitGlobalUnit();
    return;
  }
  if (r < (acc += p_.call_pct)) {
    EmitCallUnit();
    return;
  }
  if (r < (acc += p_.churn_pct)) {
    EmitChurnUnit();
    return;
  }
  EmitArithUnit();
}

BinaryImage SynthBuilder::Build() {
  REDFAT_CHECK(p_.num_objects > 0);
  REDFAT_CHECK(p_.min_object_bytes >= 16 && p_.min_object_bytes <= p_.max_object_bytes);

  // Data layout.
  for (unsigned j = 0; j < p_.num_objects; ++j) {
    ObjectInfo obj;
    obj.size = AlignUp(rng_.Range(p_.min_object_bytes, p_.max_object_bytes), 8);
    obj.elems = obj.size / 8;
    obj.table_addr = pb_.AddDataU64({0});
    objects_.push_back(obj);
  }
  fn_table_addr_ = pb_.AddZeroData(8 * std::max(1u, p_.num_helpers));
  globals_addr_ = pb_.AddZeroData(8 * 512);

  Assembler& a = as();
  auto main_l = a.NewLabel();
  a.Jmp(main_l);
  for (unsigned h = 0; h < p_.num_helpers; ++h) {
    helpers_.push_back(a.NewLabel());
    EmitHelper(h);
  }
  if (p_.anti_idiom_sites > 0 || p_.anti_idiom_pct > 0) {
    for (unsigned k = 0; k < std::max(1u, p_.anti_idiom_sites); ++k) {
      anti_helpers_.push_back(a.NewLabel());
      EmitAntiIdiomHelper(k);
    }
  }

  // Unreachable filler functions: rewritten and instrumented like real code,
  // but never executed (binary-scale ballast for the Chrome experiment).
  for (unsigned f = 0; f < p_.filler_funcs; ++f) {
    for (unsigned u = 0; u < p_.filler_units_per_func; ++u) {
      if (rng_.Chance(1, 2)) {
        const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
        LoadObjectPtr(j);
        const int32_t disp = static_cast<int32_t>(8 * rng_.Below(objects_[j].elems));
        if (rng_.Chance(1, 2)) {
          a.StoreI(MemAt(kPtr, disp), 1);
        } else {
          a.Load(kVal, MemAt(kPtr, disp));
        }
      } else {
        a.MovRI(Reg::kRax, rng_.Next() & 0xffff);
        a.ImulI(Reg::kRax, 3);
      }
    }
    a.Ret();
  }

  a.Bind(main_l);
  EmitPrologue();
  // Latent real bugs (executed once; results never reach the checksum, so
  // baseline and hardened outputs still agree).
  for (unsigned u = 0; u < p_.underflow_bug_sites; ++u) {
    const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
    LoadObjectPtr(j);
    a.Load(kVal, MemAt(kPtr, -8));  // array[-1]: lands in the redzone
    a.MovRI(kVal, 0);  // the read value is allocator-dependent: discard it
  }
  for (unsigned u = 0; u < p_.overflow_bug_sites; ++u) {
    const unsigned j = static_cast<unsigned>(rng_.Below(objects_.size()));
    LoadObjectPtr(j);
    a.Load(kVal, MemAt(kPtr, static_cast<int32_t>(objects_[j].size)));  // one past end
    a.MovRI(kVal, 0);
  }
  auto loop_head = a.NewLabel();
  auto loop_end = a.NewLabel();
  a.Bind(loop_head);
  a.CmpI(kIter, 0);
  a.Jcc(Cond::kEq, loop_end);
  // Cold anti-idiom sweep: every 64th iteration exercises every anti-idiom
  // site once, so each distinct site (a) shows up during profiling and is
  // excluded from the allow-list, and (b) is reported as a false positive
  // under full-on checking — while contributing almost nothing to the
  // dynamic access mix (the GemsFDTD pattern: 32 FP sites, 98.7% coverage).
  if (!anti_helpers_.empty()) {
    auto no_sweep = a.NewLabel();
    a.MovRR(Reg::kRax, kIter);
    a.AndI(Reg::kRax, 63);
    a.CmpI(Reg::kRax, 0);
    a.Jcc(Cond::kNe, no_sweep);
    for (size_t k = 0; k < anti_helpers_.size(); ++k) {
      LoadObjectPtr(static_cast<unsigned>(rng_.Below(objects_.size())));
      a.Call(anti_helpers_[k]);
    }
    a.Bind(no_sweep);
  }
  for (unsigned u = 0; u < p_.block_len; ++u) {
    EmitUnit();
  }
  a.SubI(kIter, 1);
  a.Jmp(loop_head);
  a.Bind(loop_end);
  EmitEpilogue();
  return pb_.Finish();
}

// Server workload register roles (hostcalls clobber rax, read rdi/rsi/rdx):
//   r8  requests remaining        r12 queue head index
//   r15 checksum                  r13 queue tail index
//   rbx LCG state                 r14 live request count
//   r9  queue base address        rbp/r10/r11/rcx scratch
class ServerBuilder {
 public:
  explicit ServerBuilder(const ServerParams& p) : p_(p) {}

  BinaryImage Build() {
    REDFAT_CHECK(p_.queue_slots >= 2);
    REDFAT_CHECK(p_.consume_threshold >= 1 && p_.consume_threshold <= p_.queue_slots);
    REDFAT_CHECK(p_.min_request_bytes >= 16 && p_.min_request_bytes % 8 == 0);

    // Ring queue: queue_slots slots of {ptr, len_bytes}.
    queue_addr_ = pb_.AddZeroData(16 * p_.queue_slots);

    Assembler& a = pb_.text();
    auto main_l = a.NewLabel();
    consume_l_ = a.NewLabel();
    a.Jmp(main_l);
    EmitConsumeHelper();

    a.Bind(main_l);
    a.HostCall(HostFn::kInputU64);  // inputs[0]: number of requests
    a.MovRR(Reg::kR8, Reg::kRax);
    a.MovRI(Reg::kRbx, p_.seed | 1);
    a.MovRI(Reg::kR12, 0);
    a.MovRI(Reg::kR13, 0);
    a.MovRI(Reg::kR14, 0);
    a.MovRI(Reg::kR15, 0);
    a.MovRI(Reg::kR9, queue_addr_);

    auto loop_head = a.NewLabel();
    auto drain = a.NewLabel();
    a.Bind(loop_head);
    a.CmpI(Reg::kR8, 0);
    a.Jcc(Cond::kEq, drain);

    // Produce one request. LCG step (Knuth MMIX constants), sized from the
    // generator's high bits so consecutive requests differ.
    a.MovRI(Reg::kRcx, 6364136223846793005ULL);
    a.Imul(Reg::kRbx, Reg::kRcx);
    a.MovRI(Reg::kRcx, 1442695040888963407ULL);
    a.Add(Reg::kRbx, Reg::kRcx);
    a.MovRR(Reg::kR10, Reg::kRbx);
    a.ShrI(Reg::kR10, 33);
    a.AndI(Reg::kR10, static_cast<int32_t>(p_.size_mask));
    a.ShlI(Reg::kR10, 3);
    a.AddI(Reg::kR10, static_cast<int32_t>(p_.min_request_bytes));  // bytes
    a.MovRR(Reg::kR11, Reg::kR10);
    a.MovRR(Reg::kRdi, Reg::kR10);
    a.HostCall(HostFn::kMalloc);
    a.MovRR(Reg::kRbp, Reg::kRax);  // request pointer survives the memset
    // slot[tail] = {ptr, bytes}
    a.MovRR(Reg::kRcx, Reg::kR13);
    a.ShlI(Reg::kRcx, 4);
    a.Store(Reg::kRbp, MemBIS(Reg::kR9, Reg::kRcx, 0, 0));
    a.Store(Reg::kR11, MemBIS(Reg::kR9, Reg::kRcx, 0, 8));
    // Deterministic payload: memset pattern keyed to the request counter,
    // then two header words (id + generator tag) the consumer checksums.
    a.MovRR(Reg::kRdi, Reg::kRbp);
    a.MovRR(Reg::kRsi, Reg::kR8);
    a.AndI(Reg::kRsi, 0xff);
    a.MovRR(Reg::kRdx, Reg::kR11);
    a.HostCall(HostFn::kMemset);
    a.Store(Reg::kR8, MemAt(Reg::kRbp, 0));
    a.MovRR(Reg::kRcx, Reg::kRbx);
    a.ShrI(Reg::kRcx, 17);
    a.Store(Reg::kRcx, MemAt(Reg::kRbp, 8));
    // tail = (tail + 1) % slots; ++live; --requests
    auto no_wrap = a.NewLabel();
    a.AddI(Reg::kR13, 1);
    a.CmpI(Reg::kR13, static_cast<int32_t>(p_.queue_slots));
    a.Jcc(Cond::kUlt, no_wrap);
    a.MovRI(Reg::kR13, 0);
    a.Bind(no_wrap);
    a.AddI(Reg::kR14, 1);
    a.SubI(Reg::kR8, 1);
    // Consume one response once the queue is loaded past the threshold.
    a.CmpI(Reg::kR14, static_cast<int32_t>(p_.consume_threshold));
    a.Jcc(Cond::kUlt, loop_head);
    a.Call(consume_l_);
    a.Jmp(loop_head);

    // No more requests: drain everything still queued.
    a.Bind(drain);
    auto done = a.NewLabel();
    a.CmpI(Reg::kR14, 0);
    a.Jcc(Cond::kEq, done);
    a.Call(consume_l_);
    a.Jmp(drain);
    a.Bind(done);
    a.MovRR(Reg::kRdi, Reg::kR15);
    a.HostCall(HostFn::kOutputU64);
    pb_.EmitExit(0);
    return pb_.Finish();
  }

 private:
  // Consume the request at head: checksum every payload word, free it,
  // advance head.
  void EmitConsumeHelper() {
    Assembler& a = pb_.text();
    a.Bind(consume_l_);
    a.MovRR(Reg::kRcx, Reg::kR12);
    a.ShlI(Reg::kRcx, 4);
    a.Load(Reg::kRbp, MemBIS(Reg::kR9, Reg::kRcx, 0, 0));  // ptr
    a.Load(Reg::kR10, MemBIS(Reg::kR9, Reg::kRcx, 0, 8));  // bytes
    a.ShrI(Reg::kR10, 3);                                  // words
    a.MovRI(Reg::kRcx, 0);
    auto walk = a.NewLabel();
    a.Bind(walk);
    a.Load(Reg::kR11, MemBIS(Reg::kRbp, Reg::kRcx, 3, 0));
    a.Add(Reg::kR15, Reg::kR11);
    a.AddI(Reg::kRcx, 1);
    a.Cmp(Reg::kRcx, Reg::kR10);
    a.Jcc(Cond::kUlt, walk);
    a.MovRR(Reg::kRdi, Reg::kRbp);
    a.HostCall(HostFn::kFree);
    auto no_wrap = a.NewLabel();
    a.AddI(Reg::kR12, 1);
    a.CmpI(Reg::kR12, static_cast<int32_t>(p_.queue_slots));
    a.Jcc(Cond::kUlt, no_wrap);
    a.MovRI(Reg::kR12, 0);
    a.Bind(no_wrap);
    a.SubI(Reg::kR14, 1);
    a.Ret();
  }

  const ServerParams& p_;
  ProgramBuilder pb_;
  uint64_t queue_addr_ = 0;
  Assembler::Label consume_l_ = 0;
};

}  // namespace

BinaryImage GenerateSynthProgram(const SynthParams& params) {
  SynthBuilder builder(params);
  return builder.Build();
}

BinaryImage GenerateServerProgram(const ServerParams& params) {
  ServerBuilder builder(params);
  return builder.Build();
}

// UAF workload register roles (hostcalls clobber rax, read rdi/rsi/rdx):
//   r8 mode (inputs[0])   r15 checksum   rbp/rcx/rdx/rdi/rsi scratch
BinaryImage GenerateUafProgram(const UafParams& params) {
  REDFAT_CHECK(params.num_objects >= 2);
  const unsigned n = params.num_objects;
  const unsigned victim = n / 2;  // sits between still-live neighbours
  const uint64_t bytes = (params.object_bytes + 7) & ~7ULL;

  ProgramBuilder pb;
  // Pointer table in the data section; the victim's slot is left stale
  // after the free so the bug paths can reload it.
  const uint64_t table = pb.AddZeroData(8 * n);
  Assembler& a = pb.text();

  a.HostCall(HostFn::kInputU64);  // inputs[0]: mode
  a.MovRR(Reg::kR8, Reg::kRax);
  a.MovRI(Reg::kR15, 0);

  // Allocate and deterministically fill every object, checksumming the
  // header word of each (all before the bug, so the checksum is identical
  // across modes and runtimes).
  for (unsigned i = 0; i < n; ++i) {
    a.MovRI(Reg::kRdi, bytes);
    a.HostCall(HostFn::kMalloc);
    a.MovRR(Reg::kRbp, Reg::kRax);
    a.Store(Reg::kRbp, MemAbs(static_cast<int32_t>(table + 8 * i)));
    a.MovRR(Reg::kRdi, Reg::kRbp);
    a.MovRI(Reg::kRsi, (params.seed + i) & 0xff);
    a.MovRI(Reg::kRdx, bytes);
    a.HostCall(HostFn::kMemset);
    a.MovRI(Reg::kRcx, params.seed * 0x9e3779b97f4a7c15ULL + i);
    a.Store(Reg::kRcx, MemAt(Reg::kRbp, 0));
    a.Load(Reg::kRcx, MemAt(Reg::kRbp, 0));
    a.Add(Reg::kR15, Reg::kRcx);
  }

  // Free the victim; its table slot goes stale on purpose.
  a.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(table + 8 * victim)));
  a.HostCall(HostFn::kFree);

  auto not_uaf = a.NewLabel();
  auto epilogue = a.NewLabel();
  a.CmpI(Reg::kR8, 1);
  a.Jcc(Cond::kNe, not_uaf);
  // mode 1: one store through the stale pointer (nothing reads it back).
  a.Load(Reg::kRcx, MemAbs(static_cast<int32_t>(table + 8 * victim)));
  a.MovRI(Reg::kRdx, 0xdead);
  a.Store(Reg::kRdx, MemBIS(Reg::kNone, Reg::kRcx, 0, 0));  // stale, ambiguous
  a.Jmp(epilogue);

  a.Bind(not_uaf);
  a.CmpI(Reg::kR8, 2);
  a.Jcc(Cond::kNe, epilogue);
  // mode 2: free the victim a second time.
  a.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(table + 8 * victim)));
  a.HostCall(HostFn::kFree);

  a.Bind(epilogue);
  for (unsigned i = 0; i < n; ++i) {
    if (i == victim) {
      continue;
    }
    a.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(table + 8 * i)));
    a.HostCall(HostFn::kFree);
  }
  a.MovRR(Reg::kRdi, Reg::kR15);
  a.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

// Churn workload register roles (hostcalls clobber rax, read rdi/rsi/rdx):
//   r8  operations remaining      r9  pointer-table base
//   rbp mode (inputs[1])          r15 checksum
//   rbx LCG state                 r10/r11/r13/rcx/rdx/rdi/rsi scratch
BinaryImage GenerateChurnProgram(const ChurnParams& params) {
  REDFAT_CHECK(params.table_slots >= 2 &&
               (params.table_slots & (params.table_slots - 1)) == 0);
  REDFAT_CHECK(params.size_steps >= 1 &&
               (params.size_steps & (params.size_steps - 1)) == 0);
  REDFAT_CHECK(params.min_bytes >= 16 && params.min_bytes % 8 == 0);
  REDFAT_CHECK(params.tail_objects >= 2);

  ProgramBuilder pb;
  const uint64_t table = pb.AddZeroData(8 * params.table_slots);
  const uint64_t tail_table = pb.AddZeroData(8 * params.tail_objects);
  Assembler& a = pb.text();

  a.HostCall(HostFn::kInputU64);  // inputs[0]: operations
  a.MovRR(Reg::kR8, Reg::kRax);
  a.HostCall(HostFn::kInputU64);  // inputs[1]: mode
  a.MovRR(Reg::kRbp, Reg::kRax);
  a.MovRI(Reg::kRbx, params.seed | 1);
  a.MovRI(Reg::kR9, table);
  a.MovRI(Reg::kR15, 0);

  auto loop_head = a.NewLabel();
  auto drain = a.NewLabel();
  a.Bind(loop_head);
  a.CmpI(Reg::kR8, 0);
  a.Jcc(Cond::kEq, drain);
  // LCG step (Knuth MMIX constants); slot and size come from disjoint bit
  // ranges so they decorrelate.
  a.MovRI(Reg::kRcx, 6364136223846793005ULL);
  a.Imul(Reg::kRbx, Reg::kRcx);
  a.MovRI(Reg::kRcx, 1442695040888963407ULL);
  a.Add(Reg::kRbx, Reg::kRcx);
  a.MovRR(Reg::kR10, Reg::kRbx);
  a.ShrI(Reg::kR10, 41);
  a.AndI(Reg::kR10, static_cast<int32_t>(params.table_slots - 1));
  a.ShlI(Reg::kR10, 3);  // byte offset into the table
  // Evict the slot's current tenant: checksum its header, then free it.
  auto no_free = a.NewLabel();
  a.Load(Reg::kR11, MemBIS(Reg::kR9, Reg::kR10, 0, 0));
  a.CmpI(Reg::kR11, 0);
  a.Jcc(Cond::kEq, no_free);
  a.Load(Reg::kRcx, MemAt(Reg::kR11, 0));
  a.Add(Reg::kR15, Reg::kRcx);
  a.MovRR(Reg::kRdi, Reg::kR11);
  a.HostCall(HostFn::kFree);
  a.Bind(no_free);
  // New tenant: bytes = min + (lcg bits) * 16, deterministically filled.
  a.MovRR(Reg::kRcx, Reg::kRbx);
  a.ShrI(Reg::kRcx, 13);
  a.AndI(Reg::kRcx, static_cast<int32_t>(params.size_steps - 1));
  a.ShlI(Reg::kRcx, 4);
  a.AddI(Reg::kRcx, static_cast<int32_t>(params.min_bytes));
  a.MovRR(Reg::kR11, Reg::kRcx);  // bytes survives the hostcalls
  a.MovRR(Reg::kRdi, Reg::kRcx);
  a.HostCall(HostFn::kMalloc);
  a.MovRR(Reg::kR13, Reg::kRax);
  a.Store(Reg::kR13, MemBIS(Reg::kR9, Reg::kR10, 0, 0));
  a.MovRR(Reg::kRdi, Reg::kR13);
  a.MovRR(Reg::kRsi, Reg::kR8);
  a.AndI(Reg::kRsi, 0xff);
  a.MovRR(Reg::kRdx, Reg::kR11);
  a.HostCall(HostFn::kMemset);
  // Header word: a pure function of the LCG stream, so the checksum the
  // next eviction folds in is allocator-independent.
  a.MovRR(Reg::kRcx, Reg::kRbx);
  a.ShrI(Reg::kRcx, 7);
  a.Store(Reg::kRcx, MemAt(Reg::kR13, 0));
  a.SubI(Reg::kR8, 1);
  a.Jmp(loop_head);

  // Final drain: checksum and free every surviving tenant, then emit the
  // checksum — before any mode-gated bug, so it always reaches the output.
  a.Bind(drain);
  for (unsigned i = 0; i < params.table_slots; ++i) {
    auto skip = a.NewLabel();
    a.Load(Reg::kR11, MemAbs(static_cast<int32_t>(table + 8 * i)));
    a.CmpI(Reg::kR11, 0);
    a.Jcc(Cond::kEq, skip);
    a.Load(Reg::kRcx, MemAt(Reg::kR11, 0));
    a.Add(Reg::kR15, Reg::kRcx);
    a.MovRR(Reg::kRdi, Reg::kR11);
    a.HostCall(HostFn::kFree);
    a.Bind(skip);
  }
  a.MovRR(Reg::kRdi, Reg::kR15);
  a.HostCall(HostFn::kOutputU64);

  auto not_forge = a.NewLabel();
  auto exit_l = a.NewLabel();
  a.CmpI(Reg::kRbp, 1);
  a.Jcc(Cond::kNe, not_forge);
  {
    // mode 1: populate a fresh size class, free everything (the first object
    // freed — the victim — ends up at the bottom of the class freelist once
    // any quarantine drains past it), forge the victim's in-guest link word
    // through a stale pointer, then reallocate until the allocator pops the
    // victim and decodes the forged link. The forge happens after the frees:
    // a freed slot's link is legitimately rewritten while later frees chain
    // behind it, so only a post-free forge survives to be walked.
    a.MovRI(Reg::kR13, tail_table);
    a.MovRI(Reg::kR10, 0);
    auto alloc_loop = a.NewLabel();
    auto alloc_done = a.NewLabel();
    a.Bind(alloc_loop);
    a.CmpI(Reg::kR10, static_cast<int32_t>(params.tail_objects));
    a.Jcc(Cond::kEq, alloc_done);
    a.MovRI(Reg::kRdi, params.tail_bytes);
    a.HostCall(HostFn::kMalloc);
    a.Store(Reg::kRax, MemBIS(Reg::kR13, Reg::kR10, 3, 0));
    a.AddI(Reg::kR10, 1);
    a.Jmp(alloc_loop);
    a.Bind(alloc_done);
    a.Load(Reg::kR11, MemAt(Reg::kR13, 0));  // victim, kept stale
    a.MovRI(Reg::kR10, 0);
    auto free_loop = a.NewLabel();
    auto free_done = a.NewLabel();
    a.Bind(free_loop);
    a.CmpI(Reg::kR10, static_cast<int32_t>(params.tail_objects));
    a.Jcc(Cond::kEq, free_done);
    a.Load(Reg::kRdi, MemBIS(Reg::kR13, Reg::kR10, 3, 0));
    a.HostCall(HostFn::kFree);
    a.AddI(Reg::kR10, 1);
    a.Jmp(free_loop);
    a.Bind(free_done);
    a.MovRI(Reg::kRcx, 0x4141414141414141ULL);
    a.Store(Reg::kRcx, MemAt(Reg::kR11, -8));  // the freed slot's link word
    // Reallocate until the pop path reaches the victim and decodes the
    // forged link (the victim sits at the bottom of the LIFO chain).
    a.MovRI(Reg::kR10, 0);
    auto pop_loop = a.NewLabel();
    a.Bind(pop_loop);
    a.CmpI(Reg::kR10, static_cast<int32_t>(params.tail_objects));
    a.Jcc(Cond::kEq, exit_l);
    a.MovRI(Reg::kRdi, params.tail_bytes);
    a.HostCall(HostFn::kMalloc);
    a.AddI(Reg::kR10, 1);
    a.Jmp(pop_loop);
  }
  a.Bind(not_forge);
  a.CmpI(Reg::kRbp, 2);
  a.Jcc(Cond::kNe, exit_l);
  {
    // mode 2: free an interior pointer of a live object — misaligned for
    // its size class, so prot-freelist rejects it instead of poisoning the
    // freelist with an overlapping slot.
    a.MovRI(Reg::kRdi, params.tail_bytes);
    a.HostCall(HostFn::kMalloc);
    a.MovRR(Reg::kRdi, Reg::kRax);
    a.AddI(Reg::kRdi, 64);
    a.HostCall(HostFn::kFree);
  }
  a.Bind(exit_l);
  pb.EmitExit(0);
  return pb.Finish();
}

std::vector<uint64_t> TrainInputs(uint64_t iters) { return {iters, 0x3e}; }

std::vector<uint64_t> RefInputs(uint64_t iters) { return {iters, 0x3f}; }

}  // namespace redfat
