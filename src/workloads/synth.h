// Synthetic workload generator.
//
// Generates deterministic guest programs that exercise the instrumentation
// the way compiled C/C++/Fortran does: heap objects accessed through
// base+index*scale+disp operands, tight inner loops, global/stack traffic,
// helper calls (direct and through function-pointer tables), allocator
// churn — and, optionally, the `(array - K)[i]` anti-idiom responsible for
// the paper's false positives, plus input-gated blocks that model code paths
// only reached by the `ref` workload (train-coverage gaps).
//
// Properties relied on by the experiments:
//   * all accesses are in-bounds (no real memory errors), so any report is
//     a false positive by construction — except anti-idiom sites, which are
//     valid accesses that always fail the LowFat component (§5 hypothesis);
//   * output (a checksum) is allocator-independent: pointer values never
//     flow into it and memory is deterministically initialized, so baseline
//     and hardened runs must produce identical outputs;
//   * the same binary serves train and ref: iteration count and a mode word
//     are runtime inputs (inputs[0] = outer iterations, inputs[1] = mode
//     bits; bit 0 enables the ref-only blocks).
#ifndef REDFAT_SRC_WORKLOADS_SYNTH_H_
#define REDFAT_SRC_WORKLOADS_SYNTH_H_

#include <cstdint>
#include <vector>

#include "src/bin/image.h"

namespace redfat {

struct SynthParams {
  uint64_t seed = 1;

  // Heap shape.
  unsigned num_objects = 8;
  uint64_t min_object_bytes = 64;    // rounded to 8
  uint64_t max_object_bytes = 1024;

  // Program shape: one outer loop (trip count = inputs[0]) whose body is
  // `block_len` generated units.
  unsigned block_len = 40;
  unsigned num_helpers = 3;  // helper functions (direct + indirect calls)

  // Unit mix, in percent (the remainder is register arithmetic).
  unsigned mem_pct = 30;      // single heap load/store units
  unsigned stream_pct = 4;    // stencil inner-loop units (lbm/milc-like)
  unsigned stencil_unroll = 4;  // same-shape accesses per stencil iteration
  unsigned global_pct = 8;    // absolute/stack operands (eliminable)
  unsigned call_pct = 6;      // helper call units
  unsigned churn_pct = 0;     // free+malloc+memset units

  // Of heap mem units: writes vs reads, indexed vs disp-only addressing.
  unsigned write_pct = 50;
  unsigned indexed_pct = 60;
  // Accesses emitted per loaded object pointer, 1..max (struct-field /
  // stencil patterns: the fodder for check batching and merging, Fig. 6).
  unsigned max_accesses_per_ptr = 3;
  // % of multi-access units that split their accesses across a second,
  // derived base register: still batchable, but not mergeable (different
  // operand shape). Models pointer-chasing integer code where consecutive
  // accesses rarely share a base (perlbench) vs. stencils that do (lbm).
  unsigned split_base_pct = 0;

  // Dead weight: unreachable-but-instrumented functions, to scale the
  // binary (the Chrome experiment). Costs rewrite work, not runtime.
  unsigned filler_funcs = 0;
  unsigned filler_units_per_func = 6;

  // Latent real bugs (§7.1 "Detected errors"): executed once, outside the
  // loop; reads whose result does NOT flow into the checksum.
  unsigned underflow_bug_sites = 0;  // array[-1]-style redzone read
  unsigned overflow_bug_sites = 0;   // one-past-the-end read

  // False-positive machinery.
  unsigned anti_idiom_sites = 0;  // distinct always-FP access sites
  unsigned anti_idiom_pct = 0;    // % of heap mem units routed through them

  // Train-coverage gaps: % of units wrapped in a mode-gated block only
  // executed when inputs[1] bit 0 is set (the "ref" input).
  unsigned ref_only_pct = 0;

  // Branchy control flow: every `branch_every` units, fork on a mode bit.
  unsigned branch_every = 8;
};

BinaryImage GenerateSynthProgram(const SynthParams& params);

// Server-style request/response workload: sustained-traffic heap behaviour
// that the loop-centric synth program does not model. A producer allocates
// variable-size "requests" (LCG-sized, deterministically filled) into a
// fixed-capacity ring queue; a consumer drains one whenever the queue
// reaches `consume_threshold`, walking the payload into the checksum and
// freeing it; leftovers drain at the end. Every allocation has a different
// lifetime than its neighbours (allocation churn with overlapping live
// ranges), exactly the malloc/free interleaving a server under steady
// traffic produces. inputs[0] = number of requests. The checksum is
// allocator-independent: payload bytes are deterministically written and
// pointer values never flow into it, so baseline and hardened runs must
// produce identical outputs (same property as GenerateSynthProgram).
struct ServerParams {
  uint64_t seed = 1;
  unsigned queue_slots = 16;        // ring capacity (>= 2)
  unsigned consume_threshold = 8;   // drain one when live >= this (1..slots)
  uint64_t min_request_bytes = 32;  // multiple of 8, >= 16 (two header words)
  unsigned size_mask = 63;          // extra payload words: lcg_bits & mask
};

BinaryImage GenerateServerProgram(const ServerParams& params);

// Forensics workload: a program with one deliberately-stale heap pointer,
// used to exercise the error-report pipeline (rfrun --error-report) end to
// end. It allocates `num_objects` same-size objects (deterministic payload,
// checksummed), frees the middle one — leaving its table slot stale on
// purpose — then branches on inputs[0]:
//   mode 0  benign: no bug; frees the rest and exits cleanly;
//   mode 1  use-after-free: one store through the stale pointer;
//   mode 2  double free: frees the victim a second time (diagnosed and
//           skipped by the VM when a forensic ring is attached; without one
//           the allocator treats it as a fatal host error).
// The checksum is computed before the bug fires and never depends on
// pointer values, so mode 0 and mode 1 under Policy::kLog produce identical
// output across runtimes.
struct UafParams {
  uint64_t seed = 1;
  unsigned num_objects = 5;     // >= 2; victim = num_objects / 2
  uint64_t object_bytes = 64;   // rounded up to a multiple of 8
};

BinaryImage GenerateUafProgram(const UafParams& params);

// Fragmentation/churn workload: a bounded pointer table hammered by an LCG —
// each operation picks a random slot, frees whatever lives there (checksumming
// its header first) and allocates a fresh object of LCG-chosen size in its
// place. Object lifetimes are exponential-ish and sizes span many size
// classes, so the allocator's freelists see constant push/pop traffic: the
// workload bench_heap_throughput uses to price the rheap fast path.
// inputs[0] = operations, inputs[1] = mode:
//   mode 0  benign churn; exits cleanly after the final drain;
//   mode 1  forged next pointer: frees the first object of an otherwise
//           untouched size class, overwrites the freed slot's in-guest
//           freelist link word (ptr-8) through a stale pointer, then
//           frees/reallocates enough neighbours that the allocator walks the
//           forged link — detected as kFreelistCorruption under
//           --rheap=prot-freelist (with or without quarantine);
//   mode 2  overlapping free: frees base+64 of a live object — a misaligned
//           interior pointer, also diagnosed under prot-freelist.
// The checksum is emitted before the bug tail and is allocator-independent
// (header words are functions of the LCG stream alone; pointer values never
// flow into it), so mode-0 output is identical across runtimes and rheap
// feature sets.
struct ChurnParams {
  uint64_t seed = 1;
  unsigned table_slots = 16;   // live-object table capacity (power of two)
  uint64_t min_bytes = 16;     // smallest object (multiple of 8)
  unsigned size_steps = 64;    // sizes: min_bytes + (lcg & (steps-1)) * 16
  unsigned tail_objects = 66;  // mode-1 victim chain; > the default
                               // quarantine depth so the drain path triggers
  uint64_t tail_bytes = 4080;  // mode-1/2 object size; lands in a size class
                               // the churn loop never touches (4096 total)
};

BinaryImage GenerateChurnProgram(const ChurnParams& params);

// Canonical inputs for the two-phase workflow.
std::vector<uint64_t> TrainInputs(uint64_t iters);  // mode bit 0 clear
std::vector<uint64_t> RefInputs(uint64_t iters);    // mode bit 0 set

}  // namespace redfat

#endif  // REDFAT_SRC_WORKLOADS_SYNTH_H_
