#include "src/workloads/builder.h"

#include "src/support/bits.h"
#include "src/support/check.h"

namespace redfat {

uint64_t ProgramBuilder::AddData(const std::vector<uint8_t>& bytes) {
  // Keep words naturally aligned.
  while (data_.size() % 8 != 0) {
    data_.push_back(0);
  }
  const uint64_t addr = data_base_ + data_.size();
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  REDFAT_CHECK(data_base_ + data_.size() < code_base_);
  return addr;
}

uint64_t ProgramBuilder::AddDataU64(std::initializer_list<uint64_t> words) {
  std::vector<uint8_t> bytes;
  bytes.reserve(words.size() * 8);
  for (uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    }
  }
  return AddData(bytes);
}

uint64_t ProgramBuilder::AddZeroData(uint64_t size) {
  return AddData(std::vector<uint8_t>(size, 0));
}

BinaryImage ProgramBuilder::Finish() {
  BinaryImage img;
  img.entry = code_base_;
  Section text;
  text.kind = Section::Kind::kText;
  text.vaddr = code_base_;
  text.bytes = text_.Finish();
  img.sections.push_back(std::move(text));
  if (!data_.empty()) {
    Section data;
    data.kind = Section::Kind::kData;
    data.vaddr = data_base_;
    data.bytes = std::move(data_);
    img.sections.push_back(std::move(data));
  }
  return img;
}

}  // namespace redfat
