// ProgramBuilder: assembles guest "binaries" (text + data sections) for
// tests, examples and the synthetic workloads.
#ifndef REDFAT_SRC_WORKLOADS_BUILDER_H_
#define REDFAT_SRC_WORKLOADS_BUILDER_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "src/asm/assembler.h"
#include "src/bin/image.h"

namespace redfat {

// Data lives below code so both are reachable with 32-bit absolute
// displacements.
inline constexpr uint64_t kDataBase = 0x200000;

// Default bases for shared-object images (§7.4): well below the heap, out
// of the executable's way, within rel32 reach of their own trampolines.
inline constexpr uint64_t kLibCodeBase = 0x8000000;   // 128 MiB
inline constexpr uint64_t kLibDataBase = 0x7800000;

class ProgramBuilder {
 public:
  // Executable by default; pass kLibCodeBase/kLibDataBase (or any other
  // non-overlapping pair) to build a shared-object image.
  explicit ProgramBuilder(uint64_t code_base = kCodeBase, uint64_t data_base = kDataBase)
      : code_base_(code_base), data_base_(data_base), text_(code_base) {}

  Assembler& text() { return text_; }

  // Reserves/copies bytes in the data section; returns their address.
  uint64_t AddData(const std::vector<uint8_t>& bytes);
  uint64_t AddDataU64(std::initializer_list<uint64_t> words);
  // Zero-initialized block (bss-like).
  uint64_t AddZeroData(uint64_t size);

  // Emits `hostcall exit(status)`.
  void EmitExit(int32_t status) {
    text_.MovRI(Reg::kRdi, static_cast<uint64_t>(status));
    text_.HostCall(HostFn::kExit);
  }

  // Finalizes into an image with entry at the start of the text section.
  BinaryImage Finish();

 private:
  uint64_t code_base_;
  uint64_t data_base_;
  Assembler text_;
  std::vector<uint8_t> data_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_WORKLOADS_BUILDER_H_
