// The synthetic SPEC CPU2006 suite (Table 1 substrate).
//
// One generated program per SPEC benchmark name. The per-benchmark
// parameters encode each program's *memory behaviour class* (integer
// pointer-chasers, C++ allocation-churners, Fortran stencil kernels), its
// anti-idiom site count (taken from the paper's reported false positives —
// these are inputs to the generator; whether they produce FPs, coverage
// loss and allow-list exclusions is up to the system under test), its
// train-coverage gap, and its latent real bugs (calculix/wrf).
//
// Each program reads inputs[0] = outer iterations and inputs[1] = mode, so
// the same binary serves the train (profiling) and ref (measurement) runs,
// as in the paper's workflow.
#ifndef REDFAT_SRC_WORKLOADS_SPEC_H_
#define REDFAT_SRC_WORKLOADS_SPEC_H_

#include <string>
#include <vector>

#include "src/bin/image.h"
#include "src/workloads/synth.h"

namespace redfat {

enum class Lang { kC, kCpp, kFortran };

struct SpecBenchmark {
  std::string name;
  Lang lang = Lang::kC;
  SynthParams params;
  uint64_t train_iters = 400;
  uint64_t ref_iters = 3000;
  // Expected false-positive site count under full-on checking (§7.1), used
  // only for reporting alongside measured values.
  unsigned paper_fp_sites = 0;
  double paper_coverage = 0.0;  // Table 1 coverage column, for reference
};

// All 29 benchmarks in Table 1 order.
const std::vector<SpecBenchmark>& SpecSuite();

// Generates the benchmark's binary (deterministic per benchmark).
BinaryImage BuildSpecBenchmark(const SpecBenchmark& bench);

}  // namespace redfat

#endif  // REDFAT_SRC_WORKLOADS_SPEC_H_
