// A minimal thread-pool work queue for the rewriting pipeline.
//
// ParallelFor partitions [0, n) across up to `jobs` worker threads pulling
// chunks from a shared atomic counter. Callers own determinism: each index
// must write only its own output slot, so the result is independent of the
// schedule and `--jobs=N` output is byte-identical to `--jobs=1`.
//
// ThreadPool keeps the workers alive between loops so a multi-pass pipeline
// (or a multi-image batch run) pays the thread spawn cost once instead of
// once per pass. Nested parallel regions run inline on the calling thread:
// a pool worker that reaches another ParallelFor executes it serially, so
// image-level x function-level nesting never oversubscribes the machine.
#ifndef REDFAT_SRC_SUPPORT_PARALLEL_H_
#define REDFAT_SRC_SUPPORT_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace redfat {

// Number of workers to use for `jobs == 0` ("auto"): the hardware
// concurrency, or 1 if it cannot be determined.
unsigned HardwareJobs();

// Resolves a user-supplied job count: 0 means auto, anything else is taken
// as-is.
unsigned ResolveJobs(unsigned jobs);

// Invokes fn(i) for every i in [0, n), using up to `jobs` threads
// (`jobs <= 1` runs inline on the calling thread). Blocks until all
// indices are done. fn must be safe to call concurrently from different
// threads on different indices.
//
// If fn throws, the first exception (by completion order) is rethrown on the
// calling thread after all workers have stopped; remaining unstarted indices
// are abandoned, so a throw means "some subset of [0, n) ran".
void ParallelFor(unsigned jobs, size_t n, const std::function<void(size_t)>& fn);

// Range variant: invokes fn(begin, end) over half-open chunks that exactly
// partition [0, n), each at most `grain` long (grain == 0 picks a default
// from `jobs`). The partition is a function of (n, grain) only — never of
// the schedule — so chunk-local state stays deterministic.
void ParallelForChunked(unsigned jobs, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn);

// A reusable pool of `jobs - 1` persistent worker threads plus the calling
// thread. One parallel region runs at a time; concurrent submissions from
// independent threads are serialized, and submissions from inside a region
// (any pool's region, on any pool) run inline on the submitting thread.
//
// Exceptions follow the ParallelFor contract: first one wins, the queue is
// drained, and the exception is rethrown on the submitting thread. The pool
// remains usable after a throw.
class ThreadPool {
 public:
  // `jobs` is resolved like ParallelFor: 0 = hardware concurrency.
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The resolved degree of parallelism (>= 1, counting the caller).
  unsigned jobs() const { return jobs_; }

  // Worker threads this pool spawned (constant after construction).
  size_t threads_spawned() const { return threads_.size(); }

  // Process-wide count of ThreadPool constructions. A warm server asserts
  // this stays flat across requests: every rewrite reuses the injected pool
  // instead of letting Pipeline::Run spawn a scoped one per request.
  static uint64_t PoolsCreated();

  // Invokes fn(i) for every i in [0, n); blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Invokes fn(begin, end) over half-open chunks partitioning [0, n), each
  // at most `grain` long (0 = auto). The partition depends only on
  // (n, grain), so per-chunk outputs are schedule-independent.
  void ParallelForChunked(size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn);

  // True while any parallel region dispatched through this pool is running.
  // Lazily-memoizing caches use this to reject single-thread-only accessors
  // from inside a region.
  bool InParallelRegion() const {
    return active_regions_.load(std::memory_order_relaxed) != 0;
  }

  // True when the calling thread is currently executing inside a parallel
  // region (of any pool, or of the free ParallelFor). Nested regions run
  // inline.
  static bool OnParallelThread();

 private:
  struct Task {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t n = 0;
    size_t grain = 1;
    std::atomic<size_t> next{0};
    int workers = 0;  // guarded by ThreadPool::mu_
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void WorkerLoop();
  static void RunChunks(Task& t);

  unsigned jobs_;
  std::vector<std::thread> threads_;
  std::mutex mu_;                 // guards generation_/task_/shutdown_/workers
  std::mutex region_mu_;          // serializes whole parallel regions
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  Task* task_ = nullptr;
  bool shutdown_ = false;
  std::atomic<uint32_t> active_regions_{0};
};

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_PARALLEL_H_
