// A minimal thread-pool work queue for the rewriting pipeline.
//
// ParallelFor partitions [0, n) across up to `jobs` worker threads pulling
// chunks from a shared atomic counter. Callers own determinism: each index
// must write only its own output slot, so the result is independent of the
// schedule and `--jobs=N` output is byte-identical to `--jobs=1`.
#ifndef REDFAT_SRC_SUPPORT_PARALLEL_H_
#define REDFAT_SRC_SUPPORT_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace redfat {

// Number of workers to use for `jobs == 0` ("auto"): the hardware
// concurrency, or 1 if it cannot be determined.
unsigned HardwareJobs();

// Resolves a user-supplied job count: 0 means auto, anything else is taken
// as-is.
unsigned ResolveJobs(unsigned jobs);

// Invokes fn(i) for every i in [0, n), using up to `jobs` threads
// (`jobs <= 1` runs inline on the calling thread). Blocks until all
// indices are done. fn must be safe to call concurrently from different
// threads on different indices.
//
// If fn throws, the first exception (by completion order) is rethrown on the
// calling thread after all workers have stopped; remaining unstarted indices
// are abandoned, so a throw means "some subset of [0, n) ran".
void ParallelFor(unsigned jobs, size_t n, const std::function<void(size_t)>& fn);

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_PARALLEL_H_
