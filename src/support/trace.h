// Chrome trace-event emission (the JSON format chrome://tracing and
// Perfetto load natively).
//
// Producers append events with explicit timestamps in microseconds; the
// repo's convention is that *guest-side* tracks use modeled cycles as the
// microsecond timebase (deterministic across runs), while *rewriter-side*
// tracks use wall-clock milliseconds scaled to microseconds. The writer is
// bounded: past `max_events` further events are counted as dropped rather
// than growing without limit (a multi-billion-cycle run would otherwise
// emit gigabytes). Callers surface dropped() so truncation is never silent.
//
// ValidateTraceEventJson checks that a produced (or foreign) string is
// well-formed trace-event JSON — the guarantee behind "loads cleanly in
// Perfetto" — and is exercised by tests on every emission path.
#ifndef REDFAT_SRC_SUPPORT_TRACE_H_
#define REDFAT_SRC_SUPPORT_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace redfat {

struct TraceArg {
  std::string key;
  uint64_t value = 0;
};

class TraceWriter {
 public:
  explicit TraceWriter(size_t max_events = 1 << 16) : max_events_(max_events) {}

  // Metadata: names shown for process/thread tracks in the UI.
  void SetProcessName(int pid, const std::string& name);
  void SetThreadName(int pid, int tid, const std::string& name);

  // A complete slice (ph "X"): something with a beginning and a duration.
  void Complete(const std::string& name, const std::string& cat, int pid, int tid,
                double ts_us, double dur_us, std::vector<TraceArg> args = {});

  // An instant event (ph "i", thread scope): a point-in-time marker.
  void Instant(const std::string& name, const std::string& cat, int pid, int tid,
               double ts_us, std::vector<TraceArg> args = {});

  // A counter sample (ph "C"): renders as a value-over-time track.
  void Counter(const std::string& name, int pid, double ts_us, uint64_t value);

  size_t size() const;
  size_t dropped() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} on a single line.
  std::string ToJson() const;

 private:
  struct Event {
    char ph = 'X';
    std::string name;
    std::string cat;
    int pid = 0;
    int tid = 0;
    double ts_us = 0;
    double dur_us = 0;  // ph 'X' only
    std::vector<TraceArg> args;
  };

  bool Admit();  // under mu_: true if the event fits, else counts a drop

  const size_t max_events_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  size_t dropped_ = 0;
};

// Structural validation of trace-event JSON: parses the string with a
// stand-alone JSON parser and checks the trace-event contract (a
// "traceEvents" array of objects; each with string "ph"/"name" and numeric
// "pid"/"tid"/"ts"; "dur" required for ph "X"; "args" required for ph "C").
Status ValidateTraceEventJson(const std::string& json);

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_TRACE_H_
