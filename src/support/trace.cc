#include "src/support/trace.h"

#include <cctype>
#include <map>
#include <memory>

#include "src/support/str.h"

namespace redfat {

namespace {

// Escapes the characters JSON cannot carry raw. Event/category names in
// this repo are plain identifiers, but foreign strings must not be able to
// break the document.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(ch)));
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string ArgsJson(const std::vector<TraceArg>& args) {
  std::string out = "{";
  for (size_t i = 0; i < args.size(); ++i) {
    out += StrFormat("%s\"%s\":%llu", i == 0 ? "" : ",", JsonEscape(args[i].key).c_str(),
                     static_cast<unsigned long long>(args[i].value));
  }
  out += "}";
  return out;
}

}  // namespace

bool TraceWriter::Admit() {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceWriter::SetProcessName(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit()) {
    return;
  }
  // Metadata events carry the display name as args[0].key (rendered as the
  // string-valued "name" arg in ToJson, unlike the numeric args elsewhere).
  events_.push_back(
      Event{'M', "process_name", "__metadata", pid, 0, 0, 0, {TraceArg{name, 0}}});
}

void TraceWriter::SetThreadName(int pid, int tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit()) {
    return;
  }
  events_.push_back(
      Event{'M', "thread_name", "__metadata", pid, tid, 0, 0, {TraceArg{name, 0}}});
}

void TraceWriter::Complete(const std::string& name, const std::string& cat, int pid,
                           int tid, double ts_us, double dur_us,
                           std::vector<TraceArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit()) {
    return;
  }
  events_.push_back(Event{'X', name, cat, pid, tid, ts_us, dur_us, std::move(args)});
}

void TraceWriter::Instant(const std::string& name, const std::string& cat, int pid,
                          int tid, double ts_us, std::vector<TraceArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit()) {
    return;
  }
  events_.push_back(Event{'i', name, cat, pid, tid, ts_us, 0, std::move(args)});
}

void TraceWriter::Counter(const std::string& name, int pid, double ts_us,
                          uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Admit()) {
    return;
  }
  events_.push_back(
      Event{'C', name, "counter", pid, 0, ts_us, 0, {TraceArg{"value", value}}});
}

size_t TraceWriter::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceWriter::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceWriter::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i != 0) {
      out += ",";
    }
    out += StrFormat("{\"ph\":\"%c\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d", e.ph,
                     JsonEscape(e.name).c_str(), e.pid, e.tid);
    if (e.ph == 'M') {
      // Metadata events carry the display name in args.name.
      out += StrFormat(",\"args\":{\"name\":\"%s\"}",
                       JsonEscape(e.args.empty() ? "" : e.args[0].key).c_str());
      out += "}";
      continue;
    }
    out += StrFormat(",\"cat\":\"%s\",\"ts\":%.3f", JsonEscape(e.cat).c_str(), e.ts_us);
    if (e.ph == 'X') {
      out += StrFormat(",\"dur\":%.3f", e.dur_us);
    }
    if (e.ph == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (e.ph == 'C' || !e.args.empty()) {
      out += ",\"args\":" + ArgsJson(e.args);
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

// --- validation ------------------------------------------------------------
//
// A small stand-alone JSON parser (objects, arrays, strings, numbers,
// true/false/null) — independent of the emitters above so a bug in ToJson
// cannot hide from its own validator.
namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status st = ParseValue(&v);
    if (!st.ok()) {
      return Error(st.error());
    }
    SkipWs();
    if (i_ != s_.size()) {
      return Error("trace json: trailing data");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
      ++i_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i_ < s_.size() && s_[i_] == c;
  }

  Status ParseString(std::string* out) {
    if (!Eat('"')) {
      return Error("trace json: expected string");
    }
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char ch = s_[i_++];
      if (ch == '\\') {
        if (i_ >= s_.size()) {
          return Error("trace json: bad escape");
        }
        const char esc = s_[i_++];
        switch (esc) {
          case '"': ch = '"'; break;
          case '\\': ch = '\\'; break;
          case '/': ch = '/'; break;
          case 'n': ch = '\n'; break;
          case 'r': ch = '\r'; break;
          case 't': ch = '\t'; break;
          case 'b': ch = '\b'; break;
          case 'f': ch = '\f'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) {
              return Error("trace json: bad \\u escape");
            }
            for (int k = 0; k < 4; ++k) {
              if (std::isxdigit(static_cast<unsigned char>(s_[i_ + k])) == 0) {
                return Error("trace json: bad \\u escape");
              }
            }
            i_ += 4;
            ch = '?';  // validation only; exact code point is irrelevant
            break;
          }
          default:
            return Error("trace json: bad escape");
        }
      }
      out->push_back(ch);
    }
    if (!Eat('"')) {
      return Error("trace json: unterminated string");
    }
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (i_ >= s_.size()) {
      return Error("trace json: unexpected end");
    }
    const char c = s_[i_];
    if (c == '{') {
      ++i_;
      out->kind = JsonValue::Kind::kObject;
      bool first = true;
      while (!Peek('}')) {
        if (!first && !Eat(',')) {
          return Error("trace json: expected ',' in object");
        }
        first = false;
        std::string key;
        Status st = ParseString(&key);
        if (!st.ok()) {
          return st;
        }
        if (!Eat(':')) {
          return Error("trace json: expected ':'");
        }
        JsonValue child;
        st = ParseValue(&child);
        if (!st.ok()) {
          return st;
        }
        out->object.emplace(std::move(key), std::move(child));
      }
      Eat('}');
      return Status::Ok();
    }
    if (c == '[') {
      ++i_;
      out->kind = JsonValue::Kind::kArray;
      bool first = true;
      while (!Peek(']')) {
        if (!first && !Eat(',')) {
          return Error("trace json: expected ',' in array");
        }
        first = false;
        JsonValue child;
        Status st = ParseValue(&child);
        if (!st.ok()) {
          return st;
        }
        out->array.push_back(std::move(child));
      }
      Eat(']');
      return Status::Ok();
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(i_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->number = 1;
      i_ += 4;
      return Status::Ok();
    }
    if (s_.compare(i_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      i_ += 5;
      return Status::Ok();
    }
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return Status::Ok();
    }
    // Number.
    const size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 || s_[i_] == '-' ||
            s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) {
      return Error(StrFormat("trace json: unexpected character '%c'", c));
    }
    try {
      out->number = std::stod(s_.substr(start, i_ - start));
    } catch (...) {
      return Error("trace json: bad number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return Status::Ok();
  }

  const std::string& s_;
  size_t i_ = 0;
};

bool IsNumber(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber;
}
bool IsString(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}

}  // namespace

Status ValidateTraceEventJson(const std::string& json) {
  JsonParser parser(json);
  Result<JsonValue> parsed = parser.Parse();
  if (!parsed.ok()) {
    return Error(parsed.error());
  }
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kObject) {
    return Error("trace json: root is not an object");
  }
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Error("trace json: missing traceEvents array");
  }
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string where = StrFormat("trace json: event %zu", i);
    if (e.kind != JsonValue::Kind::kObject) {
      return Error(where + " is not an object");
    }
    const JsonValue* ph = e.Get("ph");
    if (!IsString(ph) || ph->str.size() != 1) {
      return Error(where + ": missing/bad \"ph\"");
    }
    if (!IsString(e.Get("name"))) {
      return Error(where + ": missing/bad \"name\"");
    }
    if (!IsNumber(e.Get("pid")) || !IsNumber(e.Get("tid"))) {
      return Error(where + ": missing/bad \"pid\"/\"tid\"");
    }
    const char kind = ph->str[0];
    if (kind == 'M') {
      continue;  // metadata events need no timestamp
    }
    if (!IsNumber(e.Get("ts"))) {
      return Error(where + ": missing/bad \"ts\"");
    }
    if (kind == 'X' && !IsNumber(e.Get("dur"))) {
      return Error(where + ": complete event missing \"dur\"");
    }
    if (kind == 'C') {
      const JsonValue* args = e.Get("args");
      if (args == nullptr || args->kind != JsonValue::Kind::kObject ||
          args->object.empty()) {
        return Error(where + ": counter event missing \"args\"");
      }
    }
  }
  return Status::Ok();
}

}  // namespace redfat
