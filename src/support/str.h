// Small string formatting helpers (printf-style into std::string).
#ifndef REDFAT_SRC_SUPPORT_STR_H_
#define REDFAT_SRC_SUPPORT_STR_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace redfat {

inline std::string StrFormatV(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n <= 0) {
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

__attribute__((format(printf, 1, 2))) inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = StrFormatV(fmt, args);
  va_end(args);
  return out;
}

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_STR_H_
