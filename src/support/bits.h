// Bit-manipulation helpers shared across the project.
#ifndef REDFAT_SRC_SUPPORT_BITS_H_
#define REDFAT_SRC_SUPPORT_BITS_H_

#include <cstdint>

#include "src/support/check.h"

namespace redfat {

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Largest k with 2^k <= x. Requires x != 0.
constexpr unsigned FloorLog2(uint64_t x) {
  unsigned k = 0;
  while (x >>= 1) {
    ++k;
  }
  return k;
}

// Smallest k with 2^k >= x. Requires x != 0.
constexpr unsigned CeilLog2(uint64_t x) {
  return IsPowerOfTwo(x) ? FloorLog2(x) : FloorLog2(x) + 1;
}

constexpr uint64_t AlignUp(uint64_t x, uint64_t a) {
  REDFAT_CHECK(a != 0);
  return (x + a - 1) / a * a;
}

constexpr uint64_t AlignDown(uint64_t x, uint64_t a) {
  REDFAT_CHECK(a != 0);
  return x / a * a;
}

// Sign-extend the low `bits` bits of x to 64 bits.
constexpr int64_t SignExtend(uint64_t x, unsigned bits) {
  REDFAT_CHECK(bits >= 1 && bits <= 64);
  if (bits == 64) {
    return static_cast<int64_t>(x);
  }
  const uint64_t m = uint64_t{1} << (bits - 1);
  x &= (uint64_t{1} << bits) - 1;
  return static_cast<int64_t>((x ^ m) - m);
}

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_BITS_H_
