#include "src/support/magic_div.h"

#include <initializer_list>

#include "src/support/bits.h"
#include "src/support/check.h"

namespace redfat {

MagicDiv ComputeMagicDiv(uint64_t d) {
  REDFAT_CHECK(d >= 2);
  if (IsPowerOfTwo(d)) {
    // mulh(n, 2^(64-k)) == n >> k, exact for all n.
    const unsigned k = FloorLog2(d);
    return MagicDiv{uint64_t{1} << (64 - k), 0};
  }
  // Round-up magic: M = ceil(2^(64+s) / d), with s chosen so the rounding
  // error e = M*d - 2^(64+s) (0 < e < d) satisfies n*e < 2^(64+s) for all
  // n < 2^kMagicDividendBits, which guarantees exactness. Requiring
  // d * 2^kMagicDividendBits <= 2^(64+s) suffices.
  const unsigned need = kMagicDividendBits + CeilLog2(d);
  const unsigned s = need > 64 ? need - 64 : 0;
  const unsigned __int128 pow = static_cast<unsigned __int128>(1) << (64 + s);
  const unsigned __int128 magic = (pow + d - 1) / d;
  REDFAT_CHECK(magic < (static_cast<unsigned __int128>(1) << 64));
  MagicDiv m{static_cast<uint64_t>(magic), s};
  // Spot-check boundary dividends around multiples of d near the top of the
  // guaranteed range; exhaustive verification lives in the test suite.
  const uint64_t top = (uint64_t{1} << kMagicDividendBits) - 1;
  for (uint64_t n : {uint64_t{0}, d - 1, d, d + 1, top - (top % d), top}) {
    REDFAT_CHECK(ApplyMagicDiv(n, m) == n / d);
  }
  return m;
}

}  // namespace redfat
