#include "src/support/parallel.h"

#include <algorithm>
#include <exception>

namespace redfat {
namespace {

// Depth of parallel regions on this thread. Nested ParallelFor calls (from a
// worker or from the submitting thread while its region runs) execute inline
// so nested (image x function) parallelism never oversubscribes. The serial
// fast path (n or jobs <= 1) does NOT count as a region: a degenerate outer
// loop must not disable inner parallelism.
thread_local int tl_region_depth = 0;

size_t DefaultGrain(size_t n, unsigned jobs) {
  // Big enough to amortize the atomic, small enough to balance skewed
  // per-item costs (trampoline sizes vary).
  return std::max<size_t>(1, n / (static_cast<size_t>(jobs) * 8));
}

void RunSerial(size_t n, const std::function<void(size_t, size_t)>& fn,
               size_t grain) {
  for (size_t begin = 0; begin < n; begin += grain) {
    fn(begin, std::min(n, begin + grain));
  }
}

}  // namespace

unsigned HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned ResolveJobs(unsigned jobs) { return jobs == 0 ? HardwareJobs() : jobs; }

bool ThreadPool::OnParallelThread() { return tl_region_depth > 0; }

namespace {
std::atomic<uint64_t> g_pools_created{0};
}  // namespace

uint64_t ThreadPool::PoolsCreated() {
  return g_pools_created.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned jobs) : jobs_(ResolveJobs(jobs)) {
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  threads_.reserve(jobs_ - 1);
  for (unsigned t = 1; t < jobs_; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::RunChunks(Task& t) {
  ++tl_region_depth;
  for (;;) {
    const size_t begin = t.next.fetch_add(t.grain);
    if (begin >= t.n) {
      break;
    }
    const size_t end = std::min(t.n, begin + t.grain);
    try {
      (*t.fn)(begin, end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(t.error_mu);
        if (!t.error) {
          t.error = std::current_exception();
        }
      }
      // Drain the queue so every participant stops promptly.
      t.next.store(t.n);
      break;
    }
  }
  --tl_region_depth;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) {
      return;
    }
    seen_generation = generation_;
    Task* t = task_;
    if (t == nullptr) {
      // The region finished before this worker woke; nothing to do.
      continue;
    }
    ++t->workers;
    lock.unlock();
    RunChunks(*t);
    lock.lock();
    if (--t->workers == 0) {
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    grain = DefaultGrain(n, jobs_);
  }
  // Inline paths: single-threaded pools, work that fits one chunk, and
  // nested regions (dispatching from inside a region would stall on the
  // region lock held by the enclosing loop's submitter).
  if (jobs_ <= 1 || threads_.empty() || n <= grain || tl_region_depth > 0) {
    RunSerial(n, fn, grain);
    return;
  }
  std::lock_guard<std::mutex> region_lock(region_mu_);
  Task t;
  t.fn = &fn;
  t.n = n;
  t.grain = grain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &t;
    ++generation_;
    active_regions_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_work_.notify_all();
  RunChunks(t);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Unpublish the task before waiting: a worker that wakes late sees
    // nullptr and skips; any worker already registered is counted and
    // waited for, so `t` cannot be touched after this scope.
    task_ = nullptr;
    cv_done_.wait(lock, [&] { return t.workers == 0; });
    active_regions_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (t.error) {
    std::rethrow_exception(t.error);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, 0, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

void ParallelFor(unsigned jobs, size_t n,
                 const std::function<void(size_t)>& fn) {
  jobs = ResolveJobs(jobs);
  if (jobs <= 1 || n <= 1 || tl_region_depth > 0) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool pool(static_cast<unsigned>(std::min<size_t>(jobs, n)));
  pool.ParallelFor(n, fn);
}

void ParallelForChunked(unsigned jobs, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  jobs = ResolveJobs(jobs);
  if (grain == 0) {
    grain = DefaultGrain(n, jobs);
  }
  if (jobs <= 1 || n <= grain || tl_region_depth > 0) {
    RunSerial(n, fn, grain);
    return;
  }
  ThreadPool pool(jobs);
  pool.ParallelForChunked(n, grain, fn);
}

}  // namespace redfat
