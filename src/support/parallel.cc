#include "src/support/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace redfat {

unsigned HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned ResolveJobs(unsigned jobs) { return jobs == 0 ? HardwareJobs() : jobs; }

void ParallelFor(unsigned jobs, size_t n, const std::function<void(size_t)>& fn) {
  jobs = ResolveJobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const unsigned workers = static_cast<unsigned>(std::min<size_t>(jobs, n));
  // Chunked dynamic scheduling: big enough to amortize the atomic, small
  // enough to balance skewed per-item costs (trampoline sizes vary).
  const size_t chunk = std::max<size_t>(1, n / (static_cast<size_t>(workers) * 8));
  std::atomic<size_t> next{0};
  // First exception wins; a thrown exception also drains the queue so every
  // worker stops promptly instead of finishing the remaining chunks.
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&]() {
    for (;;) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) {
        return;
      }
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) {
              error = std::current_exception();
            }
          }
          next.store(n);
          return;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) {
    threads.emplace_back(worker);
  }
  worker();
  for (std::thread& t : threads) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace redfat
