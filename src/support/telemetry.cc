#include "src/support/telemetry.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "src/support/check.h"
#include "src/support/str.h"

namespace redfat {

const char* SiteEventName(SiteEvent ev) {
  switch (ev) {
    case SiteEvent::kChecks: return "checks";
    case SiteEvent::kRedzoneHits: return "redzone_hits";
    case SiteEvent::kLowFatPasses: return "lowfat_passes";
    case SiteEvent::kLowFatFails: return "lowfat_fails";
    case SiteEvent::kTrampCycles: return "tramp_cycles";
    case SiteEvent::kInlineCycles: return "inline_check_cycles";
  }
  REDFAT_FATAL("bad site event");
}

// --- TelemetryShard --------------------------------------------------------

TelemetryShard::~TelemetryShard() {
  for (std::atomic<Block*>& b : blocks_) {
    delete b.load(std::memory_order_relaxed);
  }
}

void TelemetryShard::AddSite(uint32_t site, SiteEvent ev, uint64_t delta) {
  const size_t block_index = site / kBlockSites;
  if (block_index >= kMaxBlocks) {
    overflow_.fetch_add(delta, std::memory_order_relaxed);
    return;
  }
  Block* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    // Only the owning thread allocates, so no CAS race to handle; release
    // publishes the zeroed block to concurrent Snapshot() readers.
    block = new Block();
    blocks_[block_index].store(block, std::memory_order_release);
  }
  const size_t slot =
      (site % kBlockSites) * kNumSiteEvents + static_cast<size_t>(ev);
  block->v[slot].fetch_add(delta, std::memory_order_relaxed);
}

// --- HistogramData ---------------------------------------------------------

uint64_t HistogramData::Count() const {
  uint64_t n = 0;
  for (const auto& [index, count] : buckets) {
    n += count;
  }
  return n;
}

uint64_t HistogramData::Percentile(double q) const {
  const uint64_t n = Count();
  if (n == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 100) {
    q = 100;
  }
  // The q-th percentile is the rank-ceil(q/100*n) sample (1-based), never
  // below rank 1: a pure function of the bucket counts, so two snapshots
  // with equal buckets always report equal percentiles.
  uint64_t rank = static_cast<uint64_t>(q / 100.0 * static_cast<double>(n));
  if (static_cast<double>(rank) * 100.0 < q * static_cast<double>(n)) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cum = 0;
  for (const auto& [index, count] : buckets) {
    cum += count;
    if (cum >= rank) {
      return HistogramBucketLowerBound(index);
    }
  }
  return HistogramBucketLowerBound(buckets.rbegin()->first);
}

double HistogramData::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

// --- TelemetrySnapshot -----------------------------------------------------

const SiteTelemetry* TelemetrySnapshot::FindSite(uint32_t id) const {
  const auto it = std::lower_bound(
      sites.begin(), sites.end(), id,
      [](const SiteTelemetry& s, uint32_t key) { return s.site < key; });
  return (it != sites.end() && it->site == id) ? &*it : nullptr;
}

uint64_t TelemetrySnapshot::TotalSiteEvents(SiteEvent ev) const {
  uint64_t total = 0;
  for (const SiteTelemetry& s : sites) {
    total += s.counts[static_cast<size_t>(ev)];
  }
  return total;
}

const HistogramData* TelemetrySnapshot::FindHistogram(const std::string& name) const {
  const auto it = histograms.find(name);
  return it != histograms.end() ? &it->second : nullptr;
}

std::string TelemetrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\"%s\":%llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\"%s\":%.17g", first ? "" : ",", name.c_str(), value);
    first = false;
  }
  out += "}";
  // The two newer sections appear only when non-empty, so snapshots that
  // predate them serialize byte-identically to older builds.
  if (!gauge_seq.empty()) {
    out += ",\"gauge_seq\":{";
    first = true;
    for (const auto& [name, seq] : gauge_seq) {
      out += StrFormat("%s\"%s\":%llu", first ? "" : ",", name.c_str(),
                       static_cast<unsigned long long>(seq));
      first = false;
    }
    out += "}";
  }
  if (!histograms.empty()) {
    out += ",\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms) {
      out += StrFormat("%s\"%s\":{\"sum\":%llu,\"buckets\":{", first ? "" : ",",
                       name.c_str(), static_cast<unsigned long long>(h.sum));
      bool bfirst = true;
      for (const auto& [index, count] : h.buckets) {
        out += StrFormat("%s\"%u\":%llu", bfirst ? "" : ",", index,
                         static_cast<unsigned long long>(count));
        bfirst = false;
      }
      out += "}}";
      first = false;
    }
    out += "}";
  }
  out += ",\"sites\":[";
  for (size_t i = 0; i < sites.size(); ++i) {
    const SiteTelemetry& s = sites[i];
    out += StrFormat("%s{\"id\":%u", i == 0 ? "" : ",", s.site);
    for (size_t e = 0; e < kNumSiteEvents; ++e) {
      out += StrFormat(",\"%s\":%llu", SiteEventName(static_cast<SiteEvent>(e)),
                       static_cast<unsigned long long>(s.counts[e]));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// A tiny parser for exactly the shapes ToJson() produces (plus arbitrary
// whitespace), mirroring the PipelineStats parser's conventions: unknown
// numeric keys inside a site object are ignored for forward compatibility,
// unknown top-level keys are an error.
namespace {

struct JsonCursor {
  const std::string& s;
  size_t i = 0;

  void SkipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
};

bool ParseString(JsonCursor& c, std::string* out) {
  if (!c.Eat('"')) {
    return false;
  }
  out->clear();
  while (c.i < c.s.size() && c.s[c.i] != '"') {
    if (c.s[c.i] == '\\') {
      return false;  // ToJson() never escapes; reject rather than mis-parse
    }
    out->push_back(c.s[c.i++]);
  }
  return c.Eat('"');
}

bool ParseNumber(JsonCursor& c, double* out) {
  c.SkipWs();
  const size_t start = c.i;
  while (c.i < c.s.size() &&
         (std::isdigit(static_cast<unsigned char>(c.s[c.i])) != 0 || c.s[c.i] == '-' ||
          c.s[c.i] == '+' || c.s[c.i] == '.' || c.s[c.i] == 'e' || c.s[c.i] == 'E')) {
    ++c.i;
  }
  if (c.i == start) {
    return false;
  }
  try {
    *out = std::stod(c.s.substr(start, c.i - start));
  } catch (...) {
    return false;
  }
  return true;
}

// {"name":number,...} into an ordered map.
template <typename T>
bool ParseNumberMap(JsonCursor& c, std::map<std::string, T>* out) {
  if (!c.Eat('{')) {
    return false;
  }
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) {
      return false;
    }
    first = false;
    std::string key;
    double num = 0;
    if (!ParseString(c, &key) || !c.Eat(':') || !ParseNumber(c, &num)) {
      return false;
    }
    (*out)[key] = static_cast<T>(num);
  }
  return c.Eat('}');
}

bool ParseSiteObject(JsonCursor& c, SiteTelemetry* out, bool* saw_id) {
  if (!c.Eat('{')) {
    return false;
  }
  *saw_id = false;
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) {
      return false;
    }
    first = false;
    std::string key;
    double num = 0;
    if (!ParseString(c, &key) || !c.Eat(':') || !ParseNumber(c, &num)) {
      return false;
    }
    if (key == "id") {
      out->site = static_cast<uint32_t>(num);
      *saw_id = true;
      continue;
    }
    bool known = false;
    for (size_t e = 0; e < kNumSiteEvents; ++e) {
      if (key == SiteEventName(static_cast<SiteEvent>(e))) {
        out->counts[e] = static_cast<uint64_t>(num);
        known = true;
        break;
      }
    }
    (void)known;  // unknown numeric keys are ignored for forward compatibility
  }
  return c.Eat('}');
}

}  // namespace

Result<TelemetrySnapshot> TelemetrySnapshotFromJson(const std::string& json) {
  JsonCursor c{json};
  TelemetrySnapshot snap;
  if (!c.Eat('{')) {
    return Error("metrics json: expected object");
  }
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) {
      return Error("metrics json: expected ','");
    }
    first = false;
    std::string key;
    if (!ParseString(c, &key) || !c.Eat(':')) {
      return Error("metrics json: expected key");
    }
    if (key == "counters") {
      if (!ParseNumberMap(c, &snap.counters)) {
        return Error("metrics json: bad counters object");
      }
    } else if (key == "gauges") {
      if (!ParseNumberMap(c, &snap.gauges)) {
        return Error("metrics json: bad gauges object");
      }
    } else if (key == "gauge_seq") {
      if (!ParseNumberMap(c, &snap.gauge_seq)) {
        return Error("metrics json: bad gauge_seq object");
      }
    } else if (key == "histograms") {
      if (!c.Eat('{')) {
        return Error("metrics json: expected histograms object");
      }
      bool hfirst = true;
      while (!c.Peek('}')) {
        if (!hfirst && !c.Eat(',')) {
          return Error("metrics json: expected ',' in histograms");
        }
        hfirst = false;
        std::string name;
        if (!ParseString(c, &name) || !c.Eat(':') || !c.Eat('{')) {
          return Error("metrics json: bad histogram entry");
        }
        HistogramData h;
        bool ffirst = true;
        while (!c.Peek('}')) {
          if (!ffirst && !c.Eat(',')) {
            return Error("metrics json: expected ',' in histogram");
          }
          ffirst = false;
          std::string field;
          if (!ParseString(c, &field) || !c.Eat(':')) {
            return Error("metrics json: bad histogram field");
          }
          if (field == "sum") {
            double num = 0;
            if (!ParseNumber(c, &num)) {
              return Error("metrics json: bad histogram sum");
            }
            h.sum = static_cast<uint64_t>(num);
          } else if (field == "buckets") {
            std::map<std::string, uint64_t> raw;
            if (!ParseNumberMap(c, &raw)) {
              return Error("metrics json: bad histogram buckets");
            }
            for (const auto& [index_str, count] : raw) {
              h.buckets[static_cast<uint32_t>(
                  std::strtoul(index_str.c_str(), nullptr, 10))] = count;
            }
          } else {
            return Error(
                StrFormat("metrics json: unknown histogram field '%s'", field.c_str()));
          }
        }
        if (!c.Eat('}')) {
          return Error("metrics json: unterminated histogram");
        }
        snap.histograms[name] = std::move(h);
      }
      if (!c.Eat('}')) {
        return Error("metrics json: unterminated histograms object");
      }
    } else if (key == "sites") {
      if (!c.Eat('[')) {
        return Error("metrics json: expected sites array");
      }
      while (!c.Peek(']')) {
        if (!snap.sites.empty() && !c.Eat(',')) {
          return Error("metrics json: expected ',' in sites");
        }
        SiteTelemetry site;
        bool saw_id = false;
        if (!ParseSiteObject(c, &site, &saw_id) || !saw_id) {
          return Error("metrics json: bad site object");
        }
        snap.sites.push_back(site);
      }
      if (!c.Eat(']')) {
        return Error("metrics json: unterminated sites array");
      }
    } else {
      return Error(StrFormat("metrics json: unknown key '%s'", key.c_str()));
    }
  }
  if (!c.Eat('}')) {
    return Error("metrics json: unterminated object");
  }
  c.SkipWs();
  if (c.i != json.size()) {
    return Error("metrics json: trailing data");
  }
  return snap;
}

TelemetrySnapshot MergeTelemetrySnapshots(const std::vector<TelemetrySnapshot>& snapshots) {
  TelemetrySnapshot out;
  std::map<uint32_t, SiteTelemetry> merged;
  for (const TelemetrySnapshot& snap : snapshots) {
    for (const SiteTelemetry& s : snap.sites) {
      SiteTelemetry& dst = merged[s.site];
      dst.site = s.site;
      for (size_t e = 0; e < kNumSiteEvents; ++e) {
        dst.counts[e] += s.counts[e];
      }
    }
    for (const auto& [name, value] : snap.counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, value] : snap.gauges) {
      // Highest sequence stamp wins; an absent stamp reads as 0, so merging
      // unstamped legacy snapshots degrades to last-writer-wins (>=) exactly
      // as before. Out-of-order epoch shards now merge correctly: the final
      // sample carries the highest stamp no matter the input order.
      const auto sit = snap.gauge_seq.find(name);
      const uint64_t seq = sit != snap.gauge_seq.end() ? sit->second : 0;
      const auto oit = out.gauge_seq.find(name);
      const uint64_t best = oit != out.gauge_seq.end() ? oit->second : 0;
      if (out.gauges.find(name) == out.gauges.end() || seq >= best) {
        out.gauges[name] = value;
        if (sit != snap.gauge_seq.end()) {
          out.gauge_seq[name] = seq;
        } else if (oit != out.gauge_seq.end()) {
          out.gauge_seq.erase(name);  // an unstamped later writer wins the tie
        }
      }
    }
    for (const auto& [name, h] : snap.histograms) {
      HistogramData& dst = out.histograms[name];
      dst.sum += h.sum;
      for (const auto& [index, count] : h.buckets) {
        dst.buckets[index] += count;
      }
    }
  }
  out.sites.reserve(merged.size());
  for (auto& [site, st] : merged) {
    out.sites.push_back(st);
  }
  return out;
}

TelemetrySnapshot DeltaTelemetrySnapshot(const TelemetrySnapshot& cur,
                                         const TelemetrySnapshot& prev) {
  TelemetrySnapshot out;
  for (const SiteTelemetry& s : cur.sites) {
    const SiteTelemetry* p = prev.FindSite(s.site);
    SiteTelemetry d;
    d.site = s.site;
    bool any = false;
    for (size_t e = 0; e < kNumSiteEvents; ++e) {
      d.counts[e] = s.counts[e] - (p != nullptr ? p->counts[e] : 0);
      any = any || d.counts[e] != 0;
    }
    if (any) {
      out.sites.push_back(d);  // cur.sites is sorted, so out stays sorted
    }
  }
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    const uint64_t d = value - (it != prev.counters.end() ? it->second : 0);
    // A zero delta is kept when the counter is new this epoch (e.g. a
    // zero-valued vm.mem_errors): merged epochs must reproduce the one-shot
    // snapshot's key set, not just its sums.
    if (d != 0 || it == prev.counters.end()) {
      out.counters[name] = d;
    }
  }
  // Gauges are point samples, not accumulators: the epoch reports cur's
  // values (and stamps) as-is, and merge keeps the highest-stamped sample.
  out.gauges = cur.gauges;
  out.gauge_seq = cur.gauge_seq;
  for (const auto& [name, h] : cur.histograms) {
    const HistogramData* p = nullptr;
    const auto pit = prev.histograms.find(name);
    if (pit != prev.histograms.end()) {
      p = &pit->second;
    }
    HistogramData d;
    d.sum = h.sum - (p != nullptr ? p->sum : 0);
    for (const auto& [index, count] : h.buckets) {
      uint64_t prev_count = 0;
      if (p != nullptr) {
        const auto bit = p->buckets.find(index);
        if (bit != p->buckets.end()) {
          prev_count = bit->second;
        }
      }
      if (count != prev_count) {
        d.buckets[index] = count - prev_count;
      }
    }
    if (d.sum != 0 || !d.buckets.empty()) {
      out.histograms[name] = std::move(d);
    }
  }
  return out;
}

// --- TelemetryRegistry -----------------------------------------------------

namespace {
std::atomic<uint64_t> g_registry_gen{1};
}  // namespace

TelemetryRegistry::TelemetryRegistry()
    : id_(g_registry_gen.fetch_add(1, std::memory_order_relaxed)) {}

TelemetryShard* TelemetryRegistry::shard() {
  // Per-thread cache keyed by (address, id): the id guard makes a stale
  // entry for a destroyed registry whose address was reused miss instead of
  // returning the old (freed) shard.
  struct CacheEntry {
    const TelemetryRegistry* registry;
    uint64_t id;
    TelemetryShard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.registry == this && e.id == id_) {
      return e.shard;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<TelemetryShard>());
  TelemetryShard* s = shards_.back().get();
  cache.push_back(CacheEntry{this, id_, s});
  return s;
}

void TelemetryRegistry::AddCounter(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void TelemetryRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
  gauge_seqs_[name] = ++gauge_seq_next_;
}

HistogramCell* TelemetryRegistry::histogram(const std::string& name) {
  struct CacheEntry {
    const TelemetryRegistry* registry;
    uint64_t id;
    std::string name;
    HistogramCell* cell;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.registry == this && e.id == id_ && e.name == name) {
      return e.cell;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::unique_ptr<HistogramCell>>& cells = histograms_[name];
  cells.push_back(std::make_unique<HistogramCell>());
  HistogramCell* cell = cells.back().get();
  cache.push_back(CacheEntry{this, id_, name, cell});
  return cell;
}

TelemetrySnapshot TelemetryRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetrySnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.gauge_seq = gauge_seqs_;
  for (const auto& [name, cells] : histograms_) {
    HistogramData merged_h;
    for (const std::unique_ptr<HistogramCell>& cell : cells) {
      merged_h.sum += cell->sum_.load(std::memory_order_relaxed);
      for (uint32_t b = 0; b < kNumHistogramBuckets; ++b) {
        const uint64_t v = cell->buckets_[b].load(std::memory_order_relaxed);
        if (v != 0) {
          merged_h.buckets[b] += v;
        }
      }
    }
    // A registered-but-never-recorded histogram stays out of the snapshot,
    // mirroring the all-zero-site rule.
    if (merged_h.sum != 0 || !merged_h.buckets.empty()) {
      snap.histograms[name] = std::move(merged_h);
    }
  }

  // Merge the shards' blocks into a dense, sorted site list.
  std::map<uint32_t, SiteTelemetry> merged;
  uint64_t overflow = 0;
  for (const std::unique_ptr<TelemetryShard>& shard : shards_) {
    overflow += shard->overflow_events();
    for (size_t b = 0; b < TelemetryShard::kMaxBlocks; ++b) {
      const TelemetryShard::Block* block =
          shard->blocks_[b].load(std::memory_order_acquire);
      if (block == nullptr) {
        continue;
      }
      for (size_t s = 0; s < TelemetryShard::kBlockSites; ++s) {
        const uint32_t site = static_cast<uint32_t>(b * TelemetryShard::kBlockSites + s);
        for (size_t e = 0; e < kNumSiteEvents; ++e) {
          const uint64_t v =
              block->v[s * kNumSiteEvents + e].load(std::memory_order_relaxed);
          if (v != 0) {
            SiteTelemetry& st = merged[site];
            st.site = site;
            st.counts[e] += v;
          }
        }
      }
    }
  }
  snap.sites.reserve(merged.size());
  for (auto& [site, st] : merged) {
    snap.sites.push_back(st);
  }
  if (overflow != 0) {
    snap.counters["telemetry.site_events_dropped"] += overflow;
  }
  return snap;
}

}  // namespace redfat
