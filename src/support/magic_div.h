// Division-by-constant via multiply-high and shift.
//
// The low-fat allocator computes base(ptr) = (ptr / size) * size where size
// is a per-region constant that is generally *not* a power of two (e.g. 48).
// Real LowFat replaces the division by a precomputed "magic" multiplication,
// and the generated RedFat check code does the same. This module computes,
// for each divisor d, a pair (magic, shift) with:
//
//     n / d == mulh64(n, magic) >> shift      for all n < 2^kMaxDividendBits
//
// where mulh64 is the high 64 bits of the 64x64->128 unsigned product.
//
// Low-fat pointers in this reproduction live below 62 regions * 32 GiB
// (< 2 TiB = 2^41), so exactness for 41-bit dividends is sufficient; we keep
// a few bits of margin.
#ifndef REDFAT_SRC_SUPPORT_MAGIC_DIV_H_
#define REDFAT_SRC_SUPPORT_MAGIC_DIV_H_

#include <cstdint>

namespace redfat {

// Dividend width (bits) for which computed magics are guaranteed exact.
inline constexpr unsigned kMagicDividendBits = 44;

struct MagicDiv {
  uint64_t magic = 0;
  unsigned shift = 0;  // applied to the high 64 bits of the product
};

// High 64 bits of the unsigned 64x64 product.
inline uint64_t MulHigh64(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b)) >> 64);
}

// Computes a (magic, shift) pair for divisor d (d >= 1). The result divides
// exactly for all dividends below 2^kMagicDividendBits.
MagicDiv ComputeMagicDiv(uint64_t d);

// Applies a magic division: floor(n / d) given the magic for d.
inline uint64_t ApplyMagicDiv(uint64_t n, const MagicDiv& m) {
  return MulHigh64(n, m.magic) >> m.shift;
}

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_MAGIC_DIV_H_
