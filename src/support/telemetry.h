// Unified runtime telemetry: one registry for everything the repo can
// observe while code *runs* — per-instrumented-site counters from the VM,
// named counters from any layer, and gauges sampled from the allocators.
//
// The registry complements the rewriter's static PipelineStats: the
// pipeline says what was instrumented, the registry says what actually
// executed and what it cost. `rfrun --report` joins the two per site id.
//
// Concurrency model: the hot path (per-site increments) goes through
// per-thread shards. A thread obtains its shard once
// (TelemetryRegistry::shard(), mutex-guarded registration) and then
// increments relaxed atomics it exclusively writes — no locks, no
// contention, no false sharing between threads. Snapshot() merges all
// shards with relaxed loads; counts from threads still running are allowed
// to be slightly stale, never torn. Named counters and gauges are cold
// (per-run, not per-event) and live behind the registry mutex.
//
// When no registry is attached (the default everywhere), producers hold a
// null pointer and skip all of this: disabled telemetry costs one branch.
//
// Histograms follow the counter contract: a producer obtains a per-thread
// HistogramCell once (TelemetryRegistry::histogram(), mutex-guarded
// registration) and then records into relaxed atomics it exclusively
// writes. The bucket layout is fixed (log-linear, two sub-exponent bits),
// so Merge/Delta/JSON round-trips stay bit-exact — a histogram is just 252
// monotonic counters plus a monotonic sum.
#ifndef REDFAT_SRC_SUPPORT_TELEMETRY_H_
#define REDFAT_SRC_SUPPORT_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace redfat {

// Per-site runtime events. Site ids are the ones the planner assigns
// (SiteRecord::id), so every count joins back to a SiteRecord.
enum class SiteEvent : uint8_t {
  kChecks = 0,      // check executions (the trampoline's Count instruction)
  kRedzoneHits,     // memory errors reported at the site (any ErrorKind)
  kLowFatPasses,    // profiling mode: (LowFat) component passed
  kLowFatFails,     // profiling mode: (LowFat) component failed
  kTrampCycles,     // modeled cycles spent in the site's trampoline code
  // Modeled cycles spent in the site's hot-tier (inline-check region) code.
  // Appended last so older snapshots round-trip: absent keys read as 0.
  kInlineCycles,
};
inline constexpr size_t kNumSiteEvents = 6;
const char* SiteEventName(SiteEvent ev);

// Multi-image runs (§7.4: an executable plus its shared objects) would
// otherwise merge every image's planner ids into one counter space. Keyed
// site ids pack a small image ordinal above the plain site id: image 0
// (the usual single-image case) keeps plain ids, so single-image consumers
// see no change; images 1..15 shift into the upper bits and still fit the
// shard's addressable range (site ids < 2^20).
inline constexpr uint32_t kImageSiteShift = 16;
inline constexpr uint32_t kMaxKeyedImages = 16;   // ordinals 0..15
inline constexpr uint32_t kMaxKeyedSite = (1u << kImageSiteShift) - 1;

inline uint32_t ImageSiteKey(uint32_t image, uint32_t site) {
  return image == 0 ? site : (image << kImageSiteShift) | site;
}
inline uint32_t ImageOfSiteKey(uint32_t key) { return key >> kImageSiteShift; }
inline uint32_t SiteOfSiteKey(uint32_t key) { return key & kMaxKeyedSite; }

// One thread's private accumulation buffer. Obtained from
// TelemetryRegistry::shard(); AddSite must only be called by the owning
// thread. Storage grows in fixed blocks so a concurrent Snapshot() never
// observes a reallocation.
class TelemetryShard {
 public:
  TelemetryShard() = default;
  ~TelemetryShard();
  TelemetryShard(const TelemetryShard&) = delete;
  TelemetryShard& operator=(const TelemetryShard&) = delete;

  void AddSite(uint32_t site, SiteEvent ev, uint64_t delta = 1);

  // Events for site ids beyond the addressable range (never silent).
  uint64_t overflow_events() const { return overflow_.load(std::memory_order_relaxed); }

 private:
  friend class TelemetryRegistry;

  static constexpr size_t kBlockSites = 256;
  static constexpr size_t kMaxBlocks = 4096;  // site ids < 1,048,576
  struct Block {
    std::atomic<uint64_t> v[kBlockSites * kNumSiteEvents] = {};
  };

  // Written only by the owning thread (release); read by Snapshot (acquire).
  std::atomic<Block*> blocks_[kMaxBlocks] = {};
  std::atomic<uint64_t> overflow_{0};
};

// --- histograms ------------------------------------------------------------

// Fixed log-linear bucket layout: values 0..3 get their own bucket; above
// that each power-of-two octave splits into 4 sub-buckets keyed by the two
// bits below the leading bit (~19% relative error at the bucket boundary).
// The layout is part of the snapshot format — changing it would break
// merge/delta telescoping across versions — so it is frozen here:
//   v < 4            -> index v
//   else e = 63 - clz(v), m = (v >> (e - 2)) & 3
//                    -> index ((e - 1) << 2) + m
// e in [2, 63], m in [0, 3] => max index (62 << 2) + 3 = 251.
inline constexpr uint32_t kNumHistogramBuckets = 252;

inline uint32_t HistogramBucketIndex(uint64_t v) {
  if (v < 4) {
    return static_cast<uint32_t>(v);
  }
  const unsigned e = 63u - static_cast<unsigned>(__builtin_clzll(v));
  const unsigned m = static_cast<unsigned>((v >> (e - 2)) & 3);
  return ((e - 1) << 2) + m;
}

// Smallest value that lands in bucket `index` (the value percentile queries
// report, so percentiles are deterministic and never overstate).
inline uint64_t HistogramBucketLowerBound(uint32_t index) {
  if (index < 4) {
    return index;
  }
  const unsigned e = (index >> 2) + 1;
  const unsigned m = index & 3;
  return (uint64_t{1} << e) + (static_cast<uint64_t>(m) << (e - 2));
}

// A merged histogram in a snapshot: monotonic sum + sparse bucket counts.
// No min/max — those would not telescope through DeltaTelemetrySnapshot.
struct HistogramData {
  uint64_t sum = 0;
  std::map<uint32_t, uint64_t> buckets;  // bucket index -> count, non-zero only

  uint64_t Count() const;
  // Lower bound of the bucket containing the q-th percentile (q in [0,100]);
  // 0 when empty. Deterministic: a pure function of the bucket counts.
  uint64_t Percentile(double q) const;
  double Mean() const;
};

// One thread's private recording buffer for one named histogram. Obtained
// from TelemetryRegistry::histogram(); Record must only be called by the
// owning thread. Snapshot() reads the atomics with relaxed loads (same
// staleness contract as TelemetryShard).
class HistogramCell {
 public:
  void Record(uint64_t value) {
    buckets_[HistogramBucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

 private:
  friend class TelemetryRegistry;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kNumHistogramBuckets] = {};
};

// --- snapshots -------------------------------------------------------------

struct SiteTelemetry {
  uint32_t site = 0;
  uint64_t counts[kNumSiteEvents] = {};

  uint64_t checks() const { return counts[0]; }
  uint64_t redzone_hits() const { return counts[1]; }
  uint64_t lowfat_passes() const { return counts[2]; }
  uint64_t lowfat_fails() const { return counts[3]; }
  uint64_t tramp_cycles() const { return counts[4]; }
  uint64_t inline_cycles() const { return counts[5]; }
};

// A merged, point-in-time view of a registry. Serializes to the single-line
// `--metrics` JSON; TelemetrySnapshotFromJson parses exactly that format
// back (benches and external harnesses consume it).
struct TelemetrySnapshot {
  std::vector<SiteTelemetry> sites;                // sorted by id, non-zero only
  std::map<std::string, uint64_t> counters;        // monotonic named counts
  std::map<std::string, double> gauges;            // sampled absolute values
  // Per-gauge sequence stamp: the registry-wide SetGauge ordinal of the
  // sample in `gauges`. Merge keeps the highest-stamped sample per gauge, so
  // merging per-epoch shards out of order no longer silently replaces the
  // final sample with an earlier one. Absent entries read as stamp 0, which
  // preserves the legacy last-writer-wins behaviour for old snapshots.
  std::map<std::string, uint64_t> gauge_seq;
  // Named log-linear distributions (see HistogramData). Monotonic like
  // counters: merge adds bucket counts, delta subtracts them.
  std::map<std::string, HistogramData> histograms;

  const SiteTelemetry* FindSite(uint32_t id) const;
  uint64_t TotalSiteEvents(SiteEvent ev) const;
  const HistogramData* FindHistogram(const std::string& name) const;
  std::string ToJson() const;
};

Result<TelemetrySnapshot> TelemetrySnapshotFromJson(const std::string& json);

// Sums snapshots from several runs/processes into one profile: per-site
// counts are added per (keyed) site id, named counters and histogram
// buckets are added, and each gauge keeps the sample with the highest
// sequence stamp (ties — including unstamped legacy snapshots, which read
// as stamp 0 — resolve to the later input, i.e. last-writer-wins). The
// aggregation step of the profile -> re-rewrite loop
// (`redfat --merge-metrics`).
TelemetrySnapshot MergeTelemetrySnapshots(const std::vector<TelemetrySnapshot>& snapshots);

// cur - prev for the monotonic parts (per-site counts, named counters and
// histogram buckets; entries that delta to all-zero are dropped), while
// gauges keep cur's absolute values and sequence stamps (they are samples,
// not accumulators). Streaming epochs
// (`rfrun --metrics-epoch`) chain these so that merging every epoch file
// with MergeTelemetrySnapshots reproduces the one-shot snapshot exactly:
// counts telescope, and last-writer-wins leaves the final gauge sample.
TelemetrySnapshot DeltaTelemetrySnapshot(const TelemetrySnapshot& cur,
                                         const TelemetrySnapshot& prev);

// --- the registry ----------------------------------------------------------

class TelemetryRegistry {
 public:
  TelemetryRegistry();
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // The calling thread's shard (registered on first use, then cached
  // thread-locally; the returned pointer stays valid for the registry's
  // lifetime and must only be used from the calling thread).
  TelemetryShard* shard();

  // Cold-path named counters (accumulating) and gauges (each write also
  // advances the gauge's registry-wide sequence stamp, see
  // TelemetrySnapshot::gauge_seq).
  void AddCounter(const std::string& name, uint64_t delta);
  void SetGauge(const std::string& name, double value);

  // The calling thread's recording cell for the named histogram (registered
  // on first use, then cached thread-locally; same ownership and lifetime
  // rules as shard()). Hot-path producers fetch the cell once and Record
  // into it lock-free.
  HistogramCell* histogram(const std::string& name);

  TelemetrySnapshot Snapshot() const;

 private:
  const uint64_t id_;  // distinguishes address-reused registries in TLS caches
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TelemetryShard>> shards_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, uint64_t> gauge_seqs_;
  uint64_t gauge_seq_next_ = 0;
  std::map<std::string, std::vector<std::unique_ptr<HistogramCell>>> histograms_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_TELEMETRY_H_
