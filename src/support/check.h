// Internal invariant checking macros.
//
// REDFAT_CHECK aborts (with a message) when an internal invariant is
// violated. These are enabled in all build types: this library models a
// security tool, and silently continuing past a broken invariant would
// invalidate every measurement downstream.
#ifndef REDFAT_SRC_SUPPORT_CHECK_H_
#define REDFAT_SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace redfat {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "REDFAT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

[[noreturn]] inline void Fatal(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "fatal error at %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace redfat

#define REDFAT_CHECK(expr)                                   \
  do {                                                       \
    if (!(expr)) {                                           \
      ::redfat::CheckFailed(__FILE__, __LINE__, #expr);      \
    }                                                        \
  } while (0)

#define REDFAT_FATAL(msg) ::redfat::Fatal(__FILE__, __LINE__, (msg))

#endif  // REDFAT_SRC_SUPPORT_CHECK_H_
