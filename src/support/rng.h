// Deterministic xorshift128+ pseudo-random generator.
//
// All randomized pieces of the project (workload generators, property tests)
// use this generator so that every experiment is exactly reproducible from a
// seed.
#ifndef REDFAT_SRC_SUPPORT_RNG_H_
#define REDFAT_SRC_SUPPORT_RNG_H_

#include <cstdint>

#include "src/support/check.h"

namespace redfat {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    auto mix = [&z]() {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      return t ^ (t >> 31);
    };
    s0_ = mix();
    s1_ = mix();
    if (s0_ == 0 && s1_ == 0) {
      s1_ = 1;
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    REDFAT_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias (bias is irrelevant for the
    // workloads but matters for property tests probing boundaries).
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    REDFAT_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) {
    REDFAT_CHECK(den > 0 && num <= den);
    return Below(den) < num;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_RNG_H_
