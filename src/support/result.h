// A small Result<T> type for fallible operations (decode failures, malformed
// binaries, rewrite conflicts). Modeled loosely on absl::StatusOr but kept
// dependency-free: a Result either holds a value or an error message.
#ifndef REDFAT_SRC_SUPPORT_RESULT_H_
#define REDFAT_SRC_SUPPORT_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/support/check.h"

namespace redfat {

// Error with a human-readable message. Used as the failure arm of Result<T>.
class Error {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

 private:
  std::string message_;
};

template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return Error{...};` both
  // work at fallible call sites.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Error error) : error_(std::move(error.message())) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  const T& value() const& {
    REDFAT_CHECK(ok());
    return *value_;
  }
  T& value() & {
    REDFAT_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    REDFAT_CHECK(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    REDFAT_CHECK(!ok());
    return error_;
  }

 private:
  std::optional<T> value_;
  std::string error_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;                                           // success
  Status(Error error) : error_(std::move(error.message())) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  const std::string& error() const {
    REDFAT_CHECK(!ok());
    return *error_;
  }

 private:
  std::optional<std::string> error_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SUPPORT_RESULT_H_
