// The RedFat tool driver: stripped binary in, hardened binary out.
//
// Mirrors the paper's command-line tool. Instrument() is a thin
// configuration of the pass pipeline (core/pipeline.h): it builds
// Pipeline::Hardening(opts) — which disables the eliminate/batch/merge
// passes per the option flags — runs it over the input image, and unpacks
// the context. The two-phase workflow of Fig. 5 is:
//
//   RedFatTool prof(RedFatOptions::Profile());
//   auto test_binary = prof.Instrument(input);            // step 1
//   ... run test_binary against a test suite (Policy::kLog) ...
//   AllowList allow = BuildAllowList(vm.prof_counts(), test_binary.sites);
//   RedFatTool tool(options);
//   auto hardened = tool.Instrument(input, &allow);       // step 2
#ifndef REDFAT_SRC_CORE_REDFAT_H_
#define REDFAT_SRC_CORE_REDFAT_H_

#include <unordered_map>

#include "src/bin/image.h"
#include "src/core/options.h"
#include "src/core/pipeline.h"
#include "src/core/plan.h"
#include "src/core/policy.h"
#include "src/rw/rewriter.h"
#include "src/support/result.h"
#include "src/vm/vm.h"

namespace redfat {

struct InstrumentResult {
  BinaryImage image;
  std::vector<SiteRecord> sites;  // indexed by site id
  PlanStats plan_stats;
  RewriteStats rewrite_stats;
  PipelineStats pipeline_stats;   // per-pass items/changed/timings
  // The hardening tier this image was built under (core/policy.h).
  // harden_explicit is true only when the tool was configured through a
  // resolved policy (e.g. --harden=TIER): artifacts like the sitemap record
  // the tier only then, so legacy invocations stay byte-identical.
  HardenTier harden = HardenTier::kExtensive;
  bool harden_explicit = false;
  // The rheap allocator feature list the image was configured for; recorded
  // in the sitemap ("# rheap: <list>") only when rheap_explicit, i.e. the
  // user passed --rheap (tier defaults need no header — rfrun re-derives
  // them from the tier).
  RheapOptions rheap;
  bool rheap_explicit = false;
};

class RedFatTool {
 public:
  explicit RedFatTool(RedFatOptions opts);
  // Policy form: the rewrite knobs come from a resolved hardening policy
  // and the result records the tier (--harden=TIER flows through here).
  explicit RedFatTool(const ResolvedPolicy& policy);

  // Instruments `input`. With an allow-list, only listed sites receive the
  // full (Redzone)+(LowFat) check; without one, every eligible site does
  // ("full-on" mode, used to measure false positives). With a pool, the
  // pipeline shards on it instead of spawning its own workers (the batch
  // driver shares one pool across concurrent images).
  Result<InstrumentResult> Instrument(const BinaryImage& input,
                                      const AllowList* allow = nullptr,
                                      ThreadPool* pool = nullptr) const;

  const RedFatOptions& options() const { return opts_; }
  HardenTier harden() const { return harden_; }

 private:
  RedFatOptions opts_;
  HardenTier harden_ = HardenTier::kExtensive;
  bool harden_explicit_ = false;
  RheapOptions rheap_;
  bool rheap_explicit_ = false;
};

// Fig. 5 step 1 output -> allow-list: full-check sites that were observed
// at least once and never failed the (LowFat) component.
AllowList BuildAllowList(const std::unordered_map<uint32_t, Vm::ProfCounts>& prof_counts,
                         const std::vector<SiteRecord>& sites);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_REDFAT_H_
