#include "src/core/sitemap.h"

#include <cstdio>

#include "src/core/pipeline.h"
#include "src/core/policy.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"

namespace redfat {

std::string SerializeSiteMap(const std::vector<SiteRecord>& sites,
                             const HardenTier* harden, const RheapOptions* rheap) {
  // The tier column only appears when the tier pass actually ran (some site
  // is non-warm), so untiered site maps stay byte-identical to older builds.
  bool tiered = false;
  for (const SiteRecord& s : sites) {
    if (s.tier != Tier::kWarm) {
      tiered = true;
      break;
    }
  }
  std::string out;
  if (harden != nullptr) {
    out += StrFormat("# harden: %s\n", HardenTierName(*harden));
  }
  if (rheap != nullptr) {
    out += StrFormat("# rheap: %s\n", RheapListName(*rheap).c_str());
  }
  out += tiered ? "# redfat site map: id addr rw kind tier\n"
                : "# redfat site map: id addr rw kind\n";
  for (const SiteRecord& s : sites) {
    out += StrFormat("%u 0x%llx %c %s", s.id, static_cast<unsigned long long>(s.addr),
                     s.is_write ? 'w' : 'r',
                     s.kind == CheckKind::kFull ? "full" : "redzone");
    if (tiered) {
      out += StrFormat(" %s", TierName(s.tier));
    }
    out += "\n";
  }
  return out;
}

Result<std::vector<SiteRecord>> ParseSiteMap(const std::vector<std::string>& lines,
                                             std::optional<HardenTier>* harden,
                                             std::optional<RheapOptions>* rheap) {
  std::vector<SiteRecord> sites;
  if (harden != nullptr) {
    harden->reset();
  }
  if (rheap != nullptr) {
    rheap->reset();
  }
  for (const std::string& line : lines) {
    if (line.empty() || line[0] == '#') {
      // The policy headers ("# harden: <tier>", "# rheap: <list>") are the
      // comments that carry data; any other comment line is skipped.
      const std::string prefix = "# harden: ";
      if (harden != nullptr && line.rfind(prefix, 0) == 0) {
        Result<HardenTier> t = ParseHardenTier(line.substr(prefix.size()));
        if (!t.ok()) {
          return Error(StrFormat("sitemap: %s", t.error().c_str()));
        }
        *harden = t.value();
      }
      const std::string rprefix = "# rheap: ";
      if (rheap != nullptr && line.rfind(rprefix, 0) == 0) {
        Result<RheapOptions> o = ParseRheapList(line.substr(rprefix.size()));
        if (!o.ok()) {
          return Error(StrFormat("sitemap: %s", o.error().c_str()));
        }
        *rheap = o.value();
      }
      continue;
    }
    unsigned id = 0;
    unsigned long long addr = 0;
    char rw = 0;
    char kind[16] = {};
    char tier[16] = {};
    const int n =
        std::sscanf(line.c_str(), "%u %llx %c %15s %15s", &id, &addr, &rw, kind, tier);
    if (n != 4 && n != 5) {
      return Error(StrFormat("sitemap: malformed line: %s", line.c_str()));
    }
    SiteRecord s;
    s.id = id;
    s.addr = addr;
    s.is_write = rw == 'w';
    s.kind = std::string(kind) == "full" ? CheckKind::kFull : CheckKind::kRedzoneOnly;
    if (n == 5) {
      const std::string t(tier);
      if (t == "hot") {
        s.tier = Tier::kHot;
      } else if (t == "cold") {
        s.tier = Tier::kCold;
      } else if (t != "warm") {
        return Error(StrFormat("sitemap: unknown tier '%s' in line: %s", tier,
                               line.c_str()));
      }
    }
    sites.push_back(s);
  }
  return sites;
}

std::string DescribeError(const MemErrorReport& error, const std::vector<SiteRecord>* sites) {
  const char* what = "memory error";
  switch (error.kind) {
    case ErrorKind::kBounds:
      what = "out-of-bounds";
      break;
    case ErrorKind::kUaf:
      what = "use-after-free";
      break;
    case ErrorKind::kMeta:
      what = "corrupted size metadata";
      break;
    case ErrorKind::kDoubleFree:
      what = "double free";
      break;
    case ErrorKind::kFreelistCorruption:
      what = "freelist corruption";
      break;
  }
  // Double frees and freelist corruptions are raised by the VM/allocator
  // with a placeholder site id, so a site join would point at an unrelated
  // instruction.
  if (error.kind == ErrorKind::kDoubleFree ||
      error.kind == ErrorKind::kFreelistCorruption) {
    return StrFormat("%s (rip=0x%llx)", what,
                     static_cast<unsigned long long>(error.rip));
  }
  if (sites != nullptr && error.site < sites->size()) {
    const SiteRecord& s = (*sites)[error.site];
    return StrFormat("%s %s at 0x%llx (site %u, %s check)", what,
                     s.is_write ? "write" : "read",
                     static_cast<unsigned long long>(s.addr), s.id,
                     s.kind == CheckKind::kFull ? "lowfat+redzone" : "redzone");
  }
  return StrFormat("%s at site %u (rip=0x%llx)", what, error.site,
                   static_cast<unsigned long long>(error.rip));
}

std::string FormatTelemetryReport(const TelemetrySnapshot& snapshot,
                                  const std::vector<SiteRecord>* sites,
                                  const PipelineStats* pipeline,
                                  uint64_t total_cycles) {
  return FormatTelemetryReport(snapshot, std::vector<ImageSiteTable>{{"", sites}},
                               pipeline, total_cycles);
}

std::string FormatTelemetryReport(const TelemetrySnapshot& snapshot,
                                  const std::vector<ImageSiteTable>& images,
                                  const PipelineStats* pipeline,
                                  uint64_t total_cycles) {
  const bool multi = images.size() > 1;
  // The harden column appears only when some image's sitemap carried a
  // policy header, so reports over legacy artifacts are unchanged.
  bool any_harden = false;
  for (const ImageSiteTable& t : images) {
    if (!t.harden.empty()) {
      any_harden = true;
      break;
    }
  }
  std::string out;
  out += "=== per-site runtime telemetry ===\n";
  if (snapshot.sites.empty()) {
    out += "(no site events recorded)\n";
  } else {
    if (multi) {
      out += StrFormat("%12s ", "img");
    }
    if (any_harden) {
      out += StrFormat("%9s ", "harden");
    }
    out += StrFormat("%6s %10s %2s %7s %4s  %12s %8s %9s %9s %12s %12s %7s\n",
                     "site", "addr", "rw", "kind", "tier", "checks", "rz-hits",
                     "lf-pass", "lf-fail", "tramp-cyc", "inline-cyc", "cyc%");
    for (const SiteTelemetry& st : snapshot.sites) {
      // Only multi-image runs emit packed keys; single-image site ids may
      // legitimately exceed the packed-site range and must stay plain.
      const uint32_t img = multi ? ImageOfSiteKey(st.site) : 0;
      const uint32_t site_id = multi ? SiteOfSiteKey(st.site) : st.site;
      const SiteRecord* rec = nullptr;
      if (img < images.size() && images[img].sites != nullptr) {
        for (const SiteRecord& s : *images[img].sites) {
          if (s.id == site_id) {
            rec = &s;
            break;
          }
        }
      }
      const std::string addr =
          rec != nullptr
              ? StrFormat("0x%llx", static_cast<unsigned long long>(rec->addr))
              : "?";
      const uint64_t site_cycles = st.tramp_cycles() + st.inline_cycles();
      const std::string share =
          total_cycles != 0
              ? StrFormat("%6.2f%%", 100.0 * static_cast<double>(site_cycles) /
                                         static_cast<double>(total_cycles))
              : std::string("-");
      if (multi) {
        const std::string img_name =
            img < images.size() && !images[img].name.empty()
                ? images[img].name
                : StrFormat("#%u", img);
        out += StrFormat("%12s ", img_name.c_str());
      }
      if (any_harden) {
        const bool known = img < images.size() && !images[img].harden.empty();
        out += StrFormat("%9s ", known ? images[img].harden.c_str() : "?");
      }
      out += StrFormat(
          "%6u %10s %2s %7s %4s  %12llu %8llu %9llu %9llu %12llu %12llu %7s\n",
          site_id, addr.c_str(), rec != nullptr ? (rec->is_write ? "w" : "r") : "?",
          rec != nullptr ? (rec->kind == CheckKind::kFull ? "full" : "redzone") : "?",
          rec != nullptr ? TierName(rec->tier) : "?",
          static_cast<unsigned long long>(st.checks()),
          static_cast<unsigned long long>(st.redzone_hits()),
          static_cast<unsigned long long>(st.lowfat_passes()),
          static_cast<unsigned long long>(st.lowfat_fails()),
          static_cast<unsigned long long>(st.tramp_cycles()),
          static_cast<unsigned long long>(st.inline_cycles()), share.c_str());
    }
  }
  if (!snapshot.counters.empty()) {
    out += "=== counters ===\n";
    for (const auto& [name, value] : snapshot.counters) {
      out += StrFormat("%-32s %llu\n", name.c_str(),
                       static_cast<unsigned long long>(value));
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "=== gauges ===\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out += StrFormat("%-32s %g\n", name.c_str(), value);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "=== histograms ===\n";
    out += StrFormat("%-32s %12s %12s %12s %12s %12s\n", "name", "count", "mean",
                     "p50", "p90", "p99");
    for (const auto& [name, h] : snapshot.histograms) {
      out += StrFormat("%-32s %12llu %12.1f %12llu %12llu %12llu\n", name.c_str(),
                       static_cast<unsigned long long>(h.Count()), h.Mean(),
                       static_cast<unsigned long long>(h.Percentile(50)),
                       static_cast<unsigned long long>(h.Percentile(90)),
                       static_cast<unsigned long long>(h.Percentile(99)));
    }
  }
  if (pipeline != nullptr) {
    out += "=== rewrite pipeline ===\n";
    out += StrFormat("%-10s %10s %10s %12s %10s\n", "pass", "items", "changed",
                     "cyc-saved", "wall-ms");
    for (const PassStats& p : pipeline->passes) {
      out += StrFormat("%-10s %10zu %10zu %12llu %10.3f\n", p.name.c_str(), p.items,
                       p.changed, static_cast<unsigned long long>(p.cycles_saved),
                       p.wall_ms);
    }
  }
  return out;
}

}  // namespace redfat
