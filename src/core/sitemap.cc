#include "src/core/sitemap.h"

#include <cstdio>

#include "src/support/str.h"

namespace redfat {

std::string SerializeSiteMap(const std::vector<SiteRecord>& sites) {
  std::string out = "# redfat site map: id addr rw kind\n";
  for (const SiteRecord& s : sites) {
    out += StrFormat("%u 0x%llx %c %s\n", s.id, static_cast<unsigned long long>(s.addr),
                     s.is_write ? 'w' : 'r',
                     s.kind == CheckKind::kFull ? "full" : "redzone");
  }
  return out;
}

Result<std::vector<SiteRecord>> ParseSiteMap(const std::vector<std::string>& lines) {
  std::vector<SiteRecord> sites;
  for (const std::string& line : lines) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    unsigned id = 0;
    unsigned long long addr = 0;
    char rw = 0;
    char kind[16] = {};
    if (std::sscanf(line.c_str(), "%u %llx %c %15s", &id, &addr, &rw, kind) != 4) {
      return Error(StrFormat("sitemap: malformed line: %s", line.c_str()));
    }
    SiteRecord s;
    s.id = id;
    s.addr = addr;
    s.is_write = rw == 'w';
    s.kind = std::string(kind) == "full" ? CheckKind::kFull : CheckKind::kRedzoneOnly;
    sites.push_back(s);
  }
  return sites;
}

std::string DescribeError(const MemErrorReport& error, const std::vector<SiteRecord>* sites) {
  const char* what = "memory error";
  switch (error.kind) {
    case ErrorKind::kBounds:
      what = "out-of-bounds";
      break;
    case ErrorKind::kUaf:
      what = "use-after-free";
      break;
    case ErrorKind::kMeta:
      what = "corrupted size metadata";
      break;
  }
  if (sites != nullptr && error.site < sites->size()) {
    const SiteRecord& s = (*sites)[error.site];
    return StrFormat("%s %s at 0x%llx (site %u, %s check)", what,
                     s.is_write ? "write" : "read",
                     static_cast<unsigned long long>(s.addr), s.id,
                     s.kind == CheckKind::kFull ? "lowfat+redzone" : "redzone");
  }
  return StrFormat("%s at site %u (rip=0x%llx)", what, error.site,
                   static_cast<unsigned long long>(error.rip));
}

}  // namespace redfat
