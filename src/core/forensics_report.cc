#include "src/core/forensics_report.h"

#include "src/core/sitemap.h"
#include "src/support/str.h"

namespace redfat {

namespace {

constexpr uint64_t kDumpRow = 16;
constexpr uint64_t kDumpRows = 4;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Hex(uint64_t v) {
  return StrFormat("0x%llx", static_cast<unsigned long long>(v));
}

void AppendProvenanceJson(std::string& out, const ForensicReport& r) {
  const AllocProvenance& p = r.provenance;
  out += StrFormat(
      ",\"object\":{\"ptr\":\"%s\",\"size\":%llu,\"freed\":%s,"
      "\"alloc_pc\":\"%s\",\"alloc_instruction\":%llu,\"alloc_cycles\":%llu,"
      "\"alloc_epoch\":%llu",
      Hex(p.ptr).c_str(), static_cast<unsigned long long>(p.size),
      r.provenance_freed ? "true" : "false", Hex(p.alloc_pc).c_str(),
      static_cast<unsigned long long>(p.alloc_instruction),
      static_cast<unsigned long long>(p.alloc_cycles),
      static_cast<unsigned long long>(p.alloc_epoch));
  if (p.freed) {
    out += StrFormat(
        ",\"free_pc\":\"%s\",\"free_instruction\":%llu,\"free_cycles\":%llu,"
        "\"free_epoch\":%llu",
        Hex(p.free_pc).c_str(), static_cast<unsigned long long>(p.free_instruction),
        static_cast<unsigned long long>(p.free_cycles),
        static_cast<unsigned long long>(p.free_epoch));
  }
  out += StrFormat("},\"distance\":%llu,\"past_end\":%s",
                   static_cast<unsigned long long>(r.distance),
                   r.past_end ? "true" : "false");
}

}  // namespace

const char* ErrorKindToken(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kBounds: return "oob";
    case ErrorKind::kUaf: return "uaf";
    case ErrorKind::kMeta: return "meta";
    case ErrorKind::kDoubleFree: return "double-free";
    case ErrorKind::kFreelistCorruption: return "freelist-corruption";
  }
  return "?";
}

ForensicReport BuildForensicReport(const MemErrorReport& error,
                                   const ForensicRing& ring, const Memory& memory,
                                   const std::vector<SiteRecord>* sites,
                                   const std::string& tier) {
  ForensicReport r;
  r.error = error;
  r.description = DescribeError(error, sites);
  r.tier = tier;
  if (!error.has_addr) {
    return r;  // trap payloads carry only (site, kind): nothing to join on
  }

  const uint64_t addr = error.addr;
  if (const AllocProvenance* live = ring.FindLive(addr)) {
    r.have_provenance = true;
    r.provenance = *live;
  } else if (const AllocProvenance* freed = ring.FindFreed(addr)) {
    r.have_provenance = true;
    r.provenance = *freed;
    r.provenance_freed = true;
  } else {
    const ForensicRing::Proximity near = ring.Nearest(addr);
    if (near.object != nullptr) {
      r.have_provenance = true;
      r.provenance = *near.object;
      r.provenance_freed = near.object->freed;
      r.distance = near.distance;
      r.past_end = near.past_end;
    }
  }

  // Neighborhood dump: the faulting address's 16-byte row, one row of
  // context before it and two after (the row layout puts the redzone bytes
  // around a payload-edge miss in frame).
  const uint64_t row = addr & ~(kDumpRow - 1);
  r.dump_base = row >= kDumpRow ? row - kDumpRow : 0;
  r.dump_bytes.resize(kDumpRows * kDumpRow);
  memory.ReadBytes(r.dump_base, r.dump_bytes.data(), r.dump_bytes.size());
  r.have_dump = true;
  return r;
}

std::string FormatForensicReport(const ForensicReport& r) {
  std::string out = StrFormat("memory error: %s\n", r.description.c_str());
  if (!r.tier.empty()) {
    out += StrFormat("  tier: %s\n", r.tier.c_str());
  }
  if (r.error.has_addr) {
    out += StrFormat("  address: %s", Hex(r.error.addr).c_str());
    if (r.have_provenance) {
      if (r.distance == 0) {
        out += r.provenance_freed ? " (inside freed object)" : " (inside object)";
      } else {
        out += StrFormat(" (%llu byte%s %s nearest object)",
                         static_cast<unsigned long long>(r.distance),
                         r.distance == 1 ? "" : "s",
                         r.past_end ? "past end of" : "before");
      }
    }
    out += "\n";
  }
  if (r.have_provenance) {
    const AllocProvenance& p = r.provenance;
    out += StrFormat("  object: %llu bytes at %s, allocated at pc %s (insn %llu, epoch %llu)\n",
                     static_cast<unsigned long long>(p.size), Hex(p.ptr).c_str(),
                     Hex(p.alloc_pc).c_str(),
                     static_cast<unsigned long long>(p.alloc_instruction),
                     static_cast<unsigned long long>(p.alloc_epoch));
    if (p.freed) {
      out += StrFormat("  freed at pc %s (insn %llu, epoch %llu)\n", Hex(p.free_pc).c_str(),
                       static_cast<unsigned long long>(p.free_instruction),
                       static_cast<unsigned long long>(p.free_epoch));
    }
  } else if (r.error.has_addr) {
    out += "  object: no tracked allocation near this address\n";
  }
  if (r.have_dump) {
    out += StrFormat("  neighborhood of %s:\n", Hex(r.error.addr).c_str());
    for (uint64_t row = 0; row < kDumpRows; ++row) {
      out += StrFormat("    %s ", Hex(r.dump_base + row * kDumpRow).c_str());
      for (uint64_t i = 0; i < kDumpRow; ++i) {
        out += StrFormat(" %02x", r.dump_bytes[row * kDumpRow + i]);
      }
      out += "\n";
    }
  }
  return out;
}

std::string ForensicReportsToJson(const std::vector<ForensicReport>& reports,
                                  const ForensicRing& ring) {
  std::string out = "{\"errors\":[";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ForensicReport& r = reports[i];
    if (i != 0) {
      out += ",";
    }
    out += StrFormat(
        "{\"site\":%u,\"kind\":\"%s\",\"rip\":\"%s\",\"instruction\":%llu,"
        "\"tier\":\"%s\",\"description\":\"%s\"",
        r.error.site, ErrorKindToken(r.error.kind), Hex(r.error.rip).c_str(),
        static_cast<unsigned long long>(r.error.instruction_index),
        JsonEscape(r.tier).c_str(), JsonEscape(r.description).c_str());
    if (r.error.has_addr) {
      out += StrFormat(",\"addr\":\"%s\"", Hex(r.error.addr).c_str());
    }
    if (r.have_provenance) {
      AppendProvenanceJson(out, r);
    }
    if (r.have_dump) {
      out += StrFormat(",\"neighborhood\":{\"base\":\"%s\",\"bytes\":\"",
                       Hex(r.dump_base).c_str());
      for (const uint8_t b : r.dump_bytes) {
        out += StrFormat("%02x", b);
      }
      out += "\"}";
    }
    out += "}";
  }
  out += StrFormat(
      "],\"ring\":{\"live\":%llu,\"freed\":%llu,\"capacity\":%llu,\"evicted\":%llu}}",
      static_cast<unsigned long long>(ring.live_count()),
      static_cast<unsigned long long>(ring.freed_count()),
      static_cast<unsigned long long>(ring.capacity()),
      static_cast<unsigned long long>(ring.evicted()));
  return out;
}

}  // namespace redfat
