#include "src/core/fuzz_profile.h"

#include <unordered_map>
#include <unordered_set>

#include "src/support/check.h"
#include "src/support/rng.h"

namespace redfat {

namespace {

// AFL-flavored input mutations over the u64-vector input model.
std::vector<uint64_t> Mutate(const std::vector<uint64_t>& parent, Rng* rng) {
  std::vector<uint64_t> child = parent;
  if (child.empty()) {
    child.push_back(rng->Next());
  }
  const unsigned n = 1 + static_cast<unsigned>(rng->Below(3));
  for (unsigned i = 0; i < n; ++i) {
    const size_t pos = rng->Below(child.size());
    switch (rng->Below(5)) {
      case 0:  // single bit flip
        child[pos] ^= uint64_t{1} << rng->Below(64);
        break;
      case 1:  // byte flip
        child[pos] ^= uint64_t{0xff} << (8 * rng->Below(8));
        break;
      case 2:  // interesting small values
        child[pos] = rng->Below(64);
        break;
      case 3:  // arithmetic nudge
        child[pos] += rng->Below(16) - 8;
        break;
      default:  // replace wholesale
        child[pos] = rng->Next();
        break;
    }
  }
  if (rng->Chance(1, 8)) {
    child.push_back(rng->Next());
  }
  return child;
}

}  // namespace

FuzzProfileResult FuzzProfile(const InstrumentResult& profiling,
                              const FuzzProfileConfig& config) {
  Rng rng(config.seed);
  FuzzProfileResult result;

  std::unordered_map<uint32_t, Vm::ProfCounts> accumulated;
  std::unordered_set<uint32_t> seen_sites;
  std::vector<std::vector<uint64_t>> corpus;
  corpus.push_back(config.initial_inputs);

  auto run_one = [&](const std::vector<uint64_t>& inputs) -> bool {
    RunConfig cfg;
    cfg.inputs = inputs;
    cfg.policy = Policy::kLog;  // profiling must never abort
    cfg.instruction_limit = config.instruction_limit;
    const RunOutcome out = RunImage(profiling.image, config.runtime, cfg);
    ++result.runs;
    // Crashing/timing-out inputs still contribute observations: the checks
    // that *did* run are valid evidence (AFL keeps crashers separately; we
    // only need coverage).
    bool novel = false;
    for (const auto& [site, counts] : out.prof_counts) {
      Vm::ProfCounts& acc = accumulated[site];
      acc.passes += counts.passes;
      acc.fails += counts.fails;
      if (seen_sites.insert(site).second) {
        novel = true;
      }
    }
    return novel && out.result.reason == HaltReason::kExit;
  };

  run_one(config.initial_inputs);
  while (result.runs < config.max_runs) {
    const std::vector<uint64_t>& parent = corpus[rng.Below(corpus.size())];
    std::vector<uint64_t> child = Mutate(parent, &rng);
    if (run_one(child)) {
      corpus.push_back(std::move(child));  // novelty: keep for further mutation
    }
  }

  result.corpus_size = corpus.size();
  result.sites_observed = seen_sites.size();
  for (const auto& [site, counts] : accumulated) {
    (void)site;
    if (counts.fails > 0 && counts.passes == 0) {
      ++result.sites_always_fail;
    }
  }
  result.allow = BuildAllowList(accumulated, profiling.sites);
  return result;
}

}  // namespace redfat
