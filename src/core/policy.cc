#include "src/core/policy.h"

#include "src/support/str.h"

namespace redfat {

const char* HardenTierName(HardenTier tier) {
  switch (tier) {
    case HardenTier::kNone:
      return "none";
    case HardenTier::kFast:
      return "fast";
    case HardenTier::kExtensive:
      return "extensive";
    case HardenTier::kDebug:
      return "debug";
  }
  return "?";
}

Result<HardenTier> ParseHardenTier(const std::string& name) {
  if (name == "none") {
    return HardenTier::kNone;
  }
  if (name == "fast") {
    return HardenTier::kFast;
  }
  if (name == "extensive") {
    return HardenTier::kExtensive;
  }
  if (name == "debug") {
    return HardenTier::kDebug;
  }
  return Error(StrFormat(
      "unknown hardening tier '%s' (expected none|fast|extensive|debug)", name.c_str()));
}

ResolvedPolicy ResolvedPolicy::FromOptions(const RedFatOptions& opts) {
  ResolvedPolicy r;
  r.rewrite = opts;
  r.explicit_tier = false;
  // Descriptive only: classify the free-floating options onto the nearest
  // tier so reports can still label the configuration.
  if (!opts.check_reads && !opts.check_writes) {
    r.tier = HardenTier::kNone;
    r.runtime = RuntimeKind::kBaseline;
  } else if (!opts.redzone_only_sites) {
    r.tier = HardenTier::kFast;
    r.runtime = RuntimeKind::kRedFat;
  } else {
    r.tier = HardenTier::kExtensive;
    r.runtime = opts.redzone_impl == RedzoneImpl::kShadow ? RuntimeKind::kRedFatShadow
                                                          : RuntimeKind::kRedFat;
  }
  return r;
}

Result<ResolvedPolicy> HardeningPolicy::Resolve() const {
  const char* tname = HardenTierName(tier);
  // Conflict validation first: a contradictory combination must error with
  // a diagnostic naming both sides, never silently resolve (the CLI maps
  // legacy flags like --shadow/--no-lowfat onto these overrides).
  switch (tier) {
    case HardenTier::kNone:
      if (shadow_impl == true) {
        return Error(StrFormat(
            "--harden=%s disables all checks; --shadow selects a redzone "
            "implementation and has nothing to apply to", tname));
      }
      if (rheap.has_value()) {
        return Error(StrFormat(
            "--harden=%s binds the baseline (glibc-like) allocator; --rheap "
            "configures the hardened allocator and has nothing to apply to",
            tname));
      }
      break;
    case HardenTier::kFast:
      if (lowfat == false) {
        return Error(StrFormat(
            "--harden=%s is lowfat-only inline checking; --no-lowfat would "
            "leave no checks at all (use --harden=none for that)", tname));
      }
      if (shadow_impl == true) {
        return Error(StrFormat(
            "--harden=%s emits no (Redzone)-only sites; the --shadow redzone "
            "implementation only applies to --harden=extensive", tname));
      }
      if (redzone_only_sites == true) {
        return Error(StrFormat(
            "--harden=%s drops (Redzone)-only sites by definition; use "
            "--harden=extensive to keep them", tname));
      }
      break;
    case HardenTier::kExtensive:
      break;
    case HardenTier::kDebug:
      if (lowfat == false) {
        return Error(StrFormat(
            "--harden=%s layers shadow-state checking over the full lowfat "
            "runtime; --no-lowfat contradicts it", tname));
      }
      if (shadow_impl == true) {
        return Error(StrFormat(
            "--harden=%s uses in-redzone metadata plus the guest shadow map; "
            "the --shadow check-body ablation conflicts with its runtime", tname));
      }
      break;
  }

  ResolvedPolicy r;
  r.tier = tier;
  r.explicit_tier = true;
  r.runtime = RuntimeForTier(tier);
  r.rheap = rheap.has_value() ? *rheap : RheapForTier(tier);
  r.explicit_rheap = rheap.has_value();
  RedFatOptions& o = r.rewrite;  // starts at the extensive/default knobs

  // Tier defaults.
  switch (tier) {
    case HardenTier::kNone:
      o.check_reads = false;
      o.check_writes = false;
      break;
    case HardenTier::kFast:
      o.redzone_only_sites = false;
      o.hot_threshold = 0.8;  // demote aggressively: fast trades coverage for cycles
      break;
    case HardenTier::kExtensive:
      break;  // byte-identical to RedFatOptions{}
    case HardenTier::kDebug:
      o.hot_threshold = 1.0;  // never demote: keep every check at full strength
      r.dbi_shadow_check = true;
      break;
  }

  // Per-family overrides (validated above; applied on top of the tier).
  if (check_reads.has_value()) {
    o.check_reads = *check_reads;
  }
  if (size_hardening.has_value()) {
    o.size_hardening = *size_hardening;
  }
  if (lowfat.has_value()) {
    o.lowfat = *lowfat;
  }
  if (redzone_only_sites.has_value()) {
    o.redzone_only_sites = *redzone_only_sites;
  }
  if (shadow_impl.has_value() && *shadow_impl) {
    o.redzone_impl = RedzoneImpl::kShadow;
    if (tier == HardenTier::kExtensive) {
      r.runtime = RuntimeKind::kRedFatShadow;
    }
  }
  if (elim.has_value()) {
    o.elim = *elim;
  }
  if (batch.has_value()) {
    o.batch = *batch;
  }
  if (merge.has_value()) {
    o.merge = *merge;
  }
  if (hot_threshold.has_value()) {
    o.hot_threshold = *hot_threshold;
  }
  return r;
}

HardeningPolicy AblationPolicy(AblationPreset preset) {
  HardeningPolicy p;  // extensive base, like Table 1's full configuration
  switch (preset) {
    case AblationPreset::kUnoptimized:
      p.elim = false;
      p.batch = false;
      p.merge = false;
      break;
    case AblationPreset::kElim:
      p.batch = false;
      p.merge = false;
      break;
    case AblationPreset::kBatch:
      p.merge = false;
      break;
    case AblationPreset::kMerge:
      break;
    case AblationPreset::kNoSize:
      p.size_hardening = false;
      break;
    case AblationPreset::kNoReads:
      p.size_hardening = false;
      p.check_reads = false;
      break;
  }
  return p;
}

RuntimeKind RuntimeForTier(HardenTier tier) {
  switch (tier) {
    case HardenTier::kNone:
      return RuntimeKind::kBaseline;
    case HardenTier::kFast:
    case HardenTier::kExtensive:
      return RuntimeKind::kRedFat;
    case HardenTier::kDebug:
      return RuntimeKind::kRedFatDebug;
  }
  return RuntimeKind::kBaseline;
}

RheapOptions RheapForTier(HardenTier tier) {
  RheapOptions o;  // perf-only defaults: features off, quarantine=64
  switch (tier) {
    case HardenTier::kNone:
    case HardenTier::kFast:
      break;
    case HardenTier::kExtensive:
      o.prot_freelist = true;
      break;
    case HardenTier::kDebug:
      o.prot_freelist = true;
      o.guard_memcpy = true;
      o.random = true;
      break;
  }
  return o;
}

double TierOverheadBudgetPct(HardenTier tier) {
  // Ceilings over the simulated cycle model, which prices trampoline
  // dispatch far above real hardware (the paper's wall-clock regime is
  // ~1.25-1.6x; bench_harden_tiers measures ~2.3x/~2.9x/~17x here). The
  // value is the regression tripwire CI asserts, not a target.
  switch (tier) {
    case HardenTier::kNone:
      return 1.0;  // uninstrumented: any overhead is a harness bug
    case HardenTier::kFast:
      return 300.0;
    case HardenTier::kExtensive:
      return 400.0;
    case HardenTier::kDebug:
      return 2500.0;  // DBI-grade: not a production configuration
  }
  return 0.0;
}

// The Table-1 ablation factories (declared in options.h) are defined here,
// through the policy layer, so options.h stops encoding the presets by
// hand. Resolution of a valid preset cannot fail.
RedFatOptions RedFatOptions::Unoptimized() {
  return AblationPolicy(AblationPreset::kUnoptimized).Resolve().value().rewrite;
}
RedFatOptions RedFatOptions::Elim() {
  return AblationPolicy(AblationPreset::kElim).Resolve().value().rewrite;
}
RedFatOptions RedFatOptions::Batch() {
  return AblationPolicy(AblationPreset::kBatch).Resolve().value().rewrite;
}
RedFatOptions RedFatOptions::Merge() {
  return AblationPolicy(AblationPreset::kMerge).Resolve().value().rewrite;
}
RedFatOptions RedFatOptions::NoSize() {
  return AblationPolicy(AblationPreset::kNoSize).Resolve().value().rewrite;
}
RedFatOptions RedFatOptions::NoReads() {
  return AblationPolicy(AblationPreset::kNoReads).Resolve().value().rewrite;
}

}  // namespace redfat
