#include "src/core/redfat.h"

#include "src/core/codegen.h"
#include "src/rw/liveness.h"
#include "src/support/check.h"

namespace redfat {

RedFatTool::RedFatTool(RedFatOptions opts) : opts_(opts) {
  if (opts_.mode == RedFatOptions::Mode::kProfile) {
    // Profiling needs per-site pass/fail attribution; a merged check would
    // conflate its member sites.
    opts_.merge = false;
  }
}

Result<InstrumentResult> RedFatTool::Instrument(const BinaryImage& input,
                                                const AllowList* allow) const {
  Rewriter rewriter(input);
  if (!rewriter.ok()) {
    return Error(rewriter.error());
  }
  InstrumentResult out;
  InstrumentPlan plan = BuildPlan(rewriter.disasm(), rewriter.cfg(), opts_, allow);

  std::vector<PatchRequest> requests;
  requests.reserve(plan.trampolines.size());
  for (const PlannedTrampoline& tramp : plan.trampolines) {
    const ClobberInfo clobbers =
        ComputeClobbers(rewriter.disasm(), rewriter.cfg(), tramp.insn_index);
    PatchRequest req;
    req.addr = tramp.addr;
    // Capture by value: the plan outlives only this function.
    req.emit_payload = [tramp, clobbers, opts = opts_](Assembler& as) {
      EmitTrampolinePayload(as, tramp, clobbers, opts);
    };
    requests.push_back(std::move(req));
  }

  Result<BinaryImage> rewritten =
      rewriter.Apply(requests, &out.rewrite_stats, opts_.trampoline_base);
  if (!rewritten.ok()) {
    return Error(rewritten.error());
  }
  out.image = std::move(rewritten).value();
  out.sites = std::move(plan.sites);
  out.plan_stats = plan.stats;
  return out;
}

AllowList BuildAllowList(const std::unordered_map<uint32_t, Vm::ProfCounts>& prof_counts,
                         const std::vector<SiteRecord>& sites) {
  AllowList allow;
  for (const SiteRecord& site : sites) {
    if (site.kind != CheckKind::kFull) {
      continue;
    }
    auto it = prof_counts.find(site.id);
    if (it == prof_counts.end()) {
      continue;  // never observed: stay conservative (Redzone-only)
    }
    if (it->second.fails == 0 && it->second.passes > 0) {
      allow.addrs.insert(site.addr);
    }
  }
  return allow;
}

}  // namespace redfat
