#include "src/core/redfat.h"

#include "src/core/pipeline.h"
#include "src/support/check.h"

namespace redfat {

RedFatTool::RedFatTool(RedFatOptions opts) : opts_(opts) {
  if (opts_.mode == RedFatOptions::Mode::kProfile) {
    // Profiling needs per-site pass/fail attribution; a merged check would
    // conflate its member sites (Pipeline::Hardening also disables the
    // merge pass in this mode; the flag keeps options() self-describing).
    opts_.merge = false;
  }
  harden_ = ResolvedPolicy::FromOptions(opts_).tier;
}

RedFatTool::RedFatTool(const ResolvedPolicy& policy) : RedFatTool(policy.rewrite) {
  harden_ = policy.tier;
  harden_explicit_ = policy.explicit_tier;
  rheap_ = policy.rheap;
  rheap_explicit_ = policy.explicit_rheap;
}

Result<InstrumentResult> RedFatTool::Instrument(const BinaryImage& input,
                                                const AllowList* allow,
                                                ThreadPool* pool) const {
  Pipeline pipeline = Pipeline::Hardening(opts_);
  PipelineContext ctx(input, opts_, allow);
  ctx.pool = pool;
  Status st = pipeline.Run(ctx);
  if (!st.ok()) {
    return Error(st.error());
  }
  InstrumentResult out;
  out.image = std::move(ctx.output);
  out.sites = std::move(ctx.plan.sites);
  out.plan_stats = ctx.plan.stats;
  out.rewrite_stats = ctx.rewrite_stats;
  out.pipeline_stats = pipeline.stats();
  out.harden = harden_;
  out.harden_explicit = harden_explicit_;
  out.rheap = rheap_;
  out.rheap_explicit = rheap_explicit_;
  return out;
}

AllowList BuildAllowList(const std::unordered_map<uint32_t, Vm::ProfCounts>& prof_counts,
                         const std::vector<SiteRecord>& sites) {
  AllowList allow;
  for (const SiteRecord& site : sites) {
    if (site.kind != CheckKind::kFull) {
      continue;
    }
    auto it = prof_counts.find(site.id);
    if (it == prof_counts.end()) {
      continue;  // never observed: stay conservative (Redzone-only)
    }
    if (it->second.fails == 0 && it->second.passes > 0) {
      allow.addrs.insert(site.addr);
    }
  }
  return allow;
}

}  // namespace redfat
