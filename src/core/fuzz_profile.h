// Coverage-boosted profiling (paper §5: "automated coverage-guided testing
// tools, such as AFL over binaries, can be used to boost coverage").
//
// The quality of the allow-list is bounded by the test suite's coverage: a
// site the profile never executes stays (Redzone)-only in production. This
// module closes part of that gap with an AFL-style loop over the profiling
// binary: mutate inputs, keep mutants that light up new instrumentation
// sites (the corpus), and accumulate per-site pass/fail counts across every
// run. The allow-list is distilled from the union, so one sporadic failure
// anywhere disqualifies a site (same conservative rule as single-run
// profiling).
#ifndef REDFAT_SRC_CORE_FUZZ_PROFILE_H_
#define REDFAT_SRC_CORE_FUZZ_PROFILE_H_

#include <cstdint>
#include <vector>

#include "src/core/harness.h"
#include "src/core/redfat.h"

namespace redfat {

struct FuzzProfileConfig {
  uint64_t seed = 1;
  unsigned max_runs = 48;
  // Seed corpus entry (e.g. the train input). Must drive the program to a
  // normal exit.
  std::vector<uint64_t> initial_inputs;
  uint64_t instruction_limit = 50'000'000;
  RuntimeKind runtime = RuntimeKind::kRedFat;
};

struct FuzzProfileResult {
  AllowList allow;
  unsigned runs = 0;            // executions performed
  size_t corpus_size = 0;       // inputs retained for novelty
  size_t sites_observed = 0;    // distinct full-check sites ever executed
  size_t sites_always_fail = 0; // anti-idiom candidates found
};

// `profiling` must come from RedFatTool(RedFatOptions::Profile()).
FuzzProfileResult FuzzProfile(const InstrumentResult& profiling,
                              const FuzzProfileConfig& config);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_FUZZ_PROFILE_H_
