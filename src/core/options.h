// Configuration of the RedFat instrumentation (paper §§4-6).
//
// The flags map 1:1 to the columns of Table 1:
//   unoptimized : elim/batch/merge all false
//   +elim       : elim
//   +batch      : elim + batch
//   +merge      : elim + batch + merge
//   -size       : ... + size_hardening=false
//   -reads      : ... + check_reads=false
#ifndef REDFAT_SRC_CORE_OPTIONS_H_
#define REDFAT_SRC_CORE_OPTIONS_H_

#include <cstdint>

#include "src/isa/abi.h"

namespace redfat {

struct TierProfile;  // core/plan.h

// How the (Redzone) component is implemented (§4.1):
//   kLowFatMetadata — the paper's scheme: state/size metadata stored inside
//     the 16-byte redzone, located via base(ptr). Shares machinery with the
//     (LowFat) component and checks exact malloc bounds (padding included).
//   kShadow — ASAN/Memcheck-style shadow bytes at kGuestShadowBase. Needs a
//     separate lookup, O(size) marking in the allocator, extra memory, and
//     cannot see overflows into allocation padding. Provided for the
//     redzone-implementation ablation; requires RuntimeKind::kRedFatShadow.
enum class RedzoneImpl { kLowFatMetadata, kShadow };

struct RedFatOptions {
  // What to instrument.
  bool check_reads = true;
  bool check_writes = true;

  RedzoneImpl redzone_impl = RedzoneImpl::kLowFatMetadata;

  // Check contents (Fig. 4).
  bool lowfat = true;          // allow the (LowFat) component at all
  bool size_hardening = true;  // metadata validation (lines 23-24)
  // Instrument ambiguous-pointer sites with a (Redzone)-only check. Off is
  // the fast hardening tier (core/policy.h): only unambiguous sites — the
  // population eligible for the full (Redzone)+(LowFat) check — are
  // instrumented, and ambiguous sites are left bare.
  bool redzone_only_sites = true;
  // Use the branchless merged lower/upper-bound check via u32 underflow
  // (§4.2 "Mergeable code"). Off = separate UAF/LB/UB compare+branch chain.
  bool merged_ub = true;

  // Optimizations (§6).
  bool elim = true;   // check elimination (provably non-heap operands)
  bool batch = true;  // check batching (one trampoline per reorderable group)
  bool merge = true;  // check merging (union range of same-shape operands)
  // Low-level: use dead registers/flags instead of save/restore pairs.
  bool clobber_analysis = true;

  // Worker threads for the per-item pipeline passes (merge, liveness,
  // trampoline emission). 0 = one per hardware thread. Output is
  // byte-identical for any value.
  unsigned jobs = 1;

  // Profiling mode emits the Fig. 5 step-1 instrumentation: every site gets
  // the full check, failures are recorded (not reported) and passes counted.
  enum class Mode { kProduction, kProfile };
  Mode mode = Mode::kProduction;

  // Where this binary's trampoline section is placed. Executables use the
  // default; shared objects instrumented separately (§7.4) must pick a
  // non-overlapping address within rel32 reach of their own text.
  // Hot-tier trampolines land in a second (inline-check) region at
  // trampoline_base + kInlineCheckOffset.
  uint64_t trampoline_base = kTrampolineBase;

  // Profile-guided check tiering: a prior run's per-site cycle profile
  // (core/plan.h TierProfile), or null for untiered output — in which case
  // the tier pass is disabled and the image is byte-identical to a build
  // without tiering support. The pointee must outlive the instrumentation
  // run. `hot_threshold` is the fraction of total profiled trampoline
  // cycles the hot set must cover (sites ranked by cycles, descending).
  const TierProfile* tier_profile = nullptr;
  double hot_threshold = 0.9;

  // The Table-1 ablation columns. Defined in core/policy.cc through the
  // policy layer (AblationPolicy presets) so the option combinations are
  // not encoded by hand here.
  static RedFatOptions Unoptimized();
  static RedFatOptions Elim();
  static RedFatOptions Batch();
  static RedFatOptions Merge();
  static RedFatOptions NoSize();
  static RedFatOptions NoReads();
  static RedFatOptions Profile() {
    RedFatOptions o;
    o.mode = Mode::kProfile;
    return o;
  }
};

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_OPTIONS_H_
