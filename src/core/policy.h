// The hardening-policy layer: ONE product-shaped knob resolving into every
// subsystem's concrete configuration.
//
// The paper exposes its check families (redzone, lowfat, size-hardening,
// read/write coverage) as independent flags; production users need modes
// with understood overhead budgets, the way libc++ ships none/fast/
// extensive/debug hardening levels. HardeningPolicy is the single source of
// truth for what gets checked where: a tier plus optional per-family
// overrides, resolved ONCE (at CLI/config time) into the knobs the
// rewriter (`rrw`), the allocators (`rheap`) and the DBI layer (`rdbi`)
// consume. Subsystems never re-decide policy.
//
// Tier -> check-family matrix (defaults; overrides may adjust a family):
//
//   tier       | lowfat  redzone-only  size-hard  reads  | runtime       dbi
//   -----------+----------------------------------------+-------------------
//   none       |   -          -            -        -    | baseline       -
//   fast       |   x          -            x        x    | redfat         -
//   extensive  |   x          x            x        x    | redfat         -
//   debug      |   x          x            x        x    | redfat-debug   x
//
//   * fast — lowfat-only inline checks: only sites with unambiguous
//     pointer arithmetic (the (LowFat)-checkable population) are
//     instrumented; ambiguous sites that would get a (Redzone)-only check
//     are left bare. Constant-time, security-critical coverage.
//   * extensive — the paper's default: redzone+lowfat, every family on.
//     Resolution is byte-identical to a RedFatOptions{} rewrite.
//   * debug — extensive's inline checks plus memcheck-grade shadow-state
//     checking of every *uninstrumented* access via the rdbi observer
//     (src/dbi/shadow_check.h) over the redfat-debug runtime, which
//     maintains both in-redzone metadata and the guest shadow map.
//
// Profile-guided tiering budgets (PR 4) are policy, not ad-hoc flags: each
// tier carries a default hot_threshold (fast demotes aggressively, debug
// never trades coverage machinery for cycles).
#ifndef REDFAT_SRC_CORE_POLICY_H_
#define REDFAT_SRC_CORE_POLICY_H_

#include <optional>
#include <string>

#include "src/core/harness.h"
#include "src/core/options.h"
#include "src/heap/rheap.h"
#include "src/support/result.h"

namespace redfat {

// The product knob, ordered by checking strength.
enum class HardenTier : uint8_t { kNone, kFast, kExtensive, kDebug };

const char* HardenTierName(HardenTier tier);
Result<HardenTier> ParseHardenTier(const std::string& name);

// The concrete, resolved configuration every subsystem consumes. Produced
// only by HardeningPolicy::Resolve() (or FromOptions for pre-policy
// callers); nothing downstream re-derives policy decisions.
struct ResolvedPolicy {
  HardenTier tier = HardenTier::kExtensive;
  bool explicit_tier = false;   // tier was chosen via a policy (not inferred)
  RedFatOptions rewrite;        // rrw/plan/codegen knobs
  RuntimeKind runtime = RuntimeKind::kRedFat;  // rheap allocator binding
  RheapOptions rheap;           // rheap allocator hardening features
  bool explicit_rheap = false;  // rheap came from an explicit --rheap list
  bool dbi_shadow_check = false;  // rdbi: attach the shadow-check observer

  // Wraps free-floating options for pre-policy call sites (RedFatTool's
  // legacy constructor). The tier is descriptive only (`explicit_tier`
  // false): no policy header is emitted for such rewrites, keeping legacy
  // artifacts byte-identical.
  static ResolvedPolicy FromOptions(const RedFatOptions& opts);
};

// User intent: a tier plus optional per-family overrides (the legacy
// `--no-*`/`--shadow` flags map here). `nullopt` means the tier decides.
struct HardeningPolicy {
  HardenTier tier = HardenTier::kExtensive;  // the paper's default

  // Check-family overrides.
  std::optional<bool> check_reads;        // --no-reads
  std::optional<bool> size_hardening;     // --no-size
  std::optional<bool> lowfat;             // --no-lowfat
  std::optional<bool> redzone_only_sites; // ambiguous-site (Redzone) checks
  std::optional<bool> shadow_impl;        // --shadow (ablation check body)

  // Optimization overrides (the Table-1 ablation axis).
  std::optional<bool> elim;   // --no-elim
  std::optional<bool> batch;  // --no-batch
  std::optional<bool> merge;  // --no-merge

  // Profile-guided tiering budget: fraction of profiled check cycles the
  // hot tier must cover. Default is per tier (fast 0.8, extensive 0.9,
  // debug 1.0); --hot-threshold overrides.
  std::optional<double> hot_threshold;

  // Allocator hardening features (--rheap=LIST). An explicit list replaces
  // the tier default wholesale (fast = perf-only, extensive =
  // +prot-freelist, debug = everything).
  std::optional<RheapOptions> rheap;

  // Validates the combination and resolves it to concrete knobs.
  // Contradictory combinations (e.g. fast+shadow, debug without lowfat)
  // return a diagnostic naming both sides of the conflict.
  Result<ResolvedPolicy> Resolve() const;
};

// The Table-1 ablation columns, kept as named policy presets so options.h
// stops encoding them by hand. Each is `extensive` plus overrides.
enum class AblationPreset { kUnoptimized, kElim, kBatch, kMerge, kNoSize, kNoReads };
HardeningPolicy AblationPolicy(AblationPreset preset);

// The default runtime binding for a tier's images (what `rfrun
// --harden=TIER` selects): none->baseline, fast/extensive->redfat,
// debug->redfat-debug.
RuntimeKind RuntimeForTier(HardenTier tier);

// The default allocator-hardening features for a tier: none/fast carry the
// perf-only defaults (every feature off, historical quarantine depth),
// extensive adds prot-freelist, debug turns everything on.
RheapOptions RheapForTier(HardenTier tier);

// Per-tier overhead budget (percent over a baseline run) asserted by
// bench_harden_tiers and the CI harden-tiers job. Generous ceilings, not
// targets: measured slowdowns on the bench workload are far below them.
double TierOverheadBudgetPct(HardenTier tier);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_POLICY_H_
