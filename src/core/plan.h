// Instrumentation planning: which memory operands get which check, and how
// checks are grouped into trampolines.
//
// Planning stages (all static analysis over the stripped binary), each an
// independently callable function so the pass pipeline (core/pipeline.h)
// can run, time, and disable them individually:
//   1. ClassifyOperands — enumerate explicit memory operands (reads/writes
//      per options) and classify each (eliminable / ambiguous /
//      unambiguous-pointer);
//   2. check elimination (§6): drop operands that provably cannot reach the
//      heap under the fixed address-space layout;
//   3. SelectSites — per-site policy: full (Redzone)+(LowFat) if the site
//      is allow-listed and its pointer arithmetic is unambiguous (a
//      non-rsp/rip base register exists), else (Redzone)-only;
//   4. SingletonTrampolines + BatchTrampolines — check batching (§6): group
//      consecutive same-block sites whose operands can be evaluated at the
//      leader without changing their effective address;
//   5. MergeTrampolineChecks — check merging (§6): fold same-shape operands
//      within a batch into one check over the union of their access ranges.
//
// BuildPlan composes all stages and remains the single-call entry point.
#ifndef REDFAT_SRC_CORE_PLAN_H_
#define REDFAT_SRC_CORE_PLAN_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/options.h"
#include "src/rw/disasm.h"

namespace redfat {

enum class CheckKind : uint8_t {
  kRedzoneOnly,  // base computed from the accessed address only
  kFull,         // (Redzone)+(LowFat): base computed from the pointer first
};

// Profile-guided check tier (closing the telemetry -> plan loop). Without a
// profile every site is kWarm and planning/codegen behave exactly as before;
// a profile promotes the sites that dominate runtime trampoline cycles to
// kHot (aggressive batching + placement in the inline-check region) and
// demotes the provably-negligible rest to kCold (compact save-all bodies in
// wider batches).
enum class Tier : uint8_t {
  kWarm = 0,  // unprofiled: today's behavior
  kHot,       // top --hot-threshold fraction of profiled tramp cycles
  kCold,      // profiled, but outside the hot set
};
const char* TierName(Tier tier);

// Allow-list of instrumentation sites proven (by profiling) safe for the
// (LowFat) component, keyed by original instruction address — stable across
// re-instrumentation of the same input binary (Fig. 5).
struct AllowList {
  std::unordered_set<uint64_t> addrs;
  bool Contains(uint64_t addr) const { return addrs.count(addr) != 0; }
};

// One check to emit inside a trampoline. A merged check covers several
// member sites.
struct PlannedCheck {
  MemOperand mem;          // operand shape; disp may be lowered by merging
  uint32_t access_len = 0; // bytes covered (merging widens this)
  CheckKind kind = CheckKind::kRedzoneOnly;
  bool is_write = false;   // any member is a write
  // Original instruction addresses covered (for Count accounting) and the
  // primary site id used in error reports.
  std::vector<uint32_t> member_sites;
  uint64_t anchor_next = 0;  // orig next-insn addr of the first member (rip-rel fixups)
};

// A trampoline to install at `addr` running `checks` then the displaced
// instruction. The tier is the leader site's tier: it selects the payload's
// register discipline (kCold saves everything) and which code region the
// trampoline is emitted into (kHot goes to the inline-check region).
struct PlannedTrampoline {
  uint64_t addr = 0;
  size_t insn_index = 0;
  std::vector<PlannedCheck> checks;
  Tier tier = Tier::kWarm;
};

struct SiteRecord {
  uint32_t id = 0;
  uint64_t addr = 0;
  bool is_write = false;
  CheckKind kind = CheckKind::kRedzoneOnly;
  Tier tier = Tier::kWarm;  // assigned by the tier pass; kWarm without a profile
};

// A prior run's per-site trampoline-cycle profile, joined against the plan
// during the tier pass. `cycles_by_site` is keyed by the *profiled* image's
// site ids; `sitemap` (optional) is that image's site table, used to re-join
// by instruction address and to reject profiles taken from a different
// binary (mismatching entries are ignored, never mis-tiered). Without a
// sitemap, ids are joined directly — valid when the profile came from the
// same input instrumented with the same planning options (site numbering is
// deterministic).
struct TierProfile {
  std::unordered_map<uint32_t, uint64_t> cycles_by_site;
  const std::vector<SiteRecord>* sitemap = nullptr;
};

struct TierStats {
  size_t hot = 0;         // sites promoted to Tier::kHot
  size_t cold = 0;        // sites demoted to Tier::kCold
  size_t unknown = 0;     // profile ids with no such site (ignored)
  size_t mismatched = 0;  // sitemap join failed addr/kind/rw (ignored)
};

// Assigns a tier to every site: profiled sites are ranked by cycles
// (descending, site id breaking ties) and the minimal prefix reaching
// `hot_threshold` of the total becomes kHot; the remaining profiled sites
// become kCold; unprofiled sites stay kWarm. Zero-cycle profiles promote
// nothing. Deterministic for any job count (pure function of the inputs).
TierStats AssignSiteTiers(const TierProfile& profile, double hot_threshold,
                          std::vector<SiteRecord>* sites);

struct PlanStats {
  size_t mem_operands = 0;       // all explicit memory operands in the binary
  size_t considered = 0;         // after the read/write filter
  size_t eliminated = 0;         // dropped by check elimination
  size_t redzone_dropped = 0;    // (Redzone)-only sites left bare (fast tier)
  size_t full_sites = 0;
  size_t redzone_sites = 0;
  size_t trampolines = 0;        // after batching
  size_t checks_emitted = 0;     // after merging
};

struct InstrumentPlan {
  std::vector<PlannedTrampoline> trampolines;
  std::vector<SiteRecord> sites;  // indexed by site id
  PlanStats stats;
};

// Is this operand provably unable to reach low-fat heap memory (§6 check
// elimination)? True for operands with no index register whose base is
// absent, rsp, or rip — all at least 2 GiB away from the heap regions under
// the fixed layout.
bool IsEliminable(const MemOperand& mem);

// Does the operand carry unambiguous pointer arithmetic (§3), i.e. a base
// register that is plausibly the pointer? rsp/rip-based operands do not.
bool HasUnambiguousPointer(const MemOperand& mem);

// Per-instruction operand classification (stage 1). Cached by the pipeline
// as the "operand classes" analysis.
enum class OperandClass : uint8_t {
  kNone,         // no explicit memory operand
  kFiltered,     // memory operand excluded by the read/write options
  kEliminable,   // provably non-heap: check-elimination candidate
  kAmbiguous,    // heap-reachable, but no unambiguous pointer base
  kUnambiguous,  // heap-reachable with an unambiguous pointer base
};

// One entry per instruction in `dis`. Fills stats->mem_operands and
// stats->considered. With a pool, instruction ranges classify in parallel
// (each index writes only its own slot; counters are per-range partials
// summed at the end).
std::vector<OperandClass> ClassifyOperands(const Disassembly& dis, const RedFatOptions& opts,
                                           PlanStats* stats, ThreadPool* pool = nullptr);

// A classified check candidate for one instruction, before trampoline
// formation. The check's member_sites holds its (single) site id.
struct SiteCandidate {
  size_t insn_index = 0;
  PlannedCheck check;
};

// Stages 2+3: site selection. Drops kEliminable operands when `apply_elim`
// (filling stats->eliminated), decides each surviving site's CheckKind
// against the allow-list/options, assigns sequential site ids in address
// order, and appends the SiteRecords to `sites`.
// With a pool, candidate discovery and kind decisions run over instruction
// ranges in parallel; site ids are then assigned serially in address order,
// so numbering is identical for every job count.
std::vector<SiteCandidate> SelectSites(const Disassembly& dis,
                                       const std::vector<OperandClass>& classes,
                                       const RedFatOptions& opts, const AllowList* allow,
                                       bool apply_elim, PlanStats* stats,
                                       std::vector<SiteRecord>* sites,
                                       ThreadPool* pool = nullptr);

// Stage 4a: one trampoline per candidate (the unbatched layout). Each
// candidate maps to its own output slot, so the pool form is trivially
// deterministic.
std::vector<PlannedTrampoline> SingletonTrampolines(const Disassembly& dis,
                                                    std::vector<SiteCandidate> candidates,
                                                    ThreadPool* pool = nullptr);

// Stage 4b: check batching (§6). Coalesces consecutive singleton
// trampolines within a basic block when the later operand's registers are
// unmodified since the leader (so all effective addresses can be evaluated
// at the leader), with barriers at recovered jump targets and after
// calls/hostcalls/traps.
// Tiered leaders (kHot/kCold, i.e. profile present) additionally fold
// induction-stepped operands: when every register of a later operand has
// only been changed by constant add/sub immediates since the leader, the
// check joins the batch with its displacement rebased by the accumulated
// delta — the folded check evaluates the same effective address at the
// leader. With every tier kWarm (no profile) the scan is bit-for-bit
// today's algorithm.
// Batches never cross basic-block boundaries, so with a pool the candidate
// list is partitioned at block changes, each partition batched
// independently, and the results concatenated — byte-identical to the
// serial scan.
std::vector<PlannedTrampoline> BatchTrampolines(const Disassembly& dis, const CfgInfo& cfg,
                                                std::vector<PlannedTrampoline> singles,
                                                ThreadPool* pool = nullptr);

// Stage 5: check merging (§6) within one trampoline. Independent per
// trampoline (safe to run across the pipeline's thread pool).
void MergeTrampolineChecks(PlannedTrampoline* tramp);

InstrumentPlan BuildPlan(const Disassembly& dis, const CfgInfo& cfg, const RedFatOptions& opts,
                         const AllowList* allow);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_PLAN_H_
