#include "src/core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cctype>
#include <memory>
#include <utility>

#include "src/core/codegen.h"
#include "src/core/policy.h"
#include "src/support/check.h"
#include "src/support/parallel.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"

namespace redfat {

namespace {

// Static per-site cost model for the cycles_saved estimates, aligned with
// the VM's CycleModel: a full check body costs roughly one metadata load,
// the base/size arithmetic and a compare+branch; a trampoline entry/exit
// costs the two jumps plus register/flags save-restore traffic.
constexpr uint64_t kEstCheckBodyCycles = 30;
constexpr uint64_t kEstTrampOverheadCycles = 8;

double MsSince(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

// --- PipelineStats ---------------------------------------------------------

const PassStats* PipelineStats::Find(const std::string& name) const {
  for (const PassStats& p : passes) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

std::string PipelineStats::ToJson() const {
  std::string out = StrFormat("{\"jobs\":%u,\"total_ms\":%.3f,\"passes\":[", jobs, total_ms);
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassStats& p = passes[i];
    if (i != 0) {
      out += ",";
    }
    out += StrFormat(
        "{\"name\":\"%s\",\"items\":%zu,\"changed\":%zu,\"wall_ms\":%.3f,"
        "\"cycles_saved\":%llu,\"start_ms\":%.3f}",
        p.name.c_str(), p.items, p.changed, p.wall_ms,
        static_cast<unsigned long long>(p.cycles_saved), p.start_ms);
  }
  out += "]}";
  return out;
}

// A tiny parser for exactly the object shapes ToJson() produces (plus
// arbitrary whitespace). Not a general JSON parser.
namespace {

struct JsonCursor {
  const std::string& s;
  size_t i = 0;

  void SkipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
};

bool ParseString(JsonCursor& c, std::string* out) {
  if (!c.Eat('"')) {
    return false;
  }
  out->clear();
  while (c.i < c.s.size() && c.s[c.i] != '"') {
    if (c.s[c.i] == '\\') {
      return false;  // ToJson() never escapes; reject rather than mis-parse
    }
    out->push_back(c.s[c.i++]);
  }
  return c.Eat('"');
}

bool ParseNumber(JsonCursor& c, double* out) {
  c.SkipWs();
  const size_t start = c.i;
  while (c.i < c.s.size() &&
         (std::isdigit(static_cast<unsigned char>(c.s[c.i])) != 0 || c.s[c.i] == '-' ||
          c.s[c.i] == '+' || c.s[c.i] == '.' || c.s[c.i] == 'e' || c.s[c.i] == 'E')) {
    ++c.i;
  }
  if (c.i == start) {
    return false;
  }
  try {
    *out = std::stod(c.s.substr(start, c.i - start));
  } catch (...) {
    return false;
  }
  return true;
}

bool ParsePassObject(JsonCursor& c, PassStats* out) {
  if (!c.Eat('{')) {
    return false;
  }
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) {
      return false;
    }
    first = false;
    std::string key;
    if (!ParseString(c, &key) || !c.Eat(':')) {
      return false;
    }
    if (key == "name") {
      if (!ParseString(c, &out->name)) {
        return false;
      }
      continue;
    }
    double num = 0;
    if (!ParseNumber(c, &num)) {
      return false;
    }
    if (key == "items") {
      out->items = static_cast<size_t>(num);
    } else if (key == "changed") {
      out->changed = static_cast<size_t>(num);
    } else if (key == "wall_ms") {
      out->wall_ms = num;
    } else if (key == "cycles_saved") {
      out->cycles_saved = static_cast<uint64_t>(num);
    } else if (key == "start_ms") {
      out->start_ms = num;  // absent in PR-1-era output; defaults to 0
    }  // unknown numeric keys are ignored for forward compatibility
  }
  return c.Eat('}');
}

}  // namespace

Result<PipelineStats> PipelineStatsFromJson(const std::string& json) {
  JsonCursor c{json};
  PipelineStats stats;
  if (!c.Eat('{')) {
    return Error("stats json: expected object");
  }
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) {
      return Error("stats json: expected ','");
    }
    first = false;
    std::string key;
    if (!ParseString(c, &key) || !c.Eat(':')) {
      return Error("stats json: expected key");
    }
    if (key == "jobs") {
      double num = 0;
      if (!ParseNumber(c, &num)) {
        return Error("stats json: bad jobs");
      }
      stats.jobs = static_cast<unsigned>(num);
    } else if (key == "total_ms") {
      double num = 0;
      if (!ParseNumber(c, &num)) {
        return Error("stats json: bad total_ms");
      }
      stats.total_ms = num;
    } else if (key == "passes") {
      if (!c.Eat('[')) {
        return Error("stats json: expected passes array");
      }
      while (!c.Peek(']')) {
        if (!stats.passes.empty() && !c.Eat(',')) {
          return Error("stats json: expected ',' in passes");
        }
        PassStats p;
        if (!ParsePassObject(c, &p)) {
          return Error("stats json: bad pass object");
        }
        stats.passes.push_back(std::move(p));
      }
      if (!c.Eat(']')) {
        return Error("stats json: unterminated passes array");
      }
    } else {
      return Error(StrFormat("stats json: unknown key '%s'", key.c_str()));
    }
  }
  if (!c.Eat('}')) {
    return Error("stats json: unterminated object");
  }
  c.SkipWs();
  if (c.i != json.size()) {
    return Error("stats json: trailing data");
  }
  return stats;
}

// --- AnalysisCache ---------------------------------------------------------

Status AnalysisCache::EnsureDisasm() {
  if (disasm_.has_value()) {
    return Status::Ok();
  }
  Result<Disassembly> dis = DisassembleText(image_, pool_);
  if (!dis.ok()) {
    return Error(dis.error());
  }
  disasm_ = std::move(dis).value();
  return Status::Ok();
}

const Disassembly& AnalysisCache::disasm() const {
  REDFAT_CHECK(disasm_.has_value());
  return *disasm_;
}

Status AnalysisCache::EnsureCfg() {
  if (cfg_.has_value()) {
    return Status::Ok();
  }
  Status st = EnsureDisasm();
  if (!st.ok()) {
    return st;
  }
  cfg_ = RecoverCfg(*disasm_, image_, pool_);
  return Status::Ok();
}

const CfgInfo& AnalysisCache::cfg() const {
  REDFAT_CHECK(cfg_.has_value());
  return *cfg_;
}

void AnalysisCache::set_operand_classes(std::vector<OperandClass> classes) {
  classes_ = std::move(classes);
}

const std::vector<OperandClass>* AnalysisCache::operand_classes() const {
  return classes_.has_value() ? &*classes_ : nullptr;
}

const ClobberInfo& AnalysisCache::clobbers(size_t insn_index) {
  REDFAT_CHECK(disasm_.has_value() && cfg_.has_value());
  if (clobbers_.empty()) {
    clobbers_.resize(disasm_->insns.size());
  }
  REDFAT_CHECK(insn_index < clobbers_.size());
  if (!clobbers_[insn_index].has_value()) {
    // Memoising on a miss mutates the cache, which is single-thread only:
    // while the pool is running a region, misses must not happen (callers
    // precompute instead). Cached entries stay readable concurrently.
    REDFAT_CHECK(pool_ == nullptr || !pool_->InParallelRegion());
    clobbers_[insn_index] = ComputeClobbers(*disasm_, *cfg_, insn_index);
  }
  return *clobbers_[insn_index];
}

void AnalysisCache::PrecomputeClobbers(const std::vector<size_t>& indices, unsigned jobs) {
  REDFAT_CHECK(disasm_.has_value() && cfg_.has_value());
  if (clobbers_.empty()) {
    clobbers_.resize(disasm_->insns.size());
  }
  std::vector<size_t> missing;
  missing.reserve(indices.size());
  for (size_t index : indices) {
    REDFAT_CHECK(index < clobbers_.size());
    if (!clobbers_[index].has_value()) {
      missing.push_back(index);
    }
  }
  if (missing.empty()) {
    return;
  }
  std::vector<ClobberInfo> infos =
      pool_ != nullptr ? ComputeClobbersMany(*disasm_, *cfg_, missing, pool_)
                       : ComputeClobbersMany(*disasm_, *cfg_, missing, jobs);
  for (size_t i = 0; i < missing.size(); ++i) {
    clobbers_[missing[i]] = std::move(infos[i]);
  }
}

// --- concrete passes -------------------------------------------------------

namespace {

class DisasmPass : public Pass {
 public:
  const char* name() const override { return "disasm"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    if (ctx.cache.image().FindSection(Section::Kind::kTrampoline) != nullptr) {
      return Error("pipeline: image already contains a trampoline section");
    }
    Status st = ctx.cache.EnsureDisasm();
    if (!st.ok()) {
      return Error(st.error());
    }
    return PassOutcome{.items = ctx.cache.disasm().insns.size()};
  }
};

class CfgPass : public Pass {
 public:
  const char* name() const override { return "cfg"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    Status st = ctx.cache.EnsureCfg();
    if (!st.ok()) {
      return Error(st.error());
    }
    return PassOutcome{.items = ctx.cache.disasm().insns.size(),
                       .changed = ctx.cache.cfg().num_blocks};
  }
};

class ClassifyPass : public Pass {
 public:
  const char* name() const override { return "classify"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    if (!ctx.cache.has_disasm()) {
      return Error("classify: disasm pass has not run");
    }
    std::vector<OperandClass> classes =
        ClassifyOperands(ctx.cache.disasm(), ctx.opts, &ctx.plan.stats, ctx.pool);
    const size_t considered = ctx.plan.stats.considered;
    ctx.cache.set_operand_classes(std::move(classes));
    return PassOutcome{.items = ctx.cache.disasm().insns.size(), .changed = considered};
  }
};

// Check elimination (§6). The actual dropping happens during site selection
// (group pass); this pass flags it on and accounts for the sites that will
// be dropped.
class EliminatePass : public Pass {
 public:
  const char* name() const override { return "eliminate"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    const std::vector<OperandClass>* classes = ctx.cache.operand_classes();
    if (classes == nullptr) {
      return Error("eliminate: classify pass has not run");
    }
    ctx.drop_eliminable = true;
    PassOutcome out;
    const size_t n = classes->size();
    if (ctx.pool != nullptr && ctx.pool->jobs() > 1 && n >= 1024) {
      // Range reduction: per-range partial counts summed in range order.
      const size_t ranges = std::min<size_t>(ctx.pool->jobs() * 4, n);
      std::vector<size_t> items(ranges, 0);
      std::vector<size_t> changed(ranges, 0);
      ctx.pool->ParallelFor(ranges, [&](size_t r) {
        const size_t begin = r * n / ranges;
        const size_t end = (r + 1) * n / ranges;
        for (size_t i = begin; i < end; ++i) {
          const OperandClass c = (*classes)[i];
          if (c == OperandClass::kFiltered || c == OperandClass::kNone) {
            continue;
          }
          ++items[r];
          if (c == OperandClass::kEliminable) {
            ++changed[r];
          }
        }
      });
      for (size_t r = 0; r < ranges; ++r) {
        out.items += items[r];
        out.changed += changed[r];
      }
    } else {
      for (OperandClass c : *classes) {
        if (c == OperandClass::kFiltered || c == OperandClass::kNone) {
          continue;
        }
        ++out.items;
        if (c == OperandClass::kEliminable) {
          ++out.changed;
        }
      }
    }
    // An eliminated site saves its whole trampoline on every visit.
    out.cycles_saved = out.changed * (kEstCheckBodyCycles + kEstTrampOverheadCycles);
    return out;
  }
};

class GroupPass : public Pass {
 public:
  const char* name() const override { return "group"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    const std::vector<OperandClass>* classes = ctx.cache.operand_classes();
    if (classes == nullptr) {
      return Error("group: classify pass has not run");
    }
    std::vector<SiteCandidate> candidates =
        SelectSites(ctx.cache.disasm(), *classes, ctx.opts, ctx.allow, ctx.drop_eliminable,
                    &ctx.plan.stats, &ctx.plan.sites, ctx.pool);
    const size_t n = candidates.size();
    ctx.plan.trampolines =
        SingletonTrampolines(ctx.cache.disasm(), std::move(candidates), ctx.pool);
    return PassOutcome{.items = n, .changed = ctx.plan.trampolines.size()};
  }
};

// Profile-guided check tiering: joins the prior run's per-site cycle
// profile against the freshly numbered site table, then stamps each
// singleton trampoline with its leader site's tier so the batch and codegen
// passes can act on it. Runs only when a TierProfile is attached; disabled
// it contributes nothing (and the output stays byte-identical).
class TierPass : public Pass {
 public:
  const char* name() const override { return "tier"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    if (ctx.opts.tier_profile == nullptr) {
      return PassOutcome{};
    }
    const TierStats ts = AssignSiteTiers(*ctx.opts.tier_profile, ctx.opts.hot_threshold,
                                         &ctx.plan.sites);
    for (PlannedTrampoline& tramp : ctx.plan.trampolines) {
      const uint32_t site = tramp.checks.front().member_sites.front();
      REDFAT_CHECK(site < ctx.plan.sites.size());
      tramp.tier = ctx.plan.sites[site].tier;
    }
    // Every hot site drops (at least) its trampoline round-trip per visit;
    // the static estimate mirrors the other optimization passes.
    return PassOutcome{.items = ctx.opts.tier_profile->cycles_by_site.size(),
                       .changed = ts.hot + ts.cold,
                       .cycles_saved = ts.hot * kEstTrampOverheadCycles};
  }
};

class BatchPass : public Pass {
 public:
  const char* name() const override { return "batch"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    if (!ctx.cache.has_cfg()) {
      return Error("batch: cfg pass has not run");
    }
    const size_t before = ctx.plan.trampolines.size();
    ctx.plan.trampolines = BatchTrampolines(ctx.cache.disasm(), ctx.cache.cfg(),
                                            std::move(ctx.plan.trampolines), ctx.pool);
    const size_t removed = before - ctx.plan.trampolines.size();
    // Each coalesced site drops one trampoline round-trip per visit.
    return PassOutcome{.items = before,
                       .changed = removed,
                       .cycles_saved = removed * kEstTrampOverheadCycles};
  }
};

class MergePass : public Pass {
 public:
  const char* name() const override { return "merge"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    std::vector<PlannedTrampoline>& tramps = ctx.plan.trampolines;
    size_t before = 0;
    for (const PlannedTrampoline& t : tramps) {
      before += t.checks.size();
    }
    // Merging is independent per trampoline; run it across the pool.
    if (ctx.pool != nullptr) {
      ctx.pool->ParallelFor(tramps.size(),
                            [&](size_t i) { MergeTrampolineChecks(&tramps[i]); });
    } else {
      ParallelFor(ctx.opts.jobs, tramps.size(),
                  [&](size_t i) { MergeTrampolineChecks(&tramps[i]); });
    }
    size_t after = 0;
    for (const PlannedTrampoline& t : tramps) {
      after += t.checks.size();
    }
    // Each merged-away check saves one check body per trampoline visit.
    return PassOutcome{.items = tramps.size(),
                       .changed = before - after,
                       .cycles_saved = (before - after) * kEstCheckBodyCycles};
  }
};

class LivenessPass : public Pass {
 public:
  const char* name() const override { return "liveness"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    if (!ctx.cache.has_cfg()) {
      return Error("liveness: cfg pass has not run");
    }
    std::vector<size_t> indices;
    indices.reserve(ctx.plan.trampolines.size());
    for (const PlannedTrampoline& t : ctx.plan.trampolines) {
      indices.push_back(t.insn_index);
    }
    ctx.cache.PrecomputeClobbers(indices, ctx.opts.jobs);
    return PassOutcome{.items = indices.size()};
  }
};

class CodegenPass : public Pass {
 public:
  const char* name() const override { return "codegen"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    if (!ctx.cache.has_cfg()) {
      return Error("codegen: cfg pass has not run");
    }
    InstrumentPlan& plan = ctx.plan;
    plan.stats.trampolines = plan.trampolines.size();
    plan.stats.checks_emitted = 0;
    for (const PlannedTrampoline& t : plan.trampolines) {
      plan.stats.checks_emitted += t.checks.size();
    }

    // Resolve all leader clobbers through the pool up front (a no-op for
    // entries the liveness pass already cached). The lazy clobbers()
    // accessor would compute misses one by one on this thread — and it
    // CHECK-fails on a miss once the emission region is running.
    std::vector<size_t> leader_indices;
    leader_indices.reserve(plan.trampolines.size());
    for (const PlannedTrampoline& tramp : plan.trampolines) {
      leader_indices.push_back(tramp.insn_index);
    }
    ctx.cache.PrecomputeClobbers(leader_indices, ctx.opts.jobs);

    ctx.requests.clear();
    ctx.requests.reserve(plan.trampolines.size());
    for (const PlannedTrampoline& tramp : plan.trampolines) {
      // All clobbers are precomputed, so the parallel emission phase only
      // reads the cache. References into the plan/cache stay valid: both
      // live in the context and are not resized after this pass.
      const ClobberInfo& clobbers = ctx.cache.clobbers(tramp.insn_index);
      PatchRequest req;
      req.addr = tramp.addr;
      req.emit_payload = [&tramp, &clobbers, opts = ctx.opts](Assembler& as) {
        EmitTrampolinePayload(as, tramp, clobbers, opts);
      };
      ctx.requests.push_back(std::move(req));
    }

    Result<std::vector<SpanPlan>> planned =
        PlanSpans(ctx.cache.disasm(), ctx.cache.cfg(), ctx.requests, &ctx.rewrite_stats);
    if (!planned.ok()) {
      return Error(planned.error());
    }
    ctx.spans = std::move(planned).value();

    // Hot-tier spans are emitted into a second blob (the inline-check
    // region) so their runtime cycles are attributable separately from
    // trampoline cycles. A span is hot when the request that owns it (its
    // first payload slot) came from a hot trampoline; requests are indexed
    // like plan.trampolines.
    std::vector<size_t> hot_idx;
    for (size_t i = 0; i < ctx.spans.size(); ++i) {
      for (size_t payload : ctx.spans[i].payloads) {
        if (payload != SIZE_MAX) {
          if (plan.trampolines[payload].tier == Tier::kHot) {
            hot_idx.push_back(i);
          }
          break;
        }
      }
    }
    if (hot_idx.empty()) {
      ctx.tramp_code = EmitTrampolines(ctx.cache.disasm(), ctx.spans, ctx.requests,
                                       ctx.opts.trampoline_base, ctx.pool,
                                       &ctx.rewrite_stats);
      return PassOutcome{.items = ctx.requests.size(), .changed = ctx.rewrite_stats.applied};
    }
    std::vector<SpanPlan> rest_spans;
    std::vector<SpanPlan> hot_spans;
    std::vector<size_t> rest_idx;
    rest_spans.reserve(ctx.spans.size() - hot_idx.size());
    hot_spans.reserve(hot_idx.size());
    {
      size_t h = 0;
      for (size_t i = 0; i < ctx.spans.size(); ++i) {
        if (h < hot_idx.size() && hot_idx[h] == i) {
          hot_spans.push_back(ctx.spans[i]);
          ++h;
        } else {
          rest_spans.push_back(ctx.spans[i]);
          rest_idx.push_back(i);
        }
      }
    }
    TrampolineCode rest = EmitTrampolines(ctx.cache.disasm(), rest_spans, ctx.requests,
                                          ctx.opts.trampoline_base, ctx.pool,
                                          &ctx.rewrite_stats);
    RewriteStats inline_stats;
    ctx.inline_code = EmitTrampolines(ctx.cache.disasm(), hot_spans, ctx.requests,
                                      ctx.opts.trampoline_base + kInlineCheckOffset,
                                      ctx.pool, &inline_stats);
    ctx.rewrite_stats.applied += inline_stats.applied;
    ctx.rewrite_stats.inline_trampolines = inline_stats.trampolines;
    ctx.rewrite_stats.inline_bytes = inline_stats.trampoline_bytes;
    // Reassemble the per-span start table in original span order (PatchSpans
    // consumes it positionally).
    std::vector<uint64_t> starts(ctx.spans.size(), 0);
    for (size_t i = 0; i < rest_idx.size(); ++i) {
      starts[rest_idx[i]] = rest.starts[i];
    }
    for (size_t i = 0; i < hot_idx.size(); ++i) {
      starts[hot_idx[i]] = ctx.inline_code.starts[i];
    }
    ctx.tramp_code.bytes = std::move(rest.bytes);
    ctx.tramp_code.starts = std::move(starts);
    return PassOutcome{.items = ctx.requests.size(), .changed = ctx.rewrite_stats.applied};
  }
};

class PatchPass : public Pass {
 public:
  const char* name() const override { return "patch"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    ctx.output = ctx.cache.image();
    Section* text = ctx.output.FindSection(Section::Kind::kText);
    if (text == nullptr) {
      return Error("patch: image has no text section");
    }
    PatchSpans(text, ctx.spans, ctx.tramp_code.starts, ctx.pool);
    if (!ctx.tramp_code.bytes.empty()) {
      Section ts;
      ts.kind = Section::Kind::kTrampoline;
      ts.vaddr = ctx.opts.trampoline_base;
      ts.bytes = ctx.tramp_code.bytes;
      ctx.output.sections.push_back(std::move(ts));
    }
    if (!ctx.inline_code.bytes.empty()) {
      Section is;
      is.kind = Section::Kind::kInlineCheck;
      is.vaddr = ctx.opts.trampoline_base + kInlineCheckOffset;
      is.bytes = ctx.inline_code.bytes;
      ctx.output.sections.push_back(std::move(is));
    }
    return PassOutcome{.items = ctx.spans.size(), .changed = ctx.spans.size()};
  }
};

}  // namespace

// --- Pipeline --------------------------------------------------------------

Pipeline Pipeline::Hardening(const RedFatOptions& opts) {
  Pipeline p;
  p.Add(std::make_unique<DisasmPass>());
  p.Add(std::make_unique<CfgPass>());
  p.Add(std::make_unique<ClassifyPass>());
  p.Add(std::make_unique<EliminatePass>());
  p.Add(std::make_unique<GroupPass>());
  p.Add(std::make_unique<TierPass>());
  p.Add(std::make_unique<BatchPass>());
  p.Add(std::make_unique<MergePass>());
  p.Add(std::make_unique<LivenessPass>());
  p.Add(std::make_unique<CodegenPass>());
  p.Add(std::make_unique<PatchPass>());
  p.SetEnabled("eliminate", opts.elim);
  p.SetEnabled("tier", opts.tier_profile != nullptr);
  p.SetEnabled("batch", opts.batch);
  // Profiling needs per-site pass/fail attribution; a merged check would
  // conflate its member sites.
  p.SetEnabled("merge", opts.merge && opts.mode != RedFatOptions::Mode::kProfile);
  return p;
}

Pipeline Pipeline::Hardening(const ResolvedPolicy& policy) {
  return Hardening(policy.rewrite);
}

Pipeline& Pipeline::Add(std::unique_ptr<Pass> pass) {
  REDFAT_CHECK(pass != nullptr);
  passes_.push_back(Entry{std::move(pass), /*enabled=*/true});
  return *this;
}

std::vector<std::string> Pipeline::PassNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const Entry& e : passes_) {
    names.push_back(e.pass->name());
  }
  return names;
}

bool Pipeline::SetEnabled(const std::string& name, bool enabled) {
  for (Entry& e : passes_) {
    if (name == e.pass->name()) {
      e.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool Pipeline::IsEnabled(const std::string& name) const {
  for (const Entry& e : passes_) {
    if (name == e.pass->name()) {
      return e.enabled;
    }
  }
  return false;
}

void RestoreCheckpoint(const PipelineCheckpoint& cp, PipelineContext& ctx) {
  REDFAT_CHECK(cp.valid());
  ctx.drop_eliminable = cp.drop_eliminable;
  ctx.plan = cp.plan;
  // Everything the back half (re)produces starts clean. The analysis cache
  // is intentionally untouched: its contents are pure functions of the
  // input image and stay valid across re-entries.
  ctx.requests.clear();
  ctx.spans.clear();
  ctx.tramp_code = TrampolineCode{};
  ctx.inline_code = TrampolineCode{};
  ctx.rewrite_stats = RewriteStats{};
  ctx.output = BinaryImage{};
}

void Pipeline::CaptureAfter(const std::string& pass_name, PipelineCheckpoint* out) {
  capture_after_ = out != nullptr ? pass_name : std::string();
  capture_out_ = out;
}

Status Pipeline::Run(PipelineContext& ctx) { return RunRange(ctx, 0); }

Status Pipeline::RunFrom(PipelineContext& ctx, const std::string& first_pass) {
  for (size_t i = 0; i < passes_.size(); ++i) {
    if (first_pass == passes_[i].pass->name()) {
      return RunRange(ctx, i);
    }
  }
  return Error(StrFormat("pipeline: unknown pass '%s'", first_pass.c_str()));
}

Status Pipeline::RunRange(PipelineContext& ctx, size_t first_index) {
  stats_ = PipelineStats{};
  // One pool serves every pass of the run (no per-pass spawn/join). A batch
  // driver may inject a shared pool via ctx.pool; otherwise a scoped pool of
  // opts.jobs workers is created here and detached again on every exit path
  // (the cache must not keep a dangling pointer past the run).
  std::optional<ThreadPool> scoped_pool;
  ThreadPool* const prior_pool = ctx.pool;
  if (ctx.pool == nullptr) {
    scoped_pool.emplace(ctx.opts.jobs);
    ctx.pool = &*scoped_pool;
  }
  ctx.cache.set_pool(ctx.pool);
  stats_.jobs = ctx.pool->jobs();
  const auto detach_pool = [&] {
    ctx.cache.set_pool(nullptr);
    ctx.pool = prior_pool;
  };
  const auto run_start = std::chrono::steady_clock::now();
  for (size_t i = first_index; i < passes_.size(); ++i) {
    Entry& e = passes_[i];
    if (!e.enabled) {
      continue;
    }
    const auto pass_start = std::chrono::steady_clock::now();
    const double start_ms = MsSince(run_start);
    Result<PassOutcome> out = e.pass->Run(ctx);
    if (!out.ok()) {
      detach_pool();
      return Error(StrFormat("pass '%s': %s", e.pass->name(), out.error().c_str()));
    }
    PassStats ps;
    ps.name = e.pass->name();
    ps.items = out.value().items;
    ps.changed = out.value().changed;
    ps.cycles_saved = out.value().cycles_saved;
    ps.wall_ms = MsSince(pass_start);
    ps.start_ms = start_ms;
    stats_.passes.push_back(std::move(ps));
    if (capture_out_ != nullptr && capture_after_ == e.pass->name()) {
      capture_out_->after_pass = capture_after_;
      capture_out_->drop_eliminable = ctx.drop_eliminable;
      capture_out_->plan = ctx.plan;
    }
  }
  stats_.total_ms = MsSince(run_start);
  detach_pool();
  return Status::Ok();
}

// --- telemetry/trace bridges -----------------------------------------------

void AddPipelineTelemetry(const PipelineStats& stats, TelemetryRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->AddCounter("pipeline.runs", 1);
  registry->SetGauge("pipeline.total_ms", stats.total_ms);
  registry->SetGauge("pipeline.jobs", stats.jobs);
  for (const PassStats& p : stats.passes) {
    registry->AddCounter(StrFormat("pipeline.%s.items", p.name.c_str()), p.items);
    registry->AddCounter(StrFormat("pipeline.%s.changed", p.name.c_str()), p.changed);
    if (p.cycles_saved != 0) {
      registry->AddCounter(StrFormat("pipeline.%s.cycles_saved", p.name.c_str()),
                           p.cycles_saved);
    }
    registry->SetGauge(StrFormat("pipeline.%s.wall_ms", p.name.c_str()), p.wall_ms);
  }
}

void AppendPipelineTrace(const PipelineStats& stats, TraceWriter* trace) {
  if (trace == nullptr) {
    return;
  }
  constexpr int kRewriterPid = 2;
  constexpr int kRewriterTid = 1;
  trace->SetProcessName(kRewriterPid, "rewriter");
  trace->SetThreadName(kRewriterPid, kRewriterTid, "pipeline");
  for (const PassStats& p : stats.passes) {
    trace->Complete(p.name, "pass", kRewriterPid, kRewriterTid, p.start_ms * 1000.0,
                    p.wall_ms * 1000.0,
                    {TraceArg{"items", p.items}, TraceArg{"changed", p.changed},
                     TraceArg{"cycles_saved", p.cycles_saved}});
  }
}

}  // namespace redfat
