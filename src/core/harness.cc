#include "src/core/harness.h"

#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/heap/shadow_allocator.h"

namespace redfat {

RunOutcome RunImage(const BinaryImage& image, RuntimeKind runtime, const RunConfig& config) {
  return RunImages({&image}, runtime, config);
}

RunOutcome RunImages(const std::vector<const BinaryImage*>& images, RuntimeKind runtime,
                     const RunConfig& config) {
  Vm vm(config.model);
  GlibcLikeAllocator glibc;
  RedFatAllocator libredfat;
  ShadowRedFatAllocator libredfat_shadow;
  switch (runtime) {
    case RuntimeKind::kBaseline:
      vm.set_allocator(&glibc);
      break;
    case RuntimeKind::kRedFat:
      WriteLowFatTables(&vm.memory());
      vm.set_allocator(&libredfat);
      break;
    case RuntimeKind::kRedFatShadow:
      WriteLowFatTables(&vm.memory());
      vm.set_allocator(&libredfat_shadow);
      break;
  }
  vm.set_policy(config.policy);
  vm.set_inputs(config.inputs);
  vm.set_rng_seed(config.rng_seed);
  vm.set_instruction_limit(config.instruction_limit);
  for (const BinaryImage* image : images) {
    vm.LoadImage(*image);  // the last image's entry wins
  }

  RunOutcome out;
  out.result = vm.Run();
  out.outputs = vm.outputs();
  out.errors = vm.mem_errors();
  out.counters = vm.counters();
  out.prof_counts = vm.prof_counts();
  out.touched_pages = vm.memory().TouchedPages();
  return out;
}

CoverageStats ComputeCoverage(const std::unordered_map<uint32_t, uint64_t>& counters,
                              const std::vector<SiteRecord>& sites) {
  CoverageStats cov;
  for (const SiteRecord& site : sites) {
    auto it = counters.find(site.id);
    if (it == counters.end()) {
      continue;
    }
    if (site.kind == CheckKind::kFull) {
      cov.full += it->second;
    } else {
      cov.redzone_only += it->second;
    }
  }
  return cov;
}

}  // namespace redfat
