#include "src/core/harness.h"

#include "src/heap/debug_allocator.h"
#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/heap/shadow_allocator.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"

namespace redfat {

RunOutcome RunImage(const BinaryImage& image, RuntimeKind runtime, const RunConfig& config) {
  return RunImages({&image}, runtime, config);
}

RunOutcome RunImages(const std::vector<const BinaryImage*>& images, RuntimeKind runtime,
                     const RunConfig& config) {
  Vm vm(config.model);
  RheapOptions ropts = config.rheap;
  if (ropts.random) {
    // Derive the placement seed from the run seed: randomized layouts are
    // reproducible per run, different across seeds.
    ropts.random_seed ^= config.rng_seed * 0x9e3779b97f4a7c15ULL;
  }
  GlibcLikeAllocator glibc;
  RedFatAllocator libredfat(ropts);
  ShadowRedFatAllocator libredfat_shadow(ropts.quarantine_slots);
  DebugRedFatAllocator libredfat_debug(ropts);
  // The allocator whose low-fat heap stats feed the telemetry gauges.
  RedFatAllocator* gauged = nullptr;
  switch (runtime) {
    case RuntimeKind::kBaseline:
      vm.set_allocator(&glibc);
      break;
    case RuntimeKind::kRedFat:
      WriteLowFatTables(&vm.memory());
      vm.set_allocator(&libredfat);
      gauged = &libredfat;
      break;
    case RuntimeKind::kRedFatShadow:
      WriteLowFatTables(&vm.memory());
      vm.set_allocator(&libredfat_shadow);
      break;
    case RuntimeKind::kRedFatDebug:
      WriteLowFatTables(&vm.memory());
      vm.set_allocator(&libredfat_debug);
      gauged = &libredfat_debug;
      break;
  }
  if (config.observer != nullptr) {
    vm.set_observer(config.observer);
  }
  vm.set_policy(config.policy);
  vm.set_inputs(config.inputs);
  vm.set_rng_seed(config.rng_seed);
  vm.set_instruction_limit(config.instruction_limit);
  vm.set_engine(config.engine);
  vm.set_chaining(config.chain);
  vm.set_specialize(config.specialize);
  if (config.code_cache_size != 0) {
    vm.set_code_cache_size(config.code_cache_size);
  }
  if (config.metrics_epoch != 0 && config.on_epoch) {
    vm.set_epoch_hook(config.metrics_epoch, config.on_epoch);
  }
  vm.set_telemetry(config.telemetry);
  vm.set_trace(config.trace);
  vm.set_sampler(config.sampler);
  vm.set_heap_observer(config.forensics);
  if (config.trace != nullptr) {
    config.trace->SetProcessName(1, "guest");
    config.trace->SetThreadName(1, 1, "vm");
  }
  // Keyed-site-id -> original instruction address, for `site_addr` trace
  // args. The keying must mirror Vm::SiteKeyFor: image 0 and any site the VM
  // would fall back to plain ids for keeps its plain id.
  std::unordered_map<uint32_t, uint64_t> site_addrs;
  if (config.trace != nullptr && !config.image_sites.empty()) {
    for (size_t img = 0; img < config.image_sites.size() && img < images.size(); ++img) {
      const std::vector<SiteRecord>* sites = config.image_sites[img];
      if (sites == nullptr) {
        continue;
      }
      const uint32_t ordinal = static_cast<uint32_t>(img);
      for (const SiteRecord& s : *sites) {
        const bool keyed =
            ordinal != 0 && ordinal < kMaxKeyedImages && s.id <= kMaxKeyedSite;
        const uint32_t key = keyed ? ImageSiteKey(ordinal, s.id) : s.id;
        site_addrs.emplace(key, s.addr);
      }
    }
    vm.set_site_addrs(&site_addrs);
  }
  for (const BinaryImage* image : images) {
    vm.LoadImage(*image);  // the last image's entry wins
  }

  RunOutcome out;
  out.result = vm.Run();
  out.outputs = vm.outputs();
  out.errors = vm.mem_errors();
  out.counters = vm.counters();
  out.prof_counts = vm.prof_counts();
  out.touched_pages = vm.memory().TouchedPages();
  out.dispatch = vm.dispatch_stats();

  if (config.forensics != nullptr) {
    // Reports symbolize against the entry image's site table (the last one,
    // mirroring load order); library sites stay keyed and unjoined.
    const std::vector<SiteRecord>* sites =
        config.image_sites.empty() ? nullptr : config.image_sites.back();
    for (const MemErrorReport& e : out.errors) {
      out.forensic_reports.push_back(BuildForensicReport(
          e, *config.forensics, vm.memory(), sites, config.forensic_tier));
    }
  }

  if (config.trace != nullptr) {
    config.trace->Complete("vm.run", "run", 1, 1, 0.0,
                           static_cast<double>(out.result.cycles),
                           {TraceArg{"instructions", out.result.instructions},
                            TraceArg{"mem_errors", out.errors.size()}});
  }
  if (config.telemetry != nullptr) {
    TelemetryRegistry* reg = config.telemetry;
    reg->AddCounter("vm.runs", 1);
    reg->AddCounter("vm.instructions", out.result.instructions);
    reg->AddCounter("vm.cycles", out.result.cycles);
    reg->AddCounter("vm.explicit_reads", out.result.explicit_reads);
    reg->AddCounter("vm.explicit_writes", out.result.explicit_writes);
    reg->AddCounter("vm.mem_errors", out.errors.size());
    reg->SetGauge("vm.touched_pages", static_cast<double>(out.touched_pages));
    if (vm.live_bytes_peak() != 0) {
      reg->SetGauge("heap.live_bytes_peak", static_cast<double>(vm.live_bytes_peak()));
    }
    if (gauged != nullptr) {
      const LowFatHeapStats& hs = gauged->lowfat_stats();
      reg->SetGauge("lowfat.allocs", static_cast<double>(hs.allocs));
      reg->SetGauge("lowfat.frees", static_cast<double>(hs.frees));
      reg->SetGauge("lowfat.live_slots", static_cast<double>(hs.live_slots));
      reg->SetGauge("lowfat.bump_bytes", static_cast<double>(hs.bump_bytes));
      reg->SetGauge("lowfat.fallback_allocs",
                    static_cast<double>(gauged->fallback_allocs()));
      reg->SetGauge("redzone.live_bytes",
                    static_cast<double>(hs.live_slots * kRedzoneSize));
      reg->SetGauge("lowfat.freelist_pops", static_cast<double>(hs.freelist_pops));
      reg->SetGauge("lowfat.arena_carves", static_cast<double>(hs.arena_carves));
      reg->SetGauge("lowfat.malloc_cycles", static_cast<double>(hs.malloc_cycles));
      reg->SetGauge("lowfat.free_cycles", static_cast<double>(hs.free_cycles));
      if (hs.corruptions != 0) {
        reg->SetGauge("lowfat.corruptions", static_cast<double>(hs.corruptions));
      }
      const RedFatAllocatorStats& rs = gauged->redfat_stats();
      if (rs.exhausted_fallbacks != 0) {
        reg->SetGauge("lowfat.exhausted_fallbacks",
                      static_cast<double>(rs.exhausted_fallbacks));
      }
      if (rs.guard_checks != 0) {
        reg->SetGauge("heap.guard_checks", static_cast<double>(rs.guard_checks));
        reg->SetGauge("heap.guard_violations",
                      static_cast<double>(rs.guard_violations));
        reg->SetGauge("heap.guard_cycles", static_cast<double>(rs.guard_cycles));
      }
    }
  }
  return out;
}

CoverageStats ComputeCoverage(const std::unordered_map<uint32_t, uint64_t>& counters,
                              const std::vector<SiteRecord>& sites) {
  CoverageStats cov;
  for (const SiteRecord& site : sites) {
    auto it = counters.find(site.id);
    if (it == counters.end()) {
      continue;
    }
    if (site.kind == CheckKind::kFull) {
      cov.full += it->second;
    } else {
      cov.redzone_only += it->second;
    }
  }
  return cov;
}

CoverageStats ComputeCoverage(const TelemetrySnapshot& snapshot,
                              const std::vector<SiteRecord>& sites) {
  CoverageStats cov;
  for (const SiteRecord& site : sites) {
    const SiteTelemetry* st = snapshot.FindSite(site.id);
    if (st == nullptr || st->checks() == 0) {
      continue;
    }
    if (site.kind == CheckKind::kFull) {
      cov.full += st->checks();
    } else {
      cov.redzone_only += st->checks();
    }
  }
  return cov;
}

}  // namespace redfat
