// Execution harness: runs a binary under a chosen runtime binding and
// collects the measurements the experiments need.
//
// Runtime bindings (the LD_PRELOAD axis):
//   * kBaseline — glibc-like allocator, no tables. For original binaries.
//   * kRedFat   — libredfat allocator + low-fat tables written into guest
//                 memory. Required for any RedFat-instrumented binary.
#ifndef REDFAT_SRC_CORE_HARNESS_H_
#define REDFAT_SRC_CORE_HARNESS_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/bin/image.h"
#include "src/core/forensics_report.h"
#include "src/core/plan.h"
#include "src/heap/rheap.h"
#include "src/vm/vm.h"

namespace redfat {

class SampleProfiler;

// kRedFatShadow binds the ASAN-style shadow runtime; only meaningful for
// binaries instrumented with RedzoneImpl::kShadow (and vice versa).
// kRedFatDebug is the debug hardening tier's binding (core/policy.h): the
// libredfat allocator semantics (in-redzone metadata, so lowfat-metadata
// binaries run unchanged) PLUS guest shadow-map maintenance, so a DBI
// shadow-check observer (src/dbi/shadow_check.h) can classify every
// uninstrumented access.
enum class RuntimeKind { kBaseline, kRedFat, kRedFatShadow, kRedFatDebug };

struct RunConfig {
  Policy policy = Policy::kHarden;
  std::vector<uint64_t> inputs;
  uint64_t rng_seed = 1;
  uint64_t instruction_limit = 200'000'000'000ULL;
  CycleModel model;
  // Allocator hardening features for the redfat/debug runtime bindings
  // (resolved from --rheap / the policy tier; core/policy.h). The default
  // keeps every feature off — byte-identical to the historical allocator.
  // When `random` is on, the placement seed is derived from rng_seed so
  // randomized layouts stay reproducible per run.
  RheapOptions rheap;
  // Dispatch engine. kBlock (superblock code cache) is the production
  // default; kStep remains for differential testing. Guest-visible results
  // are bit-identical either way.
  VmEngine engine = VmEngine::kBlock;
  // Block-engine dispatch knobs (ignored under kStep). Direct superblock
  // chaining and specialized opcode handlers are the production defaults;
  // turning either off (rfrun --no-chain) bisects a suspected dispatch bug
  // against plain block mode without rebuilding. Guest-visible results are
  // bit-identical regardless.
  bool chain = true;
  bool specialize = true;
  // Code-cache capacity in superblock entries; 0 keeps the engine default
  // (4096). Must be a power of two otherwise (callers validate; the VM
  // hard-checks).
  size_t code_cache_size = 0;
  // When nonzero, `on_epoch` fires every `metrics_epoch` guest instructions
  // (exactly — never mid-instruction, and at the same points under either
  // engine). Used by rfrun --metrics-epoch to write delta snapshots.
  uint64_t metrics_epoch = 0;
  std::function<void()> on_epoch;
  // Optional observability sinks (not owned). When set, the harness wires
  // them into the VM, records run-level counters (vm.instructions, vm.cycles,
  // ...), samples heap gauges after the run, and emits guest trace slices.
  // Null (the default) leaves the run's cycle accounting byte-for-byte
  // identical to an unobserved run.
  TelemetryRegistry* telemetry = nullptr;
  TraceWriter* trace = nullptr;
  // Interval-sampling guest profiler (not owned): one sample every
  // sampler->period() executed instructions. Like the sinks above, attaching
  // one never changes guest-visible results or modeled cycles.
  SampleProfiler* sampler = nullptr;
  // Allocation-provenance ring (not owned). When set, the harness wires it
  // into the VM's malloc/free host calls and — while guest memory is still
  // mapped — joins every detected memory error against it into
  // RunOutcome::forensic_reports.
  ForensicRing* forensics = nullptr;
  // Tier label stamped into forensic reports ("" = unknown).
  std::string forensic_tier;
  // Optional per-instruction observer (not owned), e.g. the debug tier's
  // shadow-check observer. Wired into the VM before the run; null (the
  // default) keeps the VM's observer hook on its fast path.
  ExecObserver* observer = nullptr;
  // Optional site tables parallel to the `images` argument of RunImages
  // (missing/null entries are fine). When set alongside `trace`, the harness
  // builds a keyed-site-id -> instruction-address map so trampoline and
  // mem_error trace slices carry a `site_addr` arg linking back to the
  // disassembly (keys follow telemetry.h ImageSiteKey: image ordinal is the
  // position in `images`).
  std::vector<const std::vector<SiteRecord>*> image_sites;
};

struct RunOutcome {
  RunResult result;
  std::vector<uint64_t> outputs;
  std::vector<MemErrorReport> errors;
  std::unordered_map<uint32_t, uint64_t> counters;
  std::unordered_map<uint32_t, Vm::ProfCounts> prof_counts;
  uint64_t touched_pages = 0;  // guest memory footprint proxy
  // One per entry of `errors`, built against RunConfig::forensics while the
  // run's memory was mapped. Empty when no ring was attached.
  std::vector<ForensicReport> forensic_reports;
  // Host-side dispatch-engine statistics (chaining, trace formation, code
  // cache, memory TLB). Deliberately not part of the bit-identity contract —
  // the stepper has no chains to count — and never fed into
  // RunConfig::telemetry; rfrun --report overlays them as vm.* entries.
  Vm::DispatchStats dispatch;
};

RunOutcome RunImage(const BinaryImage& image, RuntimeKind runtime, const RunConfig& config);

// Multi-image execution (§7.4: executable + separately-instrumented shared
// objects). Images are mapped in order; control starts at the *last*
// image's entry point. Protection is per-image: only instrumented images
// carry checks at runtime.
RunOutcome RunImages(const std::vector<const BinaryImage*>& images, RuntimeKind runtime,
                     const RunConfig& config);

// Dynamic coverage (Table 1 "coverage" column): fraction of executed,
// instrumented memory operations protected by the full (Redzone)+(LowFat)
// check vs. (Redzone)-only.
struct CoverageStats {
  uint64_t full = 0;
  uint64_t redzone_only = 0;

  double FullFraction() const {
    const uint64_t total = full + redzone_only;
    return total == 0 ? 0.0 : static_cast<double>(full) / static_cast<double>(total);
  }
};

CoverageStats ComputeCoverage(const std::unordered_map<uint32_t, uint64_t>& counters,
                              const std::vector<SiteRecord>& sites);

// Same, but from a telemetry snapshot's per-site check counts (so external
// consumers of a `--metrics` file can recompute coverage offline).
struct TelemetrySnapshot;
CoverageStats ComputeCoverage(const TelemetrySnapshot& snapshot,
                              const std::vector<SiteRecord>& sites);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_HARNESS_H_
