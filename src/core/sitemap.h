// Site-map persistence: the instrumentation site table, saved alongside a
// hardened binary so runtime error reports can be symbolized (real RedFat
// logs the faulting check's details; our stripped RFBIN files carry no
// metadata, so the tool writes it out-of-band).
//
// Text format, one line per site:  <id> <hex addr> <r|w> <full|redzone>
#ifndef REDFAT_SRC_CORE_SITEMAP_H_
#define REDFAT_SRC_CORE_SITEMAP_H_

#include <string>
#include <vector>

#include "src/core/plan.h"
#include "src/support/result.h"
#include "src/vm/vm.h"

namespace redfat {

std::string SerializeSiteMap(const std::vector<SiteRecord>& sites);
Result<std::vector<SiteRecord>> ParseSiteMap(const std::vector<std::string>& lines);

// Human-readable one-line report, e.g.
//   "out-of-bounds write at 0x400123 (site 5, full check)"
// Sites may be null/short (e.g. Memcheck reports with site 0).
std::string DescribeError(const MemErrorReport& error, const std::vector<SiteRecord>* sites);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_SITEMAP_H_
