// Site-map persistence: the instrumentation site table, saved alongside a
// hardened binary so runtime error reports can be symbolized (real RedFat
// logs the faulting check's details; our stripped RFBIN files carry no
// metadata, so the tool writes it out-of-band).
//
// Text format, one line per site:  <id> <hex addr> <r|w> <full|redzone>
// plus an optional trailing <warm|hot|cold> tier column, emitted only when
// the rewrite was profile-tiered (so untiered maps match older builds).
// A map written under an explicit hardening policy (--harden=TIER) starts
// with a policy header line, "# harden: <tier>", which round-trips through
// ParseSiteMap; maps from legacy invocations carry no header and stay
// byte-identical to older builds. An explicit --rheap feature list adds a
// second header line, "# rheap: <list>", with the same round-trip and
// byte-identity rules.
#ifndef REDFAT_SRC_CORE_SITEMAP_H_
#define REDFAT_SRC_CORE_SITEMAP_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/plan.h"
#include "src/support/result.h"
#include "src/vm/vm.h"

namespace redfat {

enum class HardenTier : uint8_t;  // core/policy.h
struct RheapOptions;              // heap/rheap.h

// `harden` non-null adds the "# harden: <tier>" policy header; `rheap`
// non-null adds the "# rheap: <list>" allocator-feature header.
std::string SerializeSiteMap(const std::vector<SiteRecord>& sites,
                             const HardenTier* harden = nullptr,
                             const RheapOptions* rheap = nullptr);
// `harden` non-null receives the policy header's tier when the map carries
// one (reset to nullopt otherwise); same for `rheap` and the feature header.
Result<std::vector<SiteRecord>> ParseSiteMap(
    const std::vector<std::string>& lines,
    std::optional<HardenTier>* harden = nullptr,
    std::optional<RheapOptions>* rheap = nullptr);

// Human-readable one-line report, e.g.
//   "out-of-bounds write at 0x400123 (site 5, full check)"
// Sites may be null/short (e.g. Memcheck reports with site 0).
std::string DescribeError(const MemErrorReport& error, const std::vector<SiteRecord>* sites);

struct PipelineStats;
struct TelemetrySnapshot;

// The `rfrun --report` text: a per-site table joining the rewriter's static
// site records (what was instrumented, where) with the run's telemetry (what
// executed, what it hit, what it cost), followed by the named counters and
// gauges, and — when rewrite-time stats are available — a pass summary.
// `sites` and `pipeline` are optional; `total_cycles` scales the per-site
// cycle share column (0 suppresses it).
std::string FormatTelemetryReport(const TelemetrySnapshot& snapshot,
                                  const std::vector<SiteRecord>* sites,
                                  const PipelineStats* pipeline,
                                  uint64_t total_cycles);

// One image's site table, for multi-image reports (rfrun --lib). `name`
// labels the img column; `sites` may be null for uninstrumented images.
// `harden` is the image's resolved hardening tier from its sitemap's policy
// header ("" = unknown); when any image carries one, the per-site table
// grows a `harden` column (reports without policy data are unchanged).
struct ImageSiteTable {
  std::string name;
  const std::vector<SiteRecord>* sites = nullptr;
  std::string harden;
};

// Multi-image variant: telemetry site ids are decoded per telemetry.h
// ImageSiteKey and joined against the owning image's table. With more than
// one image the per-site table grows an `img` column so counters from
// separately-instrumented libraries stay unambiguous.
std::string FormatTelemetryReport(const TelemetrySnapshot& snapshot,
                                  const std::vector<ImageSiteTable>& images,
                                  const PipelineStats* pipeline,
                                  uint64_t total_cycles);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_SITEMAP_H_
