// The hardening pass pipeline: an explicit, observable, parallel pass
// manager for the disassemble → analyze → plan → codegen → patch sequence
// that RedFatTool used to hard-wire.
//
// Every stage is a named Pass over a shared PipelineContext:
//
//   disasm     linear-sweep disassembly of the text section
//   cfg        conservative jump-target / basic-block recovery
//   classify   per-operand classification (operand classes analysis)
//   eliminate  check elimination (§6)            [disabled = "unoptimized"]
//   group      site policy + singleton trampoline formation
//   tier       profile-guided check tiering      [disabled without --profile]
//   batch      check batching (§6)               [disabled = "+elim" column]
//   merge      check merging (§6)                [disabled = "+batch" column]
//   liveness   clobber analysis for every trampoline leader
//   codegen    trampoline span planning + code emission
//   patch      text patching + output image assembly
//
// A paper ablation column is a pipeline with a pass disabled
// (Pipeline::SetEnabled), not a flag threaded through the driver. Each
// executed pass records a PassStats block (items, changed, wall time, and a
// static cycles-saved estimate for the optimization passes); the per-item
// passes (merge, liveness, codegen) run across a work-queue thread pool of
// `RedFatOptions::jobs` workers with deterministic, byte-identical output.
//
// Analyses (decoded instructions, CFG, operand classes, per-instruction
// clobber info) live in an AnalysisCache so later passes and external
// consumers reuse instead of recompute.
#ifndef REDFAT_SRC_CORE_PIPELINE_H_
#define REDFAT_SRC_CORE_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/bin/image.h"
#include "src/core/options.h"
#include "src/core/plan.h"
#include "src/rw/liveness.h"
#include "src/rw/rewriter.h"
#include "src/support/parallel.h"
#include "src/support/result.h"

namespace redfat {

struct ResolvedPolicy;  // core/policy.h

// --- observability ---------------------------------------------------------

struct PassStats {
  std::string name;
  size_t items = 0;            // units the pass looked at (insns, sites, spans)
  size_t changed = 0;          // units it altered (eliminated, batched, merged)
  double wall_ms = 0.0;        // wall-clock time of the pass
  // Static estimate of execution cycles the pass saves per visit of the
  // affected sites (optimization passes only; see pipeline.cc for the
  // per-check constants). An observability aid, not a measurement.
  uint64_t cycles_saved = 0;
  // Offset of the pass's start from the pipeline run's start. Together with
  // wall_ms this places the pass on a timeline (the `--trace` pipeline
  // track). Serialized last so PR-1-era consumers, which ignore unknown
  // numeric keys, still parse the JSON.
  double start_ms = 0.0;
};

struct PipelineStats {
  unsigned jobs = 1;           // resolved worker count the pipeline ran with
  double total_ms = 0.0;
  std::vector<PassStats> passes;  // executed passes, in run order

  const PassStats* Find(const std::string& name) const;
  // Machine-readable single-line JSON (the `redfat --stats` format).
  std::string ToJson() const;
};

// Parses the ToJson() format back (used by benches and the golden test to
// consume `--stats` output).
Result<PipelineStats> PipelineStatsFromJson(const std::string& json);

class TelemetryRegistry;
class TraceWriter;

// Publishes a run's pipeline stats into the unified telemetry registry:
// counters "pipeline.<pass>.items"/".changed"/".cycles_saved" and gauges
// "pipeline.total_ms"/"pipeline.<pass>.wall_ms".
void AddPipelineTelemetry(const PipelineStats& stats, TelemetryRegistry* registry);

// Appends one trace slice per executed pass (pid 2 "rewriter", wall-clock
// timebase) so a `--trace` file shows the rewrite timeline next to the
// guest-execution track.
void AppendPipelineTrace(const PipelineStats& stats, TraceWriter* trace);

// --- analyses --------------------------------------------------------------

// Shared per-image analysis results. Disassembly/CFG are computed on demand
// and cached; operand classes are deposited by the classify pass; clobber
// info is memoised per instruction index (PrecomputeClobbers fills many
// entries across the thread pool; the lazy accessor is single-thread only).
class AnalysisCache {
 public:
  explicit AnalysisCache(const BinaryImage& image) : image_(image) {}

  const BinaryImage& image() const { return image_; }

  // Pool used by EnsureDisasm/EnsureCfg/PrecomputeClobbers, and consulted by
  // the lazy clobbers() accessor to reject unsynchronized memoisation while
  // a parallel region is running. Set by Pipeline::Run for the duration of a
  // run; nullptr means serial.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  Status EnsureDisasm();
  bool has_disasm() const { return disasm_.has_value(); }
  const Disassembly& disasm() const;

  Status EnsureCfg();  // implies EnsureDisasm
  bool has_cfg() const { return cfg_.has_value(); }
  const CfgInfo& cfg() const;

  void set_operand_classes(std::vector<OperandClass> classes);
  const std::vector<OperandClass>* operand_classes() const;

  // Clobber info for the instruction at `insn_index`; computed and memoised
  // on first use. The returned reference stays valid for the cache's
  // lifetime. Single-thread only on a miss: CHECK-fails if an uncached
  // entry is requested while the pool is inside a parallel region (callers
  // must PrecomputeClobbers first).
  const ClobberInfo& clobbers(size_t insn_index);
  // Fills the cache for every listed index that is not already cached, in
  // parallel (on the attached pool if set, else up to `jobs` transient
  // threads).
  void PrecomputeClobbers(const std::vector<size_t>& indices, unsigned jobs);

 private:
  const BinaryImage& image_;
  ThreadPool* pool_ = nullptr;
  std::optional<Disassembly> disasm_;
  std::optional<CfgInfo> cfg_;
  std::optional<std::vector<OperandClass>> classes_;
  std::vector<std::optional<ClobberInfo>> clobbers_;  // sized lazily to insns
};

// --- passes ----------------------------------------------------------------

// Everything a pass may read or produce. Later passes consume what earlier
// passes deposited (declared per pass in pipeline.cc); the pipeline runs
// them in registration order.
struct PipelineContext {
  PipelineContext(const BinaryImage& input, const RedFatOptions& options,
                  const AllowList* allow_list)
      : opts(options), allow(allow_list), cache(input) {}

  RedFatOptions opts;
  const AllowList* allow = nullptr;
  AnalysisCache cache;

  // Worker pool the passes shard on. Usually owned by Pipeline::Run (which
  // creates a scoped pool of opts.jobs workers when this is null); a batch
  // driver instrumenting several images concurrently injects one shared
  // pool here so the images do not oversubscribe the machine.
  ThreadPool* pool = nullptr;

  // Planning state.
  bool drop_eliminable = false;       // set by the eliminate pass
  InstrumentPlan plan;

  // Rewriting state. `tramp_code.starts` is parallel to `spans` and covers
  // every span regardless of which blob its code landed in; `inline_code`
  // holds the hot-tier blob (empty without a tiering profile).
  std::vector<PatchRequest> requests;
  std::vector<SpanPlan> spans;
  TrampolineCode tramp_code;
  TrampolineCode inline_code;
  RewriteStats rewrite_stats;
  BinaryImage output;
};

// What a pass reports back to the pipeline (timing is measured outside).
struct PassOutcome {
  size_t items = 0;
  size_t changed = 0;
  uint64_t cycles_saved = 0;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual Result<PassOutcome> Run(PipelineContext& ctx) = 0;
};

// --- checkpoints -----------------------------------------------------------

// A resumable snapshot of the planning state between two passes. A server
// that has already paid the analysis front half (disasm .. group) for an
// image captures one right after the group pass; a later profile upload
// restores it into the same context and re-enters the pipeline at the tier
// pass (RunFrom), skipping disassembly/CFG/classification entirely. The
// snapshot holds exactly the context state the front half owns: the plan
// (sites + singleton trampolines + stats so far) and the eliminate flag.
// The AnalysisCache itself is not snapshotted — downstream passes only read
// it (clobber memoisation is monotonic and deterministic), so the live
// cache in the retained context is reused as-is.
struct PipelineCheckpoint {
  std::string after_pass;         // pass the snapshot was taken after
  bool drop_eliminable = false;   // PipelineContext::drop_eliminable
  InstrumentPlan plan;            // deep copy of PipelineContext::plan

  bool valid() const { return !after_pass.empty(); }
};

// Restores a checkpoint into `ctx`: plan and eliminate flag come back from
// the snapshot, and all downstream (rewriting) state is reset so the back
// half of the pipeline starts clean. The context must be the one the
// checkpoint was captured from (same image, same analysis cache).
void RestoreCheckpoint(const PipelineCheckpoint& cp, PipelineContext& ctx);

// --- the pipeline ----------------------------------------------------------

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  // The standard hardening pipeline for `opts`: all passes registered, with
  // eliminate/batch/merge pre-disabled according to the option flags (and
  // merge always disabled in profiling mode, which needs per-site
  // attribution).
  static Pipeline Hardening(const RedFatOptions& opts);
  // Policy form: pass configuration derived from a resolved hardening
  // policy's rewrite knobs (core/policy.h) — the subsystems never
  // re-decide what the policy already settled.
  static Pipeline Hardening(const ResolvedPolicy& policy);

  Pipeline& Add(std::unique_ptr<Pass> pass);

  // Registered pass names, in run order (including disabled passes).
  std::vector<std::string> PassNames() const;
  // Enables/disables a registered pass; returns false for unknown names.
  bool SetEnabled(const std::string& name, bool enabled);
  bool IsEnabled(const std::string& name) const;

  // Runs all enabled passes in order, collecting per-pass stats. On error
  // the pipeline stops at the failing pass.
  Status Run(PipelineContext& ctx);

  // Runs only the passes at and after `first_pass` (still honoring enabled
  // flags). The context must carry the upstream state those passes expect —
  // normally restored from a PipelineCheckpoint captured by an earlier full
  // Run. Unknown pass names are an error.
  Status RunFrom(PipelineContext& ctx, const std::string& first_pass);

  // Arms checkpoint capture: the next Run() copies the planning state into
  // `*out` right after the named pass executes (pass nullptr to disarm).
  // The capture is a deep copy; `*out` must outlive the run.
  void CaptureAfter(const std::string& pass_name, PipelineCheckpoint* out);

  // Stats of the last Run.
  const PipelineStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::unique_ptr<Pass> pass;
    bool enabled = true;
  };
  Status RunRange(PipelineContext& ctx, size_t first_index);

  std::vector<Entry> passes_;
  PipelineStats stats_;
  std::string capture_after_;
  PipelineCheckpoint* capture_out_ = nullptr;
};

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_PIPELINE_H_
