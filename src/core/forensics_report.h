// Provenance-rich memory-error reports: the join of a detected error
// (MemErrorReport) with the forensic allocation ring, the guest memory image
// and the active hardening policy, rendered as triage text for stderr and as
// structured JSON for `rfrun --error-report=FILE.json`.
//
// Reports must be built while the run's guest Memory is still mapped (the
// harness does this inside RunImages) — the redzone-neighborhood hex dump
// reads guest bytes around the faulting address.
#ifndef REDFAT_SRC_CORE_FORENSICS_REPORT_H_
#define REDFAT_SRC_CORE_FORENSICS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/plan.h"
#include "src/heap/forensics.h"
#include "src/vm/memory.h"
#include "src/vm/vm.h"

namespace redfat {

// The error kind as a stable lowercase token ("oob", "uaf", "meta",
// "double-free") for JSON; DescribeError renders the human phrasing.
const char* ErrorKindToken(ErrorKind kind);

struct ForensicReport {
  MemErrorReport error;
  std::string description;  // DescribeError() one-liner
  std::string tier;         // active hardening tier name ("" = unknown)

  // Provenance join: the heap object the fault is attributed to. For a UAF
  // this is the freed object the address still points into; for an OOB the
  // containing or nearest tracked object.
  bool have_provenance = false;
  AllocProvenance provenance;
  bool provenance_freed = false;  // the join hit the freed ring, not the live table
  uint64_t distance = 0;          // bytes from the payload edge (0 = inside)
  bool past_end = false;          // the miss was above the object (off-by-N)

  // Redzone-neighborhood dump: 64 guest bytes bracketing the faulting
  // address (one 16-byte row before its row, two after). Absent when the
  // report carries no address (trap payloads hold only site + kind).
  bool have_dump = false;
  uint64_t dump_base = 0;
  std::vector<uint8_t> dump_bytes;
};

ForensicReport BuildForensicReport(const MemErrorReport& error,
                                   const ForensicRing& ring, const Memory& memory,
                                   const std::vector<SiteRecord>* sites,
                                   const std::string& tier);

// Multi-line human-readable rendering (rfrun prints this to stderr).
std::string FormatForensicReport(const ForensicReport& report);

// {"errors":[...],"ring":{...}} on a single line. `ring` records the
// tracker's occupancy and eviction count so "no provenance" is
// distinguishable from "provenance aged out".
std::string ForensicReportsToJson(const std::vector<ForensicReport>& reports,
                                  const ForensicRing& ring);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_FORENSICS_REPORT_H_
