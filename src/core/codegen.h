// Check code generation: lowers the Fig. 4 pseudo-code into rfi trampoline
// code.
//
// The emitted body implements the merged state/size scheme of §4.2:
// metadata is a single u64 SIZE stored at the object's slot base (inside
// the redzone), with SIZE == 0 encoding Free. The default configuration
// uses the branchless merged lower/upper-bound comparison:
//
//     UB' = zext32(LB - (BASE+16)) + BASE+16 + len
//     error iff UB' > BASE+16+SIZE
//
// which folds the UAF, lower-bound and upper-bound checks into one
// compare+branch (an out-of-range LB underflows the 32-bit difference and
// produces a huge UB').
//
// Register discipline: each check body needs 4 scratch registers that must
// not alias the operand's base/index. Dead registers (clobber analysis,
// §6) are used for free; live ones are push/pop-saved, and the flags are
// pushf/popf-saved unless proven dead. Stack-relative operands get their
// displacement biased by the bytes pushed so far.
#ifndef REDFAT_SRC_CORE_CODEGEN_H_
#define REDFAT_SRC_CORE_CODEGEN_H_

#include "src/asm/assembler.h"
#include "src/core/options.h"
#include "src/core/plan.h"
#include "src/rw/liveness.h"

namespace redfat {

// Emits the complete trampoline payload (site counters, register/flags
// saves, one body per planned check, restores) for `tramp`.
void EmitTrampolinePayload(Assembler& as, const PlannedTrampoline& tramp,
                           const ClobberInfo& clobbers, const RedFatOptions& opts);

}  // namespace redfat

#endif  // REDFAT_SRC_CORE_CODEGEN_H_
