#include "src/core/codegen.h"

#include <algorithm>

#include "src/support/check.h"

namespace redfat {

namespace {

struct Scratch {
  Reg t0, t1, t2, t3;
};

// Picks 4 scratch registers for one check body: anything but rsp and the
// operand's own base/index. Registers appearing earlier in `preference`
// (dead registers first) are chosen first so that saves are minimized.
Scratch PickScratch(const PlannedCheck& check, const std::vector<Reg>& preference) {
  auto excluded = [&](Reg r) {
    return r == Reg::kRsp || r == check.mem.base || r == check.mem.index;
  };
  std::vector<Reg> picks;
  for (Reg r : preference) {
    if (!excluded(r) && std::find(picks.begin(), picks.end(), r) == picks.end()) {
      picks.push_back(r);
      if (picks.size() == 4) {
        break;
      }
    }
  }
  REDFAT_CHECK(picks.size() == 4);
  return Scratch{picks[0], picks[1], picks[2], picks[3]};
}

// Emits the ASAN-style alternative body (RedzoneImpl::kShadow): a shadow
// byte lookup for the redzone/UAF state, then (for full-check sites) a
// naive concatenated LowFat class-bounds check. This is the "simply
// concatenate the two schemas" design §4 argues against: two separate
// lookups, and no malloc-size metadata so padding overflows are invisible.
void EmitShadowCheckBody(Assembler& as, const PlannedCheck& check, const Scratch& s,
                         const RedFatOptions& opts, int32_t stack_bias) {
  const Reg t0 = s.t0;
  const Reg t1 = s.t1;
  const Reg t2 = s.t2;
  const Reg t3 = s.t3;
  const uint32_t site = check.member_sites.front();
  MemOperand lb = check.mem;
  lb.size_log2 = 0;
  if (lb.rip_relative()) {
    const uint64_t new_next = as.Here() + EncodedLength(Op::kLea);
    const int64_t adj = static_cast<int64_t>(lb.disp) +
                        static_cast<int64_t>(check.anchor_next) -
                        static_cast<int64_t>(new_next);
    REDFAT_CHECK(adj >= INT32_MIN && adj <= INT32_MAX);
    lb.disp = static_cast<int32_t>(adj);
  } else if (lb.base == Reg::kRsp) {
    lb.disp += stack_bias;
  }
  as.Lea(t0, lb);

  const auto done = as.NewLabel();
  const auto end = as.NewLabel();
  const auto err_bounds = as.NewLabel();
  const auto err_uaf = as.NewLabel();
  const auto lowfat_part = as.NewLabel();

  // state_shadow(ptr) = *(SHADOW_MAP + ptr/8)
  as.MovRR(t1, t0);
  as.ShrI(t1, 3);
  as.MovRI(t3, kGuestShadowBase);
  as.Load(t2, MemBIS(t3, t1, 0, 0, /*size_log2=*/0));
  as.Test(t2, t2);
  as.Jcc(Cond::kEq, lowfat_part);
  as.CmpI(t2, static_cast<int32_t>(GuestShadow::kFreed));
  as.Jcc(Cond::kEq, err_uaf);
  as.Jmp(err_bounds);

  as.Bind(lowfat_part);
  if (check.kind == CheckKind::kFull) {
    // Naive (LowFat) schema: class bounds only (no malloc size available).
    as.MovRR(t3, check.mem.base);
    as.MovRR(t1, t3);
    as.ShrI(t1, kRegionShift);
    as.CmpI(t1, static_cast<int32_t>(kNumRegions));
    as.Jcc(Cond::kUge, done);
    as.Load(t2, MemBIS(Reg::kNone, t1, 3, static_cast<int32_t>(kSizesTableAddr)));
    as.Test(t2, t2);
    as.Jcc(Cond::kEq, done);
    as.Load(t1, MemBIS(Reg::kNone, t1, 3, static_cast<int32_t>(kMagicsTableAddr)));
    as.Mulh(t3, t1);
    as.Imul(t3, t2);  // BASE (slot start)
    as.Cmp(t0, t3);
    as.Jcc(Cond::kUlt, err_bounds);
    as.Add(t3, t2);  // BASE + class size
    as.MovRR(t1, t0);
    as.AddI(t1, static_cast<int32_t>(check.access_len));
    as.Cmp(t1, t3);
    as.Jcc(Cond::kUgt, err_bounds);
  }
  as.Jmp(end);
  // t0 still holds LB (never clobbered after STEP 1), so the error stubs
  // can hand the faulting address to the VM for forensics.
  as.Bind(err_uaf);
  as.Trap(TrapCode::kErrAddr, static_cast<uint32_t>(t0));
  as.Trap(TrapCode::kMemError, PackErrorArg(site, ErrorKind::kUaf));
  as.Jmp(end);
  as.Bind(err_bounds);
  as.Trap(TrapCode::kErrAddr, static_cast<uint32_t>(t0));
  as.Trap(TrapCode::kMemError, PackErrorArg(site, ErrorKind::kBounds));
  as.Bind(done);
  as.Bind(end);
}

// Emits one check body. `stack_bias` is the number of bytes pushed by the
// save prologue (rsp-relative operands must be rebased).
void EmitCheckBody(Assembler& as, const PlannedCheck& check, const Scratch& s,
                   const RedFatOptions& opts, int32_t stack_bias) {
  if (opts.redzone_impl == RedzoneImpl::kShadow) {
    REDFAT_CHECK(opts.mode == RedFatOptions::Mode::kProduction);
    EmitShadowCheckBody(as, check, s, opts, stack_bias);
    return;
  }
  const Reg t0 = s.t0;  // LB
  const Reg t1 = s.t1;  // region index -> magic -> metadata SIZE
  const Reg t2 = s.t2;  // low-fat size -> scratch for UB'
  const Reg t3 = s.t3;  // n (candidate pointer) -> BASE
  const uint32_t site = check.member_sites.front();
  const bool profile = opts.mode == RedFatOptions::Mode::kProfile;

  // STEP 1: LB = effective address of the (possibly widened) operand.
  MemOperand lb = check.mem;
  lb.size_log2 = 0;  // lea ignores the access size
  REDFAT_CHECK(lb.index != Reg::kRsp);
  if (lb.rip_relative()) {
    // Rebase the displacement: the lea executes inside the trampoline but
    // must produce the address the original instruction would have.
    const uint64_t new_next = as.Here() + EncodedLength(Op::kLea);
    const int64_t adj = static_cast<int64_t>(lb.disp) +
                        static_cast<int64_t>(check.anchor_next) -
                        static_cast<int64_t>(new_next);
    REDFAT_CHECK(adj >= INT32_MIN && adj <= INT32_MAX);
    lb.disp = static_cast<int32_t>(adj);
  } else if (lb.base == Reg::kRsp) {
    lb.disp += stack_bias;
  }
  as.Lea(t0, lb);

  const auto done = as.NewLabel();  // non-fat / passing exit
  const auto end = as.NewLabel();

  // STEP 2: BASE from the pointer (LowFat) with fallback to LB (Redzone).
  const auto got_base = as.NewLabel();
  if (check.kind == CheckKind::kFull) {
    const auto try_lb = as.NewLabel();
    as.MovRR(t3, check.mem.base);  // n = ptr
    as.MovRR(t1, t3);
    as.ShrI(t1, kRegionShift);
    as.CmpI(t1, static_cast<int32_t>(kNumRegions));
    as.Jcc(Cond::kUge, try_lb);
    as.Load(t2, MemBIS(Reg::kNone, t1, 3, static_cast<int32_t>(kSizesTableAddr)));
    as.Test(t2, t2);
    as.Jcc(Cond::kNe, got_base);
    as.Bind(try_lb);
  }
  as.MovRR(t3, t0);  // n = LB
  as.MovRR(t1, t3);
  as.ShrI(t1, kRegionShift);
  as.CmpI(t1, static_cast<int32_t>(kNumRegions));
  as.Jcc(Cond::kUge, done);
  as.Load(t2, MemBIS(Reg::kNone, t1, 3, static_cast<int32_t>(kSizesTableAddr)));
  as.Test(t2, t2);
  as.Jcc(Cond::kEq, done);  // non-fat pointer: over-approximate, pass
  as.Bind(got_base);

  // BASE = (n / size) * size via the shift-free magic multiply.
  as.Load(t1, MemBIS(Reg::kNone, t1, 3, static_cast<int32_t>(kMagicsTableAddr)));
  as.Mulh(t3, t1);  // q = high64(n * magic)
  as.Imul(t3, t2);  // BASE = q * size

  // STEP 3: metadata (state/size merged: SIZE==0 means Free).
  as.Load(t1, MemAt(t3, 0));

  // STEP 4: the checks.
  const auto err_meta = as.NewLabel();
  const auto err_bounds = as.NewLabel();
  const auto err_uaf = as.NewLabel();
  if (opts.size_hardening) {
    as.SubI(t2, static_cast<int32_t>(kRedzoneSize));
    as.Cmp(t1, t2);
    as.Jcc(Cond::kUgt, err_meta);
  }
  const int32_t len = static_cast<int32_t>(check.access_len);
  if (opts.merged_ub) {
    as.AddI(t3, static_cast<int32_t>(kRedzoneSize));  // BASE+16
    as.MovRR(t2, t0);
    as.Sub(t2, t3);
    as.ShlI(t2, 32);
    as.ShrI(t2, 32);  // zext32(LB - (BASE+16))
    as.Add(t2, t3);
    as.AddI(t2, len);  // UB'
    as.Add(t3, t1);    // BASE+16+SIZE
    as.Cmp(t2, t3);
    as.Jcc(Cond::kUgt, err_bounds);
  } else {
    as.Test(t1, t1);
    as.Jcc(Cond::kEq, err_uaf);
    as.AddI(t3, static_cast<int32_t>(kRedzoneSize));  // BASE+16
    as.Cmp(t0, t3);
    as.Jcc(Cond::kUlt, err_bounds);
    as.MovRR(t2, t0);
    as.AddI(t2, len);  // UB
    as.Add(t3, t1);    // BASE+16+SIZE
    as.Cmp(t2, t3);
    as.Jcc(Cond::kUgt, err_bounds);
  }

  // Passing fallthrough / error stubs / non-fat exit.
  if (profile && check.kind == CheckKind::kFull) {
    as.Trap(TrapCode::kProfPass, site);
    as.Jmp(end);
    as.Bind(err_meta);
    as.Bind(err_bounds);
    as.Bind(err_uaf);
    as.Trap(TrapCode::kProfFail, site);
    as.Jmp(end);
    as.Bind(done);
    as.Trap(TrapCode::kProfPass, site);  // non-fat: trivially safe
    as.Bind(end);
  } else {
    as.Jmp(end);
    // t0 still holds LB (never clobbered after STEP 1), so the error stubs
    // can hand the faulting address to the VM for forensics.
    as.Bind(err_meta);
    as.Trap(TrapCode::kErrAddr, static_cast<uint32_t>(t0));
    as.Trap(TrapCode::kMemError, PackErrorArg(site, ErrorKind::kMeta));
    as.Jmp(end);
    as.Bind(err_uaf);
    as.Trap(TrapCode::kErrAddr, static_cast<uint32_t>(t0));
    as.Trap(TrapCode::kMemError, PackErrorArg(site, ErrorKind::kUaf));
    as.Jmp(end);
    as.Bind(err_bounds);
    as.Trap(TrapCode::kErrAddr, static_cast<uint32_t>(t0));
    as.Trap(TrapCode::kMemError, PackErrorArg(site, ErrorKind::kBounds));
    as.Bind(done);
    as.Bind(end);
  }
}

}  // namespace

void EmitTrampolinePayload(Assembler& as, const PlannedTrampoline& tramp,
                           const ClobberInfo& clobbers, const RedFatOptions& opts) {
  // Zero-cycle dynamic coverage accounting, one counter per member site.
  for (const PlannedCheck& check : tramp.checks) {
    for (uint32_t site : check.member_sites) {
      as.Count(site);
    }
  }

  // Scratch preference order: dead registers first (free), then the rest.
  // Cold-tier trampolines are demoted to the save-all discipline: their
  // runtime cost is negligible by definition, and skipping the liveness
  // data keeps the wide demoted batches uniform.
  std::vector<Reg> preference;
  const bool use_clobbers = opts.clobber_analysis && tramp.tier != Tier::kCold;
  if (use_clobbers) {
    preference = clobbers.dead_regs;
  }
  for (int r = 0; r < kNumGprs; ++r) {
    const Reg reg = static_cast<Reg>(r);
    if (std::find(preference.begin(), preference.end(), reg) == preference.end()) {
      preference.push_back(reg);
    }
  }

  // Pre-pass: pick scratch per check; compute the union that needs saving.
  std::vector<Scratch> scratch;
  scratch.reserve(tramp.checks.size());
  std::vector<Reg> to_save;
  auto is_dead = [&](Reg r) {
    return use_clobbers && std::find(clobbers.dead_regs.begin(), clobbers.dead_regs.end(),
                                     r) != clobbers.dead_regs.end();
  };
  for (const PlannedCheck& check : tramp.checks) {
    const Scratch s = PickScratch(check, preference);
    for (Reg r : {s.t0, s.t1, s.t2, s.t3}) {
      if (!is_dead(r) && std::find(to_save.begin(), to_save.end(), r) == to_save.end()) {
        to_save.push_back(r);
      }
    }
    scratch.push_back(s);
  }
  const bool save_flags = !(use_clobbers && clobbers.flags_dead);

  // The guest may keep live data in the 128-byte red zone below rsp (leaf
  // spill slots); pushes would clobber it. Hop over it first — lea leaves
  // the flags untouched (the same trick E9Patch payloads use).
  const bool uses_stack = !to_save.empty() || save_flags;
  constexpr int32_t kStackRedZone = 128;
  if (uses_stack) {
    as.Lea(Reg::kRsp, MemAt(Reg::kRsp, -kStackRedZone));
  }
  for (Reg r : to_save) {
    as.Push(r);
  }
  if (save_flags) {
    as.Pushf();
  }
  const int32_t stack_bias = static_cast<int32_t>(
      (uses_stack ? kStackRedZone : 0) + 8 * (to_save.size() + (save_flags ? 1 : 0)));

  for (size_t i = 0; i < tramp.checks.size(); ++i) {
    EmitCheckBody(as, tramp.checks[i], scratch[i], opts, stack_bias);
  }

  if (save_flags) {
    as.Popf();
  }
  for (auto it = to_save.rbegin(); it != to_save.rend(); ++it) {
    as.Pop(*it);
  }
  if (uses_stack) {
    as.Lea(Reg::kRsp, MemAt(Reg::kRsp, kStackRedZone));
  }
}

}  // namespace redfat
