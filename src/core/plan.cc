#include "src/core/plan.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/support/check.h"
#include "src/support/parallel.h"

namespace redfat {

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kWarm:
      return "warm";
    case Tier::kHot:
      return "hot";
    case Tier::kCold:
      return "cold";
  }
  return "?";
}

TierStats AssignSiteTiers(const TierProfile& profile, double hot_threshold,
                          std::vector<SiteRecord>* sites) {
  TierStats ts;
  // Resolve every profile entry to a current site index. With a sitemap the
  // join goes through the profiled image's instruction addresses and
  // requires the site shape (rw + check kind) to match — a profile from a
  // different binary resolves nothing and tiers nothing.
  std::unordered_map<uint64_t, size_t> by_addr;
  std::unordered_map<uint32_t, const SiteRecord*> prof_by_id;
  if (profile.sitemap != nullptr) {
    by_addr.reserve(sites->size());
    for (size_t i = 0; i < sites->size(); ++i) {
      by_addr[(*sites)[i].addr] = i;
    }
    prof_by_id.reserve(profile.sitemap->size());
    for (const SiteRecord& s : *profile.sitemap) {
      prof_by_id[s.id] = &s;
    }
  }
  std::vector<std::pair<size_t, uint64_t>> resolved;  // (site index, cycles)
  resolved.reserve(profile.cycles_by_site.size());
  for (const auto& [id, cycles] : profile.cycles_by_site) {
    if (profile.sitemap != nullptr) {
      const auto pit = prof_by_id.find(id);
      if (pit == prof_by_id.end()) {
        ++ts.unknown;
        continue;
      }
      const SiteRecord& prof = *pit->second;
      auto it = by_addr.find(prof.addr);
      if (it == by_addr.end()) {
        ++ts.mismatched;
        continue;
      }
      const SiteRecord& cur = (*sites)[it->second];
      if (cur.is_write != prof.is_write || cur.kind != prof.kind) {
        ++ts.mismatched;
        continue;
      }
      resolved.emplace_back(it->second, cycles);
    } else {
      if (id >= sites->size()) {
        ++ts.unknown;
        continue;
      }
      resolved.emplace_back(static_cast<size_t>(id), cycles);
    }
  }
  // Rank by cycles (site index breaks ties) so the hot prefix is a total
  // order — the map's iteration order never leaks into the result.
  std::sort(resolved.begin(), resolved.end(),
            [](const std::pair<size_t, uint64_t>& a, const std::pair<size_t, uint64_t>& b) {
              if (a.second != b.second) {
                return a.second > b.second;
              }
              return a.first < b.first;
            });
  uint64_t total = 0;
  for (const auto& [idx, cycles] : resolved) {
    (*sites)[idx].tier = Tier::kCold;
    total += cycles;
  }
  ts.cold = resolved.size();
  if (total > 0) {
    uint64_t cum = 0;
    for (const auto& [idx, cycles] : resolved) {
      if (cycles == 0) {
        break;  // the zero-cycle tail can never be hot
      }
      (*sites)[idx].tier = Tier::kHot;
      ++ts.hot;
      --ts.cold;
      cum += cycles;
      if (static_cast<double>(cum) >= hot_threshold * static_cast<double>(total)) {
        break;
      }
    }
  }
  return ts;
}

bool IsEliminable(const MemOperand& mem) {
  if (mem.has_index()) {
    return false;
  }
  // No index register, and the base (if any) provably stays >= 2 GiB away
  // from low-fat heap regions: absolute operands (|disp| < 2 GiB, region 0),
  // stack-relative (stack top is 16 GiB, heap starts at 32 GiB) and
  // rip-relative (code in the low 2 GiB).
  return !mem.has_base() || mem.base == Reg::kRsp || mem.base == Reg::kRip;
}

bool HasUnambiguousPointer(const MemOperand& mem) {
  return mem.has_base() && mem.base != Reg::kRsp && mem.base != Reg::kRip;
}

namespace {

struct RegSet {
  uint32_t bits = 0;
  void Add(Reg r) {
    if (IsGpr(r)) {
      bits |= 1u << RegIndex(r);
    }
  }
  bool Contains(Reg r) const { return IsGpr(r) && (bits & (1u << RegIndex(r))) != 0; }
};

bool OperandRegsUnmodified(const MemOperand& mem, const RegSet& written) {
  if (mem.has_base() && mem.base != Reg::kRip && written.Contains(mem.base)) {
    return false;
  }
  if (mem.has_index() && written.Contains(mem.index)) {
    return false;
  }
  return true;
}

// Merging key: operands sharing segment/base/index/scale and check kind are
// candidates for one union-range check (§6). rip-relative operands are
// excluded (their displacement is anchored per-instruction).
using MergeKey = std::tuple<uint8_t, uint8_t, uint8_t, uint8_t>;

MergeKey KeyOf(const PlannedCheck& c) {
  return MergeKey{static_cast<uint8_t>(c.mem.base), static_cast<uint8_t>(c.mem.index),
                  c.mem.scale_log2, static_cast<uint8_t>(c.kind)};
}

// A batch barrier: the instruction may free objects or change any register.
bool IsBatchBarrier(Op op) {
  return IsControlFlow(op) || op == Op::kHostCall || op == Op::kTrap;
}

// How many ranges to shard a per-instruction scan into. A few per worker
// balances skewed per-range costs; the range boundaries depend only on
// (n, jobs), and every sharded algorithm below is a prefix-sum or
// order-insensitive reduction, so results never depend on the schedule.
size_t ShardRanges(size_t n, const ThreadPool& pool) {
  return std::min<size_t>(static_cast<size_t>(pool.jobs()) * 4, n);
}

OperandClass ClassifyOne(const DisasmInsn& di, const RedFatOptions& opts,
                         size_t* mem_operands, size_t* considered) {
  if (!IsMemAccess(di.insn.op)) {
    return OperandClass::kNone;
  }
  ++*mem_operands;
  const bool is_write = IsMemWrite(di.insn.op);
  if (!(is_write ? opts.check_writes : opts.check_reads)) {
    return OperandClass::kFiltered;
  }
  ++*considered;
  if (IsEliminable(di.insn.mem)) {
    return OperandClass::kEliminable;
  }
  return HasUnambiguousPointer(di.insn.mem) ? OperandClass::kUnambiguous
                                            : OperandClass::kAmbiguous;
}

}  // namespace

std::vector<OperandClass> ClassifyOperands(const Disassembly& dis, const RedFatOptions& opts,
                                           PlanStats* stats, ThreadPool* pool) {
  const size_t n = dis.insns.size();
  std::vector<OperandClass> classes(n, OperandClass::kNone);
  if (pool != nullptr && pool->jobs() > 1 && n >= 1024) {
    const size_t ranges = ShardRanges(n, *pool);
    std::vector<size_t> mem_operands(ranges, 0);
    std::vector<size_t> considered(ranges, 0);
    pool->ParallelFor(ranges, [&](size_t r) {
      const size_t begin = r * n / ranges;
      const size_t end = (r + 1) * n / ranges;
      for (size_t i = begin; i < end; ++i) {
        classes[i] = ClassifyOne(dis.insns[i], opts, &mem_operands[r], &considered[r]);
      }
    });
    for (size_t r = 0; r < ranges; ++r) {
      stats->mem_operands += mem_operands[r];
      stats->considered += considered[r];
    }
    return classes;
  }
  for (size_t i = 0; i < n; ++i) {
    classes[i] = ClassifyOne(dis.insns[i], opts, &stats->mem_operands, &stats->considered);
  }
  return classes;
}

namespace {

// Phase-1 output of SelectSites for one instruction range: candidates with
// their check kinds decided but site ids unassigned.
struct RangeSelection {
  std::vector<SiteCandidate> candidates;
  size_t eliminated = 0;
  size_t redzone_dropped = 0;
};

void SelectSitesInRange(const Disassembly& dis, const std::vector<OperandClass>& classes,
                        const RedFatOptions& opts, const AllowList* allow, bool apply_elim,
                        size_t begin, size_t end, RangeSelection* out) {
  for (size_t i = begin; i < end; ++i) {
    switch (classes[i]) {
      case OperandClass::kNone:
      case OperandClass::kFiltered:
        continue;
      case OperandClass::kEliminable:
        if (apply_elim) {
          ++out->eliminated;
          continue;
        }
        break;
      case OperandClass::kAmbiguous:
      case OperandClass::kUnambiguous:
        break;
    }
    const DisasmInsn& di = dis.insns[i];
    const bool is_write = IsMemWrite(di.insn.op);

    // Decide the check kind (§3 "opportunistic hardening"). In profiling
    // mode, and in "full-on" mode (no allow-list given), every
    // unambiguous-pointer site gets the full check.
    CheckKind kind = CheckKind::kRedzoneOnly;
    if (opts.lowfat && classes[i] == OperandClass::kUnambiguous) {
      const bool allowed = opts.mode == RedFatOptions::Mode::kProfile || allow == nullptr ||
                           allow->Contains(di.addr);
      if (allowed) {
        kind = CheckKind::kFull;
      }
    }
    // The fast hardening tier (core/policy.h) leaves ambiguous sites bare:
    // only the (LowFat)-checkable population is instrumented.
    if (kind == CheckKind::kRedzoneOnly && !opts.redzone_only_sites) {
      ++out->redzone_dropped;
      continue;
    }
    SiteCandidate cand;
    cand.insn_index = i;
    cand.check.mem = di.insn.mem;
    cand.check.access_len = di.insn.mem.access_size();
    cand.check.kind = kind;
    cand.check.is_write = is_write;
    cand.check.anchor_next = di.end();
    out->candidates.push_back(std::move(cand));
  }
}

}  // namespace

std::vector<SiteCandidate> SelectSites(const Disassembly& dis,
                                       const std::vector<OperandClass>& classes,
                                       const RedFatOptions& opts, const AllowList* allow,
                                       bool apply_elim, PlanStats* stats,
                                       std::vector<SiteRecord>* sites, ThreadPool* pool) {
  REDFAT_CHECK(classes.size() == dis.insns.size());
  const size_t n = dis.insns.size();
  // Phase 1: discover candidates and decide kinds per instruction range.
  // The kind depends only on the instruction itself, not on the site id.
  std::vector<RangeSelection> selected(1);
  if (pool != nullptr && pool->jobs() > 1 && n >= 1024) {
    const size_t ranges = ShardRanges(n, *pool);
    selected.resize(ranges);
    pool->ParallelFor(ranges, [&](size_t r) {
      SelectSitesInRange(dis, classes, opts, allow, apply_elim, r * n / ranges,
                         (r + 1) * n / ranges, &selected[r]);
    });
  } else {
    SelectSitesInRange(dis, classes, opts, allow, apply_elim, 0, n, &selected[0]);
  }
  // Phase 2 (serial): assign sequential site ids in address order — ranges
  // are address-ordered, so concatenation numbers sites exactly like the
  // serial scan.
  std::vector<SiteCandidate> candidates;
  size_t total = 0;
  for (const RangeSelection& sel : selected) {
    total += sel.candidates.size();
  }
  candidates.reserve(total);
  sites->reserve(sites->size() + total);
  for (RangeSelection& sel : selected) {
    stats->eliminated += sel.eliminated;
    stats->redzone_dropped += sel.redzone_dropped;
    for (SiteCandidate& cand : sel.candidates) {
      const uint32_t site_id = static_cast<uint32_t>(sites->size());
      sites->push_back(SiteRecord{site_id, dis.insns[cand.insn_index].addr,
                                  cand.check.is_write, cand.check.kind});
      if (cand.check.kind == CheckKind::kFull) {
        ++stats->full_sites;
      } else {
        ++stats->redzone_sites;
      }
      cand.check.member_sites.push_back(site_id);
      candidates.push_back(std::move(cand));
    }
  }
  return candidates;
}

std::vector<PlannedTrampoline> SingletonTrampolines(const Disassembly& dis,
                                                    std::vector<SiteCandidate> candidates,
                                                    ThreadPool* pool) {
  std::vector<PlannedTrampoline> out(candidates.size());
  const auto fill_one = [&](size_t i) {
    SiteCandidate& cand = candidates[i];
    PlannedTrampoline& tramp = out[i];
    tramp.addr = dis.insns[cand.insn_index].addr;
    tramp.insn_index = cand.insn_index;
    tramp.checks.push_back(std::move(cand.check));
  };
  if (pool != nullptr && pool->jobs() > 1 && candidates.size() >= 1024) {
    pool->ParallelFor(candidates.size(), fill_one);
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      fill_one(i);
    }
  }
  return out;
}

namespace {

// The serial batching scan over the candidate sub-range [c_begin, c_end),
// starting the instruction walk at the first candidate's index. Batches
// never cross basic blocks and `written` only matters while a batch is
// open, so a scan started at a block-aligned candidate partition reproduces
// the corresponding slice of the full serial scan exactly.
std::vector<PlannedTrampoline> BatchCandidateRange(const Disassembly& dis, const CfgInfo& cfg,
                                                   std::vector<PlannedTrampoline>& singles,
                                                   size_t c_begin, size_t c_end) {
  std::vector<PlannedTrampoline> out;
  if (c_begin >= c_end) {
    return out;
  }
  PlannedTrampoline current;
  bool open = false;
  RegSet written;
  uint32_t current_block = 0;
  // Induction tracking for tiered (hot/cold) leaders: the constant offset
  // each register has accumulated since the leader via add/sub-immediate,
  // and whether the register's value is still leader-value + delta. Only
  // maintained while a tiered batch is open; with every tier kWarm the scan
  // below is exactly the pre-tiering algorithm.
  int64_t delta[kNumGprs] = {};
  bool delta_known[kNumGprs] = {};

  auto reset_deltas = [&]() {
    std::fill(delta, delta + kNumGprs, 0);
    std::fill(delta_known, delta_known + kNumGprs, true);
  };

  auto close = [&]() {
    if (open && !current.checks.empty()) {
      out.push_back(std::move(current));
    }
    current = PlannedTrampoline{};
    open = false;
    written = RegSet{};
  };

  // Rebase `check` so that evaluating it at the leader yields the address
  // the operand resolves to at its own instruction: every operand register
  // must have a known constant delta, and the shifted displacement must
  // still encode. Returns false (caller closes the batch) otherwise.
  auto try_fold = [&](PlannedCheck* check) {
    int64_t shift = 0;
    if (check->mem.has_base() && check->mem.base != Reg::kRip) {
      const size_t b = RegIndex(check->mem.base);
      if (!delta_known[b]) {
        return false;
      }
      shift += delta[b];
    }
    if (check->mem.has_index()) {
      const size_t x = RegIndex(check->mem.index);
      if (!delta_known[x]) {
        return false;
      }
      shift += delta[x] << check->mem.scale_log2;
    }
    const int64_t nd = static_cast<int64_t>(check->mem.disp) + shift;
    if (nd < INT32_MIN || nd > INT32_MAX) {
      return false;
    }
    check->mem.disp = static_cast<int32_t>(nd);
    return true;
  };

  size_t next = c_begin;
  const size_t first_insn = singles[c_begin].insn_index;
  std::vector<Reg> regs;
  for (size_t i = first_insn; i < dis.insns.size(); ++i) {
    if (next == c_end) {
      break;  // no candidates left; membership of the open batch is fixed
    }
    const DisasmInsn& di = dis.insns[i];
    if (i == first_insn || cfg.block_id[i] != current_block ||
        cfg.jump_targets.count(di.addr) != 0) {
      close();
      current_block = cfg.block_id[i];
    }

    if (next < c_end && singles[next].insn_index == i) {
      const Tier cand_tier = singles[next].tier;
      PlannedCheck check = std::move(singles[next].checks.front());
      ++next;
      if (open && !OperandRegsUnmodified(check.mem, written)) {
        const bool folded = current.tier != Tier::kWarm && !check.mem.rip_relative() &&
                            try_fold(&check);
        if (!folded) {
          close();
        }
      }
      if (!open) {
        current.addr = di.addr;
        current.insn_index = i;
        current.tier = cand_tier;
        open = true;
        written = RegSet{};  // relevant writes start at the leader
        reset_deltas();
      }
      current.checks.push_back(std::move(check));
    }

    RegsWritten(di.insn, &regs);
    for (Reg r : regs) {
      written.Add(r);
    }
    if (open && current.tier != Tier::kWarm) {
      if ((di.insn.op == Op::kAddRI || di.insn.op == Op::kSubRI) && IsGpr(di.insn.r0)) {
        const size_t r = RegIndex(di.insn.r0);
        delta[r] += di.insn.op == Op::kAddRI ? di.insn.imm : -di.insn.imm;
      } else {
        for (Reg r : regs) {
          if (IsGpr(r)) {
            delta_known[RegIndex(r)] = false;
          }
        }
      }
    }
    if (IsBatchBarrier(di.insn.op)) {
      close();
    }
  }
  close();
  return out;
}

}  // namespace

std::vector<PlannedTrampoline> BatchTrampolines(const Disassembly& dis, const CfgInfo& cfg,
                                                std::vector<PlannedTrampoline> singles,
                                                ThreadPool* pool) {
  if (pool == nullptr || pool->jobs() <= 1 || singles.size() < 1024) {
    return BatchCandidateRange(dis, cfg, singles, 0, singles.size());
  }
  // Partition the candidate list at basic-block changes: a batch never
  // crosses a block boundary, so batching each partition independently and
  // concatenating is byte-identical to the full serial scan. Partition
  // boundaries are derived from (candidate count, jobs) and the block ids —
  // never from the schedule.
  const size_t parts_target = ShardRanges(singles.size(), *pool);
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t p = 1; p < parts_target; ++p) {
    size_t idx = p * singles.size() / parts_target;
    while (idx < singles.size() &&
           cfg.block_id[singles[idx].insn_index] ==
               cfg.block_id[singles[idx - 1].insn_index]) {
      ++idx;
    }
    if (idx > bounds.back() && idx < singles.size()) {
      bounds.push_back(idx);
    }
  }
  bounds.push_back(singles.size());
  const size_t parts = bounds.size() - 1;
  std::vector<std::vector<PlannedTrampoline>> shards(parts);
  pool->ParallelFor(parts, [&](size_t p) {
    shards[p] = BatchCandidateRange(dis, cfg, singles, bounds[p], bounds[p + 1]);
  });
  std::vector<PlannedTrampoline> out;
  size_t total = 0;
  for (const std::vector<PlannedTrampoline>& shard : shards) {
    total += shard.size();
  }
  out.reserve(total);
  for (std::vector<PlannedTrampoline>& shard : shards) {
    for (PlannedTrampoline& tramp : shard) {
      out.push_back(std::move(tramp));
    }
  }
  return out;
}

void MergeTrampolineChecks(PlannedTrampoline* tramp) {
  std::map<MergeKey, std::vector<PlannedCheck>> groups;
  std::vector<PlannedCheck> keep;
  for (PlannedCheck& c : tramp->checks) {
    if (c.mem.rip_relative()) {
      keep.push_back(std::move(c));
    } else {
      groups[KeyOf(c)].push_back(std::move(c));
    }
  }
  std::vector<PlannedCheck> merged;
  for (auto& [key, list] : groups) {
    (void)key;
    // The merged range must be computed in 64 bits: disp is int32 and
    // access_len is uint32, so `disp + access_len` wraps through unsigned
    // arithmetic for negative displacements (e.g. rsp-relative checks that
    // survive --no-elim).
    int64_t lo = list.front().mem.disp;
    int64_t hi = lo + static_cast<int64_t>(list.front().access_len);
    for (size_t i = 1; i < list.size(); ++i) {
      const int64_t cl = list[i].mem.disp;
      const int64_t ch = cl + static_cast<int64_t>(list[i].access_len);
      lo = std::min(lo, cl);
      hi = std::max(hi, ch);
    }
    // Codegen narrows the merged access_len through int32, so INT32_MAX is
    // the widest span a single merged check can encode. Groups within the
    // bound merge exactly as before (member order preserved — output bytes
    // are unchanged for every previously-working plan); wider groups are
    // split by displacement into the fewest in-bound merged checks.
    if (hi - lo <= INT32_MAX) {
      PlannedCheck m = list.front();
      for (size_t i = 1; i < list.size(); ++i) {
        const PlannedCheck& c = list[i];
        m.is_write = m.is_write || c.is_write;
        m.member_sites.insert(m.member_sites.end(), c.member_sites.begin(),
                              c.member_sites.end());
      }
      m.mem.disp = static_cast<int32_t>(lo);
      m.access_len = static_cast<uint32_t>(hi - lo);
      merged.push_back(std::move(m));
      continue;
    }
    std::stable_sort(list.begin(), list.end(),
                     [](const PlannedCheck& a, const PlannedCheck& b) {
                       return a.mem.disp < b.mem.disp;
                     });
    size_t i = 0;
    while (i < list.size()) {
      PlannedCheck m = std::move(list[i]);
      int64_t slo = m.mem.disp;
      int64_t shi = slo + static_cast<int64_t>(m.access_len);
      size_t j = i + 1;
      for (; j < list.size(); ++j) {
        const PlannedCheck& c = list[j];
        const int64_t ch =
            static_cast<int64_t>(c.mem.disp) + static_cast<int64_t>(c.access_len);
        if (ch - slo > INT32_MAX) {
          break;
        }
        shi = std::max(shi, ch);
        m.is_write = m.is_write || c.is_write;
        m.member_sites.insert(m.member_sites.end(), c.member_sites.begin(),
                              c.member_sites.end());
      }
      m.mem.disp = static_cast<int32_t>(slo);
      m.access_len = static_cast<uint32_t>(shi - slo);
      merged.push_back(std::move(m));
      i = j;
    }
  }
  tramp->checks.clear();
  for (auto& c : merged) {
    tramp->checks.push_back(std::move(c));
  }
  for (auto& c : keep) {
    tramp->checks.push_back(std::move(c));
  }
}

InstrumentPlan BuildPlan(const Disassembly& dis, const CfgInfo& cfg, const RedFatOptions& opts,
                         const AllowList* allow) {
  InstrumentPlan plan;
  const std::vector<OperandClass> classes = ClassifyOperands(dis, opts, &plan.stats);
  std::vector<SiteCandidate> candidates =
      SelectSites(dis, classes, opts, allow, opts.elim, &plan.stats, &plan.sites);
  plan.trampolines = SingletonTrampolines(dis, std::move(candidates));
  if (opts.batch) {
    plan.trampolines = BatchTrampolines(dis, cfg, std::move(plan.trampolines));
  }
  for (PlannedTrampoline& tramp : plan.trampolines) {
    if (opts.merge) {
      MergeTrampolineChecks(&tramp);
    }
    plan.stats.checks_emitted += tramp.checks.size();
  }
  plan.stats.trampolines = plan.trampolines.size();
  return plan;
}

}  // namespace redfat
