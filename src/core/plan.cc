#include "src/core/plan.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/support/check.h"

namespace redfat {

bool IsEliminable(const MemOperand& mem) {
  if (mem.has_index()) {
    return false;
  }
  // No index register, and the base (if any) provably stays >= 2 GiB away
  // from low-fat heap regions: absolute operands (|disp| < 2 GiB, region 0),
  // stack-relative (stack top is 16 GiB, heap starts at 32 GiB) and
  // rip-relative (code in the low 2 GiB).
  return !mem.has_base() || mem.base == Reg::kRsp || mem.base == Reg::kRip;
}

bool HasUnambiguousPointer(const MemOperand& mem) {
  return mem.has_base() && mem.base != Reg::kRsp && mem.base != Reg::kRip;
}

namespace {

struct RegSet {
  uint32_t bits = 0;
  void Add(Reg r) {
    if (IsGpr(r)) {
      bits |= 1u << RegIndex(r);
    }
  }
  bool Contains(Reg r) const { return IsGpr(r) && (bits & (1u << RegIndex(r))) != 0; }
};

bool OperandRegsUnmodified(const MemOperand& mem, const RegSet& written) {
  if (mem.has_base() && mem.base != Reg::kRip && written.Contains(mem.base)) {
    return false;
  }
  if (mem.has_index() && written.Contains(mem.index)) {
    return false;
  }
  return true;
}

// Merging key: operands sharing segment/base/index/scale and check kind are
// candidates for one union-range check (§6). rip-relative operands are
// excluded (their displacement is anchored per-instruction).
using MergeKey = std::tuple<uint8_t, uint8_t, uint8_t, uint8_t>;

MergeKey KeyOf(const PlannedCheck& c) {
  return MergeKey{static_cast<uint8_t>(c.mem.base), static_cast<uint8_t>(c.mem.index),
                  c.mem.scale_log2, static_cast<uint8_t>(c.kind)};
}

// A batch barrier: the instruction may free objects or change any register.
bool IsBatchBarrier(Op op) {
  return IsControlFlow(op) || op == Op::kHostCall || op == Op::kTrap;
}

}  // namespace

std::vector<OperandClass> ClassifyOperands(const Disassembly& dis, const RedFatOptions& opts,
                                           PlanStats* stats) {
  std::vector<OperandClass> classes(dis.insns.size(), OperandClass::kNone);
  for (size_t i = 0; i < dis.insns.size(); ++i) {
    const DisasmInsn& di = dis.insns[i];
    if (!IsMemAccess(di.insn.op)) {
      continue;
    }
    ++stats->mem_operands;
    const bool is_write = IsMemWrite(di.insn.op);
    if (!(is_write ? opts.check_writes : opts.check_reads)) {
      classes[i] = OperandClass::kFiltered;
      continue;
    }
    ++stats->considered;
    if (IsEliminable(di.insn.mem)) {
      classes[i] = OperandClass::kEliminable;
    } else if (HasUnambiguousPointer(di.insn.mem)) {
      classes[i] = OperandClass::kUnambiguous;
    } else {
      classes[i] = OperandClass::kAmbiguous;
    }
  }
  return classes;
}

std::vector<SiteCandidate> SelectSites(const Disassembly& dis,
                                       const std::vector<OperandClass>& classes,
                                       const RedFatOptions& opts, const AllowList* allow,
                                       bool apply_elim, PlanStats* stats,
                                       std::vector<SiteRecord>* sites) {
  REDFAT_CHECK(classes.size() == dis.insns.size());
  std::vector<SiteCandidate> candidates;
  for (size_t i = 0; i < dis.insns.size(); ++i) {
    switch (classes[i]) {
      case OperandClass::kNone:
      case OperandClass::kFiltered:
        continue;
      case OperandClass::kEliminable:
        if (apply_elim) {
          ++stats->eliminated;
          continue;
        }
        break;
      case OperandClass::kAmbiguous:
      case OperandClass::kUnambiguous:
        break;
    }
    const DisasmInsn& di = dis.insns[i];
    const bool is_write = IsMemWrite(di.insn.op);

    // Decide the check kind (§3 "opportunistic hardening"). In profiling
    // mode, and in "full-on" mode (no allow-list given), every
    // unambiguous-pointer site gets the full check.
    CheckKind kind = CheckKind::kRedzoneOnly;
    if (opts.lowfat && classes[i] == OperandClass::kUnambiguous) {
      const bool allowed = opts.mode == RedFatOptions::Mode::kProfile || allow == nullptr ||
                           allow->Contains(di.addr);
      if (allowed) {
        kind = CheckKind::kFull;
      }
    }
    const uint32_t site_id = static_cast<uint32_t>(sites->size());
    sites->push_back(SiteRecord{site_id, di.addr, is_write, kind});
    if (kind == CheckKind::kFull) {
      ++stats->full_sites;
    } else {
      ++stats->redzone_sites;
    }

    SiteCandidate cand;
    cand.insn_index = i;
    cand.check.mem = di.insn.mem;
    cand.check.access_len = di.insn.mem.access_size();
    cand.check.kind = kind;
    cand.check.is_write = is_write;
    cand.check.member_sites.push_back(site_id);
    cand.check.anchor_next = di.end();
    candidates.push_back(std::move(cand));
  }
  return candidates;
}

std::vector<PlannedTrampoline> SingletonTrampolines(const Disassembly& dis,
                                                    std::vector<SiteCandidate> candidates) {
  std::vector<PlannedTrampoline> out;
  out.reserve(candidates.size());
  for (SiteCandidate& cand : candidates) {
    PlannedTrampoline tramp;
    tramp.addr = dis.insns[cand.insn_index].addr;
    tramp.insn_index = cand.insn_index;
    tramp.checks.push_back(std::move(cand.check));
    out.push_back(std::move(tramp));
  }
  return out;
}

std::vector<PlannedTrampoline> BatchTrampolines(const Disassembly& dis, const CfgInfo& cfg,
                                                std::vector<PlannedTrampoline> singles) {
  std::vector<PlannedTrampoline> out;
  PlannedTrampoline current;
  bool open = false;
  RegSet written;
  uint32_t current_block = 0;

  auto close = [&]() {
    if (open && !current.checks.empty()) {
      out.push_back(std::move(current));
    }
    current = PlannedTrampoline{};
    open = false;
    written = RegSet{};
  };

  size_t next = 0;
  std::vector<Reg> regs;
  for (size_t i = 0; i < dis.insns.size(); ++i) {
    if (next == singles.size()) {
      break;  // no candidates left; membership of the open batch is fixed
    }
    const DisasmInsn& di = dis.insns[i];
    if (i == 0 || cfg.block_id[i] != current_block || cfg.jump_targets.count(di.addr) != 0) {
      close();
      current_block = cfg.block_id[i];
    }

    if (next < singles.size() && singles[next].insn_index == i) {
      PlannedCheck check = std::move(singles[next].checks.front());
      ++next;
      if (open && !OperandRegsUnmodified(check.mem, written)) {
        close();
      }
      if (!open) {
        current.addr = di.addr;
        current.insn_index = i;
        open = true;
        written = RegSet{};  // relevant writes start at the leader
      }
      current.checks.push_back(std::move(check));
    }

    RegsWritten(di.insn, &regs);
    for (Reg r : regs) {
      written.Add(r);
    }
    if (IsBatchBarrier(di.insn.op)) {
      close();
    }
  }
  close();
  return out;
}

void MergeTrampolineChecks(PlannedTrampoline* tramp) {
  std::map<MergeKey, std::vector<PlannedCheck>> groups;
  std::vector<PlannedCheck> keep;
  for (PlannedCheck& c : tramp->checks) {
    if (c.mem.rip_relative()) {
      keep.push_back(std::move(c));
    } else {
      groups[KeyOf(c)].push_back(std::move(c));
    }
  }
  std::vector<PlannedCheck> merged;
  for (auto& [key, list] : groups) {
    (void)key;
    PlannedCheck m = list.front();
    int64_t lo = m.mem.disp;
    int64_t hi = m.mem.disp + m.access_len;
    for (size_t i = 1; i < list.size(); ++i) {
      const PlannedCheck& c = list[i];
      lo = std::min<int64_t>(lo, c.mem.disp);
      hi = std::max<int64_t>(hi, c.mem.disp + c.access_len);
      m.is_write = m.is_write || c.is_write;
      m.member_sites.insert(m.member_sites.end(), c.member_sites.begin(),
                            c.member_sites.end());
    }
    REDFAT_CHECK(lo >= INT32_MIN && hi - lo <= UINT32_MAX);
    m.mem.disp = static_cast<int32_t>(lo);
    m.access_len = static_cast<uint32_t>(hi - lo);
    merged.push_back(std::move(m));
  }
  tramp->checks.clear();
  for (auto& c : merged) {
    tramp->checks.push_back(std::move(c));
  }
  for (auto& c : keep) {
    tramp->checks.push_back(std::move(c));
  }
}

InstrumentPlan BuildPlan(const Disassembly& dis, const CfgInfo& cfg, const RedFatOptions& opts,
                         const AllowList* allow) {
  InstrumentPlan plan;
  const std::vector<OperandClass> classes = ClassifyOperands(dis, opts, &plan.stats);
  std::vector<SiteCandidate> candidates =
      SelectSites(dis, classes, opts, allow, opts.elim, &plan.stats, &plan.sites);
  plan.trampolines = SingletonTrampolines(dis, std::move(candidates));
  if (opts.batch) {
    plan.trampolines = BatchTrampolines(dis, cfg, std::move(plan.trampolines));
  }
  for (PlannedTrampoline& tramp : plan.trampolines) {
    if (opts.merge) {
      MergeTrampolineChecks(&tramp);
    }
    plan.stats.checks_emitted += tramp.checks.size();
  }
  plan.stats.trampolines = plan.trampolines.size();
  return plan;
}

}  // namespace redfat
