// DaemonClient: the `redfat --connect=SOCK` side of the wire protocol.
// Thin and synchronous — one connected socket, one outstanding request.
// Connection failure is surfaced eagerly from Connect() so the CLI can fall
// back to in-process rewriting without having built a request first.
#ifndef REDFAT_SRC_SERVE_CLIENT_H_
#define REDFAT_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/serve/fingerprint.h"
#include "src/support/result.h"

namespace redfat {

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  // Fails fast when no daemon is listening on `socket_path`.
  Status Connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void Close();

  struct RewriteReply {
    CacheKey key;
    bool cache_hit = false;
    bool incremental_retier = false;
    std::vector<uint8_t> image_bytes;
    std::string sitemap;
  };

  // `image_bytes` are raw serialized RFBIN bytes; `profile_json` may be
  // empty (no tiering). `opts` is canonicalized on the wire via
  // CanonicalOptionsBlob, so client and daemon agree on the fingerprint.
  Result<RewriteReply> Rewrite(const std::vector<uint8_t>& image_bytes,
                               const RedFatOptions& opts,
                               const std::string& profile_json);

  Result<RewriteReply> UploadProfile(uint64_t image_hash, const RedFatOptions& opts,
                                     const std::string& profile_json);

  Result<RewriteReply> FetchArtifact(const CacheKey& key);

  Result<std::string> Stats();

  // Asks the daemon to stop serving. The daemon acknowledges before it
  // begins winding down.
  Status Shutdown();

 private:
  // Sends one frame and decodes the kOk/kError reply; a kError reply is
  // surfaced as "daemon error N: message".
  Result<RewriteReply> RoundTrip(uint8_t type, const std::vector<uint8_t>& body);

  int fd_ = -1;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SERVE_CLIENT_H_
