#include "src/serve/cache.h"

namespace redfat {

bool ArtifactCache::Lookup(const CacheKey& key, CachedArtifact* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || !it->second->artifact.has_artifact()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (out != nullptr) {
    *out = it->second->artifact;
  }
  return true;
}

std::shared_ptr<void> ArtifactCache::LookupRetained(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->retained == nullptr) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->retained;
}

void ArtifactCache::Insert(const CacheKey& key, CachedArtifact artifact,
                           std::shared_ptr<void> retained, uint64_t retained_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t charge = artifact.image_bytes.size() + artifact.sitemap.size() +
                          (retained != nullptr ? retained_bytes : 0);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place (e.g. a lost insert race, or an analysis-only base
    // entry gaining its artifact). Keep an existing retained handle when
    // the new insert does not bring one.
    Entry& e = *it->second;
    bytes_ -= e.charged_bytes;
    e.artifact = std::move(artifact);
    if (retained != nullptr) {
      e.retained = std::move(retained);
    }
    e.charged_bytes = e.artifact.image_bytes.size() + e.artifact.sitemap.size() +
                      (e.retained != nullptr ? retained_bytes : 0);
    bytes_ += e.charged_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(artifact), std::move(retained), charge});
    index_[key] = lru_.begin();
    bytes_ += charge;
  }
  ++insertions_;
  EvictOverBudgetLocked(key);
}

void ArtifactCache::EvictOverBudgetLocked(const CacheKey& keep) {
  if (budget_ == 0) {
    return;
  }
  while (bytes_ > budget_ && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    if (victim->key == keep) {
      // The just-inserted entry is all that is left; an over-budget single
      // entry stays resident (the budget bounds steady state, it does not
      // make oversized requests unservable).
      break;
    }
    bytes_ -= victim->charged_bytes;
    index_.erase(victim->key);
    lru_.erase(victim);
    ++evictions_;
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArtifactCacheStats s;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget = budget_;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  return s;
}

}  // namespace redfat
