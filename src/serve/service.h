// RewriteService: the daemon's engine, independent of any transport.
//
// One service instance owns
//   * a warm ThreadPool shared by every request's pipeline run (no
//     per-request pool respawn: Pipeline::Run uses the injected pool),
//   * the content-addressed artifact cache (serve/cache.h), and
//   * a TelemetryRegistry receiving per-request latency and queue-depth
//     distributions (`serve.request_latency_cycles`, `serve.queue_depth` —
//     the PR 7 histogram cells, so p50/p90/p99 come straight out of the
//     stats snapshot).
//
// Request flow:
//   Rewrite(image, opts, profile_json):
//     key = (fnv(image), OptionsFingerprint(opts), fingerprint(profile))
//     cache hit                 -> return the cached artifact untouched
//     miss, no profile          -> full pipeline run; capture the post-group
//                                  PipelineCheckpoint; store artifact +
//                                  warm analysis under the (base) key
//     miss, profile, warm base  -> INCREMENTAL RE-TIER: restore the base
//                                  entry's checkpoint into its retained
//                                  context and re-enter the pipeline at the
//                                  tier pass (tier..patch only)
//     miss, profile, cold       -> full tiered pipeline run; the
//                                  profile-independent analysis is still
//                                  deposited under the base key
//   UploadProfile(image_hash, opts, profile_json): the re-tier path without
//     shipping the image again — fails kNotFound when the daemon holds no
//     warm analysis for the base key.
//
// Byte identity is the hard contract: every cell (hit, miss, re-tier) must
// produce images cmp-identical to the offline `redfat` run with the same
// flags. The incremental path preserves it because the checkpoint is
// captured *before* the tier pass, where the context state is a pure
// function of (image, options) — the profile only ever feeds the passes
// that re-run.
#ifndef REDFAT_SRC_SERVE_SERVICE_H_
#define REDFAT_SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/bin/image.h"
#include "src/core/pipeline.h"
#include "src/serve/cache.h"
#include "src/serve/fingerprint.h"
#include "src/support/parallel.h"
#include "src/support/telemetry.h"

namespace redfat {

// Monotonic cycle counter for request-latency histograms (TSC on x86-64,
// steady-clock nanoseconds elsewhere).
uint64_t HostCycleNow();

// Parses a `--metrics` snapshot JSON into a tier profile: image-0 sites
// only, cycles = trampoline + inline-check cycles (the same join
// `redfat --profile=FILE` applies).
Result<TierProfile> TierProfileFromSnapshotJson(const std::string& json);

// The fingerprint the service actually keys its cache with: transport-only
// knobs (--jobs, the profile pointer) normalized away so they never split
// entries for byte-identical outputs. `redfat --print-cache-key` prints this.
uint64_t CacheOptionsFingerprint(const RedFatOptions& opts);

class RewriteService {
 public:
  struct Config {
    unsigned jobs = 1;            // warm pool width (0 = hardware threads)
    uint64_t cache_bytes = 256ull << 20;  // LRU budget; 0 = unbounded
  };

  explicit RewriteService(const Config& config);
  ~RewriteService();

  struct Outcome {
    CacheKey key;
    bool cache_hit = false;           // served without touching the pipeline
    bool incremental_retier = false;  // tier..patch re-entry on warm analysis
    std::vector<uint8_t> image_bytes;
    std::string sitemap;
  };

  // `image_bytes` are the raw serialized RFBIN bytes as sent by the client
  // (hashed as-is). `profile_json` may be empty (no tiering).
  Result<Outcome> Rewrite(const std::vector<uint8_t>& image_bytes,
                          const RedFatOptions& opts, const std::string& profile_json);

  // Re-tiers the already-cached image identified by (image_hash, opts).
  Result<Outcome> UploadProfile(uint64_t image_hash, const RedFatOptions& opts,
                                const std::string& profile_json);

  // Cache-only lookup; never computes.
  Result<Outcome> FetchArtifact(const CacheKey& key);

  // One-line JSON: request counters, cache occupancy, and latency /
  // queue-depth percentiles, plus the full telemetry snapshot nested under
  // "telemetry".
  std::string StatsJson() const;

  ThreadPool& pool() { return pool_; }
  TelemetryRegistry& telemetry() { return telemetry_; }
  const ArtifactCache& cache() const { return cache_; }

 private:
  // Warm per-image analysis state retained with a base cache entry. The
  // context references `input`, which the entry owns; `mu` serializes
  // re-tier re-entries on the shared context.
  struct AnalysisEntry {
    BinaryImage input;
    std::unique_ptr<PipelineContext> ctx;
    PipelineCheckpoint checkpoint;
    uint64_t approx_bytes = 0;
    std::mutex mu;
  };

  class RequestScope;  // RAII latency/queue-depth recorder

  Result<Outcome> RewriteMiss(const CacheKey& key, std::vector<uint8_t> image_bytes,
                              const RedFatOptions& opts, const TierProfile* profile);
  Result<Outcome> Retier(const CacheKey& key, const std::shared_ptr<AnalysisEntry>& entry,
                         const RedFatOptions& opts, const TierProfile& profile);

  ThreadPool pool_;
  ArtifactCache cache_;
  TelemetryRegistry telemetry_;

  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> full_rewrites_{0};
  std::atomic<uint64_t> retiers_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace redfat

#endif  // REDFAT_SRC_SERVE_SERVICE_H_
