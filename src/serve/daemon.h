// redfatd's transport: a Unix-domain stream-socket server in front of a
// RewriteService. One handler thread per accepted connection; a connection
// carries any number of framed requests (serve/protocol.h). The service
// layer owns all heavy state (warm pool, caches, telemetry); the daemon
// only frames/unframes and maps service errors onto wire error codes.
#ifndef REDFAT_SRC_SERVE_DAEMON_H_
#define REDFAT_SRC_SERVE_DAEMON_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/service.h"
#include "src/support/result.h"

namespace redfat {

class Daemon {
 public:
  struct Config {
    std::string socket_path;
    RewriteService::Config service;
  };

  explicit Daemon(const Config& config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Binds the socket (fails if a live daemon already owns it). Must be
  // called before Serve().
  Status Listen();

  // Blocking accept loop; returns after a shutdown request (or Stop()).
  // Joins all connection handlers before returning and unlinks the socket.
  Status Serve();

  // Signals the accept loop to stop (callable from any thread / a signal
  // handler path via self-connect).
  void Stop();

  RewriteService& service() { return *service_; }
  const std::string& socket_path() const { return config_.socket_path; }

 private:
  void HandleConnection(int fd);
  // True = keep the connection open for more requests.
  bool HandleFrame(int fd, const struct Frame& frame);

  Config config_;
  std::unique_ptr<RewriteService> service_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> handlers_;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SERVE_DAEMON_H_
