// The redfatd wire protocol: length-prefixed binary frames over a
// Unix-domain stream socket.
//
// Every message is one frame:
//
//   u32  magic   'RFD1' (0x31444652 little-endian)
//   u32  length  payload bytes that follow (bounded by kMaxFramePayload)
//   u8   type    MsgType
//   ...  body    type-specific fields, in order
//
// Body fields use fixed-width little-endian integers and u32-length-prefixed
// byte strings ("blobs"). Requests and their kOk reply bodies:
//
//   kRewrite        opts_blob, profile_json (may be empty), image_bytes
//                -> u8 flags (bit0 cache hit, bit1 incremental re-tier),
//                   u64 image_hash, u64 options_fp, u64 profile_fp,
//                   image_bytes, sitemap_text
//   kUploadProfile  u64 image_hash, opts_blob, profile_json
//                -> same reply body as kRewrite
//   kFetchArtifact  u64 image_hash, u64 options_fp, u64 profile_fp
//                -> same reply body as kRewrite (flags bit0 always set)
//   kStats          (empty) -> json_text
//   kShutdown       (empty) -> (empty); the daemon then stops serving
//
// Errors come back as kError frames: u32 code (WireError) + message text.
// A connection that sends an unframeable byte stream (bad magic, oversized
// length, truncated frame) gets a kError/kMalformedFrame reply when one can
// still be written, and the connection is closed; well-framed but invalid
// requests keep the connection open.
#ifndef REDFAT_SRC_SERVE_PROTOCOL_H_
#define REDFAT_SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace redfat {

inline constexpr uint32_t kFrameMagic = 0x31444652;  // "RFD1"
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class MsgType : uint8_t {
  kRewrite = 1,
  kUploadProfile = 2,
  kFetchArtifact = 3,
  kStats = 4,
  kShutdown = 5,
  kOk = 128,
  kError = 129,
};

enum class WireError : uint32_t {
  kMalformedFrame = 1,   // framing/parse failure; connection will close
  kBadRequest = 2,       // well-framed but semantically invalid
  kNotFound = 3,         // fetch/upload-profile for an unknown cache key
  kRewriteFailed = 4,    // the pipeline rejected the image
  kInternal = 5,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<uint8_t> body;
};

// --- body builders/parsers -------------------------------------------------

void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);
// u32 length + raw bytes.
void PutBlob(std::vector<uint8_t>* out, const uint8_t* data, size_t len);
void PutBlob(std::vector<uint8_t>* out, const std::vector<uint8_t>& bytes);
void PutBlob(std::vector<uint8_t>* out, const std::string& text);

// Bounds-checked forward cursor over a frame body. Every getter fails
// (rather than reading past the end) on truncated input; Done() is true
// only when the body was consumed exactly.
class BodyReader {
 public:
  explicit BodyReader(const std::vector<uint8_t>& body) : body_(body) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<std::vector<uint8_t>> Blob();
  Result<std::string> Str();
  // The unread remainder of the body (used for trailing image payloads).
  std::vector<uint8_t> Rest();

  bool Done() const { return pos_ == body_.size(); }

 private:
  const std::vector<uint8_t>& body_;
  size_t pos_ = 0;
};

// --- framed socket I/O -----------------------------------------------------

// Blocking full-frame read/write on a connected stream socket. ReadFrame
// returns an error for EOF, bad magic, oversized length, or short reads;
// both retry EINTR internally.
Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& body);
Result<Frame> ReadFrame(int fd);

// --- Unix-domain socket helpers --------------------------------------------

// Binds and listens on `path`. An existing socket file that still accepts
// connections is an error ("daemon already running"); a stale one is
// unlinked and replaced.
Result<int> ListenUnix(const std::string& path);

// Connects to a listening daemon; fails fast when none is up.
Result<int> ConnectUnix(const std::string& path);

}  // namespace redfat

#endif  // REDFAT_SRC_SERVE_PROTOCOL_H_
