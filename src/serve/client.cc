#include "src/serve/client.h"

#include <unistd.h>

#include "src/serve/protocol.h"
#include "src/support/str.h"

namespace redfat {

namespace {

Result<DaemonClient::RewriteReply> ParseRewriteReply(const Frame& frame) {
  BodyReader r(frame.body);
  Result<uint8_t> flags = r.U8();
  if (!flags.ok()) {
    return Error(flags.error());
  }
  DaemonClient::RewriteReply reply;
  reply.cache_hit = (flags.value() & 1) != 0;
  reply.incremental_retier = (flags.value() & 2) != 0;
  uint64_t* fields[3] = {&reply.key.image_hash, &reply.key.options_fp,
                         &reply.key.profile_fp};
  for (uint64_t* field : fields) {
    Result<uint64_t> v = r.U64();
    if (!v.ok()) {
      return Error(v.error());
    }
    *field = v.value();
  }
  Result<std::vector<uint8_t>> image = r.Blob();
  if (!image.ok()) {
    return Error(image.error());
  }
  Result<std::string> sitemap = r.Str();
  if (!sitemap.ok()) {
    return Error(sitemap.error());
  }
  if (!r.Done()) {
    return Error("reply: trailing bytes");
  }
  reply.image_bytes = std::move(image.value());
  reply.sitemap = std::move(sitemap.value());
  return reply;
}

// Decodes a kError frame into a readable message.
std::string DecodeWireError(const Frame& frame) {
  BodyReader r(frame.body);
  Result<uint32_t> code = r.U32();
  Result<std::string> message = code.ok() ? r.Str() : Error(code.error());
  if (!message.ok()) {
    return "daemon error (undecodable)";
  }
  return StrFormat("daemon error %u: %s", code.value(), message.value().c_str());
}

}  // namespace

DaemonClient::~DaemonClient() { Close(); }

Status DaemonClient::Connect(const std::string& socket_path) {
  Close();
  Result<int> fd = ConnectUnix(socket_path);
  if (!fd.ok()) {
    return Error(fd.error());
  }
  fd_ = fd.value();
  return Status::Ok();
}

void DaemonClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<DaemonClient::RewriteReply> DaemonClient::RoundTrip(
    uint8_t type, const std::vector<uint8_t>& body) {
  if (fd_ < 0) {
    return Error("client: not connected");
  }
  Status w = WriteFrame(fd_, static_cast<MsgType>(type), body);
  if (!w.ok()) {
    return Error(w.error());
  }
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) {
    return Error(reply.error());
  }
  if (reply.value().type == MsgType::kError) {
    return Error(DecodeWireError(reply.value()));
  }
  if (reply.value().type != MsgType::kOk) {
    return Error("reply: unexpected frame type");
  }
  return ParseRewriteReply(reply.value());
}

Result<DaemonClient::RewriteReply> DaemonClient::Rewrite(
    const std::vector<uint8_t>& image_bytes, const RedFatOptions& opts,
    const std::string& profile_json) {
  std::vector<uint8_t> body;
  PutBlob(&body, CanonicalOptionsBlob(opts));
  PutBlob(&body, profile_json);
  body.insert(body.end(), image_bytes.begin(), image_bytes.end());
  return RoundTrip(static_cast<uint8_t>(MsgType::kRewrite), body);
}

Result<DaemonClient::RewriteReply> DaemonClient::UploadProfile(
    uint64_t image_hash, const RedFatOptions& opts, const std::string& profile_json) {
  std::vector<uint8_t> body;
  PutU64(&body, image_hash);
  PutBlob(&body, CanonicalOptionsBlob(opts));
  PutBlob(&body, profile_json);
  return RoundTrip(static_cast<uint8_t>(MsgType::kUploadProfile), body);
}

Result<DaemonClient::RewriteReply> DaemonClient::FetchArtifact(const CacheKey& key) {
  std::vector<uint8_t> body;
  PutU64(&body, key.image_hash);
  PutU64(&body, key.options_fp);
  PutU64(&body, key.profile_fp);
  return RoundTrip(static_cast<uint8_t>(MsgType::kFetchArtifact), body);
}

Result<std::string> DaemonClient::Stats() {
  if (fd_ < 0) {
    return Error("client: not connected");
  }
  Status w = WriteFrame(fd_, MsgType::kStats, {});
  if (!w.ok()) {
    return Error(w.error());
  }
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) {
    return Error(reply.error());
  }
  if (reply.value().type == MsgType::kError) {
    return Error(DecodeWireError(reply.value()));
  }
  BodyReader r(reply.value().body);
  Result<std::string> json = r.Str();
  if (!json.ok()) {
    return Error(json.error());
  }
  return json.value();
}

Status DaemonClient::Shutdown() {
  if (fd_ < 0) {
    return Error("client: not connected");
  }
  Status w = WriteFrame(fd_, MsgType::kShutdown, {});
  if (!w.ok()) {
    return w;
  }
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) {
    return Error(reply.error());
  }
  if (reply.value().type != MsgType::kOk) {
    return Error("shutdown: unexpected reply");
  }
  return Status::Ok();
}

}  // namespace redfat
