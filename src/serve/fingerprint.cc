#include "src/serve/fingerprint.h"

#include <algorithm>
#include <cstring>

#include "src/support/str.h"

namespace redfat {

// If this fires, a field was added to (or removed from) RedFatOptions:
// extend CanonicalOptionsBlob/OptionsFromBlob below, bump kOptionsBlobVersion,
// and add the field to the perturbation list in tests/daemon_test.cc. The
// whole point of the fingerprint is that *every* field lands in the hash —
// a field the blob misses would alias two different configurations onto one
// cache key and serve stale images.
static_assert(sizeof(RedFatOptions) == 48,
              "RedFatOptions changed: update CanonicalOptionsBlob, bump "
              "kOptionsBlobVersion, and extend the fingerprint unit test");

namespace {

constexpr uint8_t kOptionsBlobVersion = 1;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t len, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<uint8_t> CanonicalOptionsBlob(const RedFatOptions& o) {
  std::vector<uint8_t> b;
  b.reserve(40);
  PutU8(&b, kOptionsBlobVersion);
  PutU8(&b, o.check_reads ? 1 : 0);
  PutU8(&b, o.check_writes ? 1 : 0);
  PutU8(&b, static_cast<uint8_t>(o.redzone_impl));
  PutU8(&b, o.lowfat ? 1 : 0);
  PutU8(&b, o.size_hardening ? 1 : 0);
  PutU8(&b, o.redzone_only_sites ? 1 : 0);
  PutU8(&b, o.merged_ub ? 1 : 0);
  PutU8(&b, o.elim ? 1 : 0);
  PutU8(&b, o.batch ? 1 : 0);
  PutU8(&b, o.merge ? 1 : 0);
  PutU8(&b, o.clobber_analysis ? 1 : 0);
  PutU32(&b, o.jobs);
  PutU8(&b, static_cast<uint8_t>(o.mode));
  PutU64(&b, o.trampoline_base);
  PutU8(&b, o.tier_profile != nullptr ? 1 : 0);
  PutF64(&b, o.hot_threshold);
  return b;
}

Result<RedFatOptions> OptionsFromBlob(const std::vector<uint8_t>& b) {
  // 1 version + 11 flag bytes + 4 jobs + 1 mode + 8 base + 1 profile flag +
  // 8 threshold.
  constexpr size_t kBlobLen = 34;
  if (b.size() != kBlobLen) {
    return Error(StrFormat("options blob: expected %zu bytes, got %zu", kBlobLen,
                           b.size()));
  }
  if (b[0] != kOptionsBlobVersion) {
    return Error(StrFormat("options blob: unknown version %u", b[0]));
  }
  const auto u32_at = [&](size_t at) {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | b[at + static_cast<size_t>(i)];
    }
    return v;
  };
  const auto u64_at = [&](size_t at) {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | b[at + static_cast<size_t>(i)];
    }
    return v;
  };
  RedFatOptions o;
  o.check_reads = b[1] != 0;
  o.check_writes = b[2] != 0;
  if (b[3] > static_cast<uint8_t>(RedzoneImpl::kShadow)) {
    return Error("options blob: bad redzone_impl");
  }
  o.redzone_impl = static_cast<RedzoneImpl>(b[3]);
  o.lowfat = b[4] != 0;
  o.size_hardening = b[5] != 0;
  o.redzone_only_sites = b[6] != 0;
  o.merged_ub = b[7] != 0;
  o.elim = b[8] != 0;
  o.batch = b[9] != 0;
  o.merge = b[10] != 0;
  o.clobber_analysis = b[11] != 0;
  o.jobs = u32_at(12);
  if (b[16] > static_cast<uint8_t>(RedFatOptions::Mode::kProfile)) {
    return Error("options blob: bad mode");
  }
  o.mode = static_cast<RedFatOptions::Mode>(b[16]);
  o.trampoline_base = u64_at(17);
  // b[25]: tier-profile-attached flag. The pointee never crosses the wire;
  // the daemon re-attaches the profile it received separately.
  o.tier_profile = nullptr;
  uint64_t bits = u64_at(26);
  std::memcpy(&o.hot_threshold, &bits, sizeof(bits));
  return o;
}

uint64_t OptionsFingerprint(const RedFatOptions& opts) {
  return Fnv1a64(CanonicalOptionsBlob(opts));
}

uint64_t TierProfileFingerprint(const TierProfile& profile) {
  std::vector<std::pair<uint32_t, uint64_t>> entries(profile.cycles_by_site.begin(),
                                                     profile.cycles_by_site.end());
  std::sort(entries.begin(), entries.end());
  std::vector<uint8_t> b;
  b.reserve(16 + entries.size() * 12);
  PutU64(&b, entries.size());
  for (const auto& [site, cycles] : entries) {
    PutU32(&b, site);
    PutU64(&b, cycles);
  }
  PutU8(&b, profile.sitemap != nullptr ? 1 : 0);
  if (profile.sitemap != nullptr) {
    PutU64(&b, profile.sitemap->size());
    for (const SiteRecord& s : *profile.sitemap) {
      PutU32(&b, s.id);
      PutU64(&b, s.addr);
      PutU8(&b, s.is_write ? 1 : 0);
      PutU8(&b, static_cast<uint8_t>(s.kind));
      PutU8(&b, static_cast<uint8_t>(s.tier));
    }
  }
  return Fnv1a64(b);
}

std::string CacheKey::ToString() const {
  return StrFormat("%016llx-%016llx-%016llx",
                   static_cast<unsigned long long>(image_hash),
                   static_cast<unsigned long long>(options_fp),
                   static_cast<unsigned long long>(profile_fp));
}

}  // namespace redfat
