// Content-addressed cache keys for the rewrite service.
//
// A daemon request is fully described by (what binary, which knobs, which
// profile): identical triples must produce byte-identical outputs — the
// pipeline is deterministic — so the service fronts the pipeline with a
// content-addressed result cache keyed by
//
//   CacheKey = (image_hash, options_fp, profile_fp)
//
// where image_hash covers the raw request bytes of the input image,
// options_fp is OptionsFingerprint() over *every* RedFatOptions field (a
// canonical fixed-width serialization hashed with FNV-1a; a sizeof guard in
// fingerprint.cc forces this file to be revisited whenever a new option
// lands, so a stale fingerprint can never alias two different
// configurations), and profile_fp covers the tiering profile's content
// (0 = no profile; the *base* key of an image). The same canonical options
// blob doubles as the wire encoding of RedFatOptions in the daemon
// protocol, so "what the client hashed" and "what the daemon runs" cannot
// drift apart.
#ifndef REDFAT_SRC_SERVE_FINGERPRINT_H_
#define REDFAT_SRC_SERVE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/core/plan.h"
#include "src/support/result.h"

namespace redfat {

// FNV-1a over a byte range; the one hash used for all fingerprints.
uint64_t Fnv1a64(const uint8_t* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);
inline uint64_t Fnv1a64(const std::vector<uint8_t>& bytes) {
  return Fnv1a64(bytes.data(), bytes.size());
}

// Canonical fixed-width serialization of every RedFatOptions field except
// the tier-profile pointee (profiles are fingerprinted separately via
// TierProfileFingerprint; the blob records only whether one is attached).
// Stable across processes and releases of the same version byte.
std::vector<uint8_t> CanonicalOptionsBlob(const RedFatOptions& opts);

// Parses a canonical blob back into options (tier_profile always null: the
// profile travels separately). Rejects unknown versions and short blobs.
Result<RedFatOptions> OptionsFromBlob(const std::vector<uint8_t>& blob);

// Stable 64-bit hash of every option field (FNV-1a over the canonical
// blob). Guaranteed by unit test to change when any field changes.
uint64_t OptionsFingerprint(const RedFatOptions& opts);

// Content hash of a tiering profile: the sorted (site, cycles) pairs plus,
// when a join sitemap is attached, its record contents. Stable across JSON
// formatting differences of the snapshot it was parsed from.
uint64_t TierProfileFingerprint(const TierProfile& profile);

struct CacheKey {
  uint64_t image_hash = 0;
  uint64_t options_fp = 0;
  uint64_t profile_fp = 0;  // 0 = no tiering profile (the base key)

  // The base key shares the entry whose warm analysis a profile upload
  // re-tiers against.
  CacheKey Base() const { return CacheKey{image_hash, options_fp, 0}; }

  bool operator==(const CacheKey& o) const {
    return image_hash == o.image_hash && options_fp == o.options_fp &&
           profile_fp == o.profile_fp;
  }

  // "ihash-ofp-pfp", three zero-padded lowercase hex words (the
  // `redfat --print-cache-key` output format).
  std::string ToString() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    uint64_t h = k.image_hash;
    h = h * 0x100000001b3ULL ^ k.options_fp;
    h = h * 0x100000001b3ULL ^ k.profile_fp;
    return static_cast<size_t>(h);
  }
};

}  // namespace redfat

#endif  // REDFAT_SRC_SERVE_FINGERPRINT_H_
