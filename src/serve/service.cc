#include "src/serve/service.h"

#include <chrono>
#include <utility>

#include "src/core/sitemap.h"
#include "src/support/str.h"

namespace redfat {

uint64_t HostCycleNow() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
#endif
}

Result<TierProfile> TierProfileFromSnapshotJson(const std::string& json) {
  Result<TelemetrySnapshot> snap = TelemetrySnapshotFromJson(json);
  if (!snap.ok()) {
    return Error(StrFormat("profile: %s", snap.error().c_str()));
  }
  TierProfile profile;
  for (const SiteTelemetry& st : snap.value().sites) {
    if (ImageOfSiteKey(st.site) != 0) {
      continue;  // multi-image keys: only the main image's sites apply
    }
    profile.cycles_by_site[st.site] = st.tramp_cycles() + st.inline_cycles();
  }
  return profile;
}

// The key never includes transport-only knobs: the client's --jobs value
// changes nothing about the output bytes (byte-identical by contract), and
// the profile pointee is fingerprinted separately into CacheKey::profile_fp.
// Everything else — including hot_threshold, which steers the tier pass —
// stays in the fingerprint.
uint64_t CacheOptionsFingerprint(const RedFatOptions& opts) {
  RedFatOptions normalized = opts;
  normalized.jobs = 0;
  normalized.tier_profile = nullptr;
  return OptionsFingerprint(normalized);
}

namespace {

uint64_t EstimateAnalysisBytes(const PipelineContext& ctx, size_t input_bytes) {
  uint64_t est = input_bytes;
  if (ctx.cache.has_disasm()) {
    est += ctx.cache.disasm().insns.size() * 64;  // decoded insns + cfg slots
  }
  est += ctx.plan.sites.size() * sizeof(SiteRecord) * 2;  // plan + checkpoint copy
  for (const PlannedTrampoline& t : ctx.plan.trampolines) {
    est += sizeof(PlannedTrampoline) + t.checks.size() * sizeof(PlannedCheck);
  }
  return est;
}

}  // namespace

// RAII per-request recorder: queue depth at arrival, latency cycles at
// completion — both into the PR 7 histogram cells.
class RewriteService::RequestScope {
 public:
  explicit RequestScope(RewriteService* svc) : svc_(svc), start_(HostCycleNow()) {
    svc_->requests_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t depth = svc_->inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    svc_->telemetry_.histogram("serve.queue_depth")->Record(depth);
  }
  ~RequestScope() {
    svc_->telemetry_.histogram("serve.request_latency_cycles")
        ->Record(HostCycleNow() - start_);
    svc_->inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  RewriteService* svc_;
  uint64_t start_;
};

RewriteService::RewriteService(const Config& config)
    : pool_(config.jobs), cache_(config.cache_bytes) {}

RewriteService::~RewriteService() = default;

Result<RewriteService::Outcome> RewriteService::Rewrite(
    const std::vector<uint8_t>& image_bytes, const RedFatOptions& opts,
    const std::string& profile_json) {
  RequestScope scope(this);

  TierProfile profile;
  CacheKey key;
  key.image_hash = Fnv1a64(image_bytes);
  key.options_fp = CacheOptionsFingerprint(opts);
  if (!profile_json.empty()) {
    Result<TierProfile> parsed = TierProfileFromSnapshotJson(profile_json);
    if (!parsed.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return Error(parsed.error());
    }
    profile = std::move(parsed).value();
    key.profile_fp = TierProfileFingerprint(profile);
  }

  CachedArtifact cached;
  if (cache_.Lookup(key, &cached)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Outcome out;
    out.key = key;
    out.cache_hit = true;
    out.image_bytes = std::move(cached.image_bytes);
    out.sitemap = std::move(cached.sitemap);
    return out;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  if (key.profile_fp != 0) {
    // A warm base entry turns this miss into an incremental re-tier.
    auto retained =
        std::static_pointer_cast<AnalysisEntry>(cache_.LookupRetained(key.Base()));
    if (retained != nullptr) {
      return Retier(key, retained, opts, profile);
    }
  }
  return RewriteMiss(key, image_bytes, opts, key.profile_fp != 0 ? &profile : nullptr);
}

Result<RewriteService::Outcome> RewriteService::UploadProfile(
    uint64_t image_hash, const RedFatOptions& opts, const std::string& profile_json) {
  RequestScope scope(this);

  Result<TierProfile> parsed = TierProfileFromSnapshotJson(profile_json);
  if (!parsed.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Error(parsed.error());
  }
  const TierProfile profile = std::move(parsed).value();

  CacheKey key;
  key.image_hash = image_hash;
  key.options_fp = CacheOptionsFingerprint(opts);
  key.profile_fp = TierProfileFingerprint(profile);

  CachedArtifact cached;
  if (cache_.Lookup(key, &cached)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Outcome out;
    out.key = key;
    out.cache_hit = true;
    out.image_bytes = std::move(cached.image_bytes);
    out.sitemap = std::move(cached.sitemap);
    return out;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  auto retained =
      std::static_pointer_cast<AnalysisEntry>(cache_.LookupRetained(key.Base()));
  if (retained == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Error(StrFormat("no warm analysis for key %s (rewrite the image first, "
                           "or use the rewrite request which carries the bytes)",
                           key.Base().ToString().c_str()));
  }
  return Retier(key, retained, opts, profile);
}

Result<RewriteService::Outcome> RewriteService::FetchArtifact(const CacheKey& key) {
  RequestScope scope(this);
  CachedArtifact cached;
  if (!cache_.Lookup(key, &cached)) {
    return Error(StrFormat("no cached artifact for key %s", key.ToString().c_str()));
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  Outcome out;
  out.key = key;
  out.cache_hit = true;
  out.image_bytes = std::move(cached.image_bytes);
  out.sitemap = std::move(cached.sitemap);
  return out;
}

Result<RewriteService::Outcome> RewriteService::RewriteMiss(
    const CacheKey& key, std::vector<uint8_t> image_bytes, const RedFatOptions& opts,
    const TierProfile* profile) {
  Result<BinaryImage> input = BinaryImage::Deserialize(image_bytes);
  if (!input.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Error(StrFormat("bad image: %s", input.error().c_str()));
  }

  // The entry owns the input image for the lifetime of the cache slot; the
  // retained context references it. Option fields are the client's, with
  // the profile pointer re-attached locally (it never crosses the wire).
  auto entry = std::make_shared<AnalysisEntry>();
  entry->input = std::move(input).value();
  RedFatOptions run_opts = opts;
  run_opts.tier_profile = profile;
  entry->ctx = std::make_unique<PipelineContext>(entry->input, run_opts, nullptr);
  entry->ctx->pool = &pool_;

  Pipeline pipeline = Pipeline::Hardening(run_opts);
  pipeline.CaptureAfter("group", &entry->checkpoint);
  Status st = pipeline.Run(*entry->ctx);
  // The profile lives on the caller's stack: never leave a dangling pointer
  // in the retained context.
  entry->ctx->opts.tier_profile = nullptr;
  if (!st.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Error(st.error());
  }
  full_rewrites_.fetch_add(1, std::memory_order_relaxed);

  Outcome out;
  out.key = key;
  out.image_bytes = entry->ctx->output.Serialize();
  out.sitemap = SerializeSiteMap(entry->ctx->plan.sites, nullptr);
  entry->approx_bytes = EstimateAnalysisBytes(*entry->ctx, image_bytes.size());

  // The artifact lands under the request's key; the warm analysis always
  // belongs to the base key. A tiered cold run therefore deposits two
  // entries: (artifact@key) and (analysis-only@base).
  if (key.profile_fp == 0) {
    cache_.Insert(key, CachedArtifact{out.image_bytes, out.sitemap}, entry,
                  entry->approx_bytes);
  } else {
    cache_.Insert(key.Base(), CachedArtifact{}, entry, entry->approx_bytes);
    cache_.Insert(key, CachedArtifact{out.image_bytes, out.sitemap});
  }
  return out;
}

Result<RewriteService::Outcome> RewriteService::Retier(
    const CacheKey& key, const std::shared_ptr<AnalysisEntry>& entry,
    const RedFatOptions& opts, const TierProfile& profile) {
  // One re-tier at a time per retained context: the checkpoint restore and
  // the back-half passes mutate it in place.
  std::lock_guard<std::mutex> lock(entry->mu);
  PipelineContext& ctx = *entry->ctx;
  RestoreCheckpoint(entry->checkpoint, ctx);
  ctx.opts.tier_profile = &profile;
  ctx.opts.hot_threshold = opts.hot_threshold;
  ctx.pool = &pool_;

  Pipeline pipeline = Pipeline::Hardening(ctx.opts);
  Status st = pipeline.RunFrom(ctx, "tier");
  ctx.opts.tier_profile = nullptr;
  if (!st.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Error(st.error());
  }
  retiers_.fetch_add(1, std::memory_order_relaxed);

  Outcome out;
  out.key = key;
  out.incremental_retier = true;
  out.image_bytes = ctx.output.Serialize();
  out.sitemap = SerializeSiteMap(ctx.plan.sites, nullptr);
  cache_.Insert(key, CachedArtifact{out.image_bytes, out.sitemap});
  return out;
}

std::string RewriteService::StatsJson() const {
  const TelemetrySnapshot snap = telemetry_.Snapshot();
  const ArtifactCacheStats cs = cache_.stats();

  const auto hist_json = [&](const char* name) {
    const HistogramData* h = snap.FindHistogram(name);
    if (h == nullptr) {
      return std::string(
          "{\"count\":0,\"mean\":0,\"p50\":0,\"p90\":0,\"p99\":0}");
    }
    return StrFormat("{\"count\":%llu,\"mean\":%.1f,\"p50\":%llu,\"p90\":%llu,"
                     "\"p99\":%llu}",
                     static_cast<unsigned long long>(h->Count()), h->Mean(),
                     static_cast<unsigned long long>(h->Percentile(50)),
                     static_cast<unsigned long long>(h->Percentile(90)),
                     static_cast<unsigned long long>(h->Percentile(99)));
  };

  return StrFormat(
      "{\"requests\":%llu,\"hits\":%llu,\"misses\":%llu,\"full_rewrites\":%llu,"
      "\"retiers\":%llu,\"errors\":%llu,"
      "\"cache\":{\"entries\":%llu,\"bytes\":%llu,\"budget\":%llu,"
      "\"insertions\":%llu,\"evictions\":%llu},"
      "\"request_latency_cycles\":%s,\"queue_depth\":%s,"
      "\"telemetry\":%s}",
      static_cast<unsigned long long>(requests_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(hits_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(misses_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(full_rewrites_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(retiers_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(errors_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(cs.entries),
      static_cast<unsigned long long>(cs.bytes),
      static_cast<unsigned long long>(cs.budget),
      static_cast<unsigned long long>(cs.insertions),
      static_cast<unsigned long long>(cs.evictions),
      hist_json("serve.request_latency_cycles").c_str(),
      hist_json("serve.queue_depth").c_str(), snap.ToJson().c_str());
}

}  // namespace redfat
