#include "src/serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/support/str.h"

namespace redfat {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutBlob(std::vector<uint8_t>* out, const uint8_t* data, size_t len) {
  PutU32(out, static_cast<uint32_t>(len));
  out->insert(out->end(), data, data + len);
}

void PutBlob(std::vector<uint8_t>* out, const std::vector<uint8_t>& bytes) {
  PutBlob(out, bytes.data(), bytes.size());
}

void PutBlob(std::vector<uint8_t>* out, const std::string& text) {
  PutBlob(out, reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

Result<uint8_t> BodyReader::U8() {
  if (pos_ + 1 > body_.size()) {
    return Error("frame body: truncated u8");
  }
  return body_[pos_++];
}

Result<uint32_t> BodyReader::U32() {
  if (pos_ + 4 > body_.size()) {
    return Error("frame body: truncated u32");
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | body_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BodyReader::U64() {
  if (pos_ + 8 > body_.size()) {
    return Error("frame body: truncated u64");
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | body_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<std::vector<uint8_t>> BodyReader::Blob() {
  Result<uint32_t> len = U32();
  if (!len.ok()) {
    return Error(len.error());
  }
  if (pos_ + len.value() > body_.size()) {
    return Error("frame body: truncated blob");
  }
  std::vector<uint8_t> out(body_.begin() + static_cast<ptrdiff_t>(pos_),
                           body_.begin() + static_cast<ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

Result<std::string> BodyReader::Str() {
  Result<std::vector<uint8_t>> blob = Blob();
  if (!blob.ok()) {
    return Error(blob.error());
  }
  return std::string(blob.value().begin(), blob.value().end());
}

std::vector<uint8_t> BodyReader::Rest() {
  std::vector<uint8_t> out(body_.begin() + static_cast<ptrdiff_t>(pos_), body_.end());
  pos_ = body_.size();
  return out;
}

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Error(StrFormat("socket write: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly len bytes; eof_ok permits a clean EOF at offset 0 (signalled
// by returning len == 0 read via the out-param).
Result<bool> ReadAll(int fd, uint8_t* data, size_t len, bool eof_ok) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Error(StrFormat("socket read: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (eof_ok && off == 0) {
        return false;  // clean EOF before any byte of this frame
      }
      return Error("socket read: unexpected EOF mid-frame");
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& body) {
  if (body.size() + 1 > kMaxFramePayload) {
    return Error("frame: payload too large");
  }
  std::vector<uint8_t> out;
  out.reserve(9 + body.size());
  PutU32(&out, kFrameMagic);
  PutU32(&out, static_cast<uint32_t>(body.size() + 1));
  PutU8(&out, static_cast<uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
  return WriteAll(fd, out.data(), out.size());
}

Result<Frame> ReadFrame(int fd) {
  uint8_t header[8];
  Result<bool> got = ReadAll(fd, header, sizeof(header), /*eof_ok=*/true);
  if (!got.ok()) {
    return Error(got.error());
  }
  if (!got.value()) {
    return Error("eof");  // clean close between frames
  }
  uint32_t magic = 0;
  uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    magic = (magic << 8) | header[i];
    length = (length << 8) | header[4 + i];
  }
  if (magic != kFrameMagic) {
    return Error("frame: bad magic");
  }
  if (length == 0 || length > kMaxFramePayload) {
    return Error(StrFormat("frame: bad length %u", length));
  }
  std::vector<uint8_t> payload(length);
  got = ReadAll(fd, payload.data(), payload.size(), /*eof_ok=*/false);
  if (!got.ok()) {
    return Error(got.error());
  }
  Frame f;
  f.type = static_cast<MsgType>(payload[0]);
  f.body.assign(payload.begin() + 1, payload.end());
  return f;
}

Result<int> ListenUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Error(StrFormat("socket path too long (%zu bytes)", path.size()));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // Probe an existing socket file: a live daemon answers the connect — that
  // is an error here, not something to silently replace. Anything else at
  // the path is stale and gets unlinked.
  int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      ::close(probe);
      return Error(StrFormat("%s: daemon already listening", path.c_str()));
    }
    ::close(probe);
  }
  ::unlink(path.c_str());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(StrFormat("socket: %s", std::strerror(errno)));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = StrFormat("bind %s: %s", path.c_str(), std::strerror(errno));
    ::close(fd);
    return Error(err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = StrFormat("listen %s: %s", path.c_str(), std::strerror(errno));
    ::close(fd);
    return Error(err);
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Error(StrFormat("socket path too long (%zu bytes)", path.size()));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err =
        StrFormat("connect %s: %s", path.c_str(), std::strerror(errno));
    ::close(fd);
    return Error(err);
  }
  return fd;
}

}  // namespace redfat
