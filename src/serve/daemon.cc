#include "src/serve/daemon.h"

#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "src/serve/fingerprint.h"
#include "src/serve/protocol.h"
#include "src/support/str.h"

namespace redfat {

namespace {

Status SendError(int fd, WireError code, const std::string& message) {
  std::vector<uint8_t> body;
  PutU32(&body, static_cast<uint32_t>(code));
  PutBlob(&body, message);
  return WriteFrame(fd, MsgType::kError, body);
}

// Maps a service-layer error string onto a wire code: the service reports
// cache lookups that found nothing distinctly from inputs it rejected.
WireError ClassifyServiceError(const std::string& error) {
  if (error.rfind("no warm analysis", 0) == 0 ||
      error.rfind("no cached artifact", 0) == 0) {
    return WireError::kNotFound;
  }
  if (error.rfind("bad image", 0) == 0 || error.rfind("profile:", 0) == 0) {
    return WireError::kBadRequest;
  }
  return WireError::kRewriteFailed;
}

Status SendOutcome(int fd, const RewriteService::Outcome& out) {
  std::vector<uint8_t> body;
  uint8_t flags = 0;
  if (out.cache_hit) {
    flags |= 1;
  }
  if (out.incremental_retier) {
    flags |= 2;
  }
  PutU8(&body, flags);
  PutU64(&body, out.key.image_hash);
  PutU64(&body, out.key.options_fp);
  PutU64(&body, out.key.profile_fp);
  PutBlob(&body, out.image_bytes);
  PutBlob(&body, out.sitemap);
  return WriteFrame(fd, MsgType::kOk, body);
}

}  // namespace

Daemon::Daemon(const Config& config)
    : config_(config), service_(std::make_unique<RewriteService>(config.service)) {}

Daemon::~Daemon() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

Status Daemon::Listen() {
  Result<int> fd = ListenUnix(config_.socket_path);
  if (!fd.ok()) {
    return Error(fd.error());
  }
  listen_fd_ = fd.value();
  return Status::Ok();
}

void Daemon::Stop() {
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocking accept
  }
}

Status Daemon::Serve() {
  if (listen_fd_ < 0) {
    return Error("daemon: Serve() before Listen()");
  }
  while (!stop_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) {
        break;  // Stop() shut the listener down
      }
      return Error(StrFormat("accept: %s", std::strerror(errno)));
    }
    handlers_.emplace_back([this, conn] { HandleConnection(conn); });
  }
  for (std::thread& t : handlers_) {
    t.join();
  }
  handlers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  return Status::Ok();
}

void Daemon::HandleConnection(int fd) {
  for (;;) {
    Result<Frame> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // A clean close between frames ends the conversation silently; a
      // malformed byte stream gets one diagnostic frame, then the close
      // (the framing is unrecoverable — resynchronization is impossible).
      if (frame.error() != "eof") {
        (void)SendError(fd, WireError::kMalformedFrame, frame.error());
      }
      break;
    }
    if (!HandleFrame(fd, frame.value())) {
      break;
    }
  }
  ::close(fd);
}

bool Daemon::HandleFrame(int fd, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kRewrite: {
      BodyReader r(frame.body);
      Result<std::vector<uint8_t>> opts_blob = r.Blob();
      if (!opts_blob.ok()) {
        return SendError(fd, WireError::kMalformedFrame, opts_blob.error()).ok();
      }
      Result<std::string> profile_json = r.Str();
      if (!profile_json.ok()) {
        return SendError(fd, WireError::kMalformedFrame, profile_json.error()).ok();
      }
      const std::vector<uint8_t> image = r.Rest();
      Result<RedFatOptions> opts = OptionsFromBlob(opts_blob.value());
      if (!opts.ok()) {
        return SendError(fd, WireError::kBadRequest, opts.error()).ok();
      }
      Result<RewriteService::Outcome> out =
          service_->Rewrite(image, opts.value(), profile_json.value());
      if (!out.ok()) {
        return SendError(fd, ClassifyServiceError(out.error()), out.error()).ok();
      }
      return SendOutcome(fd, out.value()).ok();
    }
    case MsgType::kUploadProfile: {
      BodyReader r(frame.body);
      Result<uint64_t> image_hash = r.U64();
      Result<std::vector<uint8_t>> opts_blob =
          image_hash.ok() ? r.Blob() : Error(image_hash.error());
      Result<std::string> profile_json =
          opts_blob.ok() ? r.Str() : Error(opts_blob.error());
      if (!profile_json.ok() || !r.Done()) {
        return SendError(fd, WireError::kMalformedFrame,
                         profile_json.ok() ? "upload-profile: trailing bytes"
                                           : profile_json.error())
            .ok();
      }
      Result<RedFatOptions> opts = OptionsFromBlob(opts_blob.value());
      if (!opts.ok()) {
        return SendError(fd, WireError::kBadRequest, opts.error()).ok();
      }
      Result<RewriteService::Outcome> out = service_->UploadProfile(
          image_hash.value(), opts.value(), profile_json.value());
      if (!out.ok()) {
        return SendError(fd, ClassifyServiceError(out.error()), out.error()).ok();
      }
      return SendOutcome(fd, out.value()).ok();
    }
    case MsgType::kFetchArtifact: {
      BodyReader r(frame.body);
      CacheKey key;
      Result<uint64_t> v = r.U64();
      if (v.ok()) {
        key.image_hash = v.value();
        v = r.U64();
      }
      if (v.ok()) {
        key.options_fp = v.value();
        v = r.U64();
      }
      if (!v.ok() || !r.Done()) {
        return SendError(fd, WireError::kMalformedFrame,
                         v.ok() ? "fetch-artifact: trailing bytes" : v.error())
            .ok();
      }
      key.profile_fp = v.value();
      Result<RewriteService::Outcome> out = service_->FetchArtifact(key);
      if (!out.ok()) {
        return SendError(fd, ClassifyServiceError(out.error()), out.error()).ok();
      }
      return SendOutcome(fd, out.value()).ok();
    }
    case MsgType::kStats: {
      std::vector<uint8_t> body;
      PutBlob(&body, service_->StatsJson());
      return WriteFrame(fd, MsgType::kOk, body).ok();
    }
    case MsgType::kShutdown: {
      (void)WriteFrame(fd, MsgType::kOk, {});
      Stop();
      return false;
    }
    default:
      return SendError(fd, WireError::kBadRequest,
                       StrFormat("unknown request type %u",
                                 static_cast<unsigned>(frame.type)))
          .ok();
  }
}

}  // namespace redfat
