// The daemon's content-addressed artifact cache: CacheKey -> rewritten
// image + sitemap, bounded by an LRU byte budget (`redfatd --cache-bytes`).
//
// Entries may additionally retain an opaque "warm state" handle (the
// service parks the pipeline analysis context of a base entry there, so a
// later profile upload re-tiers against it instead of re-running the
// analysis front half). Retained state is charged against the same byte
// budget via an explicit estimate, and eviction drops the handle together
// with the artifact — a shared_ptr keeps it alive for any re-tier already
// in flight.
//
// A base entry can exist in "analysis-only" form (empty artifact): a cold
// rewrite *with* a profile still deposits its profile-independent analysis
// under the base key, but never fabricates an untiered image it did not
// build. Lookup() only reports entries that carry an artifact.
#ifndef REDFAT_SRC_SERVE_CACHE_H_
#define REDFAT_SRC_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/serve/fingerprint.h"

namespace redfat {

struct CachedArtifact {
  std::vector<uint8_t> image_bytes;  // serialized rewritten image
  std::string sitemap;               // SerializeSiteMap text
  bool has_artifact() const { return !image_bytes.empty(); }
};

struct ArtifactCacheStats {
  uint64_t entries = 0;
  uint64_t bytes = 0;       // charged bytes currently resident
  uint64_t budget = 0;
  uint64_t hits = 0;        // Lookup() calls that found an artifact
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;   // entries dropped by LRU pressure
};

class ArtifactCache {
 public:
  // budget == 0 means "unbounded" (no eviction).
  explicit ArtifactCache(uint64_t budget_bytes) : budget_(budget_bytes) {}

  // Copies the artifact out on a hit and marks the entry most recently
  // used. Analysis-only entries and absent keys are misses.
  bool Lookup(const CacheKey& key, CachedArtifact* out);

  // The retained warm-state handle of the entry (typically the base entry),
  // or null. Bumps recency: an image being actively re-tiered should be the
  // last thing the budget evicts.
  std::shared_ptr<void> LookupRetained(const CacheKey& key);

  // Inserts or replaces an entry. `retained_bytes` is the caller's estimate
  // of the retained handle's footprint (0 when `retained` is null); the
  // entry's total charge is artifact bytes + sitemap bytes + retained
  // bytes. Inserting may evict least-recently-used entries until the budget
  // holds again (the new entry itself is never evicted by its own insert).
  void Insert(const CacheKey& key, CachedArtifact artifact,
              std::shared_ptr<void> retained = nullptr, uint64_t retained_bytes = 0);

  ArtifactCacheStats stats() const;

 private:
  struct Entry {
    CacheKey key;
    CachedArtifact artifact;
    std::shared_ptr<void> retained;
    uint64_t charged_bytes = 0;
  };
  using EntryList = std::list<Entry>;

  void EvictOverBudgetLocked(const CacheKey& keep);

  const uint64_t budget_;
  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<CacheKey, EntryList::iterator, CacheKeyHash> index_;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace redfat

#endif  // REDFAT_SRC_SERVE_CACHE_H_
