// A small assembler for rfi code: label management, forward references,
// imm64 address fixups, and one emit helper per instruction form.
//
// Used by the workload generators (to build guest "binaries") and by the
// RedFat check code generator (to build trampoline code).
#ifndef REDFAT_SRC_ASM_ASSEMBLER_H_
#define REDFAT_SRC_ASM_ASSEMBLER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/isa/abi.h"
#include "src/isa/isa.h"

namespace redfat {

// Convenience builders for memory operands. SizeLog2: 0=byte .. 3=qword.
inline MemOperand MemAt(Reg base, int32_t disp, uint8_t size_log2 = 3) {
  MemOperand m;
  m.base = base;
  m.disp = disp;
  m.size_log2 = size_log2;
  return m;
}

inline MemOperand MemBIS(Reg base, Reg index, uint8_t scale_log2, int32_t disp,
                         uint8_t size_log2 = 3) {
  MemOperand m;
  m.base = base;
  m.index = index;
  m.scale_log2 = scale_log2;
  m.disp = disp;
  m.size_log2 = size_log2;
  return m;
}

inline MemOperand MemAbs(int32_t addr, uint8_t size_log2 = 3) {
  MemOperand m;
  m.disp = addr;
  m.size_log2 = size_log2;
  return m;
}

class Assembler {
 public:
  // `base_vaddr` is the virtual address the emitted bytes will be loaded at.
  explicit Assembler(uint64_t base_vaddr) : base_vaddr_(base_vaddr) {}

  using Label = uint32_t;

  Label NewLabel() {
    labels_.emplace_back();
    return static_cast<Label>(labels_.size() - 1);
  }

  // Binds `label` to the current position.
  void Bind(Label label);

  // Current virtual address (start of the next emitted instruction).
  uint64_t Here() const { return base_vaddr_ + bytes_.size(); }
  size_t SizeBytes() const { return bytes_.size(); }

  // --- instruction emitters ---------------------------------------------
  void Nop() { Emit({.op = Op::kNop}); }
  void Hlt() { Emit({.op = Op::kHlt}); }
  void Ud2() { Emit({.op = Op::kUd2}); }
  void Ret() { Emit({.op = Op::kRet}); }
  void Pushf() { Emit({.op = Op::kPushf}); }
  void Popf() { Emit({.op = Op::kPopf}); }

  void MovRI(Reg r, uint64_t imm) {
    Emit({.op = Op::kMovRI, .r0 = r, .imm = static_cast<int64_t>(imm)});
  }
  // mov r <- &label (imm64 fixup; used for jump tables / function pointers).
  void MovLabelAddr(Reg r, Label label);
  void MovRR(Reg dst, Reg src) { Emit({.op = Op::kMovRR, .r0 = dst, .r1 = src}); }

  void Load(Reg dst, const MemOperand& mem) { Emit({.op = Op::kLoad, .r0 = dst, .mem = mem}); }
  void Store(Reg src, const MemOperand& mem) {
    Emit({.op = Op::kStoreR, .r0 = src, .mem = mem});
  }
  void StoreI(const MemOperand& mem, int32_t imm) {
    Emit({.op = Op::kStoreI, .mem = mem, .imm = imm});
  }
  void Lea(Reg dst, const MemOperand& mem) { Emit({.op = Op::kLea, .r0 = dst, .mem = mem}); }

  void Add(Reg dst, Reg src) { Emit({.op = Op::kAddRR, .r0 = dst, .r1 = src}); }
  void AddI(Reg dst, int32_t imm) { Emit({.op = Op::kAddRI, .r0 = dst, .imm = imm}); }
  void Sub(Reg dst, Reg src) { Emit({.op = Op::kSubRR, .r0 = dst, .r1 = src}); }
  void SubI(Reg dst, int32_t imm) { Emit({.op = Op::kSubRI, .r0 = dst, .imm = imm}); }
  void Imul(Reg dst, Reg src) { Emit({.op = Op::kImulRR, .r0 = dst, .r1 = src}); }
  void ImulI(Reg dst, int32_t imm) { Emit({.op = Op::kImulRI, .r0 = dst, .imm = imm}); }
  void Mulh(Reg dst, Reg src) { Emit({.op = Op::kMulhRR, .r0 = dst, .r1 = src}); }
  void And(Reg dst, Reg src) { Emit({.op = Op::kAndRR, .r0 = dst, .r1 = src}); }
  void AndI(Reg dst, int32_t imm) { Emit({.op = Op::kAndRI, .r0 = dst, .imm = imm}); }
  void Or(Reg dst, Reg src) { Emit({.op = Op::kOrRR, .r0 = dst, .r1 = src}); }
  void OrI(Reg dst, int32_t imm) { Emit({.op = Op::kOrRI, .r0 = dst, .imm = imm}); }
  void Xor(Reg dst, Reg src) { Emit({.op = Op::kXorRR, .r0 = dst, .r1 = src}); }
  void XorI(Reg dst, int32_t imm) { Emit({.op = Op::kXorRI, .r0 = dst, .imm = imm}); }
  void ShlI(Reg r, uint8_t count) { Emit({.op = Op::kShlRI, .r0 = r, .imm = count}); }
  void ShrI(Reg r, uint8_t count) { Emit({.op = Op::kShrRI, .r0 = r, .imm = count}); }
  void SarI(Reg r, uint8_t count) { Emit({.op = Op::kSarRI, .r0 = r, .imm = count}); }
  void Shl(Reg r, Reg count) { Emit({.op = Op::kShlRR, .r0 = r, .r1 = count}); }
  void Shr(Reg r, Reg count) { Emit({.op = Op::kShrRR, .r0 = r, .r1 = count}); }

  void Cmp(Reg a, Reg b) { Emit({.op = Op::kCmpRR, .r0 = a, .r1 = b}); }
  void CmpI(Reg a, int32_t imm) { Emit({.op = Op::kCmpRI, .r0 = a, .imm = imm}); }
  void Test(Reg a, Reg b) { Emit({.op = Op::kTestRR, .r0 = a, .r1 = b}); }

  void Jmp(Label label) { EmitBranch({.op = Op::kJmp}, label); }
  void Jcc(Cond cond, Label label) { EmitBranch({.op = Op::kJcc, .cond = cond}, label); }
  void Call(Label label) { EmitBranch({.op = Op::kCall}, label); }
  // Direct branch to a known absolute address (e.g. back out of a
  // trampoline into the original code).
  void JmpAbs(uint64_t target);
  void JccAbs(Cond cond, uint64_t target);
  void CallAbs(uint64_t target);
  void JmpR(Reg r) { Emit({.op = Op::kJmpR, .r0 = r}); }
  void CallR(Reg r) { Emit({.op = Op::kCallR, .r0 = r}); }

  void Push(Reg r) { Emit({.op = Op::kPush, .r0 = r}); }
  void Pop(Reg r) { Emit({.op = Op::kPop, .r0 = r}); }

  void HostCall(HostFn fn) {
    Emit({.op = Op::kHostCall, .imm = static_cast<int64_t>(fn)});
  }
  void Trap(TrapCode code, uint32_t arg) {
    Emit({.op = Op::kTrap,
          .imm = static_cast<int64_t>(static_cast<uint64_t>(code) |
                                      (static_cast<uint64_t>(arg) << 8))});
  }
  void Count(uint32_t counter_id) {
    Emit({.op = Op::kCount, .imm = static_cast<int64_t>(counter_id)});
  }

  // Emits a pre-built instruction (used by the rewriter when relocating
  // displaced instructions).
  void Emit(const Instruction& insn);

  // Finalizes: applies all fixups. CHECK-fails on unbound labels.
  std::vector<uint8_t> Finish();

  uint64_t base_vaddr() const { return base_vaddr_; }

 private:
  struct Fixup {
    enum class Kind { kRel32, kAbs64 };
    Kind kind;
    size_t field_offset;  // where the 4/8-byte field lives in bytes_
    size_t insn_end;      // offset of the end of the instruction (rel32 anchor)
    Label label;
  };

  void EmitBranch(Instruction insn, Label label);

  uint64_t base_vaddr_;
  std::vector<uint8_t> bytes_;
  std::vector<std::optional<uint64_t>> labels_;  // bound offset in bytes_
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace redfat

#endif  // REDFAT_SRC_ASM_ASSEMBLER_H_
