#include "src/asm/assembler.h"

#include "src/support/check.h"

namespace redfat {

namespace {

void PatchU32(std::vector<uint8_t>* bytes, size_t at, uint32_t v) {
  (*bytes)[at] = static_cast<uint8_t>(v);
  (*bytes)[at + 1] = static_cast<uint8_t>(v >> 8);
  (*bytes)[at + 2] = static_cast<uint8_t>(v >> 16);
  (*bytes)[at + 3] = static_cast<uint8_t>(v >> 24);
}

void PatchU64(std::vector<uint8_t>* bytes, size_t at, uint64_t v) {
  PatchU32(bytes, at, static_cast<uint32_t>(v));
  PatchU32(bytes, at + 4, static_cast<uint32_t>(v >> 32));
}

}  // namespace

void Assembler::Bind(Label label) {
  REDFAT_CHECK(label < labels_.size());
  REDFAT_CHECK(!labels_[label].has_value());
  labels_[label] = bytes_.size();
}

void Assembler::Emit(const Instruction& insn) {
  REDFAT_CHECK(!finished_);
  Encode(insn, &bytes_);
}

void Assembler::EmitBranch(Instruction insn, Label label) {
  REDFAT_CHECK(label < labels_.size());
  insn.imm = 0;
  const size_t start = bytes_.size();
  Emit(insn);
  const size_t end = bytes_.size();
  // rel32 field is the last 4 bytes of kJmp/kJcc/kCall encodings.
  fixups_.push_back(Fixup{Fixup::Kind::kRel32, end - 4, end, label});
  (void)start;
}

void Assembler::MovLabelAddr(Reg r, Label label) {
  REDFAT_CHECK(label < labels_.size());
  const size_t start = bytes_.size();
  MovRI(r, 0);
  // imm64 field is the last 8 bytes of the kMovRI encoding.
  fixups_.push_back(Fixup{Fixup::Kind::kAbs64, start + 2, bytes_.size(), label});
}

void Assembler::JmpAbs(uint64_t target) {
  const uint64_t end = Here() + EncodedLength(Op::kJmp);
  const int64_t rel = static_cast<int64_t>(target) - static_cast<int64_t>(end);
  REDFAT_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
  Emit({.op = Op::kJmp, .imm = rel});
}

void Assembler::JccAbs(Cond cond, uint64_t target) {
  const uint64_t end = Here() + EncodedLength(Op::kJcc);
  const int64_t rel = static_cast<int64_t>(target) - static_cast<int64_t>(end);
  REDFAT_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
  Emit({.op = Op::kJcc, .cond = cond, .imm = rel});
}

void Assembler::CallAbs(uint64_t target) {
  const uint64_t end = Here() + EncodedLength(Op::kCall);
  const int64_t rel = static_cast<int64_t>(target) - static_cast<int64_t>(end);
  REDFAT_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
  Emit({.op = Op::kCall, .imm = rel});
}

std::vector<uint8_t> Assembler::Finish() {
  REDFAT_CHECK(!finished_);
  finished_ = true;
  for (const Fixup& f : fixups_) {
    REDFAT_CHECK(labels_[f.label].has_value());
    const uint64_t target = base_vaddr_ + *labels_[f.label];
    switch (f.kind) {
      case Fixup::Kind::kRel32: {
        const int64_t rel =
            static_cast<int64_t>(target) - static_cast<int64_t>(base_vaddr_ + f.insn_end);
        REDFAT_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
        PatchU32(&bytes_, f.field_offset, static_cast<uint32_t>(static_cast<int32_t>(rel)));
        break;
      }
      case Fixup::Kind::kAbs64:
        PatchU64(&bytes_, f.field_offset, target);
        break;
    }
  }
  return std::move(bytes_);
}

}  // namespace redfat
