// Architecture-level ABI contracts shared by guest programs, the VM, the
// allocator runtimes and the RedFat instrumentation:
//
//   * host-call numbers (the "libc boundary": malloc/free/etc. — the moral
//     equivalent of PLT calls into an LD_PRELOADed runtime);
//   * trap codes (VM service requests emitted by instrumentation);
//   * the fixed virtual-address-space layout (low-fat regions, code, stack).
#ifndef REDFAT_SRC_ISA_ABI_H_
#define REDFAT_SRC_ISA_ABI_H_

#include <cstdint>

namespace redfat {

// ---------------------------------------------------------------------------
// Host calls (libc boundary)
// ---------------------------------------------------------------------------
// Arguments in rdi/rsi/rdx, result in rax (SysV-flavored). Which allocator
// implements kMalloc/kFree is a property of the VM runtime binding — exactly
// like swapping malloc via LD_PRELOAD in the paper.
enum class HostFn : uint8_t {
  kExit = 0,      // exit(rdi): stop the machine with status rdi
  kMalloc = 1,    // rax = malloc(rdi)
  kFree = 2,      // free(rdi)
  kMemset = 3,    // memset(rdi, rsi, rdx)  (byte value rsi)
  kMemcpy = 4,    // memcpy(rdi, rsi, rdx)
  kInputU64 = 5,  // rax = next attacker/benign input word (test harness)
  kOutputU64 = 6, // append rdi to the program's output stream
  kRandU64 = 7,   // rax = deterministic pseudo-random word (seeded per run)
  kNumHostFns,
};

// ---------------------------------------------------------------------------
// Traps (VM service requests)
// ---------------------------------------------------------------------------
// kTrap carries an 8-bit code and a 32-bit argument.
enum class TrapCode : uint8_t {
  // Instrumentation found a memory error. arg = (site_id << 4) | ErrorKind.
  // Under Policy::kHarden the VM aborts the run; under Policy::kLog it
  // records the report and resumes.
  kMemError = 1,
  // Profiling-phase events (Fig. 5 step 1): the low-fat component of the
  // check passed / failed at site arg. Execution always continues.
  kProfPass = 2,
  kProfFail = 3,
  // A workload self-check failed (guest assertion). Always fatal.
  kAssertFail = 4,
  // Forensics prologue to kMemError: arg names the guest register (Reg
  // cast to its ordinal) holding the faulting effective address. Emitted by
  // the check generator immediately before the kMemError trap on error
  // paths only, so passing checks cost nothing extra. The VM latches the
  // register's value and attaches it to the next kMemError report; a VM
  // that ignores the code would still see the same guest-visible run.
  kErrAddr = 5,
};

enum class ErrorKind : uint8_t {
  kBounds = 0,  // out-of-bounds (lower/upper, includes redzone access)
  kUaf = 1,     // use-after-free (separate only when checks are not merged)
  kMeta = 2,    // corrupted size metadata (size-hardening check, Fig. 4 l.23)
  // Free of an already-freed base pointer. Raised by the VM's forensics
  // interception or (with --rheap=prot-freelist) by the allocator's own
  // metadata validation, never by generated check code.
  kDoubleFree = 3,
  // Tampered allocator metadata: a forged/corrupted in-guest freelist or
  // quarantine link, or an invalid (overlapping/interior) free. Raised by
  // the hardened allocator under --rheap=prot-freelist; the faulting
  // address is the tampered link word, not a guest access site.
  kFreelistCorruption = 4,
};

inline uint32_t PackErrorArg(uint32_t site_id, ErrorKind kind) {
  return (site_id << 4) | static_cast<uint32_t>(kind);
}
inline uint32_t ErrorArgSite(uint32_t arg) { return arg >> 4; }
inline ErrorKind ErrorArgKind(uint32_t arg) { return static_cast<ErrorKind>(arg & 0xf); }

// ---------------------------------------------------------------------------
// Virtual address space layout (Fig. 2 of the paper)
// ---------------------------------------------------------------------------
// The guest address space is partitioned into 32 GiB regions. Region #0 is
// non-fat and holds code, globals, the runtime tables and the stack. Regions
// #1..#kNumSizeClasses hold the low-fat subheaps. One further region holds
// the legacy (glibc-like) heap used by baselines and by the huge-allocation
// fallback.
inline constexpr unsigned kRegionShift = 35;  // 32 GiB
inline constexpr uint64_t kRegionSize = uint64_t{1} << kRegionShift;
inline constexpr unsigned kNumRegions = 64;  // table size; addresses < 2 TiB

// Low-fat size classes: multiples of 16 bytes up to 512 (classes 1..32),
// then powers of two from 1 KiB up to 32 MiB (classes 33..48). Class i lives
// in region #i.
inline constexpr unsigned kNumSizeClasses = 48;
inline constexpr uint64_t kMinAllocSize = 16;
inline constexpr uint64_t kMaxLowFatSize = 32ull << 20;

// Returns the allocation size of low-fat size class c (1-based), or 0 for
// out-of-range classes.
constexpr uint64_t SizeClassBytes(unsigned c) {
  if (c >= 1 && c <= 32) {
    return 16ull * c;
  }
  if (c >= 33 && c <= kNumSizeClasses) {
    return 1024ull << (c - 33);
  }
  return 0;
}

// Region #0 layout (all non-fat).
inline constexpr uint64_t kRuntimeTableBase = 0x10000;   // SIZES/MAGICS/SHIFTS
inline constexpr uint64_t kCodeBase = 0x400000;          // like a non-PIE ELF
inline constexpr uint64_t kTrampolineBase = 0x400000 + 0x10000000;  // +256 MiB
// Hot-tier (inline) check code lands this far above the image's trampoline
// base: its own region so the VM can attribute inline-check cycles
// separately from trampoline cycles, still within rel32 reach of the text.
inline constexpr uint64_t kInlineCheckOffset = 0x4000000;  // +64 MiB
inline constexpr uint64_t kStackTop = uint64_t{16} << 30;  // 16 GiB: >2 GiB from heap
inline constexpr uint64_t kStackSize = 8ull << 20;         // 8 MiB

// Legacy / fallback heap region (non-fat).
inline constexpr unsigned kLegacyHeapRegion = kNumSizeClasses + 2;  // region 50
inline constexpr uint64_t kLegacyHeapBase =
    static_cast<uint64_t>(kLegacyHeapRegion) << kRegionShift;

// The redzone prepended by the hardened allocator (Fig. 3).
inline constexpr uint64_t kRedzoneSize = 16;

// Runtime tables: three u64[kNumRegions] arrays at fixed addresses, loaded
// by the check code with absolute addressing. SIZES[r] == 0 marks a non-fat
// region (the paper uses SIZE_MAX; 0 lets the check use a single test).
inline constexpr uint64_t kSizesTableAddr = kRuntimeTableBase;
inline constexpr uint64_t kMagicsTableAddr = kRuntimeTableBase + 8 * kNumRegions;
inline constexpr uint64_t kShiftsTableAddr = kRuntimeTableBase + 16 * kNumRegions;

// --- ASAN-style shadow memory (the §4.1 alternative redzone scheme) -------
// Used only by the RedzoneImpl::kShadow ablation: one shadow byte per
// 8-byte granule, at kGuestShadowBase + (addr >> 3). The shadow area spans
// regions 55..62 (non-fat, far from every subheap).
inline constexpr uint64_t kGuestShadowBase = uint64_t{55} << kRegionShift;
enum class GuestShadow : uint8_t {
  kOk = 0,       // addressable (untouched shadow reads 0)
  kRedzone = 1,
  kFreed = 2,
};

}  // namespace redfat

#endif  // REDFAT_SRC_ISA_ABI_H_
