// The rfi (RedFat ISA) instruction set.
//
// A compact x86-64-like instruction set with exactly the properties the
// RedFat paper relies on at the binary level:
//
//   * 16 general-purpose 64-bit registers plus a flags register;
//   * memory operands of the full x86_64 shape seg:disp(base,index,scale)
//     (the segment component is modeled but always flat/zero, as on Linux
//     x86_64 for the data segments RedFat instruments);
//   * variable-length byte encoding, so static rewriting must deal with
//     instruction spans and displaced-instruction relocation;
//   * no type information whatsoever: pointer and integer arithmetic are
//     indistinguishable except inside memory operands (paper §3).
//
// The encoding is deliberately simple (opcode byte + fixed per-opcode layout)
// but variable length (1..14 bytes), and `jmp rel32` is exactly 5 bytes, so
// the E9Patch-style patching substrate faces the real "patch an instruction
// shorter than the jump" problem for short instructions.
#ifndef REDFAT_SRC_ISA_ISA_H_
#define REDFAT_SRC_ISA_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace redfat {

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

enum class Reg : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
  // Pseudo-register: usable only as a memory-operand base (rip-relative
  // addressing). Never a GPR operand.
  kRip = 16,
  kNone = 17,
};

inline constexpr int kNumGprs = 16;

const char* RegName(Reg r);
inline bool IsGpr(Reg r) { return static_cast<uint8_t>(r) < kNumGprs; }
inline int RegIndex(Reg r) { return static_cast<int>(r); }

// ---------------------------------------------------------------------------
// Condition codes
// ---------------------------------------------------------------------------

enum class Cond : uint8_t {
  kEq = 0,   // ZF
  kNe = 1,   // !ZF
  kUlt = 2,  // CF           (b)
  kUle = 3,  // CF || ZF     (be)
  kUgt = 4,  // !CF && !ZF   (a)
  kUge = 5,  // !CF          (ae)
  kSlt = 6,  // SF != OF     (l)
  kSle = 7,  // SF != OF || ZF
  kSgt = 8,  // SF == OF && !ZF
  kSge = 9,  // SF == OF
};

const char* CondName(Cond c);

// ---------------------------------------------------------------------------
// Memory operands
// ---------------------------------------------------------------------------

// A memory operand is the 5-tuple seg:disp(base,index,scale) (§4.1 of the
// paper). The segment is modeled but fixed to the flat segment; the access
// size (1/2/4/8 bytes) is carried in the operand because our loads/stores
// take it from here.
struct MemOperand {
  Reg base = Reg::kNone;   // may be kRip for rip-relative addressing
  Reg index = Reg::kNone;  // never kRip
  uint8_t scale_log2 = 0;  // scale in {1,2,4,8}
  uint8_t size_log2 = 3;   // access size in {1,2,4,8} bytes
  int32_t disp = 0;

  uint32_t scale() const { return 1u << scale_log2; }
  uint32_t access_size() const { return 1u << size_log2; }
  bool has_base() const { return base != Reg::kNone; }
  bool has_index() const { return index != Reg::kNone; }
  bool rip_relative() const { return base == Reg::kRip; }

  bool SameAddressShape(const MemOperand& o) const {
    return base == o.base && index == o.index && scale_log2 == o.scale_log2;
  }

  friend bool operator==(const MemOperand&, const MemOperand&) = default;
};

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

enum class Op : uint8_t {
  // 0 is deliberately not a valid opcode: executing zeroed memory faults
  // immediately instead of sliding through a NOP sled.
  kInvalid = 0,
  kNop,
  kHlt,    // stop the machine (normal termination)
  kUd2,    // illegal instruction: faults; used as patch filler like int3
  kMovRI,  // r0 <- imm64
  kMovRR,  // r0 <- r1
  kLoad,   // r0 <- zext([mem])           (access size from mem.size_log2)
  kStoreR, // [mem] <- low bytes of r0
  kStoreI, // [mem] <- sign-extended imm32
  kLea,    // r0 <- effective address of mem
  kAddRR,
  kAddRI,  // imm32 sign-extended
  kSubRR,
  kSubRI,
  kImulRR,
  kImulRI,
  kMulhRR,  // r0 <- high 64 bits of unsigned r0*r1 (for magic division)
  kAndRR,
  kAndRI,
  kOrRR,
  kOrRI,
  kXorRR,
  kXorRI,
  kShlRI,  // shift count = imm & 63
  kShrRI,
  kSarRI,
  kShlRR,  // shift count = r1 & 63
  kShrRR,
  kCmpRR,
  kCmpRI,
  kTestRR,
  kJmp,    // rel32 from end of instruction; exactly 5 bytes encoded
  kJmpR,   // indirect jump through r0
  kJcc,    // cond + rel32
  kCall,   // rel32; pushes return address
  kCallR,
  kRet,
  kPush,
  kPop,
  kPushf,
  kPopf,
  kHostCall,  // call into the host runtime (imm = HostFn id); args rdi/rsi/rdx, ret rax
  kTrap,      // VM service trap: r0 unused; imm low 8 bits = code, next 32 = arg
  kCount,     // zero-cycle measurement counter #imm32 (never emitted by guests)
  kNumOps,
};

const char* OpName(Op op);

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

struct Instruction {
  Op op = Op::kNop;
  Reg r0 = Reg::kNone;
  Reg r1 = Reg::kNone;
  Cond cond = Cond::kEq;
  MemOperand mem;
  // imm64 for kMovRI; sign-extended imm32 for *_RI / kStoreI / kTrap arg;
  // shift count for shifts; rel32 displacement for kJmp/kJcc/kCall; host
  // function id for kHostCall; counter id for kCount; trap payload for kTrap
  // (low 8 bits code, bits 8..39 argument).
  int64_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// Fixed encoded length of an instruction with opcode `op`, in bytes.
unsigned EncodedLength(Op op);

// Does this opcode read or write guest memory through `mem`?
bool IsMemAccess(Op op);
// Memory access that writes (store)?
bool IsMemWrite(Op op);
// Control transfer (ends a basic block)?
bool IsControlFlow(Op op);
// Has a rel32 field interpreted relative to the end of the instruction?
bool HasRel32(Op op);
// Writes the flags register?
bool WritesFlags(Op op);
// Reads the flags register?
bool ReadsFlags(Op op);

// Registers read / written by an instruction. kHostCall and kTrap are
// reported conservatively (they read all GPRs and write RAX) so that
// downstream liveness analyses stay sound. Results never include kRip/kNone.
// RSP is included for push/pop/call/ret.
void RegsRead(const Instruction& insn, std::vector<Reg>* out);
void RegsWritten(const Instruction& insn, std::vector<Reg>* out);

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

// Appends the encoding of `insn` to `out`. Returns the encoded length.
unsigned Encode(const Instruction& insn, std::vector<uint8_t>* out);

struct Decoded {
  Instruction insn;
  unsigned length = 0;
};

// Decodes one instruction from `bytes` (at most `size` bytes available).
Result<Decoded> Decode(const uint8_t* bytes, size_t size);

// Human-readable rendering for diagnostics, AT&T-flavored.
std::string ToString(const Instruction& insn);
std::string ToString(const MemOperand& mem);

}  // namespace redfat

#endif  // REDFAT_SRC_ISA_ISA_H_
