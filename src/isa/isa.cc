#include "src/isa/isa.h"

#include <cstring>

#include "src/support/check.h"
#include "src/support/str.h"

namespace redfat {

namespace {

// Encoding layout classes. Every opcode has a fixed layout, so instruction
// length is determined by the first byte alone.
enum class Layout {
  kOpOnly,   // [op]                                  1 byte
  kRR,       // [op][(r0<<4)|r1]                      2 bytes
  kR,        // [op][r0]                              2 bytes
  kRImm64,   // [op][r0][imm64]                       10 bytes
  kRImm32,   // [op][r0][imm32]                       6 bytes
  kRImm8,    // [op][r0][imm8]                        3 bytes
  kRMem,     // [op][r0][mem]                         9 bytes
  kMemImm32, // [op][mem][imm32]                      12 bytes
  kRel32,    // [op][rel32]                           5 bytes
  kCcRel32,  // [op][cc][rel32]                       6 bytes
  kImm8,     // [op][imm8]                            2 bytes
  kTrap,     // [op][code8][arg32]                    6 bytes
  kImm32,    // [op][imm32]                           5 bytes
};

Layout LayoutOf(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kHlt:
    case Op::kUd2:
    case Op::kRet:
    case Op::kPushf:
    case Op::kPopf:
      return Layout::kOpOnly;
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kImulRR:
    case Op::kMulhRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kCmpRR:
    case Op::kTestRR:
      return Layout::kRR;
    case Op::kJmpR:
    case Op::kCallR:
    case Op::kPush:
    case Op::kPop:
      return Layout::kR;
    case Op::kMovRI:
      return Layout::kRImm64;
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kImulRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kCmpRI:
      return Layout::kRImm32;
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kSarRI:
      return Layout::kRImm8;
    case Op::kLoad:
    case Op::kStoreR:
    case Op::kLea:
      return Layout::kRMem;
    case Op::kStoreI:
      return Layout::kMemImm32;
    case Op::kJmp:
    case Op::kCall:
      return Layout::kRel32;
    case Op::kJcc:
      return Layout::kCcRel32;
    case Op::kHostCall:
      return Layout::kImm8;
    case Op::kTrap:
      return Layout::kTrap;
    case Op::kCount:
      return Layout::kImm32;
    case Op::kInvalid:
    case Op::kNumOps:
      break;
  }
  REDFAT_FATAL("bad opcode");
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) | static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

void EncodeMem(const MemOperand& mem, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(mem.base));
  out->push_back(static_cast<uint8_t>(mem.index));
  out->push_back(static_cast<uint8_t>((mem.scale_log2 & 3) | ((mem.size_log2 & 3) << 2)));
  PutU32(out, static_cast<uint32_t>(mem.disp));
}

bool DecodeMem(const uint8_t* p, MemOperand* mem) {
  const uint8_t base = p[0];
  const uint8_t index = p[1];
  const uint8_t ss = p[2];
  if (base > static_cast<uint8_t>(Reg::kNone) || index > static_cast<uint8_t>(Reg::kNone)) {
    return false;
  }
  if (index == static_cast<uint8_t>(Reg::kRip)) {
    return false;  // rip is only valid as a base
  }
  if ((ss & ~0x0fu) != 0) {
    return false;
  }
  mem->base = static_cast<Reg>(base);
  mem->index = static_cast<Reg>(index);
  mem->scale_log2 = ss & 3;
  mem->size_log2 = (ss >> 2) & 3;
  mem->disp = static_cast<int32_t>(GetU32(p + 3));
  return true;
}

bool ValidGpr(uint8_t r) { return r < kNumGprs; }

}  // namespace

const char* RegName(Reg r) {
  static const char* kNames[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                 "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                 "r12", "r13", "r14", "r15", "rip", "<none>"};
  const auto i = static_cast<size_t>(r);
  REDFAT_CHECK(i < sizeof(kNames) / sizeof(kNames[0]));
  return kNames[i];
}

const char* CondName(Cond c) {
  static const char* kNames[] = {"e", "ne", "b", "be", "a", "ae", "l", "le", "g", "ge"};
  const auto i = static_cast<size_t>(c);
  REDFAT_CHECK(i < sizeof(kNames) / sizeof(kNames[0]));
  return kNames[i];
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHlt: return "hlt";
    case Op::kUd2: return "ud2";
    case Op::kMovRI: return "mov";
    case Op::kMovRR: return "mov";
    case Op::kLoad: return "load";
    case Op::kStoreR: return "store";
    case Op::kStoreI: return "storei";
    case Op::kLea: return "lea";
    case Op::kAddRR: case Op::kAddRI: return "add";
    case Op::kSubRR: case Op::kSubRI: return "sub";
    case Op::kImulRR: case Op::kImulRI: return "imul";
    case Op::kMulhRR: return "mulh";
    case Op::kAndRR: case Op::kAndRI: return "and";
    case Op::kOrRR: case Op::kOrRI: return "or";
    case Op::kXorRR: case Op::kXorRI: return "xor";
    case Op::kShlRI: case Op::kShlRR: return "shl";
    case Op::kShrRI: case Op::kShrRR: return "shr";
    case Op::kSarRI: return "sar";
    case Op::kCmpRR: case Op::kCmpRI: return "cmp";
    case Op::kTestRR: return "test";
    case Op::kJmp: return "jmp";
    case Op::kJmpR: return "jmp*";
    case Op::kJcc: return "jcc";
    case Op::kCall: return "call";
    case Op::kCallR: return "call*";
    case Op::kRet: return "ret";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kPushf: return "pushf";
    case Op::kPopf: return "popf";
    case Op::kHostCall: return "hostcall";
    case Op::kTrap: return "trap";
    case Op::kCount: return "count";
    case Op::kInvalid: case Op::kNumOps: break;
  }
  return "<bad>";
}

unsigned EncodedLength(Op op) {
  switch (LayoutOf(op)) {
    case Layout::kOpOnly: return 1;
    case Layout::kRR: return 2;
    case Layout::kR: return 2;
    case Layout::kRImm64: return 10;
    case Layout::kRImm32: return 6;
    case Layout::kRImm8: return 3;
    case Layout::kRMem: return 9;
    case Layout::kMemImm32: return 12;
    case Layout::kRel32: return 5;
    case Layout::kCcRel32: return 6;
    case Layout::kImm8: return 2;
    case Layout::kTrap: return 6;
    case Layout::kImm32: return 5;
  }
  REDFAT_FATAL("bad layout");
}

bool IsMemAccess(Op op) { return op == Op::kLoad || op == Op::kStoreR || op == Op::kStoreI; }

bool IsMemWrite(Op op) { return op == Op::kStoreR || op == Op::kStoreI; }

bool IsControlFlow(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kJmpR:
    case Op::kJcc:
    case Op::kCall:
    case Op::kCallR:
    case Op::kRet:
    case Op::kHlt:
    case Op::kUd2:
      return true;
    default:
      return false;
  }
}

bool HasRel32(Op op) { return op == Op::kJmp || op == Op::kJcc || op == Op::kCall; }

bool WritesFlags(Op op) {
  switch (op) {
    case Op::kAddRR: case Op::kAddRI:
    case Op::kSubRR: case Op::kSubRI:
    case Op::kImulRR: case Op::kImulRI:
    case Op::kMulhRR:
    case Op::kAndRR: case Op::kAndRI:
    case Op::kOrRR: case Op::kOrRI:
    case Op::kXorRR: case Op::kXorRI:
    case Op::kShlRI: case Op::kShrRI: case Op::kSarRI:
    case Op::kShlRR: case Op::kShrRR:
    case Op::kCmpRR: case Op::kCmpRI:
    case Op::kTestRR:
    case Op::kPopf:
      return true;
    default:
      return false;
  }
}

bool ReadsFlags(Op op) { return op == Op::kJcc || op == Op::kPushf; }

namespace {

void AddMemRegs(const MemOperand& mem, std::vector<Reg>* out) {
  if (mem.has_base() && mem.base != Reg::kRip) {
    out->push_back(mem.base);
  }
  if (mem.has_index()) {
    out->push_back(mem.index);
  }
}

void AddAllGprs(std::vector<Reg>* out) {
  for (int i = 0; i < kNumGprs; ++i) {
    out->push_back(static_cast<Reg>(i));
  }
}

}  // namespace

void RegsRead(const Instruction& insn, std::vector<Reg>* out) {
  out->clear();
  switch (insn.op) {
    case Op::kMovRR:
      out->push_back(insn.r1);
      break;
    case Op::kLoad:
    case Op::kLea:
      AddMemRegs(insn.mem, out);
      break;
    case Op::kStoreR:
      out->push_back(insn.r0);
      AddMemRegs(insn.mem, out);
      break;
    case Op::kStoreI:
      AddMemRegs(insn.mem, out);
      break;
    case Op::kAddRR: case Op::kSubRR: case Op::kImulRR: case Op::kMulhRR:
    case Op::kAndRR: case Op::kOrRR: case Op::kXorRR:
    case Op::kShlRR: case Op::kShrRR:
      out->push_back(insn.r0);
      out->push_back(insn.r1);
      break;
    case Op::kAddRI: case Op::kSubRI: case Op::kImulRI:
    case Op::kAndRI: case Op::kOrRI: case Op::kXorRI:
    case Op::kShlRI: case Op::kShrRI: case Op::kSarRI:
      out->push_back(insn.r0);
      break;
    case Op::kCmpRR: case Op::kTestRR:
      out->push_back(insn.r0);
      out->push_back(insn.r1);
      break;
    case Op::kCmpRI:
      out->push_back(insn.r0);
      break;
    case Op::kJmpR:
    case Op::kCallR:
      out->push_back(insn.r0);
      out->push_back(Reg::kRsp);
      break;
    case Op::kPush:
      out->push_back(insn.r0);
      out->push_back(Reg::kRsp);
      break;
    case Op::kPop:
    case Op::kPushf:
    case Op::kPopf:
    case Op::kRet:
    case Op::kCall:
      out->push_back(Reg::kRsp);
      break;
    case Op::kHostCall:
    case Op::kTrap:
      // Conservative: the host may inspect any register / guest memory.
      AddAllGprs(out);
      break;
    default:
      break;
  }
}

void RegsWritten(const Instruction& insn, std::vector<Reg>* out) {
  out->clear();
  switch (insn.op) {
    case Op::kMovRI: case Op::kMovRR: case Op::kLoad: case Op::kLea:
    case Op::kAddRR: case Op::kAddRI: case Op::kSubRR: case Op::kSubRI:
    case Op::kImulRR: case Op::kImulRI: case Op::kMulhRR:
    case Op::kAndRR: case Op::kAndRI: case Op::kOrRR: case Op::kOrRI:
    case Op::kXorRR: case Op::kXorRI:
    case Op::kShlRI: case Op::kShrRI: case Op::kSarRI:
    case Op::kShlRR: case Op::kShrRR:
      out->push_back(insn.r0);
      break;
    case Op::kPop:
      out->push_back(insn.r0);
      out->push_back(Reg::kRsp);
      break;
    case Op::kPush:
    case Op::kPushf:
    case Op::kPopf:
    case Op::kRet:
    case Op::kCall:
    case Op::kCallR:
    case Op::kJmpR:
      out->push_back(Reg::kRsp);
      break;
    case Op::kHostCall:
      out->push_back(Reg::kRax);
      break;
    default:
      break;
  }
}

unsigned Encode(const Instruction& insn, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  out->push_back(static_cast<uint8_t>(insn.op));
  switch (LayoutOf(insn.op)) {
    case Layout::kOpOnly:
      break;
    case Layout::kRR:
      REDFAT_CHECK(IsGpr(insn.r0) && IsGpr(insn.r1));
      out->push_back(static_cast<uint8_t>((RegIndex(insn.r0) << 4) | RegIndex(insn.r1)));
      break;
    case Layout::kR:
      REDFAT_CHECK(IsGpr(insn.r0));
      out->push_back(static_cast<uint8_t>(RegIndex(insn.r0)));
      break;
    case Layout::kRImm64:
      REDFAT_CHECK(IsGpr(insn.r0));
      out->push_back(static_cast<uint8_t>(RegIndex(insn.r0)));
      PutU64(out, static_cast<uint64_t>(insn.imm));
      break;
    case Layout::kRImm32:
      REDFAT_CHECK(IsGpr(insn.r0));
      out->push_back(static_cast<uint8_t>(RegIndex(insn.r0)));
      PutU32(out, static_cast<uint32_t>(insn.imm));
      break;
    case Layout::kRImm8:
      REDFAT_CHECK(IsGpr(insn.r0));
      out->push_back(static_cast<uint8_t>(RegIndex(insn.r0)));
      out->push_back(static_cast<uint8_t>(insn.imm & 63));
      break;
    case Layout::kRMem:
      REDFAT_CHECK(IsGpr(insn.r0));
      out->push_back(static_cast<uint8_t>(RegIndex(insn.r0)));
      EncodeMem(insn.mem, out);
      break;
    case Layout::kMemImm32:
      EncodeMem(insn.mem, out);
      PutU32(out, static_cast<uint32_t>(insn.imm));
      break;
    case Layout::kRel32:
      PutU32(out, static_cast<uint32_t>(insn.imm));
      break;
    case Layout::kCcRel32:
      out->push_back(static_cast<uint8_t>(insn.cond));
      PutU32(out, static_cast<uint32_t>(insn.imm));
      break;
    case Layout::kImm8:
      out->push_back(static_cast<uint8_t>(insn.imm));
      break;
    case Layout::kTrap:
      out->push_back(static_cast<uint8_t>(insn.imm & 0xff));
      PutU32(out, static_cast<uint32_t>(static_cast<uint64_t>(insn.imm) >> 8));
      break;
    case Layout::kImm32:
      PutU32(out, static_cast<uint32_t>(insn.imm));
      break;
  }
  const unsigned len = static_cast<unsigned>(out->size() - start);
  REDFAT_CHECK(len == EncodedLength(insn.op));
  return len;
}

Result<Decoded> Decode(const uint8_t* bytes, size_t size) {
  if (size == 0) {
    return Error("decode: empty buffer");
  }
  const uint8_t opb = bytes[0];
  if (opb == 0 || opb >= static_cast<uint8_t>(Op::kNumOps)) {
    return Error(StrFormat("decode: bad opcode byte 0x%02x", opb));
  }
  const Op op = static_cast<Op>(opb);
  const unsigned len = EncodedLength(op);
  if (size < len) {
    return Error(StrFormat("decode: truncated %s (need %u bytes, have %zu)", OpName(op), len,
                           size));
  }
  Decoded d;
  d.insn.op = op;
  d.length = len;
  const uint8_t* p = bytes + 1;
  switch (LayoutOf(op)) {
    case Layout::kOpOnly:
      break;
    case Layout::kRR: {
      const uint8_t r0 = p[0] >> 4;
      const uint8_t r1 = p[0] & 0x0f;
      d.insn.r0 = static_cast<Reg>(r0);
      d.insn.r1 = static_cast<Reg>(r1);
      break;
    }
    case Layout::kR:
      if (!ValidGpr(p[0])) {
        return Error("decode: bad register");
      }
      d.insn.r0 = static_cast<Reg>(p[0]);
      break;
    case Layout::kRImm64:
      if (!ValidGpr(p[0])) {
        return Error("decode: bad register");
      }
      d.insn.r0 = static_cast<Reg>(p[0]);
      d.insn.imm = static_cast<int64_t>(GetU64(p + 1));
      break;
    case Layout::kRImm32:
      if (!ValidGpr(p[0])) {
        return Error("decode: bad register");
      }
      d.insn.r0 = static_cast<Reg>(p[0]);
      d.insn.imm = static_cast<int32_t>(GetU32(p + 1));
      break;
    case Layout::kRImm8:
      if (!ValidGpr(p[0])) {
        return Error("decode: bad register");
      }
      d.insn.r0 = static_cast<Reg>(p[0]);
      d.insn.imm = p[1] & 63;
      break;
    case Layout::kRMem:
      if (!ValidGpr(p[0])) {
        return Error("decode: bad register");
      }
      d.insn.r0 = static_cast<Reg>(p[0]);
      if (!DecodeMem(p + 1, &d.insn.mem)) {
        return Error("decode: bad memory operand");
      }
      break;
    case Layout::kMemImm32:
      if (!DecodeMem(p, &d.insn.mem)) {
        return Error("decode: bad memory operand");
      }
      d.insn.imm = static_cast<int32_t>(GetU32(p + 7));
      break;
    case Layout::kRel32:
      d.insn.imm = static_cast<int32_t>(GetU32(p));
      break;
    case Layout::kCcRel32:
      if (p[0] > static_cast<uint8_t>(Cond::kSge)) {
        return Error("decode: bad condition code");
      }
      d.insn.cond = static_cast<Cond>(p[0]);
      d.insn.imm = static_cast<int32_t>(GetU32(p + 1));
      break;
    case Layout::kImm8:
      d.insn.imm = p[0];
      break;
    case Layout::kTrap:
      d.insn.imm =
          static_cast<int64_t>(static_cast<uint64_t>(p[0]) |
                               (static_cast<uint64_t>(GetU32(p + 1)) << 8));
      break;
    case Layout::kImm32:
      d.insn.imm = static_cast<int32_t>(GetU32(p));
      break;
  }
  return d;
}

std::string ToString(const MemOperand& mem) {
  std::string s = StrFormat("%d", mem.disp);
  s += "(";
  if (mem.has_base()) {
    s += "%";
    s += RegName(mem.base);
  }
  if (mem.has_index()) {
    s += StrFormat(",%%%s,%u", RegName(mem.index), mem.scale());
  }
  s += StrFormat("):%u", mem.access_size());
  return s;
}

std::string ToString(const Instruction& insn) {
  switch (LayoutOf(insn.op)) {
    case Layout::kOpOnly:
      return OpName(insn.op);
    case Layout::kRR:
      return StrFormat("%s %%%s, %%%s", OpName(insn.op), RegName(insn.r1), RegName(insn.r0));
    case Layout::kR:
      return StrFormat("%s %%%s", OpName(insn.op), RegName(insn.r0));
    case Layout::kRImm64:
    case Layout::kRImm32:
    case Layout::kRImm8:
      return StrFormat("%s $%lld, %%%s", OpName(insn.op),
                       static_cast<long long>(insn.imm), RegName(insn.r0));
    case Layout::kRMem:
      if (insn.op == Op::kStoreR) {
        return StrFormat("%s %%%s, %s", OpName(insn.op), RegName(insn.r0),
                         ToString(insn.mem).c_str());
      }
      return StrFormat("%s %s, %%%s", OpName(insn.op), ToString(insn.mem).c_str(),
                       RegName(insn.r0));
    case Layout::kMemImm32:
      return StrFormat("%s $%lld, %s", OpName(insn.op), static_cast<long long>(insn.imm),
                       ToString(insn.mem).c_str());
    case Layout::kRel32:
      return StrFormat("%s .%+lld", OpName(insn.op), static_cast<long long>(insn.imm));
    case Layout::kCcRel32:
      return StrFormat("j%s .%+lld", CondName(insn.cond), static_cast<long long>(insn.imm));
    case Layout::kImm8:
    case Layout::kImm32:
      return StrFormat("%s $%lld", OpName(insn.op), static_cast<long long>(insn.imm));
    case Layout::kTrap:
      return StrFormat("trap $%lld, $%lld", static_cast<long long>(insn.imm & 0xff),
                       static_cast<long long>(static_cast<uint64_t>(insn.imm) >> 8));
  }
  return "<bad>";
}

}  // namespace redfat
