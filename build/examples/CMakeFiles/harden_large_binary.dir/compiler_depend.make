# Empty compiler generated dependencies file for harden_large_binary.
# This may be replaced when dependencies are built.
