file(REMOVE_RECURSE
  "CMakeFiles/harden_large_binary.dir/harden_large_binary.cpp.o"
  "CMakeFiles/harden_large_binary.dir/harden_large_binary.cpp.o.d"
  "harden_large_binary"
  "harden_large_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_large_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
