file(REMOVE_RECURSE
  "CMakeFiles/cve_wireshark.dir/cve_wireshark.cpp.o"
  "CMakeFiles/cve_wireshark.dir/cve_wireshark.cpp.o.d"
  "cve_wireshark"
  "cve_wireshark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_wireshark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
