# Empty dependencies file for cve_wireshark.
# This may be replaced when dependencies are built.
