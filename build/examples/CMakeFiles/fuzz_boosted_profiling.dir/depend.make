# Empty dependencies file for fuzz_boosted_profiling.
# This may be replaced when dependencies are built.
