file(REMOVE_RECURSE
  "CMakeFiles/fuzz_boosted_profiling.dir/fuzz_boosted_profiling.cpp.o"
  "CMakeFiles/fuzz_boosted_profiling.dir/fuzz_boosted_profiling.cpp.o.d"
  "fuzz_boosted_profiling"
  "fuzz_boosted_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_boosted_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
