# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cve_wireshark "/root/repo/build/examples/cve_wireshark")
set_tests_properties(example_cve_wireshark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_workflow "/root/repo/build/examples/profile_workflow")
set_tests_properties(example_profile_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_harden_large_binary "/root/repo/build/examples/harden_large_binary")
set_tests_properties(example_harden_large_binary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fuzz_boosted_profiling "/root/repo/build/examples/fuzz_boosted_profiling")
set_tests_properties(example_fuzz_boosted_profiling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
