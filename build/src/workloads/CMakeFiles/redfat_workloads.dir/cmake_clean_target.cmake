file(REMOVE_RECURSE
  "libredfat_workloads.a"
)
