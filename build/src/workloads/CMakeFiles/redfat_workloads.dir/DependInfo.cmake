
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/builder.cc" "src/workloads/CMakeFiles/redfat_workloads.dir/builder.cc.o" "gcc" "src/workloads/CMakeFiles/redfat_workloads.dir/builder.cc.o.d"
  "/root/repo/src/workloads/cve.cc" "src/workloads/CMakeFiles/redfat_workloads.dir/cve.cc.o" "gcc" "src/workloads/CMakeFiles/redfat_workloads.dir/cve.cc.o.d"
  "/root/repo/src/workloads/kraken.cc" "src/workloads/CMakeFiles/redfat_workloads.dir/kraken.cc.o" "gcc" "src/workloads/CMakeFiles/redfat_workloads.dir/kraken.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/workloads/CMakeFiles/redfat_workloads.dir/spec.cc.o" "gcc" "src/workloads/CMakeFiles/redfat_workloads.dir/spec.cc.o.d"
  "/root/repo/src/workloads/synth.cc" "src/workloads/CMakeFiles/redfat_workloads.dir/synth.cc.o" "gcc" "src/workloads/CMakeFiles/redfat_workloads.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/redfat_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/redfat_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/bin/CMakeFiles/redfat_bin.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/redfat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/redfat_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/redfat_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
