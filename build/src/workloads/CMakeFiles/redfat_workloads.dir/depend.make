# Empty dependencies file for redfat_workloads.
# This may be replaced when dependencies are built.
