file(REMOVE_RECURSE
  "CMakeFiles/redfat_workloads.dir/builder.cc.o"
  "CMakeFiles/redfat_workloads.dir/builder.cc.o.d"
  "CMakeFiles/redfat_workloads.dir/cve.cc.o"
  "CMakeFiles/redfat_workloads.dir/cve.cc.o.d"
  "CMakeFiles/redfat_workloads.dir/kraken.cc.o"
  "CMakeFiles/redfat_workloads.dir/kraken.cc.o.d"
  "CMakeFiles/redfat_workloads.dir/spec.cc.o"
  "CMakeFiles/redfat_workloads.dir/spec.cc.o.d"
  "CMakeFiles/redfat_workloads.dir/synth.cc.o"
  "CMakeFiles/redfat_workloads.dir/synth.cc.o.d"
  "libredfat_workloads.a"
  "libredfat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
