file(REMOVE_RECURSE
  "CMakeFiles/redfat_asm.dir/assembler.cc.o"
  "CMakeFiles/redfat_asm.dir/assembler.cc.o.d"
  "libredfat_asm.a"
  "libredfat_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
