# Empty compiler generated dependencies file for redfat_asm.
# This may be replaced when dependencies are built.
