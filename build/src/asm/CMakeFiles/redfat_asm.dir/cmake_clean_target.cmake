file(REMOVE_RECURSE
  "libredfat_asm.a"
)
