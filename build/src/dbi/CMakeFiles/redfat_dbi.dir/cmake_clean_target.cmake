file(REMOVE_RECURSE
  "libredfat_dbi.a"
)
