# Empty dependencies file for redfat_dbi.
# This may be replaced when dependencies are built.
