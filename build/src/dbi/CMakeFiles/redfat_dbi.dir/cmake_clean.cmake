file(REMOVE_RECURSE
  "CMakeFiles/redfat_dbi.dir/memcheck.cc.o"
  "CMakeFiles/redfat_dbi.dir/memcheck.cc.o.d"
  "libredfat_dbi.a"
  "libredfat_dbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_dbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
