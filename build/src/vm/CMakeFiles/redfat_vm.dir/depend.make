# Empty dependencies file for redfat_vm.
# This may be replaced when dependencies are built.
