file(REMOVE_RECURSE
  "libredfat_vm.a"
)
