file(REMOVE_RECURSE
  "CMakeFiles/redfat_vm.dir/memory.cc.o"
  "CMakeFiles/redfat_vm.dir/memory.cc.o.d"
  "CMakeFiles/redfat_vm.dir/vm.cc.o"
  "CMakeFiles/redfat_vm.dir/vm.cc.o.d"
  "libredfat_vm.a"
  "libredfat_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
