# Empty compiler generated dependencies file for rfobjdump.
# This may be replaced when dependencies are built.
