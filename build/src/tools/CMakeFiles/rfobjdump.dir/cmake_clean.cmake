file(REMOVE_RECURSE
  "CMakeFiles/rfobjdump.dir/rfobjdump_main.cc.o"
  "CMakeFiles/rfobjdump.dir/rfobjdump_main.cc.o.d"
  "rfobjdump"
  "rfobjdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfobjdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
