# Empty dependencies file for rfobjdump.
# This may be replaced when dependencies are built.
