file(REMOVE_RECURSE
  "CMakeFiles/redfat.dir/redfat_main.cc.o"
  "CMakeFiles/redfat.dir/redfat_main.cc.o.d"
  "redfat"
  "redfat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
