# Empty compiler generated dependencies file for redfat.
# This may be replaced when dependencies are built.
