# Empty dependencies file for redfat_tool_io.
# This may be replaced when dependencies are built.
