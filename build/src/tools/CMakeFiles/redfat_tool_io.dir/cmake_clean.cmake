file(REMOVE_RECURSE
  "CMakeFiles/redfat_tool_io.dir/tool_io.cc.o"
  "CMakeFiles/redfat_tool_io.dir/tool_io.cc.o.d"
  "libredfat_tool_io.a"
  "libredfat_tool_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_tool_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
