file(REMOVE_RECURSE
  "libredfat_tool_io.a"
)
