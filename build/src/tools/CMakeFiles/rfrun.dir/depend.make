# Empty dependencies file for rfrun.
# This may be replaced when dependencies are built.
