file(REMOVE_RECURSE
  "CMakeFiles/rfrun.dir/rfrun_main.cc.o"
  "CMakeFiles/rfrun.dir/rfrun_main.cc.o.d"
  "rfrun"
  "rfrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
