file(REMOVE_RECURSE
  "CMakeFiles/rfgen.dir/rfgen_main.cc.o"
  "CMakeFiles/rfgen.dir/rfgen_main.cc.o.d"
  "rfgen"
  "rfgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
