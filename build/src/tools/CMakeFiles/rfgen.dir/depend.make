# Empty dependencies file for rfgen.
# This may be replaced when dependencies are built.
