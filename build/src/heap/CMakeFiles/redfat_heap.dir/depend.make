# Empty dependencies file for redfat_heap.
# This may be replaced when dependencies are built.
