
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/legacy_heap.cc" "src/heap/CMakeFiles/redfat_heap.dir/legacy_heap.cc.o" "gcc" "src/heap/CMakeFiles/redfat_heap.dir/legacy_heap.cc.o.d"
  "/root/repo/src/heap/lowfat.cc" "src/heap/CMakeFiles/redfat_heap.dir/lowfat.cc.o" "gcc" "src/heap/CMakeFiles/redfat_heap.dir/lowfat.cc.o.d"
  "/root/repo/src/heap/redfat_allocator.cc" "src/heap/CMakeFiles/redfat_heap.dir/redfat_allocator.cc.o" "gcc" "src/heap/CMakeFiles/redfat_heap.dir/redfat_allocator.cc.o.d"
  "/root/repo/src/heap/shadow_allocator.cc" "src/heap/CMakeFiles/redfat_heap.dir/shadow_allocator.cc.o" "gcc" "src/heap/CMakeFiles/redfat_heap.dir/shadow_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/redfat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/redfat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/redfat_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bin/CMakeFiles/redfat_bin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
