file(REMOVE_RECURSE
  "libredfat_heap.a"
)
