file(REMOVE_RECURSE
  "CMakeFiles/redfat_heap.dir/legacy_heap.cc.o"
  "CMakeFiles/redfat_heap.dir/legacy_heap.cc.o.d"
  "CMakeFiles/redfat_heap.dir/lowfat.cc.o"
  "CMakeFiles/redfat_heap.dir/lowfat.cc.o.d"
  "CMakeFiles/redfat_heap.dir/redfat_allocator.cc.o"
  "CMakeFiles/redfat_heap.dir/redfat_allocator.cc.o.d"
  "CMakeFiles/redfat_heap.dir/shadow_allocator.cc.o"
  "CMakeFiles/redfat_heap.dir/shadow_allocator.cc.o.d"
  "libredfat_heap.a"
  "libredfat_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
