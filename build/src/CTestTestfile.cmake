# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("asm")
subdirs("bin")
subdirs("vm")
subdirs("heap")
subdirs("shadow")
subdirs("rw")
subdirs("core")
subdirs("dbi")
subdirs("workloads")
subdirs("tools")
