# Empty dependencies file for redfat_support.
# This may be replaced when dependencies are built.
