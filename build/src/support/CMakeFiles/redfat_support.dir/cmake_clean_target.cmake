file(REMOVE_RECURSE
  "libredfat_support.a"
)
