file(REMOVE_RECURSE
  "CMakeFiles/redfat_support.dir/magic_div.cc.o"
  "CMakeFiles/redfat_support.dir/magic_div.cc.o.d"
  "libredfat_support.a"
  "libredfat_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
