file(REMOVE_RECURSE
  "libredfat_bin.a"
)
