file(REMOVE_RECURSE
  "CMakeFiles/redfat_bin.dir/image.cc.o"
  "CMakeFiles/redfat_bin.dir/image.cc.o.d"
  "libredfat_bin.a"
  "libredfat_bin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
