# Empty compiler generated dependencies file for redfat_bin.
# This may be replaced when dependencies are built.
