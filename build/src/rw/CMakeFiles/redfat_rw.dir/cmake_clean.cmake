file(REMOVE_RECURSE
  "CMakeFiles/redfat_rw.dir/disasm.cc.o"
  "CMakeFiles/redfat_rw.dir/disasm.cc.o.d"
  "CMakeFiles/redfat_rw.dir/liveness.cc.o"
  "CMakeFiles/redfat_rw.dir/liveness.cc.o.d"
  "CMakeFiles/redfat_rw.dir/rewriter.cc.o"
  "CMakeFiles/redfat_rw.dir/rewriter.cc.o.d"
  "libredfat_rw.a"
  "libredfat_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
