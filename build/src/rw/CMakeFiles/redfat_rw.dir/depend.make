# Empty dependencies file for redfat_rw.
# This may be replaced when dependencies are built.
