file(REMOVE_RECURSE
  "libredfat_rw.a"
)
