
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rw/disasm.cc" "src/rw/CMakeFiles/redfat_rw.dir/disasm.cc.o" "gcc" "src/rw/CMakeFiles/redfat_rw.dir/disasm.cc.o.d"
  "/root/repo/src/rw/liveness.cc" "src/rw/CMakeFiles/redfat_rw.dir/liveness.cc.o" "gcc" "src/rw/CMakeFiles/redfat_rw.dir/liveness.cc.o.d"
  "/root/repo/src/rw/rewriter.cc" "src/rw/CMakeFiles/redfat_rw.dir/rewriter.cc.o" "gcc" "src/rw/CMakeFiles/redfat_rw.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/redfat_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/bin/CMakeFiles/redfat_bin.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/redfat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/redfat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
