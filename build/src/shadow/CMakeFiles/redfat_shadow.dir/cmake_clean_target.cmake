file(REMOVE_RECURSE
  "libredfat_shadow.a"
)
