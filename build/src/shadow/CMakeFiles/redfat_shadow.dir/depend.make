# Empty dependencies file for redfat_shadow.
# This may be replaced when dependencies are built.
