file(REMOVE_RECURSE
  "CMakeFiles/redfat_shadow.dir/shadow_map.cc.o"
  "CMakeFiles/redfat_shadow.dir/shadow_map.cc.o.d"
  "libredfat_shadow.a"
  "libredfat_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
