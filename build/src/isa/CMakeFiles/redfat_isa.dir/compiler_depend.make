# Empty compiler generated dependencies file for redfat_isa.
# This may be replaced when dependencies are built.
