file(REMOVE_RECURSE
  "CMakeFiles/redfat_isa.dir/isa.cc.o"
  "CMakeFiles/redfat_isa.dir/isa.cc.o.d"
  "libredfat_isa.a"
  "libredfat_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
