file(REMOVE_RECURSE
  "libredfat_isa.a"
)
