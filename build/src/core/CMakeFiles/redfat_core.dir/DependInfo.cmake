
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codegen.cc" "src/core/CMakeFiles/redfat_core.dir/codegen.cc.o" "gcc" "src/core/CMakeFiles/redfat_core.dir/codegen.cc.o.d"
  "/root/repo/src/core/fuzz_profile.cc" "src/core/CMakeFiles/redfat_core.dir/fuzz_profile.cc.o" "gcc" "src/core/CMakeFiles/redfat_core.dir/fuzz_profile.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/redfat_core.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/redfat_core.dir/harness.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/redfat_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/redfat_core.dir/plan.cc.o.d"
  "/root/repo/src/core/redfat.cc" "src/core/CMakeFiles/redfat_core.dir/redfat.cc.o" "gcc" "src/core/CMakeFiles/redfat_core.dir/redfat.cc.o.d"
  "/root/repo/src/core/sitemap.cc" "src/core/CMakeFiles/redfat_core.dir/sitemap.cc.o" "gcc" "src/core/CMakeFiles/redfat_core.dir/sitemap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rw/CMakeFiles/redfat_rw.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/redfat_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/redfat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/redfat_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/bin/CMakeFiles/redfat_bin.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/redfat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/redfat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
