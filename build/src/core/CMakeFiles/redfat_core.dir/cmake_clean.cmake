file(REMOVE_RECURSE
  "CMakeFiles/redfat_core.dir/codegen.cc.o"
  "CMakeFiles/redfat_core.dir/codegen.cc.o.d"
  "CMakeFiles/redfat_core.dir/fuzz_profile.cc.o"
  "CMakeFiles/redfat_core.dir/fuzz_profile.cc.o.d"
  "CMakeFiles/redfat_core.dir/harness.cc.o"
  "CMakeFiles/redfat_core.dir/harness.cc.o.d"
  "CMakeFiles/redfat_core.dir/plan.cc.o"
  "CMakeFiles/redfat_core.dir/plan.cc.o.d"
  "CMakeFiles/redfat_core.dir/redfat.cc.o"
  "CMakeFiles/redfat_core.dir/redfat.cc.o.d"
  "CMakeFiles/redfat_core.dir/sitemap.cc.o"
  "CMakeFiles/redfat_core.dir/sitemap.cc.o.d"
  "libredfat_core.a"
  "libredfat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redfat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
