file(REMOVE_RECURSE
  "libredfat_core.a"
)
