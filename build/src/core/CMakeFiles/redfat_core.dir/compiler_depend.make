# Empty compiler generated dependencies file for redfat_core.
# This may be replaced when dependencies are built.
