# Empty dependencies file for bench_table2_cves.
# This may be replaced when dependencies are built.
