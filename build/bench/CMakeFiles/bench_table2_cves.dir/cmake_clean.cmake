file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cves.dir/bench_table2_cves.cc.o"
  "CMakeFiles/bench_table2_cves.dir/bench_table2_cves.cc.o.d"
  "bench_table2_cves"
  "bench_table2_cves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
