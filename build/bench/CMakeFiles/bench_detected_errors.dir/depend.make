# Empty dependencies file for bench_detected_errors.
# This may be replaced when dependencies are built.
