file(REMOVE_RECURSE
  "CMakeFiles/bench_detected_errors.dir/bench_detected_errors.cc.o"
  "CMakeFiles/bench_detected_errors.dir/bench_detected_errors.cc.o.d"
  "bench_detected_errors"
  "bench_detected_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detected_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
