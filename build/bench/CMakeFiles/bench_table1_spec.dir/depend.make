# Empty dependencies file for bench_table1_spec.
# This may be replaced when dependencies are built.
