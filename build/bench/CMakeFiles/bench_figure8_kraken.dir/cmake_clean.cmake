file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_kraken.dir/bench_figure8_kraken.cc.o"
  "CMakeFiles/bench_figure8_kraken.dir/bench_figure8_kraken.cc.o.d"
  "bench_figure8_kraken"
  "bench_figure8_kraken.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_kraken.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
