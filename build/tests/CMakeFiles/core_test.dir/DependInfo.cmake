
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/core_test.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/redfat_tool_io.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/redfat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dbi/CMakeFiles/redfat_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/redfat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rw/CMakeFiles/redfat_rw.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/redfat_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/redfat_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/redfat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/redfat_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/bin/CMakeFiles/redfat_bin.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/redfat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/redfat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
