file(REMOVE_RECURSE
  "CMakeFiles/juliet_full_test.dir/juliet_full_test.cc.o"
  "CMakeFiles/juliet_full_test.dir/juliet_full_test.cc.o.d"
  "juliet_full_test"
  "juliet_full_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juliet_full_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
