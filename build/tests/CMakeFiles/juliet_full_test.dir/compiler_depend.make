# Empty compiler generated dependencies file for juliet_full_test.
# This may be replaced when dependencies are built.
