file(REMOVE_RECURSE
  "CMakeFiles/memcheck_test.dir/memcheck_test.cc.o"
  "CMakeFiles/memcheck_test.dir/memcheck_test.cc.o.d"
  "memcheck_test"
  "memcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
