# Empty dependencies file for memcheck_test.
# This may be replaced when dependencies are built.
