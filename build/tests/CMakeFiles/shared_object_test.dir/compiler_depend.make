# Empty compiler generated dependencies file for shared_object_test.
# This may be replaced when dependencies are built.
