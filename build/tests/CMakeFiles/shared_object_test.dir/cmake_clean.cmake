file(REMOVE_RECURSE
  "CMakeFiles/shared_object_test.dir/shared_object_test.cc.o"
  "CMakeFiles/shared_object_test.dir/shared_object_test.cc.o.d"
  "shared_object_test"
  "shared_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
