# Empty compiler generated dependencies file for fuzz_profile_test.
# This may be replaced when dependencies are built.
