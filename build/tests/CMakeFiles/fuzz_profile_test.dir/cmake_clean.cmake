file(REMOVE_RECURSE
  "CMakeFiles/fuzz_profile_test.dir/fuzz_profile_test.cc.o"
  "CMakeFiles/fuzz_profile_test.dir/fuzz_profile_test.cc.o.d"
  "fuzz_profile_test"
  "fuzz_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
