// The two-phase profile workflow (paper Fig. 5): eliminating low-fat false
// positives with an automatically generated allow-list.
//
// The guest program uses the `(array - K)[i]` anti-idiom — perfectly valid
// accesses through an intentionally out-of-bounds base pointer (Fortran
// non-zero-based arrays compile to exactly this). Naive pointer-arithmetic
// checking flags them; the profile-based allow-list demotes those sites to
// (Redzone)-only and keeps full protection everywhere else.
#include <cstdio>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/synth.h"

using namespace redfat;

int main() {
  SynthParams params;
  params.seed = 2026;
  params.anti_idiom_sites = 2;
  params.anti_idiom_pct = 15;
  const BinaryImage app = GenerateSynthProgram(params);

  // --- Naive full-on hardening: false positives -------------------------
  RedFatTool full(RedFatOptions{});
  const InstrumentResult naive = full.Instrument(app).value();
  RunConfig ref;
  ref.inputs = RefInputs(50);
  ref.policy = Policy::kLog;  // log so we can count
  const RunOutcome fp_run = RunImage(naive.image, RuntimeKind::kRedFat, ref);
  std::printf("full-on checking : %zu false detections on a bug-free program\n",
              fp_run.errors.size());
  std::printf("                   (deployed with Policy::kHarden this would abort!)\n\n");

  // --- Phase 1: profile against a test suite ----------------------------
  RedFatTool profiler(RedFatOptions::Profile());
  const InstrumentResult prof = profiler.Instrument(app).value();
  RunConfig train;
  train.inputs = TrainInputs(50);
  train.policy = Policy::kLog;
  const RunOutcome prof_run = RunImage(prof.image, RuntimeKind::kRedFat, train);
  const AllowList allow = BuildAllowList(prof_run.prof_counts, prof.sites);
  size_t always_fail = 0;
  for (const auto& [site, counts] : prof_run.prof_counts) {
    if (counts.fails > 0 && counts.passes == 0) {
      ++always_fail;
    }
  }
  std::printf("profiling phase  : %zu sites observed, %zu allow-listed, %zu always-fail\n",
              prof_run.prof_counts.size(), allow.addrs.size(), always_fail);

  // --- Phase 2: production hardening with the allow-list ----------------
  const InstrumentResult hard = full.Instrument(app, &allow).value();
  RunConfig prod;
  prod.inputs = RefInputs(50);
  prod.policy = Policy::kHarden;
  const RunOutcome prod_run = RunImage(hard.image, RuntimeKind::kRedFat, prod);
  const CoverageStats cov = ComputeCoverage(prod_run.counters, hard.sites);
  std::printf("production phase : %s, %zu reports\n",
              prod_run.result.reason == HaltReason::kExit ? "ran to completion" : "ABORTED",
              prod_run.errors.size());
  std::printf("coverage         : %.1f%% of dynamic accesses under full "
              "(Redzone)+(LowFat);\n"
              "                   the rest (the anti-idiom sites) keep (Redzone)-only\n",
              100.0 * cov.FullFraction());
  return prod_run.result.reason == HaltReason::kExit && prod_run.errors.empty() ? 0 : 1;
}
