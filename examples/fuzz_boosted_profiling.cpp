// Coverage-boosted profiling (§5): when the test suite misses code paths,
// the allow-list stays conservative and production coverage drops. An
// AFL-style fuzzing loop over the profiling binary recovers much of it.
//
// The demo program gates 60% of its heap accesses behind an input mode bit
// the "test suite" never sets — exactly the kind of blind spot a fuzzer
// finds by flipping input bits.
#include <cstdio>

#include "src/core/fuzz_profile.h"
#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/synth.h"

using namespace redfat;

int main() {
  SynthParams params;
  params.seed = 424242;
  params.ref_only_pct = 60;
  const BinaryImage app = GenerateSynthProgram(params);

  RedFatTool profiler(RedFatOptions::Profile());
  const InstrumentResult prof = profiler.Instrument(app).value();

  // --- Plain profiling: one run of the "test suite" ----------------------
  RunConfig train;
  train.inputs = TrainInputs(25);
  train.policy = Policy::kLog;
  const RunOutcome single = RunImage(prof.image, RuntimeKind::kRedFat, train);
  const AllowList single_allow = BuildAllowList(single.prof_counts, prof.sites);

  // --- Fuzzed profiling: 64 mutated runs from the same seed input --------
  FuzzProfileConfig fuzz;
  fuzz.seed = 7;
  fuzz.max_runs = 64;
  fuzz.initial_inputs = TrainInputs(25);
  fuzz.instruction_limit = 2'000'000;
  const FuzzProfileResult fuzzed = FuzzProfile(prof, fuzz);

  std::printf("profiling runs     : 1 (test suite) vs %u (fuzzed)\n", fuzzed.runs);
  std::printf("allow-listed sites : %zu vs %zu (corpus kept %zu novel inputs)\n",
              single_allow.addrs.size(), fuzzed.allow.addrs.size(), fuzzed.corpus_size);

  // --- Production coverage with each allow-list --------------------------
  RedFatTool tool(RedFatOptions{});
  RunConfig ref;
  ref.inputs = RefInputs(25);
  double coverage[2] = {};
  const AllowList* lists[2] = {&single_allow, &fuzzed.allow};
  for (int i = 0; i < 2; ++i) {
    const InstrumentResult hard = tool.Instrument(app, lists[i]).value();
    const RunOutcome out = RunImage(hard.image, RuntimeKind::kRedFat, ref);
    if (out.result.reason != HaltReason::kExit || !out.errors.empty()) {
      std::printf("unexpected production failure\n");
      return 1;
    }
    coverage[i] = ComputeCoverage(out.counters, hard.sites).FullFraction();
  }
  std::printf("production coverage: %.1f%% -> %.1f%% of dynamic accesses under the full\n"
              "                     (Redzone)+(LowFat) check\n",
              100.0 * coverage[0], 100.0 * coverage[1]);
  return coverage[1] > coverage[0] ? 0 : 1;
}
