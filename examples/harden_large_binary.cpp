// Scalability: hardening a large, complex binary (the paper's Chrome
// experiment, §7.3).
//
// Builds the biggest Kraken carrier binary, instruments every write with
// the full (Redzone)+(LowFat) check, and reports the static rewrite
// statistics (sites, trampoline space, conflicts handled opportunistically)
// plus the runtime overhead of one kernel.
#include <chrono>
#include <cstdio>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/kraken.h"
#include "src/workloads/synth.h"

using namespace redfat;

int main() {
  // Crank the filler way up: a deliberately huge image.
  KrakenBenchmark bench = KrakenSuite().at(5);  // imaging-gaussian-blur
  bench.params.filler_funcs = 4000;
  bench.params.filler_units_per_func = 10;
  const BinaryImage img = BuildKrakenBenchmark(bench);
  std::printf("input binary      : %.1f KB text+data, stripped\n",
              img.TotalBytes() / 1024.0);

  const auto t0 = std::chrono::steady_clock::now();
  RedFatTool tool(RedFatOptions::NoReads());  // write-only, as for Chrome
  const InstrumentResult ir = tool.Instrument(img).value();
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;

  std::printf("rewriting         : %.1f ms\n", ms);
  std::printf("memory operands   : %zu total, %zu eliminated, %zu instrumented\n",
              ir.plan_stats.mem_operands, ir.plan_stats.eliminated,
              ir.plan_stats.full_sites + ir.plan_stats.redzone_sites);
  std::printf("trampolines       : %zu (%.1f KB), %zu checks after batching+merging\n",
              ir.plan_stats.trampolines, ir.rewrite_stats.trampoline_bytes / 1024.0,
              ir.plan_stats.checks_emitted);
  std::printf("conflicts skipped : %zu (opportunistic hardening: never break the binary)\n",
              ir.rewrite_stats.skipped_target_conflict + ir.rewrite_stats.skipped_call_span +
                  ir.rewrite_stats.skipped_section_end);
  std::printf("output binary     : %.1f KB\n", ir.image.TotalBytes() / 1024.0);

  RunConfig cfg;
  cfg.inputs = RefInputs(300);
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  if (hard.result.reason != HaltReason::kExit || hard.outputs != base.outputs) {
    std::printf("hardened binary misbehaved!\n");
    return 1;
  }
  std::printf("runtime overhead  : %.2fx (write-only checking)\n",
              static_cast<double>(hard.result.cycles) /
                  static_cast<double>(base.result.cycles));
  std::printf("hardened binary runs stable and bit-identical to the original.\n");
  return 0;
}
