// CVE-2012-4295 (wireshark) — the paper's running example (Fig. 1).
//
//   static int channelised_fill_sdh_g707_format(sdh_g707_format_t* in_fmt,
//       ..., guint8 speed) {
//     ...
//     in_fmt->m_vc_index_array[speed - 1] = 0;   // line 15
//   }
//
// `speed` arrives from a crafted packet. m_vc_index_array has 5 one-byte
// elements; a large `speed` writes far past the struct — far enough to skip
// every redzone, which is why Valgrind Memcheck (16-byte redzones) misses
// it while RedFat's pointer-arithmetic check does not.
#include <cstdio>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/dbi/memcheck.h"
#include "src/workloads/cve.h"

using namespace redfat;

int main() {
  std::vector<VulnCase> cves = CveCases();
  const VulnCase* wireshark = nullptr;
  for (const VulnCase& c : cves) {
    if (c.name.find("wireshark") != std::string::npos) {
      wireshark = &c;
    }
  }
  if (wireshark == nullptr) {
    return 1;
  }
  std::printf("%s — non-incremental heap overflow, attacker offset %llu\n\n",
              wireshark->name.c_str(),
              static_cast<unsigned long long>(wireshark->attack_inputs.at(0)));

  // Valgrind-Memcheck-style DBI: redzone-only checking.
  RunConfig attack;
  attack.inputs = wireshark->attack_inputs;
  attack.policy = Policy::kLog;
  const RunOutcome mc = RunMemcheck(wireshark->image, attack);
  std::printf("Memcheck : %zu reports — the write skipped over every redzone into a\n"
              "           neighboring allocation's live bytes; shadow memory says OK.\n",
              mc.errors.size());

  // RedFat: (Redzone)+(LowFat). The check validates the pointer arithmetic
  // against the *victim's* bounds, recovered from the pointer value itself,
  // so no offset can escape it.
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult hardened = tool.Instrument(wireshark->image).value();
  attack.policy = Policy::kHarden;
  const RunOutcome rf = RunImage(hardened.image, RuntimeKind::kRedFat, attack);
  std::printf("RedFat   : %s\n",
              rf.result.reason == HaltReason::kMemErrorAbort
                  ? "ABORTED before the write (bounds violation at the store site)"
                  : "missed (unexpected!)");

  // And the benign packet still parses fine.
  RunConfig benign;
  benign.inputs = wireshark->benign_inputs;
  const RunOutcome ok = RunImage(hardened.image, RuntimeKind::kRedFat, benign);
  std::printf("benign   : exit=%llu, no reports — hardening is transparent to valid use\n",
              static_cast<unsigned long long>(ok.result.exit_status));
  return rf.result.reason == HaltReason::kMemErrorAbort && mc.errors.empty() ? 0 : 1;
}
