// Quickstart: harden a binary against memory errors in ~50 lines.
//
//   1. Build (or load) a stripped guest binary.
//   2. Instrument it with RedFatTool.
//   3. Run it under the libredfat runtime.
//
// The example program writes attacker-controlled indices into a heap
// buffer. Unhardened, an out-of-bounds index silently corrupts the
// neighboring allocation; hardened, the write is caught before it happens.
#include <cstdio>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/builder.h"

using namespace redfat;

// A tiny "application": p = malloc(64); q = malloc(64); p[input()] = 7;
// then print q[0] — which input 10 would silently overwrite (it skips p's
// redzone entirely: a non-incremental overflow).
static BinaryImage BuildVulnerableApp() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);  // p
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR13, Reg::kRax);  // q
  as.MovRI(Reg::kRax, 0x1111);
  as.Store(Reg::kRax, MemAt(Reg::kR13, 0));     // q[0] = 0x1111
  as.HostCall(HostFn::kInputU64);               // attacker-controlled index
  as.MovRI(Reg::kR14, 7);
  as.Store(Reg::kR14, MemBIS(Reg::kR12, Reg::kRax, 3, 0));  // p[i] = 7
  as.Load(Reg::kRdi, MemAt(Reg::kR13, 0));
  as.HostCall(HostFn::kOutputU64);              // print q[0]
  pb.EmitExit(0);
  return pb.Finish();
}

int main() {
  const BinaryImage app = BuildVulnerableApp();

  // Step 1: instrument. Default options = full (Redzone)+(LowFat) checks
  // with all Table-1 optimizations (elim/batch/merge) enabled.
  RedFatTool tool(RedFatOptions{});
  Result<InstrumentResult> hardened = tool.Instrument(app);
  if (!hardened.ok()) {
    std::fprintf(stderr, "instrumentation failed: %s\n", hardened.error().c_str());
    return 1;
  }
  std::printf("instrumented %zu memory operands (%zu eliminated as provably non-heap)\n",
              hardened.value().plan_stats.considered,
              hardened.value().plan_stats.eliminated);

  // Step 2: run with a benign input. RuntimeKind::kRedFat binds the
  // libredfat allocator (the LD_PRELOAD of the paper).
  RunConfig benign;
  benign.inputs = {3};
  const RunOutcome ok = RunImage(hardened.value().image, RuntimeKind::kRedFat, benign);
  std::printf("benign input 3 : exit=%llu, q[0]=0x%llx (untouched), errors=%zu\n",
              static_cast<unsigned long long>(ok.result.exit_status),
              static_cast<unsigned long long>(ok.outputs.at(0)), ok.errors.size());

  // Step 3: the attack. Index 10 skips p's 16-byte redzone and lands in
  // q's live payload — invisible to redzone-only tools, but the low-fat
  // component checks the pointer arithmetic itself.
  RunConfig attack;
  attack.inputs = {10};
  const RunOutcome bad = RunImage(hardened.value().image, RuntimeKind::kRedFat, attack);
  if (bad.result.reason == HaltReason::kMemErrorAbort) {
    std::printf("attack input 10: ABORTED before the write (kind=bounds, site=%u)\n",
                bad.errors.at(0).site);
  } else {
    std::printf("attack input 10: NOT caught (unexpected!)\n");
    return 1;
  }

  // For contrast: the same attack against the *uninstrumented* binary
  // silently corrupts q.
  const RunOutcome naked = RunImage(app, RuntimeKind::kBaseline, attack);
  std::printf("unhardened     : exit=%llu, q[0]=0x%llx (corrupted!)\n",
              static_cast<unsigned long long>(naked.result.exit_status),
              static_cast<unsigned long long>(naked.outputs.at(0)));
  return 0;
}
