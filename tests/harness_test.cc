// Harness-level unit tests: coverage accounting with merged/eliminated
// sites, runtime bindings, and policy plumbing.
#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

TEST(Coverage, MergedChecksCountEveryMemberSitePerExecution) {
  // Three same-shape stores merged into one check, inside a 10-iteration
  // loop: each member site must count 10 dynamic executions.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kRbx, Reg::kRax);
  as.MovRI(Reg::kRcx, 0);
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.StoreI(MemAt(Reg::kRbx, 0), 1);
  as.StoreI(MemAt(Reg::kRbx, 8), 2);
  as.StoreI(MemAt(Reg::kRbx, 16), 3);
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 10);
  as.Jcc(Cond::kUlt, loop);
  pb.EmitExit(0);

  RedFatTool tool(RedFatOptions::Merge());
  const InstrumentResult ir = tool.Instrument(pb.Finish()).value();
  EXPECT_EQ(ir.plan_stats.checks_emitted, 1u);
  ASSERT_EQ(ir.sites.size(), 3u);
  RunConfig cfg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  ASSERT_EQ(out.result.reason, HaltReason::kExit);
  for (const SiteRecord& s : ir.sites) {
    EXPECT_EQ(out.counters.at(s.id), 10u) << "site " << s.id;
  }
  const CoverageStats cov = ComputeCoverage(out.counters, ir.sites);
  EXPECT_EQ(cov.full, 30u);
  EXPECT_DOUBLE_EQ(cov.FullFraction(), 1.0);
}

TEST(Coverage, EliminatedOperandsDoNotAppear) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.StoreI(MemAbs(0x100000), 1);  // eliminated: no site, no counter
  as.StoreI(MemAt(Reg::kRbx, 0), 2);
  pb.EmitExit(0);
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(pb.Finish()).value();
  EXPECT_EQ(ir.sites.size(), 1u);
  RunConfig cfg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.counters.size(), 1u);
}

TEST(Coverage, EmptyCountersGiveZeroFraction) {
  CoverageStats cov =
      ComputeCoverage(std::unordered_map<uint32_t, uint64_t>{}, {});
  EXPECT_DOUBLE_EQ(cov.FullFraction(), 0.0);
}

TEST(Harness, PolicyPlumbing) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 32);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRR(Reg::kR13, Reg::kR12);      // distinct shape: the checks can't merge
  as.StoreI(MemAt(Reg::kR12, 40), 1);  // OOB
  as.StoreI(MemAt(Reg::kR13, 48), 2);  // OOB again
  pb.EmitExit(0);
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(pb.Finish()).value();

  RunConfig harden;
  harden.policy = Policy::kHarden;
  const RunOutcome h = RunImage(ir.image, RuntimeKind::kRedFat, harden);
  EXPECT_EQ(h.result.reason, HaltReason::kMemErrorAbort);
  EXPECT_EQ(h.errors.size(), 1u) << "hardening stops at the first error";

  RunConfig log;
  log.policy = Policy::kLog;
  const RunOutcome l = RunImage(ir.image, RuntimeKind::kRedFat, log);
  EXPECT_EQ(l.result.reason, HaltReason::kExit);
  EXPECT_EQ(l.errors.size(), 2u) << "log mode reports every error and continues";
}

TEST(Harness, RuntimeKindSelectsAllocator) {
  // The same program allocates one object and prints the pointer: the
  // low-fat runtime must return a low-fat region pointer, the baseline a
  // legacy-region pointer.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  RunConfig cfg;
  const uint64_t base_ptr = RunImage(img, RuntimeKind::kBaseline, cfg).outputs.at(0);
  const uint64_t rf_ptr = RunImage(img, RuntimeKind::kRedFat, cfg).outputs.at(0);
  EXPECT_GE(base_ptr, kLegacyHeapBase);
  EXPECT_GE(rf_ptr, kRegionSize);
  EXPECT_LT(rf_ptr, kLegacyHeapBase);
}

TEST(Harness, InstructionLimitSurfaces) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.Jmp(loop);
  RunConfig cfg;
  cfg.instruction_limit = 100;
  const RunOutcome out = RunImage(pb.Finish(), RuntimeKind::kBaseline, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kInstrLimit);
}

}  // namespace
}  // namespace redfat
