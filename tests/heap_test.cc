#include <gtest/gtest.h>

#include <vector>

#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/support/rng.h"

namespace redfat {
namespace {

TEST(LowFatTables, NonFatRegionsAreZero) {
  const LowFatTables& t = GetLowFatTables();
  EXPECT_EQ(t.sizes[0], 0u);
  EXPECT_EQ(t.sizes[kLegacyHeapRegion], 0u);
  EXPECT_EQ(t.sizes[kNumRegions - 1], 0u);
  for (unsigned c = 1; c <= kNumSizeClasses; ++c) {
    EXPECT_EQ(t.sizes[c], SizeClassBytes(c));
    EXPECT_NE(t.magics[c], 0u);
    EXPECT_EQ(t.shifts[c], 0u) << "check codegen assumes shift-free magics";
  }
}

TEST(LowFatTables, MagicDivisionExactForRegionPointers) {
  const LowFatTables& t = GetLowFatTables();
  Rng rng(13);
  for (unsigned c = 1; c <= kNumSizeClasses; ++c) {
    const uint64_t size = t.sizes[c];
    const uint64_t lo = static_cast<uint64_t>(c) << kRegionShift;
    const uint64_t hi = lo + kRegionSize - 1;
    for (int i = 0; i < 500; ++i) {
      const uint64_t p = rng.Range(lo, hi);
      EXPECT_EQ(MulHigh64(p, t.magics[c]), p / size) << "c=" << c << " p=" << p;
    }
  }
}

TEST(LowFat, SizeClassForBoundaries) {
  EXPECT_EQ(SizeClassFor(0), 1u);
  EXPECT_EQ(SizeClassFor(1), 1u);
  EXPECT_EQ(SizeClassFor(16), 1u);
  EXPECT_EQ(SizeClassFor(17), 2u);
  EXPECT_EQ(SizeClassFor(512), 32u);
  EXPECT_EQ(SizeClassFor(513), 33u);
  EXPECT_EQ(SizeClassFor(1024), 33u);
  EXPECT_EQ(SizeClassFor(1025), 34u);
  EXPECT_EQ(SizeClassFor(kMaxLowFatSize), kNumSizeClasses);
  EXPECT_EQ(SizeClassFor(kMaxLowFatSize + 1), 0u);
}

TEST(LowFat, BaseAndSizeOfNonFatPointerAreZero) {
  EXPECT_EQ(LowFatSize(0x400000), 0u);    // code
  EXPECT_EQ(LowFatBase(0x400000), 0u);
  EXPECT_EQ(LowFatSize(kStackTop - 8), 0u);
  EXPECT_EQ(LowFatSize(kLegacyHeapBase + 64), 0u);
  EXPECT_EQ(LowFatSize(~0ull), 0u);  // beyond the table
}

// Property (the core low-fat invariant): for any allocation and any interior
// pointer, base()/size() recover the slot exactly.
TEST(LowFat, AllocInvariantsProperty) {
  Memory mem;
  LowFatHeap heap;
  Rng rng(1234);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t want = rng.Chance(1, 4) ? rng.Range(513, 8192) : rng.Range(1, 512);
    const uint64_t slot = heap.Alloc(mem, want).slot;
    ASSERT_NE(slot, 0u);
    const uint64_t size = LowFatSize(slot);
    ASSERT_GE(size, want);
    ASSERT_EQ(slot % size, 0u) << "slots are size-aligned";
    ASSERT_EQ(LowFatBase(slot), slot);
    // Interior pointers recover the same slot.
    for (int j = 0; j < 8; ++j) {
      const uint64_t p = slot + rng.Below(size);
      ASSERT_EQ(LowFatBase(p), slot);
      ASSERT_EQ(LowFatSize(p), size);
    }
    // One-past-the-end belongs to the *next* slot.
    ASSERT_EQ(LowFatBase(slot + size), slot + size);
  }
}

TEST(LowFat, AdjacentAllocationsAreContiguousSlots) {
  Memory mem;
  LowFatHeap heap;
  const uint64_t a = heap.Alloc(mem, 100).slot;  // class 7 -> 112-byte slots
  const uint64_t b = heap.Alloc(mem, 100).slot;
  ASSERT_NE(a, 0u);
  EXPECT_EQ(b, a + 112);
}

TEST(LowFat, FreeReusesAfterQuarantine) {
  Memory mem;
  LowFatHeap heap(/*quarantine_slots=*/2);
  const uint64_t a = heap.Alloc(mem, 16).slot;
  heap.Free(mem, a);
  const uint64_t b = heap.Alloc(mem, 16).slot;
  EXPECT_NE(b, a) << "quarantine must delay reuse";
  const uint64_t c = heap.Alloc(mem, 16).slot;
  heap.Free(mem, b);
  heap.Free(mem, c);
  // a leaves quarantine after 2 more frees; next alloc may reuse it.
  const uint64_t d = heap.Alloc(mem, 16).slot;
  EXPECT_EQ(d, a);
}

TEST(LowFat, NoQuarantineReusesImmediately) {
  Memory mem;
  LowFatHeap heap(/*quarantine_slots=*/0);
  const uint64_t a = heap.Alloc(mem, 32).slot;
  heap.Free(mem, a);
  EXPECT_EQ(heap.Alloc(mem, 32).slot, a);
}

TEST(LowFat, HugeAllocationRefused) {
  Memory mem;
  LowFatHeap heap;
  const LowFatAllocResult r = heap.Alloc(mem, kMaxLowFatSize + 1);
  EXPECT_EQ(r.slot, 0u);
  EXPECT_EQ(r.status, LowFatAllocStatus::kTooLarge);
}

TEST(LowFat, StatsTrackLiveSlots) {
  Memory mem;
  LowFatHeap heap;
  const uint64_t a = heap.Alloc(mem, 16).slot;
  const uint64_t b = heap.Alloc(mem, 16).slot;
  (void)b;
  EXPECT_EQ(heap.stats().allocs, 2u);
  EXPECT_EQ(heap.stats().live_slots, 2u);
  heap.Free(mem, a);
  EXPECT_EQ(heap.stats().frees, 1u);
  EXPECT_EQ(heap.stats().live_slots, 1u);
}

TEST(LegacyHeap, AllocFreeReuse) {
  Memory mem;
  LegacyHeap heap;
  const uint64_t a = heap.Alloc(mem, 100);
  ASSERT_NE(a, 0u);
  EXPECT_GE(a, kLegacyHeapBase);
  EXPECT_TRUE(heap.IsLive(a));
  heap.Free(a);
  EXPECT_FALSE(heap.IsLive(a));
  const uint64_t b = heap.Alloc(mem, 100);
  EXPECT_EQ(b, a) << "exact-size free list reuse";
}

TEST(LegacyHeap, PaddingShiftsPayload) {
  Memory mem;
  LegacyHeap plain(0), padded(16);
  const uint64_t a = plain.Alloc(mem, 64);
  const uint64_t b = padded.Alloc(mem, 64);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  // The padded heap leaves at least 16 bytes before the payload beyond the header.
  EXPECT_EQ(padded.SizeOf(mem, b), 64u + 0u);
}

TEST(RedFatAllocator, LayoutMatchesFigure3) {
  Memory mem;
  RedFatAllocator alloc;
  const AllocOutcome out = alloc.Malloc(mem, 40);
  ASSERT_NE(out.ptr, 0u);
  const uint64_t slot = out.ptr - kRedzoneSize;
  // Slot is a low-fat slot of class ceil((40+16)/16) = 4 -> 64 bytes.
  EXPECT_EQ(LowFatBase(out.ptr), slot);
  EXPECT_EQ(LowFatSize(out.ptr), 64u);
  // Metadata: malloc SIZE stored at the slot base, inside the redzone.
  EXPECT_EQ(mem.ReadU64(slot), 40u);
}

TEST(RedFatAllocator, FreeMarksMetadataZero) {
  Memory mem;
  RedFatAllocator alloc;
  const uint64_t p = alloc.Malloc(mem, 24).ptr;
  const uint64_t slot = p - kRedzoneSize;
  EXPECT_EQ(mem.ReadU64(slot), 24u);
  alloc.Free(mem, p);
  EXPECT_EQ(mem.ReadU64(slot), 0u) << "Free state = SIZE 0";
}

TEST(RedFatAllocator, HugeAllocationFallsBackToLegacy) {
  Memory mem;
  RedFatAllocator alloc;
  const uint64_t p = alloc.Malloc(mem, kMaxLowFatSize).ptr;  // +16 exceeds max class
  ASSERT_NE(p, 0u);
  EXPECT_EQ(LowFatSize(p), 0u) << "fallback objects are non-fat";
  EXPECT_EQ(alloc.fallback_allocs(), 1u);
  EXPECT_EQ(mem.ReadU64(p - kRedzoneSize), kMaxLowFatSize);
  alloc.Free(mem, p);
}

TEST(RedFatAllocator, FreeNullIsNoop) {
  Memory mem;
  RedFatAllocator alloc;
  EXPECT_GT(alloc.Free(mem, 0).cycles, 0u);
}

TEST(RedFatAllocator, ManyAllocationsStaySizeAligned) {
  Memory mem;
  RedFatAllocator alloc;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t sz = rng.Range(1, 4096);
    const uint64_t p = alloc.Malloc(mem, sz).ptr;
    ASSERT_NE(p, 0u);
    ASSERT_EQ(LowFatBase(p), p - kRedzoneSize);
    ASSERT_GE(LowFatSize(p), sz + kRedzoneSize);
    if (rng.Chance(1, 2)) {
      alloc.Free(mem, p);
    }
  }
}

TEST(RedFatAllocator, AllocatorCostsComparable) {
  // §2.1: the low-fat allocator costs about the same as glibc malloc (~1%).
  // Amortized over a batch: the first allocation in a size class pays the
  // one-time segment carve, which the bump fast path then amortizes away.
  Memory mem;
  RedFatAllocator redfat;
  GlibcLikeAllocator glibc;
  constexpr int kOps = 256;
  uint64_t rf = 0;
  uint64_t gl = 0;
  for (int i = 0; i < kOps; ++i) {
    rf += redfat.Malloc(mem, 64).cycles;
    gl += glibc.Malloc(mem, 64).cycles;
  }
  EXPECT_LE(rf, gl + gl / 4) << "low-fat malloc must stay within ~25% of glibc";
}

}  // namespace
}  // namespace redfat
