// Unit tests for the hardening-policy layer: tier -> knob resolution,
// override precedence, conflict diagnostics, ablation presets, byte-identity
// of the extensive tier with the pre-policy defaults, per-tier jobs
// determinism, sitemap policy-header round-tripping, and the debug tier's
// end-to-end "catches what fast misses" property.
#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/policy.h"
#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/dbi/shadow_check.h"
#include "src/workloads/builder.h"
#include "src/workloads/spec.h"

namespace redfat {
namespace {

ResolvedPolicy ResolveTier(HardenTier tier) {
  HardeningPolicy p;
  p.tier = tier;
  return p.Resolve().value();
}

void ExpectSameOptions(const RedFatOptions& a, const RedFatOptions& b) {
  EXPECT_EQ(a.check_reads, b.check_reads);
  EXPECT_EQ(a.check_writes, b.check_writes);
  EXPECT_EQ(a.redzone_impl, b.redzone_impl);
  EXPECT_EQ(a.lowfat, b.lowfat);
  EXPECT_EQ(a.size_hardening, b.size_hardening);
  EXPECT_EQ(a.redzone_only_sites, b.redzone_only_sites);
  EXPECT_EQ(a.merged_ub, b.merged_ub);
  EXPECT_EQ(a.elim, b.elim);
  EXPECT_EQ(a.batch, b.batch);
  EXPECT_EQ(a.merge, b.merge);
  EXPECT_EQ(a.clobber_analysis, b.clobber_analysis);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.trampoline_base, b.trampoline_base);
  EXPECT_DOUBLE_EQ(a.hot_threshold, b.hot_threshold);
}

// --- tier -> knob resolution ------------------------------------------------

TEST(Resolve, NoneDisablesEveryCheckFamily) {
  const ResolvedPolicy r = ResolveTier(HardenTier::kNone);
  EXPECT_FALSE(r.rewrite.check_reads);
  EXPECT_FALSE(r.rewrite.check_writes);
  EXPECT_EQ(r.runtime, RuntimeKind::kBaseline);
  EXPECT_FALSE(r.dbi_shadow_check);
  EXPECT_TRUE(r.explicit_tier);
}

TEST(Resolve, FastIsLowfatOnlyWithAggressiveDemotion) {
  const ResolvedPolicy r = ResolveTier(HardenTier::kFast);
  EXPECT_TRUE(r.rewrite.lowfat);
  EXPECT_FALSE(r.rewrite.redzone_only_sites);
  EXPECT_DOUBLE_EQ(r.rewrite.hot_threshold, 0.8);
  EXPECT_EQ(r.runtime, RuntimeKind::kRedFat);
  EXPECT_FALSE(r.dbi_shadow_check);
}

TEST(Resolve, ExtensiveMatchesDefaultOptionsExactly) {
  // The invariant the whole refactor hangs on: --harden=extensive resolves
  // to the pre-policy RedFatOptions{} defaults, field for field.
  const ResolvedPolicy r = ResolveTier(HardenTier::kExtensive);
  ExpectSameOptions(r.rewrite, RedFatOptions{});
  EXPECT_EQ(r.runtime, RuntimeKind::kRedFat);
  EXPECT_FALSE(r.dbi_shadow_check);
}

TEST(Resolve, DebugAddsDbiShadowCheckingAndNeverDemotes) {
  const ResolvedPolicy r = ResolveTier(HardenTier::kDebug);
  EXPECT_TRUE(r.rewrite.lowfat);
  EXPECT_TRUE(r.rewrite.redzone_only_sites);
  EXPECT_DOUBLE_EQ(r.rewrite.hot_threshold, 1.0);
  EXPECT_EQ(r.runtime, RuntimeKind::kRedFatDebug);
  EXPECT_TRUE(r.dbi_shadow_check);
}

TEST(Resolve, RuntimeForTierMatchesResolution) {
  for (HardenTier t : {HardenTier::kNone, HardenTier::kFast, HardenTier::kExtensive,
                       HardenTier::kDebug}) {
    EXPECT_EQ(ResolveTier(t).runtime, RuntimeForTier(t)) << HardenTierName(t);
  }
}

TEST(Resolve, BudgetsOrderByCheckingStrength) {
  EXPECT_LT(TierOverheadBudgetPct(HardenTier::kNone),
            TierOverheadBudgetPct(HardenTier::kFast));
  EXPECT_LT(TierOverheadBudgetPct(HardenTier::kFast),
            TierOverheadBudgetPct(HardenTier::kExtensive));
  EXPECT_LT(TierOverheadBudgetPct(HardenTier::kExtensive),
            TierOverheadBudgetPct(HardenTier::kDebug));
}

// --- override precedence ----------------------------------------------------

TEST(Resolve, OverridesApplyOnTopOfTierDefaults) {
  HardeningPolicy p;
  p.check_reads = false;
  p.elim = false;
  p.hot_threshold = 0.5;
  const ResolvedPolicy r = p.Resolve().value();
  EXPECT_FALSE(r.rewrite.check_reads);
  EXPECT_TRUE(r.rewrite.check_writes);
  EXPECT_FALSE(r.rewrite.elim);
  EXPECT_DOUBLE_EQ(r.rewrite.hot_threshold, 0.5);
}

TEST(Resolve, HotThresholdOverrideBeatsTierDefault) {
  HardeningPolicy p;
  p.tier = HardenTier::kFast;
  p.hot_threshold = 0.95;
  EXPECT_DOUBLE_EQ(p.Resolve().value().rewrite.hot_threshold, 0.95);
}

TEST(Resolve, ShadowOverrideSelectsShadowImplAndRuntime) {
  HardeningPolicy p;
  p.shadow_impl = true;
  const ResolvedPolicy r = p.Resolve().value();
  EXPECT_EQ(r.rewrite.redzone_impl, RedzoneImpl::kShadow);
  EXPECT_EQ(r.runtime, RuntimeKind::kRedFatShadow);
}

// --- conflict diagnostics ---------------------------------------------------

struct ConflictCase {
  const char* name;
  HardenTier tier;
  void (*apply)(HardeningPolicy*);
  const char* must_mention;
};

class ConflictPolicy : public ::testing::TestWithParam<ConflictCase> {};

TEST_P(ConflictPolicy, RejectsWithBothSidesNamed) {
  const ConflictCase& c = GetParam();
  HardeningPolicy p;
  p.tier = c.tier;
  c.apply(&p);
  const Result<ResolvedPolicy> r = p.Resolve();
  ASSERT_FALSE(r.ok()) << c.name;
  EXPECT_NE(r.error().find(HardenTierName(c.tier)), std::string::npos) << r.error();
  EXPECT_NE(r.error().find(c.must_mention), std::string::npos) << r.error();
}

INSTANTIATE_TEST_SUITE_P(
    Combos, ConflictPolicy,
    ::testing::Values(
        ConflictCase{"none_shadow", HardenTier::kNone,
                     [](HardeningPolicy* p) { p->shadow_impl = true; }, "--shadow"},
        ConflictCase{"fast_no_lowfat", HardenTier::kFast,
                     [](HardeningPolicy* p) { p->lowfat = false; }, "--no-lowfat"},
        ConflictCase{"fast_shadow", HardenTier::kFast,
                     [](HardeningPolicy* p) { p->shadow_impl = true; }, "--shadow"},
        ConflictCase{"fast_redzone_sites", HardenTier::kFast,
                     [](HardeningPolicy* p) { p->redzone_only_sites = true; },
                     "extensive"},
        ConflictCase{"debug_no_lowfat", HardenTier::kDebug,
                     [](HardeningPolicy* p) { p->lowfat = false; }, "--no-lowfat"},
        ConflictCase{"debug_shadow", HardenTier::kDebug,
                     [](HardeningPolicy* p) { p->shadow_impl = true; }, "--shadow"}),
    [](const ::testing::TestParamInfo<ConflictCase>& info) { return info.param.name; });

TEST(Parse, TierNamesRoundTrip) {
  for (HardenTier t : {HardenTier::kNone, HardenTier::kFast, HardenTier::kExtensive,
                       HardenTier::kDebug}) {
    EXPECT_EQ(ParseHardenTier(HardenTierName(t)).value(), t);
  }
  const Result<HardenTier> bad = ParseHardenTier("paranoid");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("paranoid"), std::string::npos);
}

// --- rheap feature lists (--rheap=LIST) -------------------------------------

TEST(Rheap, ListNameRoundTripsThroughParse) {
  std::vector<RheapOptions> cases;
  cases.emplace_back();  // defaults: features off, quarantine=64
  RheapOptions none;
  none.quarantine_slots = 0;
  cases.push_back(none);
  RheapOptions prot;
  prot.prot_freelist = true;
  prot.quarantine_slots = 0;
  cases.push_back(prot);
  RheapOptions all;
  all.prot_freelist = all.guard_memcpy = all.random = true;
  all.quarantine_slots = 7;
  cases.push_back(all);
  for (const RheapOptions& o : cases) {
    const std::string name = RheapListName(o);
    const Result<RheapOptions> back = ParseRheapList(name);
    ASSERT_TRUE(back.ok()) << name << ": " << back.error();
    EXPECT_EQ(back.value(), o) << name;
  }
  EXPECT_EQ(RheapListName(none), "none");
}

TEST(Rheap, ExplicitListIsAbsolute) {
  const RheapOptions o = ParseRheapList("prot-freelist").value();
  EXPECT_TRUE(o.prot_freelist);
  EXPECT_FALSE(o.guard_memcpy);
  EXPECT_FALSE(o.random);
  EXPECT_EQ(o.quarantine_slots, 0u) << "an explicit list starts from all-off";
}

TEST(Rheap, MalformedListsAreErrors) {
  for (const char* bad : {"", "bogus", "none,random", "quarantine=",
                          "quarantine=xyz", "prot-freelist,,random"}) {
    EXPECT_FALSE(ParseRheapList(bad).ok()) << bad;
  }
  const Result<RheapOptions> unknown = ParseRheapList("bogus");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().find("bogus"), std::string::npos);
}

TEST(Rheap, TierDefaultsMatchTheDocumentedLadder) {
  // fast = perf-only, extensive = +prot-freelist, debug = everything.
  EXPECT_EQ(RheapForTier(HardenTier::kNone), RheapOptions{});
  EXPECT_EQ(RheapForTier(HardenTier::kFast), RheapOptions{});
  const RheapOptions ext = RheapForTier(HardenTier::kExtensive);
  EXPECT_TRUE(ext.prot_freelist);
  EXPECT_FALSE(ext.guard_memcpy);
  EXPECT_FALSE(ext.random);
  const RheapOptions dbg = RheapForTier(HardenTier::kDebug);
  EXPECT_TRUE(dbg.prot_freelist);
  EXPECT_TRUE(dbg.guard_memcpy);
  EXPECT_TRUE(dbg.random);
}

TEST(Rheap, ExplicitListReplacesTierDefaultOnResolve) {
  HardeningPolicy p;
  p.tier = HardenTier::kExtensive;
  p.rheap = ParseRheapList("random,quarantine=8").value();
  const ResolvedPolicy r = p.Resolve().value();
  EXPECT_TRUE(r.explicit_rheap);
  EXPECT_EQ(r.rheap, *p.rheap);
  const ResolvedPolicy d = ResolveTier(HardenTier::kExtensive);
  EXPECT_FALSE(d.explicit_rheap);
  EXPECT_EQ(d.rheap, RheapForTier(HardenTier::kExtensive));
}

TEST(Rheap, NoneTierRejectsRheapList) {
  HardeningPolicy p;
  p.tier = HardenTier::kNone;
  p.rheap = ParseRheapList("prot-freelist").value();
  const Result<ResolvedPolicy> r = p.Resolve();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("--rheap"), std::string::npos) << r.error();
}

TEST(SiteMapHeader, RheapHeaderRoundTrips) {
  std::vector<SiteRecord> sites(1);
  sites[0].addr = 0x400020;
  sites[0].is_write = true;
  sites[0].kind = CheckKind::kFull;
  const HardenTier tier = HardenTier::kExtensive;
  const RheapOptions opts = ParseRheapList("prot-freelist,quarantine=32").value();
  const std::string text = SerializeSiteMap(sites, &tier, &opts);
  EXPECT_NE(text.find("# rheap: prot-freelist,quarantine=32\n"), std::string::npos)
      << text;

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  std::optional<HardenTier> harden;
  std::optional<RheapOptions> rheap;
  const auto back = ParseSiteMap(lines, &harden, &rheap);
  ASSERT_TRUE(back.ok()) << back.error();
  ASSERT_TRUE(harden.has_value());
  EXPECT_EQ(*harden, HardenTier::kExtensive);
  ASSERT_TRUE(rheap.has_value());
  EXPECT_EQ(*rheap, opts);

  // Absent header: byte-identical legacy map, out-param reset.
  const std::string legacy = SerializeSiteMap(sites, &tier, nullptr);
  EXPECT_EQ(legacy.find("# rheap:"), std::string::npos);
  std::optional<RheapOptions> stale = RheapOptions{};
  ASSERT_TRUE(
      ParseSiteMap({"# redfat site map: id addr rw kind"}, &harden, &stale).ok());
  EXPECT_FALSE(stale.has_value());
}

// --- ablation presets (Table 1) ---------------------------------------------

TEST(Ablation, PresetsEncodeTheTableOneColumns) {
  RedFatOptions unopt;
  unopt.elim = unopt.batch = unopt.merge = false;
  ExpectSameOptions(RedFatOptions::Unoptimized(), unopt);

  RedFatOptions elim;
  elim.batch = elim.merge = false;
  ExpectSameOptions(RedFatOptions::Elim(), elim);

  RedFatOptions batch;
  batch.merge = false;
  ExpectSameOptions(RedFatOptions::Batch(), batch);

  ExpectSameOptions(RedFatOptions::Merge(), RedFatOptions{});

  RedFatOptions nosize;
  nosize.size_hardening = false;
  ExpectSameOptions(RedFatOptions::NoSize(), nosize);

  RedFatOptions noreads;
  noreads.size_hardening = false;
  noreads.check_reads = false;
  ExpectSameOptions(RedFatOptions::NoReads(), noreads);
}

// --- FromOptions classification (pre-policy call sites) ---------------------

TEST(FromOptions, ClassifiesOntoTheNearestTier) {
  EXPECT_EQ(ResolvedPolicy::FromOptions(RedFatOptions{}).tier, HardenTier::kExtensive);
  EXPECT_FALSE(ResolvedPolicy::FromOptions(RedFatOptions{}).explicit_tier);

  RedFatOptions off;
  off.check_reads = off.check_writes = false;
  EXPECT_EQ(ResolvedPolicy::FromOptions(off).tier, HardenTier::kNone);
  EXPECT_EQ(ResolvedPolicy::FromOptions(off).runtime, RuntimeKind::kBaseline);

  RedFatOptions fast;
  fast.redzone_only_sites = false;
  EXPECT_EQ(ResolvedPolicy::FromOptions(fast).tier, HardenTier::kFast);

  RedFatOptions shadow;
  shadow.redzone_impl = RedzoneImpl::kShadow;
  EXPECT_EQ(ResolvedPolicy::FromOptions(shadow).runtime, RuntimeKind::kRedFatShadow);
}

// --- sitemap policy header --------------------------------------------------

TEST(SiteMapHeader, RoundTripsThroughSerializeAndParse) {
  std::vector<SiteRecord> sites(1);
  sites[0].id = 0;
  sites[0].addr = 0x400010;
  sites[0].is_write = true;
  sites[0].kind = CheckKind::kFull;

  const HardenTier tier = HardenTier::kFast;
  const std::string text = SerializeSiteMap(sites, &tier);
  EXPECT_EQ(text.rfind("# harden: fast\n", 0), 0u);

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  std::optional<HardenTier> parsed;
  const std::vector<SiteRecord> back = ParseSiteMap(lines, &parsed).value();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, HardenTier::kFast);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].addr, 0x400010u);
}

TEST(SiteMapHeader, AbsentHeaderLeavesTierUnknownAndBytesUnchanged) {
  std::vector<SiteRecord> sites(1);
  sites[0].kind = CheckKind::kRedzoneOnly;
  // No policy: the serialized map must be byte-identical to the legacy
  // format (no header line), and parsing must reset the out-param.
  const std::string text = SerializeSiteMap(sites);
  EXPECT_EQ(text.rfind("# redfat site map:", 0), 0u);
  std::optional<HardenTier> parsed = HardenTier::kDebug;  // stale value
  ASSERT_TRUE(ParseSiteMap({"# redfat site map: id addr rw kind"}, &parsed).ok());
  EXPECT_FALSE(parsed.has_value());
}

TEST(SiteMapHeader, MalformedTierIsAnError) {
  std::optional<HardenTier> parsed;
  const auto r = ParseSiteMap({"# harden: turbo"}, &parsed);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("turbo"), std::string::npos);
}

// --- byte-identity & determinism over golden configs ------------------------

BinaryImage SpecImage(const std::string& name) {
  for (const SpecBenchmark& b : SpecSuite()) {
    if (b.name == name) {
      return BuildSpecBenchmark(b);
    }
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return BinaryImage{};
}

TEST(ByteIdentity, ExtensiveTierMatchesLegacyDefaultRewrite) {
  for (const char* name : {"mcf", "xalancbmk", "perlbench"}) {
    const BinaryImage input = SpecImage(name);
    RedFatTool legacy{RedFatOptions{}};
    RedFatTool tiered(ResolveTier(HardenTier::kExtensive));
    const InstrumentResult a = legacy.Instrument(input).value();
    const InstrumentResult b = tiered.Instrument(input).value();
    EXPECT_EQ(a.image.Serialize(), b.image.Serialize()) << name;
    EXPECT_EQ(a.sites.size(), b.sites.size()) << name;
    // Same bytes, different provenance: only the policy rewrite records an
    // explicit tier (and hence emits a sitemap policy header).
    EXPECT_FALSE(a.harden_explicit);
    EXPECT_TRUE(b.harden_explicit);
    EXPECT_EQ(a.harden, HardenTier::kExtensive);
    EXPECT_EQ(b.harden, HardenTier::kExtensive);
  }
}

TEST(ByteIdentity, EveryTierIsJobsDeterministic) {
  const BinaryImage input = SpecImage("mcf");
  for (HardenTier t : {HardenTier::kFast, HardenTier::kExtensive, HardenTier::kDebug}) {
    ResolvedPolicy one = ResolveTier(t);
    one.rewrite.jobs = 1;
    ResolvedPolicy many = ResolveTier(t);
    many.rewrite.jobs = 8;
    const InstrumentResult a = RedFatTool(one).Instrument(input).value();
    const InstrumentResult b = RedFatTool(many).Instrument(input).value();
    EXPECT_EQ(a.image.Serialize(), b.image.Serialize()) << HardenTierName(t);
  }
}

// --- fast-tier site selection & the debug tier's extra coverage -------------

// A victim program with ONE heap access through an ambiguous operand
// (index-only addressing: no unambiguous pointer base), landing `offset`
// bytes past a 64-byte allocation's base.
BinaryImage AmbiguousAccessProgram(int64_t offset) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kRcx, Reg::kRax);
  as.AddI(Reg::kRcx, offset);
  as.Store(Reg::kRdx, MemBIS(Reg::kNone, Reg::kRcx, 0, 0));  // ambiguous
  pb.EmitExit(0);
  return pb.Finish();
}

TEST(FastTier, DropsRedzoneOnlySitesAndCountsThem) {
  const BinaryImage input = AmbiguousAccessProgram(0);
  const InstrumentResult ext =
      RedFatTool(ResolveTier(HardenTier::kExtensive)).Instrument(input).value();
  const InstrumentResult fast =
      RedFatTool(ResolveTier(HardenTier::kFast)).Instrument(input).value();
  ASSERT_EQ(ext.sites.size(), 1u);
  EXPECT_EQ(ext.sites[0].kind, CheckKind::kRedzoneOnly);
  EXPECT_EQ(fast.sites.size(), 0u);
  EXPECT_EQ(fast.plan_stats.redzone_dropped, 1u);
  EXPECT_EQ(ext.plan_stats.redzone_dropped, 0u);
}

TEST(DebugTier, CatchesTheOverflowFastMisses) {
  // The write lands in the trailing redzone (offset 64 of a 64-byte
  // object): extensive's (Redzone)-only check catches it inline; fast has
  // no check there and runs to completion; debug catches it anyway via the
  // DBI shadow-check observer over the redfat-debug runtime.
  const BinaryImage input = AmbiguousAccessProgram(64);
  const InstrumentResult ext =
      RedFatTool(ResolveTier(HardenTier::kExtensive)).Instrument(input).value();
  const InstrumentResult fast =
      RedFatTool(ResolveTier(HardenTier::kFast)).Instrument(input).value();

  RunConfig cfg;
  EXPECT_EQ(RunImage(ext.image, RuntimeKind::kRedFat, cfg).result.reason,
            HaltReason::kMemErrorAbort);
  EXPECT_EQ(RunImage(fast.image, RuntimeKind::kRedFat, cfg).result.reason,
            HaltReason::kExit);  // the miss

  ShadowCheckObserver observer;
  RunConfig debug_cfg;
  debug_cfg.observer = &observer;
  const RunOutcome out = RunImage(fast.image, RuntimeKind::kRedFatDebug, debug_cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kBounds);
  EXPECT_GE(observer.errors(), 1u);
}

TEST(DebugTier, BenignRunIsCleanUnderTheObserver) {
  const BinaryImage input = AmbiguousAccessProgram(0);  // in bounds
  const InstrumentResult fast =
      RedFatTool(ResolveTier(HardenTier::kFast)).Instrument(input).value();
  ShadowCheckObserver observer;
  RunConfig cfg;
  cfg.observer = &observer;
  const RunOutcome out = RunImage(fast.image, RuntimeKind::kRedFatDebug, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(observer.errors(), 0u);
  EXPECT_GT(observer.checks(), 0u);  // it did look at the access
}

TEST(DebugTier, UseAfterFreeIsClassified) {
  // Free the object, then store through the stale pointer: the debug
  // allocator marks the payload kFreed, so the observer reports a UAF.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kRcx, Reg::kRax);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kFree);
  as.Store(Reg::kRdx, MemBIS(Reg::kNone, Reg::kRcx, 0, 0));  // stale, ambiguous
  pb.EmitExit(0);
  const InstrumentResult fast =
      RedFatTool(ResolveTier(HardenTier::kFast)).Instrument(pb.Finish()).value();
  ASSERT_EQ(fast.sites.size(), 0u);
  ShadowCheckObserver observer;
  RunConfig cfg;
  cfg.observer = &observer;
  const RunOutcome out = RunImage(fast.image, RuntimeKind::kRedFatDebug, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kUaf);
}

}  // namespace
}  // namespace redfat
