// Tests for the memory-error forensics layer: the allocation-provenance
// ring (heap/forensics.h), the VM's malloc/free feed and double-free
// interception, and the provenance-joined error reports
// (core/forensics_report.h) through the harness and the debug tier.
#include <gtest/gtest.h>

#include "src/core/forensics_report.h"
#include "src/core/harness.h"
#include "src/core/policy.h"
#include "src/core/redfat.h"
#include "src/dbi/shadow_check.h"
#include "src/heap/forensics.h"
#include "src/support/telemetry.h"
#include "src/workloads/builder.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

ResolvedPolicy ResolveTier(HardenTier tier) {
  HardeningPolicy p;
  p.tier = tier;
  return p.Resolve().value();
}

// --- ring units ------------------------------------------------------------

TEST(ForensicRing, TracksLiveAndFreedProvenance) {
  ForensicRing ring;
  ring.OnAlloc(0x1000, 64, /*pc=*/0x400010, /*instruction=*/5, /*cycles=*/50,
               /*epoch=*/0);
  ring.OnAlloc(0x2000, 32, 0x400020, 9, 90, 0);

  const AllocProvenance* live = ring.FindLive(0x1000 + 63);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->ptr, 0x1000u);
  EXPECT_EQ(live->size, 64u);
  EXPECT_EQ(live->alloc_pc, 0x400010u);
  EXPECT_FALSE(live->freed);
  EXPECT_EQ(ring.FindLive(0x1000 + 64), nullptr);  // one past the end
  EXPECT_FALSE(ring.WasFreed(0x1000));

  ring.OnFree(0x1000, 0x400030, 20, 200, 1);
  EXPECT_EQ(ring.FindLive(0x1000), nullptr);
  EXPECT_TRUE(ring.WasFreed(0x1000));
  const AllocProvenance* freed = ring.FindFreed(0x1000 + 8);
  ASSERT_NE(freed, nullptr);
  EXPECT_TRUE(freed->freed);
  EXPECT_EQ(freed->alloc_pc, 0x400010u);
  EXPECT_EQ(freed->free_pc, 0x400030u);
  EXPECT_EQ(freed->free_epoch, 1u);
  EXPECT_EQ(ring.live_count(), 1u);
  EXPECT_EQ(ring.freed_count(), 1u);
}

TEST(ForensicRing, ReallocAtSameAddressInvalidatesStaleFreedEntry) {
  ForensicRing ring;
  ring.OnAlloc(0x1000, 64, 0x40, 1, 10, 0);
  ring.OnFree(0x1000, 0x44, 2, 20, 0);
  ASSERT_TRUE(ring.WasFreed(0x1000));
  // The allocator reuses the slot: the old death record must no longer
  // witness a double free or shadow the new live object.
  ring.OnAlloc(0x1000, 64, 0x48, 3, 30, 0);
  EXPECT_FALSE(ring.WasFreed(0x1000));
  EXPECT_NE(ring.FindLive(0x1000), nullptr);
}

TEST(ForensicRing, FreedRingEvictsFifoAndCounts) {
  ForensicRing ring(/*capacity=*/2);
  for (uint64_t i = 0; i < 3; ++i) {
    const uint64_t ptr = 0x1000 + i * 0x100;
    ring.OnAlloc(ptr, 16, 0x40 + i, i, i * 10, 0);
    ring.OnFree(ptr, 0x80 + i, i + 10, i * 10 + 5, 0);
  }
  EXPECT_EQ(ring.freed_count(), 2u);
  EXPECT_EQ(ring.evicted(), 1u);
  EXPECT_EQ(ring.FreedAt(0x1000), nullptr);  // oldest aged out
  EXPECT_NE(ring.FreedAt(0x1100), nullptr);
  EXPECT_NE(ring.FreedAt(0x1200), nullptr);
}

TEST(ForensicRing, NearestReportsDistanceAndSide) {
  ForensicRing ring;
  ring.OnAlloc(0x1000, 64, 0x40, 1, 10, 0);

  ForensicRing::Proximity inside = ring.Nearest(0x1000 + 10);
  ASSERT_NE(inside.object, nullptr);
  EXPECT_EQ(inside.distance, 0u);

  // First byte past the end: the classic off-by-one, distance 1.
  ForensicRing::Proximity past = ring.Nearest(0x1000 + 64);
  ASSERT_NE(past.object, nullptr);
  EXPECT_EQ(past.object->ptr, 0x1000u);
  EXPECT_EQ(past.distance, 1u);
  EXPECT_TRUE(past.past_end);

  ForensicRing::Proximity below = ring.Nearest(0x1000 - 8);
  ASSERT_NE(below.object, nullptr);
  EXPECT_EQ(below.distance, 8u);
  EXPECT_FALSE(below.past_end);

  uint64_t d = 0;
  EXPECT_TRUE(ring.DistanceTo(0x1000 + 70, &d));
  EXPECT_EQ(d, 7u);
  ForensicRing empty;
  EXPECT_FALSE(empty.DistanceTo(0x1000, &d));
}

// --- end-to-end: UAF under the debug tier ----------------------------------

// The policy_test UAF recipe with a forensic ring attached: malloc, free,
// store through the stale pointer. Fast-tier instrumentation leaves the
// ambiguous site bare, the debug runtime's shadow observer catches it.
BinaryImage StaleStoreProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kRcx, Reg::kRax);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kFree);
  as.Store(Reg::kRdx, MemBIS(Reg::kNone, Reg::kRcx, 0, 0));  // stale, ambiguous
  pb.EmitExit(0);
  return pb.Finish();
}

TEST(ForensicReports, DebugTierUafCarriesFullProvenance) {
  const InstrumentResult fast =
      RedFatTool(ResolveTier(HardenTier::kFast)).Instrument(StaleStoreProgram()).value();
  ShadowCheckObserver observer;
  ForensicRing ring;
  RunConfig cfg;
  cfg.observer = &observer;
  cfg.forensics = &ring;
  cfg.forensic_tier = "debug";
  const RunOutcome out = RunImage(fast.image, RuntimeKind::kRedFatDebug, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kUaf);
  EXPECT_TRUE(out.errors[0].has_addr);

  ASSERT_EQ(out.forensic_reports.size(), 1u);
  const ForensicReport& r = out.forensic_reports[0];
  EXPECT_EQ(r.tier, "debug");
  ASSERT_TRUE(r.have_provenance);
  EXPECT_TRUE(r.provenance_freed);
  EXPECT_EQ(r.provenance.size, 64u);
  EXPECT_NE(r.provenance.alloc_pc, 0u);
  EXPECT_NE(r.provenance.free_pc, 0u);
  EXPECT_GT(r.provenance.free_instruction, r.provenance.alloc_instruction);
  ASSERT_TRUE(r.have_dump);
  EXPECT_EQ(r.dump_bytes.size(), 64u);
  EXPECT_LE(r.dump_base, out.errors[0].addr);

  const std::string text = FormatForensicReport(r);
  EXPECT_NE(text.find("use-after-free"), std::string::npos);
  EXPECT_NE(text.find("tier: debug"), std::string::npos);
  EXPECT_NE(text.find("allocated at pc"), std::string::npos);
  EXPECT_NE(text.find("freed at pc"), std::string::npos);
  EXPECT_NE(text.find("neighborhood of"), std::string::npos);

  const std::string json = ForensicReportsToJson(out.forensic_reports, ring);
  EXPECT_NE(json.find("\"kind\":\"uaf\""), std::string::npos);
  EXPECT_NE(json.find("\"tier\":\"debug\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc_pc\""), std::string::npos);
  EXPECT_NE(json.find("\"free_pc\""), std::string::npos);
  EXPECT_NE(json.find("\"neighborhood\""), std::string::npos);
  EXPECT_NE(json.find("\"ring\""), std::string::npos);
}

// The instrumented (trampoline) detection path also carries the faulting
// address now (TrapCode::kErrAddr), so trap-raised errors join provenance
// the same way DBI-raised ones do.
TEST(ForensicReports, TrampolineCheckErrorsCarryTheAddress) {
  const InstrumentResult ext = RedFatTool(ResolveTier(HardenTier::kExtensive))
                                   .Instrument(StaleStoreProgram())
                                   .value();
  ForensicRing ring;
  RunConfig cfg;
  cfg.forensics = &ring;
  const RunOutcome out = RunImage(ext.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_TRUE(out.errors[0].has_addr);
  ASSERT_EQ(out.forensic_reports.size(), 1u);
  EXPECT_TRUE(out.forensic_reports[0].have_provenance);
  EXPECT_TRUE(out.forensic_reports[0].provenance_freed);
}

// --- double free -----------------------------------------------------------

BinaryImage DoubleFreeProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 48);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kRcx, Reg::kRax);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kFree);
  as.MovRR(Reg::kRdi, Reg::kRcx);
  as.HostCall(HostFn::kFree);  // double free
  as.MovRI(Reg::kRdi, 7);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

TEST(ForensicReports, DoubleFreeIsInterceptedAndDiagnosed) {
  const BinaryImage prog = DoubleFreeProgram();
  // Under kHarden the interception aborts the run with a kDoubleFree report
  // instead of letting the allocator hard-abort the host.
  {
    ForensicRing ring;
    RunConfig cfg;
    cfg.forensics = &ring;
    const RunOutcome out = RunImage(prog, RuntimeKind::kBaseline, cfg);
    EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
    ASSERT_EQ(out.errors.size(), 1u);
    EXPECT_EQ(out.errors[0].kind, ErrorKind::kDoubleFree);
    EXPECT_TRUE(out.errors[0].has_addr);
    ASSERT_EQ(out.forensic_reports.size(), 1u);
    EXPECT_TRUE(out.forensic_reports[0].provenance_freed);
    EXPECT_NE(ForensicReportsToJson(out.forensic_reports, ring)
                  .find("\"kind\":\"double-free\""),
              std::string::npos);
  }
  // Under kLog the second free is a diagnosed no-op and the run completes
  // with its normal output.
  {
    ForensicRing ring;
    RunConfig cfg;
    cfg.forensics = &ring;
    cfg.policy = Policy::kLog;
    const RunOutcome out = RunImage(prog, RuntimeKind::kBaseline, cfg);
    EXPECT_EQ(out.result.reason, HaltReason::kExit);
    ASSERT_EQ(out.errors.size(), 1u);
    EXPECT_EQ(out.errors[0].kind, ErrorKind::kDoubleFree);
    ASSERT_EQ(out.outputs.size(), 1u);
    EXPECT_EQ(out.outputs[0], 7u);
  }
}

// --- invariance and generated workload -------------------------------------

// Attaching a forensic ring must not change guest-visible results or cycles
// on an error-free run.
TEST(ForensicReports, AttachingTheRingDoesNotChangeCycles) {
  UafParams p;
  const BinaryImage prog = GenerateUafProgram(p);
  RunConfig plain;
  plain.inputs = {0};  // benign mode
  const RunOutcome a = RunImage(prog, RuntimeKind::kRedFat, plain);
  ForensicRing ring;
  RunConfig observed;
  observed.inputs = {0};
  observed.forensics = &ring;
  const RunOutcome b = RunImage(prog, RuntimeKind::kRedFat, observed);
  EXPECT_EQ(a.result.reason, HaltReason::kExit);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.instructions, b.result.instructions);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_GT(ring.live_count() + ring.freed_count(), 0u);  // it did observe
}

// The generated forensics workload: benign, UAF and double-free modes from
// one binary, identical checksums where the run completes.
TEST(ForensicReports, UafWorkloadModesBehave) {
  UafParams p;
  const BinaryImage prog = GenerateUafProgram(p);

  RunConfig benign;
  benign.inputs = {0};
  const RunOutcome ok = RunImage(prog, RuntimeKind::kBaseline, benign);
  EXPECT_EQ(ok.result.reason, HaltReason::kExit);
  ASSERT_EQ(ok.outputs.size(), 1u);

  // Mode 2 (double free) under kLog with a ring: diagnosed, same checksum.
  ForensicRing ring;
  RunConfig df;
  df.inputs = {2};
  df.policy = Policy::kLog;
  df.forensics = &ring;
  const RunOutcome out = RunImage(prog, RuntimeKind::kBaseline, df);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kDoubleFree);
  EXPECT_EQ(out.outputs, ok.outputs);
}

// A detected error with an address lands one entry in the vm.error_distance
// histogram when both a ring and telemetry are attached.
TEST(ForensicReports, ErrorDistanceHistogramRecords) {
  const InstrumentResult ext = RedFatTool(ResolveTier(HardenTier::kExtensive))
                                   .Instrument(StaleStoreProgram())
                                   .value();
  ForensicRing ring;
  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.forensics = &ring;
  cfg.telemetry = &reg;
  const RunOutcome out = RunImage(ext.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  const TelemetrySnapshot snap = reg.Snapshot();
  const HistogramData* h = snap.FindHistogram("vm.error_distance");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Count(), 1u);
}

}  // namespace
}  // namespace redfat
