// Tests for the pass pipeline (core/pipeline.h): registration/ordering,
// ablation-by-disabling, parallel determinism, and the --stats JSON format.
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/redfat.h"
#include "src/workloads/builder.h"
#include "src/workloads/kraken.h"

namespace redfat {
namespace {

const std::vector<std::string> kAllPasses = {
    "disasm", "cfg",   "classify", "eliminate", "group",    "tier",
    "batch",  "merge", "liveness", "codegen",   "patch",
};

BinaryImage SmallHeapProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRcx, 0);
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.Store(Reg::kRcx, MemBIS(Reg::kR12, Reg::kRcx, 3, 0));
  as.Load(Reg::kRax, MemBIS(Reg::kR12, Reg::kRcx, 3, 0));
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 8);
  as.Jcc(Cond::kUlt, loop);
  as.MovRR(Reg::kRdi, Reg::kR12);
  as.HostCall(HostFn::kFree);
  pb.EmitExit(0);
  return pb.Finish();
}

BinaryImage KrakenImage() {
  const std::vector<KrakenBenchmark> suite = KrakenSuite();
  EXPECT_FALSE(suite.empty());
  return BuildKrakenBenchmark(suite.front());
}

BinaryImage RunHardening(const BinaryImage& img, const RedFatOptions& opts,
                         PipelineStats* stats = nullptr) {
  Pipeline p = Pipeline::Hardening(opts);
  PipelineContext ctx(img, opts, nullptr);
  const Status st = p.Run(ctx);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error());
  if (stats != nullptr) {
    *stats = p.stats();
  }
  return std::move(ctx.output);
}

// --- registration & ordering ----------------------------------------------

TEST(PipelineTest, HardeningRegistersAllPassesInOrder) {
  Pipeline p = Pipeline::Hardening(RedFatOptions{});
  EXPECT_EQ(p.PassNames(), kAllPasses);
  for (const std::string& name : kAllPasses) {
    // tier only runs when a profile is supplied (--profile=FILE).
    if (name == "tier") {
      EXPECT_FALSE(p.IsEnabled(name)) << name;
      continue;
    }
    EXPECT_TRUE(p.IsEnabled(name)) << name;
  }

  RedFatOptions with_profile;
  static const TierProfile kEmptyProfile;
  with_profile.tier_profile = &kEmptyProfile;
  Pipeline tiered = Pipeline::Hardening(with_profile);
  EXPECT_TRUE(tiered.IsEnabled("tier"));
}

TEST(PipelineTest, OptionFlagsDisableOptimizationPasses) {
  Pipeline unopt = Pipeline::Hardening(RedFatOptions::Unoptimized());
  EXPECT_EQ(unopt.PassNames(), kAllPasses);  // registered, just disabled
  EXPECT_FALSE(unopt.IsEnabled("eliminate"));
  EXPECT_FALSE(unopt.IsEnabled("batch"));
  EXPECT_FALSE(unopt.IsEnabled("merge"));
  EXPECT_TRUE(unopt.IsEnabled("codegen"));

  Pipeline batch = Pipeline::Hardening(RedFatOptions::Batch());
  EXPECT_TRUE(batch.IsEnabled("eliminate"));
  EXPECT_TRUE(batch.IsEnabled("batch"));
  EXPECT_FALSE(batch.IsEnabled("merge"));

  // Profiling always disables merge (per-site attribution).
  Pipeline prof = Pipeline::Hardening(RedFatOptions::Profile());
  EXPECT_FALSE(prof.IsEnabled("merge"));
  EXPECT_TRUE(prof.IsEnabled("batch"));
}

TEST(PipelineTest, SetEnabledRejectsUnknownNames) {
  Pipeline p = Pipeline::Hardening(RedFatOptions{});
  EXPECT_FALSE(p.SetEnabled("no-such-pass", false));
  EXPECT_FALSE(p.IsEnabled("no-such-pass"));
  EXPECT_TRUE(p.SetEnabled("merge", false));
  EXPECT_FALSE(p.IsEnabled("merge"));
}

class CountingPass : public Pass {
 public:
  explicit CountingPass(int* counter) : counter_(counter) {}
  const char* name() const override { return "counting"; }
  Result<PassOutcome> Run(PipelineContext& ctx) override {
    (void)ctx;
    ++*counter_;
    return PassOutcome{.items = 1};
  }

 private:
  int* counter_;
};

TEST(PipelineTest, CustomPassRegistrationAndStats) {
  int runs = 0;
  Pipeline p;
  p.Add(std::make_unique<CountingPass>(&runs));
  const RedFatOptions opts;
  const BinaryImage img = SmallHeapProgram();
  PipelineContext ctx(img, opts, nullptr);
  ASSERT_TRUE(p.Run(ctx).ok());
  EXPECT_EQ(runs, 1);
  ASSERT_EQ(p.stats().passes.size(), 1u);
  EXPECT_EQ(p.stats().passes[0].name, "counting");
  EXPECT_EQ(p.stats().passes[0].items, 1u);

  // Disabled passes do not run and do not appear in the stats.
  p.SetEnabled("counting", false);
  PipelineContext ctx2(img, opts, nullptr);
  ASSERT_TRUE(p.Run(ctx2).ok());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(p.stats().passes.empty());
}

// --- pipeline vs. driver equivalence ---------------------------------------

TEST(PipelineTest, DisablingMergePassMatchesMergeFlagOff) {
  const BinaryImage img = SmallHeapProgram();
  RedFatOptions no_merge;
  no_merge.merge = false;
  const BinaryImage via_flag = RunHardening(img, no_merge);

  // Same column, expressed as a pipeline ablation instead of an option.
  Pipeline p = Pipeline::Hardening(RedFatOptions{});
  ASSERT_TRUE(p.SetEnabled("merge", false));
  RedFatOptions opts;
  PipelineContext ctx(img, opts, nullptr);
  ASSERT_TRUE(p.Run(ctx).ok());

  EXPECT_EQ(ctx.output.Serialize(), via_flag.Serialize());
}

TEST(PipelineTest, ToolDriverMatchesPipeline) {
  const BinaryImage img = SmallHeapProgram();
  const RedFatOptions opts;
  RedFatTool tool(opts);
  Result<InstrumentResult> ir = tool.Instrument(img);
  ASSERT_TRUE(ir.ok()) << ir.error();
  EXPECT_EQ(ir.value().image.Serialize(), RunHardening(img, opts).Serialize());
  EXPECT_FALSE(ir.value().pipeline_stats.passes.empty());
}

// --- parallel determinism ---------------------------------------------------

TEST(PipelineTest, ParallelJobsAreByteIdenticalOnKraken) {
  const BinaryImage img = KrakenImage();
  RedFatOptions serial;
  serial.jobs = 1;
  RedFatOptions parallel = serial;
  parallel.jobs = 4;

  PipelineStats serial_stats;
  PipelineStats parallel_stats;
  const BinaryImage out1 = RunHardening(img, serial, &serial_stats);
  const BinaryImage out4 = RunHardening(img, parallel, &parallel_stats);

  EXPECT_EQ(out1.Serialize(), out4.Serialize());
  EXPECT_EQ(serial_stats.jobs, 1u);
  EXPECT_EQ(parallel_stats.jobs, 4u);
  // The non-timing stats must be identical too.
  ASSERT_EQ(serial_stats.passes.size(), parallel_stats.passes.size());
  for (size_t i = 0; i < serial_stats.passes.size(); ++i) {
    EXPECT_EQ(serial_stats.passes[i].name, parallel_stats.passes[i].name);
    EXPECT_EQ(serial_stats.passes[i].items, parallel_stats.passes[i].items);
    EXPECT_EQ(serial_stats.passes[i].changed, parallel_stats.passes[i].changed);
    EXPECT_EQ(serial_stats.passes[i].cycles_saved, parallel_stats.passes[i].cycles_saved);
  }
}

TEST(PipelineTest, AutoJobsIsByteIdentical) {
  const BinaryImage img = SmallHeapProgram();
  RedFatOptions serial;
  serial.jobs = 1;
  RedFatOptions auto_jobs;
  auto_jobs.jobs = 0;  // one worker per hardware thread
  EXPECT_EQ(RunHardening(img, serial).Serialize(), RunHardening(img, auto_jobs).Serialize());
}

// --- stats JSON -------------------------------------------------------------

TEST(PipelineStatsTest, ToJsonGolden) {
  PipelineStats stats;
  stats.jobs = 2;
  stats.total_ms = 12.5;
  stats.passes.push_back(PassStats{"disasm", 100, 0, 1.25, 0, 0.0});
  stats.passes.push_back(PassStats{"merge", 40, 7, 0.5, 210, 1.25});
  EXPECT_EQ(stats.ToJson(),
            "{\"jobs\":2,\"total_ms\":12.500,\"passes\":["
            "{\"name\":\"disasm\",\"items\":100,\"changed\":0,\"wall_ms\":1.250,"
            "\"cycles_saved\":0,\"start_ms\":0.000},"
            "{\"name\":\"merge\",\"items\":40,\"changed\":7,\"wall_ms\":0.500,"
            "\"cycles_saved\":210,\"start_ms\":1.250}]}");
}

TEST(PipelineStatsTest, ParsesPreStartMsFormat) {
  // `--stats` output from before start_ms existed must keep parsing, with
  // the missing field defaulting to zero.
  Result<PipelineStats> parsed = PipelineStatsFromJson(
      "{\"jobs\":2,\"total_ms\":12.500,\"passes\":["
      "{\"name\":\"disasm\",\"items\":100,\"changed\":0,\"wall_ms\":1.250,"
      "\"cycles_saved\":0}]}");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().passes.size(), 1u);
  EXPECT_EQ(parsed.value().passes[0].items, 100u);
  EXPECT_DOUBLE_EQ(parsed.value().passes[0].start_ms, 0.0);
}

TEST(PipelineStatsTest, JsonRoundTrip) {
  PipelineStats stats;
  stats.jobs = 8;
  stats.total_ms = 3.75;
  stats.passes.push_back(PassStats{"classify", 1234, 567, 0.125, 0, 0.5});
  stats.passes.push_back(PassStats{"eliminate", 567, 89, 0.25, 3382, 0.625});

  Result<PipelineStats> parsed = PipelineStatsFromJson(stats.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().jobs, 8u);
  EXPECT_DOUBLE_EQ(parsed.value().total_ms, 3.75);
  ASSERT_EQ(parsed.value().passes.size(), 2u);
  EXPECT_EQ(parsed.value().passes[0].name, "classify");
  EXPECT_EQ(parsed.value().passes[0].items, 1234u);
  EXPECT_EQ(parsed.value().passes[1].changed, 89u);
  EXPECT_EQ(parsed.value().passes[1].cycles_saved, 3382u);
  EXPECT_DOUBLE_EQ(parsed.value().passes[0].start_ms, 0.5);
  EXPECT_DOUBLE_EQ(parsed.value().passes[1].start_ms, 0.625);

  const PassStats* found = parsed.value().Find("eliminate");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->items, 567u);
  EXPECT_EQ(parsed.value().Find("nope"), nullptr);
}

TEST(PipelineStatsTest, JsonParserRejectsMalformedInput) {
  EXPECT_FALSE(PipelineStatsFromJson("").ok());
  EXPECT_FALSE(PipelineStatsFromJson("{").ok());
  EXPECT_FALSE(PipelineStatsFromJson("{\"jobs\":}").ok());
  EXPECT_FALSE(PipelineStatsFromJson("{\"unknown\":1}").ok());
  EXPECT_FALSE(PipelineStatsFromJson("{\"jobs\":1} trailing").ok());
}

TEST(PipelineStatsTest, RealRunProducesParseableStats) {
  PipelineStats stats;
  RunHardening(SmallHeapProgram(), RedFatOptions{}, &stats);
  Result<PipelineStats> parsed = PipelineStatsFromJson(stats.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  // Disabled passes contribute no stats; tier is off without --profile.
  std::vector<std::string> expected;
  for (const std::string& name : kAllPasses) {
    if (name != "tier") {
      expected.push_back(name);
    }
  }
  ASSERT_EQ(parsed.value().passes.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(parsed.value().passes[i].name, expected[i]);
  }
  const PassStats* disasm = parsed.value().Find("disasm");
  ASSERT_NE(disasm, nullptr);
  EXPECT_GT(disasm->items, 0u);
}

}  // namespace
}  // namespace redfat
