#include <gtest/gtest.h>

#include "src/rw/disasm.h"
#include "src/rw/liveness.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

TEST(Disasm, LinearSweepCoversWholeText) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 1);
  as.AddI(Reg::kRax, 2);
  as.Nop();
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  Result<Disassembly> dis = DisassembleText(img);
  ASSERT_TRUE(dis.ok()) << dis.error();
  ASSERT_EQ(dis.value().insns.size(), 5u);
  uint64_t expect = kCodeBase;
  for (const DisasmInsn& di : dis.value().insns) {
    EXPECT_EQ(di.addr, expect);
    expect += di.length;
  }
  EXPECT_EQ(dis.value().IndexAt(kCodeBase), 0u);
  EXPECT_EQ(dis.value().IndexAt(kCodeBase + 1), SIZE_MAX);
}

TEST(Disasm, RejectsGarbage) {
  BinaryImage img;
  img.entry = kCodeBase;
  Section s;
  s.kind = Section::Kind::kText;
  s.vaddr = kCodeBase;
  s.bytes = {0x00, 0x00};
  img.sections.push_back(s);
  EXPECT_FALSE(DisassembleText(img).ok());
}

TEST(Cfg, DirectBranchTargetsRecovered) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto target = as.NewLabel();
  as.Jcc(Cond::kEq, target);
  as.Nop();
  as.Bind(target);
  as.Nop();
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_TRUE(cfg.jump_targets.count(kCodeBase + 7) != 0);  // after jcc+nop
  // Block split at the target: nop@6 and nop@7 are in different blocks.
  EXPECT_NE(cfg.block_id[dis.IndexAt(kCodeBase + 6)],
            cfg.block_id[dis.IndexAt(kCodeBase + 7)]);
}

TEST(Cfg, ControlFlowEndsBlocks) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Nop();            // block A
  as.Ret();            // block A (terminator)
  as.Nop();            // block B
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_EQ(cfg.block_id[0], cfg.block_id[1]);
  EXPECT_NE(cfg.block_id[1], cfg.block_id[2]);
}

TEST(Cfg, CodePointerConstantsAreTargets) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fn = as.NewLabel();
  as.MovLabelAddr(Reg::kRax, fn);
  as.JmpR(Reg::kRax);
  as.Bind(fn);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_TRUE(cfg.jump_targets.count(kCodeBase + 12) != 0)
      << "imm64 code pointer must be treated as an indirect target";
}

TEST(Cfg, DataWordsPointingIntoTextAreTargets) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  // Jump table in data: one entry pointing at the exit stub.
  as.Nop();
  const uint64_t stub_addr = as.Here();
  pb.EmitExit(0);
  pb.AddDataU64({stub_addr});
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_TRUE(cfg.jump_targets.count(stub_addr) != 0);
}

TEST(Cfg, MidInstructionDataWordIsIgnored) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 0);  // 10 bytes
  pb.EmitExit(0);
  pb.AddDataU64({kCodeBase + 3});  // points into the middle of the mov
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_EQ(cfg.jump_targets.count(kCodeBase + 3), 0u);
}

TEST(Cfg, CallFallthroughIsTarget) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fn = as.NewLabel();
  as.Call(fn);
  const uint64_t ret_site = as.Here();
  pb.EmitExit(0);
  as.Bind(fn);
  as.Ret();
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_TRUE(cfg.jump_targets.count(ret_site) != 0);
}

TEST(Liveness, OverwrittenRegisterIsDead) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Load(Reg::kRax, MemAt(Reg::kRbx, 0));   // index 0: writes rax (dead before)
  as.MovRI(Reg::kRcx, 1);                    // rcx written
  as.Add(Reg::kRax, Reg::kRcx);              // reads both
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  const ClobberInfo ci = ComputeClobbers(dis, cfg, 0);
  // rax is written by insn 0 before any read; rcx written at 1 before read.
  EXPECT_NE(std::find(ci.dead_regs.begin(), ci.dead_regs.end(), Reg::kRax),
            ci.dead_regs.end());
  EXPECT_NE(std::find(ci.dead_regs.begin(), ci.dead_regs.end(), Reg::kRcx),
            ci.dead_regs.end());
  // rbx is read by insn 0: live.
  EXPECT_EQ(std::find(ci.dead_regs.begin(), ci.dead_regs.end(), Reg::kRbx),
            ci.dead_regs.end());
}

TEST(Liveness, FlagsDeadWhenRewrittenBeforeUse) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto l = as.NewLabel();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));  // index 0
  as.CmpI(Reg::kRax, 0);                     // writes flags before any read
  as.Jcc(Cond::kEq, l);
  as.Bind(l);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_TRUE(ComputeClobbers(dis, cfg, 0).flags_dead);
}

TEST(Liveness, FlagsLiveWhenBranchFollows) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto l = as.NewLabel();
  as.CmpI(Reg::kRax, 0);
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));  // index 1: flags live across
  as.Jcc(Cond::kEq, l);
  as.Bind(l);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  EXPECT_FALSE(ComputeClobbers(dis, cfg, 1).flags_dead);
}

TEST(Liveness, ConservativeAtBlockEnd) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  pb.EmitExit(0);  // hostcall reads everything
  const BinaryImage img = pb.Finish();
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  const ClobberInfo ci = ComputeClobbers(dis, cfg, 0);
  // rdi is overwritten by EmitExit's mov before the hostcall reads it, so it
  // is dead at the instrumentation point; rax/rbx are read by the store and
  // then by the (conservative) hostcall: live. Flags are never rewritten
  // before the block ends: conservatively live.
  EXPECT_NE(std::find(ci.dead_regs.begin(), ci.dead_regs.end(), Reg::kRdi),
            ci.dead_regs.end());
  EXPECT_EQ(std::find(ci.dead_regs.begin(), ci.dead_regs.end(), Reg::kRax),
            ci.dead_regs.end());
  EXPECT_EQ(std::find(ci.dead_regs.begin(), ci.dead_regs.end(), Reg::kRbx),
            ci.dead_regs.end());
  EXPECT_FALSE(ci.flags_dead);
}

}  // namespace
}  // namespace redfat
