// Property suite for the rewriting substrate: for arbitrary generated
// programs, patching arbitrary instruction subsets with a no-op payload
// must preserve behaviour exactly (outputs, exit status) — across punned
// short instructions, relocated branches/calls and batching patterns.
#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/heap/legacy_heap.h"
#include "src/rw/rewriter.h"
#include "src/support/rng.h"
#include "src/vm/vm.h"
#include "src/workloads/builder.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

RunResult RunVm(const BinaryImage& img, Vm& vm, std::vector<uint64_t> inputs) {
  vm.set_inputs(std::move(inputs));
  vm.LoadImage(img);
  return vm.Run();
}

// Patches every N-th instruction of the text section with a counter payload
// and checks behavioural equivalence against the original.
void CheckPatchEveryNth(uint64_t seed, unsigned stride) {
  SynthParams p;
  p.seed = seed;
  p.num_objects = 4;
  p.block_len = 25;
  const BinaryImage img = GenerateSynthProgram(p);

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok()) << rw.error();
  std::vector<PatchRequest> requests;
  uint32_t id = 0;
  for (size_t i = 0; i < rw.disasm().insns.size(); i += stride) {
    const uint32_t counter = id++;
    requests.push_back(PatchRequest{
        rw.disasm().insns[i].addr,
        [counter](Assembler& as) { as.Count(counter); }});
  }
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply(requests, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  EXPECT_GT(stats.applied + stats.skipped_target_conflict + stats.skipped_call_span +
                stats.skipped_section_end,
            0u);

  GlibcLikeAllocator alloc0, alloc1;
  Vm vm0, vm1;
  vm0.set_allocator(&alloc0);
  vm1.set_allocator(&alloc1);
  const RunResult r0 = RunVm(img, vm0, RefInputs(6));
  const RunResult r1 = RunVm(patched.value(), vm1, RefInputs(6));
  ASSERT_EQ(r0.reason, HaltReason::kExit) << r0.fault_message;
  ASSERT_EQ(r1.reason, HaltReason::kExit)
      << "seed=" << seed << " stride=" << stride << ": " << r1.fault_message;
  EXPECT_EQ(r0.exit_status, r1.exit_status);
  EXPECT_EQ(vm0.outputs(), vm1.outputs()) << "seed=" << seed << " stride=" << stride;
  EXPECT_EQ(r0.explicit_reads, r1.explicit_reads);
  // Relocated calls are emulated as an explicit push of the return address,
  // so the patched binary may perform *more* explicit writes — never fewer.
  EXPECT_GE(r1.explicit_writes, r0.explicit_writes);
}

class PatchEverywhere : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatchEverywhere, EveryInstruction) { CheckPatchEveryNth(GetParam(), 1); }
TEST_P(PatchEverywhere, EverySecond) { CheckPatchEveryNth(GetParam(), 2); }
TEST_P(PatchEverywhere, EveryFifth) { CheckPatchEveryNth(GetParam(), 5); }

INSTANTIATE_TEST_SUITE_P(Seeds, PatchEverywhere, ::testing::Range<uint64_t>(100, 112));

TEST(RewriteProperty, RandomSubsetsManySeeds) {
  Rng rng(0xdeed);
  for (int trial = 0; trial < 12; ++trial) {
    SynthParams p;
    p.seed = 9000 + static_cast<uint64_t>(trial);
    p.block_len = 20;
    p.churn_pct = trial % 2 == 0 ? 3 : 0;
    const BinaryImage img = GenerateSynthProgram(p);
    Rewriter rw(img);
    ASSERT_TRUE(rw.ok());
    std::vector<PatchRequest> requests;
    uint32_t id = 0;
    for (const DisasmInsn& di : rw.disasm().insns) {
      if (rng.Chance(1, 3)) {
        const uint32_t counter = id++;
        requests.push_back(
            PatchRequest{di.addr, [counter](Assembler& as) { as.Count(counter); }});
      }
    }
    Result<BinaryImage> patched = rw.Apply(requests, nullptr);
    ASSERT_TRUE(patched.ok()) << patched.error();

    GlibcLikeAllocator alloc0, alloc1;
    Vm vm0, vm1;
    vm0.set_allocator(&alloc0);
    vm1.set_allocator(&alloc1);
    const RunResult r0 = RunVm(img, vm0, RefInputs(5));
    const RunResult r1 = RunVm(patched.value(), vm1, RefInputs(5));
    ASSERT_EQ(r1.reason, r0.reason) << "trial=" << trial << " " << r1.fault_message;
    ASSERT_EQ(vm0.outputs(), vm1.outputs()) << "trial=" << trial;
  }
}

TEST(RewriteProperty, PayloadWithSavedScratchIsTransparent) {
  // A heavier payload that uses and restores registers + flags must also be
  // invisible (the pattern check codegen relies on).
  SynthParams p;
  p.seed = 777;
  const BinaryImage img = GenerateSynthProgram(p);
  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  std::vector<PatchRequest> requests;
  for (size_t i = 0; i < rw.disasm().insns.size(); i += 3) {
    requests.push_back(PatchRequest{rw.disasm().insns[i].addr, [](Assembler& as) {
                                      as.Lea(Reg::kRsp, MemAt(Reg::kRsp, -128));
                                      as.Push(Reg::kRax);
                                      as.Pushf();
                                      as.MovRI(Reg::kRax, 0xdead);
                                      as.AddI(Reg::kRax, 1);  // clobber flags
                                      as.Popf();
                                      as.Pop(Reg::kRax);
                                      as.Lea(Reg::kRsp, MemAt(Reg::kRsp, 128));
                                    }});
  }
  Result<BinaryImage> patched = rw.Apply(requests, nullptr);
  ASSERT_TRUE(patched.ok()) << patched.error();
  GlibcLikeAllocator alloc0, alloc1;
  Vm vm0, vm1;
  vm0.set_allocator(&alloc0);
  vm1.set_allocator(&alloc1);
  const RunResult r0 = RunVm(img, vm0, RefInputs(5));
  const RunResult r1 = RunVm(patched.value(), vm1, RefInputs(5));
  ASSERT_EQ(r0.reason, HaltReason::kExit);
  ASSERT_EQ(r1.reason, HaltReason::kExit) << r1.fault_message;
  EXPECT_EQ(vm0.outputs(), vm1.outputs());
}

TEST(RewriteProperty, DoublePatchingIsRejected) {
  SynthParams p;
  p.seed = 1;
  const BinaryImage img = GenerateSynthProgram(p);
  Rewriter rw1(img);
  ASSERT_TRUE(rw1.ok());
  Result<BinaryImage> once =
      rw1.Apply({{rw1.disasm().insns[0].addr, [](Assembler& as) { as.Count(0); }}}, nullptr);
  ASSERT_TRUE(once.ok());
  Rewriter rw2(once.value());
  EXPECT_FALSE(rw2.ok()) << "re-instrumenting an instrumented binary must be refused";
}

}  // namespace
}  // namespace redfat
