#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/bin/image.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

TEST(Assembler, BackwardAndForwardBranches) {
  Assembler as(0x1000);
  auto fwd = as.NewLabel();
  auto back = as.NewLabel();
  as.Bind(back);
  as.Nop();
  as.Jmp(fwd);
  as.Jcc(Cond::kEq, back);
  as.Bind(fwd);
  as.Ret();
  const std::vector<uint8_t> bytes = as.Finish();
  // nop(1) jmp(5) jcc(6) ret(1)
  ASSERT_EQ(bytes.size(), 13u);
  Result<Decoded> jmp = Decode(bytes.data() + 1, 5);
  ASSERT_TRUE(jmp.ok());
  // jmp ends at offset 6; target (fwd) at offset 12 -> rel = +6.
  EXPECT_EQ(jmp.value().insn.imm, 6);
  Result<Decoded> jcc = Decode(bytes.data() + 6, 6);
  ASSERT_TRUE(jcc.ok());
  // jcc ends at offset 12; target (back) at 0 -> rel = -12.
  EXPECT_EQ(jcc.value().insn.imm, -12);
}

TEST(Assembler, MovLabelAddrProducesAbsoluteAddress) {
  Assembler as(0x4000);
  auto target = as.NewLabel();
  as.MovLabelAddr(Reg::kRax, target);
  as.Bind(target);
  as.Ret();
  const std::vector<uint8_t> bytes = as.Finish();
  Result<Decoded> mov = Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(mov.ok());
  EXPECT_EQ(static_cast<uint64_t>(mov.value().insn.imm), 0x4000u + 10u);
}

TEST(Assembler, JmpAbsAndJccAbs) {
  Assembler as(0x2000);
  as.JmpAbs(0x2000);  // self-loop: rel = -5
  as.JccAbs(Cond::kNe, 0x3000);
  const std::vector<uint8_t> bytes = as.Finish();
  Result<Decoded> j = Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().insn.imm, -5);
  Result<Decoded> jcc = Decode(bytes.data() + 5, bytes.size() - 5);
  ASSERT_TRUE(jcc.ok());
  EXPECT_EQ(jcc.value().insn.imm, 0x3000 - (0x2000 + 5 + 6));
}

TEST(Assembler, HereTracksPosition) {
  Assembler as(0x100);
  EXPECT_EQ(as.Here(), 0x100u);
  as.Nop();
  EXPECT_EQ(as.Here(), 0x101u);
  as.MovRI(Reg::kRax, 0);
  EXPECT_EQ(as.Here(), 0x10bu);
}

TEST(AssemblerDeath, UnboundLabelChecks) {
  Assembler as(0);
  auto l = as.NewLabel();
  as.Jmp(l);
  EXPECT_DEATH(as.Finish(), "CHECK failed");
}

TEST(AssemblerDeath, DoubleBindChecks) {
  Assembler as(0);
  auto l = as.NewLabel();
  as.Bind(l);
  EXPECT_DEATH(as.Bind(l), "CHECK failed");
}

TEST(Image, SerializeRoundTrip) {
  ProgramBuilder pb;
  const uint64_t d = pb.AddDataU64({1, 2, 3});
  (void)d;
  pb.text().MovRI(Reg::kRax, 7);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const std::vector<uint8_t> bytes = img.Serialize();
  Result<BinaryImage> back = BinaryImage::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().entry, img.entry);
  ASSERT_EQ(back.value().sections.size(), img.sections.size());
  for (size_t i = 0; i < img.sections.size(); ++i) {
    EXPECT_EQ(back.value().sections[i].kind, img.sections[i].kind);
    EXPECT_EQ(back.value().sections[i].vaddr, img.sections[i].vaddr);
    EXPECT_EQ(back.value().sections[i].bytes, img.sections[i].bytes);
  }
}

TEST(Image, DeserializeRejectsCorruption) {
  ProgramBuilder pb;
  pb.EmitExit(0);
  std::vector<uint8_t> bytes = pb.Finish().Serialize();
  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(BinaryImage::Deserialize(bad_magic).ok());
  std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + 10);
  EXPECT_FALSE(BinaryImage::Deserialize(truncated).ok());
  std::vector<uint8_t> short_body = bytes;
  short_body.resize(short_body.size() - 1);
  EXPECT_FALSE(BinaryImage::Deserialize(short_body).ok());
}

TEST(Image, FindSectionAndTotals) {
  ProgramBuilder pb;
  pb.AddDataU64({42});
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  EXPECT_NE(img.FindSection(Section::Kind::kText), nullptr);
  EXPECT_NE(img.FindSection(Section::Kind::kData), nullptr);
  EXPECT_EQ(img.FindSection(Section::Kind::kTrampoline), nullptr);
  EXPECT_GT(img.TotalBytes(), 0u);
}

}  // namespace
}  // namespace redfat
