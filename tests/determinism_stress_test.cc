// Determinism stress test for the parallel rewrite path (ISSUE 3 contract):
// for a corpus of golden configurations, the instrumented image produced at
// --jobs ∈ {1, 2, 8} must be byte-identical, and the per-pass items/changed
// stats must match exactly — the schedule may change timings, never results.
//
// The corpus deliberately crosses the sharded passes' seams:
//   * every optimization tier of Table 1 (unopt / +elim / +batch / +merge),
//     plus -size, -reads, profile mode and the shadow-redzone ablation;
//   * a Kraken image (large text: parallel disasm chunks, CFG ranges);
//   * a synthetic image > 64 KiB of text, so linear-sweep decode spans
//     several fixed 16 KiB chunks with instructions straddling boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/redfat.h"
#include "src/workloads/kraken.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

struct GoldenConfig {
  const char* name;
  RedFatOptions opts;
};

std::vector<GoldenConfig> GoldenConfigs() {
  RedFatOptions shadow;
  shadow.redzone_impl = RedzoneImpl::kShadow;
  return {
      {"unoptimized", RedFatOptions::Unoptimized()},
      {"elim", RedFatOptions::Elim()},
      {"batch", RedFatOptions::Batch()},
      {"merge", RedFatOptions::Merge()},
      {"no-size", RedFatOptions::NoSize()},
      {"no-reads", RedFatOptions::NoReads()},
      {"profile", RedFatOptions::Profile()},
      {"shadow", shadow},
  };
}

// Instruments `img` under `opts` at the given job count; returns the
// serialized image plus a stats fingerprint (items/changed per pass).
struct RewriteResult {
  std::vector<uint8_t> bytes;
  std::vector<std::string> stats;
  size_t sites = 0;
};

RewriteResult Rewrite(const BinaryImage& img, RedFatOptions opts, unsigned jobs) {
  opts.jobs = jobs;
  RedFatTool tool(opts);
  Result<InstrumentResult> r = tool.Instrument(img);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  RewriteResult out;
  if (!r.ok()) {
    return out;
  }
  out.bytes = r.value().image.Serialize();
  out.sites = r.value().sites.size();
  for (const PassStats& p : r.value().pipeline_stats.passes) {
    out.stats.push_back(p.name + ":" + std::to_string(p.items) + "/" +
                        std::to_string(p.changed));
  }
  return out;
}

void ExpectJobsInvariant(const BinaryImage& img, const char* image_name) {
  for (const GoldenConfig& cfg : GoldenConfigs()) {
    const RewriteResult serial = Rewrite(img, cfg.opts, 1);
    ASSERT_FALSE(serial.bytes.empty()) << image_name << "/" << cfg.name;
    for (unsigned jobs : {2u, 8u}) {
      const RewriteResult parallel = Rewrite(img, cfg.opts, jobs);
      EXPECT_EQ(parallel.bytes, serial.bytes)
          << image_name << "/" << cfg.name << " jobs=" << jobs
          << ": output image differs from --jobs=1";
      EXPECT_EQ(parallel.stats, serial.stats)
          << image_name << "/" << cfg.name << " jobs=" << jobs
          << ": per-pass items/changed differ from --jobs=1";
      EXPECT_EQ(parallel.sites, serial.sites)
          << image_name << "/" << cfg.name << " jobs=" << jobs;
    }
  }
}

TEST(DeterminismStressTest, MidWeightSynthImage) {
  SynthParams p;
  p.seed = 0xd57e55;
  p.mem_pct = 35;
  p.stream_pct = 6;
  p.churn_pct = 4;
  p.max_accesses_per_ptr = 4;
  ExpectJobsInvariant(GenerateSynthProgram(p), "synth-mid");
}

TEST(DeterminismStressTest, LargeTextCrossesDisasmChunks) {
  // > 64 KiB of text: the parallel linear sweep runs several 16 KiB chunks
  // and must stitch straddling instructions exactly like the serial sweep.
  SynthParams p;
  p.seed = 0xb16;
  p.mem_pct = 40;
  p.block_len = 60;
  p.filler_funcs = 600;
  p.filler_units_per_func = 8;
  const BinaryImage img = GenerateSynthProgram(p);
  uint64_t text_bytes = 0;
  for (const Section& s : img.sections) {
    if (s.kind == Section::Kind::kText) {
      text_bytes += s.bytes.size();
    }
  }
  ASSERT_GT(text_bytes, 64u * 1024u) << "workload too small to cross chunks";
  ExpectJobsInvariant(img, "synth-large");
}

TEST(DeterminismStressTest, KrakenImage) {
  // One representative Kraken benchmark (big filler-heavy binary, the
  // paper's Chrome-scale shape). The full suite would be minutes; one image
  // exercises the same code paths.
  const KrakenBenchmark& bench = KrakenSuite().front();
  ExpectJobsInvariant(BuildKrakenBenchmark(bench), bench.name.c_str());
}

}  // namespace
}  // namespace redfat
