// Tests for the unified telemetry subsystem (support/telemetry.h,
// support/trace.h) and its wiring through the VM and harness: shard merging,
// JSON round-trips, trace-event validity, per-site runtime attribution, and
// the guarantee that attaching telemetry never changes guest cycles.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/core/harness.h"
#include "src/core/pipeline.h"
#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

// --- shards & registry -----------------------------------------------------

TEST(TelemetryTest, ShardCountsMergeIntoSnapshot) {
  TelemetryRegistry reg;
  TelemetryShard* shard = reg.shard();
  shard->AddSite(3, SiteEvent::kChecks);
  shard->AddSite(3, SiteEvent::kChecks);
  shard->AddSite(3, SiteEvent::kRedzoneHits);
  shard->AddSite(700, SiteEvent::kTrampCycles, 42);  // second block

  const TelemetrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.sites.size(), 2u);
  const SiteTelemetry* s3 = snap.FindSite(3);
  ASSERT_NE(s3, nullptr);
  EXPECT_EQ(s3->checks(), 2u);
  EXPECT_EQ(s3->redzone_hits(), 1u);
  const SiteTelemetry* s700 = snap.FindSite(700);
  ASSERT_NE(s700, nullptr);
  EXPECT_EQ(s700->tramp_cycles(), 42u);
  EXPECT_EQ(snap.FindSite(4), nullptr);
  EXPECT_EQ(snap.TotalSiteEvents(SiteEvent::kChecks), 2u);
}

TEST(TelemetryTest, ShardReturnsSameInstancePerThread) {
  TelemetryRegistry reg;
  EXPECT_EQ(reg.shard(), reg.shard());
  TelemetryRegistry other;
  EXPECT_NE(reg.shard(), other.shard());  // distinct registries, same thread
}

TEST(TelemetryTest, ThreadsAccumulateIntoPrivateShards) {
  TelemetryRegistry reg;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      TelemetryShard* shard = reg.shard();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shard->AddSite(7, SiteEvent::kChecks);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const TelemetrySnapshot snap = reg.Snapshot();
  const SiteTelemetry* s = snap.FindSite(7);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->checks(), kThreads * kPerThread);
}

TEST(TelemetryTest, OutOfRangeSitesCountAsDropped) {
  TelemetryRegistry reg;
  reg.shard()->AddSite(0x7fffffff, SiteEvent::kChecks);  // beyond kMaxBlocks
  const TelemetrySnapshot snap = reg.Snapshot();
  EXPECT_TRUE(snap.sites.empty());
  EXPECT_EQ(snap.counters.at("telemetry.site_events_dropped"), 1u);
}

TEST(TelemetryTest, CountersAccumulateAndGaugesOverwrite) {
  TelemetryRegistry reg;
  reg.AddCounter("runs", 1);
  reg.AddCounter("runs", 2);
  reg.SetGauge("live", 10.0);
  reg.SetGauge("live", 2.5);
  const TelemetrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("runs"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("live"), 2.5);
}

// --- snapshot JSON ----------------------------------------------------------

TEST(TelemetryTest, SnapshotToJsonGolden) {
  TelemetryRegistry reg;
  reg.AddCounter("vm.runs", 1);
  reg.SetGauge("lowfat.allocs", 4);
  TelemetryShard* shard = reg.shard();
  shard->AddSite(5, SiteEvent::kChecks, 9);
  shard->AddSite(5, SiteEvent::kRedzoneHits, 2);
  EXPECT_EQ(reg.Snapshot().ToJson(),
            "{\"counters\":{\"vm.runs\":1},\"gauges\":{\"lowfat.allocs\":4},"
            "\"gauge_seq\":{\"lowfat.allocs\":1},"
            "\"sites\":[{\"id\":5,\"checks\":9,\"redzone_hits\":2,"
            "\"lowfat_passes\":0,\"lowfat_fails\":0,\"tramp_cycles\":0,"
            "\"inline_check_cycles\":0}]}");
}

// Histograms and gauge sequence stamps are emitted only when present, so a
// snapshot without them serializes exactly as it did before they existed.
TEST(TelemetryTest, SnapshotToJsonOmitsEmptyOptionalSections) {
  TelemetryRegistry reg;
  reg.AddCounter("vm.runs", 1);
  EXPECT_EQ(reg.Snapshot().ToJson(), "{\"counters\":{\"vm.runs\":1},\"gauges\":{},\"sites\":[]}");
}

TEST(TelemetryTest, SnapshotJsonRoundTrip) {
  TelemetryRegistry reg;
  reg.AddCounter("vm.cycles", 123456789);
  reg.SetGauge("redzone.live_bytes", 512);
  TelemetryShard* shard = reg.shard();
  shard->AddSite(0, SiteEvent::kChecks, 3);
  shard->AddSite(9, SiteEvent::kLowFatPasses, 7);
  shard->AddSite(9, SiteEvent::kLowFatFails, 1);

  const TelemetrySnapshot snap = reg.Snapshot();
  Result<TelemetrySnapshot> parsed = TelemetrySnapshotFromJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().counters, snap.counters);
  EXPECT_EQ(parsed.value().gauges, snap.gauges);
  ASSERT_EQ(parsed.value().sites.size(), 2u);
  const SiteTelemetry* s9 = parsed.value().FindSite(9);
  ASSERT_NE(s9, nullptr);
  EXPECT_EQ(s9->lowfat_passes(), 7u);
  EXPECT_EQ(s9->lowfat_fails(), 1u);
}

TEST(TelemetryTest, SnapshotJsonRejectsMalformedInput) {
  EXPECT_FALSE(TelemetrySnapshotFromJson("").ok());
  EXPECT_FALSE(TelemetrySnapshotFromJson("{").ok());
  EXPECT_FALSE(TelemetrySnapshotFromJson("{\"unknown\":1}").ok());
  EXPECT_FALSE(TelemetrySnapshotFromJson("{\"sites\":[{\"checks\":1}]}").ok());  // no id
  EXPECT_FALSE(TelemetrySnapshotFromJson("{\"counters\":{}} trailing").ok());
}

// --- trace writer -----------------------------------------------------------

TEST(TraceTest, EmitsValidTraceEventJson) {
  TraceWriter trace;
  trace.SetProcessName(1, "guest");
  trace.SetThreadName(1, 1, "vm");
  trace.Complete("tramp", "check", 1, 1, 100.0, 25.0, {TraceArg{"site", 3}});
  trace.Instant("mem_error", "error", 1, 1, 125.0, {TraceArg{"site", 3}});
  trace.Counter("heap.live_objects", 1, 130.0, 17);
  EXPECT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.dropped(), 0u);
  const std::string json = trace.ToJson();
  const Status st = ValidateTraceEventJson(json);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error()) << "\n" << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceTest, CapsEventsAndCountsDrops) {
  TraceWriter trace(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    trace.Instant("e", "c", 1, 1, i);
  }
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 3u);
  EXPECT_TRUE(ValidateTraceEventJson(trace.ToJson()).ok());
}

TEST(TraceTest, EscapesHostileStrings) {
  TraceWriter trace;
  trace.Complete("quote\"back\\slash\nnewline", "c", 1, 1, 0, 1);
  const Status st = ValidateTraceEventJson(trace.ToJson());
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error());
}

TEST(TraceTest, ValidatorRejectsMalformedOrNonTraceJson) {
  EXPECT_FALSE(ValidateTraceEventJson("").ok());
  EXPECT_FALSE(ValidateTraceEventJson("not json").ok());
  EXPECT_FALSE(ValidateTraceEventJson("{}").ok());  // no traceEvents
  EXPECT_FALSE(ValidateTraceEventJson("{\"traceEvents\":{}}").ok());
  EXPECT_FALSE(
      ValidateTraceEventJson("{\"traceEvents\":[{\"name\":\"x\"}]}").ok());  // no ph
  // A complete event without "dur" violates the contract.
  EXPECT_FALSE(ValidateTraceEventJson(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"pid\":1,"
                   "\"tid\":1,\"ts\":0}]}")
                   .ok());
  EXPECT_TRUE(ValidateTraceEventJson("{\"traceEvents\":[]}").ok());
}

// --- end-to-end through instrumentation + VM --------------------------------

BinaryImage OobWriteProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 32);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.StoreI(MemAt(Reg::kR12, 0), 7);   // in bounds
  as.StoreI(MemAt(Reg::kR12, 40), 1);  // OOB: lands in the redzone
  pb.EmitExit(0);
  return pb.Finish();
}

TEST(TelemetryEndToEnd, RedzoneHitAttributedToFaultingSite) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();
  ASSERT_FALSE(ir.sites.empty());

  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  ASSERT_FALSE(out.errors.empty());

  const TelemetrySnapshot snap = reg.Snapshot();
  const SiteTelemetry* faulting = snap.FindSite(out.errors[0].site);
  ASSERT_NE(faulting, nullptr);
  EXPECT_GE(faulting->redzone_hits(), 1u);
  EXPECT_GE(faulting->checks(), 1u);
  // Only the faulting site hit its redzone.
  EXPECT_EQ(snap.TotalSiteEvents(SiteEvent::kRedzoneHits), out.errors.size());
  // Per-site checks mirror the VM's Count counters exactly.
  for (const auto& [site, count] : out.counters) {
    const SiteTelemetry* st = snap.FindSite(site);
    ASSERT_NE(st, nullptr) << "site " << site;
    EXPECT_EQ(st->checks(), count) << "site " << site;
  }
  // Trampoline cycles were attributed and rolled up.
  EXPECT_GT(snap.TotalSiteEvents(SiteEvent::kTrampCycles), 0u);
  EXPECT_EQ(snap.counters.at("vm.trampoline_cycles"),
            snap.TotalSiteEvents(SiteEvent::kTrampCycles));
  // Run counters and heap gauges landed.
  EXPECT_EQ(snap.counters.at("vm.runs"), 1u);
  EXPECT_GT(snap.counters.at("vm.instructions"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("lowfat.allocs"), 1.0);
}

TEST(TelemetryEndToEnd, ProfilingRunRecordsLowFatOutcomes) {
  RedFatTool tool(RedFatOptions::Profile());
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();

  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);

  const TelemetrySnapshot snap = reg.Snapshot();
  uint64_t passes = 0;
  uint64_t fails = 0;
  for (const auto& [site, counts] : out.prof_counts) {
    passes += counts.passes;
    fails += counts.fails;
    const SiteTelemetry* st = snap.FindSite(site);
    ASSERT_NE(st, nullptr) << "site " << site;
    EXPECT_EQ(st->lowfat_passes(), counts.passes);
    EXPECT_EQ(st->lowfat_fails(), counts.fails);
  }
  EXPECT_EQ(snap.TotalSiteEvents(SiteEvent::kLowFatPasses), passes);
  EXPECT_EQ(snap.TotalSiteEvents(SiteEvent::kLowFatFails), fails);
  EXPECT_GT(passes + fails, 0u);
}

TEST(TelemetryEndToEnd, TraceCoversRunAllocatorAndTrampolines) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();

  TraceWriter trace;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.trace = &trace;
  (void)RunImage(ir.image, RuntimeKind::kRedFat, cfg);

  const std::string json = trace.ToJson();
  const Status st = ValidateTraceEventJson(json);
  ASSERT_TRUE(st.ok()) << (st.ok() ? "" : st.error());
  EXPECT_NE(json.find("\"malloc\""), std::string::npos);
  EXPECT_NE(json.find("\"tramp\""), std::string::npos);
  EXPECT_NE(json.find("\"mem_error\""), std::string::npos);
  EXPECT_NE(json.find("\"vm.run\""), std::string::npos);
}

TEST(TelemetryEndToEnd, TraceCarriesSiteAddrAnnotations) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();
  ASSERT_FALSE(ir.sites.empty());

  TraceWriter trace;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.trace = &trace;
  cfg.image_sites = {&ir.sites};  // enables site_addr trace args
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  ASSERT_FALSE(out.errors.empty());

  const std::string json = trace.ToJson();
  ASSERT_TRUE(ValidateTraceEventJson(json).ok());
  // Trampoline and mem_error slices link back to the disassembly: the
  // faulting site's original instruction address appears as a numeric arg.
  ASSERT_LT(out.errors[0].site, ir.sites.size());
  const SiteRecord& faulting = ir.sites[out.errors[0].site];
  EXPECT_NE(json.find(StrFormat(
                "\"site_addr\":%llu",
                static_cast<unsigned long long>(faulting.addr))),
            std::string::npos);
}

TEST(TelemetryEndToEnd, AttachingTelemetryDoesNotChangeGuestCycles) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();

  RunConfig plain;
  plain.policy = Policy::kLog;
  const RunOutcome without = RunImage(ir.image, RuntimeKind::kRedFat, plain);

  TelemetryRegistry reg;
  TraceWriter trace;
  RunConfig observed = plain;
  observed.telemetry = &reg;
  observed.trace = &trace;
  const RunOutcome with = RunImage(ir.image, RuntimeKind::kRedFat, observed);

  EXPECT_EQ(without.result.cycles, with.result.cycles);
  EXPECT_EQ(without.result.instructions, with.result.instructions);
  EXPECT_EQ(without.counters, with.counters);
  EXPECT_EQ(without.outputs, with.outputs);
}

TEST(TelemetryEndToEnd, CoverageFromSnapshotMatchesCounters) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();

  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);

  const CoverageStats from_counters = ComputeCoverage(out.counters, ir.sites);
  const CoverageStats from_snapshot = ComputeCoverage(reg.Snapshot(), ir.sites);
  EXPECT_EQ(from_counters.full, from_snapshot.full);
  EXPECT_EQ(from_counters.redzone_only, from_snapshot.redzone_only);
}

// --- pipeline bridges & report ----------------------------------------------

TEST(TelemetryBridges, PipelineStatsLandAsCountersGaugesAndSlices) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();

  TelemetryRegistry reg;
  AddPipelineTelemetry(ir.pipeline_stats, &reg);
  const TelemetrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("pipeline.runs"), 1u);
  EXPECT_GT(snap.counters.at("pipeline.disasm.items"), 0u);
  EXPECT_GE(snap.gauges.at("pipeline.total_ms"), 0.0);

  TraceWriter trace;
  AppendPipelineTrace(ir.pipeline_stats, &trace);
  const std::string json = trace.ToJson();
  EXPECT_TRUE(ValidateTraceEventJson(json).ok());
  EXPECT_NE(json.find("\"rewriter\""), std::string::npos);
  EXPECT_NE(json.find("\"disasm\""), std::string::npos);

  // Null sinks are a no-op, not a crash.
  AddPipelineTelemetry(ir.pipeline_stats, nullptr);
  AppendPipelineTrace(ir.pipeline_stats, nullptr);
}

TEST(TelemetryBridges, ReportJoinsSitesTelemetryAndPipeline) {
  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(OobWriteProgram()).value();

  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);

  const std::string report = FormatTelemetryReport(reg.Snapshot(), &ir.sites,
                                                   &ir.pipeline_stats,
                                                   out.result.cycles);
  EXPECT_NE(report.find("per-site runtime telemetry"), std::string::npos);
  EXPECT_NE(report.find("rz-hits"), std::string::npos);
  EXPECT_NE(report.find("vm.instructions"), std::string::npos);
  EXPECT_NE(report.find("rewrite pipeline"), std::string::npos);
  EXPECT_NE(report.find("disasm"), std::string::npos);

  // Degraded forms still render.
  const std::string bare =
      FormatTelemetryReport(TelemetrySnapshot{}, nullptr, nullptr, 0);
  EXPECT_NE(bare.find("no site events recorded"), std::string::npos);
}

// --- snapshot merging (--merge-metrics) -------------------------------------

TelemetrySnapshot SnapWith(uint32_t site, SiteEvent ev, uint64_t n) {
  TelemetrySnapshot s;
  SiteTelemetry st;
  st.site = site;
  st.counts[static_cast<size_t>(ev)] = n;
  s.sites.push_back(st);
  return s;
}

TEST(TelemetryMerge, SumsSiteCountsPerKeyedId) {
  TelemetrySnapshot a = SnapWith(3, SiteEvent::kTrampCycles, 100);
  a.sites[0].counts[static_cast<size_t>(SiteEvent::kChecks)] = 7;
  TelemetrySnapshot b = SnapWith(3, SiteEvent::kTrampCycles, 50);
  b.sites.push_back(SiteTelemetry{});
  b.sites[1].site = 9;
  b.sites[1].counts[static_cast<size_t>(SiteEvent::kInlineCycles)] = 4;

  const TelemetrySnapshot m = MergeTelemetrySnapshots({a, b});
  ASSERT_EQ(m.sites.size(), 2u);
  EXPECT_EQ(m.sites[0].site, 3u);
  EXPECT_EQ(m.sites[0].tramp_cycles(), 150u);
  EXPECT_EQ(m.sites[0].checks(), 7u);
  EXPECT_EQ(m.sites[1].site, 9u);
  EXPECT_EQ(m.sites[1].inline_cycles(), 4u);
}

TEST(TelemetryMerge, SumsCountersGaugesLastWriterWins) {
  TelemetrySnapshot a;
  a.counters["vm.runs"] = 1;
  a.gauges["lowfat.allocs"] = 10;
  TelemetrySnapshot b;
  b.counters["vm.runs"] = 2;
  b.counters["vm.cycles"] = 99;
  b.gauges["lowfat.allocs"] = 20;

  const TelemetrySnapshot m = MergeTelemetrySnapshots({a, b});
  EXPECT_EQ(m.counters.at("vm.runs"), 3u);
  EXPECT_EQ(m.counters.at("vm.cycles"), 99u);
  EXPECT_EQ(m.gauges.at("lowfat.allocs"), 20.0);
}

TEST(TelemetryMerge, EmptyInputsYieldEmptySnapshot) {
  const TelemetrySnapshot m = MergeTelemetrySnapshots({});
  EXPECT_TRUE(m.sites.empty());
  EXPECT_TRUE(m.counters.empty());

  // Merging one snapshot round-trips its contents.
  TelemetrySnapshot a = SnapWith(1, SiteEvent::kChecks, 5);
  const TelemetrySnapshot one = MergeTelemetrySnapshots({a});
  ASSERT_EQ(one.sites.size(), 1u);
  EXPECT_EQ(one.sites[0].checks(), 5u);
}

// Regression for the gauge last-writer-wins merge loss: a gauge sampled in
// an early epoch must not replace a later sample just because its snapshot
// file is merged last. The sequence stamp decides, not input order.
TEST(TelemetryMerge, GaugeSeqWinsOverInputOrder) {
  TelemetryRegistry reg;
  reg.SetGauge("heap.live", 10.0);
  const TelemetrySnapshot early = reg.Snapshot();
  reg.SetGauge("heap.live", 99.0);
  const TelemetrySnapshot late = reg.Snapshot();
  ASSERT_LT(early.gauge_seq.at("heap.live"), late.gauge_seq.at("heap.live"));

  // Out-of-order merge: the later sample still wins.
  const TelemetrySnapshot m = MergeTelemetrySnapshots({late, early});
  EXPECT_EQ(m.gauges.at("heap.live"), 99.0);
  EXPECT_EQ(m.gauge_seq.at("heap.live"), late.gauge_seq.at("heap.live"));

  // Unstamped legacy snapshots (seq reads 0) keep last-writer-wins among
  // themselves and always lose to a stamped sample.
  TelemetrySnapshot l1, l2;
  l1.gauges["heap.live"] = 1.0;
  l2.gauges["heap.live"] = 2.0;
  EXPECT_EQ(MergeTelemetrySnapshots({l1, l2}).gauges.at("heap.live"), 2.0);
  EXPECT_EQ(MergeTelemetrySnapshots({late, l2}).gauges.at("heap.live"), 99.0);
}

// --- histograms ------------------------------------------------------------

TEST(TelemetryHistogram, BucketMathInvariants) {
  // Values 0..3 get exact buckets.
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(HistogramBucketIndex(v), v);
    EXPECT_EQ(HistogramBucketLowerBound(static_cast<uint32_t>(v)), v);
  }
  // Every bucket's lower bound maps back to that bucket, lower bounds are
  // strictly increasing, and any value lands in a bucket whose lower bound
  // does not exceed it (percentiles never overstate).
  for (uint32_t i = 1; i < kNumHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketLowerBound(i)), i);
    EXPECT_GT(HistogramBucketLowerBound(i), HistogramBucketLowerBound(i - 1));
  }
  for (uint64_t v : {5ull, 63ull, 64ull, 65ull, 1000ull, 123456789ull,
                     (1ull << 40) + 7, ~0ull}) {
    const uint32_t idx = HistogramBucketIndex(v);
    ASSERT_LT(idx, kNumHistogramBuckets);
    EXPECT_LE(HistogramBucketLowerBound(idx), v);
    if (idx + 1 < kNumHistogramBuckets) {
      EXPECT_LT(v, HistogramBucketLowerBound(idx + 1));
    }
  }
  // The max bucket index is exactly the frozen layout's 251.
  EXPECT_EQ(HistogramBucketIndex(~0ull), kNumHistogramBuckets - 1);
}

TEST(TelemetryHistogram, CellRecordsIntoSnapshot) {
  TelemetryRegistry reg;
  HistogramCell* cell = reg.histogram("vm.tramp_visit_cycles");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(reg.histogram("vm.tramp_visit_cycles"), cell);  // cached per thread
  for (uint64_t v : {1ull, 2ull, 2ull, 100ull, 100ull, 100ull, 10000ull}) {
    cell->Record(v);
  }
  const TelemetrySnapshot snap = reg.Snapshot();
  const HistogramData* h = snap.FindHistogram("vm.tramp_visit_cycles");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Count(), 7u);
  EXPECT_EQ(h->sum, 10305u);
  EXPECT_DOUBLE_EQ(h->Mean(), 10305.0 / 7.0);
  // Percentiles report the lower bound of the rank's bucket.
  EXPECT_EQ(h->Percentile(50), HistogramBucketLowerBound(HistogramBucketIndex(100)));
  EXPECT_EQ(h->Percentile(0), 1u);
  EXPECT_EQ(h->Percentile(100),
            HistogramBucketLowerBound(HistogramBucketIndex(10000)));
  EXPECT_EQ(snap.FindHistogram("no.such"), nullptr);
}

TEST(TelemetryHistogram, JsonRoundTripIsBitExact) {
  TelemetryRegistry reg;
  HistogramCell* c = reg.histogram("heap.malloc_bytes");
  c->Record(0);
  c->Record(64);
  c->Record(64);
  c->Record(1ull << 33);
  reg.AddCounter("vm.runs", 1);
  const TelemetrySnapshot snap = reg.Snapshot();
  const std::string json = snap.ToJson();
  Result<TelemetrySnapshot> parsed = TelemetrySnapshotFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().histograms.size(), 1u);
  const HistogramData& h = parsed.value().histograms.at("heap.malloc_bytes");
  EXPECT_EQ(h.sum, snap.histograms.at("heap.malloc_bytes").sum);
  EXPECT_EQ(h.buckets, snap.histograms.at("heap.malloc_bytes").buckets);
  EXPECT_EQ(parsed.value().ToJson(), json);  // byte-exact re-serialization
}

TEST(TelemetryHistogram, MergeAddsAndDeltaSubtracts) {
  TelemetrySnapshot a, b;
  a.histograms["h"].sum = 100;
  a.histograms["h"].buckets = {{4, 2}, {10, 1}};
  b.histograms["h"].sum = 50;
  b.histograms["h"].buckets = {{4, 1}, {20, 3}};
  b.histograms["other"].sum = 7;
  b.histograms["other"].buckets = {{0, 1}};

  const TelemetrySnapshot m = MergeTelemetrySnapshots({a, b});
  EXPECT_EQ(m.histograms.at("h").sum, 150u);
  EXPECT_EQ(m.histograms.at("h").buckets,
            (std::map<uint32_t, uint64_t>{{4, 3}, {10, 1}, {20, 3}}));
  EXPECT_EQ(m.histograms.at("other").sum, 7u);

  const TelemetrySnapshot d = DeltaTelemetrySnapshot(m, a);
  EXPECT_EQ(d.histograms.at("h").sum, 50u);
  EXPECT_EQ(d.histograms.at("h").buckets,
            (std::map<uint32_t, uint64_t>{{4, 1}, {20, 3}}));
  // A histogram that deltas to all-zero is dropped entirely.
  const TelemetrySnapshot z = DeltaTelemetrySnapshot(m, m);
  EXPECT_TRUE(z.histograms.empty());
}

// The --metrics-epoch contract, histogram edition: per-epoch delta files
// merged back together must reproduce the one-shot snapshot bit for bit.
TEST(TelemetryHistogram, EpochDeltasTelescopeBitForBit) {
  TelemetryRegistry reg;
  HistogramCell* h = reg.histogram("vm.superblock_len");
  std::vector<TelemetrySnapshot> deltas;
  TelemetrySnapshot prev;  // empty
  uint64_t v = 1;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 20; ++i) {
      h->Record(v);
      v = v * 2862933555777941757ULL + 3037000493ULL;  // wide value spread
    }
    reg.AddCounter("vm.instructions", 20);
    reg.SetGauge("heap.live", static_cast<double>(epoch));
    const TelemetrySnapshot cur = reg.Snapshot();
    deltas.push_back(DeltaTelemetrySnapshot(cur, prev));
    prev = cur;
  }
  const TelemetrySnapshot merged = MergeTelemetrySnapshots(deltas);
  EXPECT_EQ(merged.ToJson(), reg.Snapshot().ToJson());
}

}  // namespace
}  // namespace redfat
